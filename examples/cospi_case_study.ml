(* Section 5 of the paper: why cospi's output compensation must be
   redesigned for monotonicity.

   Run with:  dune exec examples/cospi_case_study.exe

   The textbook identity
       cospi(N/512 + Q) = cpn*cospi(Q) - spn*sinpi(Q)
   mixes coefficient signs, so output compensation is NOT monotone in the
   component values and suffers cancellation.  The paper rewrites it as
       cospi(N'/512 - R) = cpn'*cospi(R) + spn'*sinpi(R)
   with all coefficients non-negative.  This example measures what that
   buys: under both compensations, whether the box that Algorithm 2
   certifies actually maps into the rounding interval at all four
   corners — the property the generator's soundness rests on. *)

module Q = Rational
module E = Oracle.Elementary
module T = Fp.Fp32
module S = Rlibm.Spec

(* The naive (non-monotonic) cospi reduction: L' = N/512 + Qfrac. *)
let naive_reduce x =
  let z = Float.abs x in
  let k, l = Funcs.Reductions.mod2_split z in
  let m, l' = if l > 0.5 then (1, 1.0 -. l) else (0, l) in
  let n = Stdlib.min (Float.to_int (l' *. 512.0)) 255 in
  let r = l' -. (float_of_int n /. 512.0) in
  let s = (if k = 1 then -1 else 1) * if m = 1 then -1 else 1 in
  { S.r; key = n lor ((if s < 0 then 1 else 0) lsl 9) }

let naive_compensate (rr : S.reduction) (v : float array) =
  let n = rr.key land 0x1FF in
  let s = if rr.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
  let spn = (Parallel.Once.get Funcs.Tables.sinpi_n).(n) and cpn = (Parallel.Once.get Funcs.Tables.cospi_n).(n) in
  (* Mixed signs: +cpn*cos, -spn*sin. *)
  s *. ((cpn *. v.(1)) -. (spn *. v.(0)))

let naive_spec monotone =
  let base = Funcs.Specs.cospi Funcs.Specs.float32 in
  if monotone then base else { base with reduce = naive_reduce; compensate = naive_compensate }

let () =
  print_endline "== cospi output compensation: naive vs monotone (paper §5) ==\n";
  let test_inputs =
    List.filter_map
      (fun x ->
        let pat = T.of_double x in
        let spec = naive_spec true in
        if spec.special pat = None then Some pat else None)
      (List.init 400 (fun i -> (float_of_int (i + 3) *. 0.0172) +. 0.002))
  in
  Printf.printf "inputs under study: %d float32 values in (0, ~7)\n\n" (List.length test_inputs);
  let deduce spec pat =
    let y = E.correctly_rounded ~round:T.round_rational spec.S.oracle (T.to_rational pat) in
    let iv = Rlibm.Rounding.interval spec.repr y in
    (iv, Rlibm.Reduced.deduce spec ~pattern:pat ~interval:iv)
  in
  (* Algorithm 2 certifies the box [lo_s,hi_s] x [lo_c,hi_c] by its
     joint-widening construction.  Soundness of the generator needs
     OC(box) inside the rounding interval for EVERY corner: with the §5
     monotone form that follows from monotonicity; with the naive mixed-
     sign form the mixed corners escape — exactly what this measures. *)
  let corner_escapes tag monotone =
    let spec = naive_spec monotone in
    let fails = ref 0 and escapes = ref 0 and total = ref 0 in
    List.iter
      (fun pat ->
        match deduce spec pat with
        | _, Error _ -> incr fails
        | iv, Ok (rr, cons) ->
            incr total;
            let s = cons.(0) and c = cons.(1) in
            let corners =
              [ (s.lo, c.lo); (s.lo, c.hi); (s.hi, c.lo); (s.hi, c.hi) ]
            in
            if
              List.exists
                (fun (vs, vc) -> not (Rlibm.Rounding.contains iv (spec.compensate rr [| vs; vc |])))
                corners
            then incr escapes)
      test_inputs;
    Printf.printf "%-28s: %3d deduction failures, %3d/%3d inputs with an escaping box corner\n"
      tag !fails !escapes !total;
    !escapes
  in
  let esc_naive = corner_escapes "naive compensation" false in
  let esc_mono = corner_escapes "monotone compensation (S5)" true in
  print_newline ();
  Printf.printf
    "the naive identity leaves %d inputs whose certified box is unsound; the S5 rewrite leaves %d.\n"
    esc_naive esc_mono;
  print_endline "\nwhy: with mixed signs (+cpn, -spn), the box guarantee only covers joint";
  print_endline "movement of both components; a polynomial pair free to sit at opposite";
  print_endline "ends of its intervals (a mixed corner) drives the two terms apart and";
  print_endline "the compensated output leaves the rounding interval.  With non-negative";
  print_endline "coefficients every corner moves the output monotonically, so the whole";
  print_endline "box stays certified.";

  (* The generated cospi still validates end to end. *)
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.float32 "cospi" in
  let cospi x = T.to_double (Rlibm.Generator.eval_pattern g (T.of_double x)) in
  Printf.printf "\ngenerated cospi spot checks: cospi(1/3) = %.9g, cospi(100.5) = %g, cospi(7) = %g\n"
    (cospi (1.0 /. 3.0)) (cospi 100.5) (cospi 7.0)
