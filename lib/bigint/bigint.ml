(* Two-tier signed bignums.

   Tier one ([S n]) is a native OCaml [int] holding any value whose
   magnitude fits 62 bits (all of [min_int+1 .. max_int]); its
   arithmetic allocates nothing.  Tier two ([L _]) is the sign-magnitude
   little-endian limb array in base [2^31] of the original
   implementation, reached only on overflow.

   Canonical form (relied on everywhere, including by polymorphic
   structural equality on clients that use it):
   - every value with [bit_length <= 62] is [S]; [L] magnitudes have at
     least 3 limbs and no trailing (most significant) zero limb;
   - [S min_int] never occurs (its negation would not be representable);
     [of_int min_int] lands on the [L] tier.
   Base 2^31 keeps every limb product below 2^62, inside the native
   [int] on 64-bit platforms.

   The limb tier uses Karatsuba multiplication above [kara_threshold]
   limbs, with all temporaries carved out of one per-domain scratch
   buffer ([get_scratch]) that is reused across calls — a Ziv-loop
   oracle iteration performs thousands of wide multiplies and none of
   them allocates intermediate limb arrays beyond the result itself. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t =
  | S of int  (* |n| <= max_int; never min_int *)
  | L of { sign : int; mag : int array }  (* sign = -1 | 1; >= 3 limbs *)

let zero = S 0
let one = S 1
let two = S 2
let minus_one = S (-1)

(* Position of the highest set bit of a nonnegative int, plus one. *)
let int_bits n =
  if n = 0 then 0
  else begin
    let n = ref n and b = ref 1 in
    if !n lsr 32 <> 0 then begin n := !n lsr 32; b := !b + 32 end;
    if !n lsr 16 <> 0 then begin n := !n lsr 16; b := !b + 16 end;
    if !n lsr 8 <> 0 then begin n := !n lsr 8; b := !b + 8 end;
    if !n lsr 4 <> 0 then begin n := !n lsr 4; b := !b + 4 end;
    if !n lsr 2 <> 0 then begin n := !n lsr 2; b := !b + 2 end;
    if !n lsr 1 <> 0 then b := !b + 1;
    !b
  end

(* Limb view of a positive fixnum (at most two limbs). *)
let mag_of_pos v = if v < base then [| v |] else [| v land limb_mask; v lsr limb_bits |]

(* (sign, magnitude) view of any value; only slow paths call this. *)
let sgn_mag = function
  | S n -> if n > 0 then (1, mag_of_pos n) else if n < 0 then (-1, mag_of_pos (-n)) else (0, [||])
  | L b -> (b.sign, b.mag)

(* Normalize a magnitude: strip high zero limbs, drop to the fixnum tier
   when at most two limbs (= 62 bits) remain. *)
let make_sm sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then S 0
  else if !n <= 2 then begin
    let v = if !n = 1 then mag.(0) else (mag.(1) lsl limb_bits) lor mag.(0) in
    S (if sign < 0 then -v else v)
  end
  else if !n = Array.length mag then L { sign; mag }
  else L { sign; mag = Array.sub mag 0 !n }

let of_int n = if n <> min_int then S n else L { sign = -1; mag = [| 0; 0; 1 |] }
let sign = function S n -> Stdlib.compare n 0 | L b -> b.sign
let is_zero = function S 0 -> true | _ -> false
let neg = function S n -> S (-n) | L b -> L { sign = -b.sign; mag = b.mag }

let abs t =
  match t with S n -> S (Stdlib.abs n) | L b -> if b.sign < 0 then L { sign = 1; mag = b.mag } else t

(* Magnitude comparison: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  match (x, y) with
  | S a, S b -> Int.compare a b
  (* An [L] magnitude needs >= 63 bits, so it dominates every fixnum. *)
  | S _, L b -> -b.sign
  | L a, S _ -> a.sign
  | L a, L b -> if a.sign <> b.sign then Stdlib.compare a.sign b.sign else a.sign * cmp_mag a.mag b.mag

let equal x y = compare x y = 0

(* ------------------------------------------------------------------ *)
(* Magnitude kernels.                                                  *)
(* ------------------------------------------------------------------ *)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

(* In-place accumulation: dst[off..] += src[so..so+n).  The carry
   propagates past [n]; the caller guarantees the sum fits in dst. *)
let add_into dst off src so n =
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = dst.(off + i) + src.(so + i) + !carry in
    dst.(off + i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  let k = ref (off + n) in
  while !carry <> 0 do
    let s = dst.(!k) + !carry in
    dst.(!k) <- s land limb_mask;
    carry := s lsr limb_bits;
    incr k
  done

(* In-place: dst[off..] -= src[so..so+n).  The caller guarantees the
   difference is nonnegative, so the borrow dies inside dst. *)
let sub_into dst off src so n =
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let d = dst.(off + i) - src.(so + i) - !borrow in
    if d < 0 then begin
      dst.(off + i) <- d + base;
      borrow := 1
    end
    else begin
      dst.(off + i) <- d;
      borrow := 0
    end
  done;
  let k = ref (off + n) in
  while !borrow <> 0 do
    let d = dst.(!k) - 1 in
    if d < 0 then dst.(!k) <- d + base
    else begin
      dst.(!k) <- d;
      borrow := 0
    end;
    incr k
  done

(* dst[doff .. doff+max(lx,ly)+1) = x + y, top limb possibly zero;
   returns the (fixed) written length so Karatsuba's bookkeeping never
   depends on where zero limbs happen to fall. *)
let add_limbs dst doff x xo lx y yo ly =
  let lmax = max lx ly in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let s = (if i < lx then x.(xo + i) else 0) + (if i < ly then y.(yo + i) else 0) + !carry in
    dst.(doff + i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  dst.(doff + lmax) <- !carry;
  lmax + 1

(* Schoolbook product accumulated into a zeroed dst region. *)
let school_into dst off a ao la b bo lb =
  for i = 0 to la - 1 do
    let ai = a.(ao + i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let k = off + i + j in
        let s = dst.(k) + (ai * b.(bo + j)) + !carry in
        dst.(k) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (off + i + lb) in
      while !carry <> 0 do
        let s = dst.(!k) + !carry in
        dst.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    end
  done

(* Below this many limbs of the smaller operand, schoolbook wins: the
   recursion's extra adds/subs cost more than the saved limb products.
   Tuned on the BIGINT bench (bench/main.ml): 16/24/32/48 were within
   noise of each other at the crossover, 24 was fastest at 64-256
   limbs. *)
let kara_threshold = 24

(* Per-domain grow-only scratch for Karatsuba temporaries.  Safe because
   limb kernels never call back into user code, so within one domain the
   buffer is dead again by the time any other [Bigint] entry point runs. *)
let scratch_key = Domain.DLS.new_key (fun () -> ref [||])

let get_scratch n =
  let r = Domain.DLS.get scratch_key in
  if Array.length !r < n then r := Array.make n 0;
  !r

(* Karatsuba product of a[ao..ao+la) * b[bo..bo+lb) into the zeroed
   region dst[off..off+la+lb); requires la >= lb >= 1.  Temporaries live
   in scratch at [sp..]. *)
let rec kara_into dst off a ao la b bo lb scratch sp =
  if lb < kara_threshold then school_into dst off a ao la b bo lb
  else begin
    let m = la / 2 in
    if lb <= m then begin
      (* Unbalanced: split only a.  a*b = a1*b*B^m + a0*b. *)
      kara_into dst off a ao m b bo lb scratch sp;
      let plen = la - m + lb in
      Array.fill scratch sp plen 0;
      kara_into scratch sp a (ao + m) (la - m) b bo lb scratch (sp + plen);
      add_into dst (off + m) scratch sp plen
    end
    else begin
      let la1 = la - m and lb1 = lb - m in
      (* z0 = a0*b0 and z2 = a1*b1 go straight into their final slots. *)
      kara_into dst off a ao m b bo m scratch sp;
      kara_into dst (off + (2 * m)) a (ao + m) la1 b (bo + m) lb1 scratch sp;
      (* z1 = (a0+a1)(b0+b1) - z0 - z2, added at offset m. *)
      let s1 = sp in
      let l1 = add_limbs scratch s1 a ao m a (ao + m) la1 in
      let s2 = sp + l1 in
      let l2 = add_limbs scratch s2 b bo m b (bo + m) lb1 in
      let p = s2 + l2 in
      let pl = l1 + l2 in
      Array.fill scratch p pl 0;
      if l1 >= l2 then kara_into scratch p scratch s1 l1 scratch s2 l2 scratch (p + pl)
      else kara_into scratch p scratch s2 l2 scratch s1 l1 scratch (p + pl);
      sub_into scratch p dst off (2 * m);
      sub_into scratch p dst (off + (2 * m)) (la1 + lb1);
      let pl = ref pl in
      while !pl > 0 && scratch.(p + !pl - 1) = 0 do
        decr pl
      done;
      add_into dst (off + m) scratch p !pl
    end
  end

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  let a, la, b, lb = if la >= lb then (a, la, b, lb) else (b, lb, a, la) in
  if lb < kara_threshold then school_into r 0 a 0 la b 0 lb
  else kara_into r 0 a 0 la b 0 lb (get_scratch ((4 * (la + lb)) + 512)) 0;
  r

(* a * d for a single-limb 0 < d < base. *)
let mul_mag_int a d =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let s = (a.(i) * d) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(la) <- !carry;
  r

(* ------------------------------------------------------------------ *)
(* Addition and multiplication.                                        *)
(* ------------------------------------------------------------------ *)

let add_slow x y =
  let sx, mx = sgn_mag x and sy, my = sgn_mag y in
  if sx = 0 then y
  else if sy = 0 then x
  else if sx = sy then make_sm sx (add_mag mx my)
  else begin
    match cmp_mag mx my with
    | 0 -> S 0
    | c when c > 0 -> make_sm sx (sub_mag mx my)
    | _ -> make_sm sy (sub_mag my mx)
  end

let add x y =
  match (x, y) with
  | S a, S b ->
      let s = a + b in
      (* Overflow iff both signs differ from the result's; [min_int] is
         representable natively but not canonical as [S]. *)
      if (a lxor s) land (b lxor s) < 0 || s = min_int then add_slow x y else S s
  | _ -> add_slow x y

let sub x y =
  match (x, y) with
  | S a, S b ->
      let d = a - b in
      if (a lxor b) land (a lxor d) < 0 || d = min_int then add x (neg y) else S d
  | _ -> add x (neg y)

let mul x y =
  match (x, y) with
  | S 0, _ | _, S 0 -> S 0
  | S a, S b
    when (* both below 2^30: the product fits without counting bits *)
         Stdlib.abs a lor Stdlib.abs b < 0x4000_0000
         || int_bits (Stdlib.abs a) + int_bits (Stdlib.abs b) <= 62 ->
      S (a * b)
  | _ ->
      let sx, mx = sgn_mag x and sy, my = sgn_mag y in
      if sx = 0 || sy = 0 then S 0 else make_sm (sx * sy) (mul_mag mx my)

(* ------------------------------------------------------------------ *)
(* Bit-level queries and shifts.                                       *)
(* ------------------------------------------------------------------ *)

let bit_length = function
  | S n -> int_bits (Stdlib.abs n)
  | L b ->
      let n = Array.length b.mag in
      ((n - 1) * limb_bits) + int_bits b.mag.(n - 1)

let testbit t i =
  match t with
  | S n -> i < 62 && (Stdlib.abs n lsr i) land 1 = 1
  | L b ->
      let limb = i / limb_bits and off = i mod limb_bits in
      limb < Array.length b.mag && (b.mag.(limb) lsr off) land 1 = 1

let is_even = function S n -> n land 1 = 0 | L b -> b.mag.(0) land 1 = 0

let is_pow2 = function
  | S n -> n > 0 && n land (n - 1) = 0
  | L b ->
      b.sign > 0
      &&
      let n = Array.length b.mag in
      let top = b.mag.(n - 1) in
      top land (top - 1) = 0
      &&
      let rec rest i = i >= n - 1 || (b.mag.(i) = 0 && rest (i + 1)) in
      rest 0

let low_bits_nonzero t k =
  if k <= 0 then false
  else begin
    match t with
    | S n -> Stdlib.abs n land ((1 lsl min k 62) - 1) <> 0
    | L b ->
        let limbs = min (k / limb_bits) (Array.length b.mag) in
        let rec whole i = i < limbs && (b.mag.(i) <> 0 || whole (i + 1)) in
        whole 0
        || limbs = k / limb_bits
           && limbs < Array.length b.mag
           && b.mag.(limbs) land ((1 lsl (k mod limb_bits)) - 1) <> 0
  end

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  match t with
  | S 0 -> t
  | _ when k = 0 -> t
  | S n when int_bits (Stdlib.abs n) + k <= 62 -> S (n lsl k)
  | _ ->
      let s, mag = sgn_mag t in
      let limbs = k / limb_bits and bits = k mod limb_bits in
      let la = Array.length mag in
      let r = Array.make (la + limbs + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (mag.(i) lsl bits) lor !carry in
        r.(i + limbs) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      r.(la + limbs) <- !carry;
      make_sm s r

let shift_right t k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  match t with
  | S n -> if k = 0 then t else if k >= 62 then S 0 else if n >= 0 then S (n lsr k) else S (-(-n lsr k))
  | L b ->
      if k = 0 then t
      else begin
        let limbs = k / limb_bits and bits = k mod limb_bits in
        let la = Array.length b.mag in
        if limbs >= la then S 0
        else begin
          let lr = la - limbs in
          let r = Array.make lr 0 in
          for i = 0 to lr - 1 do
            let lo = b.mag.(i + limbs) lsr bits in
            let hi =
              if bits > 0 && i + limbs + 1 < la then
                (b.mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
              else 0
            in
            r.(i) <- lo lor hi
          done;
          make_sm b.sign r
        end
      end

(* (a lsl k) + b in one pass when the signs agree: the shifted magnitude
   is written straight into the result buffer and [b] accumulated in
   place — the hot shape of Bigfloat's mantissa alignment in [add]. *)
let shift_add a k b =
  if k < 0 then invalid_arg "Bigint.shift_add";
  match (a, b) with
  | S 0, _ -> b
  | _, S 0 -> shift_left a k
  | S x, S y when int_bits (Stdlib.abs x) + k <= 61 ->
      let xs = x lsl k in
      let s = xs + y in
      if (xs lxor s) land (y lxor s) >= 0 && s <> min_int then S s else add_slow (S xs) b
  | _ ->
      let sa, ma = sgn_mag a and sb, mb = sgn_mag b in
      if sa = sb then begin
        let limbs = k / limb_bits and bits = k mod limb_bits in
        let la = Array.length ma and lb = Array.length mb in
        let lr = max (la + limbs + 1) lb + 1 in
        let r = Array.make lr 0 in
        let carry = ref 0 in
        for i = 0 to la - 1 do
          let v = (ma.(i) lsl bits) lor !carry in
          r.(i + limbs) <- v land limb_mask;
          carry := v lsr limb_bits
        done;
        r.(la + limbs) <- !carry;
        add_into r 0 mb 0 lb;
        make_sm sa r
      end
      else add_slow (shift_left a k) b

(* ------------------------------------------------------------------ *)
(* Division.                                                           *)
(* ------------------------------------------------------------------ *)

(* Magnitude shifted left by sh in [0, limb_bits); len+1 limbs, top may
   be zero. *)
let shl_mag a sh =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = (a.(i) lsl sh) lor !carry in
    r.(i) <- v land limb_mask;
    carry := v lsr limb_bits
  done;
  r.(la) <- !carry;
  r

(* Knuth's Algorithm D.  [a], [b] are magnitudes with [cmp_mag a b >= 0]
   and [Array.length b >= 2]; returns the quotient magnitude and the
   nonnegative remainder. *)
let divmod_mag_knuth a b =
  (* Normalize so the divisor's top limb has its high bit set. *)
  let top = b.(Array.length b - 1) in
  let rec shift_for k = if (top lsl k) land (1 lsl (limb_bits - 1)) <> 0 then k else shift_for (k + 1) in
  let sh = shift_for 0 in
  let u = shl_mag a sh in
  (* The divisor's top limb cannot carry out, so its length is stable. *)
  let v = Array.sub (shl_mag b sh) 0 (Array.length b) in
  let n = Array.length v in
  let m = Array.length u - n in
  let m = if m < 0 then 0 else m in
  (* Working copy of the dividend with one extra high limb. *)
  let w = Array.make (Array.length u + 1) 0 in
  Array.blit u 0 w 0 (Array.length u);
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = v.(n - 2) in
  for j = m downto 0 do
    (* Estimate the quotient limb from the top two/three limbs. *)
    let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn2 > (!rhat lsl limb_bits) lor w.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = w.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        w.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        w.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      w.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(i + j) + v.(i) + !c in
        w.(i + j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !c) land limb_mask
    end
    else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  (* Denormalize the remainder (the low n limbs of w). *)
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    let lo = w.(i) lsr sh in
    let hi = if sh > 0 && i + 1 < n then (w.(i + 1) lsl (limb_bits - sh)) land limb_mask else 0 in
    r.(i) <- lo lor hi
  done;
  (q, r)

(* Divide a magnitude by a single limb. *)
let divmod_mag_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let divmod x y =
  match (x, y) with
  | _, S 0 -> raise Division_by_zero
  | S 0, _ -> (S 0, S 0)
  (* OCaml's native division truncates towards zero, exactly the
     contract; operands exclude [min_int] so nothing can trap. *)
  | S a, S b -> (S (a / b), S (a mod b))
  | S _, L _ -> (S 0, x) (* |y| >= 2^62 > |x| *)
  | L a, S b ->
      let bb = Stdlib.abs b in
      if bb < base then begin
        let q, r = divmod_mag_limb a.mag bb in
        (make_sm (a.sign * Stdlib.compare b 0) q, S (if a.sign < 0 then -r else r))
      end
      else begin
        let q, r = divmod_mag_knuth a.mag (mag_of_pos bb) in
        (make_sm (a.sign * Stdlib.compare b 0) q, make_sm a.sign r)
      end
  | L a, L b ->
      if cmp_mag a.mag b.mag < 0 then (S 0, x)
      else begin
        let q, r = divmod_mag_knuth a.mag b.mag in
        (make_sm (a.sign * b.sign) q, make_sm a.sign r)
      end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let pow t k =
  if k < 0 then invalid_arg "Bigint.pow";
  let rec go acc b k = if k = 0 then acc else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1) in
  go one t k

let trailing_zeros t =
  match t with
  | S 0 -> invalid_arg "Bigint.trailing_zeros: zero"
  | S n ->
      let v = Stdlib.abs n in
      int_bits (v land -v) - 1
  | L b ->
      let i = ref 0 in
      while b.mag.(!i) = 0 do
        incr i
      done;
      let limb = b.mag.(!i) in
      (!i * limb_bits) + int_bits (limb land -limb) - 1

(* ------------------------------------------------------------------ *)
(* Small-operand helpers.                                              *)
(* ------------------------------------------------------------------ *)

let add_int t n = add t (of_int n)

let mul_int t n =
  match t with
  | S _ -> mul t (of_int n)
  | L b ->
      if n = 0 then S 0
      else begin
        let na = Stdlib.abs n in
        let s = if n < 0 then -b.sign else b.sign in
        if na < base then make_sm s (mul_mag_int b.mag na) else mul t (of_int n)
      end

let to_int = function S n -> Some n | L _ -> None
let to_int_exn t = match to_int t with Some n -> n | None -> failwith "Bigint.to_int_exn: overflow"

(* ------------------------------------------------------------------ *)
(* GCD.                                                                *)
(* ------------------------------------------------------------------ *)

(* Native Euclid; the fixnum tier's division is a single instruction, so
   the classic remainder loop beats binary gcd here. *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* Lehmer acceleration (Knuth Vol. 2, Algorithm L): run Euclid on the
   62-bit leading digits of both operands, folding the quotient sequence
   into a 2x2 cofactor matrix, and apply the whole matrix to the full
   operands in two O(n) passes.  The double-quotient test — the step is
   taken only when the quotient is the same under both one-sided
   roundings of the truncated digits — guarantees the simulated steps
   are exactly the steps full-precision Euclid would take, so the matrix
   has determinant +-1 and preserves the gcd.

   The inner loop stops once the leading remainder drops below 2^32;
   with u < 2^62 that bounds the matrix entries by u/v < 2^30 and the
   next quotient by ~2^30, so every intermediate product stays inside
   the native int and every matrix-vector product takes the single-limb
   [mul_int] fast path.  Each round therefore collapses ~30 bits' worth
   of quotients (a dozen-plus Euclid steps) into one linear pass. *)
let lehmer_cut = 1 lsl 32

let gcd a b =
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let rec loop a b =
      (* a >= b > 0 *)
      match (a, b) with
      | S x, S y -> S (igcd x y)
      | _, S y -> (
          (* One wide-by-native remainder lands both on the fixnum tier. *)
          match rem a b with S r -> S (igcd y r) | L _ -> assert false)
      | _ ->
          let la = bit_length a in
          let k = la - 62 in
          let uh = to_int_exn (shift_right a k) and vh = to_int_exn (shift_right b k) in
          let u = ref uh and v = ref vh in
          let ma = ref 1 and mb = ref 0 and mc = ref 0 and md = ref 1 in
          let progress = ref false in
          let stepping = ref true in
          while !stepping && !v >= lehmer_cut do
            (* Entry bounds keep both denominators positive here. *)
            let q = (!u + !ma) / (!v + !mc) in
            if q <> (!u + !mb) / (!v + !md) then stepping := false
            else begin
              let t = !ma - (q * !mc) in
              ma := !mc;
              mc := t;
              let t = !mb - (q * !md) in
              mb := !md;
              md := t;
              let t = !u - (q * !v) in
              u := !v;
              v := t;
              progress := true
            end
          done;
          if not !progress then begin
            (* Leading digits decide nothing (size gap > 30 bits, or an
               immediately ambiguous quotient): one exact division step
               removes the whole gap instead. *)
            let r = rem a b in
            if is_zero r then b else loop b r
          end
          else begin
            let a' = abs (add (mul_int a !ma) (mul_int b !mb)) in
            let b' = abs (add (mul_int a !mc) (mul_int b !md)) in
            if is_zero b' then a' else loop a' b'
          end
    in
    if compare a b >= 0 then loop a b else loop b a
  end

let to_float t =
  match t with
  (* The hardware conversion is already round-to-nearest-even. *)
  | S n -> float_of_int n
  | L b ->
      (* Keep the top 53 bits and round with an explicit round/sticky
         pair so huge values stay within half an ulp. *)
      let bl = bit_length t in
      let sh = bl - 53 in
      let a = abs t in
      let head = to_int_exn (shift_right a sh) in
      let round = testbit a (sh - 1) in
      let head = if round && (low_bits_nonzero a (sh - 1) || head land 1 = 1) then head + 1 else head in
      let v = ldexp (float_of_int head) sh in
      if b.sign < 0 then -.v else v

(* ------------------------------------------------------------------ *)
(* Decimal conversions.                                                *)
(* ------------------------------------------------------------------ *)

let chunk_base = 1_000_000_000 (* 10^9 < 2^31: one limb, nine digits *)

let to_string t =
  match t with
  | S n -> string_of_int n
  | L b ->
      (* Peel 9-digit chunks off an in-place working copy. *)
      let m = Array.copy b.mag in
      let n = ref (Array.length m) in
      let chunks = ref [] in
      while !n > 0 do
        let r = ref 0 in
        for i = !n - 1 downto 0 do
          let cur = (!r lsl limb_bits) lor m.(i) in
          m.(i) <- cur / chunk_base;
          r := cur mod chunk_base
        done;
        while !n > 0 && m.(!n - 1) = 0 do
          decr n
        done;
        chunks := !r :: !chunks
      done;
      let buf = Buffer.create 32 in
      if b.sign < 0 then Buffer.add_char buf '-';
      (match !chunks with
      | [] -> Buffer.add_char buf '0'
      | first :: rest ->
          Buffer.add_string buf (string_of_int first);
          List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
      Buffer.contents buf

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  (* Parse a digit run into a native int (the run is at most 18 digits,
     well inside the fixnum range). *)
  let chunk i n =
    let v = ref 0 in
    for j = i to i + n - 1 do
      let c = s.[j] in
      if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
      v := (!v * 10) + (Char.code c - Char.code '0')
    done;
    !v
  in
  let ndigits = len - start in
  let v =
    if ndigits <= 18 then of_int (chunk start ndigits)
    else begin
      (* 9-digit chunks: one [mul_int]/[add_int] pass per chunk instead
         of one full-width multiply per digit. *)
      let first = ((ndigits - 1) mod 9) + 1 in
      let acc = ref (of_int (chunk start first)) in
      let i = ref (start + first) in
      while !i < len do
        acc := add_int (mul_int !acc chunk_base) (chunk !i 9);
        i := !i + 9
      done;
      !acc
    end
  in
  if negative then neg v else v

let pp fmt t = Format.pp_print_string fmt (to_string t)
