(** Arbitrary-precision signed integers.

    This module is the bottom substrate of the RLIBM-32 reproduction: the
    exact rationals used by the LP solver ({!Rational}) and the
    arbitrary-precision binary floats used by the oracle
    ({!Oracle.Bigfloat}) are both built on it.  The representation is
    two-tier: values whose magnitude fits 62 bits live in a native [int]
    (no allocation, overflow-checked fast paths on every operation), and
    only wider values spill into sign-magnitude little-endian limb
    arrays in base [2^31], where every limb product fits the native
    63-bit [int] without overflow.  Limb multiplication switches to
    Karatsuba above an internal threshold.  The representation is
    canonical, so structural equality coincides with numeric equality;
    see DESIGN.md for the tier invariants. *)

type t

(** {1 Constants and constructors} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

(** [of_string s] parses an optionally signed decimal literal.
    @raise Invalid_argument on a malformed literal. *)
val of_string : string -> t

(** {1 Conversions} *)

(** [to_int t] is [Some n] when [t] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn t] is [t] as a native [int].
    @raise Failure when [t] does not fit. *)
val to_int_exn : t -> int

(** [to_float t] is [t] rounded to the nearest double (ties to even). *)
val to_float : t -> float

val to_string : t -> string

(** {1 Queries} *)

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** [bit_length t] is the position of the highest set bit of [|t|] plus
    one; [bit_length zero = 0]. *)
val bit_length : t -> int

(** [testbit t i] is bit [i] of the magnitude of [t]. *)
val testbit : t -> int -> bool

(** [is_even t] holds when the magnitude of [t] is even. *)
val is_even : t -> bool

(** [is_pow2 t] holds when [t] is [2^k] for some [k >= 0]. *)
val is_pow2 : t -> bool

(** [low_bits_nonzero t k] holds when the magnitude of [t] has a set bit
    strictly below position [k] — the sticky test of round-to-nearest,
    without materializing the low part.  False for [k <= 0]. *)
val low_bits_nonzero : t -> int -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero,
    so [r] carries the sign of [a] and [|r| < |b|].
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [shift_left t k] is [t * 2^k]; [k >= 0]. *)
val shift_left : t -> int -> t

(** [shift_right t k] is [t / 2^k] truncated towards zero; [k >= 0]. *)
val shift_right : t -> int -> t

(** [shift_add a k b] is [a * 2^k + b] ([k >= 0]), fused into a single
    pass when the signs agree — the mantissa-alignment step of
    {!Oracle.Bigfloat} addition. *)
val shift_add : t -> int -> t -> t

(** [pow t k] is [t^k] for [k >= 0]. *)
val pow : t -> int -> t

(** [gcd a b] is the non-negative greatest common divisor (binary GCD). *)
val gcd : t -> t -> t

val add_int : t -> int -> t
val mul_int : t -> int -> t

(** [trailing_zeros t] counts the low zero bits of a nonzero [t].
    @raise Invalid_argument on zero. *)
val trailing_zeros : t -> int

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
