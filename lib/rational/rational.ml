(* Exact rationals, normalized with a positive denominator. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let zero = { n = B.zero; d = B.one }
let of_bigint n = { n; d = B.one }
let of_int n = of_bigint (B.of_int n)
let one = of_int 1
let minus_one = of_int (-1)

(* [num / 2^k] normalized. *)
let make_dyadic num k =
  if B.is_zero num then zero
  else begin
    let s = Stdlib.min k (B.trailing_zeros num) in
    { n = B.shift_right num s; d = B.shift_left B.one (k - s) }
  end

let make num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    (* Dyadic fast path: when the denominator is a power of two — true
       for everything derived from doubles, which is every number the LP
       solver touches — normalization is a shift, not a gcd.  This keeps
       exact simplex pivots cheap (the general binary gcd on wide
       entries would otherwise dominate them). *)
    if B.is_pow2 den then make_dyadic num (B.trailing_zeros den)
    else begin
      let g = B.gcd num den in
      if B.equal g B.one then { n = num; d = den } else { n = B.div num g; d = B.div den g }
    end
  end

let of_ints a b = make (B.of_int a) (B.of_int b)
let half = of_ints 1 2
let num t = t.n
let den t = t.d
let sign t = B.sign t.n
let is_zero t = B.is_zero t.n
let neg t = { t with n = B.neg t.n }
let abs t = { t with n = B.abs t.n }

let add a b =
  if B.equal a.d b.d then make (B.add a.n b.n) a.d
  else if B.is_pow2 a.d && B.is_pow2 b.d then begin
    (* Dyadic + dyadic: align on the larger denominator with one fused
       shift-add — no cross products, no gcd.  This is the shape of
       every Bigfloat <-> Rational exchange and of the rounding-interval
       endpoints the oracle and LP trade in. *)
    let ka = B.trailing_zeros a.d and kb = B.trailing_zeros b.d in
    if ka >= kb then make_dyadic (B.shift_add b.n (ka - kb) a.n) ka
    else make_dyadic (B.shift_add a.n (kb - ka) b.n) kb
  end
  else make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else if B.is_pow2 a.d && B.is_pow2 b.d then
    make_dyadic (B.mul a.n b.n) (B.trailing_zeros a.d + B.trailing_zeros b.d)
  else make (B.mul a.n b.n) (B.mul a.d b.d)

let inv t =
  if is_zero t then raise Division_by_zero;
  if B.sign t.n < 0 then { n = B.neg t.d; d = B.neg t.n } else { n = t.d; d = t.n }

let div a b = mul a (inv b)

let compare a b =
  (* Signs first, then magnitude brackets from bit lengths, and only
     cross-multiply when the brackets overlap.  With [bn = bit_length n]
     and [bd = bit_length d], |n/d| lies in (2^(bn-bd-1), 2^(bn-bd+1)),
     so a gap of two decides without any multiplication — the common
     case for the LP ratio tests, whose candidates span many binades. *)
  let sa = B.sign a.n and sb = B.sign b.n in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else begin
    (* Bit lengths are O(1); the equal-denominator walk is O(limbs), so
       it only runs once the brackets overlap. *)
    let ea = B.bit_length a.n - B.bit_length a.d and eb = B.bit_length b.n - B.bit_length b.d in
    if ea >= eb + 2 then sa
    else if eb >= ea + 2 then -sa
    else if B.equal a.d b.d then B.compare a.n b.n
    else if B.is_pow2 a.d && B.is_pow2 b.d then begin
      (* Dyadic pair: the cross products are shifts, and only the
         exponent difference needs materializing. *)
      let ka = B.trailing_zeros a.d and kb = B.trailing_zeros b.d in
      if ka >= kb then B.compare a.n (B.shift_left b.n (ka - kb))
      else B.compare (B.shift_left a.n (kb - ka)) b.n
    end
    else B.compare (B.mul a.n b.d) (B.mul b.n a.d)
  end

let equal a b = B.equal a.n b.n && B.equal a.d b.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let mul_pow2 t k =
  if is_zero t || k = 0 then t
  else if k > 0 then make (B.shift_left t.n k) t.d
  else make t.n (B.shift_left t.d (-k))

let of_pow2 k = mul_pow2 one k

let of_float x =
  if not (Float.is_finite x) then invalid_arg "Rational.of_float: not finite";
  if x = 0.0 then zero
  else begin
    let m, e = Float.frexp x in
    (* m * 2^53 is an exact 53-bit integer for any finite double. *)
    let n = B.of_int (Int64.to_int (Int64.of_float (Float.ldexp m 53))) in
    mul_pow2 (of_bigint n) (e - 53)
  end

let floor t =
  let q, r = B.divmod t.n t.d in
  if B.sign r < 0 then B.sub q B.one else q

let round_nearest t =
  let s = sign t in
  if s = 0 then B.zero
  else begin
    let f = floor (add (abs t) half) in
    if s < 0 then B.neg f else f
  end

(* Floor of log2 |t| for nonzero t. *)
let ilog2 t =
  if is_zero t then invalid_arg "Rational.ilog2: zero";
  let bn = B.bit_length t.n and bd = B.bit_length t.d in
  let e = bn - bd in
  (* |t| in [2^(e-1), 2^(e+1)); decide which power-of-two bracket holds. *)
  let lhs = if e >= 0 then B.abs t.n else B.shift_left (B.abs t.n) (-e) in
  let rhs = if e >= 0 then B.shift_left t.d e else t.d in
  if B.compare lhs rhs >= 0 then e else e - 1

let to_float t =
  if is_zero t then 0.0
  else begin
    let s = sign t in
    let a = abs t in
    let e = ilog2 a in
    if e >= 1024 then if s > 0 then infinity else neg_infinity
    else if e < -1075 then if s > 0 then 0.0 else -0.0
    else begin
      (* Precision shrinks below the normal range (gradual underflow). *)
      let prec = if e >= -1022 then 53 else Stdlib.max 0 (e + 1075) in
      if prec = 0 then (* e = -1075: in [2^-1075, 2^-1074); tie rounds to 0 *)
        let is_tie = equal a (of_pow2 (-1075)) in
        let v = if is_tie then 0.0 else Float.ldexp 1.0 (-1074) in
        if s > 0 then v else -.v
      else begin
        let k = prec - 1 - e in
        let num = if k >= 0 then B.shift_left a.n k else a.n in
        let den = if k >= 0 then a.d else B.shift_left a.d (-k) in
        let q, r = B.divmod num den in
        let m = B.to_int_exn q in
        let twice_r = B.shift_left r 1 in
        let c = B.compare twice_r den in
        let m = if c > 0 || (c = 0 && m land 1 = 1) then m + 1 else m in
        let v = Float.ldexp (float_of_int m) (e - prec + 1) in
        let v = if Float.is_finite v then v else infinity in
        if s > 0 then v else -.v
      end
    end
  end

let to_string t =
  if B.equal t.d B.one then B.to_string t.n
  else B.to_string t.n ^ "/" ^ B.to_string t.d

let pp fmt t = Format.pp_print_string fmt (to_string t)
