(* Bench-regression gate, now a thin facade over lib/datafile.

   The polarity rules (direction_of), the gated metric families, and
   the comparison semantics (zero-baseline growth, collapsed speedups,
   vanished gated metrics) moved verbatim into Datafile.diff so every
   datafile consumer shares them; this module re-exports them under
   the historical names to keep bin/bench_gate and the tests stable.

   The legacy scanners over pre-schema BENCH_<rev>.json files
   (parse_metrics / parse_header) live in Datafile.Legacy — committed
   baselines must stay readable forever — and are re-exported here
   unchanged, including their exact error messages. *)

type direction = Datafile.direction = Lower_better | Higher_better

let direction_of = Datafile.direction_of
let gated = Datafile.gated

exception Parse_error = Datafile.Parse_error

let parse_metrics = Datafile.Legacy.parse_metrics
let parse_header = Datafile.Legacy.parse_header

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_file path = parse_metrics (read_file path)
let parse_header_file path = parse_header (read_file path)

type verdict = Datafile.verdict = {
  key : string;
  base : float option;
  curr : float option;
  ratio : float;
  gated : bool;
  regressed : bool;
}

let compare_metrics = Datafile.diff_metrics
let any_regression = Datafile.any_regression
let pp_report = Datafile.pp_diff
