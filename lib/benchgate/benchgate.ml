(* Bench-regression gate: compare two BENCH_<rev>.json files (the flat
   string->number metric maps bench/main.ml writes) and flag metrics
   that got worse by more than a threshold.

   The gate only *fails* on the generator-facing and serving-facing
   families — `gen.*` (end-to-end generation wall-clock), `lp.*` (LP
   kernel work), `round.*`, `sweep.*`, `campaign.*` and `serve.*` (the
   zero-allocation serving path) — because the exact-arithmetic
   microbenchmark families are reported with their own speedup metrics
   and are noisier on shared CI runners.  Everything common to both
   files is still printed.

   The file's top-level header (rev, date, and since PR 7 the machine
   context: jobs, cpus, ocaml version) is parsed separately
   ([parse_header]) and only *printed* — two runs on different machines
   or job counts are not comparable, but that's the operator's call, not
   the gate's. *)

type direction =
  | Lower_better  (* times: *_ns, *_s, and work counts *)
  | Higher_better  (* *speedup* ratios *)

(* Infer the improvement direction from the metric name, matching the
   naming convention of bench/main.ml: times end in _ns/_s, ratios
   contain "speedup", throughputs contain "per_sec", percentages of a
   good thing (fast-path share, report agreement) end in "_pct";
   everything else (pivot/solve/fallback counts) is work and should not
   grow. *)
let direction_of key =
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  if contains "speedup" key || contains "per_sec" key || contains "_pct" key then Higher_better
  else Lower_better

let gated key =
  let pfx p = String.length key >= String.length p && String.sub key 0 (String.length p) = p in
  pfx "gen." || pfx "lp." || pfx "round." || pfx "sweep." || pfx "campaign." || pfx "serve."

(* ------------------------------------------------------------------ *)
(* Parsing.  The bench JSON is machine-written with a fixed shape       *)
(* ({ "rev", "date", "metrics": { "k": 1.23, ... } }), so a small       *)
(* scanner over the "metrics" object is enough — no JSON dependency.    *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_metrics (s : string) : (string * float) list =
  let n = String.length s in
  let fail msg = raise (Parse_error msg) in
  let find_sub sub from =
    let m = String.length sub in
    let rec go i =
      if i + m > n then fail (Printf.sprintf "missing %S" sub)
      else if String.sub s i m = sub then i
      else go (i + 1)
    in
    go from
  in
  let skip_ws i =
    let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then go (i + 1) else i in
    go i
  in
  (* position just after the '{' opening the metrics object *)
  let start =
    let k = find_sub "\"metrics\"" 0 in
    let c = skip_ws (find_sub ":" k + 1) in
    if c >= n || s.[c] <> '{' then fail "metrics is not an object";
    c + 1
  in
  let parse_string i =
    if i >= n || s.[i] <> '"' then fail "expected string";
    let rec go j = if j >= n then fail "unterminated string" else if s.[j] = '"' then j else go (j + 1) in
    let e = go (i + 1) in
    (String.sub s (i + 1) (e - i - 1), e + 1)
  in
  (* Number parse failures name the metric they sit under: a malformed
     value in a machine-written file is almost always one bad metric
     (e.g. a nan that slipped past the writer), and "expected number"
     with no key means grepping the whole file by hand. *)
  let parse_number ~key i =
    let isnum c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
    let rec go j = if j < n && isnum s.[j] then go (j + 1) else j in
    let e = go i in
    if e = i then
      fail
        (Printf.sprintf "metric %S: expected a number, found %s" key
           (if i >= n then "end of file" else Printf.sprintf "%C" s.[i]));
    let lit = String.sub s i (e - i) in
    match float_of_string_opt lit with
    | Some v -> (v, e)
    | None -> fail (Printf.sprintf "metric %S: malformed number %S" key lit)
  in
  let rec entries i acc =
    let i = skip_ws i in
    if i >= n then fail "unterminated metrics object"
    else if s.[i] = '}' then List.rev acc
    else if s.[i] = ',' then entries (i + 1) acc
    else begin
      let key, i = parse_string i in
      let i = skip_ws i in
      if i >= n || s.[i] <> ':' then fail (Printf.sprintf "metric %S: expected ':'" key);
      let v, i = parse_number ~key (skip_ws (i + 1)) in
      entries i ((key, v) :: acc)
    end
  in
  entries start []

(* Top-level scalar header fields: everything before the "metrics" key,
   in file order.  String values lose their quotes; numbers keep their
   literal text (the header is display-only, never compared). *)
let parse_header (s : string) : (string * string) list =
  let n = String.length s in
  let fail msg = raise (Parse_error msg) in
  let skip_ws i =
    let rec go i =
      if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then go (i + 1) else i
    in
    go i
  in
  let parse_string i =
    if i >= n || s.[i] <> '"' then fail "expected string";
    let rec go j = if j >= n then fail "unterminated string" else if s.[j] = '"' then j else go (j + 1) in
    let e = go (i + 1) in
    (String.sub s (i + 1) (e - i - 1), e + 1)
  in
  let scalar i =
    if i < n && s.[i] = '"' then parse_string i
    else begin
      let isnum c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
      let rec go j = if j < n && isnum s.[j] then go (j + 1) else j in
      let e = go i in
      if e = i then fail "header: expected a scalar value";
      (String.sub s i (e - i), e)
    end
  in
  let start =
    let i = skip_ws 0 in
    if i >= n || s.[i] <> '{' then fail "not a JSON object";
    i + 1
  in
  let rec entries i acc =
    let i = skip_ws i in
    if i >= n then fail "unterminated header"
    else if s.[i] = '}' then List.rev acc
    else if s.[i] = ',' then entries (i + 1) acc
    else begin
      let key, i = parse_string i in
      if key = "metrics" then List.rev acc
      else begin
        let i = skip_ws i in
        if i >= n || s.[i] <> ':' then fail (Printf.sprintf "header %S: expected ':'" key);
        let v, i = scalar (skip_ws (i + 1)) in
        entries i ((key, v) :: acc)
      end
    end
  in
  entries start []

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_file path = parse_metrics (read_file path)
let parse_header_file path = parse_header (read_file path)

(* ------------------------------------------------------------------ *)
(* Comparison.                                                         *)
(* ------------------------------------------------------------------ *)

type verdict = {
  key : string;
  base : float option;  (* None: metric is new in the current run *)
  curr : float option;  (* None: metric vanished from the current run *)
  ratio : float;  (* curr/base for Lower_better, base/curr for Higher_better: >1 = worse *)
  gated : bool;  (* counts toward the exit code *)
  regressed : bool;  (* gated, and worse than the threshold (or vanished) *)
}

(* Worseness ratio with the degenerate baselines handled.  A gated work
   counter (fallbacks, pivots) legitimately sits at 0.0 until a change
   makes it grow — growth from a zero baseline is exactly the regression
   such a metric exists to catch, so it maps to [infinity], not to the
   old silently-passing 1.0.  Symmetrically, a speedup that collapses to
   zero (or a nonsense negative estimate) is a regression however large
   the baseline was. *)
let worse_ratio ~dir ~base ~curr =
  match dir with
  | Lower_better ->
      if base > 0.0 then curr /. base
      else if curr > 0.0 then infinity (* growth from a zero baseline *)
      else 1.0
  | Higher_better ->
      if curr > 0.0 then base /. curr
      else if base > 0.0 then infinity (* speedup collapsed to <= 0 *)
      else 1.0

(* [compare_metrics ~threshold base curr] pairs the two runs up, in
   baseline order.  A *gated* metric present in the baseline but absent
   from the current run is a failure, not a skip: renaming or dropping a
   gated benchmark would otherwise un-gate it silently.  Non-gated
   vanished metrics and metrics new in the current run are reported as
   informational. *)
let compare_metrics ?(threshold = 0.25) (base : (string * float) list)
    (curr : (string * float) list) : verdict list =
  let paired =
    List.map
      (fun (key, b) ->
        let g = gated key in
        match List.assoc_opt key curr with
        | None ->
            (* Vanished: only a failure where the gate depended on it. *)
            { key; base = Some b; curr = None; ratio = infinity; gated = g; regressed = g }
        | Some c ->
            let ratio = worse_ratio ~dir:(direction_of key) ~base:b ~curr:c in
            { key; base = Some b; curr = Some c; ratio; gated = g; regressed = g && ratio > 1.0 +. threshold })
      base
  in
  let fresh =
    List.filter_map
      (fun (key, c) ->
        if List.mem_assoc key base then None
        else
          (* New metric: no baseline to judge against; it becomes gated
             once this run's JSON is committed as the next baseline. *)
          Some { key; base = None; curr = Some c; ratio = 1.0; gated = gated key; regressed = false })
      curr
  in
  paired @ fresh

let any_regression verdicts = List.exists (fun v -> v.regressed) verdicts

let pp_report fmt ~threshold verdicts =
  Format.fprintf fmt "%-45s %12s %12s %8s  %s@." "metric" "baseline" "current" "ratio" "status";
  List.iter
    (fun v ->
      let num = function Some x -> Printf.sprintf "%12.3f" x | None -> Printf.sprintf "%12s" "-" in
      let status =
        match (v.base, v.curr) with
        | _, None when v.regressed -> "MISSING (gated metric vanished — renamed or dropped?)"
        | _, None -> "missing (info)"
        | None, _ -> "new (no baseline yet)"
        | Some _, Some _ ->
            if v.regressed then "REGRESSED"
            else if not v.gated then "info"
            else if v.ratio > 1.0 then "worse (within threshold)"
            else "ok"
      in
      Format.fprintf fmt "%-45s %s %s %7.2fx  %s@." v.key (num v.base) (num v.curr) v.ratio status)
    verdicts;
  let bad = List.filter (fun v -> v.regressed) verdicts in
  if bad = [] then
    Format.fprintf fmt "gate: OK (%d metrics compared, threshold %.0f%%)@." (List.length verdicts)
      (100.0 *. threshold)
  else begin
    let missing, slow = List.partition (fun v -> v.curr = None) bad in
    if slow <> [] then
      Format.fprintf fmt "gate: FAIL — %d gated metric(s) regressed more than %.0f%%@."
        (List.length slow) (100.0 *. threshold);
    if missing <> [] then
      Format.fprintf fmt "gate: FAIL — %d gated metric(s) missing from the current run@."
        (List.length missing)
  end
