(** Bench-regression gate — a thin facade over {!Datafile}.

    The comparison semantics (polarity by naming convention, gated
    metric families, zero-baseline growth, collapsed speedups, vanished
    gated metrics) live in [Datafile.diff_metrics]; this module
    re-exports them under their historical names so existing callers
    and tests keep working.  The legacy scanners over pre-schema
    BENCH_<rev>.json files live in [Datafile.Legacy] for the same
    reason: committed baselines must stay readable forever. *)

type direction = Datafile.direction = Lower_better | Higher_better

(** Improvement direction by naming convention: ["speedup"] anywhere in
    the key means higher is better; everything else (times [_ns]/[_s],
    pivot/solve counts) should not grow. *)
val direction_of : string -> direction

(** True for the [gen.*] / [lp.*] / [round.*] / [sweep.*] /
    [campaign.*] / [serve.*] families the gate fails on. *)
val gated : string -> bool

exception Parse_error of string

(** Extract the flat ["metrics"] object of a legacy bench JSON document.
    @raise Parse_error when the document does not have the shape
    [bench/main.ml] used to write; value errors name the offending
    metric key. *)
val parse_metrics : string -> (string * float) list

(** [parse_file path] reads and parses one legacy BENCH JSON file. *)
val parse_file : string -> (string * float) list

(** The top-level scalar header fields preceding ["metrics"], in file
    order (rev, date, and — since the serving PR — jobs, cpus, ocaml).
    String values lose their quotes; numbers keep their literal text.
    Display-only context: the gate never compares header fields.
    @raise Parse_error on documents without the machine-written shape. *)
val parse_header : string -> (string * string) list

(** [parse_header_file path] is {!parse_header} over a file. *)
val parse_header_file : string -> (string * string) list

type verdict = Datafile.verdict = {
  key : string;
  base : float option;  (** [None]: metric is new in the current run *)
  curr : float option;  (** [None]: metric vanished from the current run *)
  ratio : float;  (** >1 means worse, whatever the direction; [infinity]
                      for growth from a zero baseline, a collapsed
                      speedup, or a vanished gated metric *)
  gated : bool;
  regressed : bool;  (** gated, and worse by more than the threshold —
                         or gated and missing from the current run *)
}

(** Pair the two runs up, in baseline order (metrics new in the current
    run follow, informational).  A gated metric that vanished from the
    current run is a regression — renaming or dropping a gated benchmark
    must not un-gate it silently; so is growth of a gated zero-baseline
    work counter or a gated speedup collapsing to zero.
    Alias of [Datafile.diff_metrics]. *)
val compare_metrics :
  ?threshold:float -> (string * float) list -> (string * float) list -> verdict list

val any_regression : verdict list -> bool

val pp_report : Format.formatter -> threshold:float -> verdict list -> unit
