(** Versioned run datafiles: the one schema every subsystem's results
    land in, with read/write/merge/diff as first-class operations.

    A datafile is a JSON document (schema version {!schema_version})
    capturing one run's identity (rev, date, seed, config), its machine
    context (jobs/cpus/ocaml), and rows of (kind, function, repr, mode)
    results — generation statistics, sweep/campaign verdicts, serving
    SLOs, bench metrics.  The encoding carries a trailing FNV-1a
    checksum over the body; {!read} refuses truncated, corrupted,
    foreign or future-versioned files with a message instead of
    comparing garbage (the {!Sweep.Checkpoint} discipline).

    [merge] welds shard datafiles into one run and is deliberately
    paranoid: rows of the same (kind, func, repr, mode) must agree on
    identity and geometry and their spans must tile the item space
    exactly — overlap, gap or identity drift is refused, never papered
    over.  [diff] compares two runs metric by metric with the bench
    gate's polarity rules (times and work counts are lower-better,
    speedups/throughputs/percentages higher-better) and its degenerate-
    baseline handling (growth from zero and collapsed speedups are
    infinite ratios; a gated metric missing from the current run is a
    failure, not a skip). *)

val schema_version : int

type mismatch = { pattern : int; got : int; want : int }

(** Shard coordinates of a row: this row covers items [lo, hi) of a
    [n_items]-item run cut into [chunk_size]-item chunks.  Rows without
    a span are whole-run rows and can never be merged with a sibling. *)
type span = { lo : int; hi : int; n_items : int; chunk_size : int }

type row = {
  kind : string;  (* "bench" | "generate" | "sweep" | "campaign" | "serve" *)
  func : string;
  repr : string;
  mode : string;
  identity : string;  (* run identity; must agree across merged shards ("" = none) *)
  tables_hash : string;  (* generated-table fingerprint ("" = unknown) *)
  span : span option;
  metrics : (string * float) list;  (* finite values only; {!write} refuses NaN/inf *)
  mismatches : mismatch array;
  quarantined : (int * int * string) array;  (* item ranges [lo, hi), ascending *)
}

type host = { jobs : int; cpus : int; ocaml : string }

type t = {
  rev : string;
  date : string;  (* ISO-8601 UTC; lexicographic order = chronological *)
  seed : int option;
  config : string;  (* free-form run configuration fingerprint *)
  host : host option;  (* None: unknown (legacy files) *)
  rows : row list;
}

(** Structural equality with bitwise float comparison (round-trip
    witness; NaN never appears in a written file). *)
val equal : t -> t -> bool

(* ------------------------------------------------------------------ *)
(* Read / write.                                                       *)
(* ------------------------------------------------------------------ *)

val to_string : t -> string
(** Serialize.  @raise Invalid_argument on a non-finite metric value. *)

val of_string : string -> (t, string) result
(** Strict decode: schema version must equal {!schema_version} and the
    trailing checksum must match.  A legacy [BENCH_<rev>.json] (the
    pre-schema flat metric map) is recognized and lifted into a
    schema-v1 value — see {!Legacy}. *)

val write : path:string -> t -> unit
(** Atomic (tmp-then-rename) write of {!to_string}. *)

val read : path:string -> (t, string) result

(* ------------------------------------------------------------------ *)
(* Merge.                                                              *)
(* ------------------------------------------------------------------ *)

val merge_rows : row list -> (row, string) result
(** Combine shard rows of one (kind, func, repr, mode) group.
    Order-insensitive.  Refuses: empty input, mixed group keys,
    identity or tables-hash drift, geometry disagreement, span
    overlap, and any gap in the tiling of [0, n_items) — a quiet
    verdict over missing inputs would be a false certification.
    Metrics are summed per key (shard counters and busy seconds
    aggregate); mismatches and quarantined ranges concatenate in
    ascending span order.  Span-less rows merge only as a singleton:
    two whole-run rows of the same key are an overlap. *)

val merge : t -> t -> (t, string) result
(** File-level merge: refuses rev/config/seed drift (identity drift
    between runs), keeps the host context only when both sides agree,
    takes the earlier date, and merges rows group-wise with
    {!merge_rows}. *)

(* ------------------------------------------------------------------ *)
(* Diff (the bench-gate comparison semantics).                         *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better

val direction_of : string -> direction
(** Polarity by naming convention: keys containing "speedup",
    "per_sec" or "_pct" are higher-better; everything else (times,
    work counts) must not grow. *)

val gated : string -> bool
(** True for the metric families whose regression fails the CI gate:
    gen.*, lp.*, round.*, sweep.*, campaign.*, serve.*. *)

type verdict = {
  key : string;
  base : float option;  (* None: metric is new in the current run *)
  curr : float option;  (* None: metric vanished from the current run *)
  ratio : float;  (* >1 = worse, direction-normalized *)
  gated : bool;
  regressed : bool;
}

val metrics : t -> (string * float) list
(** All rows' metrics, flattened in row order. *)

val diff_metrics :
  ?threshold:float -> (string * float) list -> (string * float) list -> verdict list

val diff : ?threshold:float -> t -> t -> verdict list
(** [diff base curr] = {!diff_metrics} over the flattened metrics. *)

val any_regression : verdict list -> bool

val pp_diff : Format.formatter -> threshold:float -> verdict list -> unit

val host_mismatch : t -> t -> string list
(** Human-readable reasons the two runs' machine contexts are not
    comparable ([] = comparable as far as recorded): differing
    jobs/cpus/ocaml, or a side with no recorded host at all.
    Cross-host ratios are noise — callers warn loudly or refuse. *)

val markdown_diff : ?threshold:float -> t -> t -> string
(** [markdown_diff base curr]: GitHub-flavored markdown comparison table
    (for PR review and [$GITHUB_STEP_SUMMARY]) — header with both runs'
    identity and host, host-mismatch warning, one table row per metric,
    gate verdict. *)

(* ------------------------------------------------------------------ *)
(* Canonical campaign report text.                                     *)
(* ------------------------------------------------------------------ *)

val campaign_text : row -> string
(** The canonical certification report for a (merged) campaign row —
    byte-identical to [Campaign.Report.text] over the same verdicts:
    identity line, mismatches, quarantined ranges, totals.  Free of
    timings and shard counts on purpose. *)

(* ------------------------------------------------------------------ *)
(* Legacy BENCH_<rev>.json support.                                    *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

module Legacy : sig
  val parse_metrics : string -> (string * float) list
  (** Parse the flat ["metrics"] object of a pre-schema bench JSON.
      @raise Parse_error on malformed input, naming the offending key. *)

  val parse_header : string -> (string * string) list
  (** Top-level scalar fields before ["metrics"], in file order. *)

  val lift : string -> (t, string) result
  (** Lift a legacy bench JSON into a schema-v1 value: header fields
      become rev/date/host, metrics become "bench" rows grouped by
      metric-family prefix.  No checksum to verify — the committed
      baselines predate the schema. *)
end

val header_fields : t -> (string * string) list
(** Display-order scalar header (rev, date, seed, config, host) for
    log output. *)

(* ------------------------------------------------------------------ *)
(* Producer helpers.                                                   *)
(* ------------------------------------------------------------------ *)

val timestamp : unit -> string
(** Current UTC time, ISO-8601. *)

val git_rev : unit -> string
(** Short HEAD revision, or "unknown" outside a git checkout. *)

val rows_of_metrics : kind:string -> (string * float) list -> row list
(** Group a flat metric list into one row per family (the key prefix
    before the first '.'), preserving first-appearance order. *)
