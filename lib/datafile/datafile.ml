(* Versioned run datafiles — the one artifact schema shared by bench,
   sweep, campaign, serve and generate, with read/write/merge/diff as
   first-class operations (the Herbie datafile discipline).

   The on-disk form is JSON, machine-written with a fixed layout so the
   hand-rolled reader below suffices (this repo deliberately has no JSON
   dependency).  Like Sweep.Checkpoint's binary files, every datafile
   carries its schema version up front and an FNV-1a checksum at the
   end; [read] refuses version drift, truncation and corruption with a
   message instead of feeding garbage to a gate.  The checksum covers
   every byte before the trailing [,\n  "checksum"] field — the writer
   never emits a raw newline inside a string value (control characters
   are escaped), so that byte sequence cannot occur earlier in the file.

   [merge] exists for shards: campaign shard verdicts and multi-shard
   bench runs combine into one datafile only when their rows tile the
   item space exactly under one identity.  Overlap, gap and identity
   drift are refused — a quiet verdict over mixed or missing inputs
   would be a false certification (same stance as Campaign.Report,
   whose merge is built on [merge_rows]).

   [diff] carries the bench-gate comparison semantics that used to live
   in lib/benchgate: per-metric worseness ratios with direction
   inferred from the metric name, degenerate baselines mapped to
   infinite ratios, and a gated metric missing from the current run
   treated as a failure rather than a skip. *)

let schema_version = 1

type mismatch = { pattern : int; got : int; want : int }
type span = { lo : int; hi : int; n_items : int; chunk_size : int }

type row = {
  kind : string;
  func : string;
  repr : string;
  mode : string;
  identity : string;
  tables_hash : string;
  span : span option;
  metrics : (string * float) list;
  mismatches : mismatch array;
  quarantined : (int * int * string) array;
}

type host = { jobs : int; cpus : int; ocaml : string }

type t = {
  rev : string;
  date : string;
  seed : int option;
  config : string;
  host : host option;
  rows : row list;
}

(* Bitwise float equality: a round-tripped datafile must be *equal*,
   not approximately equal, and NaN never survives [to_string]. *)
let equal_metric_lists a b =
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> k1 = k2 && Int64.bits_of_float v1 = Int64.bits_of_float v2)
       a b

let equal_row (a : row) (b : row) =
  a.kind = b.kind && a.func = b.func && a.repr = b.repr && a.mode = b.mode
  && a.identity = b.identity && a.tables_hash = b.tables_hash && a.span = b.span
  && equal_metric_lists a.metrics b.metrics
  && a.mismatches = b.mismatches && a.quarantined = b.quarantined

let equal (a : t) (b : t) =
  a.rev = b.rev && a.date = b.date && a.seed = b.seed && a.config = b.config && a.host = b.host
  && List.length a.rows = List.length b.rows
  && List.for_all2 equal_row a.rows b.rows

(* ------------------------------------------------------------------ *)
(* FNV-1a (the Sweep.Checkpoint constants, folded to 63 bits).         *)
(* ------------------------------------------------------------------ *)

let fnv_string (s : string) =
  let h = ref 0x0cbf29ce84222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h land max_int

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal literal that parses back to the same float: %.12g
   keeps the common-case file human-readable, %.17g guarantees the
   round trip for the rest.  Non-finite values are a writer bug — the
   producers skip them with a warning (bench has since PR 7). *)
let float_lit v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Datafile: non-finite metric value %h" v);
  let s = Printf.sprintf "%.12g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

let checksum_literal = ",\n  \"checksum\""

let to_string (t : t) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"schema_version\": %d,\n" schema_version;
  pf "  \"rev\": \"%s\",\n" (escape t.rev);
  pf "  \"date\": \"%s\",\n" (escape t.date);
  (match t.seed with Some s -> pf "  \"seed\": %d,\n" s | None -> ());
  pf "  \"config\": \"%s\",\n" (escape t.config);
  (match t.host with
  | Some h -> pf "  \"host\": { \"jobs\": %d, \"cpus\": %d, \"ocaml\": \"%s\" },\n" h.jobs h.cpus (escape h.ocaml)
  | None -> ());
  pf "  \"rows\": [";
  List.iteri
    (fun i (r : row) ->
      if i > 0 then pf ",";
      pf "\n    {\n";
      pf "      \"kind\": \"%s\",\n" (escape r.kind);
      pf "      \"func\": \"%s\",\n" (escape r.func);
      pf "      \"repr\": \"%s\",\n" (escape r.repr);
      pf "      \"mode\": \"%s\",\n" (escape r.mode);
      pf "      \"identity\": \"%s\",\n" (escape r.identity);
      pf "      \"tables_hash\": \"%s\",\n" (escape r.tables_hash);
      (match r.span with
      | Some s ->
          pf "      \"span\": { \"lo\": %d, \"hi\": %d, \"n_items\": %d, \"chunk_size\": %d },\n"
            s.lo s.hi s.n_items s.chunk_size
      | None -> ());
      pf "      \"metrics\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then pf ",";
          pf "\n        \"%s\": %s" (escape k) (float_lit v))
        r.metrics;
      pf "%s},\n" (if r.metrics = [] then "" else "\n      ");
      pf "      \"mismatches\": [";
      Array.iteri
        (fun j (m : mismatch) ->
          if j > 0 then pf ",";
          pf "\n        { \"pattern\": %d, \"got\": %d, \"want\": %d }" m.pattern m.got m.want)
        r.mismatches;
      pf "%s],\n" (if r.mismatches = [||] then "" else "\n      ");
      pf "      \"quarantined\": [";
      Array.iteri
        (fun j (lo, hi, reason) ->
          if j > 0 then pf ",";
          pf "\n        { \"lo\": %d, \"hi\": %d, \"reason\": \"%s\" }" lo hi (escape reason))
        r.quarantined;
      pf "%s]\n" (if r.quarantined = [||] then "" else "\n      ");
      pf "    }")
    t.rows;
  pf "%s]" (if t.rows = [] then "" else "\n  ");
  let body = Buffer.contents b in
  body ^ Printf.sprintf "%s: \"fnv1a:%016x\"\n}\n" checksum_literal (fnv_string body)

let write ~path (t : t) =
  let s = to_string t in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc s;
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Generic JSON reader (machine-written subset: objects, arrays,       *)
(* strings with short escapes, numbers, true/false/null).              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

module Json = struct
  type v =
    | Str of string
    | Num of string  (* literal text; converted on demand *)
    | Obj of (string * v) list
    | Arr of v list
    | Bool of bool
    | Null

  exception Fail of string

  let parse (s : string) : (v, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Fail msg) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t' || s.[!pos] = '\r') do
        incr pos
      done
    in
    let expect c =
      if !pos >= n || s.[!pos] <> c then
        fail
          (Printf.sprintf "expected %C at byte %d, found %s" c !pos
             (if !pos >= n then "end of file" else Printf.sprintf "%C" s.[!pos]));
      incr pos
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              if !pos + 1 >= n then fail "unterminated escape";
              (match s.[!pos + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 't' -> Buffer.add_char b '\t'
              | 'r' -> Buffer.add_char b '\r'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 5 >= n then fail "unterminated \\u escape";
                  let hex = String.sub s (!pos + 2) 4 in
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> fail (Printf.sprintf "bad \\u escape %S" hex)
                  in
                  if code > 0xff then fail (Printf.sprintf "\\u escape out of byte range: %S" hex);
                  Buffer.add_char b (Char.chr code);
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              pos := !pos + 2;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let isnum c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
      let start = !pos in
      while !pos < n && isnum s.[!pos] do
        incr pos
      done;
      if !pos = start then fail (Printf.sprintf "expected a number at byte %d" start);
      let lit = String.sub s start (!pos - start) in
      if float_of_string_opt lit = None then fail (Printf.sprintf "malformed number %S" lit);
      lit
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "bad literal at byte %d" !pos)
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of file"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail (Printf.sprintf "expected ',' or '}' at byte %d" !pos)
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail (Printf.sprintf "expected ',' or ']' at byte %d" !pos)
            in
            Arr (elements [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some c -> if c = '-' || (c >= '0' && c <= '9') then Num (parse_number ()) else fail (Printf.sprintf "unexpected %C at byte %d" c !pos)
    in
    try
      let v = value () in
      skip_ws ();
      if !pos <> n then fail (Printf.sprintf "trailing garbage at byte %d" !pos);
      Ok v
    with Fail msg -> Error msg

  let as_obj what = function Obj kvs -> kvs | _ -> raise (Fail (what ^ ": expected an object"))
  let as_arr what = function Arr vs -> vs | _ -> raise (Fail (what ^ ": expected an array"))
  let as_str what = function Str s -> s | _ -> raise (Fail (what ^ ": expected a string"))

  let as_int what = function
    | Num lit -> (
        match int_of_string_opt lit with
        | Some v -> v
        | None -> raise (Fail (Printf.sprintf "%s: expected an integer, found %S" what lit)))
    | _ -> raise (Fail (what ^ ": expected an integer"))

  let as_float what = function
    | Num lit -> float_of_string lit  (* parse_number validated the literal *)
    | _ -> raise (Fail (what ^ ": expected a number"))

  let field what name kvs =
    match List.assoc_opt name kvs with
    | Some v -> v
    | None -> raise (Fail (Printf.sprintf "%s: missing field %S" what name))
end

(* ------------------------------------------------------------------ *)
(* Legacy BENCH_<rev>.json reader (the pre-schema flat metric map).    *)
(* The scanners moved here verbatim from lib/benchgate so committed    *)
(* baselines stay readable forever; benchgate re-exports them.         *)
(* ------------------------------------------------------------------ *)

let family key = match String.index_opt key '.' with Some i -> String.sub key 0 i | None -> key

let rows_of_metrics ~kind metrics =
  let groups = ref [] in
  (* first-appearance order of families, metrics kept in file order *)
  List.iter
    (fun (k, v) ->
      let fam = family k in
      match List.assoc_opt fam !groups with
      | Some cell -> cell := (k, v) :: !cell
      | None -> groups := !groups @ [ (fam, ref [ (k, v) ]) ])
    metrics;
  List.map
    (fun (fam, cell) ->
      {
        kind;
        func = fam;
        repr = "";
        mode = "";
        identity = "";
        tables_hash = "";
        span = None;
        metrics = List.rev !cell;
        mismatches = [||];
        quarantined = [||];
      })
    !groups

module Legacy = struct
  let parse_metrics (s : string) : (string * float) list =
    let n = String.length s in
    let fail msg = raise (Parse_error msg) in
    let find_sub sub from =
      let m = String.length sub in
      let rec go i =
        if i + m > n then fail (Printf.sprintf "missing %S" sub)
        else if String.sub s i m = sub then i
        else go (i + 1)
      in
      go from
    in
    let skip_ws i =
      let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then go (i + 1) else i in
      go i
    in
    (* position just after the '{' opening the metrics object *)
    let start =
      let k = find_sub "\"metrics\"" 0 in
      let c = skip_ws (find_sub ":" k + 1) in
      if c >= n || s.[c] <> '{' then fail "metrics is not an object";
      c + 1
    in
    let parse_string i =
      if i >= n || s.[i] <> '"' then fail "expected string";
      let rec go j = if j >= n then fail "unterminated string" else if s.[j] = '"' then j else go (j + 1) in
      let e = go (i + 1) in
      (String.sub s (i + 1) (e - i - 1), e + 1)
    in
    (* Number parse failures name the metric they sit under: a malformed
       value in a machine-written file is almost always one bad metric
       (e.g. a nan that slipped past the writer), and "expected number"
       with no key means grepping the whole file by hand. *)
    let parse_number ~key i =
      let isnum c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
      let rec go j = if j < n && isnum s.[j] then go (j + 1) else j in
      let e = go i in
      if e = i then
        fail
          (Printf.sprintf "metric %S: expected a number, found %s" key
             (if i >= n then "end of file" else Printf.sprintf "%C" s.[i]));
      let lit = String.sub s i (e - i) in
      match float_of_string_opt lit with
      | Some v -> (v, e)
      | None -> fail (Printf.sprintf "metric %S: malformed number %S" key lit)
    in
    let rec entries i acc =
      let i = skip_ws i in
      if i >= n then fail "unterminated metrics object"
      else if s.[i] = '}' then List.rev acc
      else if s.[i] = ',' then entries (i + 1) acc
      else begin
        let key, i = parse_string i in
        let i = skip_ws i in
        if i >= n || s.[i] <> ':' then fail (Printf.sprintf "metric %S: expected ':'" key);
        let v, i = parse_number ~key (skip_ws (i + 1)) in
        entries i ((key, v) :: acc)
      end
    in
    entries start []

  (* Top-level scalar header fields: everything before the "metrics"
     key, in file order.  String values lose their quotes; numbers keep
     their literal text (the header is display-only, never compared). *)
  let parse_header (s : string) : (string * string) list =
    let n = String.length s in
    let fail msg = raise (Parse_error msg) in
    let skip_ws i =
      let rec go i =
        if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r') then go (i + 1) else i
      in
      go i
    in
    let parse_string i =
      if i >= n || s.[i] <> '"' then fail "expected string";
      let rec go j = if j >= n then fail "unterminated string" else if s.[j] = '"' then j else go (j + 1) in
      let e = go (i + 1) in
      (String.sub s (i + 1) (e - i - 1), e + 1)
    in
    let scalar i =
      if i < n && s.[i] = '"' then parse_string i
      else begin
        let isnum c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
        let rec go j = if j < n && isnum s.[j] then go (j + 1) else j in
        let e = go i in
        if e = i then fail "header: expected a scalar value";
        (String.sub s i (e - i), e)
      end
    in
    let start =
      let i = skip_ws 0 in
      if i >= n || s.[i] <> '{' then fail "not a JSON object";
      i + 1
    in
    let rec entries i acc =
      let i = skip_ws i in
      if i >= n then fail "unterminated header"
      else if s.[i] = '}' then List.rev acc
      else if s.[i] = ',' then entries (i + 1) acc
      else begin
        let key, i = parse_string i in
        if key = "metrics" then List.rev acc
        else begin
          let i = skip_ws i in
          if i >= n || s.[i] <> ':' then fail (Printf.sprintf "header %S: expected ':'" key);
          let v, i = scalar (skip_ws (i + 1)) in
          entries i ((key, v) :: acc)
        end
      end
    in
    entries start []

  let lift (s : string) : (t, string) result =
    match (parse_header s, parse_metrics s) with
    | exception Parse_error msg -> Error ("legacy bench json: " ^ msg)
    | header, metrics ->
        let field k = List.assoc_opt k header in
        let host =
          match (field "jobs", field "cpus", field "ocaml") with
          | Some j, Some c, Some o -> (
              match (int_of_string_opt j, int_of_string_opt c) with
              | Some jobs, Some cpus -> Some { jobs; cpus; ocaml = o }
              | _ -> None)
          | _ -> None
        in
        Ok
          {
            rev = Option.value (field "rev") ~default:"unknown";
            date = Option.value (field "date") ~default:"";
            seed = None;
            config = "";
            host;
            rows = rows_of_metrics ~kind:"bench" metrics;
          }
end

(* ------------------------------------------------------------------ *)
(* Strict reader.                                                      *)
(* ------------------------------------------------------------------ *)

let contains_sub sub s =
  let m = String.length sub and n = String.length s in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let rindex_sub sub s =
  let m = String.length sub in
  let rec go i = if i < 0 then None else if String.sub s i m = sub then Some i else go (i - 1) in
  go (String.length s - m)

let span_of_json what kvs =
  {
    lo = Json.as_int (what ^ ".lo") (Json.field what "lo" kvs);
    hi = Json.as_int (what ^ ".hi") (Json.field what "hi" kvs);
    n_items = Json.as_int (what ^ ".n_items") (Json.field what "n_items" kvs);
    chunk_size = Json.as_int (what ^ ".chunk_size") (Json.field what "chunk_size" kvs);
  }

let row_of_json i v =
  let what = Printf.sprintf "row %d" i in
  let kvs = Json.as_obj what v in
  let str name = Json.as_str (what ^ "." ^ name) (Json.field what name kvs) in
  {
    kind = str "kind";
    func = str "func";
    repr = str "repr";
    mode = str "mode";
    identity = str "identity";
    tables_hash = str "tables_hash";
    span =
      (match List.assoc_opt "span" kvs with
      | None -> None
      | Some v -> Some (span_of_json (what ^ ".span") (Json.as_obj (what ^ ".span") v)));
    metrics =
      List.map
        (fun (k, v) -> (k, Json.as_float (Printf.sprintf "%s metric %S" what k) v))
        (Json.as_obj (what ^ ".metrics") (Json.field what "metrics" kvs));
    mismatches =
      Array.of_list
        (List.map
           (fun v ->
             let m = Json.as_obj (what ^ ".mismatches") v in
             let int name = Json.as_int (what ^ ".mismatches." ^ name) (Json.field what name m) in
             { pattern = int "pattern"; got = int "got"; want = int "want" })
           (Json.as_arr (what ^ ".mismatches") (Json.field what "mismatches" kvs)));
    quarantined =
      Array.of_list
        (List.map
           (fun v ->
             let q = Json.as_obj (what ^ ".quarantined") v in
             let int name = Json.as_int (what ^ ".quarantined." ^ name) (Json.field what name q) in
             ( int "lo",
               int "hi",
               Json.as_str (what ^ ".quarantined.reason") (Json.field what "reason" q) ))
           (Json.as_arr (what ^ ".quarantined") (Json.field what "quarantined" kvs)));
  }

let of_string (s : string) : (t, string) result =
  if not (contains_sub "\"schema_version\"" s) then
    if contains_sub "\"metrics\"" s then Legacy.lift s
    else Error "datafile: neither a schema-v1 datafile nor a legacy bench json"
  else
    match Json.parse s with
    | Error msg -> Error ("datafile: " ^ msg)
    | Ok doc -> (
        try
          let kvs = Json.as_obj "datafile" doc in
          let v = Json.as_int "schema_version" (Json.field "datafile" "schema_version" kvs) in
          if v <> schema_version then
            Error (Printf.sprintf "datafile: unsupported schema version %d (want %d)" v schema_version)
          else begin
            (* Checksum covers every byte before the trailing field; the
               writer escapes raw newlines inside strings, so the last
               occurrence of the literal is the real field. *)
            let sum_field = Json.as_str "checksum" (Json.field "datafile" "checksum" kvs) in
            let expected =
              match Scanf.sscanf_opt sum_field "fnv1a:%x%!" (fun x -> x) with
              | Some x -> x
              | None -> raise (Json.Fail (Printf.sprintf "malformed checksum %S" sum_field))
            in
            match rindex_sub checksum_literal s with
            | None -> Error "datafile: truncated (no checksum field)"
            | Some i ->
                if fnv_string (String.sub s 0 i) <> expected then
                  Error "datafile: checksum mismatch (corrupted datafile)"
                else
                  Ok
                    {
                      rev = Json.as_str "rev" (Json.field "datafile" "rev" kvs);
                      date = Json.as_str "date" (Json.field "datafile" "date" kvs);
                      seed =
                        (match List.assoc_opt "seed" kvs with
                        | None -> None
                        | Some v -> Some (Json.as_int "seed" v));
                      config = Json.as_str "config" (Json.field "datafile" "config" kvs);
                      host =
                        (match List.assoc_opt "host" kvs with
                        | None -> None
                        | Some v ->
                            let h = Json.as_obj "host" v in
                            Some
                              {
                                jobs = Json.as_int "host.jobs" (Json.field "host" "jobs" h);
                                cpus = Json.as_int "host.cpus" (Json.field "host" "cpus" h);
                                ocaml = Json.as_str "host.ocaml" (Json.field "host" "ocaml" h);
                              });
                      rows =
                        List.mapi row_of_json (Json.as_arr "rows" (Json.field "datafile" "rows" kvs));
                    }
          end
        with Json.Fail msg -> Error ("datafile: " ^ msg))

let read ~path : (t, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      of_string s

(* ------------------------------------------------------------------ *)
(* Merge.                                                              *)
(* ------------------------------------------------------------------ *)

let merge_rows (rows : row list) : (row, string) result =
  match rows with
  | [] -> Error "datafile merge: no rows"
  | first :: _ -> (
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
      List.iter
        (fun (r : row) ->
          if (r.kind, r.func, r.repr, r.mode) <> (first.kind, first.func, first.repr, first.mode)
          then
            fail "datafile merge: rows disagree on key (%s/%s/%s/%s vs %s/%s/%s/%s)" r.kind r.func
              r.repr r.mode first.kind first.func first.repr first.mode
          else if r.identity <> first.identity then
            fail "datafile merge: row belongs to a different run\n  row: %s\n  run: %s" r.identity
              first.identity
          else if r.tables_hash <> first.tables_hash then
            fail "datafile merge: rows built from different tables (%s vs %s)" r.tables_hash
              first.tables_hash)
        rows;
      match !err with
      | Some m -> Error m
      | None -> (
          let spans = List.filter_map (fun (r : row) -> r.span) rows in
          if List.length spans <> List.length rows then
            if List.length rows = 1 then Ok first
            else Error "datafile merge: cannot merge whole-run rows (no shard spans)"
          else begin
            let sorted =
              List.stable_sort
                (fun (a : row) b ->
                  compare (Option.get a.span).lo (Option.get b.span).lo)
                rows
            in
            let fspan = (Option.get first.span) in
            List.iter
              (fun (r : row) ->
                let s = Option.get r.span in
                if s.n_items <> fspan.n_items || s.chunk_size <> fspan.chunk_size then
                  fail
                    "datafile merge: shard [%d,%d) disagrees on geometry (%d items / %d per chunk, want %d / %d)"
                    s.lo s.hi s.n_items s.chunk_size fspan.n_items fspan.chunk_size
                else if s.lo < 0 || s.hi > s.n_items || s.lo >= s.hi then
                  fail "datafile merge: bad shard range [%d,%d)" s.lo s.hi)
              sorted;
            let cursor = ref 0 in
            List.iter
              (fun (r : row) ->
                let s = Option.get r.span in
                if s.lo < !cursor then fail "datafile merge: shard ranges overlap at item %d" s.lo
                else if s.lo > !cursor then
                  fail "datafile merge: missing shard range [%d,%d)" !cursor s.lo;
                cursor := Stdlib.max !cursor s.hi)
              sorted;
            if !err = None && !cursor < fspan.n_items then
              fail "datafile merge: missing shard range [%d,%d)" !cursor fspan.n_items;
            match !err with
            | Some m -> Error m
            | None ->
                (* Metrics sum per key (shard counters, busy seconds); key
                   order is first appearance across ascending shards. *)
                let keys = ref [] in
                List.iter
                  (fun (r : row) ->
                    List.iter (fun (k, _) -> if not (List.mem k !keys) then keys := !keys @ [ k ]) r.metrics)
                  sorted;
                let metrics =
                  List.map
                    (fun k ->
                      ( k,
                        List.fold_left
                          (fun acc (r : row) ->
                            match List.assoc_opt k r.metrics with Some v -> acc +. v | None -> acc)
                          0.0 sorted ))
                    !keys
                in
                Ok
                  {
                    first with
                    span = Some { lo = 0; hi = fspan.n_items; n_items = fspan.n_items; chunk_size = fspan.chunk_size };
                    metrics;
                    mismatches = Array.concat (List.map (fun (r : row) -> r.mismatches) sorted);
                    quarantined = Array.concat (List.map (fun (r : row) -> r.quarantined) sorted);
                  }
          end))

let merge (a : t) (b : t) : (t, string) result =
  if a.rev <> b.rev then
    Error (Printf.sprintf "datafile merge: rev drift (%S vs %S)" a.rev b.rev)
  else if a.config <> b.config then
    Error (Printf.sprintf "datafile merge: config drift (%S vs %S)" a.config b.config)
  else if a.seed <> b.seed then Error "datafile merge: seed drift"
  else begin
    let keys = ref [] in
    List.iter
      (fun (r : row) ->
        let k = (r.kind, r.func, r.repr, r.mode) in
        if not (List.mem k !keys) then keys := !keys @ [ k ])
      (a.rows @ b.rows);
    let err = ref None in
    let rows =
      List.filter_map
        (fun key ->
          let group =
            List.filter (fun (r : row) -> (r.kind, r.func, r.repr, r.mode) = key) (a.rows @ b.rows)
          in
          match group with
          | [ r ] -> Some r  (* present on one side only: passes through *)
          | group -> (
              match merge_rows group with
              | Ok r -> Some r
              | Error m ->
                  if !err = None then err := Some m;
                  None))
        !keys
    in
    match !err with
    | Some m -> Error m
    | None ->
        Ok
          {
            rev = a.rev;
            date = Stdlib.min a.date b.date;
            seed = a.seed;
            config = a.config;
            host = (if a.host = b.host then a.host else None);
            rows;
          }
  end

(* ------------------------------------------------------------------ *)
(* Diff: the bench-gate comparison semantics (moved from benchgate).   *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better

(* Infer the improvement direction from the metric name, matching the
   naming convention of bench/main.ml: times end in _ns/_s, ratios
   contain "speedup", throughputs contain "per_sec", percentages of a
   good thing (fast-path share, report agreement) end in "_pct";
   everything else (pivot/solve/fallback counts) is work and should not
   grow. *)
let direction_of key =
  if contains_sub "speedup" key || contains_sub "per_sec" key || contains_sub "_pct" key then
    Higher_better
  else Lower_better

let gated key =
  let pfx p = String.length key >= String.length p && String.sub key 0 (String.length p) = p in
  pfx "gen." || pfx "lp." || pfx "round." || pfx "sweep." || pfx "campaign." || pfx "serve."
  || pfx "prog."

type verdict = {
  key : string;
  base : float option;
  curr : float option;
  ratio : float;
  gated : bool;
  regressed : bool;
}

(* Worseness ratio with the degenerate baselines handled.  A gated work
   counter (fallbacks, pivots) legitimately sits at 0.0 until a change
   makes it grow — growth from a zero baseline is exactly the regression
   such a metric exists to catch, so it maps to [infinity], not to the
   old silently-passing 1.0.  Symmetrically, a speedup that collapses to
   zero (or a nonsense negative estimate) is a regression however large
   the baseline was. *)
let worse_ratio ~dir ~base ~curr =
  match dir with
  | Lower_better ->
      if base > 0.0 then curr /. base
      else if curr > 0.0 then infinity (* growth from a zero baseline *)
      else 1.0
  | Higher_better ->
      if curr > 0.0 then base /. curr
      else if base > 0.0 then infinity (* speedup collapsed to <= 0 *)
      else 1.0

(* [diff_metrics ~threshold base curr] pairs the two runs up, in
   baseline order.  A *gated* metric present in the baseline but absent
   from the current run is a failure, not a skip: renaming or dropping a
   gated benchmark would otherwise un-gate it silently.  Non-gated
   vanished metrics and metrics new in the current run are reported as
   informational. *)
let diff_metrics ?(threshold = 0.25) (base : (string * float) list)
    (curr : (string * float) list) : verdict list =
  let paired =
    List.map
      (fun (key, b) ->
        let g = gated key in
        match List.assoc_opt key curr with
        | None ->
            (* Vanished: only a failure where the gate depended on it. *)
            { key; base = Some b; curr = None; ratio = infinity; gated = g; regressed = g }
        | Some c ->
            let ratio = worse_ratio ~dir:(direction_of key) ~base:b ~curr:c in
            { key; base = Some b; curr = Some c; ratio; gated = g; regressed = g && ratio > 1.0 +. threshold })
      base
  in
  let fresh =
    List.filter_map
      (fun (key, c) ->
        if List.mem_assoc key base then None
        else
          (* New metric: no baseline to judge against; it becomes gated
             once this run's datafile is committed as the next baseline. *)
          Some { key; base = None; curr = Some c; ratio = 1.0; gated = gated key; regressed = false })
      curr
  in
  paired @ fresh

let metrics (t : t) = List.concat_map (fun (r : row) -> r.metrics) t.rows

let diff ?threshold (base : t) (curr : t) = diff_metrics ?threshold (metrics base) (metrics curr)

let any_regression verdicts = List.exists (fun v -> v.regressed) verdicts

let verdict_status v =
  match (v.base, v.curr) with
  | _, None when v.regressed -> "MISSING (gated metric vanished — renamed or dropped?)"
  | _, None -> "missing (info)"
  | None, _ -> "new (no baseline yet)"
  | Some _, Some _ ->
      if v.regressed then "REGRESSED"
      else if not v.gated then "info"
      else if v.ratio > 1.0 then "worse (within threshold)"
      else "ok"

let pp_diff fmt ~threshold verdicts =
  Format.fprintf fmt "%-45s %12s %12s %8s  %s@." "metric" "baseline" "current" "ratio" "status";
  List.iter
    (fun v ->
      let num = function Some x -> Printf.sprintf "%12.3f" x | None -> Printf.sprintf "%12s" "-" in
      Format.fprintf fmt "%-45s %s %s %7.2fx  %s@." v.key (num v.base) (num v.curr) v.ratio
        (verdict_status v))
    verdicts;
  let bad = List.filter (fun v -> v.regressed) verdicts in
  if bad = [] then
    Format.fprintf fmt "gate: OK (%d metrics compared, threshold %.0f%%)@." (List.length verdicts)
      (100.0 *. threshold)
  else begin
    let missing, slow = List.partition (fun v -> v.curr = None) bad in
    if slow <> [] then
      Format.fprintf fmt "gate: FAIL — %d gated metric(s) regressed more than %.0f%%@."
        (List.length slow) (100.0 *. threshold);
    if missing <> [] then
      Format.fprintf fmt "gate: FAIL — %d gated metric(s) missing from the current run@."
        (List.length missing)
  end

(* ------------------------------------------------------------------ *)
(* Host comparability.                                                 *)
(* ------------------------------------------------------------------ *)

let host_mismatch (a : t) (b : t) : string list =
  match (a.host, b.host) with
  | None, None -> [ "neither run records its machine context (jobs/cpus/ocaml)" ]
  | None, Some _ -> [ "baseline records no machine context (pre-schema file?)" ]
  | Some _, None -> [ "current run records no machine context" ]
  | Some ha, Some hb ->
      let r = ref [] in
      if ha.jobs <> hb.jobs then
        r := !r @ [ Printf.sprintf "jobs differ: %d vs %d" ha.jobs hb.jobs ];
      if ha.cpus <> hb.cpus then
        r := !r @ [ Printf.sprintf "cpus differ: %d vs %d" ha.cpus hb.cpus ];
      if ha.ocaml <> hb.ocaml then
        r := !r @ [ Printf.sprintf "ocaml differs: %s vs %s" ha.ocaml hb.ocaml ];
      !r

let header_fields (t : t) : (string * string) list =
  [ ("rev", t.rev); ("date", t.date) ]
  @ (match t.seed with Some s -> [ ("seed", string_of_int s) ] | None -> [])
  @ (if t.config = "" then [] else [ ("config", t.config) ])
  @
  match t.host with
  | Some h ->
      [ ("jobs", string_of_int h.jobs); ("cpus", string_of_int h.cpus); ("ocaml", h.ocaml) ]
  | None -> []

(* ------------------------------------------------------------------ *)
(* Markdown rendering (PR review, $GITHUB_STEP_SUMMARY).               *)
(* ------------------------------------------------------------------ *)

let markdown_diff ?(threshold = 0.25) (base : t) (curr : t) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let host_str = function
    | Some h -> Printf.sprintf "%d jobs / %d cpus / ocaml %s" h.jobs h.cpus h.ocaml
    | None -> "(not recorded)"
  in
  pf "### Datafile diff\n\n";
  pf "| | baseline | current |\n|---|---|---|\n";
  pf "| rev | `%s` | `%s` |\n" base.rev curr.rev;
  pf "| date | %s | %s |\n" base.date curr.date;
  pf "| host | %s | %s |\n\n" (host_str base.host) (host_str curr.host);
  (match host_mismatch base curr with
  | [] -> ()
  | reasons ->
      pf "> **Warning** — runs are not host-comparable, ratios may be noise: %s\n\n"
        (String.concat "; " reasons));
  let verdicts = diff ~threshold base curr in
  (* Progressive Pareto metrics (prefix degree, fast-tier share, tiered
     latency) get their own table: they describe a cost–accuracy
     trade-off, not a single scalar to eyeball among the others. *)
  let is_prog v = String.length v.key >= 5 && String.sub v.key 0 5 = "prog." in
  let prog_vs, main_vs = List.partition is_prog verdicts in
  let table vs =
    pf "| metric | baseline | current | ratio | status |\n|---|---:|---:|---:|---|\n";
    List.iter
      (fun v ->
        let num = function Some x -> Printf.sprintf "%.3f" x | None -> "—" in
        let status = verdict_status v in
        let status = if v.regressed then "**" ^ status ^ "**" else status in
        pf "| `%s` | %s | %s | %.2fx | %s |\n" v.key (num v.base) (num v.curr) v.ratio status)
      vs;
    pf "\n"
  in
  table main_vs;
  if prog_vs <> [] then begin
    pf "#### Progressive Pareto (prefix tier)\n\n";
    table prog_vs
  end;
  let bad = List.filter (fun v -> v.regressed) verdicts in
  if bad = [] then
    pf "**gate: OK** (%d metrics compared, threshold %.0f%%)\n" (List.length verdicts)
      (100.0 *. threshold)
  else begin
    let missing, slow = List.partition (fun v -> v.curr = None) bad in
    if slow <> [] then
      pf "**gate: FAIL** — %d gated metric(s) regressed more than %.0f%%\n" (List.length slow)
        (100.0 *. threshold);
    if missing <> [] then
      pf "**gate: FAIL** — %d gated metric(s) missing from the current run\n" (List.length missing)
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Canonical campaign report text.  Byte-compatible with               *)
(* Campaign.Report.text: a campaign must reproduce this at any shard   *)
(* count, any worker count, fast or oracle verifier — so it carries no *)
(* timings, shard counts or verifier counters.                         *)
(* ------------------------------------------------------------------ *)

let campaign_text (r : row) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b r.identity;
  Buffer.add_char b '\n';
  Array.iter
    (fun (x : mismatch) ->
      Buffer.add_string b (Printf.sprintf "mismatch 0x%x got 0x%x want 0x%x\n" x.pattern x.got x.want))
    r.mismatches;
  Array.iter
    (fun (lo, hi, msg) ->
      Buffer.add_string b (Printf.sprintf "quarantined [%d,%d): %s\n" lo hi msg))
    r.quarantined;
  let n_items = match r.span with Some s -> s.n_items | None -> 0 in
  Buffer.add_string b
    (Printf.sprintf "total %d mismatches, %d quarantined ranges over %d points\n"
       (Array.length r.mismatches) (Array.length r.quarantined) n_items);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Producer helpers.                                                   *)
(* ------------------------------------------------------------------ *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"
