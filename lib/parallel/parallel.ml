(* Domain-based work sharding for the embarrassingly parallel passes of
   the generator pipeline (oracle enumeration, Algorithm 4's Check, the
   final validation replay, batch evaluation).

   Determinism contract: shard boundaries depend ONLY on the item count
   [n] — never on the job count — and per-shard results are merged in
   shard order on the calling domain.  Any fold whose combine is applied
   left-to-right over the shard results therefore produces bit-identical
   output at every job count, including jobs=1 (which runs the same
   shards sequentially, spawning no domain at all).  Work *scheduling*
   (which domain runs which shard) is free to race; work *results* never
   do.

   Worker closures must not touch shared mutable state.  The repo-wide
   conventions that make the hot paths safe:
   - one-shot caches go through {!Once} (domain-safe lazy);
   - keyed caches (oracle constants, libm cache) are mutex-protected;
   - scratch buffers are allocated per shard, never captured. *)

(* ------------------------------------------------------------------ *)
(* Job-count resolution: RLIBM_JOBS env, CLI override, or the runtime's
   recommendation.                                                     *)
(* ------------------------------------------------------------------ *)

let override = ref None

(** CLI knob: force the job count for every subsequent run. *)
let set_jobs j = override := Some (Stdlib.max 1 j)

let jobs () =
  match !override with
  | Some j -> j
  | None -> (
      match Sys.getenv_opt "RLIBM_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j >= 1 -> j
          | _ -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Deterministic shards.                                               *)
(* ------------------------------------------------------------------ *)

(* Enough shards that work-stealing balances the very uneven per-input
   cost (Ziv-loop precision escalation), few enough that per-shard
   overhead stays invisible next to one oracle call. *)
let target_shards = 64

(** Shard boundaries for [n] items: an array of [lo, hi) ranges covering
    [0, n) in order.  A function of [n] alone. *)
let shards n =
  if n <= 0 then [||]
  else begin
    let ns = Stdlib.min n target_shards in
    Array.init ns (fun i -> (i * n / ns, (i + 1) * n / ns))
  end

(* ------------------------------------------------------------------ *)
(* Per-run timing.                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  jobs : int;
  n_items : int;
  n_shards : int;
  wall_seconds : float;
  shard_seconds : float array;  (* indexed by shard *)
}

let last : stats option ref = ref None

(** Timing of the most recent run on this domain (runs never nest). *)
let last_stats () = !last

(* ------------------------------------------------------------------ *)
(* The runner.                                                         *)
(* ------------------------------------------------------------------ *)

(* Apply [f] to every shard of [0, n), returning per-shard results in
   shard order.  Exceptions re-raise deterministically: the one from the
   lowest-numbered failing shard wins, whatever domain hit it first. *)
let run ?jobs:j ~n (f : lo:int -> hi:int -> 'a) : 'a array =
  let sh = shards n in
  let ns = Array.length sh in
  let j = Stdlib.max 1 (match j with Some j -> j | None -> jobs ()) in
  let j = Stdlib.min j (Stdlib.max 1 ns) in
  let times = Array.make ns 0.0 in
  let t0 = Unix.gettimeofday () in
  let out : 'a option array = Array.make ns None in
  let failed : exn option array = Array.make ns None in
  let run_shard i =
    let lo, hi = sh.(i) in
    let s0 = Unix.gettimeofday () in
    (match f ~lo ~hi with
    | r -> out.(i) <- Some r
    | exception e -> failed.(i) <- Some e);
    times.(i) <- Unix.gettimeofday () -. s0
  in
  if j = 1 then
    for i = 0 to ns - 1 do
      run_shard i
    done
  else begin
    let next = Atomic.make 0 in
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= ns then continue := false else run_shard i
      done
    in
    let doms = Array.init (j - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join doms
  end;
  last := Some { jobs = j; n_items = n; n_shards = ns; wall_seconds = Unix.gettimeofday () -. t0; shard_seconds = times };
  Array.iter (function Some e -> raise e | None -> ()) failed;
  Array.map (function Some r -> r | None -> assert false) out

(** [map_chunks ?jobs ~n f] applies [f ~lo ~hi] to every deterministic
    shard of [0, n) and returns the results in shard order. *)
let map_chunks ?jobs ~n f = run ?jobs ~n f

(** [fold_chunks ?jobs ~n ~combine ~init chunk] folds the per-shard
    results left-to-right in shard order; [combine] need not be
    commutative for the result to be identical at every job count. *)
let fold_chunks ?jobs ~n ~combine ~init chunk =
  Array.fold_left combine init (run ?jobs ~n chunk)

(** [find_violation ?jobs ~n pred] is the smallest [i] in [0, n) with
    [pred i], or [None] — canonical lowest-input-first, at every job
    count.  Shards past an already-found violation are skipped. *)
let find_violation ?jobs ~n pred =
  let best = Atomic.make max_int in
  let chunk ~lo ~hi =
    if lo >= Atomic.get best then None
    else begin
      let found = ref None in
      let i = ref lo in
      while !found = None && !i < hi do
        if pred !i then found := Some !i;
        incr i
      done;
      (match !found with
      | Some v ->
          let rec lower () =
            let b = Atomic.get best in
            if v < b && not (Atomic.compare_and_set best b v) then lower ()
          in
          lower ()
      | None -> ());
      !found
    end
  in
  Array.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> r)
    None (run ?jobs ~n chunk)

(* ------------------------------------------------------------------ *)
(* Domain-safe one-shot initialization (a [lazy] that may be forced     *)
(* from any domain).                                                   *)
(* ------------------------------------------------------------------ *)

module Once = struct
  type 'a t = { v : 'a option Atomic.t; mu : Mutex.t; f : unit -> 'a }

  let make f = { v = Atomic.make None; mu = Mutex.create (); f }

  (* Double-checked: the fast path is one atomic load, so table lookups
     in the runtime hot loops cost the same as a forced [lazy]. *)
  let get t =
    match Atomic.get t.v with
    | Some x -> x
    | None ->
        Mutex.protect t.mu (fun () ->
            match Atomic.get t.v with
            | Some x -> x
            | None ->
                let x = t.f () in
                Atomic.set t.v (Some x);
                x)
end
