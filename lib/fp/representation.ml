(* The interface every 32-/16-bit target representation T implements.

   Patterns are plain non-negative [int]s of [bits] width so the
   generator pipeline can enumerate, hash and table them uniformly for
   IEEE formats and posits alike. *)

type class_ = Finite | Inf of int  (* sign: 1 or -1 *) | Nan

module type S = sig
  val name : string

  (** Storage width in bits; patterns live in [0, 2^bits). *)
  val bits : int

  val classify : int -> class_

  (** Exact value of a [Finite] pattern (all our targets embed exactly in
      double). Unspecified for [Inf]/[Nan] patterns. *)
  val to_double : int -> float

  (** Exact value of a [Finite] pattern as a rational. *)
  val to_rational : int -> Rational.t

  (** Round an exact real to a representable pattern under [mode]
      (default {!Rounding_mode.Rne}), using the format's own rules: IEEE
      formats overflow to infinity under the nearest modes and saturate
      at the largest finite value under the directed/odd modes; posits
      always saturate and never round a nonzero value to zero. *)
  val round_rational : ?mode:Rounding_mode.t -> Rational.t -> int

  (** Round a double to a pattern under [mode]; must agree with
      [round_rational ?mode (Rational.of_float x)] on finite [x] and be
      fast enough for the benchmark loops. *)
  val of_double : ?mode:Rounding_mode.t -> float -> int

  (** Map a non-[Nan] pattern to an integer line monotone in the value it
      represents (IEEE formats are sign-magnitude, posits are two's
      complement, so each format supplies its own). *)
  val order_key : int -> int

  (** Pattern of the next representable value above/below a non-[Nan]
      pattern on the format's value order, saturating at the ends
      (infinities for IEEE, NaR neighbors for posits).  Needed by the
      mode-aware rounding-interval search, whose open boundaries sit on
      neighbor values. *)
  val next_up : int -> int

  val next_down : int -> int
end

(** [ulp_distance (module T) a b] counts the representable values
    separating two non-[Nan] patterns on T's monotone ordering. *)
let ulp_distance (module T : S) a b = abs (T.order_key a - T.order_key b)
