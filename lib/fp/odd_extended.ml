(* The RLIBM-ALL derivation (Lim & Nagarakatte 2021): widen a base IEEE
   format by two mantissa bits and generate its table under
   round-to-odd.  Because round-to-odd keeps a sticky record of every
   discarded bit and never lands on a tie, rounding the (n+2)-bit odd
   result down to any format of at most n mantissa bits, in any of the
   five standard modes, gives the same pattern as rounding the exact
   real directly — so one table serves every representation/mode pair.

   The functor is over the carrier of an {!Ieee.format} rather than a
   full {!Representation.S} because the extension is an IEEE-bit-layout
   construction (exponent range is preserved, the significand grows);
   posits have no analogous two-bit widening in the standard. *)

module type BASE = sig
  val fmt : Ieee.format

  (** Name of the extended format (e.g. "float34" for float32 + 2). *)
  val ext_name : string
end

module Make (T : BASE) : sig
  include Representation.S

  val fmt : Ieee.format

  (** [of_base_double x] embeds a double that is exactly representable
      in the extended format (every base-format value is); rounding mode
      is irrelevant on exact values. *)
  val of_base_double : float -> int
end = struct
  let fmt = { Ieee.name = T.ext_name; eb = T.fmt.Ieee.eb; mb = T.fmt.Ieee.mb + 2 }
  let name = T.ext_name
  let bits = Ieee.width fmt
  let classify p = Ieee.classify fmt p
  let to_double p = Ieee.to_double fmt p
  let to_rational p = Ieee.to_rational fmt p
  let round_rational ?mode q = Ieee.round_rational fmt ?mode q
  let of_double ?mode x = Ieee.of_double fmt ?mode x
  let order_key p = Ieee.order_key fmt p
  let next_up p = Ieee.next_up fmt p
  let next_down p = Ieee.next_down fmt p
  let of_base_double x = Ieee.of_double fmt x
end

(* [derive (module B) ~mode p ~of_ext] rounds an extended-format result
   pattern [p] to base format [B] under [mode].  [of_ext] supplies the
   extended pattern's double value (exact: mb + 2 <= 27 bits fit a
   double's 53).  This is the "one table, every mode" evaluation step:
   the extended value is the round-to-odd witness of the exact result. *)
let derive (module B : Representation.S) ~mode ~to_ext_double p =
  B.of_double ~mode (to_ext_double p)
