(* bfloat16: the float32 exponent range with a 7-bit significand.  Small
   enough to exercise the whole pipeline exhaustively, as the original
   16-bit RLIBM did. *)

let fmt = Ieee.bfloat16
let name = "bfloat16"
let bits = 16
let classify p = Ieee.classify fmt p
let to_double p = Ieee.to_double fmt p
let to_rational p = Ieee.to_rational fmt p
let round_rational ?mode q = Ieee.round_rational fmt ?mode q
let of_double ?mode x = Ieee.of_double fmt ?mode x
let order_key p = Ieee.order_key fmt p
let next_up p = Ieee.next_up fmt p
let next_down p = Ieee.next_down fmt p
