(* Generic small IEEE-754 binary formats (width <= 32), parameterized by
   exponent and trailing-significand widths.  Instantiated as float32,
   bfloat16 and float16 in their own modules. *)

module B = Bigint
module Q = Rational

type format = { name : string; eb : int; mb : int }

let float32 = { name = "float32"; eb = 8; mb = 23 }
let bfloat16 = { name = "bfloat16"; eb = 8; mb = 7 }
let float16 = { name = "float16"; eb = 5; mb = 10 }

let width f = 1 + f.eb + f.mb
let bias f = (1 lsl (f.eb - 1)) - 1
let exp_mask f = (1 lsl f.eb) - 1
let mant_mask f = (1 lsl f.mb) - 1
let sign_bit f = 1 lsl (width f - 1)

(* Smallest normal exponent (unbiased). *)
let emin f = 1 - bias f

(* Largest finite exponent (unbiased). *)
let emax f = bias f

let classify f p =
  let e = (p lsr f.mb) land exp_mask f in
  let m = p land mant_mask f in
  if e = exp_mask f then (if m = 0 then Representation.Inf (if p land sign_bit f = 0 then 1 else -1) else Representation.Nan)
  else Representation.Finite

let to_double f p =
  let s = if p land sign_bit f = 0 then 1.0 else -1.0 in
  let e = (p lsr f.mb) land exp_mask f in
  let m = p land mant_mask f in
  if e = exp_mask f then (if m = 0 then s *. infinity else Float.nan)
  else if e = 0 then s *. Float.ldexp (float_of_int m) (emin f - f.mb)
  else s *. Float.ldexp (float_of_int (m lor (1 lsl f.mb))) (e - bias f - f.mb)

let to_rational f p =
  match classify f p with
  | Representation.Finite -> Q.of_float (to_double f p)
  | Representation.Inf _ | Representation.Nan -> invalid_arg (f.name ^ ".to_rational: not finite")

let nan_pattern f = (exp_mask f lsl f.mb) lor (1 lsl (f.mb - 1))
let inf_pattern f sign = (if sign < 0 then sign_bit f else 0) lor (exp_mask f lsl f.mb)

(* Round an exact rational to the nearest pattern, ties to even, with
   IEEE overflow to infinity and gradual underflow.  This is the direct
   real -> T rounding (no intermediate double), which matters: rounding
   through double first is exactly the double-rounding bug the paper
   pins on CR-LIBM (§4.2). *)
let round_rational f q =
  if Q.is_zero q then 0
  else begin
    let sign = if Q.sign q < 0 then sign_bit f else 0 in
    let a = Q.abs q in
    let e = Q.ilog2 a in
    if e > emax f + 1 then sign lor (exp_mask f lsl f.mb)
    else begin
      (* Effective precision: full for normals, reduced in the subnormal
         range; [e] below all subnormals yields precision <= 0 and a
         zero/minsub decision by the same rounding formula. *)
      let prec = if e >= emin f then f.mb + 1 else f.mb + 1 + (e - emin f) in
      if prec <= 0 then begin
        (* |q| < 2^(emin - mb - 1) * 2 : compare against half of minsub. *)
        let half_minsub = Q.of_pow2 (emin f - f.mb - 1) in
        let c = Q.compare a half_minsub in
        if c > 0 then sign lor 1 else sign (* tie rounds to even = 0 *)
      end
      else begin
        let k = prec - 1 - e in
        let n = Q.num a and d = Q.den a in
        let num = if k >= 0 then B.shift_left n k else n in
        let den = if k >= 0 then d else B.shift_left d (-k) in
        let quot, rem = B.divmod num den in
        let m = B.to_int_exn quot in
        let twice = B.shift_left rem 1 in
        let c = B.compare twice den in
        let m = if c > 0 || (c = 0 && m land 1 = 1) then m + 1 else m in
        (* Value is now m * 2^scale with m < 2^(prec+1); a carry out of
           the binade just bumps the scale.  In the subnormal branch
           [scale = emin - mb] by construction, so a significand that
           grows to 2^mb lands exactly on the smallest normal. *)
        let scale = e - prec + 1 in
        let m, scale = if m = 1 lsl prec then (m lsr 1, scale + 1) else (m, scale) in
        if m lsr f.mb > 0 then begin
          let unbiased = f.mb + scale in
          if unbiased > emax f then sign lor (exp_mask f lsl f.mb)
          else sign lor ((unbiased + bias f) lsl f.mb) lor (m land mant_mask f)
        end
        else
          (* Subnormal: the field encodes value * 2^(mb - emin); before a
             carry [scale = emin - mb] exactly, after one it is one
             higher. *)
          sign lor (m lsl (scale - (emin f - f.mb)))
      end
    end
  end

let of_double f x =
  if Float.is_nan x then nan_pattern f
  else if x = infinity then inf_pattern f 1
  else if x = neg_infinity then inf_pattern f (-1)
  else if x = 0.0 then if 1.0 /. x < 0.0 then sign_bit f else 0
  else round_rational f (Q.of_float x)

let order_key f p = if p land sign_bit f = 0 then p else sign_bit f - p

(* Pattern-level GetNext/GetPrev (Algorithm 2's neighbor walk), matching
   {!Fp64.next_up}/{!Fp64.next_down} value semantics: +-0 step to the
   smallest subnormal of the step's sign, the infinities saturate in
   their own direction and step back to the largest finite the other
   way.
   @raise Invalid_argument on a NaN pattern. *)
let next_up f p =
  match classify f p with
  | Representation.Nan -> invalid_arg (f.name ^ ".next_up: nan pattern")
  | _ ->
      if p = inf_pattern f 1 then p
      else if p land sign_bit f = 0 then p + 1
      else if p = sign_bit f (* -0 *) then 1
      else p - 1

let next_down f p =
  match classify f p with
  | Representation.Nan -> invalid_arg (f.name ^ ".next_down: nan pattern")
  | _ ->
      if p = inf_pattern f (-1) then p
      else if p = 0 (* +0 *) then sign_bit f lor 1
      else if p land sign_bit f = 0 then p - 1
      else p + 1
