(* Generic small IEEE-754 binary formats (width <= 34), parameterized by
   exponent and trailing-significand widths.  Instantiated as float32,
   bfloat16 and float16 in their own modules, and extended with two
   extra mantissa bits by {!Odd_extended} for round-to-odd tables. *)

module B = Bigint
module Q = Rational
module M = Rounding_mode

type format = { name : string; eb : int; mb : int }

let float32 = { name = "float32"; eb = 8; mb = 23 }
let bfloat16 = { name = "bfloat16"; eb = 8; mb = 7 }
let float16 = { name = "float16"; eb = 5; mb = 10 }

let width f = 1 + f.eb + f.mb
let bias f = (1 lsl (f.eb - 1)) - 1
let exp_mask f = (1 lsl f.eb) - 1
let mant_mask f = (1 lsl f.mb) - 1
let sign_bit f = 1 lsl (width f - 1)

(* Smallest normal exponent (unbiased). *)
let emin f = 1 - bias f

(* Largest finite exponent (unbiased). *)
let emax f = bias f

let classify f p =
  let e = (p lsr f.mb) land exp_mask f in
  let m = p land mant_mask f in
  if e = exp_mask f then (if m = 0 then Representation.Inf (if p land sign_bit f = 0 then 1 else -1) else Representation.Nan)
  else Representation.Finite

let to_double f p =
  let s = if p land sign_bit f = 0 then 1.0 else -1.0 in
  let e = (p lsr f.mb) land exp_mask f in
  let m = p land mant_mask f in
  if e = exp_mask f then (if m = 0 then s *. infinity else Float.nan)
  else if e = 0 then s *. Float.ldexp (float_of_int m) (emin f - f.mb)
  else s *. Float.ldexp (float_of_int (m lor (1 lsl f.mb))) (e - bias f - f.mb)

let to_rational f p =
  match classify f p with
  | Representation.Finite -> Q.of_float (to_double f p)
  | Representation.Inf _ | Representation.Nan -> invalid_arg (f.name ^ ".to_rational: not finite")

let nan_pattern f = (exp_mask f lsl f.mb) lor (1 lsl (f.mb - 1))
let inf_pattern f sign = (if sign < 0 then sign_bit f else 0) lor (exp_mask f lsl f.mb)
let max_finite_pattern f sign =
  (if sign < 0 then sign_bit f else 0) lor ((exp_mask f - 1) lsl f.mb) lor mant_mask f

(* Where an out-of-range magnitude lands depends on the mode: the
   nearest modes overflow to infinity, toward-the-sign directed modes
   do too, while truncating modes saturate at the largest finite value
   (whose all-ones significand is odd, so round-to-odd also lands
   there and never produces a spurious infinity). *)
let overflow_pattern f mode sign =
  let neg = sign <> 0 in
  let to_inf =
    match mode with
    | M.Rne | M.Rna -> true
    | M.Up -> not neg
    | M.Down -> neg
    | M.Zero | M.Odd -> false
  in
  if to_inf then sign lor (exp_mask f lsl f.mb)
  else max_finite_pattern f (if neg then -1 else 1)

(* Shared tail of both rounding paths: the significand [m] (already
   incremented or not) with [prec] kept bits at scale [2^scale].  A
   carry out of the binade just bumps the scale; in the subnormal
   branch [scale = emin - mb] by construction, so a significand that
   grows to 2^mb lands exactly on the smallest normal. *)
let finish f mode sign m prec scale =
  let m, scale = if m = 1 lsl prec then (m lsr 1, scale + 1) else (m, scale) in
  if m lsr f.mb > 0 then begin
    let unbiased = f.mb + scale in
    if unbiased > emax f then overflow_pattern f mode sign
    else sign lor ((unbiased + bias f) lsl f.mb) lor (m land mant_mask f)
  end
  else
    (* Subnormal: the field encodes value * 2^(mb - emin). *)
    sign lor (m lsl (scale - (emin f - f.mb)))

(* Below every subnormal (|a| < minsub): the value is sandwiched
   between the two patterns 0 and 1, so the increment decision alone
   picks the result.  [half_cmp] compares |a| against half of minsub. *)
let underflow mode sign half_cmp =
  let up =
    M.round_up ~mode ~neg:(sign <> 0) ~odd:false ~inexact:true ~half_cmp
  in
  if up then sign lor 1 else sign

(* Round an exact rational to a pattern under [mode], with gradual
   underflow and mode-dependent overflow.  This is the direct real -> T
   rounding (no intermediate double), which matters: rounding through
   double first is exactly the double-rounding bug the paper pins on
   CR-LIBM (§4.2). *)
let round_rational f ?(mode = M.Rne) q =
  if Q.is_zero q then 0
  else begin
    let sign = if Q.sign q < 0 then sign_bit f else 0 in
    let a = Q.abs q in
    let e = Q.ilog2 a in
    if e > emax f + 1 then overflow_pattern f mode sign
    else begin
      (* Effective precision: full for normals, reduced in the subnormal
         range; [e] below all subnormals yields precision <= 0 and a
         zero/minsub decision by the same rounding rule. *)
      let prec = if e >= emin f then f.mb + 1 else f.mb + 1 + (e - emin f) in
      if prec <= 0 then
        underflow mode sign (Q.compare a (Q.of_pow2 (emin f - f.mb - 1)))
      else begin
        let k = prec - 1 - e in
        let n = Q.num a and d = Q.den a in
        let num = if k >= 0 then B.shift_left n k else n in
        let den = if k >= 0 then d else B.shift_left d (-k) in
        let quot, rem = B.divmod num den in
        let m = B.to_int_exn quot in
        let twice = B.shift_left rem 1 in
        let half_cmp = B.compare twice den in
        let inexact = B.compare rem B.zero <> 0 in
        let up =
          M.round_up ~mode ~neg:(sign <> 0) ~odd:(m land 1 = 1) ~inexact ~half_cmp
        in
        let m = if up then m + 1 else m in
        finish f mode sign m prec (e - prec + 1)
      end
    end
  end

(* Mode-aware double -> pattern in plain integer arithmetic.  The
   rounding-interval search probes this on every step, so going through
   {!round_rational}'s bignum path would dominate generation time; the
   double's 53-bit significand fits a native int, making the guard and
   sticky computation a couple of shifts.  Cross-checked against the
   rational path by a qcheck differential suite. *)
let of_double_finite f mode x =
  let bits = Int64.bits_of_float x in
  let neg = Int64.logand bits Int64.min_int <> 0L in
  let sign = if neg then sign_bit f else 0 in
  let de = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) in
  let dm = Int64.to_int (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) in
  if de = 0 then
    (* A subnormal double (|x| < 2^-1022) sits far below half of any
       target's smallest subnormal, but is still nonzero. *)
    underflow mode sign (-1)
  else begin
    let m53 = dm lor (1 lsl 52) in
    let e = de - 1023 in
    if e > emax f + 1 then overflow_pattern f mode sign
    else begin
      let prec = if e >= emin f then f.mb + 1 else f.mb + 1 + (e - emin f) in
      if prec <= 0 then
        (* |x| < minsub.  Only at e = emin - mb - 1 can |x| reach half
           of minsub, where the comparison is m53 against 2^52. *)
        underflow mode sign
          (if e < emin f - f.mb - 1 then -1 else compare m53 (1 lsl 52))
      else begin
        (* prec <= 26 < 53 for every format we instantiate. *)
        let shift = 53 - prec in
        let m = m53 lsr shift in
        let rest = m53 land ((1 lsl shift) - 1) in
        let inexact = rest <> 0 in
        let half_cmp = compare (rest lsl 1) (1 lsl shift) in
        let up =
          M.round_up ~mode ~neg ~odd:(m land 1 = 1) ~inexact ~half_cmp
        in
        let m = if up then m + 1 else m in
        finish f mode sign m prec (e - prec + 1)
      end
    end
  end

let of_double f ?(mode = M.Rne) x =
  if Float.is_nan x then nan_pattern f
  else if x = infinity then inf_pattern f 1
  else if x = neg_infinity then inf_pattern f (-1)
  else if x = 0.0 then if 1.0 /. x < 0.0 then sign_bit f else 0
  else of_double_finite f mode x

let order_key f p = if p land sign_bit f = 0 then p else sign_bit f - p

(* Pattern-level GetNext/GetPrev (Algorithm 2's neighbor walk), matching
   {!Fp64.next_up}/{!Fp64.next_down} value semantics: +-0 step to the
   smallest subnormal of the step's sign, the infinities saturate in
   their own direction and step back to the largest finite the other
   way.
   @raise Invalid_argument on a NaN pattern. *)
let next_up f p =
  match classify f p with
  | Representation.Nan -> invalid_arg (f.name ^ ".next_up: nan pattern")
  | _ ->
      if p = inf_pattern f 1 then p
      else if p land sign_bit f = 0 then p + 1
      else if p = sign_bit f (* -0 *) then 1
      else p - 1

let next_down f p =
  match classify f p with
  | Representation.Nan -> invalid_arg (f.name ^ ".next_down: nan pattern")
  | _ ->
      if p = inf_pattern f (-1) then p
      else if p = 0 (* +0 *) then sign_bit f lor 1
      else if p land sign_bit f = 0 then p - 1
      else p + 1
