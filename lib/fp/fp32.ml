(* IEEE-754 binary32, the paper's headline target type.  Round-to-
   nearest-even conversions to and from double use the hardware float
   path (OCaml's [Int32] bit-casts go through a C float cast, i.e.
   hardware round-to-nearest-even), which the tests cross-check against
   the exact rational rounding of {!Ieee}; the other modes use the
   integer rounding path, since the FPU's mode is not ours to flip. *)

let fmt = Ieee.float32
let name = "float32"
let bits = 32
let classify p = Ieee.classify fmt p
let to_rational p = Ieee.to_rational fmt p
let round_rational ?mode q = Ieee.round_rational fmt ?mode q
let order_key p = Ieee.order_key fmt p
let mask32 = (1 lsl 32) - 1
let to_double p = Int32.float_of_bits (Int32.of_int p)

let of_double ?(mode = Rounding_mode.Rne) x =
  match mode with
  | Rounding_mode.Rne -> Int32.to_int (Int32.bits_of_float x) land mask32
  | _ -> Ieee.of_double fmt ~mode x

let next_up p = Ieee.next_up fmt p
let next_down p = Ieee.next_down fmt p
