(* IEEE-754 binary16 (half precision). *)

let fmt = Ieee.float16
let name = "float16"
let bits = 16
let classify p = Ieee.classify fmt p
let to_double p = Ieee.to_double fmt p
let to_rational p = Ieee.to_rational fmt p
let round_rational ?mode q = Ieee.round_rational fmt ?mode q
let of_double ?mode x = Ieee.of_double fmt ?mode x
let order_key p = Ieee.order_key fmt p
let next_up p = Ieee.next_up fmt p
let next_down p = Ieee.next_down fmt p
