(* First-class rounding modes for the whole pipeline (RLIBM-ALL, Lim &
   Nagarakatte 2021).  The five IEEE-754 modes plus round-to-odd, the
   auxiliary mode that makes one generated table serve every other mode:
   rounding an (n+2)-bit round-to-odd result to n bits in any standard
   mode equals rounding the exact real directly.

   Round-to-odd truncates toward zero and then sets the significand's
   last bit whenever any discarded bit was nonzero ("sticky").  It never
   faces a tie, and the two guard bits absorb the double rounding. *)

type t =
  | Rne  (* round to nearest, ties to even — IEEE default *)
  | Rna  (* round to nearest, ties away from zero *)
  | Up  (* toward +infinity *)
  | Down  (* toward -infinity *)
  | Zero  (* toward zero (truncate) *)
  | Odd  (* round to odd (von Neumann rounding) *)

(* The five standard IEEE-754 modes; [Odd] is the internal table mode. *)
let standard = [ Rne; Rna; Up; Down; Zero ]
let all = standard @ [ Odd ]

let to_string = function
  | Rne -> "rne"
  | Rna -> "rna"
  | Up -> "up"
  | Down -> "down"
  | Zero -> "zero"
  | Odd -> "odd"

let of_string = function
  | "rne" | "nearest" -> Some Rne
  | "rna" | "away" -> Some Rna
  | "up" | "ceil" -> Some Up
  | "down" | "floor" -> Some Down
  | "zero" | "trunc" -> Some Zero
  | "odd" -> Some Odd
  | _ -> None

let pp fmt m = Format.pp_print_string fmt (to_string m)

(* [nearest m] is true for the two tie-breaking modes.  Their rounding
   regions are closed boxes of doubles (the classic RLIBM formulation);
   the directed modes and round-to-odd have half-open regions whose
   boundaries are representable values, which is where the strict LP
   inequalities below come in. *)
let nearest = function Rne | Rna -> true | Up | Down | Zero | Odd -> false

(* The single increment decision every binary format shares.  Given the
   magnitude truncated to the target precision, decide whether to bump
   it by one ulp:
   [neg]      sign of the value being rounded;
   [odd]      parity of the truncated significand's last kept bit;
   [inexact]  any discarded bit nonzero;
   [half_cmp] sign of (discarded part - half an ulp): -1, 0 or +1. *)
let round_up ~mode ~neg ~odd ~inexact ~half_cmp =
  match mode with
  | Rne -> half_cmp > 0 || (half_cmp = 0 && odd)
  | Rna -> half_cmp >= 0
  | Zero -> false
  | Up -> inexact && not neg
  | Down -> inexact && neg
  | Odd -> inexact && not odd
