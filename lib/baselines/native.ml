(* Mini-max comparator libraries (the paper's glibc/Intel/MetaLibm
   stand-ins, §4.1).

   Two variants share one code path:

   - [F32]: every arithmetic step and table entry is rounded to float32
     — a straightforward single-precision implementation, the analog of
     the float libms that Table 1 shows misrounding 1e5–1e8 inputs;
   - [F64]: the same structure in double with higher-degree polynomials
     — the analog of the double libms that misround only a handful.

   Both approximate the *real value* of f with near-minimax polynomials
   ({!Minimax}); neither knows anything about rounding intervals.  The
   contrast with the RLIBM functions is the paper's thesis.

   Overflow/underflow thresholds are those of the *implementation*
   precision (float32 for F32, double for F64), not of the target type:
   a repurposed double library saturates where double does, which is
   precisely why Table 2 shows it failing on hundreds of millions of
   posit inputs — posits saturate where doubles flush to zero or
   overflow to infinity. *)

module E = Oracle.Elementary
module Q = Rational

type mode = F32 | F64

(* Per-step rounding. *)
let rnd = function
  | F32 -> fun x -> Int32.float_of_bits (Int32.bits_of_float x)
  | F64 -> fun x -> x

let poly_degree = function F32 -> 3 | F64 -> 6

(* Implementation-precision saturation points. *)
type sat = { exp_hi : float; exp_lo : float; exp2_hi : float; exp2_lo : float; exp10_hi : float; exp10_lo : float }

let sat_of = function
  | F32 ->
      { exp_hi = 88.73; exp_lo = -103.98; exp2_hi = 128.0; exp2_lo = -150.0;
        exp10_hi = 38.54; exp10_lo = -45.16 }
  | F64 ->
      { exp_hi = 709.79; exp_lo = -745.2; exp2_hi = 1024.0; exp2_lo = -1075.0;
        exp10_hi = 308.26; exp10_lo = -323.7 }

(* f(q)/q as an oracle, for fitting odd functions with the r factor
   pulled out (Chebyshev nodes are never exactly zero). *)
let div_by_arg (f : E.fn) : E.fn =
 fun ~prec q ->
  match f ~prec q with
  | E.Exact e -> E.Exact (Q.div e q)
  | E.Approx b ->
      E.Approx (Oracle.Bigfloat.div ~prec:(prec + 60) b (Oracle.Bigfloat.of_dyadic q))

type family_tables = {
  exp2_j : float array;
  ln_f : float array;
  log2_f : float array;
  log10_f : float array;
  sinpi_n : float array;
  cospi_n : float array;
  sinh_n : float array;
  cosh_n : float array;
  ln2 : float;
  log10_2 : float;
  cw_exp : Funcs.Tables.cody_waite;
  cw_exp10 : Funcs.Tables.cody_waite;
  c_exp : float array;  (* e^r *)
  c_exp2 : float array;
  c_exp10 : float array;
  c_ln1p : float array;  (* ln(1+r)/r *)
  c_log2_1p : float array;
  c_log10_1p : float array;
  c_sinpi : float array;  (* sinpi(r)/r *)
  c_cospi : float array;
  c_sinh : float array;  (* sinh(r)/r *)
  c_cosh : float array;
}

let build mode =
  let r = rnd mode in
  let d = poly_degree mode in
  let tab a = Array.map r (Parallel.Once.get a) in
  let fit f lo hi = Array.map r (Minimax.interpolate f ~lo ~hi ~degree:d) in
  {
    exp2_j = tab Funcs.Tables.exp2_j;
    ln_f = tab Funcs.Tables.ln_f;
    log2_f = tab Funcs.Tables.log2_f;
    log10_f = tab Funcs.Tables.log10_f;
    sinpi_n = tab Funcs.Tables.sinpi_n;
    cospi_n = tab Funcs.Tables.cospi_n;
    sinh_n = tab Funcs.Tables.sinh_n;
    cosh_n = tab Funcs.Tables.cosh_n;
    ln2 = r (Parallel.Once.get Funcs.Tables.ln2_d);
    log10_2 = r (Parallel.Once.get Funcs.Tables.log10_2_d);
    cw_exp = Parallel.Once.get Funcs.Tables.ln2_over_64;
    cw_exp10 = Parallel.Once.get Funcs.Tables.log10_2_over_64;
    c_exp = fit E.exp (-0.0054182) 0.0054182;
    c_exp2 = fit E.exp2 (-0.0078125) 0.0078125;
    c_exp10 = fit E.exp10 (-0.0023526) 0.0023526;
    c_ln1p = fit (div_by_arg E.ln_1p) 1e-9 0.0078125;
    c_log2_1p = fit (div_by_arg E.log2_1p) 1e-9 0.0078125;
    c_log10_1p = fit (div_by_arg E.log10_1p) 1e-9 0.0078125;
    c_sinpi = fit (div_by_arg E.sinpi) 1e-9 (1.0 /. 512.0);
    c_cospi = fit E.cospi 0.0 (1.0 /. 512.0);
    c_sinh = fit (div_by_arg E.sinh) 1e-9 (1.0 /. 64.0);
    c_cosh = fit E.cosh 0.0 (1.0 /. 64.0);
  }

(* Domain-safe one-shot build: the correctness checker's sharded count
   loop may force these from any worker domain. *)
let tables_f32 = Parallel.Once.make (fun () -> build F32)
let tables_f64 = Parallel.Once.make (fun () -> build F64)

(* Rounded Horner. *)
let horner r coeffs x =
  let acc = ref coeffs.(Array.length coeffs - 1) in
  for i = Array.length coeffs - 2 downto 0 do
    acc := r (coeffs.(i) +. r (!acc *. x))
  done;
  !acc

type lib = { eval : string -> float -> float }

(** Build the comparator library.  [trig_int] is the target-type bound
    past which every representable input is an integer (a float library
    for that type special-cases it the same way). *)
let make mode ~trig_int =
  let tb = Parallel.Once.get (match mode with F32 -> tables_f32 | F64 -> tables_f64) in
  let s = sat_of mode in
  let r = rnd mode in
  let exp_like ~hi ~lo ~inv_c ~(cw : Funcs.Tables.cody_waite) coeffs x =
    if Float.is_nan x then Float.nan
    else if x >= hi then infinity
    else if x <= lo then 0.0
    else begin
      let k = Float.to_int (Float.round (x *. inv_c)) in
      let fk = float_of_int k in
      let rr = r (r (x -. (fk *. cw.hi)) -. r (fk *. cw.lo)) in
      let q = k asr 6 and j = k land 63 in
      r (Funcs.Tables.pow2 q *. r (tb.exp2_j.(j) *. horner r coeffs rr))
    end
  in
  let log_like ~scale ~ftab coeffs x =
    if Float.is_nan x || x < 0.0 then Float.nan
    else if x = 0.0 then neg_infinity
    else if x = infinity then infinity
    else begin
      let red = Funcs.Reductions.log_reduce x in
      let j, e = Funcs.Reductions.log_key red.key in
      let rr = r red.r in
      let p = r (horner r coeffs rr *. rr) in
      r (r (float_of_int e *. scale) +. r (ftab.(j) +. p))
    end
  in
  let sinpi_impl x =
    if not (Float.is_finite x) then Float.nan
    else if Float.abs x >= trig_int then 0.0
    else begin
      let red = Funcs.Reductions.sinpi_reduce x in
      let n = red.key land 0x1FF in
      let sg = if red.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
      let rr = r red.r in
      let vs = r (horner r tb.c_sinpi rr *. rr) and vc = horner r tb.c_cospi rr in
      sg *. r (r (tb.sinpi_n.(n) *. vc) +. r (tb.cospi_n.(n) *. vs))
    end
  in
  let cospi_impl x =
    if not (Float.is_finite x) then Float.nan
    else if Float.abs x >= trig_int then if Float.rem (Float.abs x) 2.0 = 1.0 then -1.0 else 1.0
    else begin
      let red = Funcs.Reductions.cospi_reduce x in
      let n' = red.key land 0x1FF in
      let sg = if red.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
      let rr = r red.r in
      let vs = r (horner r tb.c_sinpi rr *. rr) and vc = horner r tb.c_cospi rr in
      if n' = 0 then sg *. vc
      else sg *. r (r (tb.cospi_n.(n') *. vc) +. r (tb.sinpi_n.(n') *. vs))
    end
  in
  (* Past |x| ~ 80 the table runs out; e^-2|x| is far below one ulp, so
     sinh and cosh are e^|x|/2 there (what a real implementation does). *)
  let exp_for_big =
    exp_like ~hi:(s.exp_hi +. 0.70001) ~lo:neg_infinity ~inv_c:92.332482616893656877 ~cw:tb.cw_exp
      tb.c_exp
  in
  let sinh_impl x =
    if Float.is_nan x then Float.nan
    else begin
      let a = Float.abs x and sg = if x < 0.0 then -1.0 else 1.0 in
      if a >= 80.0 then sg *. r (0.5 *. exp_for_big a)
      else begin
        let red = Funcs.Reductions.sinhcosh_reduce x in
        let n = red.key land 0x1FFF in
        let rr = r red.r in
        let vs = r (horner r tb.c_sinh rr *. rr) and vc = horner r tb.c_cosh rr in
        sg *. r (r (tb.sinh_n.(n) *. vc) +. r (tb.cosh_n.(n) *. vs))
      end
    end
  in
  let cosh_impl x =
    if Float.is_nan x then Float.nan
    else begin
      let a = Float.abs x in
      if a >= 80.0 then r (0.5 *. exp_for_big a)
      else begin
        let red = Funcs.Reductions.sinhcosh_reduce x in
        let n = red.key land 0x1FFF in
        let rr = r red.r in
        let vs = r (horner r tb.c_sinh rr *. rr) and vc = horner r tb.c_cosh rr in
        r (r (tb.cosh_n.(n) *. vc) +. r (tb.sinh_n.(n) *. vs))
      end
    end
  in
  let eval name =
    match name with
    | "exp" ->
        exp_like ~hi:s.exp_hi ~lo:s.exp_lo ~inv_c:92.332482616893656877 ~cw:tb.cw_exp tb.c_exp
    | "exp2" ->
        exp_like ~hi:s.exp2_hi ~lo:s.exp2_lo ~inv_c:64.0
          ~cw:{ Funcs.Tables.hi = 0.015625; lo = 0.0 }
          tb.c_exp2
    | "exp10" ->
        exp_like ~hi:s.exp10_hi ~lo:s.exp10_lo ~inv_c:212.60335893188592315 ~cw:tb.cw_exp10
          tb.c_exp10
    | "ln" -> log_like ~scale:tb.ln2 ~ftab:tb.ln_f tb.c_ln1p
    | "log2" -> log_like ~scale:1.0 ~ftab:tb.log2_f tb.c_log2_1p
    | "log10" -> log_like ~scale:tb.log10_2 ~ftab:tb.log10_f tb.c_log10_1p
    | "sinpi" -> sinpi_impl
    | "cospi" -> cospi_impl
    | "sinh" -> sinh_impl
    | "cosh" -> cosh_impl
    | _ -> invalid_arg ("Native.make: unknown function " ^ name)
  in
  { eval }

(** Pattern-level comparator for one target. *)
let eval_pattern mode (t : Funcs.Specs.target) name =
  let lib = make mode ~trig_int:t.trig_int in
  let f = lib.eval name in
  let module T = (val t.repr) in
  fun pat -> T.of_double (f (T.to_double pat))
