(* CR-LIBM analog.

   CR-LIBM provides *double*-precision correctly rounded functions; the
   paper uses it on 32-bit types by rounding the correct double result
   to the target, and Table 1 shows the residual failures: double
   rounding.  Two artifacts reproduce the two ways the paper uses it:

   - {!round_via_double}: the exact semantics — correctly round to
     double (our oracle plays CR-LIBM), then round that double to the
     target.  Used by the correctness checker; its only failures are
     genuine double-rounding cases.
   - {!timed_eval}: a run-time cost model for the benchmarks — CR-LIBM's
     quick phase is a double-double (Dekker arithmetic) polynomial of
     roughly twice the degree, costing ~2-3x a plain double path, which
     is the performance shape Figure 3(c) reports. *)

module E = Oracle.Elementary
module Q = Rational

(** Correctly-rounded-to-double, then rounded to T: the CR-LIBM
    composition of §4.1 with its double-rounding behavior. *)
let round_via_double (module T : Fp.Representation.S) (f : E.fn) pat =
  let d = E.to_double f (T.to_rational pat) in
  T.of_double d

(* ------------------------------------------------------------------ *)
(* Dekker double-double arithmetic (fma-free, as CR-LIBM's era was).    *)
(* ------------------------------------------------------------------ *)

type dd = { h : float; l : float }

let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  { h = s; l = (a -. (s -. bb)) +. (b -. bb) }

let split_factor = 134217729.0 (* 2^27 + 1 *)

let two_prod a b =
  let p = a *. b in
  let a1 = a *. split_factor in
  let ah = a1 -. (a1 -. a) in
  let al = a -. ah in
  let b1 = b *. split_factor in
  let bh = b1 -. (b1 -. b) in
  let bl = b -. bh in
  { h = p; l = (((ah *. bh) -. p) +. (ah *. bl) +. (al *. bh)) +. (al *. bl) }

let dd_add_d (x : dd) d =
  let s = two_sum x.h d in
  let l = s.l +. x.l in
  let t = two_sum s.h l in
  { h = t.h; l = t.l }

let dd_mul_d (x : dd) d =
  let p = two_prod x.h d in
  let l = p.l +. (x.l *. d) in
  let t = two_sum p.h l in
  { h = t.h; l = t.l }

(* Degree-8 double-double Horner: the quick-phase workload. *)
let dd_horner coeffs x =
  let acc = ref { h = coeffs.(Array.length coeffs - 1); l = 0.0 } in
  for i = Array.length coeffs - 2 downto 0 do
    acc := dd_add_d (dd_mul_d !acc x) coeffs.(i)
  done;
  !acc

(* Quick-phase polynomials: degree 8 over each family's reduced domain. *)
let coeff_cache : (string, float array) Hashtbl.t = Hashtbl.create 16
let coeff_mu = Mutex.create ()

let quick_coeffs name =
  Mutex.protect coeff_mu @@ fun () ->
  match Hashtbl.find_opt coeff_cache name with
  | Some c -> c
  | None ->
      let fit f lo hi = Minimax.interpolate f ~lo ~hi ~degree:8 in
      let c =
        match name with
        | "exp" -> fit E.exp (-0.0054182) 0.0054182
        | "exp2" -> fit E.exp2 (-0.0078125) 0.0078125
        | "exp10" -> fit E.exp10 (-0.0023526) 0.0023526
        | "ln" | "log2" | "log10" ->
            fit (E.by_name (if name = "ln" then "ln" else name)) 1.0 (1.0 +. 0.0078125)
        | "sinpi" | "cospi" -> fit (E.by_name name) 0.0 (1.0 /. 512.0)
        | "sinh" | "cosh" -> fit (E.by_name name) 0.0 (1.0 /. 64.0)
        | _ -> invalid_arg ("Crlibm_analog.quick_coeffs: " ^ name)
      in
      Hashtbl.replace coeff_cache name c;
      c

(** Benchmark-only evaluation with CR-LIBM's cost structure: range
    reduction (reusing the library's own reductions), a degree-8
    double-double Horner, table compensation in double-double, and a
    rounding-test branch.  The returned values are accurate but NOT
    certified correctly rounded — use {!round_via_double} for
    correctness experiments. *)
let timed_eval name =
  let coeffs = quick_coeffs name in
  let reduce =
    match name with
    | "exp" | "exp10" | "sinh" | "cosh" ->
        fun x -> (Funcs.Reductions.sinhcosh_reduce (Float.abs x)).r
    | "exp2" -> fun x -> (Funcs.Reductions.exp2_reduce x).r
    | "ln" | "log2" | "log10" -> fun x -> (Funcs.Reductions.log_reduce x).r
    | _ -> fun x -> (Funcs.Reductions.sinpi_reduce x).r
  in
  let tbl = Parallel.Once.get Funcs.Tables.exp2_j in
  fun x ->
    let r = reduce x in
    let p = dd_horner coeffs r in
    (* Table compensation in double-double + the quick-phase rounding
       test (CR-LIBM falls back to its accurate phase when the result is
       too close to a boundary; the common path just tests). *)
    let v = dd_mul_d p tbl.(Int64.to_int (Int64.logand (Fp.Fp64.bits x) 63L)) in
    let res = v.h +. v.l in
    if Float.abs v.l > Float.abs res *. 1e-16 then res *. (1.0 +. 0.0) else res
