(* The "repurposed double library" comparator of §4.1: convert the
   target value to double, call the system's double libm (OCaml's float
   primitives are exactly glibc's double functions in this environment),
   and round the double result back to the target.

   This is the genuine article, not a simulation: Table 1's "glibc
   double" column and Table 2's posit32 columns are the paper's
   measurements of exactly this composition, whose failures come from
   the double result landing on the wrong side of a target rounding
   boundary (and, for posits, from double overflow/underflow where
   posits saturate). *)

let pi = 4.0 *. Float.atan 1.0

let fn = function
  | "ln" -> Float.log
  | "log2" -> Float.log2
  | "log10" -> Float.log10
  | "exp" -> Float.exp
  | "exp2" -> Float.exp2
  | "exp10" -> fun x -> Float.pow 10.0 x
  | "sinh" -> Float.sinh
  | "cosh" -> Float.cosh
  | "sin" -> Float.sin
  | "cos" -> Float.cos
  | "tan" -> Float.tan
  (* No sinpi/cospi in libm: the usual user spelling. *)
  | "sinpi" -> fun x -> Float.sin (pi *. x)
  | "cospi" -> fun x -> Float.cos (pi *. x)
  | name -> invalid_arg ("Double_libm.fn: unknown function " ^ name)

(** Pattern-level comparator for target [T]. *)
let eval (module T : Fp.Representation.S) name =
  let f = fn name in
  fun pat -> T.of_double (f (T.to_double pat))
