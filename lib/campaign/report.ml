(* Per-shard campaign reports and the campaign-level merge.

   A shard that finishes writes exactly one report file (atomic rename)
   into its shard directory; the driver treats the file's existence as
   the shard's completion record, so resume can skip finished shards
   without trusting anything transient.  The encoding mirrors
   Sweep.Checkpoint: magic, version, identity, payload, trailing FNV
   checksum — a torn or foreign file is refused with a message.

   All coordinates in a shard report are campaign-global (item indices
   and pattern values), never shard-local: the merge is then pure
   concatenation after validation, and the merged text report cannot
   depend on how the campaign was sharded.

   [merge] is deliberately paranoid: shard reports must agree on the
   campaign identity and geometry, and their ranges must tile
   [0, n_items) exactly — an overlap or a gap means the operator mixed
   state directories from different plans, and a quiet "verdict" over
   missing inputs would be a false certification. *)

type t = {
  identity : string;  (* campaign identity (no shard suffix) *)
  n_items : int;  (* campaign-wide item count *)
  chunk_size : int;
  lo : int;  (* this shard's item range [lo, hi) *)
  hi : int;
  mismatches : Sweep.Checkpoint.mismatch array;  (* global patterns, ascending *)
  quarantined : (int * int * string) array;  (* global item ranges [lo, hi), ascending *)
  fast : int;  (* oracle-free certifications in this shard *)
  escalated : int;  (* Ziv-oracle escalations in this shard *)
  wall_seconds : float;  (* this shard's busy time (sums across shards) *)
}

let file_name = "shard-report.bin"
let path ~shard_dir = Filename.concat shard_dir file_name

(* ------------------------------------------------------------------ *)
(* Binary encoding (same discipline as Sweep.Checkpoint).              *)
(* ------------------------------------------------------------------ *)

let magic = "RLSHARD\x01"
let version = 1

let fnv (b : Buffer.t) =
  let h = ref 0x0cbf29ce84222325 in
  for i = 0 to Buffer.length b - 1 do
    h := (!h lxor Char.code (Buffer.nth b i)) * 0x100000001b3
  done;
  !h land max_int

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let encode t =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  add_int b version;
  add_str b t.identity;
  add_int b t.n_items;
  add_int b t.chunk_size;
  add_int b t.lo;
  add_int b t.hi;
  add_int b (Array.length t.mismatches);
  Array.iter
    (fun (m : Sweep.Checkpoint.mismatch) ->
      add_int b m.pattern;
      add_int b m.got;
      add_int b m.want)
    t.mismatches;
  add_int b (Array.length t.quarantined);
  Array.iter
    (fun (lo, hi, msg) ->
      add_int b lo;
      add_int b hi;
      add_str b msg)
    t.quarantined;
  add_int b t.fast;
  add_int b t.escalated;
  (* Raw 64-bit float image: int-laundering would lose bit 62/63. *)
  Buffer.add_int64_le b (Int64.bits_of_float t.wall_seconds);
  add_int b (fnv b);
  Buffer.contents b

exception Bad of string

let decode (s : string) : (t, string) result =
  let pos = ref 0 in
  let len = String.length s in
  let need n what = if !pos + n > len then raise (Bad (Printf.sprintf "truncated (%s)" what)) in
  let get_int what =
    need 8 what;
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  let get_str what =
    let n = get_int what in
    if n < 0 || n > len - !pos then raise (Bad (Printf.sprintf "bad length (%s)" what));
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    need (String.length magic) "magic";
    if String.sub s 0 (String.length magic) <> magic then
      raise (Bad "not a shard report (bad magic)");
    pos := String.length magic;
    let v = get_int "version" in
    if v <> version then
      raise (Bad (Printf.sprintf "unsupported shard report version %d (want %d)" v version));
    let identity = get_str "identity" in
    let n_items = get_int "n_items" in
    let chunk_size = get_int "chunk_size" in
    let lo = get_int "lo" in
    let hi = get_int "hi" in
    if n_items <= 0 || chunk_size <= 0 then raise (Bad "non-positive geometry");
    if lo < 0 || hi > n_items || lo >= hi then raise (Bad "bad shard range");
    let nm = get_int "mismatch count" in
    if nm < 0 || nm > (len - !pos) / 24 then raise (Bad "bad mismatch count");
    let mismatches =
      Array.init nm (fun _ ->
          let pattern = get_int "mismatch" in
          let got = get_int "mismatch" in
          let want = get_int "mismatch" in
          { Sweep.Checkpoint.pattern; got; want })
    in
    let nq = get_int "quarantine count" in
    if nq < 0 || nq > (len - !pos) / 24 then raise (Bad "bad quarantine count");
    let quarantined =
      Array.init nq (fun _ ->
          let qlo = get_int "quarantine" in
          let qhi = get_int "quarantine" in
          let msg = get_str "quarantine" in
          (qlo, qhi, msg))
    in
    let fast = get_int "fast" in
    let escalated = get_int "escalated" in
    need 8 "wall";
    let wall_seconds = Int64.float_of_bits (String.get_int64_le s !pos) in
    pos := !pos + 8;
    let body_end = !pos in
    let sum = get_int "checksum" in
    if !pos <> len then raise (Bad "trailing garbage");
    let b = Buffer.create body_end in
    Buffer.add_substring b s 0 body_end;
    if fnv b <> sum then raise (Bad "checksum mismatch (corrupted shard report)");
    Ok { identity; n_items; chunk_size; lo; hi; mismatches; quarantined; fast; escalated; wall_seconds }
  with Bad msg -> Error ("shard report: " ^ msg)

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode t);
  close_out oc;
  Sys.rename tmp path

let load ~path : (t, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      decode s

(* ------------------------------------------------------------------ *)
(* Merge.                                                              *)
(* ------------------------------------------------------------------ *)

type merged = {
  m_identity : string;
  m_n_items : int;
  m_chunk_size : int;
  m_n_shards : int;
  m_mismatches : Sweep.Checkpoint.mismatch array;  (* globally ascending *)
  m_quarantined : (int * int * string) array;  (* globally ascending item ranges *)
  m_fast : int;
  m_escalated : int;
  m_busy_seconds : float;  (* sum of shard wall clocks *)
}

(* A shard report as a datafile row: the campaign's shard verdicts are
   ordinary sharded rows under the one schema, and the paranoid merge
   (identity drift, geometry drift, overlap, gap — all refused) lives in
   Datafile.merge_rows where multi-shard bench runs share it. *)
let row_of_report (r : t) : Datafile.row =
  {
    Datafile.kind = "campaign";
    func = "";
    repr = "";
    mode = "";
    identity = r.identity;
    tables_hash = "";
    span = Some { Datafile.lo = r.lo; hi = r.hi; n_items = r.n_items; chunk_size = r.chunk_size };
    metrics =
      [
        ("fast", float_of_int r.fast);
        ("escalated", float_of_int r.escalated);
        ("busy_seconds", r.wall_seconds);
      ];
    mismatches =
      Array.map
        (fun (m : Sweep.Checkpoint.mismatch) ->
          { Datafile.pattern = m.pattern; got = m.got; want = m.want })
        r.mismatches;
    quarantined = r.quarantined;
  }

(** Combine shard reports into one campaign verdict.  Order-insensitive;
    refuses identity/geometry disagreement, overlaps and gaps — the
    checks (and the ascending-span concatenation order the canonical
    text depends on) are Datafile.merge_rows'. *)
let merge (reports : t list) : (merged, string) result =
  match reports with
  | [] -> Error "campaign merge: no shard reports"
  | _ -> (
      match Datafile.merge_rows (List.map row_of_report reports) with
      | Error m -> Error m
      | Ok row ->
          let span = Option.get row.Datafile.span in
          let metric k =
            match List.assoc_opt k row.Datafile.metrics with Some v -> v | None -> 0.0
          in
          Ok
            {
              m_identity = row.Datafile.identity;
              m_n_items = span.Datafile.n_items;
              m_chunk_size = span.Datafile.chunk_size;
              m_n_shards = List.length reports;
              m_mismatches =
                Array.map
                  (fun (m : Datafile.mismatch) ->
                    { Sweep.Checkpoint.pattern = m.pattern; got = m.got; want = m.want })
                  row.Datafile.mismatches;
              m_quarantined = row.Datafile.quarantined;
              m_fast = int_of_float (metric "fast");
              m_escalated = int_of_float (metric "escalated");
              m_busy_seconds = metric "busy_seconds";
            })

(* The merged verdict as a datafile row (span [0, n_items), metrics
   carrying the verifier counters) — what bin/check campaign persists;
   Datafile.campaign_text over this row reproduces [text] byte for
   byte. *)
let row_of_merged (m : merged) : Datafile.row =
  {
    Datafile.kind = "campaign";
    func = "";
    repr = "";
    mode = "";
    identity = m.m_identity;
    tables_hash = "";
    span =
      Some { Datafile.lo = 0; hi = m.m_n_items; n_items = m.m_n_items; chunk_size = m.m_chunk_size };
    metrics =
      [
        ("fast", float_of_int m.m_fast);
        ("escalated", float_of_int m.m_escalated);
        ("busy_seconds", m.m_busy_seconds);
      ];
    mismatches =
      Array.map
        (fun (x : Sweep.Checkpoint.mismatch) ->
          { Datafile.pattern = x.pattern; got = x.got; want = x.want })
        m.m_mismatches;
    quarantined = m.m_quarantined;
  }

(* Canonical campaign report text.  Deliberately free of timings, shard
   counts and verifier counters: a campaign must reproduce this byte for
   byte at any shard count, any worker count, fast or oracle verifier,
   interrupted or not. *)
let text (m : merged) =
  let b = Buffer.create 256 in
  Buffer.add_string b m.m_identity;
  Buffer.add_char b '\n';
  Array.iter
    (fun (x : Sweep.Checkpoint.mismatch) ->
      Buffer.add_string b (Printf.sprintf "mismatch 0x%x got 0x%x want 0x%x\n" x.pattern x.got x.want))
    m.m_mismatches;
  Array.iter
    (fun (lo, hi, msg) ->
      Buffer.add_string b (Printf.sprintf "quarantined [%d,%d): %s\n" lo hi msg))
    m.m_quarantined;
  Buffer.add_string b
    (Printf.sprintf "total %d mismatches, %d quarantined ranges over %d points\n"
       (Array.length m.m_mismatches) (Array.length m.m_quarantined) m.m_n_items);
  Buffer.contents b

let write_text ~path (m : merged) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (text m);
  close_out oc;
  Sys.rename tmp path
