(* Sharded certification campaigns: fork-based fan-out of Sweep.Engine.

   Why fork and not the Parallel domain pool: a campaign at 2^32 scale
   must survive a worker *crash* (OOM kill, node reboot) and must be
   able to span invocations and machines.  One domain pool dies with its
   process; separate worker processes each own a shard directory with
   their own Sweep.Engine checkpoint, so any subset of shards can be
   re-run, resumed or farmed out elsewhere, and the merge step is the
   only place the pieces meet.

   OCaml 5 refuses [Unix.fork] once any domain has ever been spawned in
   the process, so a forking campaign driver must run before/without
   domains — keep [Parallel.set_jobs 1] in the parent and let each
   worker child set its own job count ([jobs] here applies inside the
   workers).  [In_process] runs the shards sequentially in this process
   instead: same shard state, same reports, no fork — for tests,
   benchmarks and environments where fork is unavailable.

   Per-shard resources: [job ~shard] is called in the worker process
   (after the fork, or inline for [In_process]) so each shard can open
   its own oracle cache — the append-only cache file format is not safe
   for concurrent writers, so shards must not share one cache file. *)

(* campaign.ml is the library's toplevel module, so re-export the
   pieces: Campaign.Plan, Campaign.Report. *)
module Plan = Plan
module Report = Report

type job = {
  f : lo:int -> hi:int -> Sweep.Checkpoint.mismatch list;
      (* campaign-global item coordinates, like a 1-shard sweep's *)
  cache : Sweep.Oracle_cache.t option;  (* synced at checkpoints, closed with the shard *)
  counters : Sweep.Verify.counters option;  (* the verifier's, for the shard report *)
}

type exec = In_process | Fork of int  (* concurrent worker processes *)

type outcome = {
  plan : Plan.t;
  merged : Report.merged;
  report_path : string;
  wall_seconds : float;  (* driver wall clock for this invocation *)
}

let shard_identity ~identity (plan : Plan.t) s =
  let lo, hi = plan.shards.(s) in
  Printf.sprintf "%s shard=[%d,%d)" identity lo hi

(** Run one shard to completion in this process and persist its report.
    Resumes the shard's own engine checkpoint under [resume]. *)
let run_shard ~dir ~identity ~(plan : Plan.t) ~shard ?(max_retries = 2)
    ?(checkpoint_every = Sweep.Engine.default_checkpoint_every) ?jobs ?(resume = false) ?progress
    (j : job) : (Report.t, string) result =
  let lo, hi = plan.shards.(shard) in
  let sdir = Plan.shard_dir dir shard in
  let fast0 = match j.counters with Some c -> Sweep.Verify.fast c | None -> 0 in
  let esc0 = match j.counters with Some c -> Sweep.Verify.escalated c | None -> 0 in
  let f ~lo:l ~hi:h = j.f ~lo:(l + lo) ~hi:(h + lo) in
  let r =
    Sweep.Engine.run ~dir:sdir ~identity:(shard_identity ~identity plan shard) ~n:(hi - lo)
      ~chunk_size:plan.chunk_size ~max_retries ~checkpoint_every ?jobs ~resume ?cache:j.cache
      ?verify:j.counters ?progress f
  in
  (match j.cache with Some c -> Sweep.Oracle_cache.close c | None -> ());
  match r with
  | Error msg -> Error (Printf.sprintf "shard %d: %s" shard msg)
  | Ok o ->
      let report =
        {
          Report.identity;
          n_items = plan.n_items;
          chunk_size = plan.chunk_size;
          lo;
          hi;
          mismatches = o.mismatches;
          quarantined =
            Array.of_list
              (List.map (fun (_ci, qlo, qhi, msg) -> (qlo + lo, qhi + lo, msg)) o.quarantined);
          fast = (match j.counters with Some c -> Sweep.Verify.fast c - fast0 | None -> 0);
          escalated = (match j.counters with Some c -> Sweep.Verify.escalated c - esc0 | None -> 0);
          wall_seconds = o.stats.wall_seconds;
        }
      in
      Report.save ~path:(Report.path ~shard_dir:sdir) report;
      Ok report

(* A shard whose report file loads cleanly and matches this campaign is
   complete; anything else (absent, torn, foreign) means the shard still
   has work.  The engine's own identity/geometry checks guard the
   checkpoint underneath. *)
let shard_done ~identity ~(plan : Plan.t) ~dir s =
  let p = Report.path ~shard_dir:(Plan.shard_dir dir s) in
  Sys.file_exists p
  &&
  match Report.load ~path:p with
  | Error _ -> false
  | Ok r ->
      let lo, hi = plan.shards.(s) in
      r.identity = identity && r.n_items = plan.n_items && r.chunk_size = plan.chunk_size
      && r.lo = lo && r.hi = hi

(* Fork-based scheduler: at most [workers] children alive; each child
   runs exactly one shard and exits 0 on success.  We always reap every
   child we started before reporting, so no zombies outlive the call. *)
let run_forked ~dir ~identity ~plan ~max_retries ~checkpoint_every ~jobs ~resume ~progress
    ~(job : shard:int -> job) ~workers pending =
  let failures = ref [] in
  let live = Hashtbl.create 8 in
  let reap () =
    let pid, status = Unix.wait () in
    match Hashtbl.find_opt live pid with
    | None -> ()  (* not ours; implausible, but harmless *)
    | Some s ->
        Hashtbl.remove live pid;
        (match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED c -> failures := (s, Printf.sprintf "exit code %d" c) :: !failures
        | Unix.WSIGNALED sg -> failures := (s, Printf.sprintf "killed by signal %d" sg) :: !failures
        | Unix.WSTOPPED _ -> failures := (s, "stopped") :: !failures)
  in
  let spawn s =
    (* Flush before forking so buffered output is not emitted twice. *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let code =
          try
            match
              run_shard ~dir ~identity ~plan ~shard:s ~max_retries ~checkpoint_every ?jobs ~resume
                ?progress (job ~shard:s)
            with
            | Ok _ -> 0
            | Error msg ->
                Printf.eprintf "campaign worker: %s\n%!" msg;
                3
          with e ->
            Printf.eprintf "campaign worker: shard %d: %s\n%!" s (Printexc.to_string e);
            3
        in
        (* _exit: no at_exit, no double flush of inherited buffers. *)
        Unix._exit code
    | pid -> Hashtbl.replace live pid s
  in
  (try
     List.iter
       (fun s ->
         if Hashtbl.length live >= workers then reap ();
         spawn s)
       pending;
     while Hashtbl.length live > 0 do
       reap ()
     done
   with e ->
     (* fork refused (e.g. a domain was already spawned in this process):
        reap whatever did start, then report. *)
     while Hashtbl.length live > 0 do
       reap ()
     done;
     failures := (-1, Printexc.to_string e) :: !failures);
  match List.rev !failures with
  | [] -> Ok ()
  | fs ->
      Error
        (String.concat "; "
           (List.map
              (fun (s, m) ->
                if s < 0 then Printf.sprintf "campaign: fork failed: %s (run the driver with \
                                              Parallel jobs=1, or use in-process mode)" m
                else Printf.sprintf "campaign: shard %d failed (%s) — its checkpoint is intact; \
                                     re-run with resume" s m)
              fs))

let report_path dir = Filename.concat dir "report.txt"

(** Run (or resume) a whole campaign: plan shards, run the pending ones
    under [exec], then merge every shard report into the campaign
    verdict and write the canonical text report.  [job ~shard] is
    evaluated in the worker process that runs that shard. *)
let run ~dir ~identity ~n ~shards ?(chunk_size = Sweep.Engine.default_chunk_size)
    ?(max_retries = 2) ?(checkpoint_every = Sweep.Engine.default_checkpoint_every) ?jobs
    ?(resume = false) ?progress ~exec ~(job : shard:int -> job) () : (outcome, string) result =
  match Plan.make ~n_items:n ~chunk_size ~shards with
  | Error msg -> Error msg
  | Ok plan -> (
      let t0 = Unix.gettimeofday () in
      Sweep.Oracle_cache.mkdir_p dir;
      let all = List.init (Plan.n_shards plan) Fun.id in
      let done_, pending =
        if resume then List.partition (shard_done ~identity ~plan ~dir) all else ([], all)
      in
      let stale =
        if resume then []
        else List.filter (fun s -> Sys.file_exists (Report.path ~shard_dir:(Plan.shard_dir dir s))) all
      in
      if stale <> [] then
        Error
          (Printf.sprintf
             "campaign: %s already holds shard reports (shard %d); pass resume to continue this \
              campaign or remove the directory to start over"
             dir (List.hd stale))
      else begin
        ignore done_;
        let ran =
          match exec with
          | In_process ->
              List.fold_left
                (fun acc s ->
                  match acc with
                  | Error _ as e -> e
                  | Ok () -> (
                      match
                        run_shard ~dir ~identity ~plan ~shard:s ~max_retries ~checkpoint_every
                          ?jobs ~resume ?progress (job ~shard:s)
                      with
                      | Ok _ -> Ok ()
                      | Error msg -> Error ("campaign: " ^ msg)))
                (Ok ()) pending
          | Fork workers ->
              run_forked ~dir ~identity ~plan ~max_retries ~checkpoint_every ~jobs ~resume
                ~progress ~job ~workers:(Stdlib.max 1 workers) pending
        in
        match ran with
        | Error _ as e -> e
        | Ok () -> (
            let reports =
              List.map
                (fun s -> Report.load ~path:(Report.path ~shard_dir:(Plan.shard_dir dir s)))
                all
            in
            match
              List.fold_left
                (fun acc r ->
                  match (acc, r) with
                  | (Error _ as e), _ -> e
                  | _, (Error _ as e) -> e
                  | Ok rs, Ok r -> Ok (r :: rs))
                (Ok []) reports
            with
            | Error msg -> Error ("campaign: " ^ msg)
            | Ok rs -> (
                match Report.merge (List.rev rs) with
                | Error _ as e -> e
                | Ok merged ->
                    let rp = report_path dir in
                    Report.write_text ~path:rp merged;
                    Ok { plan; merged; report_path = rp; wall_seconds = Unix.gettimeofday () -. t0 }))
      end)

(** Merge-only entry point: load every shard report under [dir] for
    [plan], merge, write the text report.  Runs nothing. *)
let merge_only ~dir ~identity ~n ~shards ?(chunk_size = Sweep.Engine.default_chunk_size) () :
    (outcome, string) result =
  match Plan.make ~n_items:n ~chunk_size ~shards with
  | Error msg -> Error msg
  | Ok plan -> (
      let t0 = Unix.gettimeofday () in
      (* Missing report files simply don't make it into the list; the
         merge's gap detection then names the missing range. *)
      let rs =
        List.filter_map
          (fun s ->
            let p = Report.path ~shard_dir:(Plan.shard_dir dir s) in
            if Sys.file_exists p then Some (Report.load ~path:p) else None)
          (List.init (Plan.n_shards plan) Fun.id)
      in
      match List.find_opt Result.is_error rs with
      | Some (Error m) -> Error ("campaign merge: " ^ m)
      | _ -> (
          match Report.merge (List.filter_map Result.to_option rs) with
          | Error _ as e -> e
          | Ok merged ->
              if merged.m_identity <> identity then
                Error
                  (Printf.sprintf
                     "campaign merge: shard reports belong to a different campaign\n  reports:   \
                      %s\n  requested: %s"
                     merged.m_identity identity)
              else begin
                let rp = report_path dir in
                Report.write_text ~path:rp merged;
                Ok { plan; merged; report_path = rp; wall_seconds = Unix.gettimeofday () -. t0 }
              end))
