(* Shard planner: cut one campaign's item space [0, n_items) into
   contiguous per-shard ranges.

   The one structural invariant that everything downstream leans on:
   every shard boundary is a multiple of [chunk_size].  Each shard runs
   its own Sweep.Engine over its range rebased to zero, so chunk-aligned
   boundaries make the global chunk grid of an S-shard campaign
   identical to a 1-shard run's — which is what lets the merged report
   (mismatch order, quarantine ranges) come out byte-identical at every
   shard count. *)

type t = {
  n_items : int;
  chunk_size : int;
  shards : (int * int) array;  (* [lo, hi) item ranges, ascending, tiling [0, n_items) *)
}

let n_shards t = Array.length t.shards

(** Split [n_items] into [shards] chunk-aligned contiguous ranges of
    near-equal chunk counts. *)
let make ~n_items ~chunk_size ~shards : (t, string) result =
  if n_items <= 0 then Error "campaign: empty item space"
  else if chunk_size <= 0 then Error "campaign: chunk_size must be positive"
  else if shards <= 0 then Error "campaign: shard count must be positive"
  else begin
    let nc = Sweep.Checkpoint.n_chunks ~n_items ~chunk_size in
    if shards > nc then
      Error
        (Printf.sprintf
           "campaign: %d shards over %d chunks — shard boundaries are chunk-aligned, so at most \
            one shard per chunk (shrink --shards or --chunk)"
           shards nc)
    else
      let ranges =
        Array.init shards (fun s ->
            let clo = s * nc / shards and chi = (s + 1) * nc / shards in
            (clo * chunk_size, Stdlib.min n_items (chi * chunk_size)))
      in
      Ok { n_items; chunk_size; shards = ranges }
  end

let shard_dir dir s = Filename.concat dir (Printf.sprintf "shard-%04d" s)
