(* The zero-allocation serving kernel: one monomorphic evaluation plan
   per (function, representation, rounding mode).

   The scalar run-time path ({!Rlibm.Generator.eval_pattern}) is a chain
   of closures over boxed floats: the special-case probe returns an
   option, the reduction returns a mixed float/int record, every
   piecewise evaluator is an indirect call with a float argument, and
   the final rounding crosses a module boundary with a float.  On the
   non-flambda compiler each of those boundaries boxes, so a batch call
   allocates several minor-heap words per element.

   A [plan] flattens that chain into data: the special-region
   thresholds, the range-reduction constants, the flat coefficient and
   compensation tables, and the output format's rounding parameters all
   sit in one record, and the evaluation is three top-level functions
   ([stage1] -> [eval_piece] -> [compose]) whose call boundaries carry
   only ints (plus a preallocated [float array] scratch for the reduced
   input and component values — float array slots are unboxed storage,
   so floats cross the stage boundaries without boxing).  64-bit double
   patterns cross as two 32-bit int halves.  Every float intermediate is
   local to one function body, where the Closure-mode backend keeps it
   in a register.

   Bit-identity contract: for every input pattern the plan either takes
   the fast path — whose operation order replicates the scalar chain's
   expression by expression (see the per-family notes below) — or bails
   to [fallback], which IS the scalar path.  The fast path is taken only
   outside the special-case regions, so specials stay bit-identical by
   construction and the steady-state path allocates nothing. *)

type shape =
  | S0123  (* terms 0,1,2,3: dense cubic *)
  | S123  (* terms 1,2,3: odd-anchored cubic (log family) *)
  | S135  (* terms 1,3,5: odd polynomial in r, Horner in r^2 *)
  | S024  (* terms 0,2,4: even polynomial in r, Horner in r^2 *)

(* One sign group of a piecewise table: {!Rlibm.Splitting.scheme} with
   the int64 hull bounds split into 32-bit halves (an unsigned 64-bit
   compare in native ints), plus the row-major coefficient matrix. *)
type pgroup = {
  nbits : int;
  shift : int;
  lo_hi : int;  (* high 32 bits of the hull's low-end raw double bits *)
  lo_lo : int;
  hi_hi : int;
  hi_lo : int;
  nt : int;  (* terms per row *)
  coeffs : float array;  (* (2^nbits) * nt, row-major *)
}

type piece = {
  shape : shape;
  neg : pgroup option;
  pos : pgroup option;
}

(* Progressive tier (RLIBM-PROG): the serving coefficient prefix of each
   piece, certificate-gated.  Plain ints and float arrays only — this
   library must stay independent of rlibm, so Funcs.Kernels lowers
   Rlibm.Prog certificates into this shape.

   The certificate is folded into the table: one *dense* prefix row per
   extended sub-domain bucket (the piece's splitting index extended by
   the certificate's extra low bits), holding the first [tk] of the full
   row's coefficients when the generator certified that every enumerated
   input of the bucket keeps its degree-[tk] prefix value inside the
   merged rounding interval — and all-NaN otherwise.  The prefix Horner
   then doubles as the certificate probe: NaN poisons the result, and a
   NaN prefix value means "uncertified bucket", sending the element to
   the full row ([eval_piece]) — never a wrong answer, because a
   certified prefix composes to the same rounded output as the full
   polynomial and a miss escalates instead of deciding.  This costs one
   float self-compare on the fast path where a separate bitset would
   cost an extra load, mask and branch. *)
type tcert = {
  t_shift : int;  (* scheme shift minus the certificate's extra bits *)
  t_mask : int;  (* 2^(nbits + ext) - 1: extended-bucket index mask *)
  t_coeffs : float array;  (* 2^(nbits + ext) dense rows of tk coeffs *)
}

(* Certs are non-optional so the hot loop loads fields directly (no
   option match per call): a side whose sign group is absent carries an
   empty dummy that is never consulted — the group test short-circuits
   first. *)
type tpiece = {
  tk : int;  (* serving prefix length, 1 <= tk < nt *)
  tneg : tcert;
  tpos : tcert;
}

(* Special-case region probe, mirroring the decision structure of the
   {!Funcs.Specs} special builders.  Firing sends the input to the
   scalar fallback; the probe must therefore cover (at least) every
   input the spec's [special] maps to [Some]. *)
type check =
  | Chk_log  (* x <= 0 (log family poles and NaN region) *)
  | Chk_signed of { hi : float; lo : float; snap : float }
      (* x >= hi || x <= lo || |x| <= snap  (exp family, expm1) *)
  | Chk_abs of { hi : float; snap : float }
      (* |x| >= hi || |x| <= snap  (sinh/cosh/tanh/sinpi/cospi) *)
  | Chk_log1p of { snap : float }  (* x <= -1 || |x| <= snap *)

(* Range reduction + output compensation, one constructor per family.
   Table arrays are flat copies owned by the plan (see {!clone}): the
   shared {!Funcs.Tables} one-shots are never touched from the hot
   loop, so pinned per-domain plans share no mutable or cache-hot
   structure. *)
type family =
  | Log of { escale : float; f_tbl : float array; add_one : bool }
      (* ln/log2/log10/log1p: y = e*escale + f_tbl[j] + v0.
         escale = ln(2), 1, or log10(2); multiplying the exact integer
         [e] by 1.0 is exact, so log2 shares the expression. *)
  | Exp of { inv_c : float; cw_hi : float; cw_lo : float; t2 : float array; minus_one : bool }
      (* exp/exp2/exp10/expm1: Cody-Waite reduction, y = 2^q*(t2[j]*v0).
         exp2 uses inv_c = 64, cw = (1/64, 0): x - fk/64 is exact, and
         subtracting fk*0.0 afterwards cannot change the sign or value
         of the result, so the generic expression is bit-identical to
         the specialized exp2 reduction. *)
  | Tanh of { inv_c : float; cw_hi : float; cw_lo : float; t2 : float array }
      (* tanh via w = e^(2|x|): y = s * (w-1)/(w+1) *)
  | Sinpi of { spn : float array; cpn : float array }
  | Cospi of { spn : float array; cpn : float array }
  | Sinh of { sh : float array; ch : float array }
  | Cosh of { sh : float array; ch : float array }

type plan = {
  (* identity (display / dispatch only) *)
  name : string;
  tname : string;
  mode : Fp.Rounding_mode.t;
  (* input format decode *)
  width : int;
  hw32 : bool;
      (* float32: the doubles pipeline uses the hardware single<->double
         casts (what Fp.Fp32.of_double/to_double do at RNE), identical
         to the integer path on finite values and NaN-payload-exact *)
  hw_rne : bool;
      (* hw32 && mode = RNE: output rounding is the hardware
         double->single cast.  The cast rounds the finite double y in
         one step exactly as the integer path does at RNE — overflow
         lands on the correct infinity, underflow on the correctly
         rounded subnormal, -0.0 on the sign pattern — and the fast path
         never rounds a NaN.  Precomputed as a bool because the per-call
         test must be one load, not a variant compare. *)
  i_mb : int;
  i_emask : int;
  i_mmask : int;
  i_sbit : int;
  i_dexp_off : int;  (* 1023 - bias: target exponent field -> double's *)
  i_sub_scale : float;  (* 2^(emin - mb): subnormal significand scale *)
  check : check;
  family : family;
  pieces : piece array;  (* length 1 (log/exp) or 2 (trig/hyperbolic) *)
  tier : tpiece array option;
      (* aligned with [pieces]; [Some] only when every piece has a
         certified serving prefix (all-or-nothing across pieces, the
         contract {!Rlibm.Verifier.classify} mirrors) *)
  (* output rounding (replicates Fp.Ieee.of_double for this fmt/mode) *)
  o_mb : int;
  o_mmask : int;
  o_sbit : int;
  o_bias : int;
  o_emin : int;
  o_emax : int;
  o_nan : int;
  o_inf_pos : int;
  o_inf_neg : int;
  o_maxf_pos : int;  (* max_finite_pattern, per sign *)
  o_maxf_neg : int;
  (* scalar path for special-region and non-finite inputs *)
  fallback : int -> int;
}

(* Scratch layout (a per-shard [float array] of length 4):
   0 = reduced input r;  1 = component value v0;  2 = v1;  3 = y. *)
let scratch_len = 4

let scratch () = Array.make scratch_len 0.0

(* ------------------------------------------------------------------ *)
(* Output rounding: Fp.Ieee.of_double/of_double_finite replicated over  *)
(* the double's raw bits passed as two 32-bit halves, so no float       *)
(* crosses the call boundary.  The m53 significand fits a native int.   *)
(* Bit-identity notes: the fp32 RNE hardware cast ({!Fp.Fp32.of_double})*)
(* agrees with this integer path on every finite double, and the fast   *)
(* path only ever rounds finite doubles — NaN results come out of the   *)
(* scalar fallback.                                                     *)
(* ------------------------------------------------------------------ *)

(* Ieee.overflow_pattern: where an out-of-range magnitude lands depends
   on the rounding mode, and this function rounds under two different
   modes (the plan's, and RNE for the input leg of the doubles
   pipeline), so the decision stays dynamic. *)
let overflow (p : plan) mode neg =
  let to_inf =
    match mode with
    | Fp.Rounding_mode.Rne | Fp.Rounding_mode.Rna -> true
    | Fp.Rounding_mode.Up -> not neg
    | Fp.Rounding_mode.Down -> neg
    | Fp.Rounding_mode.Zero | Fp.Rounding_mode.Odd -> false
  in
  if to_inf then (if neg then p.o_inf_neg else p.o_inf_pos)
  else if neg then p.o_maxf_neg
  else p.o_maxf_pos

let round_bits (p : plan) mode hi lo =
  let neg = hi land 0x8000_0000 <> 0 in
  let sign = if neg then p.o_sbit else 0 in
  let de = (hi lsr 20) land 0x7FF in
  let dm = ((hi land 0xF_FFFF) lsl 32) lor lo in
  if de = 0x7FF then (if dm = 0 then (if neg then p.o_inf_neg else p.o_inf_pos) else p.o_nan)
  else if de = 0 && dm = 0 then sign (* signed zero *)
  else if de = 0 then
    (* A subnormal double sits far below half of any target's smallest
       subnormal, but is nonzero. *)
    if Fp.Rounding_mode.round_up ~mode ~neg ~odd:false ~inexact:true ~half_cmp:(-1) then
      sign lor 1
    else sign
  else begin
    let m53 = dm lor (1 lsl 52) in
    let e = de - 1023 in
    if e > p.o_emax + 1 then overflow p mode neg
    else begin
      let prec = if e >= p.o_emin then p.o_mb + 1 else p.o_mb + 1 + (e - p.o_emin) in
      if prec <= 0 then begin
        let half_cmp =
          if e < p.o_emin - p.o_mb - 1 then -1
          else if m53 < 1 lsl 52 then -1
          else if m53 > 1 lsl 52 then 1
          else 0
        in
        if Fp.Rounding_mode.round_up ~mode ~neg ~odd:false ~inexact:true ~half_cmp then
          sign lor 1
        else sign
      end
      else begin
        (* prec <= 26 < 53 for every instantiated format *)
        let shift = 53 - prec in
        let m = m53 lsr shift in
        let rest = m53 land ((1 lsl shift) - 1) in
        let inexact = rest <> 0 in
        let twice = rest lsl 1 in
        let half = 1 lsl shift in
        let half_cmp = if twice < half then -1 else if twice > half then 1 else 0 in
        let up = Fp.Rounding_mode.round_up ~mode ~neg ~odd:(m land 1 = 1) ~inexact ~half_cmp in
        let m = if up then m + 1 else m in
        (* Ieee.finish *)
        let carry = m = 1 lsl prec in
        let m = if carry then m lsr 1 else m in
        let scale = (e - prec + 1) + if carry then 1 else 0 in
        if m lsr p.o_mb > 0 then begin
          let unbiased = p.o_mb + scale in
          if unbiased > p.o_emax then overflow p mode neg
          else sign lor ((unbiased + p.o_bias) lsl p.o_mb) lor (m land p.o_mmask)
        end
        else sign lor (m lsl (scale - (p.o_emin - p.o_mb)))
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Stage 1: decode, special probe, range reduction.                    *)
(* Returns the packed compensation key (>= 0 for every in-domain        *)
(* input) or -1 when the input belongs to the scalar fallback.  The     *)
(* reduced input lands in s.(0).                                        *)
(* ------------------------------------------------------------------ *)

let stage1 (p : plan) (s : float array) pat =
  let e = (pat lsr p.i_mb) land p.i_emask in
  if e = p.i_emask then -1 (* NaN / infinity *)
  else begin
    (* Inline Ieee.to_double for a finite pattern: normals by exponent
       rebias and mantissa shift, subnormals by exact integer scaling.
       float32 takes the hardware widening instead — exact on every
       finite pattern, and one instruction instead of the assembly. *)
    let x =
      if p.hw32 then Int32.float_of_bits (Int32.of_int pat)
      else begin
        let m = pat land p.i_mmask in
        let mag =
          if e = 0 then float_of_int m *. p.i_sub_scale
          else
            Int64.float_of_bits
              (Int64.logor
                 (Int64.shift_left (Int64.of_int (e + p.i_dexp_off)) 52)
                 (Int64.shift_left (Int64.of_int m) (52 - p.i_mb)))
        in
        if pat land p.i_sbit = 0 then mag else -.mag
      end
    in
    let special =
      match p.check with
      | Chk_log -> x <= 0.0
      | Chk_signed c -> x >= c.hi || x <= c.lo || Float.abs x <= c.snap
      | Chk_abs c -> Float.abs x >= c.hi || Float.abs x <= c.snap
      | Chk_log1p c -> x <= -1.0 || Float.abs x <= c.snap
    in
    if special then -1
    else
      match p.family with
      | Log f ->
          (* Reductions.log_reduce with Float.frexp inlined on the raw
             bits: every value reaching here is a positive normal
             double (the smallest target subnormal is ~2^-151, and the
             log1p sum 1+x is >= one target ulp below 1), so the
             rescaled significand is the mantissa field under exponent
             1023 and e = biased_exponent - 1023. *)
          let z = if f.add_one then 1.0 +. x else x in
          let zb = Int64.bits_of_float z in
          let zh = Int64.to_int (Int64.shift_right_logical zb 32) in
          let be = zh lsr 20 in
          let j = (zh lsr 13) land 0x7F in
          let m2 =
            Int64.float_of_bits
              (Int64.logor 0x3FF0_0000_0000_0000L (Int64.logand zb 0xF_FFFF_FFFF_FFFFL))
          in
          let fj = 1.0 +. (float_of_int j /. 128.0) in
          s.(0) <- (m2 -. fj) /. fj;
          j lor ((be - 1023 + 2048) lsl 8)
      | Exp f ->
          (* Reductions.exp_reduce: k = round(x * 64/log_b 2), Cody-
             Waite subtraction in the same order. *)
          let k = Float.to_int (Float.round (x *. f.inv_c)) in
          let fk = float_of_int k in
          s.(0) <- x -. (fk *. f.cw_hi) -. (fk *. f.cw_lo);
          (k land 63) lor (((k asr 6) + 2048) lsl 8)
      | Tanh f ->
          (* Reductions.tanh_reduce: exp reduction on t = 2|x| (exact
             doubling), input sign in bit 22. *)
          let t = 2.0 *. Float.abs x in
          let k = Float.to_int (Float.round (t *. f.inv_c)) in
          let fk = float_of_int k in
          s.(0) <- t -. (fk *. f.cw_hi) -. (fk *. f.cw_lo);
          (k land 63)
          lor (((k asr 6) + 2048) lsl 8)
          lor ((if x < 0.0 then 1 else 0) lsl 22)
      | Sinpi _ ->
          (* Reductions.sinpi_reduce (x = 0 is snapped by the probe, so
             the signed-zero test collapses to x < 0). *)
          let z = Float.abs x in
          let jj = z -. (2.0 *. Float.of_int (Float.to_int (z /. 2.0))) in
          let jj = if jj < 0.0 then jj +. 2.0 else jj in
          let k = if jj >= 1.0 then 1 else 0 in
          let l = jj -. float_of_int k in
          let l' = if l > 0.5 then 1.0 -. l else l in
          let n0 = Float.to_int (l' *. 512.0) in
          let n = if n0 > 255 then 255 else n0 in
          s.(0) <- l' -. (float_of_int n /. 512.0);
          let sneg = x < 0.0 <> (k = 1) in
          n lor ((if sneg then 1 else 0) lsl 9)
      | Cospi _ ->
          (* Reductions.cospi_reduce (§5's non-negative-table redesign). *)
          let z = Float.abs x in
          let jj = z -. (2.0 *. Float.of_int (Float.to_int (z /. 2.0))) in
          let jj = if jj < 0.0 then jj +. 2.0 else jj in
          let k = if jj >= 1.0 then 1 else 0 in
          let l = jj -. float_of_int k in
          let m1 = l > 0.5 in
          let l' = if m1 then 1.0 -. l else l in
          let n0 = Float.to_int (l' *. 512.0) in
          let n = if n0 > 255 then 255 else n0 in
          if n = 0 && l' < 0x1p-10 then begin
            s.(0) <- l';
            let sneg = (k = 1) <> m1 in
            (if sneg then 1 lsl 9 else 0)
          end
          else begin
            let c = Float.to_int (Float.ceil (l' *. 512.0)) in
            let c = if float_of_int c /. 512.0 = l' then c + 1 else c in
            let n' = if c > 256 then 256 else c in
            s.(0) <- (float_of_int n' /. 512.0) -. l';
            let sneg = (k = 1) <> m1 in
            n' lor ((if sneg then 1 else 0) lsl 9)
          end
      | Sinh _ | Cosh _ ->
          (* Reductions.sinhcosh_reduce: |x| = N/64 + R, exact. *)
          let z = Float.abs x in
          let n = Float.to_int (z *. 64.0) in
          s.(0) <- z -. (float_of_int n /. 64.0);
          n lor ((if x < 0.0 then 1 else 0) lsl 13)
  end

(* ------------------------------------------------------------------ *)
(* Stage 2: piecewise polynomial at r = s.(0) into s.(dst).             *)
(* Operation order is identical to Piecewise.compile_group (which is    *)
(* itself op-order-identical to Piecewise.eval).                        *)
(* ------------------------------------------------------------------ *)

let eval_piece (pc : piece) (s : float array) dst =
  let r = Array.unsafe_get s 0 in
  let g = if r < 0.0 then pc.neg else pc.pos in
  match g with
  | None -> Array.unsafe_set s dst 0.0
  | Some g ->
      (* Splitting.index: clamp the raw bits into the hull (unsigned
         64-bit order via the int halves), then one shift and mask. *)
      let rb = Int64.bits_of_float r in
      let bh = Int64.to_int (Int64.shift_right_logical rb 32) in
      let bl = Int64.to_int (Int64.logand rb 0xFFFF_FFFFL) in
      let below = bh < g.lo_hi || (bh = g.lo_hi && bl < g.lo_lo) in
      let bh = if below then g.lo_hi else bh in
      let bl = if below then g.lo_lo else bl in
      let above = bh > g.hi_hi || (bh = g.hi_hi && bl > g.hi_lo) in
      let bh = if above then g.hi_hi else bh in
      let bl = if above then g.hi_lo else bl in
      let sh = g.shift in
      let idx =
        (if sh >= 32 then bh lsr (sh - 32) else (bh lsl (32 - sh)) lor (bl lsr sh))
        land ((1 lsl g.nbits) - 1)
      in
      let o = idx * g.nt in
      let c = g.coeffs in
      let v =
        match pc.shape with
        | S0123 ->
            Array.unsafe_get c o
            +. (r
                *. (Array.unsafe_get c (o + 1)
                   +. (r *. (Array.unsafe_get c (o + 2) +. (r *. Array.unsafe_get c (o + 3))))))
        | S123 ->
            r
            *. (Array.unsafe_get c o
               +. (r *. (Array.unsafe_get c (o + 1) +. (r *. Array.unsafe_get c (o + 2)))))
        | S135 ->
            let u = r *. r in
            r
            *. (Array.unsafe_get c o
               +. (u *. (Array.unsafe_get c (o + 1) +. (u *. Array.unsafe_get c (o + 2)))))
        | S024 ->
            let u = r *. r in
            Array.unsafe_get c o
            +. (u *. (Array.unsafe_get c (o + 1) +. (u *. Array.unsafe_get c (o + 2))))
      in
      Array.unsafe_set s dst v

(* ------------------------------------------------------------------ *)
(* Stage 3: output compensation (expression order identical to          *)
(* Funcs.Reductions' OC functions) and the final rounding.              *)
(* ------------------------------------------------------------------ *)

let compose (p : plan) (s : float array) aux =
  (match p.family with
  | Log f ->
      let j = aux land 0xFF in
      let e = (aux lsr 8) - 2048 in
      Array.unsafe_set s 3
        ((float_of_int e *. f.escale) +. Array.unsafe_get f.f_tbl j +. Array.unsafe_get s 1)
  | Exp f ->
      let j = aux land 0xFF in
      let q = (aux lsr 8) - 2048 in
      (* Tables.pow2 inlined: exact bit assembly for the in-range
         exponents (every in-domain input), ldexp beyond. *)
      let pw =
        if q >= -1022 && q <= 1023 then
          Int64.float_of_bits (Int64.shift_left (Int64.of_int (q + 1023)) 52)
        else Float.ldexp 1.0 q
      in
      let y = pw *. (Array.unsafe_get f.t2 j *. Array.unsafe_get s 1) in
      Array.unsafe_set s 3 (if f.minus_one then y -. 1.0 else y)
  | Tanh f ->
      let j = aux land 0xFF in
      let q = ((aux land 0x3F_FFFF) lsr 8) - 2048 in
      let sgn = if aux land (1 lsl 22) <> 0 then -1.0 else 1.0 in
      let pw =
        if q >= -1022 && q <= 1023 then
          Int64.float_of_bits (Int64.shift_left (Int64.of_int (q + 1023)) 52)
        else Float.ldexp 1.0 q
      in
      let w = pw *. (Array.unsafe_get f.t2 j *. Array.unsafe_get s 1) in
      Array.unsafe_set s 3 (sgn *. ((w -. 1.0) /. (w +. 1.0)))
  | Sinpi f ->
      let n = aux land 0x1FF in
      let sgn = if aux land (1 lsl 9) <> 0 then -1.0 else 1.0 in
      Array.unsafe_set s 3
        (sgn
        *. ((Array.unsafe_get f.spn n *. Array.unsafe_get s 2)
           +. (Array.unsafe_get f.cpn n *. Array.unsafe_get s 1)))
  | Cospi f ->
      let n' = aux land 0x1FF in
      let sgn = if aux land (1 lsl 9) <> 0 then -1.0 else 1.0 in
      if n' = 0 then Array.unsafe_set s 3 (sgn *. Array.unsafe_get s 2)
      else
        Array.unsafe_set s 3
          (sgn
          *. ((Array.unsafe_get f.cpn n' *. Array.unsafe_get s 2)
             +. (Array.unsafe_get f.spn n' *. Array.unsafe_get s 1)))
  | Sinh f ->
      let n = aux land 0x1FFF in
      let sgn = if aux land (1 lsl 13) <> 0 then -1.0 else 1.0 in
      Array.unsafe_set s 3
        (sgn
        *. ((Array.unsafe_get f.sh n *. Array.unsafe_get s 2)
           +. (Array.unsafe_get f.ch n *. Array.unsafe_get s 1)))
  | Cosh f ->
      let n = aux land 0x1FFF in
      Array.unsafe_set s 3
        ((Array.unsafe_get f.ch n *. Array.unsafe_get s 2)
        +. (Array.unsafe_get f.sh n *. Array.unsafe_get s 1)));
  if p.hw_rne then
    (* One hardware cast replaces the whole integer rounding: identical
       on the finite y the fast path produces (see the field's note). *)
    Int32.to_int (Int32.bits_of_float (Array.unsafe_get s 3)) land 0xFFFF_FFFF
  else begin
    let yb = Int64.bits_of_float (Array.unsafe_get s 3) in
    round_bits p p.mode
      (Int64.to_int (Int64.shift_right_logical yb 32))
      (Int64.to_int (Int64.logand yb 0xFFFF_FFFFL))
  end

(* ------------------------------------------------------------------ *)
(* The per-element step and pattern-level probes.                      *)
(* ------------------------------------------------------------------ *)

(** [eval p s pat] applies the plan to one input pattern, using [s] (a
    {!scratch}) for unboxed float hand-off between the stages. *)
let eval (p : plan) (s : float array) pat =
  let aux = stage1 p s pat in
  if aux < 0 then p.fallback pat
  else begin
    let pcs = p.pieces in
    eval_piece (Array.unsafe_get pcs 0) s 1;
    if Array.length pcs > 1 then eval_piece (Array.unsafe_get pcs 1) s 2;
    compose p s aux
  end

(* ------------------------------------------------------------------ *)
(* Tiered evaluation: certified prefix -> full polynomial -> scalar    *)
(* fallback.                                                           *)
(* ------------------------------------------------------------------ *)

(* Tier counter layout (a plain [int array] so the hot loop can count
   without allocating): 0 = certified-prefix evaluations, 1 = full-
   polynomial evaluations (certificate miss or no tier), 2 = scalar
   fallbacks (special / non-finite inputs).  The batched entry points
   ({!eval_counted}, {!eval_tiered_tp}) increment only their *rare*
   branches — the pipeline derives the dominant tier's count from the
   processed total at shard end, so the steady-state path pays nothing
   for accounting. *)
let c_prefix = 0

let c_full = 1
let c_fallback = 2
let n_counters = 3
let counters () = Array.make n_counters 0

(* One piece through the tier: prefix Horner over the dense certified
   rows, which doubles as the certificate probe — an uncertified bucket
   holds an all-NaN row, the NaN poisons the prefix value, and the
   [v <> v] self-compare routes the element to the full row.  Returns
   [true] with the prefix value written to [s.(dst)] on a certificate
   hit, [false] (nothing written) on a miss.  Prefix expressions are
   the leading [tk] coefficients in exactly {!Rlibm.Polyeval}'s
   operation order — bit-identical to what the certificates were
   checked against (multiplication commutes bit-exactly, so the kernel
   writes them in [eval_piece]'s style).  A certified row can never
   legitimately evaluate to NaN (its value lies inside a finite rounding
   interval), so the self-compare is exact, not heuristic. *)
let eval_piece_tiered (pc : piece) (tp : tpiece) (s : float array) dst =
  let r = Array.unsafe_get s 0 in
  (* Two scalar selects, not one tuple select: the Closure-mode backend
     would allocate the tuple on every call. *)
  let is_neg = r < 0.0 in
  let g = if is_neg then pc.neg else pc.pos in
  let tc = if is_neg then tp.tneg else tp.tpos in
  match g with
  | None ->
      (* Absent sign group: the full path also yields 0.0. *)
      Array.unsafe_set s dst 0.0;
      true
  | Some g ->
      let rb = Int64.bits_of_float r in
      let bh = Int64.to_int (Int64.shift_right_logical rb 32) in
      let bl = Int64.to_int (Int64.logand rb 0xFFFF_FFFFL) in
      let below = bh < g.lo_hi || (bh = g.lo_hi && bl < g.lo_lo) in
      let bh = if below then g.lo_hi else bh in
      let bl = if below then g.lo_lo else bl in
      let above = bh > g.hi_hi || (bh = g.hi_hi && bl > g.hi_lo) in
      let bh = if above then g.hi_hi else bh in
      let bl = if above then g.hi_lo else bl in
      (* Splitting.index_ext with the shift/mask precomputed at lowering
         time: keep the certificate's extra low bits. *)
      let sh = tc.t_shift in
      let eidx =
        (if sh >= 32 then bh lsr (sh - 32) else (bh lsl (32 - sh)) lor (bl lsr sh))
        land tc.t_mask
      in
      let c = tc.t_coeffs in
      let o = eidx * tp.tk in
      let v =
        match pc.shape with
        | S0123 ->
            if tp.tk = 1 then Array.unsafe_get c o
            else if tp.tk = 2 then Array.unsafe_get c o +. (r *. Array.unsafe_get c (o + 1))
            else
              Array.unsafe_get c o
              +. (r *. (Array.unsafe_get c (o + 1) +. (r *. Array.unsafe_get c (o + 2))))
        | S123 ->
            if tp.tk = 1 then r *. Array.unsafe_get c o
            else r *. (Array.unsafe_get c o +. (r *. Array.unsafe_get c (o + 1)))
        | S135 ->
            if tp.tk = 1 then r *. Array.unsafe_get c o
            else
              let u = r *. r in
              r *. (Array.unsafe_get c o +. (u *. Array.unsafe_get c (o + 1)))
        | S024 ->
            if tp.tk = 1 then Array.unsafe_get c o
            else
              let u = r *. r in
              Array.unsafe_get c o +. (u *. Array.unsafe_get c (o + 1))
      in
      if v <> v then false
      else begin
        Array.unsafe_set s dst v;
        true
      end

(** [eval_counted p s ctr pat] is {!eval} counting only the rare scalar
    fallbacks into [ctr] — pipelines over tier-less plans derive the
    full-polynomial count as [processed - fallbacks] at shard end. *)
let eval_counted (p : plan) (s : float array) (ctr : int array) pat =
  let aux = stage1 p s pat in
  if aux < 0 then begin
    Array.unsafe_set ctr c_fallback (Array.unsafe_get ctr c_fallback + 1);
    p.fallback pat
  end
  else begin
    let pcs = p.pieces in
    eval_piece (Array.unsafe_get pcs 0) s 1;
    if Array.length pcs > 1 then eval_piece (Array.unsafe_get pcs 1) s 2;
    compose p s aux
  end

(** [eval_tiered_tp p tp s ctr pat] is the tiered per-element step with
    the tier already in hand (hoisted out of the batch loop): when every
    piece's certificate bucket hits, the certified coefficient prefixes
    are evaluated instead of the full rows; any miss re-evaluates every
    piece in full ([eval]'s exact path), so the result is bit-identical
    to {!eval} on every input.  Counts only the rare branches
    (certificate-miss fulls and fallbacks) — the prefix count is
    [processed - full - fallbacks], derived at shard end. *)
let eval_tiered_tp (p : plan) (tp : tpiece array) (s : float array) (ctr : int array) pat =
  let aux = stage1 p s pat in
  if aux < 0 then begin
    Array.unsafe_set ctr c_fallback (Array.unsafe_get ctr c_fallback + 1);
    p.fallback pat
  end
  else begin
    let pcs = p.pieces in
    let fast =
      eval_piece_tiered (Array.unsafe_get pcs 0) (Array.unsafe_get tp 0) s 1
      && (Array.length pcs < 2
         || eval_piece_tiered (Array.unsafe_get pcs 1) (Array.unsafe_get tp 1) s 2)
    in
    if not fast then begin
      Array.unsafe_set ctr c_full (Array.unsafe_get ctr c_full + 1);
      eval_piece (Array.unsafe_get pcs 0) s 1;
      if Array.length pcs > 1 then eval_piece (Array.unsafe_get pcs 1) s 2
    end;
    compose p s aux
  end

(* Post-loop counter fixup: credit the dominant tier with everything the
   rare branches didn't claim. *)
let derive_counts ~tiered ~processed (ctr : int array) =
  if tiered then ctr.(c_prefix) <- ctr.(c_prefix) + processed - ctr.(c_full) - ctr.(c_fallback)
  else ctr.(c_full) <- ctr.(c_full) + processed - ctr.(c_fallback)

(** [eval_tiered p s ctr pat] is {!eval} through the plan's progressive
    tier (if any), with *exact* per-call tier accounting into [ctr] —
    the convenient scalar entry for verification and tests; batch loops
    use {!eval_tiered_tp}/{!eval_counted} + {!derive_counts} instead. *)
let eval_tiered (p : plan) (s : float array) (ctr : int array) pat =
  match p.tier with
  | None ->
      let fb = ctr.(c_fallback) in
      let out = eval_counted p s ctr pat in
      if ctr.(c_fallback) = fb then ctr.(c_full) <- ctr.(c_full) + 1;
      out
  | Some tp ->
      let fb = ctr.(c_fallback) and fu = ctr.(c_full) in
      let out = eval_tiered_tp p tp s ctr pat in
      if ctr.(c_fallback) = fb && ctr.(c_full) = fu then ctr.(c_prefix) <- ctr.(c_prefix) + 1;
      out

(** [is_fast p pat]: would [pat] take the allocation-free path?  (Used
    by workload generators and tests; not on the hot path itself.) *)
let is_fast (p : plan) pat =
  let e = (pat lsr p.i_mb) land p.i_emask in
  if e = p.i_emask then false
  else begin
    let m = pat land p.i_mmask in
    let mag =
      if e = 0 then float_of_int m *. p.i_sub_scale
      else
        Int64.float_of_bits
          (Int64.logor
             (Int64.shift_left (Int64.of_int (e + p.i_dexp_off)) 52)
             (Int64.shift_left (Int64.of_int m) (52 - p.i_mb)))
    in
    let x = if pat land p.i_sbit = 0 then mag else -.mag in
    not
      (match p.check with
      | Chk_log -> x <= 0.0
      | Chk_signed c -> x >= c.hi || x <= c.lo || Float.abs x <= c.snap
      | Chk_abs c -> Float.abs x >= c.hi || Float.abs x <= c.snap
      | Chk_log1p c -> x <= -1.0 || Float.abs x <= c.snap)
  end

(** [to_double p pat] widens an output pattern to the double the
    representation's [to_double] would produce (NaN payloads widen the
    hardware way: sign and payload preserved, which is what
    {!Fp.Fp32.to_double} does; the generic {!Fp.Ieee.to_double} returns
    a canonical NaN instead — callers comparing doubles must compare
    NaNs as a class, as the tests do). *)
let to_double (p : plan) pat =
  let e = (pat lsr p.i_mb) land p.i_emask in
  let m = pat land p.i_mmask in
  let neg = pat land p.i_sbit <> 0 in
  if e = p.i_emask then
    Int64.float_of_bits
      (Int64.logor
         (Int64.logor (if neg then Int64.min_int else 0L) 0x7FF0_0000_0000_0000L)
         (Int64.shift_left (Int64.of_int m) (52 - p.i_mb)))
  else begin
    let mag =
      if e = 0 then float_of_int m *. p.i_sub_scale
      else
        Int64.float_of_bits
          (Int64.logor
             (Int64.shift_left (Int64.of_int (e + p.i_dexp_off)) 52)
             (Int64.shift_left (Int64.of_int m) (52 - p.i_mb)))
    in
    if neg then -.mag else mag
  end

(* ------------------------------------------------------------------ *)
(* Cloning (per-domain table pinning).                                 *)
(* ------------------------------------------------------------------ *)

let clone_group (g : pgroup) = { g with coeffs = Array.copy g.coeffs }

let clone_piece (pc : piece) =
  { pc with neg = Option.map clone_group pc.neg; pos = Option.map clone_group pc.pos }

let clone_tcert (tc : tcert) = { tc with t_coeffs = Array.copy tc.t_coeffs }

let clone_tpiece (tp : tpiece) =
  { tp with tneg = clone_tcert tp.tneg; tpos = clone_tcert tp.tpos }

(** Deep-copy every flat table of a plan, so each worker domain can own
    a private replica (no shared cache lines on the hot loop). *)
let clone (p : plan) =
  let family =
    match p.family with
    | Log f -> Log { f with f_tbl = Array.copy f.f_tbl }
    | Exp f -> Exp { f with t2 = Array.copy f.t2 }
    | Tanh f -> Tanh { f with t2 = Array.copy f.t2 }
    | Sinpi f -> Sinpi { spn = Array.copy f.spn; cpn = Array.copy f.cpn }
    | Cospi f -> Cospi { spn = Array.copy f.spn; cpn = Array.copy f.cpn }
    | Sinh f -> Sinh { sh = Array.copy f.sh; ch = Array.copy f.ch }
    | Cosh f -> Cosh { sh = Array.copy f.sh; ch = Array.copy f.ch }
  in
  {
    p with
    family;
    pieces = Array.map clone_piece p.pieces;
    tier = Option.map (Array.map clone_tpiece) p.tier;
  }
