(* Batch drivers over {!Kernel} plans: plain-array and Bigarray
   pipelines, per-domain plan pinning, and the SLO measurement used by
   bin/serve and the bench serve section.

   Sharding follows the Funcs.Batch convention: below [par_min] the loop
   runs inline on the calling domain (domain spawn overhead would
   dominate), above it the index space shards through {!Parallel} with
   each shard writing a disjoint slice of [dst].  Each shard pins a
   domain-private deep copy of the plan ({!pin}) and allocates its own
   4-slot scratch, so worker domains share no mutable structure and no
   hot cache lines — the shard setup is the only allocation; the
   per-element path allocates nothing. *)

module K = Kernel

let default_par_min = 1 lsl 14

(* ------------------------------------------------------------------ *)
(* Per-domain plan pinning.                                            *)
(* ------------------------------------------------------------------ *)

(* Keyed by physical equality of the source plan: plans are built once
   per (function, target, mode) and memoized (Funcs.Kernels), so the
   list stays short-lived and tiny.  DLS makes the cache per-domain:
   lookups never lock, and each domain's clone owns its tables. *)
let pinned : (K.plan * K.plan) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(** [pin p] is this domain's private clone of [p] (created on first
    use). *)
let pin (p : K.plan) =
  let cache = Domain.DLS.get pinned in
  match List.assq_opt p !cache with
  | Some c -> c
  | None ->
      let c = K.clone p in
      cache := (p, c) :: !cache;
      c

(* ------------------------------------------------------------------ *)
(* Sharded loops.                                                      *)
(* ------------------------------------------------------------------ *)

let run_sharded ?jobs ?(par_min = default_par_min) n body =
  if n < par_min then body ~lo:0 ~hi:n
  else ignore (Parallel.map_chunks ?jobs ~n (fun ~lo ~hi -> body ~lo ~hi))

(** [patterns p src dst] evaluates the plan over input patterns.
    Bit-identical to the scalar path at every job count.
    @raise Invalid_argument on length mismatch. *)
let patterns ?jobs ?par_min (p : K.plan) (src : int array) (dst : int array) =
  let n = Array.length src in
  if Array.length dst <> n then invalid_arg "Serve.Run.patterns: length mismatch";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      for i = lo to hi - 1 do
        Array.unsafe_set dst i (K.eval c s (Array.unsafe_get src i))
      done)

(* Per-shard tier counters merge under one lock at shard exit (a few
   dozen increments per run, never per element), so the hot loop counts
   into a shard-local array without contention or atomics. *)
let ctr_mu = Mutex.create ()

let merge_counters dst local =
  Mutex.lock ctr_mu;
  for i = 0 to K.n_counters - 1 do
    dst.(i) <- dst.(i) + local.(i)
  done;
  Mutex.unlock ctr_mu

(** [patterns_tiered p src dst ctr] is {!patterns} through the plan's
    progressive tier ({!Kernel.eval_tiered}): bit-identical outputs,
    with per-tier call counts accumulated into [ctr] (a
    {!Kernel.counters}). *)
let patterns_tiered ?jobs ?par_min (p : K.plan) (src : int array) (dst : int array) ctr =
  let n = Array.length src in
  if Array.length dst <> n then invalid_arg "Serve.Run.patterns_tiered: length mismatch";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      let lc = K.counters () in
      (* The tier dispatch is hoisted out of the loop; the loop counts
         only its rare branches and the dominant tier is credited at
         shard end (K.derive_counts). *)
      (match c.K.tier with
      | Some tp ->
          for i = lo to hi - 1 do
            Array.unsafe_set dst i (K.eval_tiered_tp c tp s lc (Array.unsafe_get src i))
          done
      | None ->
          for i = lo to hi - 1 do
            Array.unsafe_set dst i (K.eval_counted c s lc (Array.unsafe_get src i))
          done);
      K.derive_counts ~tiered:(Option.is_some c.K.tier) ~processed:(hi - lo) lc;
      merge_counters ctr lc)

(* The double -> pattern leg of the doubles pipeline always rounds at
   RNE (Representation.S.of_double's default, which is what the boxed
   Funcs.Batch.eval_doubles used); float32 takes the hardware cast
   exactly as Fp.Fp32 does.  The pattern -> double leg replicates the
   format's to_double (value-exact on finite patterns; NaN patterns
   produce Float.nan for the generic formats, the payload-exact
   hardware widen for float32 — again matching the boxed path). *)
let doubles ?jobs ?par_min (p : K.plan) (src : float array) (dst : float array) =
  let n = Array.length src in
  if Array.length dst <> n then invalid_arg "Serve.Run.doubles: length mismatch";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      if c.K.hw32 then
        for i = lo to hi - 1 do
          let x = Array.unsafe_get src i in
          let pat = Int32.to_int (Int32.bits_of_float x) land 0xFFFF_FFFF in
          Array.unsafe_set dst i (Int32.float_of_bits (Int32.of_int (K.eval c s pat)))
        done
      else
        for i = lo to hi - 1 do
          let x = Array.unsafe_get src i in
          let xb = Int64.bits_of_float x in
          let pat =
            K.round_bits c Fp.Rounding_mode.Rne
              (Int64.to_int (Int64.shift_right_logical xb 32))
              (Int64.to_int (Int64.logand xb 0xFFFF_FFFFL))
          in
          let out = K.eval c s pat in
          let e = (out lsr c.K.i_mb) land c.K.i_emask in
          let m = out land c.K.i_mmask in
          let neg = out land c.K.i_sbit <> 0 in
          if e = c.K.i_emask then
            Array.unsafe_set dst i
              (if m <> 0 then Float.nan
               else if neg then Float.neg_infinity
               else Float.infinity)
          else begin
            let mag =
              if e = 0 then float_of_int m *. c.K.i_sub_scale
              else
                Int64.float_of_bits
                  (Int64.logor
                     (Int64.shift_left (Int64.of_int (e + c.K.i_dexp_off)) 52)
                     (Int64.shift_left (Int64.of_int m) (52 - c.K.i_mb)))
            in
            Array.unsafe_set dst i (if neg then -.mag else mag)
          end
        done)

(* ------------------------------------------------------------------ *)
(* Bigarray pipelines: the preallocated serving buffers.  Int32 cells   *)
(* hold patterns (<= 34 bits stored mod 2^32, masked back on read — no  *)
(* instantiated format exceeds 34 bits, and the 34-bit extended targets *)
(* are pattern-only clients); float64 cells hold exact target values.   *)
(* ------------------------------------------------------------------ *)

type i32buf = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
type f64buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_i32 n : i32buf = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n
let create_f64 n : f64buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(** [ba32 p src dst] evaluates over int32 pattern buffers.  Only valid
    for plans whose width is at most 32 (every shipped format except the
    extended 34-bit target; those use {!patterns} or {!ba64}). *)
let ba32 ?jobs ?par_min (p : K.plan) (src : i32buf) (out : i32buf) =
  let n = Bigarray.Array1.dim src in
  if Bigarray.Array1.dim out <> n then invalid_arg "Serve.Run.ba32: length mismatch";
  if p.K.width > 32 then invalid_arg "Serve.Run.ba32: pattern width exceeds 32 bits";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      for i = lo to hi - 1 do
        let pat = Int32.to_int (Bigarray.Array1.unsafe_get src i) land 0xFFFF_FFFF in
        Bigarray.Array1.unsafe_set out i (Int32.of_int (K.eval c s pat))
      done)

(** [ba32_tiered p src dst ctr] is {!ba32} through the progressive tier:
    bit-identical outputs, per-tier call counts accumulated into [ctr].
    This is the serving loop {!measure} times, so the counter increments
    are part of the measured path (a served call always pays for its own
    accounting). *)
let ba32_tiered ?jobs ?par_min (p : K.plan) (src : i32buf) (out : i32buf) ctr =
  let n = Bigarray.Array1.dim src in
  if Bigarray.Array1.dim out <> n then invalid_arg "Serve.Run.ba32_tiered: length mismatch";
  if p.K.width > 32 then invalid_arg "Serve.Run.ba32_tiered: pattern width exceeds 32 bits";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      let lc = K.counters () in
      (match c.K.tier with
      | Some tp ->
          for i = lo to hi - 1 do
            let pat = Int32.to_int (Bigarray.Array1.unsafe_get src i) land 0xFFFF_FFFF in
            Bigarray.Array1.unsafe_set out i (Int32.of_int (K.eval_tiered_tp c tp s lc pat))
          done
      | None ->
          for i = lo to hi - 1 do
            let pat = Int32.to_int (Bigarray.Array1.unsafe_get src i) land 0xFFFF_FFFF in
            Bigarray.Array1.unsafe_set out i (Int32.of_int (K.eval_counted c s lc pat))
          done);
      K.derive_counts ~tiered:(Option.is_some c.K.tier) ~processed:(hi - lo) lc;
      merge_counters ctr lc)

(** [ba64 p src dst] evaluates over float64 value buffers (the
    double-in/double-out serving shape). *)
let ba64 ?jobs ?par_min (p : K.plan) (src : f64buf) (dst : f64buf) =
  let n = Bigarray.Array1.dim src in
  if Bigarray.Array1.dim dst <> n then invalid_arg "Serve.Run.ba64: length mismatch";
  run_sharded ?jobs ?par_min n (fun ~lo ~hi ->
      let c = pin p in
      let s = K.scratch () in
      if c.K.hw32 then
        for i = lo to hi - 1 do
          let x = Bigarray.Array1.unsafe_get src i in
          let pat = Int32.to_int (Int32.bits_of_float x) land 0xFFFF_FFFF in
          Bigarray.Array1.unsafe_set dst i (Int32.float_of_bits (Int32.of_int (K.eval c s pat)))
        done
      else
        for i = lo to hi - 1 do
          let x = Bigarray.Array1.unsafe_get src i in
          let xb = Int64.bits_of_float x in
          let pat =
            K.round_bits c Fp.Rounding_mode.Rne
              (Int64.to_int (Int64.shift_right_logical xb 32))
              (Int64.to_int (Int64.logand xb 0xFFFF_FFFFL))
          in
          let out = K.eval c s pat in
          let e = (out lsr c.K.i_mb) land c.K.i_emask in
          let m = out land c.K.i_mmask in
          let neg = out land c.K.i_sbit <> 0 in
          if e = c.K.i_emask then
            Bigarray.Array1.unsafe_set dst i
              (if m <> 0 then Float.nan
               else if neg then Float.neg_infinity
               else Float.infinity)
          else begin
            let mag =
              if e = 0 then float_of_int m *. c.K.i_sub_scale
              else
                Int64.float_of_bits
                  (Int64.logor
                     (Int64.shift_left (Int64.of_int (e + c.K.i_dexp_off)) 52)
                     (Int64.shift_left (Int64.of_int m) (52 - c.K.i_mb)))
            in
            Bigarray.Array1.unsafe_set dst i (if neg then -.mag else mag)
          end
        done)

(* ------------------------------------------------------------------ *)
(* Bit-identity verification and SLO measurement.                      *)
(* ------------------------------------------------------------------ *)

(** [verify p src] replays every input pattern through the kernel and
    the plan's scalar fallback (which IS the generated scalar path) and
    returns the first mismatching input pattern, or [None].  Plans
    carrying a progressive tier also replay the tiered path — the tier
    actually selected at serving time — against the same fallback. *)
let verify (p : K.plan) (src : int array) =
  let s = K.scratch () in
  let c = pin p in
  let ctr = K.counters () in
  let tiered = Option.is_some c.K.tier in
  let bad = ref None in
  let i = ref 0 in
  let n = Array.length src in
  while !bad = None && !i < n do
    let pat = src.(!i) in
    let want = p.K.fallback pat in
    if K.eval c s pat <> want then bad := Some pat
    else if tiered && K.eval_tiered c s ctr pat <> want then bad := Some pat;
    incr i
  done;
  !bad

type slo = {
  n : int;  (* calls per batch — diffs across batch sizes are meaningless *)
  batches : int;
  calls_per_sec : float;
  p50_ns : float;  (* per-call (micro-block sampled), NOT per-batch means *)
  p99_ns : float;
  tier_prefix : int;  (* calls served by the certified prefix, all batches *)
  tier_full : int;  (* full-polynomial evaluations (miss, or no tier) *)
  tier_fallback : int;  (* scalar fallbacks (special / non-finite) *)
}

(* Percentile over a sorted sample array (nearest-rank). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

(* Latency percentiles sample micro-blocks of this many calls on a
   single domain: a timestamp pair per individual ~10ns call would
   measure the clock, not the kernel, while a whole-batch mean (the old
   behaviour) collapses the distribution to one sample per batch and
   hides every tail.  512 calls amortize the clock reads to well under a
   nanosecond per call while keeping block-to-block spread visible —
   and keeps each block a few microseconds long, comfortably above the
   clock's microsecond granularity. *)
let sample_block = 512

(** [measure ?jobs ?par_min p src ~batches] replays the pattern workload
    [src] through the tiered int32 Bigarray pipeline [batches] times for
    throughput, then samples per-call latency in {!sample_block}-call
    micro-blocks on one domain for the percentiles — [p50_ns]/[p99_ns]
    are over per-call samples, not per-batch means, so they move when
    the tail moves.  One warm-up batch runs first so table pinning and
    buffer faulting stay out of the numbers; tier counters cover the
    timed batches only (warm-up excluded). *)
let measure ?jobs ?par_min (p : K.plan) (src : int array) ~batches =
  let n = Array.length src in
  let inb = create_i32 n and outb = create_i32 n in
  for i = 0 to n - 1 do
    Bigarray.Array1.set inb i (Int32.of_int src.(i))
  done;
  let ctr = K.counters () in
  ba32_tiered ?jobs ?par_min p inb outb ctr;
  Array.fill ctr 0 K.n_counters 0;
  let total = ref 0.0 in
  for _b = 0 to batches - 1 do
    let t0 = Unix.gettimeofday () in
    ba32_tiered ?jobs ?par_min p inb outb ctr;
    total := !total +. (Unix.gettimeofday () -. t0)
  done;
  let nblocks = Stdlib.max 1 (n / sample_block) in
  let samples = Array.make nblocks 0.0 in
  let c = pin p in
  let s = K.scratch () in
  let sctr = K.counters () in
  for b = 0 to nblocks - 1 do
    let lo = b * sample_block in
    let hi = Stdlib.min n (lo + sample_block) in
    let t0 = Unix.gettimeofday () in
    (match c.K.tier with
    | Some tp ->
        for i = lo to hi - 1 do
          let pat = Int32.to_int (Bigarray.Array1.unsafe_get inb i) land 0xFFFF_FFFF in
          Bigarray.Array1.unsafe_set outb i (Int32.of_int (K.eval_tiered_tp c tp s sctr pat))
        done
    | None ->
        for i = lo to hi - 1 do
          let pat = Int32.to_int (Bigarray.Array1.unsafe_get inb i) land 0xFFFF_FFFF in
          Bigarray.Array1.unsafe_set outb i (Int32.of_int (K.eval_counted c s sctr pat))
        done);
    samples.(b) <- (Unix.gettimeofday () -. t0) /. float_of_int (hi - lo) *. 1e9
  done;
  Array.sort compare samples;
  {
    n;
    batches;
    calls_per_sec = float_of_int (n * batches) /. !total;
    p50_ns = percentile samples 0.50;
    p99_ns = percentile samples 0.99;
    tier_prefix = ctr.(K.c_prefix);
    tier_full = ctr.(K.c_full);
    tier_fallback = ctr.(K.c_fallback);
  }
