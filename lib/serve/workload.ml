(* Seedable workload mixes for the serving bench and bin/serve replay.

   Three mixes, matching the SLO bench's rows:
   - [Uniform]: uniformly random *fast-path* patterns (specials and
     out-of-domain regions rejected), the steady-state serving load;
   - [Hardcase]: half raw random patterns (any bits — NaNs, infinities
     and saturated regions included), half drawn from a pool of the
     format's edge patterns, stressing the fallback path;
   - [Subnormal]: 80% patterns with a zero exponent field (signed
     subnormals and zeros), 20% raw random, stressing the decode and
     special probes.

   Generation is a pure function of (plan identity, mix, seed, n):
   splitmix64 drives everything, so recorded workloads replay exactly. *)

module K = Kernel

type mix = Uniform | Hardcase | Subnormal

let mix_to_string = function
  | Uniform -> "uniform"
  | Hardcase -> "hardcase"
  | Subnormal -> "subnormal"

let mix_of_string = function
  | "uniform" -> Some Uniform
  | "hardcase" -> Some Hardcase
  | "subnormal" -> Some Subnormal
  | _ -> None

(* splitmix64: the standard 64-bit mix, tiny and splittable by seed. *)
let sm_next st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_bits st mask = Int64.to_int (sm_next st) land mask

(* Edge-pattern pool for the hardcase mix: NaN, the infinities, both
   zeros, both largest-finite values, the smallest subnormal of each
   sign, 1.0 (one_snap's neighborhood), and a huge-argument row — a
   finite value halfway up the exponent range, both signs.  For the
   trig family that row lands deep in the range-reduction regime
   (sinpi/cospi integer collapse, sin/cos/tan Payne–Hanek fallback);
   for the exp family it saturates, and for logs it is an ordinary
   fast-path input. *)
let edge_pool (p : K.plan) =
  let one = p.K.o_bias lsl p.K.o_mb in
  let huge = ((p.K.o_bias + (p.K.o_emax / 2)) lsl p.K.o_mb) lor (p.K.o_mmask lsr 1) in
  [|
    p.K.o_nan;
    p.K.o_inf_pos;
    p.K.o_inf_neg;
    0;
    p.K.i_sbit;
    p.K.o_maxf_pos;
    p.K.o_maxf_neg;
    1;
    p.K.i_sbit lor 1;
    one;
    one lor p.K.i_sbit;
    huge;
    huge lor p.K.i_sbit;
  |]

(** [gen p ~mix ~seed ~n] is a deterministic workload of [n] input
    patterns for plan [p]. *)
let gen (p : K.plan) ~mix ~seed ~n =
  let st = ref (Int64.of_int seed) in
  let mask = (1 lsl p.K.width) - 1 in
  let out = Array.make n 0 in
  (match mix with
  | Uniform ->
      for i = 0 to n - 1 do
        (* Rejection-sample the fast path.  The fast region covers a
           large constant fraction of every (function, format) space
           (worst case the log family's ~half), so the loop terminates
           quickly; cap the tries defensively and keep the last draw if
           the cap ever hits. *)
        let pat = ref (rand_bits st mask) in
        let tries = ref 0 in
        while (not (K.is_fast p !pat)) && !tries < 256 do
          pat := rand_bits st mask;
          incr tries
        done;
        out.(i) <- !pat
      done
  | Hardcase ->
      let pool = edge_pool p in
      let np = Array.length pool in
      for i = 0 to n - 1 do
        out.(i) <-
          (if Int64.to_int (sm_next st) land 1 = 0 then rand_bits st mask
           else pool.(Int64.to_int (sm_next st) land 0x3F_FFFF mod np))
      done
  | Subnormal ->
      let sub_mask = p.K.i_sbit lor p.K.i_mmask in
      for i = 0 to n - 1 do
        out.(i) <-
          (if Int64.to_int (sm_next st) land 0xF < 13 (* ~80% *) then rand_bits st sub_mask
           else rand_bits st mask)
      done);
  out
