(* Rounding intervals (Algorithm 1, lines 14-17), mode-polymorphic.

   For a target value y of representation T and rounding mode m, the
   rounding interval is the set of reals v with round_{T,m}(v) = y.
   Because rounding is monotone on the double line, the double endpoints
   can be found by an exponential bracket followed by binary search on
   the monotone integer key of the double space — representation-
   agnostic, so the same code serves floats and posits.

   The nearest modes (RNE/RNA) keep the classic closed formulation over
   doubles: their region boundaries are midpoints of adjacent target
   values, and closing the box at the outermost *double* inside the
   region loses nothing a double-evaluated polynomial could use.  The
   directed modes and round-to-odd have half-open regions whose open
   boundary sits exactly on a representable value; for those the
   interval records the true boundary with an openness flag, and the LP
   layer turns the open side into a strict inequality. *)

type t = { lo : float; hi : float; lo_open : bool; hi_open : bool }

let closed lo hi = { lo; hi; lo_open = false; hi_open = false }

let contains i v =
  (if i.lo_open then v > i.lo else v >= i.lo)
  && if i.hi_open then v < i.hi else v <= i.hi

let width_ulps i = Fp.Fp64.steps i.lo i.hi

(* Largest k in [0, bound] with (pred k) true, where pred is monotone
   (true then false as k grows); requires pred 0 and bound >= 0. *)
let search_max pred bound =
  if pred bound then bound
  else begin
    (* Exponential bracket.  The doubling is clamped at [bound]: for
       bounds past max_int/2 a bare [!hi * 2] would wrap negative and
       feed garbage steps to [pred]. *)
    let lo = ref 0 and hi = ref 1 in
    while !hi < bound && pred !hi do
      lo := !hi;
      hi := if !hi > bound / 2 then bound else !hi * 2
    done;
    let hi = ref (Stdlib.min !hi bound) in
    (* Invariant: pred !lo, not (pred !hi). *)
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if pred mid then lo := mid else hi := mid
    done;
    !lo
  end

(* How far (in double ulps) the search may ever need to reach.  The
   deepest case is an IEEE infinity pattern, whose region runs from the
   target's overflow boundary to double infinity: for float16 that is
   every double from ~2^16 up, (2047 - 1039) binades x 2^52 ulps each,
   about 4.54e18 steps — just inside max_int = 2^62 - 1.  (Finite
   patterns are far cheaper; the widest is posit32's outermost regime at
   under 2^57 steps.)  The clamped doubling above makes this bound safe;
   the seed's unclamped loop only survived [1 lsl 62 - 1] by wrapping
   through min_int. *)
let max_reach = Stdlib.max_int

(** [interval (module T) ?mode y] is the rounding interval of the finite
    pattern [y] under [mode] (default RNE).  Equality is up to the sign
    of zero — the +0 and -0 patterns denote one value, and treating them
    as distinct would pin the reduced constraints of odd functions at
    exact zeros to empty boxes. *)
let interval (module T : Fp.Representation.S) ?(mode = Fp.Rounding_mode.Rne) y =
  let v0 = T.to_double y in
  let same p =
    p = y
    ||
    match (T.classify p, T.classify y) with
    | Fp.Representation.Finite, Fp.Representation.Finite -> T.to_double p = T.to_double y
    | _ -> false
  in
  (* v0 is exact, so it certainly rounds back to y in every mode. *)
  assert (same (T.of_double ~mode v0));
  let down k = same (T.of_double ~mode (Fp.Fp64.advance v0 (-k))) in
  let up k = same (T.of_double ~mode (Fp.Fp64.advance v0 k)) in
  let kd = search_max down max_reach in
  let ku = search_max up max_reach in
  let lo_d = Fp.Fp64.advance v0 (-kd) and hi_d = Fp.Fp64.advance v0 ku in
  if Fp.Rounding_mode.nearest mode then closed lo_d hi_d
  else begin
    (* Non-nearest modes: decide whether the real region continues past
       the outermost double.  All region boundaries are exactly
       representable doubles (target values), so the region either stops
       at the probed double (closed) or extends to the next double
       exclusive (open).  The reals strictly between the two doubles
       tell them apart; test one — their exact midpoint. *)
    let extends a b =
      Float.is_finite a && Float.is_finite b && a <> b
      &&
      let midq = Rational.mul_pow2 (Rational.add (Rational.of_float a) (Rational.of_float b)) (-1) in
      same (T.round_rational ~mode midq)
    in
    let lo, lo_open =
      let b = Fp.Fp64.next_down lo_d in
      if kd < max_reach && extends lo_d b then (b, true) else (lo_d, false)
    in
    let hi, hi_open =
      let b = Fp.Fp64.next_up hi_d in
      if ku < max_reach && extends hi_d b then (b, true) else (hi_d, false)
    in
    { lo; hi; lo_open; hi_open }
  end
