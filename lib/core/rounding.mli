(** Rounding intervals (Algorithm 1, lines 14–17), mode-polymorphic.

    The rounding interval of a target value [y] under a rounding mode is
    the set of reals that round to (a pattern with the value of) [y].
    Membership is up to the sign of zero: the +0 and -0 patterns denote
    one value.

    Under the nearest modes the interval is a closed box of doubles (the
    classic RLIBM formulation).  Under the directed modes and
    round-to-odd the region is half-open with its open boundary on a
    representable value; the openness flags record which sides are
    strict, and the LP layer assembles those sides as strict
    inequalities. *)

type t = { lo : float; hi : float; lo_open : bool; hi_open : bool }

(** A closed interval (both flags false). *)
val closed : float -> float -> t

(** [contains i v]: interval membership honoring the openness flags. *)
val contains : t -> float -> bool

(** Width counted in representable doubles between the stored
    endpoints. *)
val width_ulps : t -> int64

(** [search_max pred bound] is the largest [k <= bound] with [pred k],
    for a monotone predicate with [pred 0] (exponential bracket + binary
    search).  Safe for bounds up to [max_int]: the doubling is clamped,
    so it never overflows. *)
val search_max : (int -> bool) -> int -> int

(** Bound on the exponential bracket of {!interval}'s endpoint search,
    in double ulps.  The deepest real case is an IEEE infinity
    pattern's region, reaching from the overflow boundary to double
    infinity (~4.5e18 steps for float16), so the bound is [max_int]
    itself — safe because {!search_max} clamps its doubling. *)
val max_reach : int

(** [interval (module T) ?mode y] computes the rounding interval of the
    finite pattern [y] under [mode] (default RNE) by monotone search
    over the double line. *)
val interval : (module Fp.Representation.S) -> ?mode:Fp.Rounding_mode.t -> int -> t
