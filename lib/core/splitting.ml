(* Bit-pattern domain splitting (§3.3, Algorithm 3's SplitDomain).

   All reduced inputs of one sign group share the leading bits of their
   double representation; the [nbits] bits that follow index the
   sub-domain.  At run time the index costs one shift and one mask —
   exactly the two bit operations the paper advertises. *)

type scheme = {
  nbits : int;  (* sub-domain index width; 2^nbits tables *)
  shift : int;  (* right-shift applied to the raw double bits *)
  lo_bits : int64;  (* raw bits of the hull's low end, for clamping *)
  hi_bits : int64;
}

let n_subdomains s = 1 lsl s.nbits

(* Number of identical leading bits of two 64-bit patterns (i.e. the
   count of leading zeros of their xor). *)
let common_prefix a b =
  let x = Int64.logxor a b in
  let rec clz i =
    if i = 64 then 64
    else if Int64.equal (Int64.logand (Int64.shift_right_logical x (63 - i)) 1L) 1L then i
    else clz (i + 1)
  in
  clz 0

(* Unsigned 64-bit comparison. *)
let ucmp a b = Int64.unsigned_compare a b

(** [make ~hull ~nbits] builds the indexing scheme for one sign group.
    Both hull endpoints must be nonzero and of the same sign. *)
let make ~hull:(lo, hi) ~nbits =
  let a = Fp.Fp64.bits lo and b = Fp.Fp64.bits hi in
  (* For a negative hull the raw bits order reverses (sign-magnitude);
     keep [lo_bits] the unsigned-smaller pattern. *)
  let a, b = if ucmp a b <= 0 then (a, b) else (b, a) in
  let p = common_prefix a b in
  (* Cannot index below the last bit of the word. *)
  let nbits = Stdlib.min nbits (64 - p) in
  { nbits; shift = 64 - p - nbits; lo_bits = a; hi_bits = b }

(** [index s r] is the sub-domain of [r]; values outside the hull clamp
    to the nearest end (reduced inputs equal to zero land with the
    smallest magnitudes). *)
let index s r =
  let bits = Fp.Fp64.bits r in
  let bits = if ucmp bits s.lo_bits < 0 then s.lo_bits else bits in
  let bits = if ucmp bits s.hi_bits > 0 then s.hi_bits else bits in
  Int64.to_int (Int64.shift_right_logical bits s.shift) land ((1 lsl s.nbits) - 1)

(** [index_ext s ~ext r] refines {!index} with [ext] further bits of the
    pattern: the certificate-bucket index of the progressive-polynomial
    tier.  [ext] must not exceed [s.shift] (clamp with {!max_ext}); the
    sub-domain index is [index_ext s ~ext r lsr ext]. *)
let max_ext s ext = Stdlib.min ext s.shift

let index_ext s ~ext r =
  let bits = Fp.Fp64.bits r in
  let bits = if ucmp bits s.lo_bits < 0 then s.lo_bits else bits in
  let bits = if ucmp bits s.hi_bits > 0 then s.hi_bits else bits in
  Int64.to_int (Int64.shift_right_logical bits (s.shift - ext))
  land ((1 lsl (s.nbits + ext)) - 1)
