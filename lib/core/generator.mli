(** The RLIBM-32 generator driver (Algorithm 1, CorrectPolys).

    [generate] runs the full pipeline for one function spec over an
    input enumeration: oracle results, rounding intervals (Algorithm 1),
    reduced intervals (Algorithm 2), sign-group and bit-pattern domain
    splitting (Algorithm 3), counterexample-guided polynomial generation
    (Algorithm 4), and a final validation pass that replays the actual
    run-time path over every enumerated input. *)

type generated = {
  spec : Spec.t;
  pieces : Piecewise.t array;  (** one piecewise polynomial per component *)
  intervals : (int64, Reduced.constr) Hashtbl.t array;
      (** per component: [Fp.Fp64.bits] of the reduced input -> the
          reduced rounding interval intersected over every enumerated
          pattern sharing that reduced input.  This is the certificate
          the oracle-free verifier ({!Verifier}) replays at sweep time;
          treat it as read-only. *)
  prog : Prog.t option;
      (** Progressive-polynomial certificates and tier selection
          ([Config.progressive]): per piece, which certificate buckets
          each degree-k coefficient prefix provably serves, plus the
          chosen serving prefix.  [None] on the classic path — the rest
          of the artifact is then bit-identical to a non-progressive
          generation, including {!tables_fingerprint}. *)
  stats : Stats.t;
}

(** [patterns_value_equal (module T) a b]: bit-identical, or the same
    real value (distinguishing only the sign of zero), or both NaN. *)
val patterns_value_equal : (module Fp.Representation.S) -> int -> int -> bool

(** Run-time path: pattern in, pattern out (special cases, range
    reduction, table-indexed Horner, output compensation, one rounding). *)
val eval_pattern : generated -> int -> int

(** Run-time path lifted to doubles holding exact T values. *)
val eval_double : generated -> float -> float

(** Compile the run-time path into one specialized closure (hoisted
    lookups, monomorphized Horner).  The scratch buffer is domain-local,
    so the closure is reentrant: one compiled closure may be shared by
    every worker domain. *)
val compile : generated -> int -> int

(** Stable fingerprint of the generated tables — the polynomial terms,
    splitting schemes and coefficient bit patterns of every piece, FNV-1a
    hashed in a fixed traversal order and rendered as ["fnv1a:<hex>"].
    Two generations agree here exactly when they produced bit-identical
    run-time tables, so run artifacts (datafiles) can carry it to prove
    which tables a sweep/campaign/serve result certifies. *)
val tables_fingerprint : generated -> string

(** [generate ?cfg spec ~patterns] builds the function or explains why
    it cannot (empty common interval, inadequate range reduction, no
    polynomial within the split budget, or validation failure). *)
val generate : ?cfg:Config.t -> Spec.t -> patterns:int array -> (generated, string) result
