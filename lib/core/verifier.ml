(* The RLIBM side of the oracle-free fast verifier (Sweep.Verify).

   Soundness of the certificate.  For every enumerated non-special
   pattern the generator derived a reduced rounding interval per
   component (Algorithm 2) and [Generator.generate] retained their
   per-reduced-input intersections in [g.intervals].  By construction,
   if each component value v_i lies in the intersected interval for the
   pattern's reduced input, then for *every enumerated pattern sharing
   that reduced input* the output compensation of (v_0..v_{k-1}) lands
   inside that pattern's own rounding interval — i.e. rounds correctly.
   So re-evaluating the compiled polynomial at sweep time and checking
   interval membership certifies the result with a few float compares,
   no Ziv loop.

   The certificate says nothing about patterns that were NOT enumerated:
   a sampled generation's intervals were never intersected against the
   skipped patterns' constraints.  Hence {!certifiable} demands an
   exhaustive enumeration (every pattern of the representation), and
   the [`Auto] policy silently degrades to oracle-only otherwise.
   A certificate miss (reduced input absent from the table, or a value
   on/outside a boundary whose openness the intersection tightened) is
   *not* a verdict — it escalates to the oracle per Sweep.Verify's
   contract. *)

module G = Generator

let in_constr (c : Reduced.constr) v =
  (if c.lo_open then c.lo < v else c.lo <= v)
  && if c.hi_open then v < c.hi else v <= c.hi

(* The certificate covers exactly the enumerated patterns, so it proves
   all inputs only if all inputs were enumerated. *)
let certifiable (g : G.generated) =
  let module T = (val g.spec.repr : Fp.Representation.S) in
  g.stats.n_inputs = 1 lsl T.bits

(** [classify g] is the run-time path plus the certificate: pattern ->
    (library result, certified).  Mirrors [Generator.compile]'s
    operation order exactly, so the returned result is bit-identical to
    the library's.

    With an active progressive tier ([g.prog] exhaustive and some
    component serving a prefix) it mirrors the *tiered* runtime instead:
    when every tiered component's certificate bucket hits, the prefix
    values are evaluated and membership-checked — verifying the tier the
    serving kernel actually selects.  A set certificate bit means every
    enumerated input of the bucket keeps its prefix value inside the
    merged interval, and in-interval component values compensate to the
    same rounded output in every sharing pattern, so tiered and full
    classification return identical results and verdicts — a certificate
    miss simply falls through to the full polynomial. *)
let classify (g : G.generated) =
  let module T = (val g.spec.repr : Fp.Representation.S) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let mode = g.spec.mode in
  let evals = Array.map Piecewise.compile g.pieces in
  let tables = g.intervals in
  let n = Array.length evals in
  let scratch = Domain.DLS.new_key (fun () -> Array.make (Stdlib.max n 1) 0.0) in
  (* All-or-nothing across pieces, same rule as Funcs.Kernels.tier_of:
     the tier activates only when every piece serves a strict prefix. *)
  let tier =
    match g.prog with
    | Some p
      when p.exhaustive && n > 0
           && Array.for_all
                (fun i -> p.serve_k.(i) < p.pieces.(i).Prog.nt)
                (Array.init n Fun.id) ->
        Some p
    | _ -> None
  in
  let prefix_evals =
    match tier with
    | None -> [||]
    | Some p ->
        Array.mapi
          (fun i pw ->
            if p.serve_k.(i) < p.pieces.(i).Prog.nt then
              Some (Piecewise.compile_prefix ~k:p.serve_k.(i) pw)
            else None)
          g.pieces
  in
  let cert_hit p i r =
    let pc = p.Prog.pieces.(i) in
    let k = p.Prog.serve_k.(i) in
    let certs, grp =
      if r < 0.0 then (pc.Prog.neg, g.pieces.(i).Piecewise.neg)
      else (pc.Prog.pos, g.pieces.(i).Piecewise.pos)
    in
    match grp with
    (* Absent sign group: both full and prefix evaluation yield 0.0, so
       the bucket test is vacuously a hit (matching the kernel). *)
    | None -> true
    | Some grp -> k - 1 < Array.length certs && Prog.hit certs.(k - 1) grp.scheme r
  in
  fun pat ->
    match special pat with
    | Some out -> (out, true)  (* special-case analysis is the ground truth *)
    | None ->
        let v = Domain.DLS.get scratch in
        let rr = reduce (T.to_double pat) in
        let key = Fp.Fp64.bits rr.r in
        let fast =
          match tier with
          | None -> false
          | Some p ->
              let ok = ref true in
              for i = 0 to n - 1 do
                if Option.is_some prefix_evals.(i) && not (cert_hit p i rr.r) then ok := false
              done;
              !ok
        in
        let certified = ref true in
        for i = 0 to n - 1 do
          let vi =
            if fast then
              match prefix_evals.(i) with Some e -> e rr.r | None -> evals.(i) rr.r
            else evals.(i) rr.r
          in
          v.(i) <- vi;
          if !certified then
            match Hashtbl.find_opt tables.(i) key with
            | Some c when in_constr c vi -> ()
            | Some _ | None -> certified := false
        done;
        (T.of_double ~mode (compensate rr v), !certified)

(** Ground truth for one pattern: special-case analysis, else Ziv's
    arbitrary-precision oracle (memoized through [cache] if given). *)
let truth ?cache (g : G.generated) =
  let module T = (val g.spec.repr : Fp.Representation.S) in
  let spec = g.spec in
  fun pat ->
    match spec.special pat with
    | Some y -> y
    | None ->
        Sweep.Oracle_cache.memo cache pat (fun pat ->
            Oracle.Elementary.correctly_rounded
              ~round:(T.round_rational ~mode:spec.mode)
              spec.oracle (T.to_rational pat))

type policy = [ `Auto | `Fast | `Oracle ]

let policy_of_string = function
  | "auto" -> Ok `Auto
  | "fast" -> Ok `Fast
  | "oracle" -> Ok `Oracle
  | s -> Error (Printf.sprintf "unknown verifier %S (want auto/fast/oracle)" s)

(** Build the sweep verifier for a generated function under [policy]:
    [`Fast] uses the certificate (escalating per [on_escalate]),
    [`Oracle] never certifies (every pattern goes to the oracle — the
    classic sweep, restated), and [`Auto] picks fast exactly when the
    generation is exhaustive, the only case the certificate is sound.
    @raise Invalid_argument on [`Fast] over a non-exhaustive generation. *)
let make ?counters ?on_escalate ?cache ~(policy : policy) (g : G.generated) =
  let fast =
    match policy with
    | `Fast ->
        if not (certifiable g) then
          invalid_arg
            (Printf.sprintf
               "Verifier.make: %s/%s was generated from %d of %d patterns; the fast certificate \
                is only sound over an exhaustive enumeration"
               g.stats.repr_name g.spec.name g.stats.n_inputs
               (let module T = (val g.spec.repr : Fp.Representation.S) in
                1 lsl T.bits));
        true
    | `Oracle -> false
    | `Auto -> certifiable g
  in
  let classify =
    if fast then classify g
    else begin
      let compiled = G.compile g in
      fun pat -> (compiled pat, false)
    end
  in
  Sweep.Verify.make ?counters ?on_escalate ~classify ~oracle:(truth ?cache g)
    ~equal:(G.patterns_value_equal g.spec.repr) ()
