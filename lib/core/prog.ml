(* Progressive-polynomial certificates (RLIBM-PROG lineage).

   A generated piece normally serves its full coefficient vector.  The
   rounding intervals are mostly far wider than the full polynomial
   needs, so a degree-k *prefix* of the vector — the same leading
   coefficients, bit-identical, evaluated in the same Horner order —
   already lands inside the interval of almost every reduced input.  A
   certificate records exactly which inputs that is true for, as a
   bitset over certificate buckets: the sub-domain index refined by
   [ext] further pattern bits (Splitting.index_ext), so the few hard
   inputs of a sub-domain only poison their own small bucket.

   Soundness contract: a bucket bit is set only when *every* enumerated
   reduced input landing in that bucket has its prefix value inside its
   merged rounding interval, and unseen buckets stay 0.  Certificates
   are therefore only servable when the generation enumerated every
   input pattern of the representation ([exhaustive]); a certificate
   miss at run time escalates to the full polynomial — it never rounds,
   never guesses. *)

type cert = {
  k : int;  (* prefix length: the first k entries of terms/coeffs *)
  ext : int;  (* effective extra bucket bits (already clamped to shift) *)
  bits : Bytes.t;  (* bitset over 2^(scheme.nbits + ext) buckets *)
  coverage : float;  (* constraint-weighted fraction the prefix satisfies *)
}

(* Certs for one piece, k ascending from 1 to nt-1; a sign group with no
   polynomial (or nothing certifiable) carries an empty array. *)
type piece = { nt : int; neg : cert array; pos : cert array }

type t = {
  pieces : piece array;
  exhaustive : bool;  (* certificates built over every input pattern *)
  serve_k : int array;
      (* Selected tier per piece: evaluate the first serve_k terms when
         the certificate hits; serve_k = nt means the tier is disabled
         and the piece always runs its full polynomial. *)
  input_coverage : float array;
      (* Input-weighted coverage at serve_k (fraction of the enumerated
         reduced workload the prefix tier settles), per piece. *)
}

(* ---- bitsets ---------------------------------------------------- *)

let n_buckets (s : Splitting.scheme) ~ext = 1 lsl (s.nbits + ext)
let bits_make n = Bytes.make ((n + 7) / 8) '\000'

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.unsafe_set b (i lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

(* a AND NOT b, fresh: the "seen and never violated" combine. *)
let bits_diff a b =
  let n = Bytes.length a in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get a i) land lnot (Char.code (Bytes.unsafe_get b i)) land 0xff))
  done;
  out

let popcount b =
  let n = ref 0 in
  Bytes.iter
    (fun ch ->
      let c = ref (Char.code ch) in
      while !c <> 0 do
        n := !n + (!c land 1);
        c := !c lsr 1
      done)
    b;
  !n

(* ---- queries ---------------------------------------------------- *)

(* Does [cert] certify reduced input [r] under [scheme]?  Same clamp +
   shift + mask as the serving kernel's integer path. *)
let hit cert (scheme : Splitting.scheme) r =
  bit_get cert.bits (Splitting.index_ext scheme ~ext:cert.ext r)

let cert_for piece ~neg ~k =
  let arr = if neg then piece.neg else piece.pos in
  Array.find_opt (fun c -> c.k = k) arr
