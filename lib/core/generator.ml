(* The generator driver: Algorithm 1 (CorrectPolys) with Algorithm 3's
   domain splitting and Algorithm 4's counterexample loop underneath.

   Soundness shape (why validated generation implies correct rounding):
   Algorithm 2 widens all component intervals jointly, so for a
   *monotone* output compensation the OC image of the per-component
   interval box lies inside the input's rounding interval; each
   generated polynomial is Check-ed (in double, with the run-time
   operation order) against every merged constraint; hence every
   enumerated non-special input rounds correctly.  The final validation
   pass re-runs the actual run-time path and asserts exactly that. *)

module T_intf = Fp.Representation

type generated = {
  spec : Spec.t;
  pieces : Piecewise.t array;  (* one per component *)
  intervals : (int64, Reduced.constr) Hashtbl.t array;
      (* per component: Fp64.bits of the reduced input -> the merged
         (intersected over every enumerated pattern sharing it) reduced
         rounding interval.  The oracle-free verifier's certificate. *)
  stats : Stats.t;
}

(* Value equality of two patterns: bit-identical, or the same real value
   (+0.0 and -0.0 are distinct patterns of the same zero — sinpi of an
   exact integer legitimately produces either). *)
let patterns_value_equal (module T : T_intf.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | T_intf.Finite, T_intf.Finite -> T.to_double a = T.to_double b
  | T_intf.Nan, T_intf.Nan -> true
  | _ -> false

(* Run-time path: pattern in, pattern out.  The final double -> pattern
   step rounds under the spec's target mode. *)
let eval_pattern (g : generated) pat =
  let module T = (val g.spec.repr : T_intf.S) in
  match g.spec.special pat with
  | Some out -> out
  | None ->
      let x = T.to_double pat in
      let rr = g.spec.reduce x in
      let v = Array.map (fun pw -> Piecewise.eval pw rr.r) g.pieces in
      T.of_double ~mode:g.spec.mode (g.spec.compensate rr v)

(* Run-time path on doubles (for T = float32 this is the library entry
   point the benchmarks measure). *)
let eval_double (g : generated) x =
  let module T = (val g.spec.repr : T_intf.S) in
  T.to_double (eval_pattern g (T.of_double x))

(* Compile the run-time path into a single closure: table/spec lookups
   hoisted, per-component piecewise evaluators specialized (the paper
   benchmarks generated C, where the compiler performs the same
   specialization).  The component scratch buffer is domain-local, so
   the closure is reentrant across domains — Funcs.Batch and the
   parallel validation harness call one compiled closure from every
   worker. *)
let compile (g : generated) =
  let module T = (val g.spec.repr : T_intf.S) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let mode = g.spec.mode in
  let evals = Array.map Piecewise.compile g.pieces in
  let n = Array.length evals in
  let scratch = Domain.DLS.new_key (fun () -> Array.make (Stdlib.max n 1) 0.0) in
  if n = 1 then begin
    let e0 = evals.(0) in
    fun pat ->
      match special pat with
      | Some out -> out
      | None ->
          let v = Domain.DLS.get scratch in
          let rr = reduce (T.to_double pat) in
          v.(0) <- e0 rr.r;
          T.of_double ~mode (compensate rr v)
  end
  else begin
    fun pat ->
      match special pat with
      | Some out -> out
      | None ->
          let v = Domain.DLS.get scratch in
          let rr = reduce (T.to_double pat) in
          for i = 0 to n - 1 do
            v.(i) <- evals.(i) rr.r
          done;
          T.of_double ~mode (compensate rr v)
  end

(* ------------------------------------------------------------------ *)

type group_cons = { hull : float * float; cons : Reduced.constr array }

(* Generate piecewise polynomials for one sign group of one component:
   GenApproxHelper's loop — try 2^n sub-domains for growing n. *)
let gen_group ~(cfg : Config.t) ~start ~terms (gc : group_cons) =
  let nt = Array.length terms in
  (* Warm mode: one Polyfit session per sub-domain, kept across the
     split ladder.  When level n fails and the group re-splits at n+1,
     each child bucket seeds its session from a clone of its parent
     bucket's — the child's constraint set is a subset of the parent's,
     so the parent's final basis is a few dual pivots from the child's
     optimum (the Algorithm-3 sibling-reuse of the revised simplex). *)
  let prev_level : (Splitting.scheme * Lp.Polyfit.session option array) option ref = ref None in
  let rec attempt n =
    if n > cfg.max_split_bits then None
    else begin
      let scheme = Splitting.make ~hull:gc.hull ~nbits:n in
      let nsub = Splitting.n_subdomains scheme in
      let buckets = Array.make nsub [] in
      Array.iter
        (fun (c : Reduced.constr) ->
          let i = Splitting.index scheme c.r in
          buckets.(i) <- c :: buckets.(i))
        gc.cons;
      let sessions = Array.make nsub None in
      if cfg.lp_warm then
        Array.iteri
          (fun i cs ->
            match cs with
            | [] -> ()
            | (c : Reduced.constr) :: _ ->
                let parent =
                  match !prev_level with
                  | None -> None
                  | Some (pscheme, psess) -> psess.(Splitting.index pscheme c.r)
                in
                sessions.(i) <-
                  Some
                    (match parent with
                    | Some s -> Lp.Polyfit.clone_session s
                    | None -> Lp.Polyfit.new_session ()))
          buckets;
      let coeffs = Array.make (nsub * nt) 0.0 in
      let filled = Array.make nsub false in
      let used_terms = ref 0 in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < nsub do
        (match buckets.(!i) with
        | [] -> ()
        | cs -> (
            let cs = Array.of_list cs in
            Array.sort (fun (a : Reduced.constr) b -> compare a.r b.r) cs;
            (* "GetCoeffsUsingLP generates a polynomial of a lower degree
               if it is possible": once the domains are small, a shorter
               term list usually suffices and is cheaper — try it first. *)
            let try_terms =
              if n >= 5 && nt > 2 then [ Array.sub terms 0 (nt - 1); terms ] else [ terms ]
            in
            let rec first = function
              | [] -> ok := false
              | ts :: rest -> (
                  match Polygen.gen ?session:sessions.(!i) ~cfg ~terms:ts cs with
                  | Polygen.Found c ->
                      Array.blit c 0 coeffs (!i * nt) (Array.length c);
                      used_terms := Stdlib.max !used_terms (Array.length ts);
                      filled.(!i) <- true
                  | Polygen.No_polynomial -> first rest)
            in
            first try_terms));
        incr i
      done;
      if not !ok then begin
        if cfg.lp_warm then prev_level := Some (scheme, sessions);
        attempt (n + 1)
      end
      else begin
        (* Fill sub-domains that received no constraints (possible under
           sampled enumeration) from the NEAREST populated sub-domain —
           nearest, not leftmost: a one-directional sweep can smear a
           degenerate low bucket (e.g. the one holding only the clamped
           r = 0 constraint) across the whole table. *)
        let populated = Array.to_list (Array.of_seq (Seq.filter (fun j -> filled.(j)) (Seq.init nsub Fun.id))) in
        (match populated with
        | [] -> ()
        | _ ->
            for j = 0 to nsub - 1 do
              if not filled.(j) then begin
                let best =
                  List.fold_left
                    (fun acc k ->
                      match acc with
                      | None -> Some k
                      | Some b -> if abs (k - j) < abs (b - j) then Some k else acc)
                    None populated
                in
                match best with
                | Some k -> Array.blit coeffs (k * nt) coeffs (j * nt) nt
                | None -> ()
              end
            done);
        if Polygen.debug then
          Printf.eprintf "[gen_group] n=%d nsub=%d filled=%s\n%!" n nsub
            (String.init nsub (fun j -> if filled.(j) then '1' else '0'));
        Some ({ Piecewise.scheme; coeffs }, n, !used_terms)
      end
    end
  in
  attempt start

(* ------------------------------------------------------------------ *)

(* Stable fingerprint of the run-time tables: terms, splitting schemes
   and coefficient bit images of every piece, FNV-1a hashed in a fixed
   traversal order (component, then neg/pos group).  Coefficients hash
   by their 64-bit float image so -0.0 vs 0.0 and NaN payloads count —
   "same fingerprint" must mean "bit-identical tables", because run
   datafiles carry this to tie a sweep/campaign/serve verdict to the
   exact tables it certifies. *)
let tables_fingerprint (g : generated) =
  let h = ref 0x0cbf29ce84222325 in
  let mix v = h := (!h lxor (v land 0xff)) * 0x100000001b3 in
  let add_int v =
    for i = 0 to 7 do
      mix (v asr (8 * i))
    done
  in
  let add_i64 v = add_int (Int64.to_int v) in
  Array.iter
    (fun (pw : Piecewise.t) ->
      add_int (Array.length pw.terms);
      Array.iter add_int pw.terms;
      List.iter
        (fun grp ->
          match grp with
          | None -> add_int (-1)
          | Some (grp : Piecewise.group) ->
              add_int grp.scheme.Splitting.nbits;
              add_int grp.scheme.Splitting.shift;
              add_i64 grp.scheme.Splitting.lo_bits;
              add_i64 grp.scheme.Splitting.hi_bits;
              add_int (Array.length grp.coeffs);
              Array.iter (fun c -> add_i64 (Int64.bits_of_float c)) grp.coeffs)
        [ pw.neg; pw.pos ])
    g.pieces;
  Printf.sprintf "fnv1a:%016x" (!h land max_int)

(* Per-pattern result of the enumeration pass: pure in the pattern, so
   the pass fans out over domains; everything order-sensitive (interval
   intersection failures, the recorded input list) happens in the
   sequential merge below, in pattern order, identically at every job
   count. *)
type deduced =
  | D_special
  | D_ok of int * int * Reduced.constr array  (* pattern, oracle output, per-component *)
  | D_escape of int  (* OC misses the rounding interval at this pattern *)

let generate ?(cfg = Config.default) (spec : Spec.t) ~patterns =
  let module T = (val spec.repr : T_intf.S) in
  let t0 = Sys.time () in
  let lp0 = Lp.Simplex.snapshot () in
  let n_components = Array.length spec.components in
  (* Persistent oracle cache (opt-in via cfg/RLIBM_ORACLE_CACHE): the
     enumeration pass is a pure (pattern -> correctly-rounded pattern)
     map per (function, repr, mode), so settled answers from previous
     runs — generations, sweeps, hard-case hunts — are reused verbatim. *)
  let ocache =
    match cfg.oracle_cache_dir with
    | None -> None
    | Some dir ->
        Some
          (Sweep.Oracle_cache.open_ ~dir ~repr:T.name ~func:spec.name
             ~mode:(Fp.Rounding_mode.to_string spec.mode))
  in
  (* Enumeration pass (Algorithm 1's oracle sweep), domain-parallel. *)
  let deduce_one pat =
    match spec.special pat with
    | Some _ -> D_special
    | None -> (
        let y =
          Sweep.Oracle_cache.memo ocache pat (fun pat ->
              Oracle.Elementary.correctly_rounded
                ~round:(T.round_rational ~mode:spec.mode)
                spec.oracle (T.to_rational pat))
        in
        let interval = Rounding.interval spec.repr ~mode:spec.mode y in
        match Reduced.deduce spec ~pattern:pat ~interval with
        | Error (Reduced.Oracle_escapes p) -> D_escape p
        | Ok (_rr, cons) -> D_ok (pat, y, cons))
  in
  let chunks =
    Parallel.map_chunks ~n:(Array.length patterns) (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k -> deduce_one patterns.(lo + k)))
  in
  let oracle_pass =
    Option.map (Stats.pass_of_run ~name:"oracle") (Parallel.last_stats ())
  in
  (* The oracle is not consulted again after this pass: persist what it
     settled and capture the traffic counters for Stats. *)
  let cache_stats =
    Option.map
      (fun c ->
        Sweep.Oracle_cache.close c;
        {
          Stats.cache_hits = Sweep.Oracle_cache.hits c;
          cache_misses = Sweep.Oracle_cache.misses c;
        })
      ocache
  in
  (* Sequential merge, by reduced input, in pattern order. *)
  let merged = Array.init n_components (fun _ -> Hashtbl.create 4096) in
  let recorded = ref [] in
  let n_special = ref 0 in
  let failure = ref None in
  let merge = function
    | D_special -> incr n_special
    | D_escape p ->
        failure :=
          Some
            (Printf.sprintf
               "%s: output compensation misses the rounding interval at pattern %#x \
                (range reduction or H precision inadequate)"
               spec.name p)
    | D_ok (pat, y, cons) ->
        recorded := (pat, y) :: !recorded;
        Array.iteri
          (fun i (c : Reduced.constr) ->
            let key = Fp.Fp64.bits c.r in
            match Hashtbl.find_opt merged.(i) key with
            | None -> Hashtbl.replace merged.(i) key c
            | Some prev ->
                (* Intersect, tracking strict sides: the larger lo (or
                   smaller hi) wins together with its flag; on a tie an
                   open side wins. *)
                let lo, lo_open =
                  if c.lo > prev.lo then (c.lo, c.lo_open)
                  else if c.lo < prev.lo then (prev.lo, prev.lo_open)
                  else (prev.lo, prev.lo_open || c.lo_open)
                in
                let hi, hi_open =
                  if c.hi < prev.hi then (c.hi, c.hi_open)
                  else if c.hi > prev.hi then (prev.hi, prev.hi_open)
                  else (prev.hi, prev.hi_open || c.hi_open)
                in
                if lo > hi || (lo = hi && (lo_open || hi_open)) then
                  failure :=
                    Some
                      (Printf.sprintf
                         "%s: no common reduced interval at r=%h (redesign range reduction)"
                         spec.name c.r)
                else Hashtbl.replace merged.(i) key { c with lo; hi; lo_open; hi_open })
          cons
  in
  Array.iter (fun chunk -> Array.iter (fun d -> if !failure = None then merge d) chunk) chunks;
  match !failure with
  | Some msg -> Error msg
  | None -> (
      (* Build each component's piecewise polynomials. *)
      let pieces = Array.make n_components { Piecewise.terms = [||]; neg = None; pos = None } in
      let comp_stats = Array.make n_components None in
      let comp_fail = ref None in
      Array.iteri
        (fun i (comp : Spec.component) ->
          if !comp_fail = None then begin
            let all = Hashtbl.fold (fun _ c acc -> c :: acc) merged.(i) [] in
            let neg = List.filter (fun (c : Reduced.constr) -> c.r < 0.0) all in
            let pos = List.filter (fun (c : Reduced.constr) -> c.r >= 0.0) all in
            let build dom cs =
              match (dom, cs) with
              | _, [] -> Ok None
              | None, _ :: _ ->
                  Error (Printf.sprintf "%s/%s: constraints outside declared domain" spec.name comp.cname)
              | Some hull, _ :: _ -> (
                  let arr = Array.of_list cs in
                  Array.sort (fun (a : Reduced.constr) b -> compare a.r b.r) arr;
                  let start = Stdlib.max cfg.start_split_bits spec.split_hint in
                  match gen_group ~cfg ~start ~terms:comp.terms { hull; cons = arr } with
                  | Some g -> Ok (Some g)
                  | None ->
                      Error
                        (Printf.sprintf "%s/%s: no piecewise polynomial up to 2^%d sub-domains"
                           spec.name comp.cname cfg.max_split_bits))
            in
            match (build comp.dom_neg neg, build comp.dom_pos pos) with
            | Error e, _ | _, Error e -> comp_fail := Some e
            | Ok gneg, Ok gpos ->
                let piece =
                  {
                    Piecewise.terms = comp.terms;
                    neg = Option.map (fun (g, _, _) -> g) gneg;
                    pos = Option.map (fun (g, _, _) -> g) gpos;
                  }
                in
                pieces.(i) <- piece;
                let bits_of = function None -> 0 | Some (_, n, _) -> n in
                let terms_of = function None -> 0 | Some (_, _, u) -> u in
                let used = Stdlib.max (terms_of gneg) (terms_of gpos) in
                let used = if used = 0 then Array.length comp.terms else used in
                comp_stats.(i) <-
                  Some
                    {
                      Stats.cname = comp.cname;
                      n_constraints = Hashtbl.length merged.(i);
                      n_polynomials = Piecewise.n_polynomials piece;
                      split_bits = Stdlib.max (bits_of gneg) (bits_of gpos);
                      degree = comp.terms.(used - 1);
                      n_terms = used;
                    }
          end)
        spec.components;
      match !comp_fail with
      | Some e -> Error e
      | None ->
          let g =
            {
              spec;
              pieces;
              intervals = merged;
              stats =
                {
                  Stats.name = spec.name;
                  repr_name = T.name;
                  gen_seconds = Sys.time () -. t0;
                  n_inputs = Array.length patterns;
                  n_special = !n_special;
                  n_reduced =
                    Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 merged;
                  per_component =
                    Array.map
                      (function Some s -> s | None -> assert false)
                      comp_stats;
                  passes = [];
                  lp =
                    Some
                      (Stats.lp_of_counters ~warm_mode:cfg.lp_warm lp0 (Lp.Simplex.snapshot ()));
                  oracle_cache = cache_stats;
                };
            }
          in
          (* Final validation: the actual run-time path must reproduce
             the oracle pattern for every enumerated input.  Pure per
             input, so it shards too; int addition folded in shard order
             keeps the count identical at every job count. *)
          let rec_arr = Array.of_list (List.rev !recorded) in
          let bad =
            Parallel.fold_chunks ~n:(Array.length rec_arr) ~combine:( + ) ~init:0
              (fun ~lo ~hi ->
                let b = ref 0 in
                for k = lo to hi - 1 do
                  let pat, y = rec_arr.(k) in
                  if not (patterns_value_equal spec.repr (eval_pattern g pat) y) then incr b
                done;
                !b)
          in
          let check_pass =
            Option.map (Stats.pass_of_run ~name:"check") (Parallel.last_stats ())
          in
          let g =
            { g with stats = { g.stats with passes = List.filter_map Fun.id [ oracle_pass; check_pass ] } }
          in
          if bad > 0 then
            Error
              (Printf.sprintf "%s: %d enumerated inputs misround after generation" spec.name bad)
          else Ok g)
