(* The generator driver: Algorithm 1 (CorrectPolys) with Algorithm 3's
   domain splitting and Algorithm 4's counterexample loop underneath.

   Soundness shape (why validated generation implies correct rounding):
   Algorithm 2 widens all component intervals jointly, so for a
   *monotone* output compensation the OC image of the per-component
   interval box lies inside the input's rounding interval; each
   generated polynomial is Check-ed (in double, with the run-time
   operation order) against every merged constraint; hence every
   enumerated non-special input rounds correctly.  The final validation
   pass re-runs the actual run-time path and asserts exactly that. *)

module T_intf = Fp.Representation

type generated = {
  spec : Spec.t;
  pieces : Piecewise.t array;  (* one per component *)
  intervals : (int64, Reduced.constr) Hashtbl.t array;
      (* per component: Fp64.bits of the reduced input -> the merged
         (intersected over every enumerated pattern sharing it) reduced
         rounding interval.  The oracle-free verifier's certificate. *)
  prog : Prog.t option;
      (* Progressive-polynomial certificates (cfg.progressive): per
         piece, which certificate buckets each degree-k coefficient
         prefix already serves correctly, plus the selected serving
         tier.  [None] reproduces the classic artifact bit-for-bit. *)
  stats : Stats.t;
}

(* Value equality of two patterns: bit-identical, or the same real value
   (+0.0 and -0.0 are distinct patterns of the same zero — sinpi of an
   exact integer legitimately produces either). *)
let patterns_value_equal (module T : T_intf.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | T_intf.Finite, T_intf.Finite -> T.to_double a = T.to_double b
  | T_intf.Nan, T_intf.Nan -> true
  | _ -> false

(* Run-time path: pattern in, pattern out.  The final double -> pattern
   step rounds under the spec's target mode. *)
let eval_pattern (g : generated) pat =
  let module T = (val g.spec.repr : T_intf.S) in
  match g.spec.special pat with
  | Some out -> out
  | None ->
      let x = T.to_double pat in
      let rr = g.spec.reduce x in
      let v = Array.map (fun pw -> Piecewise.eval pw rr.r) g.pieces in
      T.of_double ~mode:g.spec.mode (g.spec.compensate rr v)

(* Run-time path on doubles (for T = float32 this is the library entry
   point the benchmarks measure). *)
let eval_double (g : generated) x =
  let module T = (val g.spec.repr : T_intf.S) in
  T.to_double (eval_pattern g (T.of_double x))

(* Compile the run-time path into a single closure: table/spec lookups
   hoisted, per-component piecewise evaluators specialized (the paper
   benchmarks generated C, where the compiler performs the same
   specialization).  The component scratch buffer is domain-local, so
   the closure is reentrant across domains — Funcs.Batch and the
   parallel validation harness call one compiled closure from every
   worker. *)
let compile (g : generated) =
  let module T = (val g.spec.repr : T_intf.S) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let mode = g.spec.mode in
  let evals = Array.map Piecewise.compile g.pieces in
  let n = Array.length evals in
  let scratch = Domain.DLS.new_key (fun () -> Array.make (Stdlib.max n 1) 0.0) in
  if n = 1 then begin
    let e0 = evals.(0) in
    fun pat ->
      match special pat with
      | Some out -> out
      | None ->
          let v = Domain.DLS.get scratch in
          let rr = reduce (T.to_double pat) in
          v.(0) <- e0 rr.r;
          T.of_double ~mode (compensate rr v)
  end
  else begin
    fun pat ->
      match special pat with
      | Some out -> out
      | None ->
          let v = Domain.DLS.get scratch in
          let rr = reduce (T.to_double pat) in
          for i = 0 to n - 1 do
            v.(i) <- evals.(i) rr.r
          done;
          T.of_double ~mode (compensate rr v)
  end

(* ------------------------------------------------------------------ *)

type group_cons = { hull : float * float; cons : Reduced.constr array }

(* Generate piecewise polynomials for one sign group of one component:
   GenApproxHelper's loop — try 2^n sub-domains for growing n. *)
let gen_group ~(cfg : Config.t) ~start ~terms (gc : group_cons) =
  let nt = Array.length terms in
  (* Warm mode: one Polyfit session per sub-domain, kept across the
     split ladder.  When level n fails and the group re-splits at n+1,
     each child bucket seeds its session from a clone of its parent
     bucket's — the child's constraint set is a subset of the parent's,
     so the parent's final basis is a few dual pivots from the child's
     optimum (the Algorithm-3 sibling-reuse of the revised simplex). *)
  let prev_level : (Splitting.scheme * Lp.Polyfit.session option array) option ref = ref None in
  let rec attempt n =
    if n > cfg.max_split_bits then None
    else begin
      let scheme = Splitting.make ~hull:gc.hull ~nbits:n in
      let nsub = Splitting.n_subdomains scheme in
      let buckets = Array.make nsub [] in
      Array.iter
        (fun (c : Reduced.constr) ->
          let i = Splitting.index scheme c.r in
          buckets.(i) <- c :: buckets.(i))
        gc.cons;
      let sessions = Array.make nsub None in
      if cfg.lp_warm then
        Array.iteri
          (fun i cs ->
            match cs with
            | [] -> ()
            | (c : Reduced.constr) :: _ ->
                let parent =
                  match !prev_level with
                  | None -> None
                  | Some (pscheme, psess) -> psess.(Splitting.index pscheme c.r)
                in
                sessions.(i) <-
                  Some
                    (match parent with
                    | Some s -> Lp.Polyfit.clone_session s
                    | None -> Lp.Polyfit.new_session ()))
          buckets;
      let coeffs = Array.make (nsub * nt) 0.0 in
      let filled = Array.make nsub false in
      let used_terms = ref 0 in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < nsub do
        (match buckets.(!i) with
        | [] -> ()
        | cs -> (
            let cs = Array.of_list cs in
            Array.sort (fun (a : Reduced.constr) b -> compare a.r b.r) cs;
            (* "GetCoeffsUsingLP generates a polynomial of a lower degree
               if it is possible": once the domains are small, a shorter
               term list usually suffices and is cheaper — try it first. *)
            let try_terms =
              if n >= 5 && nt > 2 then [ Array.sub terms 0 (nt - 1); terms ] else [ terms ]
            in
            let gen_one ts =
              (* Progressive mode swaps in the prefix-enriching entry
                 point; same correctness contract, biased coefficients. *)
              if cfg.progressive then Polygen.gen_prog ?session:sessions.(!i) ~cfg ~terms:ts cs
              else Polygen.gen ?session:sessions.(!i) ~cfg ~terms:ts cs
            in
            let rec first = function
              | [] -> ok := false
              | ts :: rest -> (
                  match gen_one ts with
                  | Polygen.Found c ->
                      Array.blit c 0 coeffs (!i * nt) (Array.length c);
                      used_terms := Stdlib.max !used_terms (Array.length ts);
                      filled.(!i) <- true
                  | Polygen.No_polynomial -> first rest)
            in
            first try_terms));
        incr i
      done;
      if not !ok then begin
        if cfg.lp_warm then prev_level := Some (scheme, sessions);
        attempt (n + 1)
      end
      else begin
        (* Fill sub-domains that received no constraints (possible under
           sampled enumeration) from the NEAREST populated sub-domain —
           nearest, not leftmost: a one-directional sweep can smear a
           degenerate low bucket (e.g. the one holding only the clamped
           r = 0 constraint) across the whole table. *)
        let populated = Array.to_list (Array.of_seq (Seq.filter (fun j -> filled.(j)) (Seq.init nsub Fun.id))) in
        (match populated with
        | [] -> ()
        | _ ->
            for j = 0 to nsub - 1 do
              if not filled.(j) then begin
                let best =
                  List.fold_left
                    (fun acc k ->
                      match acc with
                      | None -> Some k
                      | Some b -> if abs (k - j) < abs (b - j) then Some k else acc)
                    None populated
                in
                match best with
                | Some k -> Array.blit coeffs (k * nt) coeffs (j * nt) nt
                | None -> ()
              end
            done);
        if Polygen.debug then
          Printf.eprintf "[gen_group] n=%d nsub=%d filled=%s\n%!" n nsub
            (String.init nsub (fun j -> if filled.(j) then '1' else '0'));
        (* Prefix certification: for each degree-k prefix, the exact set
           of certificate buckets (sub-domain index refined by
           cfg.prog_cert_bits extra pattern bits) whose every merged
           constraint the prefix already satisfies.  A bucket bit is set
           only when the bucket was seen and never violated; unseen
           buckets stay 0, so under exhaustive enumeration a set bit is
           a proof for every input mapping there. *)
        let certs =
          if not cfg.progressive || nt <= 1 then [||]
          else begin
            let ext = Splitting.max_ext scheme cfg.prog_cert_bits in
            let nb = Prog.n_buckets scheme ~ext in
            let ncons = Array.length gc.cons in
            Array.init (nt - 1) (fun ki ->
                let k = ki + 1 in
                let seen = Prog.bits_make nb and bad = Prog.bits_make nb in
                let nsat = ref 0 in
                Array.iter
                  (fun (c : Reduced.constr) ->
                    let bi = Splitting.index_ext scheme ~ext c.r in
                    Prog.bit_set seen bi;
                    let row = Array.sub coeffs (Splitting.index scheme c.r * nt) nt in
                    if Polygen.prefix_sat ~terms row ~k c then incr nsat
                    else Prog.bit_set bad bi)
                  gc.cons;
                {
                  Prog.k;
                  ext;
                  bits = Prog.bits_diff seen bad;
                  coverage = float_of_int !nsat /. float_of_int (Stdlib.max 1 ncons);
                })
          end
        in
        Some ({ Piecewise.scheme; coeffs }, n, !used_terms, certs)
      end
    end
  in
  attempt start

(* ------------------------------------------------------------------ *)

(* Stable fingerprint of the run-time tables: terms, splitting schemes
   and coefficient bit images of every piece, FNV-1a hashed in a fixed
   traversal order (component, then neg/pos group).  Coefficients hash
   by their 64-bit float image so -0.0 vs 0.0 and NaN payloads count —
   "same fingerprint" must mean "bit-identical tables", because run
   datafiles carry this to tie a sweep/campaign/serve verdict to the
   exact tables it certifies. *)
let tables_fingerprint (g : generated) =
  let h = ref 0x0cbf29ce84222325 in
  let mix v = h := (!h lxor (v land 0xff)) * 0x100000001b3 in
  let add_int v =
    for i = 0 to 7 do
      mix (v asr (8 * i))
    done
  in
  let add_i64 v = add_int (Int64.to_int v) in
  Array.iter
    (fun (pw : Piecewise.t) ->
      add_int (Array.length pw.terms);
      Array.iter add_int pw.terms;
      List.iter
        (fun grp ->
          match grp with
          | None -> add_int (-1)
          | Some (grp : Piecewise.group) ->
              add_int grp.scheme.Splitting.nbits;
              add_int grp.scheme.Splitting.shift;
              add_i64 grp.scheme.Splitting.lo_bits;
              add_i64 grp.scheme.Splitting.hi_bits;
              add_int (Array.length grp.coeffs);
              Array.iter (fun c -> add_i64 (Int64.bits_of_float c)) grp.coeffs)
        [ pw.neg; pw.pos ])
    g.pieces;
  (* The progressive artifact is part of the fingerprint: a datafile row
     must name the certificates and the selected tier, not just the
     coefficient tables they qualify.  Absent (the classic path) hashes
     nothing, so non-progressive fingerprints are unchanged. *)
  (match g.prog with
  | None -> ()
  | Some p ->
      add_int 0x70726f67 (* "prog" *);
      add_int (if p.exhaustive then 1 else 0);
      Array.iter add_int p.serve_k;
      Array.iter
        (fun (pc : Prog.piece) ->
          add_int pc.nt;
          List.iter
            (fun certs ->
              add_int (Array.length certs);
              Array.iter
                (fun (c : Prog.cert) ->
                  add_int c.k;
                  add_int c.ext;
                  add_int (Bytes.length c.bits);
                  Bytes.iter (fun ch -> mix (Char.code ch)) c.bits)
                certs)
            [ pc.neg; pc.pos ])
        p.pieces);
  Printf.sprintf "fnv1a:%016x" (!h land max_int)

(* Per-pattern result of the enumeration pass: pure in the pattern, so
   the pass fans out over domains; everything order-sensitive (interval
   intersection failures, the recorded input list) happens in the
   sequential merge below, in pattern order, identically at every job
   count. *)
type deduced =
  | D_special
  | D_ok of int * int * Reduced.constr array  (* pattern, oracle output, per-component *)
  | D_escape of int  (* OC misses the rounding interval at this pattern *)

let generate ?(cfg = Config.default) (spec : Spec.t) ~patterns =
  let module T = (val spec.repr : T_intf.S) in
  let t0 = Sys.time () in
  let lp0 = Lp.Simplex.snapshot () in
  let n_components = Array.length spec.components in
  (* Persistent oracle cache (opt-in via cfg/RLIBM_ORACLE_CACHE): the
     enumeration pass is a pure (pattern -> correctly-rounded pattern)
     map per (function, repr, mode), so settled answers from previous
     runs — generations, sweeps, hard-case hunts — are reused verbatim. *)
  let ocache =
    match cfg.oracle_cache_dir with
    | None -> None
    | Some dir ->
        Some
          (Sweep.Oracle_cache.open_ ~dir ~repr:T.name ~func:spec.name
             ~mode:(Fp.Rounding_mode.to_string spec.mode))
  in
  (* Enumeration pass (Algorithm 1's oracle sweep), domain-parallel. *)
  let deduce_one pat =
    match spec.special pat with
    | Some _ -> D_special
    | None -> (
        let y =
          Sweep.Oracle_cache.memo ocache pat (fun pat ->
              Oracle.Elementary.correctly_rounded
                ~round:(T.round_rational ~mode:spec.mode)
                spec.oracle (T.to_rational pat))
        in
        let interval = Rounding.interval spec.repr ~mode:spec.mode y in
        match Reduced.deduce spec ~pattern:pat ~interval with
        | Error (Reduced.Oracle_escapes p) -> D_escape p
        | Ok (_rr, cons) -> D_ok (pat, y, cons))
  in
  let chunks =
    Parallel.map_chunks ~n:(Array.length patterns) (fun ~lo ~hi ->
        Array.init (hi - lo) (fun k -> deduce_one patterns.(lo + k)))
  in
  let oracle_pass =
    Option.map (Stats.pass_of_run ~name:"oracle") (Parallel.last_stats ())
  in
  (* The oracle is not consulted again after this pass: persist what it
     settled and capture the traffic counters for Stats. *)
  let cache_stats =
    Option.map
      (fun c ->
        Sweep.Oracle_cache.close c;
        {
          Stats.cache_hits = Sweep.Oracle_cache.hits c;
          cache_misses = Sweep.Oracle_cache.misses c;
        })
      ocache
  in
  (* Sequential merge, by reduced input, in pattern order. *)
  let merged = Array.init n_components (fun _ -> Hashtbl.create 4096) in
  let recorded = ref [] in
  let n_special = ref 0 in
  let failure = ref None in
  let merge = function
    | D_special -> incr n_special
    | D_escape p ->
        failure :=
          Some
            (Printf.sprintf
               "%s: output compensation misses the rounding interval at pattern %#x \
                (range reduction or H precision inadequate)"
               spec.name p)
    | D_ok (pat, y, cons) ->
        recorded := (pat, y) :: !recorded;
        Array.iteri
          (fun i (c : Reduced.constr) ->
            let key = Fp.Fp64.bits c.r in
            match Hashtbl.find_opt merged.(i) key with
            | None -> Hashtbl.replace merged.(i) key c
            | Some prev ->
                (* Intersect, tracking strict sides: the larger lo (or
                   smaller hi) wins together with its flag; on a tie an
                   open side wins. *)
                let lo, lo_open =
                  if c.lo > prev.lo then (c.lo, c.lo_open)
                  else if c.lo < prev.lo then (prev.lo, prev.lo_open)
                  else (prev.lo, prev.lo_open || c.lo_open)
                in
                let hi, hi_open =
                  if c.hi < prev.hi then (c.hi, c.hi_open)
                  else if c.hi > prev.hi then (prev.hi, prev.hi_open)
                  else (prev.hi, prev.hi_open || c.hi_open)
                in
                if lo > hi || (lo = hi && (lo_open || hi_open)) then
                  failure :=
                    Some
                      (Printf.sprintf
                         "%s: no common reduced interval at r=%h (redesign range reduction)"
                         spec.name c.r)
                else Hashtbl.replace merged.(i) key { c with lo; hi; lo_open; hi_open })
          cons
  in
  Array.iter (fun chunk -> Array.iter (fun d -> if !failure = None then merge d) chunk) chunks;
  match !failure with
  | Some msg -> Error msg
  | None -> (
      (* Build each component's piecewise polynomials. *)
      let pieces = Array.make n_components { Piecewise.terms = [||]; neg = None; pos = None } in
      let comp_stats = Array.make n_components None in
      let certs_neg = Array.make n_components ([||] : Prog.cert array) in
      let certs_pos = Array.make n_components ([||] : Prog.cert array) in
      let comp_fail = ref None in
      Array.iteri
        (fun i (comp : Spec.component) ->
          if !comp_fail = None then begin
            let all = Hashtbl.fold (fun _ c acc -> c :: acc) merged.(i) [] in
            let neg = List.filter (fun (c : Reduced.constr) -> c.r < 0.0) all in
            let pos = List.filter (fun (c : Reduced.constr) -> c.r >= 0.0) all in
            let build dom cs =
              match (dom, cs) with
              | _, [] -> Ok None
              | None, _ :: _ ->
                  Error (Printf.sprintf "%s/%s: constraints outside declared domain" spec.name comp.cname)
              | Some hull, _ :: _ -> (
                  let arr = Array.of_list cs in
                  Array.sort (fun (a : Reduced.constr) b -> compare a.r b.r) arr;
                  let start = Stdlib.max cfg.start_split_bits spec.split_hint in
                  match gen_group ~cfg ~start ~terms:comp.terms { hull; cons = arr } with
                  | Some g -> Ok (Some g)
                  | None ->
                      Error
                        (Printf.sprintf "%s/%s: no piecewise polynomial up to 2^%d sub-domains"
                           spec.name comp.cname cfg.max_split_bits))
            in
            match (build comp.dom_neg neg, build comp.dom_pos pos) with
            | Error e, _ | _, Error e -> comp_fail := Some e
            | Ok gneg, Ok gpos ->
                let piece =
                  {
                    Piecewise.terms = comp.terms;
                    neg = Option.map (fun (g, _, _, _) -> g) gneg;
                    pos = Option.map (fun (g, _, _, _) -> g) gpos;
                  }
                in
                pieces.(i) <- piece;
                certs_neg.(i) <- (match gneg with Some (_, _, _, c) -> c | None -> [||]);
                certs_pos.(i) <- (match gpos with Some (_, _, _, c) -> c | None -> [||]);
                let bits_of = function None -> 0 | Some (_, n, _, _) -> n in
                let terms_of = function None -> 0 | Some (_, _, u, _) -> u in
                let used = Stdlib.max (terms_of gneg) (terms_of gpos) in
                let used = if used = 0 then Array.length comp.terms else used in
                comp_stats.(i) <-
                  Some
                    {
                      Stats.cname = comp.cname;
                      n_constraints = Hashtbl.length merged.(i);
                      n_polynomials = Piecewise.n_polynomials piece;
                      split_bits = Stdlib.max (bits_of gneg) (bits_of gpos);
                      degree = comp.terms.(used - 1);
                      n_terms = used;
                    }
          end)
        spec.components;
      match !comp_fail with
      | Some e -> Error e
      | None ->
          let rec_arr = Array.of_list (List.rev !recorded) in
          let nrec = Array.length rec_arr in
          (* Progressive artifact: per-piece certificates from gen_group,
             plus the tier selection — input-weighted coverage measured
             by replaying every recorded input through range reduction
             and the certificate buckets, serve_k the smallest prefix
             clearing cfg.prog_min_coverage (nt = tier disabled). *)
          let prog, prog_stats =
            if not cfg.progressive then (None, None)
            else begin
              let exhaustive = Array.length patterns = 1 lsl T.bits in
              let cert_pieces =
                Array.mapi
                  (fun i (pw : Piecewise.t) ->
                    { Prog.nt = Array.length pw.terms; neg = certs_neg.(i); pos = certs_pos.(i) })
                  pieces
              in
              let nk i = Stdlib.max 0 (cert_pieces.(i).Prog.nt - 1) in
              let group_for i (rr : Spec.reduction) =
                if rr.r < 0.0 then (certs_neg.(i), pieces.(i).Piecewise.neg)
                else (certs_pos.(i), pieces.(i).Piecewise.pos)
              in
              let hits = Array.init n_components (fun i -> Array.make (nk i) 0) in
              Array.iter
                (fun (pat, _) ->
                  let rr = spec.reduce (T.to_double pat) in
                  for i = 0 to n_components - 1 do
                    match group_for i rr with
                    | _, None -> ()
                    | certs, Some (grp : Piecewise.group) ->
                        Array.iteri
                          (fun ki cert ->
                            if Prog.hit cert grp.scheme rr.r then
                              hits.(i).(ki) <- hits.(i).(ki) + 1)
                          certs
                  done)
                rec_arr;
              let icov i ki = float_of_int hits.(i).(ki) /. float_of_int (Stdlib.max 1 nrec) in
              let serve_k =
                Array.init n_components (fun i ->
                    let nt = cert_pieces.(i).Prog.nt in
                    let rec pick ki =
                      if ki >= nk i then nt
                      else if icov i ki >= cfg.prog_min_coverage then ki + 1
                      else pick (ki + 1)
                    in
                    pick 0)
              in
              (* Joint fast-tier coverage: every piece must hit on the
                 same input for the runtime to take the short path.  The
                 tier is all-or-nothing across pieces (the contract the
                 serving kernel and verifier share), so a single piece
                 without a servable prefix disables the whole tier. *)
              let joint = ref 0 in
              let all_tiered =
                Array.for_all
                  (fun i -> serve_k.(i) < cert_pieces.(i).Prog.nt)
                  (Array.init n_components Fun.id)
              in
              if all_tiered then
                Array.iter
                  (fun (pat, _) ->
                    let rr = spec.reduce (T.to_double pat) in
                    let all = ref true in
                    for i = 0 to n_components - 1 do
                      match group_for i rr with
                      | _, None -> all := false
                      | certs, Some (grp : Piecewise.group) ->
                          if not (Prog.hit certs.(serve_k.(i) - 1) grp.scheme rr.r) then
                            all := false
                    done;
                    if !all then incr joint)
                  rec_arr;
              let joint_cov = float_of_int !joint /. float_of_int (Stdlib.max 1 nrec) in
              (* Below the bar jointly: disable the tier wholesale (the
                 certificates stay recorded for the Pareto view). *)
              let serve_k =
                if all_tiered && joint_cov >= cfg.prog_min_coverage then serve_k
                else Array.init n_components (fun i -> cert_pieces.(i).Prog.nt)
              in
              let input_coverage =
                Array.init n_components (fun i ->
                    if serve_k.(i) < cert_pieces.(i).Prog.nt then icov i (serve_k.(i) - 1)
                    else 0.0)
              in
              let ccov i ki =
                (* Worst-group constraint coverage for the stats table. *)
                let of_arr (a : Prog.cert array) =
                  if ki < Array.length a then Some a.(ki).Prog.coverage else None
                in
                match (of_arr certs_neg.(i), of_arr certs_pos.(i)) with
                | Some a, Some b -> Float.min a b
                | Some a, None | None, Some a -> a
                | None, None -> 0.0
              in
              let stats =
                {
                  Stats.prog_exhaustive = exhaustive;
                  prog_joint_coverage = joint_cov;
                  prog_components =
                    Array.mapi
                      (fun i (comp : Spec.component) ->
                        {
                          Stats.p_cname = comp.cname;
                          p_nt = cert_pieces.(i).Prog.nt;
                          p_serve_k = serve_k.(i);
                          p_per_k =
                            Array.init (nk i) (fun ki -> (ki + 1, ccov i ki, icov i ki));
                        })
                      spec.components;
                }
              in
              ( Some { Prog.pieces = cert_pieces; exhaustive; serve_k; input_coverage },
                Some stats )
            end
          in
          let g =
            {
              spec;
              pieces;
              intervals = merged;
              prog;
              stats =
                {
                  Stats.name = spec.name;
                  repr_name = T.name;
                  gen_seconds = Sys.time () -. t0;
                  n_inputs = Array.length patterns;
                  n_special = !n_special;
                  n_reduced =
                    Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 merged;
                  per_component =
                    Array.map
                      (function Some s -> s | None -> assert false)
                      comp_stats;
                  passes = [];
                  lp =
                    Some
                      (Stats.lp_of_counters ~warm_mode:cfg.lp_warm lp0 (Lp.Simplex.snapshot ()));
                  oracle_cache = cache_stats;
                  prog = prog_stats;
                };
            }
          in
          (* Final validation: the actual run-time path must reproduce
             the oracle pattern for every enumerated input.  Pure per
             input, so it shards too; int addition folded in shard order
             keeps the count identical at every job count. *)
          let bad =
            Parallel.fold_chunks ~n:(Array.length rec_arr) ~combine:( + ) ~init:0
              (fun ~lo ~hi ->
                let b = ref 0 in
                for k = lo to hi - 1 do
                  let pat, y = rec_arr.(k) in
                  if not (patterns_value_equal spec.repr (eval_pattern g pat) y) then incr b
                done;
                !b)
          in
          let check_pass =
            Option.map (Stats.pass_of_run ~name:"check") (Parallel.last_stats ())
          in
          let g =
            { g with stats = { g.stats with passes = List.filter_map Fun.id [ oracle_pass; check_pass ] } }
          in
          if bad > 0 then
            Error
              (Printf.sprintf "%s: %d enumerated inputs misround after generation" spec.name bad)
          else Ok g)
