(* Counterexample-guided polynomial generation (Algorithm 4) with the
   search-and-refine coefficient rounding of §3.4.

   Input: the reduced constraints of ONE sub-domain, sorted by reduced
   input.  Output: double coefficients whose Horner evaluation lands in
   every reduced interval, or failure (caller splits further). *)

module Q = Rational

(* Set RLIBM_DEBUG=1 to trace the counterexample loop. *)
let debug = match Sys.getenv_opt "RLIBM_DEBUG" with Some ("1" | "true") -> true | _ -> false

type verdict = Found of float array | No_polynomial

(* One LP-facing constraint: the working copy may be shrunk by
   search-and-refine; [orig] keeps the true interval for Check.  Strict
   sides go closed as soon as a shrink moves the bound strictly inside
   the original interval. *)
type slot = {
  orig : Reduced.constr;
  mutable lo : float;
  mutable hi : float;
  mutable lo_open : bool;
  mutable hi_open : bool;
}

let slot_of (c : Reduced.constr) =
  { orig = c; lo = c.lo; hi = c.hi; lo_open = c.lo_open; hi_open = c.hi_open }

let inside_slot s v =
  (if s.lo_open then v > s.lo else v >= s.lo)
  && if s.hi_open then v < s.hi else v <= s.hi

let check_one ~terms coeffs (c : Reduced.constr) =
  let v = Polyeval.eval ~terms coeffs c.r in
  (if c.lo_open then v > c.lo else v >= c.lo)
  && if c.hi_open then v < c.hi else v <= c.hi

(* Algorithm 4's Check over the full sub-domain constraint set:
   violation indices in ascending order.  Shards across domains past
   this size; per-shard ascending lists concatenated in shard order keep
   the counterexample set canonical (lowest input first) at every job
   count. *)
let par_check_min = 4096

let violations ~terms coeffs (cons : Reduced.constr array) =
  let scan lo hi =
    let acc = ref [] in
    for i = hi - 1 downto lo do
      if not (check_one ~terms coeffs cons.(i)) then acc := i :: !acc
    done;
    !acc
  in
  let n = Array.length cons in
  if n < par_check_min then scan 0 n
  else
    Parallel.fold_chunks ~n
      ~combine:(fun a b -> a @ b)
      ~init:[]
      (fun ~lo ~hi -> scan lo hi)

(* Uniform sample by index (the paper samples proportionally to the
   input distribution: constraints are one per distinct reduced input,
   so index-uniform = distribution-proportional), plus the most highly
   constrained intervals (§3.4). *)
let initial_sample (cfg : Config.t) (cons : Reduced.constr array) =
  let n = Array.length cons in
  let picked = Hashtbl.create 64 in
  let k = Stdlib.min n cfg.sample_init in
  for i = 0 to k - 1 do
    Hashtbl.replace picked (i * (n - 1) / Stdlib.max 1 (k - 1)) ()
  done;
  if cfg.sample_narrow > 0 && n > k then begin
    let by_width = Array.init n (fun i -> i) in
    Array.sort
      (fun i j -> compare (cons.(i).hi -. cons.(i).lo) (cons.(j).hi -. cons.(j).lo))
      by_width;
    for i = 0 to Stdlib.min (cfg.sample_narrow - 1) (n - 1) do
      Hashtbl.replace picked by_width.(i) ()
    done
  end;
  picked

let gen_with ?session ?pin ~(cfg : Config.t) ~refine_cap ~terms (cons : Reduced.constr array) =
  let n = Array.length cons in
  if n = 0 then
    Found
      (Array.init (Array.length terms) (fun j ->
           match pin with Some p when j < Array.length p -> p.(j) | _ -> 0.0))
  else begin
    let picked = initial_sample cfg cons in
    let sample () =
      Hashtbl.fold (fun i () acc -> i :: acc) picked []
      |> List.sort compare
      |> List.map (fun i -> slot_of cons.(i))
      |> Array.of_list
    in
    let result = ref None in
    let rounds = ref 0 in
    let slots = ref (sample ()) in
    while !result = None do
      incr rounds;
      if !rounds > cfg.cex_rounds || Hashtbl.length picked > cfg.sample_cap then
        result := Some No_polynomial
      else begin
        (* Inner loop: LP fit + search-and-refine the rounded coefficients. *)
        let refine = ref 0 in
        let coeffs = ref None in
        let give_up = ref false in
        while !coeffs = None && not !give_up do
          incr refine;
          if !refine > refine_cap then give_up := true
          else begin
            let lp_cons =
              Array.map
                (fun s ->
                  {
                    Lp.Polyfit.r = s.orig.r;
                    lo = s.lo;
                    hi = s.hi;
                    lo_open = s.lo_open;
                    hi_open = s.hi_open;
                  })
                !slots
            in
            let t_fit = if debug then Sys.time () else 0.0 in
            let fit_result = Lp.Polyfit.fit ?session ?pin ~terms lp_cons in
            if debug then
              Printf.eprintf "[polygen] round %d refine %d sample %d fit %.2fs -> %s\n%!"
                !rounds !refine (Array.length lp_cons) (Sys.time () -. t_fit)
                (match fit_result with Some _ -> "sat" | None -> "unsat");
            match fit_result with
            | None -> give_up := true
            | Some qc -> (
                let dc = Array.map Q.to_float qc in
                (* Does the double-rounded polynomial satisfy the sample? *)
                let bad =
                  Array.to_seq !slots
                  |> Seq.filter (fun s ->
                         let v = Polyeval.eval ~terms dc s.orig.r in
                         not (inside_slot s v))
                  |> List.of_seq
                in
                match bad with
                | [] -> coeffs := Some dc
                | _ ->
                    (* Shrink the violated sample intervals one H-step
                       (search-and-refine) and ask the LP again.  A
                       shrunk bound is strictly inside the original
                       interval, so its side is no longer strict. *)
                    List.iter
                      (fun s ->
                        let v = Polyeval.eval ~terms dc s.orig.r in
                        if (if s.lo_open then v <= s.lo else v < s.lo) then begin
                          s.lo <- Fp.Fp64.next_up s.lo;
                          s.lo_open <- false
                        end
                        else begin
                          s.hi <- Fp.Fp64.next_down s.hi;
                          s.hi_open <- false
                        end;
                        if s.lo > s.hi then give_up := true)
                      bad)
          end
        done;
        match !coeffs with
        | None -> result := Some No_polynomial
        | Some dc -> (
            (* Check against the full sub-domain constraint set. *)
            match violations ~terms dc cons with
            | [] -> result := Some (Found dc)
            | cex ->
                List.iter (fun i -> Hashtbl.replace picked i ()) cex;
                slots := sample ())
      end
    done;
    match !result with Some r -> r | None -> No_polynomial
  end

(* Tightening ladder: intersect each true interval with a tube around
   the correctly rounded component value [mid], first aggressively, then
   progressively looser, finally exactly.  The paper never needs this
   (it enumerates every input, so every interval is a constraint); under
   sampled enumeration a polynomial that merely satisfies the sampled
   boxes can wander several box-widths off the function between samples
   and misround unseen inputs whose intervals are tighter than their
   neighbors'.  Every rung is sound — the tube contains [mid], so each
   intersection is a nonempty subset of the true interval — and a rung
   that is infeasible for the LP (the tube can be tighter than the best
   polynomial of the structure tracks the function) falls through to the
   next. *)
let tube_ulps = 64

let shrink_by factor (c : Reduced.constr) =
  let w = (c.hi -. c.lo) /. factor in
  let floor_w = Fp.Fp64.advance c.mid tube_ulps -. c.mid in
  let w = Float.max w floor_w in
  let lo = Float.max c.lo (c.mid -. w) in
  let hi = Float.min c.hi (c.mid +. w) in
  if lo <= hi && Float.is_finite w then
    (* A side the tube moved strictly inside the interval is closed. *)
    {
      c with
      lo;
      hi;
      lo_open = c.lo_open && lo = c.lo;
      hi_open = c.hi_open && hi = c.hi;
    }
  else c

let shrink = shrink_by 65536.0

let gen ?session ~(cfg : Config.t) ~terms (cons : Reduced.constr array) =
  (* Tube rungs get a short refine budget: when a shrunken feasible
     region is a sliver, search-and-refine would thin it further instead
     of helping, so fall through to the next rung early.  Rungs share
     the same reduced inputs, so a warm session carries its basis down
     the whole ladder — each rung only loosens the right-hand sides. *)
  let rec ladder = function
    | [] -> gen_with ?session ~cfg ~refine_cap:cfg.refine_tries ~terms cons
    | f :: rest -> (
        match gen_with ?session ~cfg ~refine_cap:8 ~terms (Array.map (shrink_by f) cons) with
        | Found c -> Found c
        | No_polynomial -> ladder rest)
  in
  ladder [ 65536.0; 1024.0; 16.0 ]

(* ------------------------------------------------------------------ *)
(* Progressive polynomials (RLIBM-PROG lineage).                       *)
(* ------------------------------------------------------------------ *)

(* Does the degree-k prefix of [coeffs] (the first k entries, evaluated
   in the same truncated Horner order the serving tier uses) satisfy
   constraint [c]?  The certification predicate. *)
let prefix_sat ~terms coeffs ~k (c : Reduced.constr) =
  check_one ~terms:(Array.sub terms 0 k) (Array.sub coeffs 0 k) c

(* [gen_prog] = [gen], then prefix enrichment: re-fit so some k-term
   prefix of the final coefficient vector already satisfies (nearly)
   every constraint on its own.  Two stages per candidate k, smallest
   prefix first:

   + fit the k-term structure *directly* against the true constraints —
     relaxed, if needed, by dropping a small fraction of the narrowest
     intervals (the hard inputs the full polynomial exists for).  This
     stage is a heuristic and needs no soundness: coverage is measured
     afterwards by the certification pass, per bucket;
   + pin those k coefficients bit-exactly (Polyfit's equality rows) and
     re-run the full counterexample loop over the full term structure
     and the *unrelaxed* constraints, so the returned polynomial is
     correct everywhere exactly as [gen]'s.

   Any failure falls back to the plain [gen] result, which was computed
   first — enrichment can only improve prefix coverage, never cost
   correctness or a previously found polynomial. *)
let gen_prog ?session ~(cfg : Config.t) ~terms (cons : Reduced.constr array) =
  match gen ?session ~cfg ~terms cons with
  | No_polynomial -> No_polynomial
  | Found base ->
      let nt = Array.length terms in
      let n = Array.length cons in
      if nt <= 1 || n = 0 then Found base
      else begin
        (* Constraint indices from widest to narrowest interval: the
           drop ladder removes a prefix-of-the-narrowest fraction. *)
        let by_width = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            let wi = cons.(i).Reduced.hi -. cons.(i).Reduced.lo
            and wj = cons.(j).Reduced.hi -. cons.(j).Reduced.lo in
            if wi <> wj then compare wi wj else compare i j)
          by_width;
        let relaxed frac =
          if frac = 0.0 then cons
          else begin
            let ndrop = Stdlib.min (n - 1) (int_of_float (frac *. float_of_int n)) in
            let dropped = Hashtbl.create (2 * ndrop) in
            for p = 0 to ndrop - 1 do
              Hashtbl.replace dropped by_width.(p) ()
            done;
            Array.of_seq
              (Seq.filter_map
                 (fun i -> if Hashtbl.mem dropped i then None else Some cons.(i))
                 (Seq.init n Fun.id))
          end
        in
        let prefix_fit k =
          let ptm = Array.sub terms 0 k in
          let rec ladder = function
            | [] -> None
            | frac :: rest -> (
                match gen_with ~cfg ~refine_cap:4 ~terms:ptm (relaxed frac) with
                | Found pc ->
                    if debug then
                      Printf.eprintf "[polygen] prog prefix k=%d fit at drop=%.2f\n%!" k frac;
                    Some pc
                | No_polynomial -> ladder rest)
          in
          ladder [ 0.0; 0.02; 0.10; 0.30 ]
        in
        let rec try_k k =
          if k >= nt then Found base
          else
            match prefix_fit k with
            | None -> try_k (k + 1)
            | Some prefix -> (
                match
                  gen_with ?session ~pin:prefix ~cfg ~refine_cap:cfg.refine_tries ~terms cons
                with
                | Found full -> Found full
                | No_polynomial -> try_k (k + 1))
        in
        try_k 1
      end
