(* Piecewise polynomial tables: the run-time artifact of the generator.

   One [t] approximates one component function f_i over its reduced
   domain.  Negative and non-negative reduced inputs get separate tables
   (Algorithm 3 splits them first since their bit patterns share no
   prefix); each table is indexed by a {!Splitting.scheme} and stores
   the coefficients row-major. *)

type group = {
  scheme : Splitting.scheme;
  coeffs : float array;  (* (2^nbits) * nterms, row-major *)
}

type t = {
  terms : int array;
  neg : group option;
  pos : group option;
}

let n_polynomials t =
  let count = function None -> 0 | Some g -> Splitting.n_subdomains g.scheme in
  count t.neg + count t.pos

(** Evaluate the piecewise polynomial at a reduced input. *)
let eval t r =
  let g = if r < 0.0 then t.neg else t.pos in
  match g with
  | None -> 0.0
  | Some g ->
      let nt = Array.length t.terms in
      let idx = Splitting.index g.scheme r in
      let off = idx * nt in
      (* Inline Horner over the row to avoid slicing. *)
      let u = r *. r in
      let acc = ref g.coeffs.(off + nt - 1) in
      for k = nt - 1 downto 1 do
        let m =
          match t.terms.(k) - t.terms.(k - 1) with
          | 1 -> r
          | 2 -> u
          | d -> r ** float_of_int d
        in
        acc := g.coeffs.(off + k - 1) +. (!acc *. m)
      done;
      (match t.terms.(0) with
      | 0 -> !acc
      | 1 -> !acc *. r
      | 2 -> !acc *. u
      | e -> !acc *. (r ** float_of_int e))

(* The generator's Check phase and the runtime must agree bit-for-bit;
   [eval] and {!Polyeval.eval} use the same operation order. *)

(* Compile one sign group to a specialized closure: the generic [eval]
   re-examines the term structure on every call; the generated-C library
   the paper benchmarks has this specialization done by the compiler. *)
let compile_group terms (g : group) =
  let nt = Array.length terms in
  let scheme = g.scheme and coeffs = g.coeffs in
  match terms with
  | [| 0; 1; 2; 3 |] ->
      fun r ->
        let o = Splitting.index scheme r * nt in
        coeffs.(o)
        +. (r *. (coeffs.(o + 1) +. (r *. (coeffs.(o + 2) +. (r *. coeffs.(o + 3))))))
  | [| 1; 2; 3 |] ->
      fun r ->
        let o = Splitting.index scheme r * nt in
        r *. (coeffs.(o) +. (r *. (coeffs.(o + 1) +. (r *. coeffs.(o + 2)))))
  | [| 1; 3; 5 |] ->
      fun r ->
        let o = Splitting.index scheme r * nt in
        let u = r *. r in
        r *. (coeffs.(o) +. (u *. (coeffs.(o + 1) +. (u *. coeffs.(o + 2)))))
  | [| 0; 2; 4 |] ->
      fun r ->
        let o = Splitting.index scheme r * nt in
        let u = r *. r in
        coeffs.(o) +. (u *. (coeffs.(o + 1) +. (u *. coeffs.(o + 2))))
  | _ ->
      (* Generic sparse Horner over the row, same operation order as
         [eval]. *)
      fun r ->
        let o = Splitting.index scheme r * nt in
        let u = r *. r in
        let acc = ref coeffs.(o + nt - 1) in
        for k = nt - 1 downto 1 do
          let m =
            match terms.(k) - terms.(k - 1) with 1 -> r | 2 -> u | d -> r ** float_of_int d
          in
          acc := coeffs.(o + k - 1) +. (!acc *. m)
        done;
        (match terms.(0) with
        | 0 -> !acc
        | 1 -> !acc *. r
        | 2 -> !acc *. u
        | e -> !acc *. (r ** float_of_int e))

(* Compiled two-group evaluator. *)
let compile (t : t) =
  let zero _ = 0.0 in
  let neg = match t.neg with Some g -> compile_group t.terms g | None -> zero in
  let pos = match t.pos with Some g -> compile_group t.terms g | None -> zero in
  fun r -> if r < 0.0 then neg r else pos r

(* Compiled degree-k prefix evaluator: the first [k] coefficients of
   each row (full row stride unchanged), truncated Horner in exactly
   {!Polyeval}'s operation order — so a prefix value here is
   bit-identical to [Polyeval.eval] over the sub-arrays, which is what
   the progressive certificates were checked against. *)
let compile_prefix ~k (t : t) =
  let nt = Array.length t.terms in
  if k < 1 || k > nt then invalid_arg "Piecewise.compile_prefix";
  let ptm = Array.sub t.terms 0 k in
  let one (g : group) =
    let scheme = g.scheme and coeffs = g.coeffs in
    fun r ->
      let o = Splitting.index scheme r * nt in
      let u = r *. r in
      let acc = ref coeffs.(o + k - 1) in
      for j = k - 1 downto 1 do
        let m =
          match ptm.(j) - ptm.(j - 1) with 1 -> r | 2 -> u | d -> r ** float_of_int d
        in
        acc := coeffs.(o + j - 1) +. (!acc *. m)
      done;
      (match ptm.(0) with
      | 0 -> !acc
      | 1 -> !acc *. r
      | 2 -> !acc *. u
      | e -> !acc *. (r ** float_of_int e))
  in
  let zero _ = 0.0 in
  let neg = match t.neg with Some g -> one g | None -> zero in
  let pos = match t.pos with Some g -> one g | None -> zero in
  fun r -> if r < 0.0 then neg r else pos r
