(* Generator knobs.  The paper's prototype used a 50k-constraint sample
   cap and SoPlex with a five-minute limit; our exact-rational simplex
   is pure OCaml, so the defaults are scaled to keep one function's
   generation in seconds while exercising every algorithm unchanged. *)

type t = {
  sample_init : int;  (* initial uniform sample per sub-domain *)
  sample_narrow : int;  (* extra highly-constrained (narrowest-interval) samples *)
  sample_cap : int;  (* Algorithm 4's threshold: give up past this *)
  refine_tries : int;  (* search-and-refine iterations for coefficient rounding *)
  cex_rounds : int;  (* counterexample loop iterations *)
  max_split_bits : int;  (* deepest sub-domain split: 2^max_split_bits tables *)
  start_split_bits : int;  (* skip straight to this split depth (0 = try single poly) *)
  lp_warm : bool;
      (* Warm-start the LPs of the counterexample loop from per-sub-domain
         Polyfit sessions (dual-simplex basis repair + sibling basis reuse
         after splits).  Same sat/unsat answers as cold, but possibly
         different coefficient vertices — so the deterministic cold path
         stays the default; flip on via RLIBM_LP_WARM=1 or generate
         --lp-warm for speed. *)
  oracle_cache_dir : string option;
      (* Directory of the persistent oracle cache (Sweep.Oracle_cache):
         the generator's enumeration pass records every correctly-rounded
         result it settles and re-reads it on the next run instead of
         re-running Ziv's loop.  Off by default (results are identical
         either way); enable via RLIBM_ORACLE_CACHE=<dir>. *)
  batch_par_min : int;
      (* Smallest batch that shards across domains (Funcs.Batch and the
         serving pipelines); below it the loop runs inline on the
         calling domain.  Override via RLIBM_BATCH_PAR_MIN. *)
  progressive : bool;
      (* Progressive polynomials (RLIBM-PROG): after the full fit, try to
         enrich each sub-domain so a degree-k prefix of the coefficient
         vector already satisfies most rounding intervals, and certify
         per-prefix coverage bitsets next to the tables.  Off by default —
         the emitted tables are then byte-identical to the classic path;
         flip on via RLIBM_PROG=1 or generate --prog. *)
  prog_cert_bits : int;
      (* Extra index bits per certificate bucket beyond the sub-domain
         split: certificates cover 2^(nbits + prog_cert_bits) buckets, so
         a handful of hard inputs only poison their small bucket, not the
         whole sub-domain. *)
  prog_min_coverage : float;
      (* Smallest input-weighted coverage at which a prefix tier is worth
         serving; below it the runtime keeps the full polynomial. *)
}

let default =
  {
    sample_init = 24;
    sample_narrow = 12;
    sample_cap = 2000;
    refine_tries = 40;
    cex_rounds = 40;
    max_split_bits = 10;
    start_split_bits = 0;
    lp_warm = (match Sys.getenv_opt "RLIBM_LP_WARM" with Some ("1" | "true") -> true | _ -> false);
    oracle_cache_dir =
      (match Sys.getenv_opt "RLIBM_ORACLE_CACHE" with
      | Some d when String.trim d <> "" -> Some (String.trim d)
      | _ -> None);
    batch_par_min =
      (match Sys.getenv_opt "RLIBM_BATCH_PAR_MIN" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v >= 0 -> v
          | _ -> 1 lsl 14)
      | None -> 1 lsl 14);
    progressive =
      (match Sys.getenv_opt "RLIBM_PROG" with Some ("1" | "true") -> true | _ -> false);
    prog_cert_bits = 3;
    prog_min_coverage = 0.90;
  }
