(* Reduced rounding intervals (Algorithm 2).

   For input x with rounding interval [l, h] and reduction r = RR_H(x),
   deduce per-component intervals [l_i', h_i'] such that output
   compensation applied to any choice of component values inside them
   lands in [l, h].  The paper widens all components' bounds
   simultaneously, one GetPrev/GetNext step at a time; since OC is
   monotone in the joint perturbation, we implement the efficiency note
   and binary-search on the step count. *)

type constr = {
  r : float;
  lo : float;
  hi : float;
  lo_open : bool;
  hi_open : bool;
      (* Strict sides, inherited from a half-open rounding interval
         (directed/odd modes) when the boundary's preimage in component
         space is exact — see the openness transfer below. *)
  mid : float;
      (* the correctly-rounded-to-double component value (Algorithm 2's
         starting point, possibly nudged): always inside [lo, hi].  The
         generator's first fitting pass pins polynomials to a small tube
         around it — see Polygen.shrink. *)
}

(* A widening of more than this many double-ulps per side is clamped:
   it only makes an already-easy LP constraint slightly less easy. *)
let max_widen = 1 lsl 50

type failure =
  | Oracle_escapes of int
      (* OC of the correctly rounded component values missed the
         rounding interval for this input pattern: the range reduction
         or H's precision is inadequate (Algorithm 2, line 8). *)

(** [deduce spec ~pattern ~interval] computes the reduction of the input
    and one reduced constraint per component. *)
let deduce (spec : Spec.t) ~pattern ~(interval : Rounding.t) =
  let module T = (val spec.repr) in
  let x = T.to_double pattern in
  let rr = spec.reduce x in
  let qr = Rational.of_float rr.r in
  let v =
    Array.map
      (fun (c : Spec.component) ->
        Oracle.Elementary.correctly_rounded ~round:Rational.to_float c.coracle qr)
      spec.components
  in
  (* The correctly rounded component values can land a double-ulp on the
     wrong side of the input's rounding interval when a target boundary
     coincides with a double (the paper's remedy is "increase the
     precision of H", Algorithm 2 line 8; nudging the starting point
     within H is the equivalent that keeps H = double).  Try small joint
     nudges before giving up. *)
  let v =
    if Rounding.contains interval (spec.compensate rr v) then Some v
    else begin
      let try_nudge s =
        let v' = Array.map (fun vi -> Fp.Fp64.advance vi s) v in
        if Rounding.contains interval (spec.compensate rr v') then Some v' else None
      in
      let rec search = function
        | [] -> None
        | s :: rest -> ( match try_nudge s with Some v' -> Some v' | None -> search rest)
      in
      search [ 1; -1; 2; -2; 3; -3; 4; -4; 6; -6; 8; -8 ]
    end
  in
  match v with
  | None -> Error (Oracle_escapes pattern)
  | Some v ->
    begin
    let n = Array.length v in
    let ok k =
      (* Widen every component k steps in direction [dir]. *)
      Rounding.contains interval (spec.compensate rr (Array.map (fun vi -> Fp.Fp64.advance vi k) v))
    in
    let ok_corners k =
      (* Mixed-monotone OC (tan's quotient): the extreme of a
         coordinate-wise monotone OC over the box [v_i - k, v_i + k]^n
         sits at a corner, so probe all 2^n sign combinations. *)
      let rec go c =
        c >= 1 lsl n
        || Rounding.contains interval
             (spec.compensate rr
                (Array.mapi
                   (fun i vi -> Fp.Fp64.advance vi (if c land (1 lsl i) <> 0 then k else -k))
                   v))
           && go (c + 1)
      in
      go 0
    in
    let kd, ku =
      if spec.oc_corners then begin
        (* The corner box is symmetric: asymmetric [(-kd, +ku)] sides
           would mix per-component directions the search never probed. *)
        let k = Rounding.search_max ok_corners max_widen in
        (k, k)
      end
      else (Rounding.search_max (fun k -> ok (-k)) max_widen, Rounding.search_max ok max_widen)
    in
    (* Openness transfer.  The widening above probes doubles, so the
       boxes it returns are closed.  When the rounding interval has an
       open side, the true component constraint is strict exactly when
       the next double step lands compensation *on* the open boundary:
       then that component value is the boundary's exact preimage, every
       value strictly inside it is admissible, and the constraint
       becomes a strict inequality for the LP.  If compensation
       overshoots the boundary instead, the closed double box is already
       maximal and stays closed (sound either way — the final validation
       pass re-checks the run-time path). *)
    let step k = spec.compensate rr (Array.map (fun vi -> Fp.Fp64.advance vi k) v) in
    (* Corner mode keeps closed boxes: the diagonal [step] probe below
       says nothing about a mixed-direction boundary preimage (and the
       corner families are nearest-mode only, where intervals are
       closed anyway). *)
    let hi_ext = (not spec.oc_corners) && interval.hi_open && step (ku + 1) = interval.hi in
    let lo_ext = (not spec.oc_corners) && interval.lo_open && step (-(kd + 1)) = interval.lo in
    let cons =
      Array.init n (fun i ->
          {
            r = rr.r;
            lo = Fp.Fp64.advance v.(i) (-(kd + if lo_ext then 1 else 0));
            hi = Fp.Fp64.advance v.(i) (ku + if hi_ext then 1 else 0);
            lo_open = lo_ext;
            hi_open = hi_ext;
            mid = v.(i);
          })
    in
    Ok (rr, cons)
  end
