(* Input enumerations.

   The paper's generator runs its oracle on every input of the 32-bit
   type (2^32 MPFR calls on their Xeon).  The pure-OCaml oracle cannot
   cover 2^32 in this environment, so 32-bit targets use a deterministic
   stratified enumeration: every (sign, exponent-ish) stratum of the
   pattern space contributes the same number of deterministically chosen
   patterns, always including both stratum ends.  16-bit targets
   enumerate exhaustively, which is how end-to-end soundness is
   witnessed (see DESIGN.md). *)

(* Deterministic 64-bit mixer (splitmix64 finalizer). *)
let mix seed i =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** All patterns of a 16-bit representation. *)
let exhaustive16 = Array.init 65536 (fun i -> i)

(** All patterns of a [bits]-wide representation (18-bit extended
    targets are still cheap to enumerate exhaustively). *)
let exhaustive ~bits = Array.init (1 lsl bits) (fun i -> i)

(** Stratified patterns for a 32-bit representation: 512 strata from the
    top 9 pattern bits, [per_stratum] members each (ends included). *)
let stratified32 ?(seed = 1) ~per_stratum () =
  let low_bits = 23 in
  let low_mask = (1 lsl low_bits) - 1 in
  let out = Array.make (512 * per_stratum) 0 in
  let k = ref 0 in
  for s = 0 to 511 do
    let base = s lsl low_bits in
    for j = 0 to per_stratum - 1 do
      let m =
        if j = 0 then 0
        else if j = 1 then low_mask
        else Int64.to_int (Int64.logand (mix (seed + (s * 131)) j) (Int64.of_int low_mask))
      in
      out.(!k) <- base lor m;
      incr k
    done
  done;
  out

(** Dense sweep of patterns in [[lo, hi]] with the given stride. *)
let range ~lo ~hi ~stride =
  let n = ((hi - lo) / stride) + 1 in
  Array.init n (fun i -> lo + (i * stride))
