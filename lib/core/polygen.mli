(** Counterexample-guided polynomial generation (Algorithm 4).

    [gen] finds double coefficients whose Horner evaluation (in the
    run-time operation order, {!Polyeval}) lands inside every reduced
    interval of one sub-domain, by LP over a growing sample:

    + fit the sampled constraints with the exact LP ({!Lp.Polyfit});
    + round the coefficients to double and search-and-refine — shrink
      any violated sample interval one double-ulp and refit (§3.4);
    + Check the full constraint set; add violations to the sample
      (the counterexamples) and repeat.

    Passes run down a tightening ladder: intervals intersected with
    tubes of decreasing aggressiveness around the correctly rounded
    component values (a sampled-generation generalization aid, see
    [shrink_by]), ending with the exact intervals. *)

(** True when RLIBM_DEBUG=1: trace the counterexample loop. *)
val debug : bool

type verdict = Found of float array | No_polynomial

(** Minimum tube half-width (double ulps from [mid]). *)
val tube_ulps : int

(** [shrink_by f c] intersects [c] with the tube
    [[mid - w, mid + w]], [w = max(width/f, tube_ulps)]; exposed for
    tests.  [shrink] is the most aggressive rung. *)
val shrink_by : float -> Reduced.constr -> Reduced.constr

val shrink : Reduced.constr -> Reduced.constr

(** [gen ~cfg ~terms cons] generates coefficients for the term structure
    [terms] satisfying every constraint, or reports that no polynomial
    of this structure exists within the configured budgets.

    [?session] warm-starts every LP in the counterexample loop from a
    {!Lp.Polyfit.session} (and leaves the session primed for the next
    call on the same sub-domain lineage); omit it for the deterministic
    cold path. *)
val gen :
  ?session:Lp.Polyfit.session -> cfg:Config.t -> terms:int array -> Reduced.constr array -> verdict

(** [gen_prog] = {!gen} followed by progressive-prefix enrichment: try,
    smallest k first, to re-fit so the first k coefficients — fitted
    directly against the constraint set, minus at most a small fraction
    of the narrowest intervals — are pinned bit-exactly while the LP
    fits the remaining tail against the full, unrelaxed constraints.
    The result is correct everywhere exactly as {!gen}'s (the pinned
    refit runs the same counterexample loop); on any enrichment failure
    the plain {!gen} polynomial is returned.  Prefix coverage is *not*
    asserted here — the certification pass measures it per bucket. *)
val gen_prog :
  ?session:Lp.Polyfit.session -> cfg:Config.t -> terms:int array -> Reduced.constr array -> verdict

(** [prefix_sat ~terms coeffs ~k c] — does the degree-k prefix of
    [coeffs] (first [k] entries, truncated Horner in the serving order)
    satisfy [c]?  The certification predicate. *)
val prefix_sat : terms:int array -> float array -> k:int -> Reduced.constr -> bool
