(* Function specifications: everything the generator needs to know about
   one elementary function over one target representation — the oracle,
   the special cases, the range reduction RR_H, its component functions
   f_i, and the output compensation OC_H (§3 of the paper).

   H is always double: [reduce], [compensate] and the generated
   polynomial evaluation all run in native floats, exactly as the
   paper's library does (§4.1). *)

(* Result of range reduction for one input.  [r] is the reduced input
   fed to every component polynomial; [key] packs whatever the output
   compensation needs to reconstruct the result (table indices, signs),
   opaque to the pipeline. *)
type reduction = { r : float; key : int }

type component = {
  cname : string;  (* e.g. "sinpi_r" *)
  coracle : Oracle.Elementary.fn;  (* the real function of the reduced input *)
  terms : int array;  (* exponents of the polynomial; the paper's odd/even structure *)
  dom_pos : (float * float) option;
      (* Analytic hull of the *positive* nonzero reduced inputs,
         [0 < lo <= hi].  The paper derives the sub-domain index from the
         observed min/max bit patterns, which it can do because it
         enumerates every input; under sampled enumeration the hull must
         come from the range reduction itself or unseen inputs could
         alias into the wrong sub-domain. *)
  dom_neg : (float * float) option;  (* hull of negative reduced inputs, [lo <= hi < 0] *)
}

type t = {
  name : string;
  repr : (module Fp.Representation.S);
  mode : Fp.Rounding_mode.t;
      (* The target rounding mode: the oracle result, the rounding
         intervals and the run-time double -> pattern step all round
         under it.  RNE for ordinary targets; Odd for the extended
         (n+2)-bit tables of the RLIBM-ALL construction, whose results
         then serve every standard mode by re-rounding. *)
  oracle : Oracle.Elementary.fn;  (* f itself, exact over rationals *)
  special : int -> int option;
      (* [special pattern] is [Some result_pattern] when the input is
         handled outside the polynomial path (NaN/inf/NaR, saturated
         regions, tiny inputs). *)
  reduce : float -> reduction;
  components : component array;
  compensate : reduction -> float array -> float;
      (* OC_H: component values at [r] -> double result for x.  Must be
         jointly monotone in the component values (§3.2) unless
         [oc_corners] is set. *)
  oc_corners : bool;
      (* The §3.2 deduction widens all components jointly and probes the
         diagonal, which is sound only when OC is monotone in the same
         direction in every component.  A quotient OC (tan = sin/cos) is
         monotone in each component separately but in *opposite*
         directions, so the box extremes live at corners: setting this
         makes {!Reduced.deduce} probe every sign combination of the
         (symmetric) widening instead of the diagonal.  Sound whenever OC
         is coordinate-wise monotone over the probed box — for a
         quotient, whenever the denominator box cannot reach zero, which
         the [max_widen] clamp guarantees (2^50 double-ulps never cross a
         binade's worth of magnitude). *)
  split_hint : int;
      (* Designer-chosen starting split depth (2^hint sub-domains): the
         paper's performance criterion (§3.3, Table 3 ships 2^6..2^14
         tables for most functions).  Deeper tables also shrink the
         polynomial's error between enumerated inputs, which matters
         under sampled generation. *)
}

(* Degree of a component's polynomial (largest exponent). *)
let degree c = Array.fold_left Stdlib.max 0 c.terms
