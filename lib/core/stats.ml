(* Generation statistics, one record per generated function: the data
   behind Table 3 (generation time, reduced-input counts, piecewise
   sizes, polynomial degree and term counts). *)

type t = {
  name : string;
  repr_name : string;
  gen_seconds : float;
  n_inputs : int;  (* enumerated inputs *)
  n_special : int;  (* handled by special cases *)
  n_reduced : int;  (* distinct reduced constraints, summed over components *)
  per_component : component array;
  passes : pass list;  (* sharded phases, in execution order *)
  lp : lp option;  (* LP kernel work during this generation run *)
  oracle_cache : cache option;  (* persistent-oracle-cache traffic, if enabled *)
  prog : prog option;  (* progressive-prefix coverage, when cfg.progressive *)
}

and component = {
  cname : string;
  n_constraints : int;
  n_polynomials : int;  (* total sub-domain count over both sign groups *)
  split_bits : int;  (* the n of 2^n sub-domains (max over groups) *)
  degree : int;
  n_terms : int;
}

(* One domain-parallel pass of the generator (oracle enumeration, final
   validation replay): wall clock, shard spread and throughput, so the
   RLIBM_JOBS speedup is observable from `generate stats`. *)
and pass = {
  pass_name : string;
  jobs : int;
  n_shards : int;
  items : int;
  wall_seconds : float;
  busy_seconds : float;  (* sum over shards; busy/wall ~ effective parallelism *)
  max_shard_seconds : float;
  items_per_second : float;
}

(* LP kernel counters over one generation run: solve and pivot counts
   from {!Lp.Simplex}, split by entry point (cold = fresh two-phase
   solves, warm = dual-simplex basis repairs, fallbacks = warm repairs
   that hit the pivot cap and re-ran cold). *)
and lp = {
  lp_warm_mode : bool;  (* was Config.lp_warm set for this run *)
  lp_cold_solves : int;
  lp_warm_solves : int;
  lp_primal_pivots : int;
  lp_dual_pivots : int;
  lp_refactorizations : int;
  lp_warm_fallbacks : int;
}

(* Persistent oracle cache traffic during one run (Sweep.Oracle_cache):
   hits are Ziv-loop executions the cache saved this run. *)
and cache = { cache_hits : int; cache_misses : int }

(* Progressive-polynomial coverage (cfg.progressive): per component and
   per prefix degree k, the fraction of constraints the prefix satisfies
   (worst sign group) and the fraction of enumerated inputs whose
   certificate bucket the prefix certifies.  [p_serve_k = p_nt] means
   the serving tier is disabled for that component. *)
and prog = {
  prog_exhaustive : bool;  (* certificates enumerated over every pattern *)
  prog_joint_coverage : float;  (* all tiered components hit, input-weighted *)
  prog_components : prog_component array;
}

and prog_component = {
  p_cname : string;
  p_nt : int;
  p_serve_k : int;
  p_per_k : (int * float * float) array;  (* k, constraint cov, input cov *)
}

(* Counter delta between two {!Lp.Simplex.snapshot}s bracketing a run. *)
let lp_of_counters ~warm_mode (b : Lp.Simplex.counters) (a : Lp.Simplex.counters) =
  {
    lp_warm_mode = warm_mode;
    lp_cold_solves = a.cold_solves - b.cold_solves;
    lp_warm_solves = a.warm_solves - b.warm_solves;
    lp_primal_pivots = a.primal_pivots - b.primal_pivots;
    lp_dual_pivots = a.dual_pivots - b.dual_pivots;
    lp_refactorizations = a.refactorizations - b.refactorizations;
    lp_warm_fallbacks = a.warm_fallbacks - b.warm_fallbacks;
  }

let pass_of_run ~name (r : Parallel.stats) =
  let busy = Array.fold_left ( +. ) 0.0 r.shard_seconds in
  let worst = Array.fold_left Float.max 0.0 r.shard_seconds in
  {
    pass_name = name;
    jobs = r.jobs;
    n_shards = r.n_shards;
    items = r.n_items;
    wall_seconds = r.wall_seconds;
    busy_seconds = busy;
    max_shard_seconds = worst;
    items_per_second = (if r.wall_seconds > 0.0 then float_of_int r.n_items /. r.wall_seconds else 0.0);
  }

let pp_pass fmt p =
  Format.fprintf fmt
    "  pass %-8s jobs %2d, %3d shards, %7d items, wall %6.2fs, busy %6.2fs (par %.2fx), %9.0f items/s@."
    p.pass_name p.jobs p.n_shards p.items p.wall_seconds p.busy_seconds
    (if p.wall_seconds > 0.0 then p.busy_seconds /. p.wall_seconds else 1.0)
    p.items_per_second

let pp fmt t =
  Format.fprintf fmt "%s (%s): %.1fs, %d inputs (%d special), %d reduced@." t.name t.repr_name
    t.gen_seconds t.n_inputs t.n_special t.n_reduced;
  Array.iter
    (fun c ->
      Format.fprintf fmt "  %-10s %7d constraints, %4d polys (2^%d), degree %d, %d terms@."
        c.cname c.n_constraints c.n_polynomials c.split_bits c.degree c.n_terms)
    t.per_component;
  List.iter (pp_pass fmt) t.passes;
  (match t.oracle_cache with
  | None -> ()
  | Some c ->
      Format.fprintf fmt "  oracle cache: %d hits, %d misses (%.0f%% of Ziv loops skipped)@."
        c.cache_hits c.cache_misses
        (if c.cache_hits + c.cache_misses > 0 then
           100.0 *. float_of_int c.cache_hits /. float_of_int (c.cache_hits + c.cache_misses)
         else 0.0));
  match t.lp with
  | None -> ()
  | Some l ->
      Format.fprintf fmt
        "  lp %s: %d cold solves (%d primal pivots), %d warm solves (%d dual pivots, %d \
         fallbacks), %d refactorizations@."
        (if l.lp_warm_mode then "warm" else "cold")
        l.lp_cold_solves l.lp_primal_pivots l.lp_warm_solves l.lp_dual_pivots l.lp_warm_fallbacks
        l.lp_refactorizations

(* The per-prefix coverage table `generate --prog --stats` prints. *)
let pp_prog fmt p =
  Format.fprintf fmt "  prog: %s certificates, joint fast-tier coverage %.2f%%@."
    (if p.prog_exhaustive then "exhaustive" else "sampled (tier not servable)")
    (100.0 *. p.prog_joint_coverage);
  Array.iter
    (fun c ->
      Array.iter
        (fun (k, ccov, icov) ->
          Format.fprintf fmt
            "    %-10s prefix k=%d/%d: %6.2f%% constraints, %6.2f%% inputs%s@." c.p_cname k
            c.p_nt (100.0 *. ccov) (100.0 *. icov)
            (if k = c.p_serve_k then "  <- serving tier" else ""))
        c.p_per_k;
      if c.p_serve_k >= c.p_nt then
        Format.fprintf fmt "    %-10s serving tier: full polynomial (no prefix cleared the bar)@."
          c.p_cname)
    p.prog_components

(* One progress line of a checkpointed sweep job ({!Sweep.Engine}):
   chunk completion (with how much came from the resumed checkpoint),
   fault counters, oracle-cache traffic, verifier fast-path traffic, and
   the chunk rate + ETA.  Rate and ETA are computed by the engine over
   chunks finished *this run* only — a resume that restores most of its
   chunks from the checkpoint says nothing about how fast the pending
   ones will go, so restored chunks must not inflate the rate. *)
let pp_sweep fmt (p : Sweep.Engine.progress) =
  Format.fprintf fmt
    "  sweep %d/%d chunks (%d restored, %d retries, %d quarantined), cache %d hit / %d miss%s, \
     %.1fs elapsed, %.1f chunks/s pending-rate, eta %.0fs@."
    p.Sweep.Engine.completed_chunks p.total_chunks p.restored_chunks p.retry_attempts
    p.quarantined_chunks p.cache_hits p.cache_misses
    (if p.fast_path + p.escalations > 0 then
       Printf.sprintf ", verifier %d fast / %d escalated" p.fast_path p.escalations
     else "")
    p.wall_seconds p.chunk_rate p.eta_seconds

(* ------------------------------------------------------------------ *)
(* Campaign-level statistics (lib/campaign merges; plain data here so   *)
(* bin/check and bench can render them without a dune dependency from   *)
(* rlibm onto campaign).                                                *)
(* ------------------------------------------------------------------ *)

type campaign = {
  c_items : int;  (* items verified across all shards *)
  c_shards : int;
  c_busy_seconds : float;  (* sum of shard wall clocks (CPU-ish budget) *)
  c_wall_seconds : float;  (* driver wall clock of this invocation *)
  c_fast : int;  (* oracle-free certifications *)
  c_escalated : int;  (* Ziv-oracle escalations *)
  c_mismatches : int;
  c_quarantined : int;
}

(* Aggregate worker throughput: items per second of shard busy time.
   With W workers running concurrently the wall clock divides by ~W,
   which is exactly what {!campaign_projected_seconds} assumes. *)
let campaign_inputs_per_second c =
  if c.c_busy_seconds > 0.0 then float_of_int c.c_items /. c.c_busy_seconds else 0.0

(* Fast-path share of all verifier verdicts; 100 when no verdict was
   counted (nothing escalated because nothing ran). *)
let campaign_fast_pct c =
  let t = c.c_fast + c.c_escalated in
  if t = 0 then 100.0 else 100.0 *. float_of_int c.c_fast /. float_of_int t

(* Projected wall clock for an [n_items] campaign at [workers]
   single-threaded workers, extrapolating the observed per-worker item
   rate.  The 2^32 planning number in EXPERIMENTS.md comes from here. *)
let campaign_projected_seconds c ~n_items ~workers =
  let rate = campaign_inputs_per_second c in
  if rate > 0.0 && workers > 0 then
    float_of_int n_items /. (rate *. float_of_int workers)
  else infinity

let pp_campaign fmt c =
  Format.fprintf fmt
    "  campaign %d items over %d shards: %.0f items/s, %.2f%% fast-path (%d fast / %d escalated), \
     %d mismatches, %d quarantined ranges, %.1fs busy / %.1fs wall@."
    c.c_items c.c_shards (campaign_inputs_per_second c) (campaign_fast_pct c) c.c_fast
    c.c_escalated c.c_mismatches c.c_quarantined c.c_busy_seconds c.c_wall_seconds;
  Format.fprintf fmt
    "  projected full float32 (2^32 points): %.1fh at 1 worker, %.1fh at 8, %.1fh at 32@."
    (campaign_projected_seconds c ~n_items:(1 lsl 32) ~workers:1 /. 3600.0)
    (campaign_projected_seconds c ~n_items:(1 lsl 32) ~workers:8 /. 3600.0)
    (campaign_projected_seconds c ~n_items:(1 lsl 32) ~workers:32 /. 3600.0)
