(* Revised simplex over exact rationals — the SoPlex-faithful kernel.

   Two layers:

   - [feasible_reference]: the original dense two-phase tableau, kept
     verbatim.  Feasibility of  A x <= b  (x free) is decided by
     splitting x = u - v (u, v >= 0), adding slacks, flipping
     negative-rhs rows and giving them artificial variables; phase 1
     minimizes the artificial sum under Bland's rule.

   - The revised kernel: the same pivot sequence, driven off a
     factorization of the m x m basis matrix (product-form of the
     inverse: an explicitly inverted basis refreshed every
     [refactor_interval] pivots, with eta updates in between) instead of
     updating the full m x (2n+m+a) tableau each pivot.  Reduced costs
     are priced against the static phase-1 row, so only the entering
     column is ever FTRANed.  Because every priced quantity equals the
     corresponding dense tableau entry exactly (canonical rationals),
     [feasible] replays the reference pivot for pivot and returns the
     identical point — the generated-table determinism contract.

   On top of the same factorization sits the warm-start [state]: rows
   A x <= b with free structural variables and one slack each, basis
   kept across [add_row]/[set_rhs]/[drop_rows] edits, primal
   feasibility repaired by a dual-simplex pass (Bland's least-index
   rule; all-zero objective, so any basis is trivially dual feasible).
   Algorithm 4's counterexample loop only ever appends rows and shrinks
   bounds, which costs a handful of dual pivots per round instead of a
   from-scratch phase 1.

   Performance notes: tableau entries are quotients of minors of the
   structural columns, so they stay a few hundred bits wide for the
   polynomial-fitting workloads; {!Rational}'s dyadic fast path and the
   division-free ratio test keep gcd work off the hot path.  The basis
   holds at most nv structural (non-unit) columns, so refactorization
   is O(m^2 * nv), not O(m^3).  Callers control cost through problem
   size (see {!Polyfit.max_active}), not through approximation. *)

module Q = Rational

type outcome = Feasible of Q.t array | Infeasible | Unknown

let max_pivots = ref 20000
let refactor_interval = ref 32

type counters = {
  mutable cold_solves : int;
  mutable warm_solves : int;
  mutable primal_pivots : int;
  mutable dual_pivots : int;
  mutable refactorizations : int;
  mutable warm_fallbacks : int;
}

let counters =
  { cold_solves = 0; warm_solves = 0; primal_pivots = 0; dual_pivots = 0;
    refactorizations = 0; warm_fallbacks = 0 }

let snapshot () = { counters with cold_solves = counters.cold_solves }

let reset_counters () =
  counters.cold_solves <- 0;
  counters.warm_solves <- 0;
  counters.primal_pivots <- 0;
  counters.dual_pivots <- 0;
  counters.refactorizations <- 0;
  counters.warm_fallbacks <- 0

(* ------------------------------------------------------------------ *)
(* Dense two-phase tableau: the retained reference.                    *)
(* ------------------------------------------------------------------ *)

let feasible_reference ~a ~b =
  let m = Array.length a in
  if m = 0 then invalid_arg "Simplex.feasible: no rows";
  let nv = Array.length a.(0) in
  Array.iter (fun row -> if Array.length row <> nv then invalid_arg "Simplex.feasible: ragged matrix") a;
  if Array.length b <> m then invalid_arg "Simplex.feasible: bad rhs length";
  (* Columns: u_0..u_{nv-1}, v_0..v_{nv-1}, s_0..s_{m-1}, then one
     artificial per negative-rhs row. *)
  let neg_rows = ref [] in
  for i = m - 1 downto 0 do
    if Q.sign b.(i) < 0 then neg_rows := i :: !neg_rows
  done;
  let neg_rows = !neg_rows in
  let n_art = List.length neg_rows in
  let n_cols = (2 * nv) + m + n_art in
  let t = Array.make_matrix m (n_cols + 1) Q.zero in
  let basis = Array.make m 0 in
  let art_col = Hashtbl.create 8 in
  List.iteri (fun j i -> Hashtbl.add art_col i ((2 * nv) + m + j)) neg_rows;
  for i = 0 to m - 1 do
    let flip = Q.sign b.(i) < 0 in
    let put j q = t.(i).(j) <- (if flip then Q.neg q else q) in
    for j = 0 to nv - 1 do
      put j a.(i).(j);
      put (nv + j) (Q.neg a.(i).(j))
    done;
    put ((2 * nv) + i) Q.one;
    t.(i).(n_cols) <- (if flip then Q.neg b.(i) else b.(i));
    if flip then begin
      let c = Hashtbl.find art_col i in
      t.(i).(c) <- Q.one;
      basis.(i) <- c
    end
    else basis.(i) <- (2 * nv) + i
  done;
  if n_art = 0 then begin
    (* The all-slack basis is already feasible; x = 0 works. *)
    Feasible (Array.make nv Q.zero)
  end
  else begin
    (* Phase-1 objective row (minimize the artificial sum), kept in
       reduced form: entering candidates are columns with positive
       coefficient. *)
    let obj = Array.make (n_cols + 1) Q.zero in
    for i = 0 to m - 1 do
      if basis.(i) >= (2 * nv) + m then
        for j = 0 to n_cols do
          obj.(j) <- Q.add obj.(j) t.(i).(j)
        done
    done;
    let pivots = ref 0 in
    let result = ref None in
    let is_basic = Array.make (n_cols + 1) false in
    Array.iter (fun j -> is_basic.(j) <- true) basis;
    while !result = None do
      if !pivots > !max_pivots then result := Some Unknown
      else begin
        (* Bland: the lowest-index improving column (cycle-free).
           Artificial columns are barred from entering — an artificial
           that has left the basis is dropped from the problem (the
           classical rule).  This is not only the usual economy: the
           criterion row starts as the plain sum of the artificial rows
           (the z-row, with 1s in the artificial columns) rather than
           z - c, so a departed artificial's entry overstates its
           reduced cost by exactly its unit cost.  Letting it re-enter
           on that stale entry corrupts the "objective rhs = remaining
           artificial sum" invariant and can declare an infeasible
           system feasible. *)
        let entering = ref (-1) in
        (try
           for j = 0 to (2 * nv) + m - 1 do
             if (not is_basic.(j)) && Q.sign obj.(j) > 0 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !entering < 0 then begin
          (* Optimal: feasible iff the artificial sum is zero. *)
          if Q.is_zero obj.(n_cols) then begin
            let x = Array.make nv Q.zero in
            for i = 0 to m - 1 do
              if basis.(i) < nv then x.(basis.(i)) <- Q.add x.(basis.(i)) t.(i).(n_cols)
              else if basis.(i) < 2 * nv then
                x.(basis.(i) - nv) <- Q.sub x.(basis.(i) - nv) t.(i).(n_cols)
            done;
            result := Some (Feasible x)
          end
          else result := Some Infeasible
        end
        else begin
          let e = !entering in
          (* Division-free ratio test (cross-multiplication), Bland
             tie-break on the basis column index. *)
          let leave = ref (-1) in
          for i = 0 to m - 1 do
            if Q.sign t.(i).(e) > 0 then begin
              if !leave < 0 then leave := i
              else begin
                let l = !leave in
                (* rhs_i / t_ie ? rhs_l / t_le, all pivots positive. *)
                let lhs = Q.mul t.(i).(n_cols) t.(l).(e) in
                let rhs = Q.mul t.(l).(n_cols) t.(i).(e) in
                let c = Q.compare lhs rhs in
                if c < 0 || (c = 0 && basis.(i) < basis.(l)) then leave := i
              end
            end
          done;
          if !leave < 0 then
            (* Phase-1 objective is bounded below by 0, so no improving
               ray exists in exact arithmetic; defensive bail-out. *)
            result := Some Unknown
          else begin
            let l = !leave in
            let piv = t.(l).(e) in
            for j = 0 to n_cols do
              t.(l).(j) <- Q.div t.(l).(j) piv
            done;
            for i = 0 to m - 1 do
              if i <> l && not (Q.is_zero t.(i).(e)) then begin
                let f = t.(i).(e) in
                for j = 0 to n_cols do
                  t.(i).(j) <- Q.sub t.(i).(j) (Q.mul f t.(l).(j))
                done
              end
            done;
            (* Incremental objective update (exact, hence faithful). *)
            if not (Q.is_zero obj.(e)) then begin
              let f = obj.(e) in
              for j = 0 to n_cols do
                obj.(j) <- Q.sub obj.(j) (Q.mul f t.(l).(j))
              done
            end;
            is_basic.(basis.(l)) <- false;
            is_basic.(e) <- true;
            basis.(l) <- e;
            incr pivots
          end
        end
      end
    done;
    match !result with Some r -> r | None -> Unknown
  end

(* ------------------------------------------------------------------ *)
(* Factorized basis: product-form of the inverse.                      *)
(*                                                                     *)
(* [inv] is B^-1 at the last refactorization; [etas] the elementary     *)
(* pivot matrices since, newest first.  FTRAN solves B z = v, BTRAN     *)
(* solves w B = v.  Everything is slot-indexed: slot k of the basis     *)
(* holds basis column k, and FTRAN/BTRAN results line up with the       *)
(* dense tableau's row index k.                                         *)
(* ------------------------------------------------------------------ *)

module Factor = struct
  type t = {
    m : int;
    inv : Q.t array array;  (* inv.(k) = row k of B^-1 *)
    mutable etas : (int * Q.t array) list;  (* (pivot slot, FTRANed column), newest first *)
    mutable n_etas : int;
  }

  (* Gauss-Jordan with first-nonzero pivoting.  [col k] supplies basis
     column k (dense, length m).  Mostly-unit bases (every slack and
     artificial column is +-e_i) eliminate for free thanks to the
     zero skips: only structural columns generate work. *)
  let refactor ~m ~col =
    counters.refactorizations <- counters.refactorizations + 1;
    let w = Array.make_matrix m m Q.zero in
    for k = 0 to m - 1 do
      let c = col k in
      for i = 0 to m - 1 do
        if not (Q.is_zero c.(i)) then w.(i).(k) <- c.(i)
      done
    done;
    let r = Array.init m (fun i -> Array.init m (fun j -> if i = j then Q.one else Q.zero)) in
    let used = Array.make m false in
    let where = Array.make m (-1) in
    for k = 0 to m - 1 do
      let p = ref (-1) in
      (try
         for i = 0 to m - 1 do
           if (not used.(i)) && not (Q.is_zero w.(i).(k)) then begin
             p := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !p < 0 then failwith "Simplex.Factor: singular basis";
      let p = !p in
      used.(p) <- true;
      where.(k) <- p;
      let piv = w.(p).(k) in
      if not (Q.equal piv Q.one) then begin
        let ip = Q.inv piv in
        for j = 0 to m - 1 do
          if not (Q.is_zero w.(p).(j)) then w.(p).(j) <- Q.mul w.(p).(j) ip
        done;
        for j = 0 to m - 1 do
          if not (Q.is_zero r.(p).(j)) then r.(p).(j) <- Q.mul r.(p).(j) ip
        done
      end;
      for i = 0 to m - 1 do
        if i <> p && not (Q.is_zero w.(i).(k)) then begin
          let f = w.(i).(k) in
          for j = 0 to m - 1 do
            if not (Q.is_zero w.(p).(j)) then w.(i).(j) <- Q.sub w.(i).(j) (Q.mul f w.(p).(j))
          done;
          for j = 0 to m - 1 do
            if not (Q.is_zero r.(p).(j)) then r.(i).(j) <- Q.sub r.(i).(j) (Q.mul f r.(p).(j))
          done
        end
      done
    done;
    { m; inv = Array.init m (fun k -> r.(where.(k))); etas = []; n_etas = 0 }

  (* z = B^-1 v. *)
  let ftran t v =
    let m = t.m in
    let z = Array.make m Q.zero in
    for j = 0 to m - 1 do
      let vj = v.(j) in
      if not (Q.is_zero vj) then
        for i = 0 to m - 1 do
          let c = t.inv.(i).(j) in
          if not (Q.is_zero c) then z.(i) <- Q.add z.(i) (Q.mul c vj)
        done
    done;
    (* Eta columns apply oldest to newest: E = I except column r, with
       (Ex)_r = x_r / zc_r and (Ex)_i = x_i - zc_i (Ex)_r. *)
    List.iter
      (fun (r, zc) ->
        let zr = Q.div z.(r) zc.(r) in
        if not (Q.is_zero zr) then
          for i = 0 to m - 1 do
            if i <> r && not (Q.is_zero zc.(i)) then z.(i) <- Q.sub z.(i) (Q.mul zc.(i) zr)
          done;
        z.(r) <- zr)
      (List.rev t.etas);
    z

  (* w with w B = v (row solve). *)
  let btran t v =
    let m = t.m in
    let v = Array.copy v in
    (* Row-vector application newest to oldest:
       (vE)_r = (v_r - sum_{i<>r} v_i zc_i) / zc_r, other entries kept. *)
    List.iter
      (fun (r, zc) ->
        let acc = ref v.(r) in
        for i = 0 to m - 1 do
          if i <> r && not (Q.is_zero zc.(i)) && not (Q.is_zero v.(i)) then
            acc := Q.sub !acc (Q.mul v.(i) zc.(i))
        done;
        v.(r) <- Q.div !acc zc.(r))
      t.etas;
    let w = Array.make m Q.zero in
    for i = 0 to m - 1 do
      let vi = v.(i) in
      if not (Q.is_zero vi) then
        for j = 0 to m - 1 do
          let c = t.inv.(i).(j) in
          if not (Q.is_zero c) then w.(j) <- Q.add w.(j) (Q.mul c vi)
        done
    done;
    w

  (* Basis column at slot [row] replaced by the column whose FTRAN is
     [colz]; O(1), paid back at the next ftran/btran. *)
  let update t ~row ~colz = begin
    t.etas <- (row, Array.copy colz) :: t.etas;
    t.n_etas <- t.n_etas + 1
  end
end

(* ------------------------------------------------------------------ *)
(* Cold solve: revised replay of the reference.                        *)
(* ------------------------------------------------------------------ *)

(* Reduced costs are priced against the *static* initial phase-1 row
   obj0 (the artificial rows of the initial tableau, summed).  The
   maintained dense objective row satisfies, at every pivot,

     obj(j) = obj0(j) - lambda^T B^-1 A_j

   where lambda_k = obj0(basis k), corrected to 0 for artificials that
   have been basic since initialization (their obj entry is frozen at 1
   while basic and only zeroed if they ever re-enter).  That identity is
   what lets the revised kernel price any column in O(m) — O(1) for the
   unit slack/artificial columns — without carrying the tableau. *)

let feasible ~a ~b =
  counters.cold_solves <- counters.cold_solves + 1;
  let m = Array.length a in
  if m = 0 then invalid_arg "Simplex.feasible: no rows";
  let nv = Array.length a.(0) in
  Array.iter (fun row -> if Array.length row <> nv then invalid_arg "Simplex.feasible: ragged matrix") a;
  if Array.length b <> m then invalid_arg "Simplex.feasible: bad rhs length";
  let flip = Array.map (fun bi -> Q.sign bi < 0) b in
  let neg_rows = ref [] in
  for i = m - 1 downto 0 do
    if flip.(i) then neg_rows := i :: !neg_rows
  done;
  let neg_rows = !neg_rows in
  let n_art = List.length neg_rows in
  if n_art = 0 then Feasible (Array.make nv Q.zero)
  else begin
    let n_cols = (2 * nv) + m + n_art in
    (* Structural columns with the row flips baked in: u then v. *)
    let scol =
      Array.init (2 * nv) (fun j ->
          let base = j mod nv and negv = j >= nv in
          Array.init m (fun i ->
              let v = a.(i).(base) in
              let v = if negv then Q.neg v else v in
              if flip.(i) then Q.neg v else v))
    in
    let art_row = Array.make n_art 0 in
    let art_col_of_row = Hashtbl.create 8 in
    List.iteri
      (fun k i ->
        art_row.(k) <- i;
        Hashtbl.add art_col_of_row i ((2 * nv) + m + k))
      neg_rows;
    let rhs = Array.init m (fun i -> if flip.(i) then Q.neg b.(i) else b.(i)) in
    let basis =
      Array.init m (fun i -> if flip.(i) then Hashtbl.find art_col_of_row i else (2 * nv) + i)
    in
    let is_basic = Array.make n_cols false in
    Array.iter (fun j -> is_basic.(j) <- true) basis;
    let xb = Array.copy rhs in
    (* Static phase-1 row over the initial tableau. *)
    let obj0_struct =
      Array.init (2 * nv) (fun j ->
          List.fold_left (fun acc i -> Q.add acc scol.(j).(i)) Q.zero neg_rows)
    in
    let obj0_rhs = List.fold_left (fun acc i -> Q.add acc rhs.(i)) Q.zero neg_rows in
    let colv j =
      if j < 2 * nv then scol.(j)
      else if j < (2 * nv) + m then begin
        let i = j - (2 * nv) in
        let c = Array.make m Q.zero in
        c.(i) <- (if flip.(i) then Q.minus_one else Q.one);
        c
      end
      else begin
        let c = Array.make m Q.zero in
        c.(art_row.(j - (2 * nv) - m)) <- Q.one;
        c
      end
    in
    let basis_col k = colv basis.(k) in
    let factor = ref (Factor.refactor ~m ~col:basis_col) in
    (* Pricing multipliers: lambda_k is the static obj0 entry of basis
       column k — except artificial columns, whose obj0 entry (1, the
       frozen z-row value) is never folded into the maintained dense row
       while the artificial stays basic.  Since artificials can never
       re-enter, every basic artificial has been basic since the start,
       so its multiplier is simply 0. *)
    let lambda_of k =
      let c = basis.(k) in
      if c < 2 * nv then obj0_struct.(c)
      else if c < (2 * nv) + m then if flip.(c - (2 * nv)) then Q.minus_one else Q.zero
      else Q.zero
    in
    let pivots = ref 0 in
    let result = ref None in
    while !result = None do
      if !pivots > !max_pivots then result := Some Unknown
      else begin
        let lambda = Array.init m lambda_of in
        let y = Factor.btran !factor lambda in
        let objv j =
          if j < 2 * nv then begin
            let c = scol.(j) in
            let acc = ref obj0_struct.(j) in
            for i = 0 to m - 1 do
              if not (Q.is_zero y.(i)) && not (Q.is_zero c.(i)) then
                acc := Q.sub !acc (Q.mul y.(i) c.(i))
            done;
            !acc
          end
          else begin
            let i = j - (2 * nv) in
            if flip.(i) then Q.sub y.(i) Q.one (* obj0 = -1, column = -e_i *)
            else Q.neg y.(i) (* obj0 = 0, column = e_i *)
          end
        in
        (* Artificials barred from entering, mirroring the reference. *)
        let entering = ref (-1) in
        (try
           for j = 0 to (2 * nv) + m - 1 do
             if (not is_basic.(j)) && Q.sign (objv j) > 0 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !entering < 0 then begin
          let zrhs = ref obj0_rhs in
          for i = 0 to m - 1 do
            let li = lambda.(i) in
            if not (Q.is_zero li) && not (Q.is_zero xb.(i)) then
              zrhs := Q.sub !zrhs (Q.mul li xb.(i))
          done;
          if Q.is_zero !zrhs then begin
            let x = Array.make nv Q.zero in
            for i = 0 to m - 1 do
              if basis.(i) < nv then x.(basis.(i)) <- Q.add x.(basis.(i)) xb.(i)
              else if basis.(i) < 2 * nv then
                x.(basis.(i) - nv) <- Q.sub x.(basis.(i) - nv) xb.(i)
            done;
            result := Some (Feasible x)
          end
          else result := Some Infeasible
        end
        else begin
          let e = !entering in
          let z = Factor.ftran !factor (colv e) in
          let leave = ref (-1) in
          for i = 0 to m - 1 do
            if Q.sign z.(i) > 0 then begin
              if !leave < 0 then leave := i
              else begin
                let l = !leave in
                let lhs = Q.mul xb.(i) z.(l) in
                let rhs_ = Q.mul xb.(l) z.(i) in
                let c = Q.compare lhs rhs_ in
                if c < 0 || (c = 0 && basis.(i) < basis.(l)) then leave := i
              end
            end
          done;
          if !leave < 0 then result := Some Unknown
          else begin
            let l = !leave in
            let theta = Q.div xb.(l) z.(l) in
            for i = 0 to m - 1 do
              if i <> l && not (Q.is_zero z.(i)) then xb.(i) <- Q.sub xb.(i) (Q.mul z.(i) theta)
            done;
            xb.(l) <- theta;
            is_basic.(basis.(l)) <- false;
            is_basic.(e) <- true;
            basis.(l) <- e;
            Factor.update !factor ~row:l ~colz:z;
            if !factor.Factor.n_etas >= !refactor_interval then
              factor := Factor.refactor ~m ~col:basis_col;
            counters.primal_pivots <- counters.primal_pivots + 1;
            incr pivots
          end
        end
      end
    done;
    match !result with Some r -> r | None -> Unknown
  end

(* ------------------------------------------------------------------ *)
(* Warm-started incremental state.                                     *)
(* ------------------------------------------------------------------ *)

(* Columns: structural j in [0, nv) (free), then slack nv+i for row i
   (>= 0).  The basis always has one column per row (slot k <-> row k of
   the factorization); free structurals never leave once entered, slacks
   leave when driven negative.  No artificials and no u/v split: the
   dual repair never needs a feasible start, only a basis. *)

type state = {
  w_nv : int;
  mutable w_m : int;
  mutable w_rows : Q.t array array;
  mutable w_rhs : Q.t array;
  mutable w_basis : int array;  (* slot -> column *)
  mutable w_pos : int array;  (* column -> slot, -1 nonbasic; length nv + m *)
  mutable w_xb : Q.t array;  (* slot -> basic value *)
  mutable w_factor : Factor.t option;  (* None: structure changed *)
  mutable w_xb_dirty : bool;
}

let create ~nv =
  if nv <= 0 then invalid_arg "Simplex.create: nv must be positive";
  {
    w_nv = nv;
    w_m = 0;
    w_rows = [||];
    w_rhs = [||];
    w_basis = [||];
    w_pos = Array.make nv (-1);
    w_xb = [||];
    w_factor = None;
    w_xb_dirty = true;
  }

let nrows st = st.w_m

let copy st =
  {
    st with
    w_rows = Array.map Array.copy st.w_rows;
    w_rhs = Array.copy st.w_rhs;
    w_basis = Array.copy st.w_basis;
    w_pos = Array.copy st.w_pos;
    w_xb = Array.copy st.w_xb;
    w_factor = None;  (* rebuilt lazily; cheaper than deep-copying *)
    w_xb_dirty = true;
  }

let append arr x = Array.append arr [| x |]

let add_row st arow brhs =
  if Array.length arow <> st.w_nv then invalid_arg "Simplex.add_row: bad row length";
  let i = st.w_m in
  st.w_rows <- append st.w_rows (Array.copy arow);
  st.w_rhs <- append st.w_rhs brhs;
  st.w_basis <- append st.w_basis (st.w_nv + i);
  st.w_pos <- append st.w_pos i;
  st.w_xb <- append st.w_xb Q.zero;
  st.w_m <- i + 1;
  st.w_factor <- None;
  st.w_xb_dirty <- true;
  i

let set_rhs st i brhs =
  if i < 0 || i >= st.w_m then invalid_arg "Simplex.set_rhs: bad row";
  st.w_rhs.(i) <- brhs;
  st.w_xb_dirty <- true

let wcol st j =
  let m = st.w_m in
  if j < st.w_nv then Array.init m (fun i -> st.w_rows.(i).(j))
  else begin
    let c = Array.make m Q.zero in
    c.(j - st.w_nv) <- Q.one;
    c
  end

let ensure_factor st =
  match st.w_factor with
  | Some f -> f
  | None ->
      let f = Factor.refactor ~m:st.w_m ~col:(fun k -> wcol st st.w_basis.(k)) in
      st.w_factor <- Some f;
      f

let refresh_xb st =
  if st.w_xb_dirty then begin
    let f = ensure_factor st in
    st.w_xb <- Factor.ftran f st.w_rhs;
    st.w_xb_dirty <- false
  end

(* Replace the basis column at [slot] by column [e] whose FTRAN is [z];
   shared by the dual pivot and the drop_rows surgery. *)
let replace_basis st ~slot ~e ~z =
  let f = ensure_factor st in
  st.w_pos.(st.w_basis.(slot)) <- -1;
  st.w_pos.(e) <- slot;
  st.w_basis.(slot) <- e;
  Factor.update f ~row:slot ~colz:z;
  if f.Factor.n_etas >= !refactor_interval then
    st.w_factor <- Some (Factor.refactor ~m:st.w_m ~col:(fun k -> wcol st st.w_basis.(k)))

let drop_rows st ~keep =
  if st.w_m > 0 then begin
    let m = st.w_m and nv = st.w_nv in
    let doomed = Array.init m (fun i -> not (keep i)) in
    if Array.exists Fun.id doomed then begin
      (* 1. Pivot every doomed row's slack into the basis, so the (row,
         slack) pairs can be deleted without losing basis regularity.
         A slot with a nonzero FTRAN entry whose column is not itself a
         doomed slack always exists (a unit vector cannot be a
         combination of *other* unit vectors). *)
      for i = 0 to m - 1 do
        if doomed.(i) && st.w_pos.(nv + i) < 0 then begin
          let f = ensure_factor st in
          let u = Array.make m Q.zero in
          u.(i) <- Q.one;
          let z = Factor.ftran f u in
          let slot = ref (-1) in
          (try
             for p = 0 to m - 1 do
               if not (Q.is_zero z.(p)) then begin
                 let c = st.w_basis.(p) in
                 let c_is_doomed_slack = c >= nv && doomed.(c - nv) in
                 if not c_is_doomed_slack then begin
                   slot := p;
                   raise Exit
                 end
               end
             done
           with Exit -> ());
          if !slot < 0 then failwith "Simplex.drop_rows: singular surgery";
          replace_basis st ~slot:!slot ~e:(nv + i) ~z
        end
      done;
      (* 2. Compact rows, rhs and basis; renumber slack columns. *)
      let rowmap = Array.make m (-1) in
      let n' = ref 0 in
      for i = 0 to m - 1 do
        if not doomed.(i) then begin
          rowmap.(i) <- !n';
          incr n'
        end
      done;
      let m' = !n' in
      let rows' = Array.make m' [||] and rhs' = Array.make m' Q.zero in
      for i = 0 to m - 1 do
        if rowmap.(i) >= 0 then begin
          rows'.(rowmap.(i)) <- st.w_rows.(i);
          rhs'.(rowmap.(i)) <- st.w_rhs.(i)
        end
      done;
      let basis' = Array.make m' 0 in
      let k' = ref 0 in
      for k = 0 to m - 1 do
        let c = st.w_basis.(k) in
        let drop_slot = c >= nv && doomed.(c - nv) in
        if not drop_slot then begin
          basis'.(!k') <- (if c < nv then c else nv + rowmap.(c - nv));
          incr k'
        end
      done;
      assert (!k' = m');
      let pos' = Array.make (nv + m') (-1) in
      Array.iteri (fun k c -> pos'.(c) <- k) basis';
      st.w_m <- m';
      st.w_rows <- rows';
      st.w_rhs <- rhs';
      st.w_basis <- basis';
      st.w_pos <- pos';
      st.w_xb <- Array.make m' Q.zero;
      st.w_factor <- None;
      st.w_xb_dirty <- true
    end
  end

let solve st =
  counters.warm_solves <- counters.warm_solves + 1;
  if st.w_m = 0 then Feasible (Array.make st.w_nv Q.zero)
  else begin
    let nv = st.w_nv in
    refresh_xb st;
    let result = ref None in
    let pivots = ref 0 in
    while !result = None do
      if !pivots > !max_pivots then result := Some Unknown
      else begin
        let m = st.w_m in
        (* Leaving: Bland least-index among bound-violated basics (only
           slacks have bounds; structurals are free and never leave). *)
        let best_var = ref max_int and best_slot = ref (-1) in
        for k = 0 to m - 1 do
          let c = st.w_basis.(k) in
          if c >= nv && Q.sign st.w_xb.(k) < 0 && c < !best_var then begin
            best_var := c;
            best_slot := k
          end
        done;
        if !best_slot < 0 then begin
          let x = Array.make nv Q.zero in
          for k = 0 to m - 1 do
            if st.w_basis.(k) < nv then x.(st.w_basis.(k)) <- st.w_xb.(k)
          done;
          result := Some (Feasible x)
        end
        else begin
          let r = !best_slot in
          let f = ensure_factor st in
          let u = Array.make m Q.zero in
          u.(r) <- Q.one;
          let w = Factor.btran f u in
          (* Entering: Bland least column index among the eligible —
             any free structural with a nonzero pivot-row entry, then
             any nonbasic slack with a negative one. *)
          let entering = ref (-1) in
          (try
             for j = 0 to nv - 1 do
               if st.w_pos.(j) < 0 then begin
                 let alpha = ref Q.zero in
                 for i = 0 to m - 1 do
                   if not (Q.is_zero w.(i)) && not (Q.is_zero st.w_rows.(i).(j)) then
                     alpha := Q.add !alpha (Q.mul w.(i) st.w_rows.(i).(j))
                 done;
                 if Q.sign !alpha <> 0 then begin
                   entering := j;
                   raise Exit
                 end
               end
             done;
             for i = 0 to m - 1 do
               if st.w_pos.(nv + i) < 0 && Q.sign w.(i) < 0 then begin
                 entering := nv + i;
                 raise Exit
               end
             done
           with Exit -> ());
          if !entering < 0 then
            (* Row r is a Farkas certificate: e_r B^-1 A >= 0 on every
               column yet its basic value is negative. *)
            result := Some Infeasible
          else begin
            let e = !entering in
            let z = Factor.ftran f (wcol st e) in
            let theta = Q.div st.w_xb.(r) z.(r) in
            for i = 0 to m - 1 do
              if i <> r && not (Q.is_zero z.(i)) then
                st.w_xb.(i) <- Q.sub st.w_xb.(i) (Q.mul z.(i) theta)
            done;
            st.w_xb.(r) <- theta;
            replace_basis st ~slot:r ~e ~z;
            counters.dual_pivots <- counters.dual_pivots + 1;
            incr pivots
          end
        end
      end
    done;
    match !result with Some r -> r | None -> Unknown
  end
