(* Active-set LP polynomial fitting; see the .mli for the layering. *)

module Q = Rational
module F = Oracle.Bigfloat

type constr = { r : float; lo : float; hi : float; lo_open : bool; hi_open : bool }

let max_active = ref 40

(* Strict sides for the weak-inequality simplex: shift the bound inward
   by an exact rational epsilon, 2^-53 of the interval width.  Exact (no
   float rounding anywhere), positive whenever the interval has any
   width, and far too small to cost the LP a usable solution; a
   zero-width interval with an open side is empty and is rejected by the
   same guard as lo > hi. *)
let strict_eps lo hi = Q.mul_pow2 (Q.sub (Q.of_float hi) (Q.of_float lo)) (-53)

(* RHS of the "row <= hi" inequality. *)
let rhs_hi ~lo ~hi ~hi_open =
  let q = Q.of_float hi in
  if hi_open then Q.sub q (strict_eps lo hi) else q

(* RHS of the "-row <= -lo" inequality. *)
let rhs_lo ~lo ~hi ~lo_open =
  let q = Q.of_float lo in
  Q.neg (if lo_open then Q.add q (strict_eps lo hi) else q)

(* An interval is empty when inverted, or degenerate with a strict
   side. *)
let empty_constr c = c.lo > c.hi || (c.lo = c.hi && (c.lo_open || c.hi_open))

(* q^e for small e, exactly. *)
let qpow q e = Q.make (Bigint.pow (Q.num q) e) (Bigint.pow (Q.den q) e)

(* Round a rational to at most 64 significant bits (dyadic): keeps
   simplex minors narrow.  64 bits matters: the LP's view of P(r) then
   differs from the double Horner evaluation by well under one double
   ulp of the result, so when the LP parks its vertex on a constraint
   edge, rounding the coefficients to double is symmetric noise that
   search-and-refine resolves in a few steps.  A coarser view would bias
   the rounding to the same side every time and the refine loop would
   chase the edge forever. *)
let round64 q = if Q.is_zero q then q else F.to_rational (F.of_rational ~prec:64 q)

let eval_exact ~terms coeffs x =
  let qx = Q.of_float x in
  let acc = ref Q.zero in
  Array.iteri (fun i e -> acc := Q.add !acc (Q.mul coeffs.(i) (qpow qx e))) terms;
  !acc

let fit_cold ~pin ~terms cons =
  let m = Array.length cons in
  let nt = Array.length terms in
  let npin = Array.length pin in
  if npin > nt then invalid_arg "Polyfit.fit: more pinned coefficients than terms";
  if m = 0 then
    Some (Array.init nt (fun j -> if j < npin then Q.of_float pin.(j) else Q.zero))
  else begin
    (* Empty interval anywhere: no polynomial can exist. *)
    if Array.exists empty_constr cons then None
    else begin
      (* Variable scaling: bring the largest |r| near 1. *)
      let rmax = Array.fold_left (fun acc c -> Float.max acc (Float.abs c.r)) 0.0 cons in
      let sigma = if rmax = 0.0 then 0 else -snd (Float.frexp rmax) in
      (* LP view of each constraint: rounded powers of the scaled input. *)
      let row_of i =
        let c = cons.(i) in
        let qr = Q.mul_pow2 (Q.of_float c.r) sigma in
        Array.map (fun e -> round64 (qpow qr e)) terms
      in
      let rows = Array.init m row_of in
      let lo i =
        let c = cons.(i) in
        rhs_lo ~lo:c.lo ~hi:c.hi ~lo_open:c.lo_open
      and hi i =
        let c = cons.(i) in
        rhs_hi ~lo:c.lo ~hi:c.hi ~hi_open:c.hi_open
      in
      (* Double-precision view of the rows for the full-set violation
         scan.  Exactness is not needed there: the caller re-validates
         every candidate in double against the true intervals
         (Algorithm 4's Check), so a borderline miss only costs one more
         counterexample round — while an exact scan over thousands of
         constraints with fat simplex rationals dominates generation
         time. *)
      let rows_f = Array.map (Array.map Q.to_float) rows in
      let violation coeffs_f i =
        let v = ref 0.0 in
        Array.iteri (fun j _ -> v := !v +. (coeffs_f.(j) *. rows_f.(i).(j))) terms;
        let v = !v in
        if v < cons.(i).lo then cons.(i).lo -. v
        else if v > cons.(i).hi then v -. cons.(i).hi
        else 0.0
      in
      (* Initial active set: an even spread, always including both ends. *)
      let init_size = Stdlib.min m ((3 * nt) + 2) in
      let active = Hashtbl.create 64 in
      for k = 0 to init_size - 1 do
        Hashtbl.replace active (k * (m - 1) / Stdlib.max 1 (init_size - 1)) ()
      done;
      let solve_active () =
        let idx = Hashtbl.fold (fun i () acc -> i :: acc) active [] |> List.sort compare in
        let k = List.length idx in
        let nr = (2 * k) + (2 * npin) in
        let a = Array.make_matrix nr nt Q.zero in
        let b = Array.make nr Q.zero in
        List.iteri
          (fun p i ->
            (* row <= hi  and  -row <= -lo *)
            Array.iteri
              (fun j v ->
                a.(p).(j) <- v;
                a.(k + p).(j) <- Q.neg v)
              rows.(i);
            b.(p) <- hi i;
            b.(k + p) <- lo i)
          idx;
        (* Pinned prefix: an equality pair per pinned coefficient, fixing
           the *scaled* variable c'_j to pin_j * 2^(-t_j*sigma) so the
           unscaling below restores exactly the pinned double (both
           directions are exact dyadic arithmetic). *)
        for j = 0 to npin - 1 do
          let p = Q.mul_pow2 (Q.of_float pin.(j)) (-(terms.(j) * sigma)) in
          a.((2 * k) + (2 * j)).(j) <- Q.one;
          b.((2 * k) + (2 * j)) <- p;
          a.((2 * k) + (2 * j) + 1).(j) <- Q.neg Q.one;
          b.((2 * k) + (2 * j) + 1) <- Q.neg p
        done;
        Simplex.feasible ~a ~b
      in
      let rec loop rounds =
        if rounds > 60 || Hashtbl.length active > !max_active then None
        else begin
          match solve_active () with
          | Simplex.Infeasible | Simplex.Unknown -> None
          | Simplex.Feasible coeffs -> (
              (* Gather the worst violations over the full set. *)
              let coeffs_f = Array.map Q.to_float coeffs in
              let viols = ref [] in
              for i = 0 to m - 1 do
                if not (Hashtbl.mem active i) then begin
                  let v = violation coeffs_f i in
                  if v > 0.0 then viols := (v, i) :: !viols
                end
              done;
              match !viols with
              | [] ->
                  (* Undo the variable scaling: c_j <- c_j * 2^(e_j*sigma). *)
                  Some (Array.mapi (fun j c -> Q.mul_pow2 c (terms.(j) * sigma)) coeffs)
              | vs ->
                  let vs = List.sort (fun ((a : float), _) (b, _) -> compare b a) vs in
                  List.iteri (fun k (_, i) -> if k < 16 then Hashtbl.replace active i ()) vs;
                  loop (rounds + 1))
        end
      in
      loop 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Warm-started sessions.                                              *)
(*                                                                     *)
(* A session keeps the LP active set alive *between* fit calls as a     *)
(* Simplex.state: Algorithm 4's counterexample loop refits the same     *)
(* constraint family round after round, each time with a few more       *)
(* constraints (counterexamples) and slightly moved bounds              *)
(* (search-and-refine, tube rungs).  Instead of rebuilding and          *)
(* re-solving the active-set LP from scratch, the session syncs the     *)
(* live rows to the new call (drop vanished inputs, retarget bounds,    *)
(* append fresh counterexamples) and lets the dual simplex repair the   *)
(* previous basis.  Exact constraint rows are cached per reduced input, *)
(* so the per-call row-building cost — bigfloat powers over the whole   *)
(* constraint set — is paid once per input instead of once per round.   *)
(*                                                                     *)
(* Warm fits agree with cold fits on sat/unsat (both sides of the       *)
(* simplex are exact) but may park on a different vertex, so warm mode  *)
(* is opt-in (Config.lp_warm) and the cold path stays the default and   *)
(* the differential reference.                                          *)
(* ------------------------------------------------------------------ *)

type inner = {
  i_terms : int array;
  i_sigma : int;  (* scaling exponent, pinned at session build *)
  i_pin : int64 array;  (* pinned-prefix signature (coefficient bits) *)
  i_npin : int;  (* pin rows occupy simplex rows 0 .. 2*i_npin-1, always kept *)
  i_state : Simplex.state;
  mutable i_keys : (int64, int * int) Hashtbl.t;
      (* reduced-input bits -> (row index of "<= hi", row index of "<= -lo") *)
  i_rows : (int64, Q.t array) Hashtbl.t;  (* exact scaled constraint rows *)
  i_rows_f : (int64, float array) Hashtbl.t;  (* double view for the scan *)
}

type session = { mutable inner : inner option }

let new_session () = { inner = None }

let clone_session s =
  match s.inner with
  | None -> { inner = None }
  | Some inn ->
      {
        inner =
          Some
            {
              inn with
              i_state = Simplex.copy inn.i_state;
              i_keys = Hashtbl.copy inn.i_keys;
              i_rows = Hashtbl.copy inn.i_rows;
              i_rows_f = Hashtbl.copy inn.i_rows_f;
            };
      }

let fit_warm s ~pin ~terms cons =
  let m = Array.length cons in
  let nt = Array.length terms in
  let npin = Array.length pin in
  if npin > nt then invalid_arg "Polyfit.fit: more pinned coefficients than terms";
  let pin_sig = Array.map Int64.bits_of_float pin in
  if m = 0 then
    Some (Array.init nt (fun j -> if j < npin then Q.of_float pin.(j) else Q.zero))
  else if Array.exists empty_constr cons then None
  else begin
    let rmax = Array.fold_left (fun acc c -> Float.max acc (Float.abs c.r)) 0.0 cons in
    let sigma_now = if rmax = 0.0 then 0 else -snd (Float.frexp rmax) in
    let inn =
      match s.inner with
      | Some inn
        when inn.i_terms = terms && abs (inn.i_sigma - sigma_now) <= 4 && inn.i_pin = pin_sig ->
          (* Same structure, pin and domain scale within a few octaves of
             the pinned one: the cached rows stay well-conditioned. *)
          inn
      | _ ->
          let inn =
            {
              i_terms = Array.copy terms;
              i_sigma = sigma_now;
              i_pin = pin_sig;
              i_npin = npin;
              i_state = Simplex.create ~nv:nt;
              i_keys = Hashtbl.create 64;
              i_rows = Hashtbl.create 256;
              i_rows_f = Hashtbl.create 256;
            }
          in
          (* Pin rows go in first (rows 0 .. 2*npin-1) and are never
             dropped, so their indices survive every renumbering. *)
          for j = 0 to npin - 1 do
            let p = Q.mul_pow2 (Q.of_float pin.(j)) (-(terms.(j) * sigma_now)) in
            let row = Array.make nt Q.zero in
            row.(j) <- Q.one;
            ignore (Simplex.add_row inn.i_state row p);
            let nrow = Array.make nt Q.zero in
            nrow.(j) <- Q.neg Q.one;
            ignore (Simplex.add_row inn.i_state nrow (Q.neg p))
          done;
          s.inner <- Some inn;
          inn
    in
    let key_of r = Int64.bits_of_float r in
    (* Current bounds per reduced input (with strictness flags);
       duplicates intersect, which is what duplicate LP rows would
       enforce anyway — on a tied bound an open side wins. *)
    let bounds = Hashtbl.create (2 * m) in
    Array.iter
      (fun c ->
        let k = key_of c.r in
        match Hashtbl.find_opt bounds k with
        | None -> Hashtbl.replace bounds k (c.lo, c.lo_open, c.hi, c.hi_open)
        | Some (l, lop, h, hop) ->
            let l, lop =
              if c.lo > l then (c.lo, c.lo_open)
              else if c.lo < l then (l, lop)
              else (l, lop || c.lo_open)
            in
            let h, hop =
              if c.hi < h then (c.hi, c.hi_open)
              else if c.hi > h then (h, hop)
              else (h, hop || c.hi_open)
            in
            Hashtbl.replace bounds k (l, lop, h, hop))
      cons;
    let exact_row k =
      match Hashtbl.find_opt inn.i_rows k with
      | Some r -> r
      | None ->
          let qr = Q.mul_pow2 (Q.of_float (Int64.float_of_bits k)) inn.i_sigma in
          let row = Array.map (fun e -> round64 (qpow qr e)) terms in
          Hashtbl.replace inn.i_rows k row;
          Hashtbl.replace inn.i_rows_f k (Array.map Q.to_float row);
          row
    in
    let float_row k =
      ignore (exact_row k);
      Hashtbl.find inn.i_rows_f k
    in
    (* Sync 1: drop live rows whose reduced input vanished from this
       call (stale bounds from another rung would over-constrain). *)
    if Hashtbl.length inn.i_keys > 0 then begin
      let nr = Simplex.nrows inn.i_state in
      let keep = Array.make nr false in
      for i = 0 to (2 * inn.i_npin) - 1 do
        keep.(i) <- true
      done;
      Hashtbl.iter
        (fun k (ih, il) ->
          if Hashtbl.mem bounds k then begin
            keep.(ih) <- true;
            keep.(il) <- true
          end)
        inn.i_keys;
      if Array.exists not keep then begin
        Simplex.drop_rows inn.i_state ~keep:(fun i -> keep.(i));
        let newidx = Array.make nr (-1) in
        let c = ref 0 in
        for i = 0 to nr - 1 do
          if keep.(i) then begin
            newidx.(i) <- !c;
            incr c
          end
        done;
        let keys' = Hashtbl.create 64 in
        Hashtbl.iter
          (fun k (ih, il) ->
            if keep.(ih) then Hashtbl.replace keys' k (newidx.(ih), newidx.(il)))
          inn.i_keys;
        inn.i_keys <- keys'
      end
    end;
    (* Sync 2: retarget every surviving row to this call's bounds (the
       strict-side epsilon shift applies identically to warm rows). *)
    Hashtbl.iter
      (fun k (ih, il) ->
        let lo, lo_open, hi, hi_open = Hashtbl.find bounds k in
        Simplex.set_rhs inn.i_state ih (rhs_hi ~lo ~hi ~hi_open);
        Simplex.set_rhs inn.i_state il (rhs_lo ~lo ~hi ~lo_open))
      inn.i_keys;
    let add_key k =
      if not (Hashtbl.mem inn.i_keys k) then begin
        let row = exact_row k in
        let lo, lo_open, hi, hi_open = Hashtbl.find bounds k in
        let ih = Simplex.add_row inn.i_state row (rhs_hi ~lo ~hi ~hi_open) in
        let il = Simplex.add_row inn.i_state (Array.map Q.neg row) (rhs_lo ~lo ~hi ~lo_open) in
        Hashtbl.replace inn.i_keys k (ih, il)
      end
    in
    (* Fresh session: seed with the cold path's even spread. *)
    if Hashtbl.length inn.i_keys = 0 then begin
      let init_size = Stdlib.min m ((3 * nt) + 2) in
      for p = 0 to init_size - 1 do
        add_key (key_of cons.(p * (m - 1) / Stdlib.max 1 (init_size - 1)).r)
      done
    end;
    let violation coeffs_f i =
      let rf = float_row (key_of cons.(i).r) in
      let v = ref 0.0 in
      Array.iteri (fun j _ -> v := !v +. (coeffs_f.(j) *. rf.(j))) terms;
      let v = !v in
      if v < cons.(i).lo then cons.(i).lo -. v
      else if v > cons.(i).hi then v -. cons.(i).hi
      else 0.0
    in
    let rec loop rounds =
      if rounds > 60 || Simplex.nrows inn.i_state > 2 * !max_active then None
      else begin
        match Simplex.solve inn.i_state with
        | Simplex.Infeasible -> None
        | Simplex.Unknown ->
            (* Repair stalled at the pivot cap: retry from scratch. *)
            Simplex.(counters.warm_fallbacks <- counters.warm_fallbacks + 1);
            fit_cold ~pin ~terms cons
        | Simplex.Feasible coeffs -> (
            let coeffs_f = Array.map Q.to_float coeffs in
            let viols = ref [] in
            for i = 0 to m - 1 do
              let k = key_of cons.(i).r in
              if not (Hashtbl.mem inn.i_keys k) then begin
                let v = violation coeffs_f i in
                if v > 0.0 then viols := (v, k) :: !viols
              end
            done;
            match !viols with
            | [] -> Some (Array.mapi (fun j c -> Q.mul_pow2 c (terms.(j) * inn.i_sigma)) coeffs)
            | vs ->
                let vs = List.sort (fun ((a : float), _) (b, _) -> compare b a) vs in
                List.iteri (fun p (_, k) -> if p < 16 then add_key k) vs;
                loop (rounds + 1))
      end
    in
    loop 0
  end

let fit ?session ?(pin = [||]) ~terms cons =
  match session with None -> fit_cold ~pin ~terms cons | Some s -> fit_warm s ~pin ~terms cons
