(* Active-set LP polynomial fitting; see the .mli for the layering. *)

module Q = Rational
module F = Oracle.Bigfloat

type constr = { r : float; lo : float; hi : float }

let max_active = ref 40

(* q^e for small e, exactly. *)
let qpow q e = Q.make (Bigint.pow (Q.num q) e) (Bigint.pow (Q.den q) e)

(* Round a rational to at most 64 significant bits (dyadic): keeps
   simplex minors narrow.  64 bits matters: the LP's view of P(r) then
   differs from the double Horner evaluation by well under one double
   ulp of the result, so when the LP parks its vertex on a constraint
   edge, rounding the coefficients to double is symmetric noise that
   search-and-refine resolves in a few steps.  A coarser view would bias
   the rounding to the same side every time and the refine loop would
   chase the edge forever. *)
let round64 q = if Q.is_zero q then q else F.to_rational (F.of_rational ~prec:64 q)

let eval_exact ~terms coeffs x =
  let qx = Q.of_float x in
  let acc = ref Q.zero in
  Array.iteri (fun i e -> acc := Q.add !acc (Q.mul coeffs.(i) (qpow qx e))) terms;
  !acc

let fit_cold ~terms cons =
  let m = Array.length cons in
  let nt = Array.length terms in
  if m = 0 then Some (Array.make nt Q.zero)
  else begin
    (* Empty interval anywhere: no polynomial can exist. *)
    if Array.exists (fun c -> c.lo > c.hi) cons then None
    else begin
      (* Variable scaling: bring the largest |r| near 1. *)
      let rmax = Array.fold_left (fun acc c -> Float.max acc (Float.abs c.r)) 0.0 cons in
      let sigma = if rmax = 0.0 then 0 else -snd (Float.frexp rmax) in
      (* LP view of each constraint: rounded powers of the scaled input. *)
      let row_of i =
        let c = cons.(i) in
        let qr = Q.mul_pow2 (Q.of_float c.r) sigma in
        Array.map (fun e -> round64 (qpow qr e)) terms
      in
      let rows = Array.init m row_of in
      let lo i = Q.of_float cons.(i).lo and hi i = Q.of_float cons.(i).hi in
      (* Double-precision view of the rows for the full-set violation
         scan.  Exactness is not needed there: the caller re-validates
         every candidate in double against the true intervals
         (Algorithm 4's Check), so a borderline miss only costs one more
         counterexample round — while an exact scan over thousands of
         constraints with fat simplex rationals dominates generation
         time. *)
      let rows_f = Array.map (Array.map Q.to_float) rows in
      let violation coeffs_f i =
        let v = ref 0.0 in
        Array.iteri (fun j _ -> v := !v +. (coeffs_f.(j) *. rows_f.(i).(j))) terms;
        let v = !v in
        if v < cons.(i).lo then cons.(i).lo -. v
        else if v > cons.(i).hi then v -. cons.(i).hi
        else 0.0
      in
      (* Initial active set: an even spread, always including both ends. *)
      let init_size = Stdlib.min m ((3 * nt) + 2) in
      let active = Hashtbl.create 64 in
      for k = 0 to init_size - 1 do
        Hashtbl.replace active (k * (m - 1) / Stdlib.max 1 (init_size - 1)) ()
      done;
      let solve_active () =
        let idx = Hashtbl.fold (fun i () acc -> i :: acc) active [] |> List.sort compare in
        let k = List.length idx in
        let a = Array.make_matrix (2 * k) nt Q.zero in
        let b = Array.make (2 * k) Q.zero in
        List.iteri
          (fun p i ->
            (* row <= hi  and  -row <= -lo *)
            Array.iteri
              (fun j v ->
                a.(p).(j) <- v;
                a.(k + p).(j) <- Q.neg v)
              rows.(i);
            b.(p) <- hi i;
            b.(k + p) <- Q.neg (lo i))
          idx;
        Simplex.feasible ~a ~b
      in
      let rec loop rounds =
        if rounds > 60 || Hashtbl.length active > !max_active then None
        else begin
          match solve_active () with
          | Simplex.Infeasible | Simplex.Unknown -> None
          | Simplex.Feasible coeffs -> (
              (* Gather the worst violations over the full set. *)
              let coeffs_f = Array.map Q.to_float coeffs in
              let viols = ref [] in
              for i = 0 to m - 1 do
                if not (Hashtbl.mem active i) then begin
                  let v = violation coeffs_f i in
                  if v > 0.0 then viols := (v, i) :: !viols
                end
              done;
              match !viols with
              | [] ->
                  (* Undo the variable scaling: c_j <- c_j * 2^(e_j*sigma). *)
                  Some (Array.mapi (fun j c -> Q.mul_pow2 c (terms.(j) * sigma)) coeffs)
              | vs ->
                  let vs = List.sort (fun ((a : float), _) (b, _) -> compare b a) vs in
                  List.iteri (fun k (_, i) -> if k < 16 then Hashtbl.replace active i ()) vs;
                  loop (rounds + 1))
        end
      in
      loop 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Warm-started sessions.                                              *)
(*                                                                     *)
(* A session keeps the LP active set alive *between* fit calls as a     *)
(* Simplex.state: Algorithm 4's counterexample loop refits the same     *)
(* constraint family round after round, each time with a few more       *)
(* constraints (counterexamples) and slightly moved bounds              *)
(* (search-and-refine, tube rungs).  Instead of rebuilding and          *)
(* re-solving the active-set LP from scratch, the session syncs the     *)
(* live rows to the new call (drop vanished inputs, retarget bounds,    *)
(* append fresh counterexamples) and lets the dual simplex repair the   *)
(* previous basis.  Exact constraint rows are cached per reduced input, *)
(* so the per-call row-building cost — bigfloat powers over the whole   *)
(* constraint set — is paid once per input instead of once per round.   *)
(*                                                                     *)
(* Warm fits agree with cold fits on sat/unsat (both sides of the       *)
(* simplex are exact) but may park on a different vertex, so warm mode  *)
(* is opt-in (Config.lp_warm) and the cold path stays the default and   *)
(* the differential reference.                                          *)
(* ------------------------------------------------------------------ *)

type inner = {
  i_terms : int array;
  i_sigma : int;  (* scaling exponent, pinned at session build *)
  i_state : Simplex.state;
  mutable i_keys : (int64, int * int) Hashtbl.t;
      (* reduced-input bits -> (row index of "<= hi", row index of "<= -lo") *)
  i_rows : (int64, Q.t array) Hashtbl.t;  (* exact scaled constraint rows *)
  i_rows_f : (int64, float array) Hashtbl.t;  (* double view for the scan *)
}

type session = { mutable inner : inner option }

let new_session () = { inner = None }

let clone_session s =
  match s.inner with
  | None -> { inner = None }
  | Some inn ->
      {
        inner =
          Some
            {
              inn with
              i_state = Simplex.copy inn.i_state;
              i_keys = Hashtbl.copy inn.i_keys;
              i_rows = Hashtbl.copy inn.i_rows;
              i_rows_f = Hashtbl.copy inn.i_rows_f;
            };
      }

let fit_warm s ~terms cons =
  let m = Array.length cons in
  let nt = Array.length terms in
  if m = 0 then Some (Array.make nt Q.zero)
  else if Array.exists (fun c -> c.lo > c.hi) cons then None
  else begin
    let rmax = Array.fold_left (fun acc c -> Float.max acc (Float.abs c.r)) 0.0 cons in
    let sigma_now = if rmax = 0.0 then 0 else -snd (Float.frexp rmax) in
    let inn =
      match s.inner with
      | Some inn when inn.i_terms = terms && abs (inn.i_sigma - sigma_now) <= 4 ->
          (* Same structure, domain scale within a few octaves of the
             pinned one: the cached rows stay well-conditioned. *)
          inn
      | _ ->
          let inn =
            {
              i_terms = Array.copy terms;
              i_sigma = sigma_now;
              i_state = Simplex.create ~nv:nt;
              i_keys = Hashtbl.create 64;
              i_rows = Hashtbl.create 256;
              i_rows_f = Hashtbl.create 256;
            }
          in
          s.inner <- Some inn;
          inn
    in
    let key_of r = Int64.bits_of_float r in
    (* Current bounds per reduced input; duplicates intersect, which is
       what duplicate LP rows would enforce anyway. *)
    let bounds = Hashtbl.create (2 * m) in
    Array.iter
      (fun c ->
        let k = key_of c.r in
        match Hashtbl.find_opt bounds k with
        | None -> Hashtbl.replace bounds k (c.lo, c.hi)
        | Some (l, h) -> Hashtbl.replace bounds k (Float.max l c.lo, Float.min h c.hi))
      cons;
    let exact_row k =
      match Hashtbl.find_opt inn.i_rows k with
      | Some r -> r
      | None ->
          let qr = Q.mul_pow2 (Q.of_float (Int64.float_of_bits k)) inn.i_sigma in
          let row = Array.map (fun e -> round64 (qpow qr e)) terms in
          Hashtbl.replace inn.i_rows k row;
          Hashtbl.replace inn.i_rows_f k (Array.map Q.to_float row);
          row
    in
    let float_row k =
      ignore (exact_row k);
      Hashtbl.find inn.i_rows_f k
    in
    (* Sync 1: drop live rows whose reduced input vanished from this
       call (stale bounds from another rung would over-constrain). *)
    if Hashtbl.length inn.i_keys > 0 then begin
      let nr = Simplex.nrows inn.i_state in
      let keep = Array.make nr false in
      Hashtbl.iter
        (fun k (ih, il) ->
          if Hashtbl.mem bounds k then begin
            keep.(ih) <- true;
            keep.(il) <- true
          end)
        inn.i_keys;
      if Array.exists not keep then begin
        Simplex.drop_rows inn.i_state ~keep:(fun i -> keep.(i));
        let newidx = Array.make nr (-1) in
        let c = ref 0 in
        for i = 0 to nr - 1 do
          if keep.(i) then begin
            newidx.(i) <- !c;
            incr c
          end
        done;
        let keys' = Hashtbl.create 64 in
        Hashtbl.iter
          (fun k (ih, il) ->
            if keep.(ih) then Hashtbl.replace keys' k (newidx.(ih), newidx.(il)))
          inn.i_keys;
        inn.i_keys <- keys'
      end
    end;
    (* Sync 2: retarget every surviving row to this call's bounds. *)
    Hashtbl.iter
      (fun k (ih, il) ->
        let lo, hi = Hashtbl.find bounds k in
        Simplex.set_rhs inn.i_state ih (Q.of_float hi);
        Simplex.set_rhs inn.i_state il (Q.neg (Q.of_float lo)))
      inn.i_keys;
    let add_key k =
      if not (Hashtbl.mem inn.i_keys k) then begin
        let row = exact_row k in
        let lo, hi = Hashtbl.find bounds k in
        let ih = Simplex.add_row inn.i_state row (Q.of_float hi) in
        let il = Simplex.add_row inn.i_state (Array.map Q.neg row) (Q.neg (Q.of_float lo)) in
        Hashtbl.replace inn.i_keys k (ih, il)
      end
    in
    (* Fresh session: seed with the cold path's even spread. *)
    if Hashtbl.length inn.i_keys = 0 then begin
      let init_size = Stdlib.min m ((3 * nt) + 2) in
      for p = 0 to init_size - 1 do
        add_key (key_of cons.(p * (m - 1) / Stdlib.max 1 (init_size - 1)).r)
      done
    end;
    let violation coeffs_f i =
      let rf = float_row (key_of cons.(i).r) in
      let v = ref 0.0 in
      Array.iteri (fun j _ -> v := !v +. (coeffs_f.(j) *. rf.(j))) terms;
      let v = !v in
      if v < cons.(i).lo then cons.(i).lo -. v
      else if v > cons.(i).hi then v -. cons.(i).hi
      else 0.0
    in
    let rec loop rounds =
      if rounds > 60 || Simplex.nrows inn.i_state > 2 * !max_active then None
      else begin
        match Simplex.solve inn.i_state with
        | Simplex.Infeasible -> None
        | Simplex.Unknown ->
            (* Repair stalled at the pivot cap: retry from scratch. *)
            Simplex.(counters.warm_fallbacks <- counters.warm_fallbacks + 1);
            fit_cold ~terms cons
        | Simplex.Feasible coeffs -> (
            let coeffs_f = Array.map Q.to_float coeffs in
            let viols = ref [] in
            for i = 0 to m - 1 do
              let k = key_of cons.(i).r in
              if not (Hashtbl.mem inn.i_keys k) then begin
                let v = violation coeffs_f i in
                if v > 0.0 then viols := (v, k) :: !viols
              end
            done;
            match !viols with
            | [] -> Some (Array.mapi (fun j c -> Q.mul_pow2 c (terms.(j) * inn.i_sigma)) coeffs)
            | vs ->
                let vs = List.sort (fun ((a : float), _) (b, _) -> compare b a) vs in
                List.iteri (fun p (_, k) -> if p < 16 then add_key k) vs;
                loop (rounds + 1))
      end
    in
    loop 0
  end

let fit ?session ~terms cons =
  match session with None -> fit_cold ~terms cons | Some s -> fit_warm s ~terms cons
