(** Exact rational feasibility solver — revised simplex over a
    factorized basis, with a warm-startable incremental interface.

    This is the LP kernel of the reproduction's SoPlex substitute: the
    paper's `GetCoeffsUsingLP` (§3.4) asks only for *a* feasible point of
    the system [l <= P(r_i) <= h_i], so the solver exposes feasibility of
    [A x <= b] over free variables.  Arithmetic is exact throughout
    (Bland's rule, so no cycling); an iteration cap turns pathological
    instances into a clean [Unknown].

    Two entry points share the factorized-basis machinery:

    - {!feasible} — a one-shot cold solve.  It replays the retained dense
      two-phase tableau ({!feasible_reference}) pivot for pivot (same
      column order, same Bland entering choice, same division-free ratio
      test and tie-breaks), so its answers — including the returned
      point, not just the verdict — are bit-identical to the reference.
      Only the data structure changed: a basis factorization replaces
      the full m x (2n+m+a) tableau update.
    - {!state} / {!solve} — an incremental system that keeps its basis
      across {!add_row} / {!set_rhs} edits and repairs it with a
      dual-simplex pass instead of re-solving from scratch.  Warm solves
      agree with cold solves on the Feasible/Infeasible verdict (both are
      exact), but may return a different feasible point. *)

type outcome =
  | Feasible of Rational.t array  (** a point satisfying every row *)
  | Infeasible  (** proven: no point exists (exact Farkas certificate) *)
  | Unknown  (** iteration cap hit; treat as "no polynomial found" *)

(** [feasible ~a ~b] decides [exists x. a x <= b] with [x] free.
    [a] is an [m x n] dense matrix (rows of equal length [n]).
    Revised simplex; answers replay {!feasible_reference} exactly.
    @raise Invalid_argument on ragged or empty input. *)
val feasible : a:Rational.t array array -> b:Rational.t array -> outcome

(** The dense two-phase tableau kernel this module grew out of, retained
    verbatim as the differential-test reference and ultimate fallback. *)
val feasible_reference : a:Rational.t array array -> b:Rational.t array -> outcome

(** Pivot cap for a single solve, cold or warm (default 20000). *)
val max_pivots : int ref

(** Refactorize after this many eta updates to the basis factorization
    (default 32): bounds both the eta-file application cost and rational
    entry growth. *)
val refactor_interval : int ref

(** {1 Warm-started incremental interface}

    A {!state} holds rows [a_i x <= b_i] over [nv] free structural
    variables plus one slack per row, and keeps the current basis (and
    its factorization) across edits.  {!solve} runs a dual-simplex
    repair from the current basis: rows appended by {!add_row} and
    right-hand sides moved by {!set_rhs} each leave the basis valid and
    usually a handful of pivots from optimal, which is what makes
    Algorithm 4's grow-and-refine loops cheap. *)

type state

(** [create ~nv] is an empty system over [nv] free variables. *)
val create : nv:int -> state

val nrows : state -> int

(** [add_row st a b] appends the constraint [a x <= b] and returns its
    row index.  The new row's slack enters the basis, so the previous
    basis (and factorization) stays valid.  O(m) bookkeeping; no solve.
    @raise Invalid_argument when [a] has length <> [nv]. *)
val add_row : state -> Rational.t array -> Rational.t -> int

(** [set_rhs st i b] replaces row [i]'s right-hand side.  Loosening and
    tightening are both fine; basic values are refreshed lazily at the
    next {!solve}. *)
val set_rhs : state -> int -> Rational.t -> unit

(** [drop_rows st ~keep] deletes every row [i] with [keep i = false].
    Surviving rows are renumbered compactly in order.  Rows whose slack
    is tight (nonbasic) are first pivoted out of the basis, so the
    retained basis stays nonsingular — this is the sibling-reuse path
    after an Algorithm-3 split, where a child sub-domain keeps the
    parent basis minus the out-of-range rows. *)
val drop_rows : state -> keep:(int -> bool) -> unit

(** Deep copy (shares nothing mutable); the clone can diverge freely. *)
val copy : state -> state

(** [solve st] repairs primal feasibility from the current basis by
    dual simplex (Bland's least-index rule) and returns the verdict.
    [Feasible x] gives the structural point (slacks dropped); [Unknown]
    means the pivot cap was hit — the caller should fall back to a cold
    {!feasible} solve.  The state stays consistent in every case and
    later calls resume where the repair stopped. *)
val solve : state -> outcome

(** {1 Instrumentation}

    Process-wide counters (the LP runs in the generator's sequential
    phase; not domain-safe).  {!Rlibm.Stats} snapshots them around each
    generation run. *)

type counters = {
  mutable cold_solves : int;  (** {!feasible} calls *)
  mutable warm_solves : int;  (** {!solve} calls *)
  mutable primal_pivots : int;  (** phase-1 pivots in cold solves *)
  mutable dual_pivots : int;  (** repair pivots in warm solves *)
  mutable refactorizations : int;  (** basis factorizations built *)
  mutable warm_fallbacks : int;  (** warm [Unknown]s retried cold *)
}

val counters : counters

(** An independent copy of the current counter values. *)
val snapshot : unit -> counters

val reset_counters : unit -> unit
