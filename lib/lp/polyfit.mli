(** Polynomial fitting by linear programming — the paper's
    `GetCoeffsUsingLP` (§3.4).

    Given reduced constraints [(r_i, [l_i, h_i])] and a term structure
    (the exponents present in the polynomial; the paper's "odd", "even"
    or full polynomials), find rational coefficients [c] with
    [l_i <= sum_j c_j * r_i^(t_j) <= h_i] for every sampled constraint.

    Two engineering layers sit between the caller and the simplex
    kernel, both sound with respect to final library correctness because
    every candidate polynomial is re-validated in double over the full
    constraint set by the counterexample loop (Algorithm 4):

    - {b variable scaling}: the reduced input is rescaled by a power of
      two so its powers stay near 1 — the paper's §3.2 observation that
      LP conditioning collapses when the domain mixes very large and
      very small magnitudes;
    - {b entry rounding}: scaled powers are rounded to 64 significant
      bits, keeping simplex pivots on small rationals.

    A constraint side marked open ([lo_open]/[hi_open], from a
    directed-mode or round-to-odd rounding interval) is a strict
    inequality.  The simplex kernel only speaks weak rows, so an open
    side is assembled as the weak row shifted inward by an exact
    rational epsilon of 2^-53 of the interval's width — small enough to
    keep essentially the whole feasible region, exact so the kernel's
    soundness is untouched, and strictly positive so any solution
    satisfies the true strict inequality. *)

type constr = { r : float; lo : float; hi : float; lo_open : bool; hi_open : bool }

(** A warm-start handle for a *family* of related fit calls — one
    sub-domain (or sub-domain lineage) of Algorithm 4.  The session
    keeps the LP active set alive between calls as an incremental
    {!Simplex.state} (previous basis repaired by dual simplex instead of
    re-solved) and caches the exact constraint rows per reduced input.
    Passing the same session for unrelated constraint sets is safe —
    vanished inputs are dropped and bounds are re-synced every call, and
    a term-structure or domain-scale change rebuilds the session — it
    just won't be warm. *)
type session

val new_session : unit -> session

(** Independent deep copy; used to seed a child sub-domain's session
    from its parent's after an Algorithm-3 split. *)
val clone_session : session -> session

(** [fit ~terms cons] returns coefficients (aligned with [terms], as
    exact rationals) of a polynomial satisfying every constraint in the
    LP's rounded view of [cons], or [None] when the LP proves the system
    infeasible / gives up.  [terms] must be strictly increasing
    exponents, e.g. [[|0;1;2;3|]] or [[|1;3;5|]].

    Without [?session] this is the cold path: a fresh active-set LP,
    solved from scratch — deterministic, and the differential reference.
    With [?session] the call is warm-started from the session's live
    basis.  Warm and cold agree on [Some]/[None] (both are exact) but
    may return different coefficient vectors.

    [?pin] fixes the first [Array.length pin] coefficients (aligned with
    [terms]) to exactly the given doubles — the progressive-polynomial
    refit: a certified degree-k prefix stays bit-identical while the LP
    fits only the remaining tail.  Pins are equality rows on the scaled
    variables, exact in both directions, so a [Some] result returns the
    pinned doubles unchanged.  A pin change rebuilds a session (the
    counterexample loop refits the same pin round after round, which is
    where warm reuse pays). *)
val fit :
  ?session:session -> ?pin:float array -> terms:int array -> constr array -> Rational.t array option

(** Evaluate a fitted polynomial (exact coefficients) at a double point,
    exactly. *)
val eval_exact : terms:int array -> Rational.t array -> float -> Rational.t

(** Bound on the active-set size before giving up (default 40): past
    this the exact-rational simplex tableau dominates generation time,
    and a fit needing that many active constraints rarely checks out
    against the full set anyway — splitting the domain is cheaper. *)
val max_active : int ref
