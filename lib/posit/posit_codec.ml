(* Generic posit<n,es> codec (Gustafson's Type III unums), the
   reproduction's SoftPosit substitute.

   A nonzero, non-NaR posit encodes
       (-1)^sign * (1 + frac/2^fb) * 2^(k*2^es + e)
   where the regime field (a run of identical bits) gives k, the next
   [es] bits give e, and the rest is the fraction.  Rounding is round to
   nearest with ties to the even *pattern*, and saturates: no nonzero
   real ever rounds to zero or across maxpos (the paper leans on exactly
   this in Table 2 — repurposed double libms go wrong on posits because
   doubles overflow and underflow where posits saturate). *)

module B = Bigint
module Q = Rational

type params = { n : int; es : int; name : string }

(* Decoded view of a finite nonzero posit. *)
type decoded = { sign : int; scale : int; fb : int; frac : int }

let mask p = (1 lsl p.n) - 1
let nar p = 1 lsl (p.n - 1)
let maxpos p = (1 lsl (p.n - 1)) - 1
let minpos_pat = 1

(* Largest magnitude scale: regime can announce at most k = n-2. *)
let smax p = ((p.n - 2) lsl p.es) + ((1 lsl p.es) - 1)

let classify p pat =
  if pat land mask p = nar p then Fp.Representation.Nan else Fp.Representation.Finite

(* Decode a finite nonzero pattern. *)
let decode p pat =
  let pat = pat land mask p in
  assert (pat <> 0 && pat <> nar p);
  let sign = if pat land nar p = 0 then 1 else -1 in
  let body = if sign < 0 then (1 lsl p.n) - pat else pat in
  (* body in (0, 2^(n-1)); scan the regime run from bit n-2 down. *)
  let r0 = (body lsr (p.n - 2)) land 1 in
  let m = ref 1 in
  while p.n - 2 - !m >= 0 && (body lsr (p.n - 2 - !m)) land 1 = r0 do
    incr m
  done;
  let m = !m in
  let k = if r0 = 1 then m - 1 else -m in
  (* Bits remaining below the regime terminator. *)
  let rem_bits = Stdlib.max 0 (p.n - 2 - m) in
  let rem = body land ((1 lsl rem_bits) - 1) in
  let e =
    if rem_bits >= p.es then rem lsr (rem_bits - p.es)
    else rem lsl (p.es - rem_bits)
  in
  let fb = Stdlib.max 0 (rem_bits - p.es) in
  let frac = rem land ((1 lsl fb) - 1) in
  { sign; scale = (k lsl p.es) + e; fb; frac }

let to_double p pat =
  let pat = pat land mask p in
  if pat = 0 then 0.0
  else if pat = nar p then Float.nan
  else begin
    let d = decode p pat in
    let v = Float.ldexp (float_of_int ((1 lsl d.fb) + d.frac)) (d.scale - d.fb) in
    if d.sign < 0 then -.v else v
  end

let to_rational p pat =
  let pat = pat land mask p in
  if pat = 0 then Q.zero
  else if pat = nar p then invalid_arg (p.name ^ ".to_rational: NaR")
  else begin
    let d = decode p pat in
    let v = Q.mul_pow2 (Q.of_int ((1 lsl d.fb) + d.frac)) (d.scale - d.fb) in
    if d.sign < 0 then Q.neg v else v
  end

(* Assemble and round: given sign, scale s and an fb-bit fraction head
   [frac] (plus a sticky flag for dropped fraction bits), produce the
   final pattern.  The body bit string is regime|exponent|fraction; we
   keep its top n-1 bits and round with guard/sticky under [mode]
   (default: nearest, ties to even pattern).  Saturation is
   mode-independent — posits have no infinities, so every mode clamps
   at maxpos and never rounds a nonzero value to zero. *)
let assemble p ?(mode = Fp.Rounding_mode.Rne) ~sign ~s ~fb ~frac ~sticky () =
  if s > smax p then (if sign < 0 then (1 lsl p.n) - maxpos p else maxpos p)
  else if s < -smax p then (if sign < 0 then (1 lsl p.n) - minpos_pat else minpos_pat)
  else begin
    let k = s asr p.es in
    let e = s land ((1 lsl p.es) - 1) in
    let regime, rl = if k >= 0 then (((1 lsl (k + 1)) - 1) lsl 1, k + 2) else (1, -k + 1) in
    (* Shrink the fraction so the whole body fits a native int; dropped
       bits fold into the sticky flag. *)
    let avail = 60 - rl - p.es in
    let frac, sticky, fb =
      if fb <= avail then (frac, sticky, fb)
      else
        ( frac lsr (fb - avail),
          sticky || frac land ((1 lsl (fb - avail)) - 1) <> 0,
          avail )
    in
    let body = (((regime lsl p.es) lor e) lsl fb) lor frac in
    let len = rl + p.es + fb in
    let t = p.n - 1 in
    (* fb is always chosen large enough that len > t. *)
    let head = body lsr (len - t) in
    let guard = (body lsr (len - t - 1)) land 1 = 1 in
    let sticky = sticky || body land ((1 lsl (len - t - 1)) - 1) <> 0 in
    let half_cmp = if not guard then -1 else if sticky then 1 else 0 in
    let up =
      Fp.Rounding_mode.round_up ~mode ~neg:(sign < 0) ~odd:(head land 1 = 1)
        ~inexact:(guard || sticky) ~half_cmp
    in
    let head = if up then head + 1 else head in
    let head = if head = 0 then minpos_pat else if head > maxpos p then maxpos p else head in
    if sign < 0 then ((1 lsl p.n) - head) land mask p else head
  end

let round_rational p ?mode q =
  if Q.is_zero q then 0
  else begin
    let sign = Q.sign q in
    let a = Q.abs q in
    let s = Q.ilog2 a in
    if s > smax p || s < -smax p then assemble p ?mode ~sign ~s ~fb:0 ~frac:0 ~sticky:false ()
    else begin
      (* fraction = a*2^-s - 1 in [0,1); extract n+8 bits exactly. *)
      let fb = p.n + 8 in
      let num = Q.num a and den = Q.den a in
      let num' = if s >= 0 then num else B.shift_left num (-s) in
      let den' = if s >= 0 then B.shift_left den s else den in
      let fnum = B.sub num' den' in
      let quot, rem = B.divmod (B.shift_left fnum fb) den' in
      assemble p ?mode ~sign ~s ~fb ~frac:(B.to_int_exn quot) ~sticky:(not (B.is_zero rem)) ()
    end
  end

let of_double p ?mode x =
  if x = 0.0 then 0
  else if not (Float.is_finite x) then nar p
  else begin
    let sign = if x < 0.0 then -1 else 1 in
    let m, ex = Float.frexp (Float.abs x) in
    let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let s = ex - 1 in
    if s > smax p || s < -smax p then assemble p ?mode ~sign ~s ~fb:0 ~frac:0 ~sticky:false ()
    else begin
      (* Take as many of the 52 explicit mantissa bits as fit in a native
         int alongside regime and exponent. *)
      let k = s asr p.es in
      let rl = if k >= 0 then k + 2 else -k + 1 in
      let avail = 60 - rl - p.es in
      let fb = Stdlib.min 52 avail in
      let low = mant land ((1 lsl 52) - 1) in
      let frac = low lsr (52 - fb) in
      let sticky = low land ((1 lsl (52 - fb)) - 1) <> 0 in
      assemble p ?mode ~sign ~s ~fb ~frac ~sticky ()
    end
  end

let order_key p pat =
  let pat = pat land mask p in
  if pat < nar p then pat else pat - (1 lsl p.n)

(* Pattern-level neighbor walk on the posit circle: two's-complement
   patterns increase with the value they encode (NaR excluded), so the
   step is pattern +-1 with saturation next to NaR (maxpos upward, the
   most negative finite downward) and the natural wrap at -minpos -> 0.
   @raise Invalid_argument on NaR. *)
let next_up p pat =
  let pat = pat land mask p in
  if pat = nar p then invalid_arg (p.name ^ ".next_up: NaR")
  else if pat = maxpos p then pat
  else (pat + 1) land mask p

let next_down p pat =
  let pat = pat land mask p in
  if pat = nar p then invalid_arg (p.name ^ ".next_down: NaR")
  else if pat = nar p + 1 then pat
  else (pat - 1) land mask p

(** Instantiate a posit format as a {!Fp.Representation.S}. *)
module Make (P : sig
  val params : params
end) : Fp.Representation.S = struct
  let p = P.params
  let name = p.name
  let bits = p.n
  let classify pat = classify p pat
  let to_double pat = to_double p pat
  let to_rational pat = to_rational p pat
  let round_rational ?mode q = round_rational p ?mode q
  let of_double ?mode x = of_double p ?mode x
  let order_key pat = order_key p pat
  let next_up pat = next_up p pat
  let next_down pat = next_down p pat
end
