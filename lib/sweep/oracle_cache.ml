(* Persistent append-only oracle cache: (function, rounding mode,
   pattern) -> correctly-rounded output pattern.

   Ziv's loop (the arbitrary-precision oracle) dominates every sweep,
   re-validation and hard-case hunt, yet its answers never change for a
   fixed (function, representation, mode).  This cache makes them pay
   once: each (repr, func, mode) triple owns one file in the cache
   directory, a text header identifying the triple followed by fixed
   16-byte little-endian records (pattern, output-pattern).

   Crash tolerance is structural: records are only ever appended, so the
   worst a kill can leave behind is a partial trailing record, which
   {!open_} detects by length arithmetic and truncates away.  There is no
   in-place mutation to corrupt.

   Invalidation: answers depend only on the oracle implementation, so the
   cache survives table regeneration, config changes and code changes to
   the runtime path.  An oracle bug fix is the one event that must
   invalidate — bump {!format_version} (or delete the directory); a
   version or identity mismatch in the header refuses the file loudly
   rather than serving stale bits.

   Thread-safety: one mutex guards the table, the append buffer and the
   counters, so worker domains can call {!find}/{!add}/{!memo}
   concurrently.  The expensive oracle computation in {!memo} runs
   outside the lock; two domains racing on the same pattern at worst
   compute it twice and record it once. *)

let format_version = 1

type t = {
  path : string;
  header : string;
  table : (int, int) Hashtbl.t;
  mutable fresh : (int * int) list;  (* buffered appends, newest first *)
  mutable hits : int;
  mutable misses : int;
  mu : Mutex.t;
}

let header_of ~repr ~func ~mode =
  Printf.sprintf "RLOC %d %s %s %s\n" format_version repr func mode

let record_bytes = 16

(* Ensure [dir] exists (racing creators are fine). *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let file_name ~repr ~func ~mode = Printf.sprintf "%s.%s.%s.orc" repr func mode

(** Open (creating if absent) the cache for one (repr, func, mode).
    @raise Failure if the file exists but its header names a different
    triple or format version — stale bits are never served silently. *)
let open_ ~dir ~repr ~func ~mode =
  mkdir_p dir;
  let path = Filename.concat dir (file_name ~repr ~func ~mode) in
  let header = header_of ~repr ~func ~mode in
  let hlen = String.length header in
  let table = Hashtbl.create 4096 in
  (if Sys.file_exists path then begin
     let ic = open_in_bin path in
     let len = in_channel_length ic in
     if len < hlen then begin
       close_in ic;
       failwith (Printf.sprintf "oracle cache %s: truncated header" path)
     end;
     let got = really_input_string ic hlen in
     if got <> header then begin
       close_in ic;
       failwith
         (Printf.sprintf "oracle cache %s: header mismatch (found %S, want %S) — stale or foreign cache"
            path (String.trim got) (String.trim header))
     end;
     let body = len - hlen in
     let whole = body - (body mod record_bytes) in
     let buf = Bytes.create record_bytes in
     let off = ref 0 in
     while !off < whole do
       really_input ic buf 0 record_bytes;
       let pat = Int64.to_int (Bytes.get_int64_le buf 0) in
       let out = Int64.to_int (Bytes.get_int64_le buf 8) in
       Hashtbl.replace table pat out;
       off := !off + record_bytes
     done;
     close_in ic;
     (* Drop a partial trailing record left by a kill mid-append, so the
        next append starts on a record boundary. *)
     if body mod record_bytes <> 0 then Unix.truncate path (hlen + whole)
   end
   else begin
     let oc = open_out_bin path in
     output_string oc header;
     close_out oc
   end);
  { path; header; table; fresh = []; hits = 0; misses = 0; mu = Mutex.create () }

let find t pat =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.table pat with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t pat out =
  Mutex.protect t.mu (fun () ->
      if not (Hashtbl.mem t.table pat) then begin
        Hashtbl.replace t.table pat out;
        t.fresh <- (pat, out) :: t.fresh
      end)

(** [memo c pat f] is the cached output for [pat], computing and
    recording [f pat] on a miss.  [memo None pat f] is just [f pat]. *)
let memo c pat f =
  match c with
  | None -> f pat
  | Some t -> (
      match find t pat with
      | Some v -> v
      | None ->
          let v = f pat in
          add t pat v;
          v)

(** Append all buffered records to disk and flush.  Called from one
    domain at a time (the engine's checkpoint barrier). *)
let sync t =
  let pending = Mutex.protect t.mu (fun () ->
      let p = t.fresh in
      t.fresh <- [];
      List.rev p)
  in
  if pending <> [] then begin
    let fd = Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
    let b = Buffer.create (record_bytes * List.length pending) in
    List.iter
      (fun (pat, out) ->
        Buffer.add_int64_le b (Int64.of_int pat);
        Buffer.add_int64_le b (Int64.of_int out))
      pending;
    let s = Buffer.to_bytes b in
    let n = Bytes.length s in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write fd s !written (n - !written)
    done;
    Unix.close fd
  end

let close t = sync t

let hits t = Mutex.protect t.mu (fun () -> t.hits)
let misses t = Mutex.protect t.mu (fun () -> t.misses)
let size t = Mutex.protect t.mu (fun () -> Hashtbl.length t.table)
