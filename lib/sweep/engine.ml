(* Chunked, checkpointed, fault-tolerant sweep engine.

   A sweep job partitions the item space [0, n) into fixed-size chunks
   and drives them through {!Parallel} in batches.  After every batch
   the checkpoint is rewritten via atomic rename, so a SIGKILL loses at
   most one in-flight batch and a resumed run re-executes exactly the
   chunks the checkpoint still shows as pending.

   Fault tolerance: a chunk whose worker raises is retried up to
   [max_retries] more times (re-enqueued after the remaining work, so
   transient faults get maximal settling time); a chunk that keeps
   failing is *quarantined* — recorded in the checkpoint and the final
   outcome with its last error, never silently dropped.

   Determinism: the chunk function must be a pure function of its range.
   Mismatch records live per chunk and the final report is assembled in
   chunk order, so an interrupted-and-resumed run, at any job count,
   produces a report bit-identical to an uninterrupted one. *)

module C = Checkpoint

type progress = {
  total_chunks : int;
  completed_chunks : int;  (* includes chunks restored from the checkpoint *)
  restored_chunks : int;  (* already Done when this run started *)
  quarantined_chunks : int;
  retry_attempts : int;  (* failed attempts observed during this run *)
  cache_hits : int;  (* from the attached oracle cache; 0 without one *)
  cache_misses : int;
  fast_path : int;  (* oracle-free certifications from the attached verifier *)
  escalations : int;  (* verifier verdicts that needed the Ziv oracle *)
  wall_seconds : float;  (* this run only *)
  chunk_rate : float;  (* chunks/s over work done THIS run; restored chunks
                          cost this run nothing and must not inflate it *)
  eta_seconds : float;  (* remaining work at [chunk_rate] *)
}

type outcome = {
  checkpoint : C.t;  (* final state, as persisted *)
  mismatches : C.mismatch array;  (* flat, chunk order then pattern order *)
  quarantined : (int * int * int * string) list;  (* chunk, lo, hi, last error *)
  stats : progress;
}

let default_chunk_size = 4096
let default_checkpoint_every = 32

let checkpoint_path dir = Filename.concat dir "checkpoint.bin"

let flat_mismatches (cp : C.t) =
  Array.concat (Array.to_list cp.mismatches)

let quarantine_list (cp : C.t) =
  let acc = ref [] in
  for i = Array.length cp.state - 1 downto 0 do
    if cp.state.(i) = C.Quarantined then begin
      let lo, hi = C.chunk_range cp i in
      acc := (i, lo, hi, cp.errors.(i)) :: !acc
    end
  done;
  !acc

(** Run (or resume) a sweep job.

    [identity] fingerprints the job (target, function, mode, stride,
    ...); a checkpoint recorded under a different identity or geometry
    refuses to resume.  [f ~lo ~hi] validates items [lo, hi) and returns
    the mismatches it found, in item order; it may raise to signal a
    chunk failure.  Without [resume], an existing checkpoint in [dir] is
    an error — starting over is an explicit decision (delete the
    directory), never an accident. *)
let run ~dir ~identity ~n ?(chunk_size = default_chunk_size) ?(max_retries = 2)
    ?(checkpoint_every = default_checkpoint_every) ?jobs ?(resume = false) ?cache ?verify
    ?(progress : (progress -> unit) option) (f : lo:int -> hi:int -> C.mismatch list) :
    (outcome, string) result =
  if n <= 0 then Error "sweep: empty item space"
  else begin
    Oracle_cache.mkdir_p dir;
    let path = checkpoint_path dir in
    let fresh () = C.create ~identity ~n_items:n ~chunk_size in
    let cp0 =
      if Sys.file_exists path then
        if not resume then
          Error
            (Printf.sprintf
               "sweep: %s already holds a checkpoint; pass --resume to continue it or remove the \
                directory to start over"
               dir)
        else
          match C.load ~path with
          | Error msg -> Error (Printf.sprintf "sweep: cannot resume: %s" msg)
          | Ok cp ->
              if cp.identity <> identity then
                Error
                  (Printf.sprintf
                     "sweep: checkpoint belongs to a different job\n  checkpoint: %s\n  requested:  %s"
                     cp.identity identity)
              else if cp.n_items <> n || cp.chunk_size <> chunk_size then
                Error
                  (Printf.sprintf
                     "sweep: checkpoint geometry mismatch (checkpoint %d items / %d per chunk, \
                      requested %d / %d)"
                     cp.n_items cp.chunk_size n chunk_size)
              else Ok cp
      else Ok (fresh ())
    in
    match cp0 with
    | Error _ as e -> e
    | Ok cp ->
        let nc = Array.length cp.state in
        let restored = C.completed cp in
        let t0 = Unix.gettimeofday () in
        let retry_attempts = ref 0 in
        (* Pending chunks, ascending; retries re-enqueue at the tail. *)
        let queue = Queue.create () in
        for i = 0 to nc - 1 do
          if cp.state.(i) = C.Pending then Queue.add i queue
        done;
        let done_this_run = ref 0 in
        let stats_now () =
          let wall = Unix.gettimeofday () -. t0 in
          let completed = restored + !done_this_run in
          let remaining = nc - completed - C.quarantined cp in
          (* ETA basis: chunks finished *this run* over this run's wall
             clock.  A resumed run restoring 90% of its chunks in an
             instant has not demonstrated a 10x chunk rate. *)
          let rate =
            if !done_this_run > 0 && wall > 0.0 then float_of_int !done_this_run /. wall
            else 0.0
          in
          let eta = if rate > 0.0 && remaining > 0 then float_of_int remaining /. rate else 0.0 in
          {
            total_chunks = nc;
            completed_chunks = completed;
            restored_chunks = restored;
            quarantined_chunks = C.quarantined cp;
            retry_attempts = !retry_attempts;
            cache_hits = (match cache with Some c -> Oracle_cache.hits c | None -> 0);
            cache_misses = (match cache with Some c -> Oracle_cache.misses c | None -> 0);
            fast_path = (match verify with Some v -> Verify.fast v | None -> 0);
            escalations = (match verify with Some v -> Verify.escalated v | None -> 0);
            wall_seconds = wall;
            chunk_rate = rate;
            eta_seconds = eta;
          }
        in
        let checkpoint_now () =
          (match cache with Some c -> Oracle_cache.sync c | None -> ());
          C.save ~path cp;
          match progress with Some p -> p (stats_now ()) | None -> ()
        in
        (* Persist the (possibly fresh) checkpoint before any work, so a
           kill during the very first batch still leaves a resumable
           file behind. *)
        checkpoint_now ();
        while not (Queue.is_empty queue) do
          let batch = Array.init (Stdlib.min checkpoint_every (Queue.length queue)) (fun _ -> Queue.pop queue) in
          let results =
            Parallel.map_chunks ?jobs ~n:(Array.length batch) (fun ~lo ~hi ->
                Array.init (hi - lo) (fun k ->
                    let ci = batch.(lo + k) in
                    let clo, chi = C.chunk_range cp ci in
                    match f ~lo:clo ~hi:chi with
                    | ms -> (ci, Ok ms)
                    | exception e -> (ci, Error (Printexc.to_string e))))
          in
          Array.iter
            (Array.iter (fun (ci, r) ->
                 match r with
                 | Ok ms ->
                     cp.state.(ci) <- C.Done;
                     cp.mismatches.(ci) <- Array.of_list ms;
                     incr done_this_run
                 | Error msg ->
                     incr retry_attempts;
                     cp.retries.(ci) <- cp.retries.(ci) + 1;
                     cp.errors.(ci) <- msg;
                     if cp.retries.(ci) > max_retries then cp.state.(ci) <- C.Quarantined
                     else Queue.add ci queue))
            results;
          checkpoint_now ()
        done;
        Ok
          {
            checkpoint = cp;
            mismatches = flat_mismatches cp;
            quarantined = quarantine_list cp;
            stats = stats_now ();
          }
  end
