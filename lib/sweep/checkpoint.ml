(* Crash-safe on-disk checkpoint for a chunked sweep job.

   One checkpoint file records everything a killed run needs to resume
   exactly where it stopped: the job identity (so a resume against the
   wrong target/function/stride is refused instead of silently merging
   two sweeps), the chunk geometry, a per-chunk completion state with
   retry counts, the mismatch records of every completed chunk, and the
   last failure message of every chunk that has ever failed.

   Durability contract:
   - {!save} writes the whole encoding to [path ^ ".tmp"] and renames it
     over [path].  Rename within one directory is atomic on POSIX, so a
     reader (including a resuming run) only ever sees a complete old or
     complete new checkpoint — never a torn one.
   - The encoding carries a magic, a format version and a trailing FNV
     checksum over everything before it; {!decode} rejects truncated,
     corrupted or foreign files with a message instead of resuming from
     garbage. *)

type chunk_state = Pending | Done | Quarantined

type mismatch = { pattern : int; got : int; want : int }

type t = {
  identity : string;  (* free-form job fingerprint; must match to resume *)
  n_items : int;  (* sweep points in [0, n_items) *)
  chunk_size : int;
  state : chunk_state array;  (* one per chunk *)
  retries : int array;  (* failed attempts so far, one per chunk *)
  mismatches : mismatch array array;  (* per chunk, in pattern order *)
  errors : string array;  (* last failure message per chunk ("" = none) *)
}

let n_chunks ~n_items ~chunk_size = (n_items + chunk_size - 1) / chunk_size

let create ~identity ~n_items ~chunk_size =
  if n_items <= 0 then invalid_arg "Checkpoint.create: n_items must be positive";
  if chunk_size <= 0 then invalid_arg "Checkpoint.create: chunk_size must be positive";
  let nc = n_chunks ~n_items ~chunk_size in
  {
    identity;
    n_items;
    chunk_size;
    state = Array.make nc Pending;
    retries = Array.make nc 0;
    mismatches = Array.make nc [||];
    errors = Array.make nc "";
  }

(** [lo, hi) item range of chunk [i]. *)
let chunk_range t i =
  let lo = i * t.chunk_size in
  (lo, Stdlib.min t.n_items (lo + t.chunk_size))

let completed t =
  Array.fold_left (fun acc s -> if s = Done then acc + 1 else acc) 0 t.state

let quarantined t =
  Array.fold_left (fun acc s -> if s = Quarantined then acc + 1 else acc) 0 t.state

(* ------------------------------------------------------------------ *)
(* Binary encoding.                                                    *)
(* ------------------------------------------------------------------ *)

let magic = "RLSWEEP\x01"
let version = 1

(* FNV-1a over a Buffer prefix; 63-bit so it round-trips through int. *)
let fnv (b : Buffer.t) =
  let h = ref 0x0cbf29ce84222325 in
  for i = 0 to Buffer.length b - 1 do
    h := (!h lxor Char.code (Buffer.nth b i)) * 0x100000001b3
  done;
  !h land max_int

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let encode t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_int b version;
  add_str b t.identity;
  add_int b t.n_items;
  add_int b t.chunk_size;
  let nc = Array.length t.state in
  add_int b nc;
  Array.iter
    (fun s -> Buffer.add_char b (match s with Pending -> '\x00' | Done -> '\x01' | Quarantined -> '\x02'))
    t.state;
  Array.iter (fun r -> add_int b r) t.retries;
  Array.iter
    (fun ms ->
      add_int b (Array.length ms);
      Array.iter
        (fun m ->
          add_int b m.pattern;
          add_int b m.got;
          add_int b m.want)
        ms)
    t.mismatches;
  Array.iter (fun e -> add_str b e) t.errors;
  add_int b (fnv b);
  Buffer.contents b

(* Cursor-based decoding; every read is bounds-checked so a truncated
   file fails cleanly rather than raising out of [String.get]. *)
exception Bad of string

let decode (s : string) : (t, string) result =
  let pos = ref 0 in
  let len = String.length s in
  let need n what = if !pos + n > len then raise (Bad (Printf.sprintf "truncated (%s)" what)) in
  let get_int what =
    need 8 what;
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  let get_str what =
    let n = get_int what in
    if n < 0 || n > len - !pos then raise (Bad (Printf.sprintf "bad length (%s)" what));
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  try
    need (String.length magic) "magic";
    if String.sub s 0 (String.length magic) <> magic then raise (Bad "not a sweep checkpoint (bad magic)");
    pos := String.length magic;
    let v = get_int "version" in
    if v <> version then raise (Bad (Printf.sprintf "unsupported checkpoint version %d (want %d)" v version));
    let identity = get_str "identity" in
    let n_items = get_int "n_items" in
    let chunk_size = get_int "chunk_size" in
    if n_items <= 0 || chunk_size <= 0 then raise (Bad "non-positive geometry");
    let nc = get_int "n_chunks" in
    if nc <> n_chunks ~n_items ~chunk_size then raise (Bad "chunk count disagrees with geometry");
    need nc "state";
    let state =
      Array.init nc (fun i ->
          match s.[!pos + i] with
          | '\x00' -> Pending
          | '\x01' -> Done
          | '\x02' -> Quarantined
          | _ -> raise (Bad "bad chunk state"))
    in
    pos := !pos + nc;
    let retries = Array.init nc (fun _ -> get_int "retries") in
    let mismatches =
      Array.init nc (fun _ ->
          let k = get_int "mismatch count" in
          if k < 0 || k > (len - !pos) / 24 then raise (Bad "bad mismatch count");
          Array.init k (fun _ ->
              let pattern = get_int "mismatch" in
              let got = get_int "mismatch" in
              let want = get_int "mismatch" in
              { pattern; got; want }))
    in
    let errors = Array.init nc (fun _ -> get_str "error") in
    let body_end = !pos in
    let sum = get_int "checksum" in
    if !pos <> len then raise (Bad "trailing garbage");
    let b = Buffer.create body_end in
    Buffer.add_substring b s 0 body_end;
    if fnv b <> sum then raise (Bad "checksum mismatch (corrupted checkpoint)");
    Ok { identity; n_items; chunk_size; state; retries; mismatches; errors }
  with Bad msg -> Error ("checkpoint: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Atomic file IO.                                                     *)
(* ------------------------------------------------------------------ *)

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode t);
  close_out oc;
  Sys.rename tmp path

let load ~path : (t, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      decode s
