(* Oracle-free fast verification with Ziv-oracle escalation.

   A full-range sweep spends essentially all of its time in the
   arbitrary-precision oracle, yet for a table generated from an
   exhaustive enumeration the generator has already *proved* a
   per-reduced-input certificate: if the polynomial value lands inside
   the stored rounding-interval box, output compensation lands inside
   the input's rounding interval, so the rounded result is correct — no
   oracle needed.  This module packages that contract for the sweep and
   campaign engines without knowing anything about polynomials:

   - [classify pat] is the target-library evaluation plus the
     certificate check: it returns the library's result for [pat] and
     whether the oracle-free certificate holds;
   - on a certificate miss the verifier *escalates*: it asks the Ziv
     oracle for the true result and compares, exactly like a classic
     oracle sweep would.  A fast verifier may only ever be faster than
     the oracle sweep — never answer differently.

   Escalation policy: [`Oracle] (the default) runs the oracle on every
   uncertified pattern; [`Fail] raises {!Unverified} instead, for
   strictly oracle-free runs where an uncertifiable input is a fault the
   engine must quarantine, not silently re-derive.  The exception names
   the pattern so the quarantine record identifies the input.

   Counters are atomic: the engine's worker domains all bump the same
   pair, and the checkpoint-time progress rows report the fast-path
   fraction of the verdicts completed so far. *)

type counters = { fast : int Atomic.t; escalated : int Atomic.t }

let counters () = { fast = Atomic.make 0; escalated = Atomic.make 0 }
let fast c = Atomic.get c.fast
let escalated c = Atomic.get c.escalated
let checked c = fast c + escalated c

(* Fast-path percentage of the verdicts completed so far; 100 when
   nothing has been checked yet (an empty run touched no oracle). *)
let fast_pct c =
  let f = fast c and e = escalated c in
  if f + e = 0 then 100.0 else 100.0 *. float_of_int f /. float_of_int (f + e)

exception Unverified of int

let () =
  Printexc.register_printer (function
    | Unverified pat ->
        Some
          (Printf.sprintf
             "Sweep.Verify.Unverified(pattern %#x): certificate miss and oracle escalation \
              disabled"
             pat)
    | _ -> None)

type t = {
  classify : int -> int * bool;  (* pattern -> (library result, certified) *)
  oracle : int -> int;  (* pattern -> correctly rounded result (Ziv) *)
  equal : int -> int -> bool;  (* pattern value equality of the target *)
  on_escalate : [ `Oracle | `Fail ];
  c : counters;
}

let make ?(counters = counters ()) ?(on_escalate = `Oracle) ~classify ~oracle ~equal () =
  { classify; oracle; equal; on_escalate; c = counters }

let stats v = v.c

(** Verdict for one pattern: [None] = correct (certified oracle-free, or
    escalated and agreeing), [Some m] = the library result disagrees
    with the oracle.
    @raise Unverified on a certificate miss under [`Fail]. *)
let check v pat =
  let got, certified = v.classify pat in
  if certified then begin
    Atomic.incr v.c.fast;
    None
  end
  else
    match v.on_escalate with
    | `Fail -> raise (Unverified pat)
    | `Oracle ->
        Atomic.incr v.c.escalated;
        let want = v.oracle pat in
        if v.equal got want then None else Some { Checkpoint.pattern = pat; got; want }

(** Engine-ready chunk function: verify items [lo, hi), item [i]
    denoting pattern [i * stride], mismatches returned in pattern
    order. *)
let sweep_fn v ?(stride = 1) () ~lo ~hi =
  let acc = ref [] in
  for i = hi - 1 downto lo do
    match check v (i * stride) with Some m -> acc := m :: !acc | None -> ()
  done;
  !acc
