(** Correctly-rounded oracle for elementary functions.

    This is the reproduction's substitute for MPFR (§4.1 of the paper):
    each function computes an arbitrary-precision approximation whose
    relative error is far below [2^(12-prec)], and {!correctly_rounded}
    runs Ziv's strategy — recompute at doubled precision until the
    enclosing interval rounds unambiguously in the caller's target
    representation.

    Every input is an exact rational (doubles convert exactly).  Inputs
    at which the mathematical result is itself rational — the only points
    where Ziv's loop could fail to terminate — are detected and returned
    as [Exact] (by Lindemann–Weierstrass these are finitely describable:
    [exp 0], [ln 1], [log2] of powers of two, [log10] of powers of ten,
    [exp2]/[exp10] at integers, [sinpi]/[cospi] at half-integers,
    [sinh 0], [cosh 0]). *)

(** Result of one approximation round. *)
type result =
  | Exact of Rational.t  (** the mathematical value, exactly *)
  | Approx of Bigfloat.t  (** relative error below [2^(12-prec)] *)

(** An elementary function ready for Ziv's loop. *)
type fn = prec:int -> Rational.t -> result

(** {1 Constants}

    Each has relative error at most [2^(-prec)]. *)

val pi : prec:int -> Bigfloat.t
val ln2 : prec:int -> Bigfloat.t
val ln10 : prec:int -> Bigfloat.t

(** {1 Elementary functions}

    Domains: [ln], [log2], [log10] require strictly positive input and
    raise [Invalid_argument] otherwise; the rest are total. *)

val exp : fn
val exp2 : fn
val exp10 : fn
val ln : fn
val log2 : fn
val log10 : fn
val sinh : fn
val cosh : fn
val sinpi : fn
val cospi : fn

(** Radian trig over the full range: the argument is reduced by the
    nearest multiple of [pi/2] at a working precision that grows with
    [ilog2 |x|], so huge inputs (the Payne–Hanek regime) keep their full
    relative accuracy.  [tan] is the quotient of the shared reduced
    [sin]/[cos] pair.  Exact only at [x = 0] (Lindemann–Weierstrass). *)

val sin : fn
val cos : fn
val tan : fn

(** {1 Reduced-domain companions}

    Oracles for the component functions that appear after range
    reduction (§3.2): [*_1p r] is the function at [1 + r]. *)

val ln_1p : fn
val log2_1p : fn
val log10_1p : fn

(** {1 Extension functions}

    The paper's §7 plans "approximations for all commonly used
    elementary functions"; these three extend the library on the same
    machinery. *)

val tanh : fn
val expm1 : fn

(** [log1p] is {!ln_1p} under its libm name. *)
val log1p : fn

(** {1 Ziv's strategy} *)

(** [correctly_rounded ?init_prec ~round f x] evaluates [f x] at
    increasing precision until the interval
    [[y*(1-2^(12-prec)), y*(1+2^(12-prec))]] rounds to a single value
    under [round], and returns that value.  [round] must be a monotone
    rounding function (e.g. a representation's round-to-nearest). *)
val correctly_rounded : ?init_prec:int -> round:(Rational.t -> 'a) -> fn -> Rational.t -> 'a

(** [to_double f x] is [f x] correctly rounded to double. *)
val to_double : fn -> Rational.t -> float

(** Look up an oracle by the names used throughout the repo:
    ["exp"], ["exp2"], ["exp10"], ["ln"], ["log2"], ["log10"],
    ["sinh"], ["cosh"], ["sinpi"], ["cospi"], ["sin"], ["cos"], ["tan"].
    @raise Invalid_argument on an unknown name. *)
val by_name : string -> fn
