(* Arbitrary-precision binary floats: value = m * 2^e with signed bignum
   mantissa.  Kept normalized so a zero mantissa implies the canonical
   zero (e = 0); trailing zero bits of the mantissa are NOT stripped
   eagerly except by [round]. *)

module B = Bigint

type t = { m : B.t; e : int }

let zero = { m = B.zero; e = 0 }
let make m e = if B.is_zero m then zero else { m; e }
let of_bigint n = make n 0
let of_int n = of_bigint (B.of_int n)
let one = of_int 1
let sign t = B.sign t.m
let is_zero t = B.is_zero t.m
let neg t = make (B.neg t.m) t.e
let abs t = make (B.abs t.m) t.e
let mul_pow2 t k = if is_zero t then t else { t with e = t.e + k }
let ilog2 t = if is_zero t then invalid_arg "Bigfloat.ilog2: zero" else B.bit_length t.m - 1 + t.e

let of_float x =
  if not (Float.is_finite x) then invalid_arg "Bigfloat.of_float: not finite";
  if x = 0.0 then zero
  else begin
    let m, e = Float.frexp x in
    make (B.of_int (Int64.to_int (Int64.of_float (Float.ldexp m 53)))) (e - 53)
  end

let of_dyadic q =
  let d = Rational.den q in
  if B.is_zero (Rational.num q) then zero
  else begin
    if not (B.is_pow2 d) then invalid_arg "Bigfloat.of_dyadic: not dyadic";
    make (Rational.num q) (-B.trailing_zeros d)
  end

(* Round the mantissa to [prec] bits, nearest-even.  The sticky test is
   a limb scan ([low_bits_nonzero]), not a materialized low part: round
   is on every [add]/[mul] of the Ziv loop, so it must not allocate
   beyond the head itself. *)
let round ~prec t =
  if is_zero t then t
  else begin
    let bl = B.bit_length t.m in
    if bl <= prec then t
    else begin
      let sh = bl - prec in
      let a = B.abs t.m in
      let head = B.shift_right a sh in
      let rnd = B.testbit a (sh - 1) in
      let head =
        if rnd && (B.low_bits_nonzero a (sh - 1) || not (B.is_even head)) then B.add head B.one
        else head
      in
      let head = if B.sign t.m < 0 then B.neg head else head in
      make head (t.e + sh)
    end
  end

let of_rational ~prec q =
  if Rational.is_zero q then zero
  else begin
    let n = Rational.num q and d = Rational.den q in
    (* Scale the numerator so the quotient carries prec+2 significant bits,
       then let [round] finish the job using the remainder as sticky. *)
    let sh = prec + 2 + B.bit_length d - B.bit_length n in
    let sh = max sh 0 in
    let quot, rem = B.divmod (B.shift_left n sh) d in
    let sticky = if B.is_zero rem then B.zero else B.one in
    (* Fold the sticky into an extra low bit so nearest-even sees it. *)
    round ~prec (make (B.add (B.shift_left quot 1) (if B.sign n < 0 then B.neg sticky else sticky)) (-sh - 1))
  end

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else if sa = 0 then 0
  else begin
    (* Same sign: align exponents and compare mantissas. *)
    let d = a.e - b.e in
    if d >= 0 then B.compare (B.shift_left a.m d) b.m else B.compare a.m (B.shift_left b.m (-d))
  end

let equal a b = compare a b = 0

let add ~prec a b =
  if is_zero a then round ~prec b
  else if is_zero b then round ~prec a
  else begin
    let hi, lo = if a.e >= b.e then (a, b) else (b, a) in
    let gap = hi.e - lo.e in
    let lo_bits = B.bit_length lo.m in
    let hi_top = B.bit_length hi.m + hi.e in
    let lo_top = lo_bits + lo.e in
    if hi_top - lo_top > prec + 8 then begin
      (* The small operand is far below the rounding precision: fold it
         into a sticky nudge one bit below the working width. *)
      let sh = prec + 8 in
      let nudge = if B.sign lo.m >= 0 then B.one else B.minus_one in
      round ~prec (make (B.shift_add hi.m sh nudge) (hi.e - sh))
    end
    (* Fused alignment: (hi.m << gap) + lo.m in one pass. *)
    else round ~prec (make (B.shift_add hi.m gap lo.m) lo.e)
  end

let sub ~prec a b = add ~prec a (neg b)
let mul ~prec a b = round ~prec (make (B.mul a.m b.m) (a.e + b.e))

let div ~prec a b =
  if is_zero b then raise Division_by_zero;
  if is_zero a then zero
  else begin
    let sh = prec + 2 + B.bit_length b.m - B.bit_length a.m in
    let sh = max sh 0 in
    let quot, rem = B.divmod (B.shift_left a.m sh) b.m in
    let sticky = if B.is_zero rem then B.zero else B.one in
    let sign_q = B.sign a.m * B.sign b.m in
    let quot = B.abs quot and e = a.e - b.e - sh in
    let withsticky = B.add (B.shift_left quot 1) sticky in
    let withsticky = if sign_q < 0 then B.neg withsticky else withsticky in
    round ~prec (make withsticky (e - 1))
  end

let mul_int ~prec t n = round ~prec (make (B.mul_int t.m n) t.e)
let div_int ~prec t n = div ~prec t (of_int n)

let to_rational t =
  if is_zero t then Rational.zero
  else if t.e >= 0 then Rational.of_bigint (B.shift_left t.m t.e)
  else Rational.make t.m (B.shift_left B.one (-t.e))

let to_float t = Rational.to_float (to_rational t)

let pp fmt t =
  if is_zero t then Format.pp_print_string fmt "0"
  else Format.fprintf fmt "%a*2^%d" B.pp t.m t.e
