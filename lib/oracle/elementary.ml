(* Correctly-rounded oracle built on Bigfloat.

   All approximating paths compute at a working precision [wp = prec + 40]
   and keep series truncation below [2^(-wp-8)] relative, so the total
   relative error stays far below the [2^(12-prec)] margin that Ziv's
   loop assumes.  Inputs with rational function values return [Exact]:
   those are the only points where interval refinement cannot terminate. *)

module B = Bigint
module Q = Rational
module F = Bigfloat

type result = Exact of Q.t | Approx of F.t
type fn = prec:int -> Q.t -> result

(* ------------------------------------------------------------------ *)
(* Constants via integer fixed point at scale 2^w.                     *)
(* ------------------------------------------------------------------ *)

(* atan(1/n) * 2^w, by the alternating Taylor series in 1/n.  Each term
   is floored, so the absolute error is below the term count, which is
   tiny against the 2^w scale. *)
let atan_inv_scaled ~w n =
  let n2 = B.of_int (n * n) in
  let term = ref (B.div (B.shift_left B.one w) (B.of_int n)) in
  let sum = ref B.zero in
  let k = ref 0 in
  while not (B.is_zero !term) do
    let contrib = B.div !term (B.of_int ((2 * !k) + 1)) in
    sum := if !k land 1 = 0 then B.add !sum contrib else B.sub !sum contrib;
    term := B.div !term n2;
    incr k
  done;
  !sum

(* atanh(1/n) * 2^w: same series without the alternation. *)
let atanh_inv_scaled ~w n =
  let n2 = B.of_int (n * n) in
  let term = ref (B.div (B.shift_left B.one w) (B.of_int n)) in
  let sum = ref B.zero in
  let k = ref 0 in
  while not (B.is_zero !term) do
    sum := B.add !sum (B.div !term (B.of_int ((2 * !k) + 1)));
    term := B.div !term n2;
    incr k
  done;
  !sum

let const_cache : (string * int, F.t) Hashtbl.t = Hashtbl.create 16

(* The generator's enumeration pass runs oracle calls from several
   domains at once (lib/parallel), so the cache is mutex-protected; the
   lock is held across [compute] so each constant is built exactly once.
   No [cached] body calls [cached], so the lock cannot re-enter. *)
let const_mu = Mutex.create ()

let cached name ~prec compute =
  (* Quantize precision so the cache stays small across Ziv retries. *)
  let w = ((prec + 24 + 63) / 64) * 64 in
  Mutex.protect const_mu (fun () ->
      match Hashtbl.find_opt const_cache (name, w) with
      | Some v -> v
      | None ->
          let v = F.round ~prec:(w - 16) (F.make (compute ~w) (-w)) in
          Hashtbl.add const_cache (name, w) v;
          v)

(* Machin: pi = 16*atan(1/5) - 4*atan(1/239). *)
let pi ~prec =
  cached "pi" ~prec (fun ~w ->
      B.sub (B.mul_int (atan_inv_scaled ~w 5) 16) (B.mul_int (atan_inv_scaled ~w 239) 4))

(* ln 2 = 2 * atanh(1/3). *)
let ln2 ~prec = cached "ln2" ~prec (fun ~w -> B.mul_int (atanh_inv_scaled ~w 3) 2)

(* ln 10 = 3 ln 2 + 2 atanh(1/9)   (since 10 = 8 * 5/4). *)
let ln10 ~prec =
  cached "ln10" ~prec (fun ~w ->
      B.add (B.mul_int (atanh_inv_scaled ~w 3) 6) (B.mul_int (atanh_inv_scaled ~w 9) 2))

(* ------------------------------------------------------------------ *)
(* Series at working precision.                                        *)
(* ------------------------------------------------------------------ *)

let wp_of prec = prec + 40

(* Dynamic stopping: terms have settled once they drop [wp]+8 bits below
   the running sum. *)
let negligible ~wp ~sum term =
  F.is_zero term || (not (F.is_zero sum) && F.ilog2 term < F.ilog2 sum - wp - 8)

(* exp(t) for |t| <= 0.4. *)
let exp_series ~wp t =
  let sum = ref F.one and term = ref F.one and k = ref 1 in
  let continue = ref true in
  while !continue do
    term := F.div_int ~prec:wp (F.mul ~prec:wp !term t) !k;
    sum := F.add ~prec:wp !sum !term;
    incr k;
    if negligible ~wp ~sum:!sum !term then continue := false
  done;
  !sum

(* sin(t) for t in (0, pi/2]. *)
let sin_series ~wp t =
  let u = F.mul ~prec:wp t t in
  let sum = ref t and term = ref t and k = ref 1 in
  let continue = ref true in
  while !continue do
    let d = 2 * !k * ((2 * !k) + 1) in
    term := F.neg (F.div_int ~prec:wp (F.mul ~prec:wp !term u) d);
    sum := F.add ~prec:wp !sum !term;
    incr k;
    if negligible ~wp ~sum:!sum !term then continue := false
  done;
  !sum

(* cos(t) for |t| <= pi/2: the alternating even series. *)
let cos_series ~wp t =
  let u = F.mul ~prec:wp t t in
  let sum = ref F.one and term = ref F.one and k = ref 1 in
  let continue = ref true in
  while !continue do
    let d = ((2 * !k) - 1) * 2 * !k in
    term := F.neg (F.div_int ~prec:wp (F.mul ~prec:wp !term u) d);
    sum := F.add ~prec:wp !sum !term;
    incr k;
    if negligible ~wp ~sum:!sum !term then continue := false
  done;
  !sum

(* atanh(z) for |z| <= 1/3. *)
let atanh_series ~wp z =
  let u = F.mul ~prec:wp z z in
  let pow = ref z and sum = ref z and k = ref 1 in
  let continue = ref true in
  while !continue do
    pow := F.mul ~prec:wp !pow u;
    let contrib = F.div_int ~prec:wp !pow ((2 * !k) + 1) in
    sum := F.add ~prec:wp !sum contrib;
    incr k;
    if negligible ~wp ~sum:!sum contrib then continue := false
  done;
  !sum

(* sinh(t) for |t| <= 1. *)
let sinh_series ~wp t =
  let u = F.mul ~prec:wp t t in
  let sum = ref t and term = ref t and k = ref 1 in
  let continue = ref true in
  while !continue do
    let d = 2 * !k * ((2 * !k) + 1) in
    term := F.div_int ~prec:wp (F.mul ~prec:wp !term u) d;
    sum := F.add ~prec:wp !sum !term;
    incr k;
    if negligible ~wp ~sum:!sum !term then continue := false
  done;
  !sum

(* cosh(t) for |t| <= 1. *)
let cosh_series ~wp t =
  let u = F.mul ~prec:wp t t in
  let sum = ref F.one and term = ref F.one and k = ref 1 in
  let continue = ref true in
  while !continue do
    let d = ((2 * !k) - 1) * 2 * !k in
    term := F.div_int ~prec:wp (F.mul ~prec:wp !term u) d;
    sum := F.add ~prec:wp !sum !term;
    incr k;
    if negligible ~wp ~sum:!sum !term then continue := false
  done;
  !sum

(* ------------------------------------------------------------------ *)
(* exp and friends.                                                    *)
(* ------------------------------------------------------------------ *)

let too_large_for_exp x = Q.compare (Q.abs x) (Q.of_int (1 lsl 30)) > 0

(* exp(x) as a Bigfloat; [x] must be moderate (callers special-case the
   saturated regions of their target types first). *)
let exp_approx ~wp x =
  if too_large_for_exp x then invalid_arg "Elementary.exp: argument too large";
  let k = int_of_float (Float.round (Q.to_float x *. 1.4426950408889634)) in
  let xw = F.of_rational ~prec:(wp + 20) x in
  let r = F.sub ~prec:(wp + 20) xw (F.mul_int ~prec:(wp + 20) (ln2 ~prec:(wp + 20)) k) in
  F.mul_pow2 (exp_series ~wp r) k

let exp ~prec x =
  if Q.is_zero x then Exact Q.one else Approx (exp_approx ~wp:(wp_of prec) x)

let exp2 ~prec x =
  if B.equal (Q.den x) B.one then begin
    (* Integer input: 2^n is exactly rational. *)
    let n = B.to_int_exn (Q.num x) in
    Exact (Q.of_pow2 n)
  end
  else begin
    let wp = wp_of prec in
    let k = B.to_int_exn (Q.round_nearest x) in
    let r = Q.sub x (Q.of_int k) in
    let t = F.mul ~prec:(wp + 10) (F.of_rational ~prec:(wp + 10) r) (ln2 ~prec:(wp + 10)) in
    Approx (F.mul_pow2 (exp_series ~wp t) k)
  end

let ten_pow k = if k >= 0 then Q.of_bigint (B.pow (B.of_int 10) k) else Q.inv (Q.of_bigint (B.pow (B.of_int 10) (-k)))

let exp10 ~prec x =
  if B.equal (Q.den x) B.one then Exact (ten_pow (B.to_int_exn (Q.num x)))
  else begin
    let wp = wp_of prec in
    let k = int_of_float (Float.round (Q.to_float x *. 3.321928094887362)) in
    (* t = x*ln10 - k*ln2 cancels ~log2(k) bits; the +30 slack covers it. *)
    let w' = wp + 30 in
    let t =
      F.sub ~prec:w'
        (F.mul ~prec:w' (F.of_rational ~prec:w' x) (ln10 ~prec:w'))
        (F.mul_int ~prec:w' (ln2 ~prec:w') k)
    in
    Approx (F.mul_pow2 (exp_series ~wp t) k)
  end

(* ------------------------------------------------------------------ *)
(* Logarithms.                                                         *)
(* ------------------------------------------------------------------ *)

(* ln x = 2*atanh((m-1)/(m+1)) + e*ln2 with m in [0.75, 1.5) so the two
   contributions never cancel catastrophically. *)
let ln_approx ~wp x =
  if Q.sign x <= 0 then invalid_arg "Elementary.ln: nonpositive argument";
  let e = Q.ilog2 x in
  let m = Q.mul_pow2 x (-e) in
  let m, e = if Q.compare m (Q.of_ints 3 2) >= 0 then (Q.mul_pow2 m (-1), e + 1) else (m, e) in
  let z = Q.div (Q.sub m Q.one) (Q.add m Q.one) in
  let a = atanh_series ~wp (F.of_rational ~prec:wp z) in
  F.add ~prec:wp (F.mul_pow2 a 1) (F.mul_int ~prec:wp (ln2 ~prec:wp) e)

let is_pow2 x = Q.sign x > 0 && B.is_pow2 (Q.num x)

let ln ~prec x = if Q.equal x Q.one then Exact Q.zero else Approx (ln_approx ~wp:(wp_of prec) x)

let log2 ~prec x =
  if Q.sign x <= 0 then invalid_arg "Elementary.log2: nonpositive argument";
  if is_pow2 x then Exact (Q.of_int (Q.ilog2 x))
  else begin
    let wp = wp_of prec in
    Approx (F.div ~prec:wp (ln_approx ~wp:(wp + 10) x) (ln2 ~prec:(wp + 10)))
  end

let is_pow10 x =
  if Q.sign x <= 0 then None
  else begin
    let k = int_of_float (Float.round (Float.log10 (Q.to_float x))) in
    if Q.equal x (ten_pow k) then Some k else None
  end

let log10 ~prec x =
  if Q.sign x <= 0 then invalid_arg "Elementary.log10: nonpositive argument";
  match is_pow10 x with
  | Some k -> Exact (Q.of_int k)
  | None ->
      let wp = wp_of prec in
      Approx (F.div ~prec:wp (ln_approx ~wp:(wp + 10) x) (ln10 ~prec:(wp + 10)))

(* ln(1+r) = 2*atanh(r/(2+r)): exact cancellation-free form for the
   reduced-domain component of the log family. *)
let ln_1p_approx ~wp r =
  let z = Q.div r (Q.add (Q.of_int 2) r) in
  F.mul_pow2 (atanh_series ~wp (F.of_rational ~prec:wp z)) 1

let ln_1p ~prec r = if Q.is_zero r then Exact Q.zero else Approx (ln_1p_approx ~wp:(wp_of prec) r)

let log2_1p ~prec r =
  if Q.is_zero r then Exact Q.zero
  else begin
    let wp = wp_of prec in
    Approx (F.div ~prec:wp (ln_1p_approx ~wp:(wp + 10) r) (ln2 ~prec:(wp + 10)))
  end

let log10_1p ~prec r =
  if Q.is_zero r then Exact Q.zero
  else begin
    let wp = wp_of prec in
    Approx (F.div ~prec:wp (ln_1p_approx ~wp:(wp + 10) r) (ln10 ~prec:(wp + 10)))
  end

(* ------------------------------------------------------------------ *)
(* sinpi / cospi.                                                      *)
(* ------------------------------------------------------------------ *)

(* sin(pi*q) for q in (0, 1/2); the reduction to this domain is exact
   rational arithmetic. *)
let sinpi_core ~wp q =
  let t = F.mul ~prec:wp (pi ~prec:wp) (F.of_rational ~prec:wp q) in
  sin_series ~wp t

(* Reduce x to (s, l') with sinpi(x) = s * sinpi(l'), l' in [0, 1/2]. *)
let sinpi_reduce x =
  let j = Q.sub x (Q.mul_pow2 (Q.of_bigint (Q.floor (Q.mul_pow2 x (-1)))) 1) in
  let k = Q.floor j in
  let l = Q.sub j (Q.of_bigint k) in
  let s = if B.is_even k then 1 else -1 in
  let l' = if Q.compare l Q.half > 0 then Q.sub Q.one l else l in
  (s, l')

let sinpi ~prec x =
  let s, l' = sinpi_reduce x in
  if Q.is_zero l' then Exact Q.zero
  else if Q.equal l' Q.half then Exact (Q.of_int s)
  else begin
    let v = sinpi_core ~wp:(wp_of prec) l' in
    Approx (if s < 0 then F.neg v else v)
  end

let cospi ~prec x =
  (* cospi(x) = sinpi(1/2 - x) after exact folding. *)
  let j = Q.sub x (Q.mul_pow2 (Q.of_bigint (Q.floor (Q.mul_pow2 x (-1)))) 1) in
  let j' = if Q.compare j Q.one >= 0 then Q.sub (Q.of_int 2) j else j in
  let u = Q.sub Q.half j' in
  let s, mag = if Q.sign u >= 0 then (1, u) else (-1, Q.neg u) in
  if Q.is_zero mag then Exact Q.zero
  else if Q.equal mag Q.half then Exact (Q.of_int s)
  else begin
    let v = sinpi_core ~wp:(wp_of prec) mag in
    Approx (if s < 0 then F.neg v else v)
  end

(* ------------------------------------------------------------------ *)
(* sin / cos / tan (radians, full range).                              *)
(* ------------------------------------------------------------------ *)

(* Reduce x to (q, r) with x = k*(pi/2) + r, |r| <= pi/4 + eps and
   q = k mod 4.  Huge arguments cancel against k*(pi/2) almost
   completely — the classic Payne–Hanek concern — so the working
   precision grows with ilog2 |x|: after losing those bits to
   cancellation, [r] still carries [wp] good bits plus slack.  The
   oracle is off the fast path, so plain extended-precision arithmetic
   (rather than a fixed-point 2/pi table) is the right tool here; the
   runtime table in [Funcs.Tables] is validated against this. *)
let trig_reduce ~wp x =
  let mag = if Q.is_zero x then 0 else max 0 (Q.ilog2 x) in
  (* |r| for a double input is bounded below by the worst-case closeness
     of a 53-bit float to a multiple of pi/2 (> 2^-70); mag + 80 bits of
     slack keep the reduced value's relative error below 2^-wp-8. *)
  let w = wp + mag + 80 in
  let halfpi = F.mul_pow2 (pi ~prec:w) (-1) in
  let xf = F.of_rational ~prec:w x in
  let k = Q.round_nearest (F.to_rational (F.div ~prec:w xf halfpi)) in
  let r = F.sub ~prec:w xf (F.mul ~prec:w halfpi (F.of_bigint k)) in
  let q = (B.to_int_exn (B.rem k (B.of_int 4)) + 4) land 3 in
  (q, r)

(* sin(r)/cos(r) for |r| <= pi/4 + eps, computed on |r| with the sign
   restored (the series are used only on non-negative arguments
   elsewhere in this file; keep that invariant). *)
let sin_small ~wp r =
  if F.is_zero r then F.zero
  else begin
    let v = sin_series ~wp (F.abs r) in
    if F.sign r < 0 then F.neg v else v
  end

let cos_small ~wp r = cos_series ~wp (F.abs r)

let sin ~prec x =
  if Q.is_zero x then Exact Q.zero
  else begin
    let wp = wp_of prec in
    let q, r = trig_reduce ~wp x in
    Approx
      (match q with
      | 0 -> sin_small ~wp r
      | 1 -> cos_small ~wp r
      | 2 -> F.neg (sin_small ~wp r)
      | _ -> F.neg (cos_small ~wp r))
  end

let cos ~prec x =
  if Q.is_zero x then Exact Q.one
  else begin
    let wp = wp_of prec in
    let q, r = trig_reduce ~wp x in
    Approx
      (match q with
      | 0 -> cos_small ~wp r
      | 1 -> F.neg (sin_small ~wp r)
      | 2 -> F.neg (cos_small ~wp r)
      | _ -> sin_small ~wp r)
  end

(* tan x = sin x / cos x on the shared reduction: q even gives
   sin(r)/cos(r), q odd gives -cos(r)/sin(r).  The denominator never
   vanishes: cos(r) >= cos(pi/4) - eps, and sin(r) = 0 only at r = 0,
   which requires x to be an exact multiple of pi/2 — impossible for
   rational x other than 0 (already handled as Exact). *)
let tan ~prec x =
  if Q.is_zero x then Exact Q.zero
  else begin
    let wp = wp_of prec in
    let q, r = trig_reduce ~wp:(wp + 10) x in
    let s = sin_small ~wp:(wp + 10) r and c = cos_small ~wp:(wp + 10) r in
    Approx (if q land 1 = 0 then F.div ~prec:wp s c else F.neg (F.div ~prec:wp c s))
  end

(* ------------------------------------------------------------------ *)
(* sinh / cosh.                                                        *)
(* ------------------------------------------------------------------ *)

let sinh ~prec x =
  if Q.is_zero x then Exact Q.zero
  else begin
    let wp = wp_of prec in
    let a = Q.abs x in
    let v =
      if Q.compare a Q.one < 0 then sinh_series ~wp (F.of_rational ~prec:wp a)
      else begin
        let e = exp_approx ~wp:(wp + 10) a in
        F.mul_pow2 (F.sub ~prec:wp e (F.div ~prec:(wp + 10) F.one e)) (-1)
      end
    in
    Approx (if Q.sign x < 0 then F.neg v else v)
  end

let cosh ~prec x =
  if Q.is_zero x then Exact Q.one
  else begin
    let wp = wp_of prec in
    let a = Q.abs x in
    let v =
      if Q.compare a Q.one < 0 then cosh_series ~wp (F.of_rational ~prec:wp a)
      else begin
        let e = exp_approx ~wp:(wp + 10) a in
        F.mul_pow2 (F.add ~prec:wp e (F.div ~prec:(wp + 10) F.one e)) (-1)
      end
    in
    Approx v
  end

(* ------------------------------------------------------------------ *)
(* Extension functions (the paper's §7 direction: more elementary      *)
(* functions on the same machinery).                                   *)
(* ------------------------------------------------------------------ *)

(* expm1(x) = e^x - 1: the direct series for |x| < 1 avoids the
   cancellation that exp(x) - 1 would suffer near zero. *)
let expm1 ~prec x =
  if Q.is_zero x then Exact Q.zero
  else begin
    let wp = wp_of prec in
    if Q.compare (Q.abs x) Q.one < 0 then begin
      let t = F.of_rational ~prec:wp x in
      let sum = ref t and term = ref t and k = ref 2 in
      let continue = ref true in
      while !continue do
        term := F.div_int ~prec:wp (F.mul ~prec:wp !term t) !k;
        sum := F.add ~prec:wp !sum !term;
        incr k;
        if negligible ~wp ~sum:!sum !term then continue := false
      done;
      Approx !sum
    end
    else Approx (F.sub ~prec:wp (exp_approx ~wp:(wp + 10) x) F.one)
  end

(* tanh(x) = (E - 1/E)/(E + 1/E) with E = e^|x|; for |x| < 1 the ratio
   sinh/cosh of the series avoids cancellation (both series are
   benign). *)
let tanh ~prec x =
  if Q.is_zero x then Exact Q.zero
  else begin
    let wp = wp_of prec in
    let a = Q.abs x in
    let v =
      if Q.compare a Q.one < 0 then begin
        let fa = F.of_rational ~prec:(wp + 10) a in
        F.div ~prec:wp (sinh_series ~wp:(wp + 10) fa) (cosh_series ~wp:(wp + 10) fa)
      end
      else begin
        let e = exp_approx ~wp:(wp + 10) a in
        let inv = F.div ~prec:(wp + 10) F.one e in
        F.div ~prec:wp (F.sub ~prec:(wp + 10) e inv) (F.add ~prec:(wp + 10) e inv)
      end
    in
    Approx (if Q.sign x < 0 then F.neg v else v)
  end

(* log1p under its libm name: the cancellation-free atanh form near
   zero, the full logarithm elsewhere (the atanh series in r/(2+r)
   stops converging as the argument grows). *)
let log1p ~prec r =
  if Q.is_zero r then Exact Q.zero
  else if Q.compare (Q.abs r) (Q.of_ints 1 4) <= 0 then ln_1p ~prec r
  else begin
    let x = Q.add Q.one r in
    if Q.sign x <= 0 then invalid_arg "Elementary.log1p: argument <= -1";
    ln ~prec x
  end

(* ------------------------------------------------------------------ *)
(* Ziv's strategy.                                                     *)
(* ------------------------------------------------------------------ *)

let correctly_rounded ?(init_prec = 80) ~round (f : fn) x =
  let rec go prec =
    if prec > 1 lsl 16 then failwith "Elementary.correctly_rounded: Ziv loop did not converge";
    match f ~prec x with
    | Exact q -> round q
    | Approx y ->
        let qy = F.to_rational y in
        let margin = Rational.abs (Q.mul_pow2 qy (12 - prec)) in
        let lo = Q.sub qy margin and hi = Q.add qy margin in
        let rlo = round lo and rhi = round hi in
        if rlo = rhi then rlo else go (prec * 2)
  in
  go init_prec

let to_double f x = correctly_rounded ~round:Q.to_float f x

let by_name = function
  | "exp" -> exp
  | "exp2" -> exp2
  | "exp10" -> exp10
  | "ln" -> ln
  | "log2" -> log2
  | "log10" -> log10
  | "sinh" -> sinh
  | "cosh" -> cosh
  | "sinpi" -> sinpi
  | "cospi" -> cospi
  | "sin" -> sin
  | "cos" -> cos
  | "tan" -> tan
  | "tanh" -> tanh
  | "expm1" -> expm1
  | "log1p" -> log1p
  | name -> invalid_arg ("Elementary.by_name: unknown function " ^ name)
