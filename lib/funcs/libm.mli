(** The generated math library.

    Functions are generated deterministically on first use (the paper
    ships pre-generated coefficient tables; regeneration here is
    deterministic: same algorithms, same enumeration, same tables every
    run) and cached per (function, target, quality). *)

type quality =
  | Draft
      (** 2 patterns per stratum: for benchmarks — the run-time code path
          (tables + Horner + compensation) is identical at every quality,
          only the constraint coverage differs *)
  | Quick  (** 8 patterns per stratum: the correctness-experiment default *)
  | Full  (** 24 patterns per stratum: 3x the enumeration *)

(** The input enumeration a quality level drives generation with
    (exhaustive for 16-bit targets regardless of quality). *)
val enumeration : Specs.target -> quality -> int array

(** [get ?quality ?cfg target name] generates (or fetches) one function.
    Names: the paper's ten — ["ln"], ["log2"], ["log10"], ["exp"],
    ["exp2"], ["exp10"], ["sinh"], ["cosh"], ["sinpi"], ["cospi"] — plus
    the extensions ["tanh"], ["expm1"], ["log1p"] and the full-range
    radian trig family ["sin"], ["cos"], ["tan"] (Payne–Hanek
    reduction; IEEE targets only).
    @raise Failure when generation fails (a spec bug, not a user error).
    @raise Invalid_argument on an unknown name. *)
val get :
  ?quality:quality -> ?cfg:Rlibm.Config.t -> Specs.target -> string -> Rlibm.Generator.generated

(** [eval_pattern target name pat]: one-call convenience around {!get}
    and {!Rlibm.Generator.eval_pattern}. *)
val eval_pattern : ?quality:quality -> ?cfg:Rlibm.Config.t -> Specs.target -> string -> int -> int

(** Float32 convenience API: double in, double out, float32 values. *)
module F32 : sig
  (** [fn name] generates on first call and returns the evaluator. *)
  val fn : ?quality:quality -> string -> float -> float

  val ln : ?quality:quality -> unit -> float -> float
  val log2 : ?quality:quality -> unit -> float -> float
  val log10 : ?quality:quality -> unit -> float -> float
  val exp : ?quality:quality -> unit -> float -> float
  val exp2 : ?quality:quality -> unit -> float -> float
  val exp10 : ?quality:quality -> unit -> float -> float
  val sinh : ?quality:quality -> unit -> float -> float
  val cosh : ?quality:quality -> unit -> float -> float
  val sinpi : ?quality:quality -> unit -> float -> float
  val cospi : ?quality:quality -> unit -> float -> float
  val sin : ?quality:quality -> unit -> float -> float
  val cos : ?quality:quality -> unit -> float -> float
  val tan : ?quality:quality -> unit -> float -> float
end

(** Posit32 convenience API: patterns in, patterns out. *)
module P32 : sig
  val fn : ?quality:quality -> string -> int -> int
end
