(* Assembles Rlibm.Spec values: one per (function, target).

   Special-case regions (the paper's §2/§5 case analyses) are driven by
   per-target thresholds, each derived from the format's extremes:

   - [exp_hi]: x with f(x) past the format's overflow/saturation
     boundary for every x >= exp_hi (IEEE: rounds to +inf; posit:
     saturates to maxpos);
   - [exp_lo]: x with f(x) at-or-below the underflow boundary (IEEE:
     rounds to +0; posit: rounds to minpos — posits never underflow);
   - [sinh_hi]: |x| past sinh/cosh overflow;
   - [trig_int]: |x| at which every representable value is an integer,
     so sinpi = 0 and cospi = +-1 exactly.

   Tiny-input short-circuits (sinh/tanh/sin/tan/expm1/log1p result x;
   cosh/cos/cospi result 1) use the named per-target thresholds defined
   below ([sinh_snap] and friends), each derived from the target's
   precision so the first neglected Taylor term is provably below half
   an ulp of the result; test/test_specs.ml brute-forces every
   threshold against the oracle around its boundary. *)

module S = Rlibm.Spec
module R = Reductions
module E = Oracle.Elementary
module Repr = Fp.Representation

type target = {
  repr : (module Repr.S);
  tname : string;
  fmt : Fp.Ieee.format option;  (* None for posits *)
  mode : Fp.Rounding_mode.t;
      (* Rounding mode of the generated table.  RNE for the ordinary
         targets; Odd for the (n+2)-bit extended targets whose to-odd
         results re-round correctly under every standard mode. *)
  nan : int;  (* NaN or NaR result pattern *)
  pos_inf : int;  (* exact +inf result, e.g. f(+inf) or the ln(+inf) pole *)
  neg_inf : int;  (* exact -inf result *)
  zero_result : int;  (* exact zero result, e.g. exp(-inf) *)
  ovf_pos : int;
      (* finite x past the overflow boundary: IEEE RNE +inf, to-odd
         maxfinite (odd mantissa, so to-odd never reaches inf), posit
         maxpos *)
  ovf_neg : int;
  und_pos : int;
      (* finite positive result below the underflow boundary: IEEE RNE
         +0, to-odd the smallest subnormal (truncate to 0, sticky set ->
         odd LSB), posit minpos *)
  exp_hi : float;
  exp_lo : float;
  exp2_hi : float;
  exp2_lo : float;
  exp10_hi : float;
  exp10_lo : float;
  sinh_hi : float;
  trig_int : float;
  one_snap : float;
      (* |x| at or below this snaps the exp family to 1.0: chosen so
         |log_b(e)*x| is below half an ulp of 1 in the target.  Besides
         being the paper's special case, it bounds the reduced-input
         exponent spread, which is what keeps the exact LP's tableau
         entries narrow (without it, reduced inputs span every binade
         down to the smallest subnormal and simplex pivots blow up). *)
  trig_tiny : float;
      (* |x| at or below this makes sinpi(x) round like pi*x computed in
         double (paper §2's first special class), and cospi(x) round to
         1; the cubic term is provably below half an ulp. *)
  tanh_hi : float;  (* |x| past this, tanh rounds to +-1 *)
  expm1_lo : float;  (* x at or below this, expm1 rounds to -1 *)
  log_zero : int;  (* result for ln(0): IEEE -inf, posit NaR *)
}

let ieee_target (fmt : Fp.Ieee.format) repr tname ~exp_hi ~exp_lo ~exp2_hi ~exp2_lo ~exp10_hi
    ~exp10_lo ~sinh_hi ~trig_int ~one_snap ~trig_tiny ~tanh_hi ~expm1_lo =
  {
    repr;
    tname;
    fmt = Some fmt;
    mode = Fp.Rounding_mode.Rne;
    nan = Fp.Ieee.nan_pattern fmt;
    pos_inf = Fp.Ieee.inf_pattern fmt 1;
    neg_inf = Fp.Ieee.inf_pattern fmt (-1);
    zero_result = 0;
    ovf_pos = Fp.Ieee.inf_pattern fmt 1;
    ovf_neg = Fp.Ieee.inf_pattern fmt (-1);
    und_pos = 0;
    exp_hi;
    exp_lo;
    exp2_hi;
    exp2_lo;
    exp10_hi;
    exp10_lo;
    sinh_hi;
    trig_int;
    one_snap;
    trig_tiny;
    tanh_hi;
    expm1_lo;
    log_zero = Fp.Ieee.inf_pattern fmt (-1);
  }

let float32 =
  ieee_target Fp.Ieee.float32
    (module Fp.Fp32 : Repr.S)
    "float32" ~exp_hi:88.8 ~exp_lo:(-104.0) ~exp2_hi:128.0 ~exp2_lo:(-150.0) ~exp10_hi:38.6
    ~exp10_lo:(-45.2) ~sinh_hi:89.5 ~trig_int:(Float.ldexp 1.0 23)
    ~one_snap:(Float.ldexp 1.0 (-27)) ~trig_tiny:(Float.ldexp 1.0 (-24)) ~tanh_hi:9.2
    ~expm1_lo:(-17.4)

let bfloat16 =
  ieee_target Fp.Ieee.bfloat16
    (module Fp.Bfloat16 : Repr.S)
    "bfloat16" ~exp_hi:89.0 ~exp_lo:(-93.0) ~exp2_hi:128.0 ~exp2_lo:(-134.0) ~exp10_hi:38.6
    ~exp10_lo:(-40.4) ~sinh_hi:89.5 ~trig_int:256.0 ~one_snap:(Float.ldexp 1.0 (-12))
    ~trig_tiny:(Float.ldexp 1.0 (-9)) ~tanh_hi:3.9 ~expm1_lo:(-6.4)

let float16 =
  ieee_target Fp.Ieee.float16
    (module Fp.Float16 : Repr.S)
    "float16" ~exp_hi:11.1 ~exp_lo:(-17.4) ~exp2_hi:16.0 ~exp2_lo:(-25.0) ~exp10_hi:4.83
    ~exp10_lo:(-7.6) ~sinh_hi:11.8 ~trig_int:2048.0 ~one_snap:(Float.ldexp 1.0 (-14))
    ~trig_tiny:(Float.ldexp 1.0 (-11)) ~tanh_hi:4.4 ~expm1_lo:(-7.8)

let posit_target n repr tname ~exp_hi ~exp_lo ~exp2_hi ~exp2_lo ~exp10_hi ~exp10_lo ~sinh_hi
    ~one_snap =
  let nar = 1 lsl (n - 1) in
  {
    repr;
    tname;
    fmt = None;
    mode = Fp.Rounding_mode.Rne;
    nan = nar;
    pos_inf = nar - 1 (* maxpos: posits have no infinities *);
    neg_inf = nar + 1 (* -maxpos *);
    zero_result = 1 (* minpos: posits never round a positive value to 0 *);
    ovf_pos = nar - 1 (* saturation is mode-independent for posits *);
    ovf_neg = nar + 1;
    und_pos = 1;
    exp_hi;
    exp_lo;
    exp2_hi;
    exp2_lo;
    exp10_hi;
    exp10_lo;
    sinh_hi;
    trig_int = Float.ldexp 1.0 26 (* all posit values this large are integers *);
    one_snap;
    trig_tiny = Float.ldexp 1.0 (-30);
    tanh_hi = 10.8;
    expm1_lo = -20.0;
    log_zero = nar;
  }

let posit32 =
  posit_target 32
    (module Posit.Posit32 : Repr.S)
    "posit32" ~exp_hi:83.6 ~exp_lo:(-83.6) ~exp2_hi:120.5 ~exp2_lo:(-120.5) ~exp10_hi:36.3
    ~exp10_lo:(-36.3) ~sinh_hi:84.5 ~one_snap:(Float.ldexp 1.0 (-31))

let posit16 =
  posit_target 16
    (module Posit.Posit16 : Repr.S)
    "posit16" ~exp_hi:19.8 ~exp_lo:(-19.8) ~exp2_hi:28.5 ~exp2_lo:(-28.5) ~exp10_hi:8.6
    ~exp10_lo:(-8.6) ~sinh_hi:20.5 ~one_snap:(Float.ldexp 1.0 (-16))

(* ------------------------------------------------------------------ *)
(* Extended round-to-odd targets (the RLIBM-ALL construction): the base
   format plus two mantissa bits, generated under round-to-odd.  One
   such table serves every representation of at most the base precision
   in every standard rounding mode (see Fp.Odd_extended).               *)
(* ------------------------------------------------------------------ *)

module Float34 = Fp.Odd_extended.Make (struct
  let fmt = Fp.Ieee.float32
  let ext_name = "float34"
end)

module Bfloat18 = Fp.Odd_extended.Make (struct
  let fmt = Fp.Ieee.bfloat16
  let ext_name = "bfloat18"
end)

module Float18 = Fp.Odd_extended.Make (struct
  let fmt = Fp.Ieee.float16
  let ext_name = "float18"
end)

let odd_target (fmt : Fp.Ieee.format) repr tname ~exp_hi ~exp_lo ~exp2_hi ~exp2_lo ~exp10_hi
    ~exp10_lo ~sinh_hi ~trig_int ~one_snap ~trig_tiny ~tanh_hi ~expm1_lo =
  {
    repr;
    tname;
    fmt = Some fmt;
    mode = Fp.Rounding_mode.Odd;
    nan = Fp.Ieee.nan_pattern fmt;
    pos_inf = Fp.Ieee.inf_pattern fmt 1;
    neg_inf = Fp.Ieee.inf_pattern fmt (-1);
    zero_result = 0;
    (* To-odd overflow stops at maxfinite (its all-ones mantissa is
       already odd) and underflow stops at the smallest subnormal (the
       sticky record of the discarded value sets the LSB). *)
    ovf_pos = Fp.Ieee.max_finite_pattern fmt 1;
    ovf_neg = Fp.Ieee.max_finite_pattern fmt (-1);
    und_pos = 1;
    exp_hi;
    exp_lo;
    exp2_hi;
    exp2_lo;
    exp10_hi;
    exp10_lo;
    sinh_hi;
    trig_int;
    one_snap;
    trig_tiny;
    tanh_hi;
    expm1_lo;
    log_zero = Fp.Ieee.inf_pattern fmt (-1);
  }

(* Saturation thresholds: overflow when b^x > maxfinite of the extended
   format (ln maxfinite34 = 88.722..., log2 = 128, log10 = 38.53...);
   underflow to pattern 1 when b^x is at or below the smallest subnormal
   2^(emin - mb - 2).  The one_snap radius is at most 2^-(mb + 2): both
   to-odd neighbors of 1.0 own two-ulp rounding regions, and |b^x - 1|
   is below 2.303|x| < 2^-mb inside that radius for every base. *)
let float34 =
  odd_target Float34.fmt
    (module Float34 : Repr.S)
    "float34" ~exp_hi:88.8 ~exp_lo:(-104.7) ~exp2_hi:128.0 ~exp2_lo:(-151.0) ~exp10_hi:38.6
    ~exp10_lo:(-45.5) ~sinh_hi:89.5 ~trig_int:(Float.ldexp 1.0 25)
    ~one_snap:(Float.ldexp 1.0 (-27)) ~trig_tiny:(Float.ldexp 1.0 (-24)) ~tanh_hi:9.2
    ~expm1_lo:(-17.4)

let bfloat18 =
  odd_target Bfloat18.fmt
    (module Bfloat18 : Repr.S)
    "bfloat18" ~exp_hi:88.8 ~exp_lo:(-93.6) ~exp2_hi:128.0 ~exp2_lo:(-135.0) ~exp10_hi:38.6
    ~exp10_lo:(-40.7) ~sinh_hi:89.5 ~trig_int:(Float.ldexp 1.0 9)
    ~one_snap:(Float.ldexp 1.0 (-13)) ~trig_tiny:(Float.ldexp 1.0 (-9)) ~tanh_hi:3.9
    ~expm1_lo:(-6.4)

let float18 =
  odd_target Float18.fmt
    (module Float18 : Repr.S)
    "float18" ~exp_hi:11.1 ~exp_lo:(-18.1) ~exp2_hi:16.0 ~exp2_lo:(-26.0) ~exp10_hi:4.83
    ~exp10_lo:(-7.9) ~sinh_hi:11.8 ~trig_int:(Float.ldexp 1.0 12)
    ~one_snap:(Float.ldexp 1.0 (-16)) ~trig_tiny:(Float.ldexp 1.0 (-11)) ~tanh_hi:4.4
    ~expm1_lo:(-7.8)

(** [with_mode t mode] re-targets [t] at a different rounding mode,
    recomputing the mode-dependent saturation results.  The thresholds
    themselves are mode-valid as they stand: every [*_hi] guarantees
    f(x) strictly above maxfinite (not merely above the nearest-mode
    midpoint) and every [*_lo] guarantees f(x) strictly below the
    smallest subnormal (IEEE) — the saturated *result* is all that
    changes between modes.  Posit saturation is mode-independent
    (posits have no infinities and never round a nonzero value to
    zero), so only the mode field changes. *)
let with_mode (t : target) mode =
  match t.fmt with
  | None -> { t with mode }
  | Some fmt ->
      let module M = Fp.Rounding_mode in
      let ovf sign =
        let to_inf =
          match mode with
          | M.Rne | M.Rna -> true
          | M.Up -> sign > 0
          | M.Down -> sign < 0
          | M.Zero | M.Odd -> false
        in
        if to_inf then Fp.Ieee.inf_pattern fmt sign else Fp.Ieee.max_finite_pattern fmt sign
      in
      let und =
        match mode with M.Rne | M.Rna | M.Down | M.Zero -> 0 | M.Up | M.Odd -> 1
      in
      { t with mode; ovf_pos = ovf 1; ovf_neg = ovf (-1); und_pos = und }

(* ------------------------------------------------------------------ *)
(* Tiny-input thresholds.
   Each snap below is the largest power of two 2^-e such that the first
   neglected Taylor term stays strictly below half an ulp of the result
   for every representable |x| <= 2^-e, with the binade edge (where the
   ulp halves on one side) as the binding case.  [p] is the precision in
   significant bits including the hidden bit.  Derivations, with
   half-gap = half the pattern spacing on the side the error points to:

   - sinh x = x + x^3/6 + ... > x; worst at a binade top (x < 2^(k+1),
     half-gap above = 2^(k-p)): x^3/6 < 2^(k-p) <== x^2 < 3*2^-p,
     so e = floor(p/2) gives x^2 <= 2^-(2*floor(p/2)) <= 2*2^-p with a
     >= 1.5x margin absorbing the series tail.
   - tanh x = x - x^3/3 + ... < x, and tan x = x + x^3/3 + ... > x: the
     x^3/3 term needs x^2 < 1.5*2^-p, so e = ceil(p/2).  sin x (term
     x^3/6, below x) shares tan's threshold.
   - cosh x = 1 + x^2/2 + ... > 1 (half-gap above 1 = 2^-p):
     x^2 < 2^(1-p), e = ceil(p/2).
   - cos x = 1 - x^2/2 + ... < 1 (half-gap *below* 1 = 2^-(p+1), one
     binade tighter): x^2 < 2^-p, e = floor(p/2) + 1.
   - cospi x = 1 - (pi x)^2/2 + ... < 1: (pi x)^2 < 2^-p, so
     e = ceil((p + log2 pi^2)/2) = floor((p+5)/2).  The seed's flat
     2^-13 was *unsound* here for float32 (p = 24 needs e = 14:
     (pi*2^-13)^2/2 ~ 2^-23.7 is ~2.3 ulps below 1) and for posit32.
   - expm1 x = x + x^2/2 + ... and log1p x = x - x^2/2 + ...: the error
     points across the binade edge at |x| = 2^k (half-gap 2^(k-p-1)),
     giving |x| < 2^-p; e = p + 1 keeps a 2x margin.

   For posits [p] is the maximum (tapered) precision, reached in the
   binade of 1.0; away from 1 the relative spacing only widens, so every
   x-passthrough threshold derived from it is conservative.            *)
(* ------------------------------------------------------------------ *)

(* Precision in significant bits (including the hidden bit) in the
   binade of 1.0. *)
let precision (t : target) =
  match t.fmt with
  | Some f -> f.Fp.Ieee.mb + 1
  | None -> (
      (* posit<n,es>: 1.0 sits next to the shortest regime, leaving
         n - 2 - es significant bits. *)
      match t.tname with
      | "posit32" -> 28
      | "posit16" -> 13
      | _ -> invalid_arg ("Specs.precision: unknown posit target " ^ t.tname))

let snap e = Float.ldexp 1.0 (-e)
let sinh_snap t = snap (precision t / 2)
let tanh_snap t = snap ((precision t + 1) / 2)
let trig_snap t = snap ((precision t + 1) / 2)
let cosh_snap t = snap ((precision t + 1) / 2)
let cos_snap t = snap ((precision t / 2) + 1)
let cospi_snap t = snap ((precision t + 5) / 2)
let expm1_snap t = snap (precision t + 1)
let log1p_snap t = snap (precision t + 1)

(* ------------------------------------------------------------------ *)
(* Special-case builders.                                              *)
(* ------------------------------------------------------------------ *)

(* Wrap a Finite-case function with the NaN/inf plumbing. *)
let with_classify (t : target) ~on_pos_inf ~on_neg_inf finite pat =
  let module T = (val t.repr) in
  match T.classify pat with
  | Repr.Nan -> Some t.nan
  | Repr.Inf s -> Some (if s > 0 then on_pos_inf else on_neg_inf)
  | Repr.Finite -> finite (T.to_double pat) pat

let exp_family_special (t : target) ~hi ~lo =
  let module T = (val t.repr) in
  let one = T.of_double 1.0 in
  (* The snap is mode-aware.  Nearest modes: |b^x - 1| is far below half
     an ulp inside the snap radius, so the result is 1 itself.  Directed
     modes resolve by the sign of x (b^x is strictly between 1 and a
     neighbor; it is never exactly 1 for x <> 0, and never a tie).
     To-odd always lands on the adjacent *odd* pattern — 1 has an even,
     all-zero mantissa — on the side x selects.  Pattern +-1 arithmetic
     crosses 1.0's binade boundary correctly because IEEE patterns are
     ordinal within a sign. *)
  let snap x =
    if x = 0.0 then one
    else
      match t.mode with
      | Fp.Rounding_mode.Rne | Fp.Rounding_mode.Rna -> one
      | Fp.Rounding_mode.Odd -> if x > 0.0 then one + 1 else one - 1
      | Fp.Rounding_mode.Up -> if x > 0.0 then one + 1 else one
      | Fp.Rounding_mode.Down | Fp.Rounding_mode.Zero -> if x > 0.0 then one else one - 1
  in
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:t.zero_result (fun x _pat ->
      if x >= hi then Some t.ovf_pos
      else if x <= lo then Some t.und_pos
      else if Float.abs x <= t.one_snap then Some (snap x)
      else None)

let log_family_special (t : target) =
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:t.nan (fun x _pat ->
      if x = 0.0 then Some t.log_zero else if x < 0.0 then Some t.nan else None)

let sinh_special (t : target) =
  let tiny = sinh_snap t in
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:t.neg_inf (fun x pat ->
      if x >= t.sinh_hi then Some t.ovf_pos
      else if x <= -.t.sinh_hi then Some t.ovf_neg
      else if Float.abs x <= tiny then Some pat (* sinh x ~ x *)
      else None)

let cosh_special (t : target) =
  let module T = (val t.repr) in
  let one = T.of_double 1.0 in
  let tiny = cosh_snap t in
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:t.pos_inf (fun x _pat ->
      if Float.abs x >= t.sinh_hi then Some t.ovf_pos
      else if Float.abs x <= tiny then Some one
      else None)

let sinpi_special (t : target) =
  let module T = (val t.repr) in
  with_classify t ~on_pos_inf:t.nan ~on_neg_inf:t.nan (fun x _pat ->
      if Float.abs x >= t.trig_int then
        (* Integer input: sinpi is odd, so the exact zero carries the
           sign of x (-0 for negative integers; posits collapse both
           signs onto their single zero). *)
        Some (T.of_double (Float.copy_sign 0.0 x))
      else if Float.abs x <= t.trig_tiny then
        (* pi*x in double, rounded once: the cubic term is below half an
           ulp at this threshold (paper §2, first special class); the
           product preserves the sign of x, so sinpi(-0) = -0. *)
        Some (T.of_double (Parallel.Once.get Tables.pi_d *. x))
      else None)

let cospi_special (t : target) =
  let module T = (val t.repr) in
  let one = T.of_double 1.0 and minus_one = T.of_double (-1.0) in
  let tiny = cospi_snap t in
  with_classify t ~on_pos_inf:t.nan ~on_neg_inf:t.nan (fun x _pat ->
      let a = Float.abs x in
      if a >= t.trig_int then
        (* Every such value is an integer; Float.rem is exact. *)
        Some (if Float.rem a 2.0 = 1.0 then minus_one else one)
      else if a <= tiny then Some one
      else None)

let tanh_special (t : target) =
  let module T = (val t.repr) in
  let one = T.of_double 1.0 and minus_one = T.of_double (-1.0) in
  let tiny = tanh_snap t in
  with_classify t ~on_pos_inf:one ~on_neg_inf:minus_one (fun x pat ->
      if x >= t.tanh_hi then Some one
      else if x <= -.t.tanh_hi then Some minus_one
      else if Float.abs x <= tiny then Some pat (* tanh x ~ x *)
      else None)

let expm1_special (t : target) =
  let module T = (val t.repr) in
  let minus_one = T.of_double (-1.0) in
  let tiny = expm1_snap t in
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:minus_one (fun x pat ->
      if x >= t.exp_hi then Some t.ovf_pos
      else if x <= t.expm1_lo then Some minus_one
      else if Float.abs x <= tiny then Some pat (* expm1 x ~ x *)
      else None)

let log1p_special (t : target) =
  let tiny = log1p_snap t in
  with_classify t ~on_pos_inf:t.pos_inf ~on_neg_inf:t.nan (fun x pat ->
      if x < -1.0 then Some t.nan
      else if x = -1.0 then Some t.log_zero
      else if Float.abs x <= tiny then Some pat (* log1p x ~ x *)
      else None)

(* Radian trig: NaN for infinities; the only other specials are the
   tiny-input snaps (sin x ~ x, tan x ~ x, cos x ~ 1) — every other
   finite input goes through the Payne–Hanek reduction.  The pattern
   passthrough preserves signed zero (sin/tan are odd). *)
let sin_special (t : target) =
  let tiny = trig_snap t in
  with_classify t ~on_pos_inf:t.nan ~on_neg_inf:t.nan (fun x pat ->
      if Float.abs x <= tiny then Some pat else None)

let tan_special = sin_special

let cos_special (t : target) =
  let module T = (val t.repr) in
  let one = T.of_double 1.0 in
  let tiny = cos_snap t in
  with_classify t ~on_pos_inf:t.nan ~on_neg_inf:t.nan (fun x _pat ->
      if Float.abs x <= tiny then Some one else None)

(* ------------------------------------------------------------------ *)
(* Components.                                                         *)
(* ------------------------------------------------------------------ *)

let log_component name oracle =
  {
    S.cname = name;
    coracle = oracle;
    terms = [| 1; 2; 3 |];
    dom_pos = Some R.log_dom_pos;
    dom_neg = None;
  }

let exp_component name oracle ~half_width =
  let dn, dp = R.exp_dom ~half_width in
  { S.cname = name; coracle = oracle; terms = [| 0; 1; 2; 3 |]; dom_pos = dp; dom_neg = dn }

let sinpi_r_component =
  {
    S.cname = "sinpi_r";
    coracle = E.sinpi;
    terms = [| 1; 3; 5 |];
    dom_pos = Some R.sincospi_dom_pos;
    dom_neg = None;
  }

let cospi_r_component =
  {
    S.cname = "cospi_r";
    coracle = E.cospi;
    terms = [| 0; 2; 4 |];
    dom_pos = Some R.sincospi_dom_pos;
    dom_neg = None;
  }

let sinh_r_component =
  {
    S.cname = "sinh_r";
    coracle = E.sinh;
    terms = [| 1; 3; 5 |];
    dom_pos = Some R.sinhcosh_dom_pos;
    dom_neg = None;
  }

let cosh_r_component =
  {
    S.cname = "cosh_r";
    coracle = E.cosh;
    terms = [| 0; 2; 4 |];
    dom_pos = Some R.sinhcosh_dom_pos;
    dom_neg = None;
  }

(* Radian trig components: one sin/cos pair on the Payne–Hanek +
   table-fold reduced domain |r| <= pi/1024 serves sin, cos and tan
   (quotient).  The residual is signed (r1 rounds to the nearest
   pi/512 grid point), so both sign groups are fitted, like the exp
   family's. *)
let trig_dom_neg, trig_dom_pos = R.trig_dom

let sin_r_component =
  {
    S.cname = "sin_r";
    coracle = E.sin;
    terms = [| 1; 3; 5 |];
    dom_pos = trig_dom_pos;
    dom_neg = trig_dom_neg;
  }

let cos_r_component =
  {
    S.cname = "cos_r";
    coracle = E.cos;
    terms = [| 0; 2; 4 |];
    dom_pos = trig_dom_pos;
    dom_neg = trig_dom_neg;
  }

(* ------------------------------------------------------------------ *)
(* Specs.                                                              *)
(* ------------------------------------------------------------------ *)

let ln (t : target) =
  {
    S.name = "ln";
    repr = t.repr;
    mode = t.mode;
    oracle = E.ln;
    special = log_family_special t;
    reduce = R.log_reduce;
    components = [| log_component "ln_1p" E.ln_1p |];
    compensate = R.ln_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let log2 (t : target) =
  {
    S.name = "log2";
    repr = t.repr;
    mode = t.mode;
    oracle = E.log2;
    special = log_family_special t;
    reduce = R.log_reduce;
    components = [| log_component "log2_1p" E.log2_1p |];
    compensate = R.log2_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let log10 (t : target) =
  {
    S.name = "log10";
    repr = t.repr;
    mode = t.mode;
    oracle = E.log10;
    special = log_family_special t;
    reduce = R.log_reduce;
    components = [| log_component "log10_1p" E.log10_1p |];
    compensate = R.log10_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let exp (t : target) =
  {
    S.name = "exp";
    repr = t.repr;
    mode = t.mode;
    oracle = E.exp;
    special = exp_family_special t ~hi:t.exp_hi ~lo:t.exp_lo;
    reduce =
      (fun x ->
        R.exp_reduce ~inv_c:92.332482616893656877 (* 64/ln2 *)
          ~cw:(Parallel.Once.get Tables.ln2_over_64) x);
    components = [| exp_component "exp_r" E.exp ~half_width:0.0054182 |];
    compensate = R.exp_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let exp2 (t : target) =
  {
    S.name = "exp2";
    repr = t.repr;
    mode = t.mode;
    oracle = E.exp2;
    special = exp_family_special t ~hi:t.exp2_hi ~lo:t.exp2_lo;
    reduce = R.exp2_reduce;
    components = [| exp_component "exp2_r" E.exp2 ~half_width:0.0078125 |];
    compensate = R.exp_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let exp10 (t : target) =
  {
    S.name = "exp10";
    repr = t.repr;
    mode = t.mode;
    oracle = E.exp10;
    special = exp_family_special t ~hi:t.exp10_hi ~lo:t.exp10_lo;
    reduce =
      (fun x ->
        R.exp_reduce ~inv_c:212.60335893188592315 (* 64*log2(10) *)
          ~cw:(Parallel.Once.get Tables.log10_2_over_64) x);
    components = [| exp_component "exp10_r" E.exp10 ~half_width:0.0023526 |];
    compensate = R.exp_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let sinh (t : target) =
  {
    S.name = "sinh";
    repr = t.repr;
    mode = t.mode;
    oracle = E.sinh;
    special = sinh_special t;
    reduce = R.sinhcosh_reduce;
    components = [| sinh_r_component; cosh_r_component |];
    compensate = R.sinh_compensate;
    oc_corners = false;
    split_hint = 4;
  }

let cosh (t : target) =
  {
    S.name = "cosh";
    repr = t.repr;
    mode = t.mode;
    oracle = E.cosh;
    special = cosh_special t;
    reduce = R.sinhcosh_reduce;
    components = [| sinh_r_component; cosh_r_component |];
    compensate = R.cosh_compensate;
    oc_corners = false;
    split_hint = 4;
  }

let sinpi (t : target) =
  {
    S.name = "sinpi";
    repr = t.repr;
    mode = t.mode;
    oracle = E.sinpi;
    special = sinpi_special t;
    reduce = R.sinpi_reduce;
    components = [| sinpi_r_component; cospi_r_component |];
    compensate = R.sinpi_compensate;
    oc_corners = false;
    split_hint = 2;
  }

let cospi (t : target) =
  {
    S.name = "cospi";
    repr = t.repr;
    mode = t.mode;
    oracle = E.cospi;
    special = cospi_special t;
    reduce = R.cospi_reduce;
    components = [| sinpi_r_component; cospi_r_component |];
    compensate = R.cospi_compensate;
    oc_corners = false;
    split_hint = 2;
  }

let tanh (t : target) =
  {
    S.name = "tanh";
    repr = t.repr;
    mode = t.mode;
    oracle = E.tanh;
    special = tanh_special t;
    reduce = R.tanh_reduce;
    components = [| exp_component "exp_r" E.exp ~half_width:0.0054182 |];
    compensate = R.tanh_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let expm1 (t : target) =
  {
    S.name = "expm1";
    repr = t.repr;
    mode = t.mode;
    oracle = E.expm1;
    special = expm1_special t;
    reduce =
      (fun x ->
        R.exp_reduce ~inv_c:92.332482616893656877 ~cw:(Parallel.Once.get Tables.ln2_over_64) x);
    components = [| exp_component "exp_r" E.exp ~half_width:0.0054182 |];
    compensate = R.expm1_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let log1p (t : target) =
  {
    S.name = "log1p";
    repr = t.repr;
    mode = t.mode;
    oracle = E.log1p;
    special = log1p_special t;
    reduce = R.log1p_reduce;
    components = [| log_component "ln_1p" E.ln_1p |];
    compensate = R.ln_compensate;
    oc_corners = false;
    split_hint = 6;
  }

let sin (t : target) =
  {
    S.name = "sin";
    repr = t.repr;
    mode = t.mode;
    oracle = E.sin;
    special = sin_special t;
    reduce = R.trig_reduce;
    components = [| sin_r_component; cos_r_component |];
    compensate = R.sin_compensate;
    (* The angle-sum OCs mix coefficient signs (cpn*v1 - spn*v0), so no
       trig OC is jointly monotone along the diagonal: all three specs
       probe box corners. *)
    oc_corners = true;
    split_hint = 3;
  }

let cos (t : target) =
  {
    S.name = "cos";
    repr = t.repr;
    mode = t.mode;
    oracle = E.cos;
    special = cos_special t;
    reduce = R.trig_reduce;
    components = [| sin_r_component; cos_r_component |];
    compensate = R.cos_compensate;
    oc_corners = true;
    split_hint = 3;
  }

let tan (t : target) =
  {
    S.name = "tan";
    repr = t.repr;
    mode = t.mode;
    oracle = E.tan;
    special = tan_special t;
    reduce = R.trig_reduce;
    components = [| sin_r_component; cos_r_component |];
    compensate = R.tan_compensate;
    oc_corners = true;
    split_hint = 3;
  }

(** The paper's function sets. *)
let float_functions = [ "ln"; "log2"; "log10"; "exp"; "exp2"; "exp10"; "sinh"; "cosh"; "sinpi"; "cospi"; "sin"; "cos"; "tan" ]

let posit_functions = [ "ln"; "log2"; "log10"; "exp"; "exp2"; "exp10"; "sinh"; "cosh" ]

(** Extensions beyond the paper's ten (its §7 future work). *)
let extension_functions = [ "tanh"; "expm1"; "log1p" ]

(** Functions available under non-nearest rounding modes (the extended
    round-to-odd targets and [with_mode] re-targets): the log and exp
    families, whose special-case analyses are mode-aware.  The x ~ 0
    linear-term snaps of sinh/tanh/expm1/log1p assume nearest rounding —
    under a directed mode or to-odd the result is an *adjacent* pattern,
    on a side set by the next Taylor term's sign — and sinpi's pi*x
    double-rounding shortcut can land on the wrong side of a directed
    boundary; those functions are rejected rather than silently
    misrounded. *)
let odd_functions = [ "ln"; "log2"; "log10"; "exp"; "exp2"; "exp10" ]

let by_name name t =
  if t.mode <> Fp.Rounding_mode.Rne && not (List.mem name odd_functions) then
    invalid_arg
      ("Specs.by_name: " ^ name ^ " has no special-case analysis for mode "
      ^ Fp.Rounding_mode.to_string t.mode);
  let spec =
    match name with
    | "ln" -> ln t
    | "log2" -> log2 t
    | "log10" -> log10 t
    | "exp" -> exp t
    | "exp2" -> exp2 t
    | "exp10" -> exp10 t
    | "sinh" -> sinh t
    | "cosh" -> cosh t
    | "sinpi" -> sinpi t
    | "cospi" -> cospi t
    | "tanh" -> tanh t
    | "expm1" -> expm1 t
    | "log1p" -> log1p t
    | "sin" -> sin t
    | "cos" -> cos t
    | "tan" -> tan t
    | _ -> invalid_arg ("Specs.by_name: unknown function " ^ name)
  in
  (* Posit rounding intervals are tighter near 1 (tapered precision), so
     each sub-domain's LP works harder; a shallower table keeps posit
     generation affordable at this repo's scale (the paper, with a C+
     SoPlex pipeline and hours of budget, went the other way and gave
     posits *larger* tables — Table 3). *)
  if String.length t.tname >= 5 && String.sub t.tname 0 5 = "posit" then
    { spec with S.split_hint = Stdlib.min spec.S.split_hint 4 }
  else spec
