(* Batch evaluation.

   The paper's §4.3 measures a vectorized harness (1024-input arrays)
   where Intel's compiler auto-vectorizes the comparators; RLIBM-32 is
   "almost as fast as vectorized code while producing correct results".
   OCaml has no auto-vectorizer, but the batch shape still pays: the
   spec's closures, tables and piecewise structures are hoisted out of
   the loop, bounds checks amortize, and the double<->pattern conversions
   pipeline.  The VEC bench section measures scalar-call vs batch.

   Large batches shard across domains via {!Parallel}: each shard owns a
   disjoint [dst] slice and its own compiled evaluators (compiled
   closures share scratch state and are not reentrant), so results are
   the same bytes at every job count. *)

module G = Rlibm.Generator

(* Below this, domain spawn overhead beats the win. *)
let par_min = 1 lsl 14

let run_sharded n shard_body =
  if n < par_min then shard_body ~lo:0 ~hi:n
  else ignore (Parallel.map_chunks ~n (fun ~lo ~hi -> shard_body ~lo ~hi))

(** [eval_patterns g src dst] applies the generated function to every
    pattern of [src] into [dst].
    @raise Invalid_argument on length mismatch. *)
let eval_patterns (g : G.generated) (src : int array) (dst : int array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_patterns: length mismatch";
  let module T = (val g.spec.repr) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let shard ~lo ~hi =
    (* Per-shard evaluators and scratch: compiled closures are not
       reentrant across domains. *)
    let evals = Array.map Rlibm.Piecewise.compile g.pieces in
    let ncomp = Array.length evals in
    let v = Array.make ncomp 0.0 in
    for i = lo to hi - 1 do
      let pat = src.(i) in
      dst.(i) <-
        (match special pat with
        | Some out -> out
        | None ->
            let rr = reduce (T.to_double pat) in
            for c = 0 to ncomp - 1 do
              v.(c) <- evals.(c) rr.r
            done;
            T.of_double (compensate rr v))
    done
  in
  run_sharded (Array.length src) shard

(** [eval_doubles g src dst] is the double-valued batch entry point (the
    arrays hold exact target values, as in the paper's harness). *)
let eval_doubles (g : G.generated) (src : float array) (dst : float array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_doubles: length mismatch";
  let module T = (val g.spec.repr) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let shard ~lo ~hi =
    let evals = Array.map Rlibm.Piecewise.compile g.pieces in
    let ncomp = Array.length evals in
    let v = Array.make ncomp 0.0 in
    for i = lo to hi - 1 do
      let x = src.(i) in
      let pat = T.of_double x in
      dst.(i) <-
        (match special pat with
        | Some out -> T.to_double out
        | None ->
            let rr = reduce x in
            for c = 0 to ncomp - 1 do
              v.(c) <- evals.(c) rr.r
            done;
            T.to_double (T.of_double (compensate rr v)))
    done
  in
  run_sharded (Array.length src) shard
