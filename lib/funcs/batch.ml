(* Batch evaluation.

   The paper's §4.3 measures a vectorized harness (1024-input arrays)
   where Intel's compiler auto-vectorizes the comparators; RLIBM-32 is
   "almost as fast as vectorized code while producing correct results".
   OCaml has no auto-vectorizer, but the batch shape still pays: with
   the serving kernels (lib/serve) the whole per-element path runs over
   unboxed floats in flat tables — zero minor-heap allocation per
   element — instead of the spec's closure chain, which boxes a float at
   every call boundary.

   [eval_patterns]/[eval_doubles] keep their historical signatures but
   now delegate the inner loops to {!Serve.Run} whenever the generated
   function flattens to a kernel ({!Kernels.of_generated}); functions
   with no kernel (posit targets, non-standard term shapes) stay on the
   boxed closure path, preserved below as the [_boxed] variants.

   Large batches shard across domains via {!Parallel}: each shard owns a
   disjoint [dst] slice.  The sharding threshold comes from
   {!Rlibm.Config} (RLIBM_BATCH_PAR_MIN); below it, domain spawn
   overhead beats the win. *)

module G = Rlibm.Generator

let par_min () = Rlibm.Config.default.batch_par_min

let run_sharded n shard_body =
  if n < par_min () then shard_body ~lo:0 ~hi:n
  else ignore (Parallel.map_chunks ~n (fun ~lo ~hi -> shard_body ~lo ~hi))

(** Boxed reference path: the compiled closure chain, shared by every
    worker domain (domain-local scratch, see {!Rlibm.Generator.compile}).
    Kept as the fallback for kernel-less targets and as the baseline the
    serve bench and tests compare against. *)
let eval_patterns_boxed (g : G.generated) (src : int array) (dst : int array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_patterns: length mismatch";
  let f = G.compile g in
  run_sharded (Array.length src) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        dst.(i) <- f src.(i)
      done)

let eval_doubles_boxed (g : G.generated) (src : float array) (dst : float array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_doubles: length mismatch";
  let module T = (val g.spec.repr) in
  let f = G.compile g in
  run_sharded (Array.length src) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        dst.(i) <- T.to_double (f (T.of_double src.(i)))
      done)

(** [eval_patterns g src dst] applies the generated function to every
    pattern of [src] into [dst].
    @raise Invalid_argument on length mismatch. *)
let eval_patterns (g : G.generated) (src : int array) (dst : int array) =
  match Kernels.of_generated g with
  | Some p ->
      if Array.length src <> Array.length dst then
        invalid_arg "Batch.eval_patterns: length mismatch";
      Serve.Run.patterns ~par_min:(par_min ()) p src dst
  | None -> eval_patterns_boxed g src dst

(** [eval_doubles g src dst] is the double-valued batch entry point (the
    arrays hold exact target values, as in the paper's harness). *)
let eval_doubles (g : G.generated) (src : float array) (dst : float array) =
  match Kernels.of_generated g with
  | Some p ->
      if Array.length src <> Array.length dst then
        invalid_arg "Batch.eval_doubles: length mismatch";
      Serve.Run.doubles ~par_min:(par_min ()) p src dst
  | None -> eval_doubles_boxed g src dst
