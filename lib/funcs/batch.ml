(* Batch evaluation.

   The paper's §4.3 measures a vectorized harness (1024-input arrays)
   where Intel's compiler auto-vectorizes the comparators; RLIBM-32 is
   "almost as fast as vectorized code while producing correct results".
   OCaml has no auto-vectorizer, but the batch shape still pays: the
   spec's closures, tables and piecewise structures are hoisted out of
   the loop, bounds checks amortize, and the double<->pattern conversions
   pipeline.  The VEC bench section measures scalar-call vs batch.

   Large batches shard across domains via {!Parallel}: each shard owns a
   disjoint [dst] slice.  The compiled evaluator's scratch is
   domain-local (see {!Rlibm.Generator.compile}), so one compiled
   closure is shared by every worker and results are the same bytes at
   every job count. *)

module G = Rlibm.Generator

(* Below this, domain spawn overhead beats the win. *)
let par_min = 1 lsl 14

let run_sharded n shard_body =
  if n < par_min then shard_body ~lo:0 ~hi:n
  else ignore (Parallel.map_chunks ~n (fun ~lo ~hi -> shard_body ~lo ~hi))

(** [eval_patterns g src dst] applies the generated function to every
    pattern of [src] into [dst].
    @raise Invalid_argument on length mismatch. *)
let eval_patterns (g : G.generated) (src : int array) (dst : int array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_patterns: length mismatch";
  let f = G.compile g in
  run_sharded (Array.length src) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        dst.(i) <- f src.(i)
      done)

(** [eval_doubles g src dst] is the double-valued batch entry point (the
    arrays hold exact target values, as in the paper's harness). *)
let eval_doubles (g : G.generated) (src : float array) (dst : float array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_doubles: length mismatch";
  let module T = (val g.spec.repr) in
  let f = G.compile g in
  run_sharded (Array.length src) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        dst.(i) <- T.to_double (f (T.of_double src.(i)))
      done)
