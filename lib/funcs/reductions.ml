(* Range reductions RR_H and output compensations OC_H, in double.

   Each family packs whatever OC needs (table index, scale, signs) into
   the integer [key] of [Spec.reduction].  All OCs are monotone in the
   component values: table entries are non-negative by construction
   (§3.2 requires it; §5's cospi redesign achieves it for cospi). *)

module S = Rlibm.Spec

(* ------------------------------------------------------------------ *)
(* Log family: x = 2^e * m, m in [1,2); F = 1 + j/128 from m's top 7   *)
(* mantissa bits; r = (m - F)/F in [0, 2^-7); then                     *)
(*   log(x) = e*log(2) + log(F) + log1p(r).                            *)
(* ------------------------------------------------------------------ *)

(* Decompose a positive finite double.  Exact except for the final
   division by F. *)
let log_reduce x =
  let m, ex = Float.frexp x in
  (* m in [0.5, 1); rescale to [1, 2). *)
  let m = 2.0 *. m and e = ex - 1 in
  let j = Int64.to_int (Int64.logand (Int64.shift_right_logical (Fp.Fp64.bits m) 45) 0x7FL) in
  let f = m -. (1.0 +. (float_of_int j /. 128.0)) in
  let r = f /. (1.0 +. (float_of_int j /. 128.0)) in
  { S.r; key = j lor ((e + 2048) lsl 8) }

let log_key key = (key land 0xFF, (key lsr 8) - 2048)

(* OC for ln: v = ln(1+r) |-> e*ln2 + lnF[j] + v.  Monotone increasing. *)
let ln_compensate rr (v : float array) =
  let j, e = log_key rr.S.key in
  (float_of_int e *. Parallel.Once.get Tables.ln2_d) +. (Parallel.Once.get Tables.ln_f).(j) +. v.(0)

let log2_compensate rr (v : float array) =
  let j, e = log_key rr.S.key in
  float_of_int e +. (Parallel.Once.get Tables.log2_f).(j) +. v.(0)

let log10_compensate rr (v : float array) =
  let j, e = log_key rr.S.key in
  (float_of_int e *. Parallel.Once.get Tables.log10_2_d) +. (Parallel.Once.get Tables.log10_f).(j) +. v.(0)

(* Analytic hull of the log families' reduced input: r = f/F with
   0 <= f < 2^-7; the smallest nonzero f is one ulp of the (<= 28-bit
   significand) input value near an F grid point, so r >= ~2^-31 for
   every 32-bit target (log1p widens the significand to ~49 bits only
   for inputs whose r stays >= 2^-31 anyway).  Keeping the hull's low
   end close to the true minimum matters: the sub-domain index clamps
   r = 0 to the low end, and a hull that reaches far below the real
   reduced inputs manufactures phantom sub-domains whose only content is
   that degenerate constraint. *)
let log_dom_pos = (Float.ldexp 1.0 (-33), Float.ldexp 1.0 (-7))

(* ------------------------------------------------------------------ *)
(* Exp family: k = round(x * 64/log_b(2)); q = k/64, j = k mod 64;     *)
(*   b^x = 2^q * 2^(j/64) * b^r,   r = x - k*log_b(2)/64.              *)
(* The reduction constant is split Cody-Waite style so k*hi is exact.  *)
(* ------------------------------------------------------------------ *)

let exp_key key = (key land 0xFF, (key lsr 8) - 2048)

(* Generic exp-family reduction; [inv_c] = 64/log_b(2) as a double,
   [cw] the split constant log_b(2)/64. *)
let exp_reduce ~inv_c ~(cw : Tables.cody_waite) x =
  let k = Float.to_int (Float.round (x *. inv_c)) in
  let fk = float_of_int k in
  let r = x -. (fk *. cw.hi) -. (fk *. cw.lo) in
  let q = k asr 6 and j = k land 63 in
  { S.r; key = j lor ((q + 2048) lsl 8) }

(* exp2 needs no Cody-Waite: r = x - k/64 is exact in double. *)
let exp2_reduce x =
  let k = Float.to_int (Float.round (x *. 64.0)) in
  let r = x -. (float_of_int k /. 64.0) in
  let q = k asr 6 and j = k land 63 in
  { S.r; key = j lor ((q + 2048) lsl 8) }

(* OC: v = b^r |-> 2^q * (T2[j] * v).  T2 > 0, so monotone increasing. *)
let exp_compensate rr (v : float array) =
  let j, q = exp_key rr.S.key in
  Tables.pow2 q *. ((Parallel.Once.get Tables.exp2_j).(j) *. v.(0))

(* r spans [-log_b(2)/128, +log_b(2)/128]; down to one target ulp. *)
let exp_dom ~half_width =
  ( Some (-.half_width, -.Float.ldexp 1.0 (-36)),
    Some (Float.ldexp 1.0 (-36), half_width) )

(* ------------------------------------------------------------------ *)
(* sinpi (§2): |x| = 2I + J; J = K + L; L' = L or 1-L; L' = N/512 + R. *)
(*   sinpi(x) = S * (spn[N]*cospi(R) + cpn[N]*sinpi(R)),               *)
(*   S = sign(x) * (-1)^K.                                             *)
(* Components are ordered [sinpi_r; cospi_r] for this family.          *)
(* ------------------------------------------------------------------ *)

(* Exact fractional decomposition of z >= 0 (z < 2^52): z mod 2 and its
   integer/fraction split, all exact in double. *)
let mod2_split z =
  let j = z -. (2.0 *. Float.of_int (Float.to_int (z /. 2.0))) in
  let j = if j < 0.0 then j +. 2.0 else j in
  let k = if j >= 1.0 then 1 else 0 in
  let l = j -. float_of_int k in
  (k, l)

let sinpi_reduce x =
  let sign0 = if x < 0.0 || (x = 0.0 && 1.0 /. x < 0.0) then -1 else 1 in
  let z = Float.abs x in
  let k, l = mod2_split z in
  (* Mirror around 1/2: sinpi(l) = sinpi(1-l); 1-l is exact (Sterbenz). *)
  let l' = if l > 0.5 then 1.0 -. l else l in
  let n = Stdlib.min (Float.to_int (l' *. 512.0)) 255 in
  let r = l' -. (float_of_int n /. 512.0) in
  let s = sign0 * if k = 1 then -1 else 1 in
  { S.r; key = n lor ((if s < 0 then 1 else 0) lsl 9) }

let sinpi_compensate rr (v : float array) =
  let n = rr.S.key land 0x1FF in
  let s = if rr.S.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
  let spn = (Parallel.Once.get Tables.sinpi_n).(n) and cpn = (Parallel.Once.get Tables.cospi_n).(n) in
  s *. ((spn *. v.(1)) +. (cpn *. v.(0)))

(* ------------------------------------------------------------------ *)
(* cospi (§5): after folding to L' in [0, 1/2], write L' = N'/512 - R  *)
(* with R in [0, 1/512] so every table coefficient stays non-negative  *)
(* and OC is monotone (the §5 redesign):                               *)
(*   cospi(L') = cpn[N']*cospi(R) + spn[N']*sinpi(R)   (N' in [1,256]) *)
(*   cospi(L') = cospi(R), R = L'                      (N' = 0).       *)
(* ------------------------------------------------------------------ *)

let cospi_reduce x =
  let z = Float.abs x in
  let k, l = mod2_split z in
  let m, l' = if l > 0.5 then (1, 1.0 -. l) else (0, l) in
  let n = Stdlib.min (Float.to_int (l' *. 512.0)) 255 in
  let n', r =
    if n = 0 && l' < 1.0 /. 1024.0 then (0, l')
    else begin
      (* Round up to the next table point; N'/512 - L' is exact. *)
      let n' = Float.to_int (Float.ceil (l' *. 512.0)) in
      let n' = if float_of_int n' /. 512.0 = l' then n' + 1 else n' in
      let n' = Stdlib.min n' 256 in
      (n', (float_of_int n' /. 512.0) -. l')
    end
  in
  let s = (if k = 1 then -1 else 1) * if m = 1 then -1 else 1 in
  { S.r; key = n' lor ((if s < 0 then 1 else 0) lsl 9) }

let cospi_compensate rr (v : float array) =
  let n' = rr.S.key land 0x1FF in
  let s = if rr.S.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
  if n' = 0 then s *. v.(1)
  else begin
    let spn = (Parallel.Once.get Tables.sinpi_n).(n') and cpn = (Parallel.Once.get Tables.cospi_n).(n') in
    s *. ((cpn *. v.(1)) +. (spn *. v.(0)))
  end

(* Reduced domain for both sinpi and cospi components. *)
let sincospi_dom_pos = (Float.ldexp 1.0 (-32), 1.0 /. 512.0)

(* ------------------------------------------------------------------ *)
(* sinh/cosh: |x| = N/64 + R, R in [0, 1/64), exact;                   *)
(*   sinh(|x|) = sh[N]*cosh(R) + ch[N]*sinh(R)                         *)
(*   cosh(|x|) = ch[N]*cosh(R) + sh[N]*sinh(R)                         *)
(* Components are ordered [sinh_r; cosh_r].                            *)
(* ------------------------------------------------------------------ *)

let sinhcosh_reduce x =
  let z = Float.abs x in
  let n = Float.to_int (z *. 64.0) in
  let r = z -. (float_of_int n /. 64.0) in
  { S.r; key = n lor ((if x < 0.0 then 1 else 0) lsl 13) }

let sinh_compensate rr (v : float array) =
  let n = rr.S.key land 0x1FFF in
  let s = if rr.S.key land (1 lsl 13) <> 0 then -1.0 else 1.0 in
  let sh = (Parallel.Once.get Tables.sinh_n).(n) and ch = (Parallel.Once.get Tables.cosh_n).(n) in
  s *. ((sh *. v.(1)) +. (ch *. v.(0)))

let cosh_compensate rr (v : float array) =
  let n = rr.S.key land 0x1FFF in
  let sh = (Parallel.Once.get Tables.sinh_n).(n) and ch = (Parallel.Once.get Tables.cosh_n).(n) in
  (ch *. v.(1)) +. (sh *. v.(0))

let sinhcosh_dom_pos = (Float.ldexp 1.0 (-31), 1.0 /. 64.0)

(* ------------------------------------------------------------------ *)
(* Extension functions (paper §7: more elementary functions on the     *)
(* same machinery).                                                    *)
(* ------------------------------------------------------------------ *)

(* tanh: tanh(|x|) = (W - 1)/(W + 1) with W = e^(2|x|), computed with
   the exp-family reduction on t = 2|x| (exact doubling).  OC is
   monotone increasing in the component value: d/dW[(W-1)/(W+1)] > 0. *)
let tanh_reduce x =
  let t = 2.0 *. Float.abs x in
  let red = exp_reduce ~inv_c:92.332482616893656877 ~cw:(Parallel.Once.get Tables.ln2_over_64) t in
  { red with S.key = red.S.key lor ((if x < 0.0 then 1 else 0) lsl 22) }

let tanh_compensate rr (v : float array) =
  let j, q = exp_key (rr.S.key land 0x3FFFFF) in
  let s = if rr.S.key land (1 lsl 22) <> 0 then -1.0 else 1.0 in
  let w = Tables.pow2 q *. ((Parallel.Once.get Tables.exp2_j).(j) *. v.(0)) in
  s *. ((w -. 1.0) /. (w +. 1.0))

(* expm1: same reduction as exp; OC subtracts 1 (exact by Sterbenz when
   the scaled value lands in [1/2, 2], absorbed by Algorithm 2
   elsewhere).  Monotone increasing. *)
let expm1_compensate rr (v : float array) =
  let j, q = exp_key rr.S.key in
  (Tables.pow2 q *. ((Parallel.Once.get Tables.exp2_j).(j) *. v.(0))) -. 1.0

(* log1p: z = 1 + x is exact in double for every target value outside
   the |x| <= tiny special region, so the log-family reduction applies
   verbatim to z. *)
let log1p_reduce x = log_reduce (1.0 +. x)

(* ------------------------------------------------------------------ *)
(* sin/cos/tan: Payne–Hanek reduction by the nearest multiple of pi/2. *)
(*                                                                     *)
(* |x| = D * 2^e with D < 2^26 (every trig target has at most 26       *)
(* significand bits).  The product |x| * 2/pi is accumulated against   *)
(* the fixed-point chunk table [Tables.two_over_pi] into a 210-bit     *)
(* window — 2 quadrant bits above the binary point, 208 fraction bits  *)
(* below.  Chunks whose contribution is a multiple of 4 (weight >= 4)  *)
(* are skipped outright; chunks entirely below 2^-208 are truncated    *)
(* (error < 2^-208, against |frac| >= ~2^-31 for every float32 input   *)
(* — the worst-case closeness of a 24-bit significand to a multiple    *)
(* of pi/2).  The fraction is rounded to the nearest integer of        *)
(* quadrants, leaving f in [-1/2, 1/2]; its magnitude keeps >= 60      *)
(* significant bits, so r1 = |f| * (pi/2) carries a relative error     *)
(* ~2^-52.  That error need not be zero: Algorithm 2 anchors every     *)
(* constraint at the *computed* r, and the generator's final           *)
(* validation replays this exact code path, so the certificate is      *)
(* about the value actually served.                                    *)
(*                                                                     *)
(* A second level then folds r1 = |f| * (pi/2) in [0, pi/4] against    *)
(* the sinpi/cospi tables: r1 = N*(pi/512) + r, N in [0, 128], |r| <=  *)
(* pi/1024, with sinpi_n[N] = sin(N*pi/512) and cospi_n[N] =           *)
(* cos(N*pi/512) exactly the existing table entries.  The components   *)
(* the generator fits are sin/cos of the tiny signed residual r —      *)
(* near-linear over the whole hull, so the piecewise fit stays inside  *)
(* the rounding interval *between* sampled float32 inputs too (the     *)
(* same property that makes sinpi's table residue-free).               *)
(*                                                                     *)
(* key layout: bits 0-1 quadrant q (k mod 4 for |x| = k*pi/2 +         *)
(* sr*r1), bit 2 the sign sr, bit 3 sign of x, bits 4-11 the table     *)
(* index N.  The residual r is signed; both sign groups are fitted,    *)
(* like the exp family's.                                              *)
(* ------------------------------------------------------------------ *)

let ph_limbs = 7 (* 7 x 30 = 210-bit window *)
let ph_frac = (30 * ph_limbs) - 2 (* fraction bits below the binary point *)

let trig_reduce x =
  let tbl = Parallel.Once.get Tables.two_over_pi in
  let a = Float.abs x in
  let m, ex = Float.frexp a in
  let dig = Float.to_int (Float.ldexp m 26) in
  let e = ex - 26 in
  if Float.ldexp (float_of_int dig) e <> a then
    invalid_arg "Reductions.trig_reduce: more than 26 significand bits";
  let limbs = Array.make ph_limbs 0 in
  for i = 0 to Tables.ph_chunks - 1 do
    let pos = e - (30 * (i + 1)) in
    (* pos >= 2: the contribution is a multiple of 4; pos + 56 < -ph_frac:
       entirely below the window. *)
    if pos < 2 && pos > -(ph_frac + 57) then begin
      let p = dig * tbl.(i) in
      let s = pos + ph_frac in
      if s >= 0 then begin
        let j = s / 30 and b = s mod 30 in
        limbs.(j) <- limbs.(j) + ((p land ((1 lsl (30 - b)) - 1)) lsl b);
        if j + 1 < ph_limbs then
          limbs.(j + 1) <- limbs.(j + 1) + ((p lsr (30 - b)) land 0x3FFFFFFF);
        if j + 2 < ph_limbs then limbs.(j + 2) <- limbs.(j + 2) + (p lsr (60 - b))
      end
      else begin
        let p = p lsr (-s) in
        limbs.(0) <- limbs.(0) + (p land 0x3FFFFFFF);
        limbs.(1) <- limbs.(1) + (p lsr 30)
      end
    end
  done;
  (* Normalize the lazy carries (each limb held < 3 * 2^30). *)
  let carry = ref 0 in
  for j = 0 to ph_limbs - 1 do
    let t = limbs.(j) + !carry in
    limbs.(j) <- t land 0x3FFFFFFF;
    carry := t lsr 30
  done;
  (* Top limb: 2 quadrant bits over 28 fraction bits. *)
  let q0 = (limbs.(ph_limbs - 1) lsr 28) land 3 in
  limbs.(ph_limbs - 1) <- limbs.(ph_limbs - 1) land 0xFFFFFFF;
  let half = limbs.(ph_limbs - 1) lsr 27 <> 0 in
  (* Round to the nearest quadrant: f >= 1/2 bumps k and flips the
     fraction to 1 - f (the reduced argument turns negative). *)
  let q = if half then (q0 + 1) land 3 else q0 in
  if half then begin
    let c = ref 1 in
    for j = 0 to ph_limbs - 1 do
      let m = if j = ph_limbs - 1 then 0xFFFFFFF else 0x3FFFFFFF in
      let t = m - limbs.(j) + !c in
      limbs.(j) <- t land 0x3FFFFFFF;
      c := t lsr 30
    done
  end;
  (* Assemble the top ~90 fraction bits into a double and scale by pi/2
     (correctly rounded pi, exactly halved). *)
  let hi = ref (ph_limbs - 1) in
  while !hi > 0 && limbs.(!hi) = 0 do
    decr hi
  done;
  let r1 =
    if limbs.(!hi) = 0 then 0.0
    else begin
      let l2 = if !hi >= 2 then limbs.(!hi - 2) else 0
      and l1 = if !hi >= 1 then limbs.(!hi - 1) else 0 in
      let t =
        Float.ldexp (float_of_int limbs.(!hi)) 60
        +. Float.ldexp (float_of_int l1) 30
        +. float_of_int l2
      in
      let f = Float.ldexp t ((30 * (!hi - 2)) - ph_frac) in
      f *. Float.ldexp (Parallel.Once.get Tables.pi_d) (-1)
    end
  in
  (* Second level: r1 = N*(pi/512) + r, Cody-Waite so N*hi is exact. *)
  let n = Float.to_int (Float.round (r1 *. Parallel.Once.get Tables.inv_pi_512)) in
  let cw : Tables.cody_waite = Parallel.Once.get Tables.pi_over_512 in
  let fn = float_of_int n in
  let r = r1 -. (fn *. cw.hi) -. (fn *. cw.lo) in
  let key =
    q
    lor ((if half then 1 else 0) lsl 2)
    lor ((if x < 0.0 then 1 else 0) lsl 3)
    lor (n lsl 4)
  in
  { S.r; key }

(* OC for the trig family.  With |x| = k*pi/2 + sr*r1 (sr = +-1 from
   key bit 2, q = k mod 4), r1 = N*(pi/512) + r, and components
   [sin_r; cos_r] evaluated at the signed residual r, the angle-sum
   identities rebuild
     u = sin r1 = cpn[N]*v0 + spn[N]*v1
     w = cos r1 = cpn[N]*v1 - spn[N]*v0
   (both table entries non-negative for N in [0, 128]) and then
     sin |x| = { sr*u; w; -sr*u; -w }.(q)
     cos |x| = { w; -sr*u; -w; sr*u }.(q)
     tan |x| = { sr*u/w; -sr*w/u }.(q mod 2)
   with sin x = sign(x)*sin|x|, cos x = cos|x|, tan x = sign(x)*tan|x|.
   Each OC is linear (or a quotient of linears) in (v0, v1) with mixed
   coefficient signs, so none is jointly monotone along the diagonal:
   all three specs set [oc_corners], and the §3.2 deduction probes box
   corners.  Axis-wise monotonicity (what corner probing needs) holds
   because each OC is linear along every axis-parallel segment, and a
   quotient's denominator (w >= cos(pi/4) - widening, or u bounded away
   from 0 by the worst-case closeness of a target value to a multiple
   of pi/2) cannot reach zero inside a contained box: a sign flip
   across the pole would land a corner outside any finite rounding
   interval, so the widening search backs off first. *)

let trig_signs key =
  ( (if key land 4 <> 0 then -1.0 else 1.0) (* sign sr of the level-1 residual *),
    if key land 8 <> 0 then -1.0 else 1.0 (* sign of x *) )

(* (sin r1, cos r1) from the component values at the residual. *)
let trig_uw key (v : float array) =
  let n = (key lsr 4) land 0xFF in
  let spn = (Parallel.Once.get Tables.sinpi_n).(n)
  and cpn = (Parallel.Once.get Tables.cospi_n).(n) in
  ((cpn *. v.(0)) +. (spn *. v.(1)), (cpn *. v.(1)) -. (spn *. v.(0)))

let sin_compensate rr (v : float array) =
  let sr, sx = trig_signs rr.S.key in
  let u, w = trig_uw rr.S.key v in
  let core =
    match rr.S.key land 3 with 0 -> sr *. u | 1 -> w | 2 -> -.(sr *. u) | _ -> -.w
  in
  sx *. core

let cos_compensate rr (v : float array) =
  let sr, _ = trig_signs rr.S.key in
  let u, w = trig_uw rr.S.key v in
  match rr.S.key land 3 with 0 -> w | 1 -> -.(sr *. u) | 2 -> -.w | _ -> sr *. u

let tan_compensate rr (v : float array) =
  let sr, sx = trig_signs rr.S.key in
  let u, w = trig_uw rr.S.key v in
  let core = if rr.S.key land 1 = 0 then sr *. (u /. w) else -.(sr *. (w /. u)) in
  sx *. core

(* Residual domain: |r| <= pi/1024, both signs (the rounding of r1 to
   the N grid).  The low end is nominal — residuals below it (or equal
   to zero) clamp into the smallest-magnitude sub-domain, exactly like
   the exp family's. *)
let trig_dom =
  ( Some (-0.0030680, -.Float.ldexp 1.0 (-40)),
    Some (Float.ldexp 1.0 (-40), 0.0030680) )
