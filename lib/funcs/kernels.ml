(* Bridge from the generator's output to the serving kernel: flatten a
   {!Rlibm.Generator.generated} into a {!Serve.Kernel.plan}.

   The plan is a *data* rendering of exactly the structure the scalar
   path interprets — same tables, same thresholds, same coefficient
   rows — so kernel evaluation is bit-identical by construction, with
   the scalar path itself installed as the plan's fallback for special
   and non-finite inputs.

   Not every generated function can be flattened: posits have no IEEE
   field decode, and a component whose term pattern falls outside the
   four shipped Horner shapes has no monomorphic kernel.  [of_generated]
   returns [None] for those and callers (Funcs.Batch, bin/serve) keep
   using the boxed closure path. *)

module G = Rlibm.Generator
module K = Serve.Kernel
module I = Fp.Ieee

(* Recover the Specs.target a spec was built from, by representation
   name + rounding mode.  The threshold fields the kernel's check needs
   live on the target, not the spec (the spec only keeps the fused
   special closure). *)
let target_of_spec (spec : Rlibm.Spec.t) : Specs.target option =
  let module T = (val spec.repr) in
  let base =
    match T.name with
    | "float32" -> Some Specs.float32
    | "bfloat16" -> Some Specs.bfloat16
    | "float16" -> Some Specs.float16
    | "float34" -> Some Specs.float34
    | "bfloat18" -> Some Specs.bfloat18
    | "float18" -> Some Specs.float18
    | _ -> None (* posits: no IEEE decode, no kernel *)
  in
  Option.map
    (fun (t : Specs.target) -> if t.mode = spec.mode then t else Specs.with_mode t spec.mode)
    base

let shape_of_terms = function
  | [| 0; 1; 2; 3 |] -> Some K.S0123
  | [| 1; 2; 3 |] -> Some K.S123
  | [| 1; 3; 5 |] -> Some K.S135
  | [| 0; 2; 4 |] -> Some K.S024
  | _ -> None

let group_of (g : Rlibm.Piecewise.group) nt : K.pgroup =
  let sch = g.scheme in
  let hi32 b = Int64.to_int (Int64.shift_right_logical b 32) in
  let lo32 b = Int64.to_int (Int64.logand b 0xFFFF_FFFFL) in
  {
    K.nbits = sch.nbits;
    shift = sch.shift;
    lo_hi = hi32 sch.lo_bits;
    lo_lo = lo32 sch.lo_bits;
    hi_hi = hi32 sch.hi_bits;
    hi_lo = lo32 sch.hi_bits;
    nt;
    coeffs = Array.copy g.coeffs;
  }

let piece_of (pw : Rlibm.Piecewise.t) : K.piece option =
  match shape_of_terms pw.terms with
  | None -> None
  | Some shape ->
      let nt = Array.length pw.terms in
      Some
        {
          K.shape;
          neg = Option.map (fun g -> group_of g nt) pw.neg;
          pos = Option.map (fun g -> group_of g nt) pw.pos;
        }

(* Family + check for one function name.  Table arrays are copied out of
   the shared Parallel.Once cells: the plan owns its tables (and
   Serve.Run clones them again per domain). *)
let family_check (t : Specs.target) name : (K.family * K.check) option =
  let once = Parallel.Once.get in
  let exp_consts () =
    let cw : Tables.cody_waite = once Tables.ln2_over_64 in
    (92.332482616893656877, cw.hi, cw.lo)
  in
  match name with
  | "ln" ->
      Some
        ( K.Log { escale = once Tables.ln2_d; f_tbl = Array.copy (once Tables.ln_f); add_one = false },
          K.Chk_log )
  | "log2" ->
      Some
        ( K.Log { escale = 1.0; f_tbl = Array.copy (once Tables.log2_f); add_one = false },
          K.Chk_log )
  | "log10" ->
      Some
        ( K.Log
            { escale = once Tables.log10_2_d; f_tbl = Array.copy (once Tables.log10_f); add_one = false },
          K.Chk_log )
  | "log1p" ->
      Some
        ( K.Log { escale = once Tables.ln2_d; f_tbl = Array.copy (once Tables.ln_f); add_one = true },
          K.Chk_log1p { snap = Specs.log1p_snap t } )
  | "exp" ->
      let inv_c, hi, lo = exp_consts () in
      Some
        ( K.Exp { inv_c; cw_hi = hi; cw_lo = lo; t2 = Array.copy (once Tables.exp2_j); minus_one = false },
          K.Chk_signed { hi = t.exp_hi; lo = t.exp_lo; snap = t.one_snap } )
  | "exp2" ->
      (* r = x - k/64 exactly: cw = (2^-6, 0) makes the generic
         Cody-Waite subtraction bit-identical to exp2_reduce. *)
      Some
        ( K.Exp
            { inv_c = 64.0; cw_hi = 0.015625; cw_lo = 0.0; t2 = Array.copy (once Tables.exp2_j); minus_one = false },
          K.Chk_signed { hi = t.exp2_hi; lo = t.exp2_lo; snap = t.one_snap } )
  | "exp10" ->
      let cw : Tables.cody_waite = once Tables.log10_2_over_64 in
      Some
        ( K.Exp
            {
              inv_c = 212.60335893188592315;
              cw_hi = cw.hi;
              cw_lo = cw.lo;
              t2 = Array.copy (once Tables.exp2_j);
              minus_one = false;
            },
          K.Chk_signed { hi = t.exp10_hi; lo = t.exp10_lo; snap = t.one_snap } )
  | "expm1" ->
      let inv_c, hi, lo = exp_consts () in
      Some
        ( K.Exp { inv_c; cw_hi = hi; cw_lo = lo; t2 = Array.copy (once Tables.exp2_j); minus_one = true },
          K.Chk_signed { hi = t.exp_hi; lo = t.expm1_lo; snap = Specs.expm1_snap t } )
  | "tanh" ->
      let inv_c, hi, lo = exp_consts () in
      Some
        ( K.Tanh { inv_c; cw_hi = hi; cw_lo = lo; t2 = Array.copy (once Tables.exp2_j) },
          K.Chk_abs { hi = t.tanh_hi; snap = Specs.tanh_snap t } )
  | "sinh" ->
      Some
        ( K.Sinh { sh = Array.copy (once Tables.sinh_n); ch = Array.copy (once Tables.cosh_n) },
          K.Chk_abs { hi = t.sinh_hi; snap = Specs.sinh_snap t } )
  | "cosh" ->
      Some
        ( K.Cosh { sh = Array.copy (once Tables.sinh_n); ch = Array.copy (once Tables.cosh_n) },
          K.Chk_abs { hi = t.sinh_hi; snap = Specs.cosh_snap t } )
  | "sinpi" ->
      Some
        ( K.Sinpi { spn = Array.copy (once Tables.sinpi_n); cpn = Array.copy (once Tables.cospi_n) },
          K.Chk_abs { hi = t.trig_int; snap = t.trig_tiny } )
  | "cospi" ->
      Some
        ( K.Cospi { spn = Array.copy (once Tables.sinpi_n); cpn = Array.copy (once Tables.cospi_n) },
          K.Chk_abs { hi = t.trig_int; snap = Specs.cospi_snap t } )
  | "sin" | "cos" | "tan" ->
      (* No flat kernel for the radian trig family: the degree-7
         component shapes fall outside the four shipped Horner shapes
         and the Payne–Hanek reduction has no field-decode fast path.
         Callers stay on the boxed scalar closure, which replays the
         exact generation-time arithmetic. *)
      None
  | _ -> None

(* Lower the generator's progressive certificates into the kernel's
   plain tier data.  Only an exhaustive generation's certificates are
   sound, and the tier is all-or-nothing across pieces (mirroring
   Rlibm.Verifier.classify): any piece without a certified serving
   prefix disables the whole tier, so a tiered plan's fast path always
   means "every component served its prefix". *)
let lower_tpiece (g : G.generated) (p : Rlibm.Prog.t) i k : K.tpiece =
  let pc = p.Rlibm.Prog.pieces.(i) in
  let pw = g.pieces.(i) in
  let nt = pc.Rlibm.Prog.nt in
  (* Pure-miss dummy: one all-NaN row, so even a stray consult escalates
     to the full polynomial instead of reading out of bounds. *)
  let dummy () = { K.t_shift = 0; t_mask = 0; t_coeffs = Array.make k Float.nan } in
  let cert (grp : Rlibm.Piecewise.group option) (carr : Rlibm.Prog.cert array) =
    match grp with
    | None ->
        (* Sign group absent: never consulted — the kernel's group test
           short-circuits first. *)
        dummy ()
    | Some grp ->
        if k - 1 >= Array.length carr then dummy ()
        else begin
          (* Densify: one prefix row per *extended* certificate bucket,
             copied bit-identical from the full table when the bucket is
             certified and all-NaN (the kernel's miss marker) when not.
             This trades 2^ext-way row replication for a fast path with
             no separate bitset probe. *)
          let c = carr.(k - 1) in
          let ext = c.Rlibm.Prog.ext in
          let sch = grp.Rlibm.Piecewise.scheme in
          let nb = 1 lsl (sch.Rlibm.Splitting.nbits + ext) in
          let tcf = Array.make (nb * k) Float.nan in
          for e = 0 to nb - 1 do
            if Rlibm.Prog.bit_get c.Rlibm.Prog.bits e then begin
              let row = (e lsr ext) * nt in
              for j = 0 to k - 1 do
                tcf.((e * k) + j) <- grp.Rlibm.Piecewise.coeffs.(row + j)
              done
            end
          done;
          { K.t_shift = sch.Rlibm.Splitting.shift - ext; t_mask = nb - 1; t_coeffs = tcf }
        end
  in
  {
    K.tk = k;
    tneg = cert pw.Rlibm.Piecewise.neg pc.Rlibm.Prog.neg;
    tpos = cert pw.Rlibm.Piecewise.pos pc.Rlibm.Prog.pos;
  }

let tier_of (g : G.generated) : K.tpiece array option =
  match g.prog with
  | None -> None
  | Some p ->
      let n = Array.length g.pieces in
      let tiered i = p.Rlibm.Prog.serve_k.(i) < p.Rlibm.Prog.pieces.(i).Rlibm.Prog.nt in
      if not (p.Rlibm.Prog.exhaustive && n > 0 && Array.for_all tiered (Array.init n Fun.id))
      then None
      else Some (Array.init n (fun i -> lower_tpiece g p i p.Rlibm.Prog.serve_k.(i)))

let build (g : G.generated) : K.plan option =
  match target_of_spec g.spec with
  | None -> None
  | Some t -> (
      match t.fmt with
      | None -> None
      | Some fmt -> (
          match family_check t g.spec.name with
          | None -> None
          | Some (family, check) ->
              let pieces_opt = Array.map piece_of g.pieces in
              if Array.exists Option.is_none pieces_opt then None
              else begin
                let pieces = Array.map Option.get pieces_opt in
                Some
                  {
                    K.name = g.spec.name;
                    tname = t.tname;
                    mode = g.spec.mode;
                    width = I.width fmt;
                    hw32 = fmt.eb = 8 && fmt.mb = 23;
                    hw_rne = fmt.eb = 8 && fmt.mb = 23 && g.spec.mode = Fp.Rounding_mode.Rne;
                    i_mb = fmt.mb;
                    i_emask = I.exp_mask fmt;
                    i_mmask = I.mant_mask fmt;
                    i_sbit = I.sign_bit fmt;
                    i_dexp_off = 1023 - I.bias fmt;
                    i_sub_scale = Float.ldexp 1.0 (I.emin fmt - fmt.mb);
                    check;
                    family;
                    pieces;
                    tier = tier_of g;
                    o_mb = fmt.mb;
                    o_mmask = I.mant_mask fmt;
                    o_sbit = I.sign_bit fmt;
                    o_bias = I.bias fmt;
                    o_emin = I.emin fmt;
                    o_emax = I.emax fmt;
                    o_nan = I.nan_pattern fmt;
                    o_inf_pos = I.inf_pattern fmt 1;
                    o_inf_neg = I.inf_pattern fmt (-1);
                    o_maxf_pos = I.max_finite_pattern fmt 1;
                    o_maxf_neg = I.max_finite_pattern fmt (-1);
                    fallback = (fun pat -> G.eval_pattern g pat);
                  }
              end))

(* Memoized per generated value (physically: Libm.get caches and reuses
   the generated record, so assq hits after the first call). *)
let cache : (G.generated * K.plan option) list ref = ref []
let cache_mu = Mutex.create ()

(** [of_generated g] is the serving plan for [g], or [None] when the
    function has no monomorphic kernel (posit targets, unknown term
    shapes) — callers then stay on the boxed closure path. *)
let of_generated (g : G.generated) : K.plan option =
  Mutex.protect cache_mu @@ fun () ->
  match List.assq_opt g !cache with
  | Some p -> p
  | None ->
      let p = build g in
      cache := (g, p) :: !cache;
      p

(** [force_tier g ~k] is [g]'s plan with the serving prefix forced to
    degree [k] for every piece (the bench Pareto sweep walks k along
    the cost–accuracy frontier).  [None] when there is no kernel, no
    exhaustive certificates, or some piece has no strict degree-[k]
    prefix.  [~k:0] strips the tier entirely (the full-polynomial
    kernel, for baseline timing). *)
let force_tier (g : G.generated) ~k : K.plan option =
  match of_generated g with
  | None -> None
  | Some p -> (
      if k = 0 then Some { p with K.tier = None }
      else
        match g.prog with
        | Some pr
          when pr.Rlibm.Prog.exhaustive
               && Array.for_all (fun (pc : Rlibm.Prog.piece) -> k < pc.Rlibm.Prog.nt) pr.Rlibm.Prog.pieces ->
            Some
              {
                p with
                K.tier =
                  Some (Array.init (Array.length g.pieces) (fun i -> lower_tpiece g pr i k));
              }
        | _ -> None)

(** [plan ?quality ?cfg t name] generates (or fetches) the function and
    flattens it, raising on targets with no kernel. *)
let plan ?quality ?cfg (t : Specs.target) name =
  match of_generated (Libm.get ?quality ?cfg t name) with
  | Some p -> p
  | None -> invalid_arg ("Kernels.plan: no serving kernel for " ^ name ^ " on " ^ t.tname)

(** [plan_opt ?quality ?cfg t name] is [plan] without the raise. *)
let plan_opt ?quality ?cfg (t : Specs.target) name =
  of_generated (Libm.get ?quality ?cfg t name)
