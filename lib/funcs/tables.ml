(* Lookup tables and double constants for the range reductions.

   Every entry is the correctly rounded double of its mathematical value,
   computed once per process from the oracle (the paper precomputes the
   same tables with MPFR, §2.1/§5).  All tables are one-shot
   ({!Parallel.Once}): a function family pays for its tables on first
   use only, and the force is domain-safe — the generator's parallel
   passes may touch a table first from any worker domain. *)

module Once = Parallel.Once

module E = Oracle.Elementary
module Q = Rational

let cr f q = E.to_double f q

(* ------------------------------------------------------------------ *)
(* Constants.                                                          *)
(* ------------------------------------------------------------------ *)

let ln2_d = Once.make (fun () -> Oracle.Bigfloat.to_float (E.ln2 ~prec:80))
let ln10_d = Once.make (fun () -> Oracle.Bigfloat.to_float (E.ln10 ~prec:80))
let pi_d = Once.make (fun () -> Oracle.Bigfloat.to_float (E.pi ~prec:80))

(* log10(2) and log2(10), correctly rounded. *)
let log10_2_d = Once.make (fun () -> cr E.log10 (Q.of_int 2))
let log2_10_d = Once.make (fun () -> cr E.log2 (Q.of_int 10))

(* ------------------------------------------------------------------ *)
(* Cody–Waite constant pairs for the exp-family argument reduction:    *)
(* c = c_hi + c_lo with c_hi carrying ~32 significant bits, so k*c_hi  *)
(* is exact for |k| up to ~2^20.                                       *)
(* ------------------------------------------------------------------ *)

type cody_waite = { hi : float; lo : float }

(* Split the correctly rounded double of the exact rational [q]. *)
let split q =
  let c = Q.to_float q in
  (* Zero the low 21 mantissa bits of c. *)
  let hi = Fp.Fp64.of_bits (Int64.logand (Fp.Fp64.bits c) 0xFFFFFFFFFFE00000L) in
  let lo = Q.to_float (Q.sub q (Q.of_float hi)) in
  { hi; lo }

(* ln2/64 exactly, as a rational at oracle precision. *)
let ln2_over_64 =
  Once.make (fun () -> split (Q.mul_pow2 (Oracle.Bigfloat.to_rational (E.ln2 ~prec:140)) (-6)))

(* pi/512 for the trig second-level reduction (n*hi exact for n <= 128),
   and 512/pi as a plain double for picking n. *)
let pi_over_512 =
  Once.make (fun () -> split (Q.mul_pow2 (Oracle.Bigfloat.to_rational (E.pi ~prec:140)) (-9)))

let inv_pi_512 =
  Once.make (fun () ->
      Q.to_float (Q.div (Q.of_int 512) (Oracle.Bigfloat.to_rational (E.pi ~prec:140))))

let log10_2_over_64 =
  Once.make (fun () ->
    split
       (Q.mul_pow2
          (Q.div
             (Oracle.Bigfloat.to_rational (E.ln2 ~prec:140))
             (Oracle.Bigfloat.to_rational (E.ln10 ~prec:140)))
          (-6)))

(* ------------------------------------------------------------------ *)
(* Log family: F = 1 + j/128, tables of ln/log2/log10 of F.            *)
(* ------------------------------------------------------------------ *)

let log_table f =
  Once.make (fun () -> Array.init 128 (fun j -> cr f (Q.add Q.one (Q.of_ints j 128))))

let ln_f = log_table E.ln
let log2_f = log_table E.log2
let log10_f = log_table E.log10

(* ------------------------------------------------------------------ *)
(* Exp family: 2^(j/64) for j in [0, 64).                              *)
(* ------------------------------------------------------------------ *)

let exp2_j = Once.make (fun () -> Array.init 64 (fun j -> cr E.exp2 (Q.of_ints j 64)))

(* 2^q as an exact double for q in [-1022, 1023], via bit assembly. *)
let pow2 q =
  if q >= -1022 && q <= 1023 then Fp.Fp64.of_bits (Int64.shift_left (Int64.of_int (q + 1023)) 52)
  else Float.ldexp 1.0 q

(* ------------------------------------------------------------------ *)
(* sinpi/cospi: sinpi(N/512), cospi(N/512) for N in [0, 256].          *)
(* ------------------------------------------------------------------ *)

let sinpi_n = Once.make (fun () -> Array.init 257 (fun n -> cr E.sinpi (Q.of_ints n 512)))
let cospi_n = Once.make (fun () -> Array.init 257 (fun n -> cr E.cospi (Q.of_ints n 512)))

(* ------------------------------------------------------------------ *)
(* sinh/cosh: sinh(N/64), cosh(N/64) for N in [0, 5760) (covers        *)
(* |x| < 90, past every 32-bit target's overflow/saturation point).    *)
(* ------------------------------------------------------------------ *)

let sinh_n = Once.make (fun () -> Array.init 5760 (fun n -> cr E.sinh (Q.of_ints n 64)))
let cosh_n = Once.make (fun () -> Array.init 5760 (fun n -> cr E.cosh (Q.of_ints n 64)))

(* ------------------------------------------------------------------ *)
(* sin/cos/tan: wide fixed-point 2/pi for the Payne–Hanek reduction.   *)
(* ------------------------------------------------------------------ *)

(* 2/pi as [ph_chunks] 30-bit chunks, most significant first:
   2/pi = sum_i chunk.(i) * 2^(-30*(i+1)) + eps with 0 <= eps <
   2^(-30*ph_chunks).  30-bit chunks keep every runtime product
   significand * chunk below 2^56, inside the native int.  480 bits
   cover the largest product window any trig target needs: a <= 26-bit
   significand times 2^e with e <= 102, against a 208-bit fraction
   window, touches 2/pi bits no deeper than position ~370. *)
let ph_chunks = 16

let two_over_pi =
  Once.make (fun () ->
      let bits = 30 * ph_chunks in
      let w = bits + 64 in
      let inv = Oracle.Bigfloat.div ~prec:w (Oracle.Bigfloat.of_int 2) (E.pi ~prec:w) in
      let t = Q.floor (Q.mul_pow2 (Oracle.Bigfloat.to_rational inv) bits) in
      let m30 = Bigint.shift_left Bigint.one 30 in
      Array.init ph_chunks (fun i ->
          Bigint.to_int_exn (Bigint.rem (Bigint.shift_right t (30 * (ph_chunks - 1 - i))) m30)))
