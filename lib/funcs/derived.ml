(* RLIBM-ALL derived evaluation (Lim & Nagarakatte 2021): one float34
   round-to-odd table serves bfloat16 and float16 — and float32 — in
   every standard rounding mode.

   Base pattern -> exact double -> float34 pattern -> to-odd table ->
   exact double (a float34 value has at most 27 significant bits, well
   inside a double's 53) -> re-round to the base format under the
   requested mode.

   Correctness is the to-odd re-rounding theorem: the extended format
   carries at least two more mantissa bits than the base over the same
   (or wider) exponent range, so every base rounding boundary — values,
   midpoints, and the overflow/underflow edges — is exactly
   representable in the extended format.  Round-to-odd never crosses a
   representable value it doesn't land on, and never lands on an even
   pattern unless the exact result is that value; hence the odd result
   and the exact real sit strictly on the same side of every base
   boundary, and re-rounding either gives the same pattern. *)

module G = Rlibm.Generator

(** [fn (module B) ~mode name] compiles the derived evaluator for base
    representation [B] (at most float32-sized) under [mode], driven by
    the float34 round-to-odd table of [name].  The heavy generation
    happens once per function (cached in {!Libm}); the returned closure
    is reentrant — see {!G.compile}.
    @raise Invalid_argument if [name] is outside {!Specs.odd_functions}.
    @raise Failure if float34 generation fails. *)
let fn ?quality ?cfg (module B : Fp.Representation.S) ~mode name =
  let g = Libm.get ?quality ?cfg Specs.float34 name in
  let f = G.compile g in
  let module X = Specs.Float34 in
  fun pat -> B.of_double ~mode (X.to_double (f (X.of_base_double (B.to_double pat))))

(** Pattern-level one-shot entry point. *)
let eval_pattern ?quality ?cfg (module B : Fp.Representation.S) ~mode name pat =
  (fn ?quality ?cfg (module B) ~mode name) pat
