(* The generated math library.

   Functions are generated on first use (the paper ships pre-generated
   coefficient tables; we regenerate deterministically — same algorithms,
   same inputs, same tables every run) and cached per (function, target,
   enumeration).  The float32 entry points take and return doubles that
   are exact float32 values, mirroring how a C float function would be
   called from double-based test harnesses (§4.1). *)

module G = Rlibm.Generator

type quality = Draft | Quick | Full

let per_stratum = function Draft -> 2 | Quick -> 8 | Full -> 24

(* RLIBM-ALL enumeration for the float34 target: the exact embeddings of
   every bfloat16 and every float16 pattern (the formats the single
   to-odd table serves exhaustively, so their generation guarantee is
   total), plus the standard stratified float32 sample, deduplicated and
   sorted for a deterministic generation order. *)
let float34_enumeration quality =
  let module X = Specs.Float34 in
  let tbl = Hashtbl.create (1 lsl 18) in
  let add (module B : Fp.Representation.S) pats =
    Array.iter (fun p -> Hashtbl.replace tbl (X.of_base_double (B.to_double p)) ()) pats
  in
  add (module Fp.Bfloat16) Rlibm.Enumerate.exhaustive16;
  add (module Fp.Float16) Rlibm.Enumerate.exhaustive16;
  add (module Fp.Fp32) (Rlibm.Enumerate.stratified32 ~per_stratum:(per_stratum quality) ());
  let out = Array.make (Hashtbl.length tbl) 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun p () ->
      out.(!k) <- p;
      incr k)
    tbl;
  Array.sort compare out;
  out

(* Enumeration used to drive generation. *)
let enumeration (t : Specs.target) quality =
  let module T = (val t.repr) in
  if t.tname = "float34" then float34_enumeration quality
  else
    match T.bits with
    | 16 -> Rlibm.Enumerate.exhaustive16
    | 18 -> Rlibm.Enumerate.exhaustive ~bits:18
    | _ -> Rlibm.Enumerate.stratified32 ~per_stratum:(per_stratum quality) ()

let cache : (string * string * Fp.Rounding_mode.t * quality * bool, G.generated) Hashtbl.t =
  Hashtbl.create 32

let cache_mu = Mutex.create ()

(* The cfg components that change the generated artifact's *shape* must
   discriminate the cache key, or a progressive caller would be handed a
   certificate-free generation cached by a classic caller (and vice
   versa).  Only [progressive] qualifies today: the other cfg knobs
   (warm-start, refine budget) steer how generation runs, not what it
   emits. *)
let cfg_progressive = function
  | Some (c : Rlibm.Config.t) -> c.progressive
  | None -> Rlibm.Config.default.progressive

(** Generate (or fetch) one function for one target.
    @raise Failure if generation fails — a spec bug, not a user error.

    The lock is held across generation: concurrent callers of the same
    function wait for one generation instead of racing two, and
    generation itself fans out internally via {!Parallel}.  The cache
    key includes the target's rounding mode, so [Specs.with_mode]
    re-targets of the same representation don't collide. *)
let get ?(quality = Full) ?cfg (t : Specs.target) name =
  Mutex.protect cache_mu @@ fun () ->
  let key = (name, t.tname, t.mode, quality, cfg_progressive cfg) in
  match Hashtbl.find_opt cache key with
  | Some g -> g
  | None -> (
      let spec = Specs.by_name name t in
      match G.generate ?cfg spec ~patterns:(enumeration t quality) with
      | Ok g ->
          Hashtbl.replace cache key g;
          g
      | Error msg -> failwith ("Libm.get: generation failed: " ^ msg))

(** Pattern-level entry point: apply the generated function. *)
let eval_pattern ?quality ?cfg t name pat = G.eval_pattern (get ?quality ?cfg t name) pat

(* ------------------------------------------------------------------ *)
(* Float32 convenience API (double in, double out, float32 values).    *)
(* ------------------------------------------------------------------ *)

module F32 = struct
  let fn ?quality name =
    let g = get ?quality Specs.float32 name in
    fun x -> G.eval_double g x

  let ln ?quality () = fn ?quality "ln"
  let log2 ?quality () = fn ?quality "log2"
  let log10 ?quality () = fn ?quality "log10"
  let exp ?quality () = fn ?quality "exp"
  let exp2 ?quality () = fn ?quality "exp2"
  let exp10 ?quality () = fn ?quality "exp10"
  let sinh ?quality () = fn ?quality "sinh"
  let cosh ?quality () = fn ?quality "cosh"
  let sinpi ?quality () = fn ?quality "sinpi"
  let cospi ?quality () = fn ?quality "cospi"
  let sin ?quality () = fn ?quality "sin"
  let cos ?quality () = fn ?quality "cos"
  let tan ?quality () = fn ?quality "tan"
end

(* ------------------------------------------------------------------ *)
(* Posit32 convenience API (pattern in, pattern out).                  *)
(* ------------------------------------------------------------------ *)

module P32 = struct
  let fn ?quality name =
    let g = get ?quality Specs.posit32 name in
    fun pat -> G.eval_pattern g pat
end
