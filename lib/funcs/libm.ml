(* The generated math library.

   Functions are generated on first use (the paper ships pre-generated
   coefficient tables; we regenerate deterministically — same algorithms,
   same inputs, same tables every run) and cached per (function, target,
   enumeration).  The float32 entry points take and return doubles that
   are exact float32 values, mirroring how a C float function would be
   called from double-based test harnesses (§4.1). *)

module G = Rlibm.Generator

type quality = Draft | Quick | Full

(* Enumeration used to drive generation. *)
let enumeration (t : Specs.target) quality =
  let module T = (val t.repr) in
  match (T.bits, quality) with
  | 16, _ -> Rlibm.Enumerate.exhaustive16
  | _, Draft -> Rlibm.Enumerate.stratified32 ~per_stratum:2 ()
  | _, Quick -> Rlibm.Enumerate.stratified32 ~per_stratum:8 ()
  | _, Full -> Rlibm.Enumerate.stratified32 ~per_stratum:24 ()

let cache : (string * string * quality, G.generated) Hashtbl.t = Hashtbl.create 32
let cache_mu = Mutex.create ()

(** Generate (or fetch) one function for one target.
    @raise Failure if generation fails — a spec bug, not a user error.

    The lock is held across generation: concurrent callers of the same
    function wait for one generation instead of racing two, and
    generation itself fans out internally via {!Parallel}. *)
let get ?(quality = Full) ?cfg (t : Specs.target) name =
  Mutex.protect cache_mu @@ fun () ->
  match Hashtbl.find_opt cache (name, t.tname, quality) with
  | Some g -> g
  | None -> (
      let spec = Specs.by_name name t in
      match G.generate ?cfg spec ~patterns:(enumeration t quality) with
      | Ok g ->
          Hashtbl.replace cache (name, t.tname, quality) g;
          g
      | Error msg -> failwith ("Libm.get: generation failed: " ^ msg))

(** Pattern-level entry point: apply the generated function. *)
let eval_pattern ?quality ?cfg t name pat = G.eval_pattern (get ?quality ?cfg t name) pat

(* ------------------------------------------------------------------ *)
(* Float32 convenience API (double in, double out, float32 values).    *)
(* ------------------------------------------------------------------ *)

module F32 = struct
  let fn ?quality name =
    let g = get ?quality Specs.float32 name in
    fun x -> G.eval_double g x

  let ln ?quality () = fn ?quality "ln"
  let log2 ?quality () = fn ?quality "log2"
  let log10 ?quality () = fn ?quality "log10"
  let exp ?quality () = fn ?quality "exp"
  let exp2 ?quality () = fn ?quality "exp2"
  let exp10 ?quality () = fn ?quality "exp10"
  let sinh ?quality () = fn ?quality "sinh"
  let cosh ?quality () = fn ?quality "cosh"
  let sinpi ?quality () = fn ?quality "sinpi"
  let cospi ?quality () = fn ?quality "cospi"
end

(* ------------------------------------------------------------------ *)
(* Posit32 convenience API (pattern in, pattern out).                  *)
(* ------------------------------------------------------------------ *)

module P32 = struct
  let fn ?quality name =
    let g = get ?quality Specs.posit32 name in
    fun pat -> G.eval_pattern g pat
end
