(* Benchmark harness: Figures 3, 4 and 5 of the paper.

   Methodology follows §4.1: each measured unit is the evaluation of a
   full 1024-element input array (the paper's vectorization-aware
   harness), timed with Bechamel's monotonic clock and reduced by OLS on
   the run count.  Every library pays the same pattern<->double
   conversion costs its real-world use would pay.

   Functions are generated at Draft quality here: generation quality
   changes how many inputs constrain the tables, not the runtime code
   path being measured.  Use bin/check.exe for correctness and
   bin/generate.exe for Table 3 statistics. *)

open Bechamel
module Toolkit = Bechamel.Toolkit

let quality = Funcs.Libm.Draft
let batch = 1024

(* Deterministic input arrays per function family: the paper populates
   its 1024-element arrays with "different inputs"; we draw them
   deterministically from each function's non-special domain. *)
let inputs_for name =
  let mix i =
    (* splitmix-ish *)
    let z = (i + 1) * 0x9E3779B9 land 0xFFFFFF in
    float_of_int z /. float_of_int 0xFFFFFF
  in
  Array.init batch (fun i ->
      let u = mix i in
      let v = mix (i + 7919) in
      let sym x = if v < 0.5 then -.x else x in
      match name with
      | "ln" | "log2" | "log10" -> Float.ldexp (1.0 +. u) (int_of_float ((v *. 60.0) -. 30.0))
      | "exp" | "sinh" | "cosh" -> sym (u *. 80.0)
      | "exp2" -> sym (u *. 120.0)
      | "exp10" -> sym (u *. 35.0)
      | "sinpi" | "cospi" -> sym (Float.ldexp (1.0 +. u) (int_of_float (v *. 20.0) - 10))
      | _ -> u)

(* Round inputs into the target so conversions are exact at run time. *)
let patterns_of (module T : Fp.Representation.S) xs = Array.map T.of_double xs

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing.                                                  *)
(* ------------------------------------------------------------------ *)

let measure_ns staged =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let test = Test.make ~name:"t" staged in
  let results = Benchmark.all cfg [ instance ] test in
  let b = Hashtbl.fold (fun _ v _ -> Some v) results None |> Option.get in
  let ols =
    Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:(Measure.label instance)
      ~predictors:[| Measure.run |] b.Benchmark.lr
  in
  match Analyze.OLS.estimates ols with
  | Some (t :: _) -> t
  | _ -> Float.nan

(* Evaluate a pattern->pattern function over the whole batch. *)
let batch_fn f (pats : int array) =
  Staged.stage (fun () ->
      let acc = ref 0 in
      for i = 0 to batch - 1 do
        acc := !acc lxor f pats.(i)
      done;
      !acc)

(* Double->double functions (rounded through T at the end, as a float
   libm caller would see). *)
let batch_dfn (module T : Fp.Representation.S) f (xs : float array) =
  Staged.stage (fun () ->
      let acc = ref 0.0 in
      for i = 0 to batch - 1 do
        acc := !acc +. T.to_double (T.of_double (f xs.(i)))
      done;
      !acc)

let pr_header title = Printf.printf "\n== %s ==\n%!" title

let speedup base v = base /. v

(* ------------------------------------------------------------------ *)
(* Figure 3: float32 functions vs comparators.                         *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  pr_header "FIG3: float32 per-call cost (ns per 1024-input batch) and RLIBM-32 speedups";
  Printf.printf "%-7s %10s %10s %10s %10s %10s | %7s %7s %7s %7s\n" "func" "rlibm" "nativeF32"
    "nativeF64" "glibc-dbl" "crlibm-dd" "vs-f32" "vs-f64" "vs-glibc" "vs-crl";
  let t = Funcs.Specs.float32 in
  let module T = Fp.Fp32 in
  let geo = Array.make 4 0.0 in
  let n = ref 0 in
  List.iter
    (fun name ->
      match Funcs.Libm.get ~quality t name with
      | exception Failure msg -> Printf.printf "%-7s SKIPPED (%s)\n%!" name msg
      | g ->
          let xs = inputs_for name in
          let xs = Array.map (fun x -> T.to_double (T.of_double x)) xs in
          let pats = patterns_of (module T) xs in
          let rlibm = measure_ns (batch_fn (Rlibm.Generator.compile g) pats) in
          let n32 =
            measure_ns (batch_fn (Baselines.Native.eval_pattern Baselines.Native.F32 t name) pats)
          in
          let n64 =
            measure_ns (batch_fn (Baselines.Native.eval_pattern Baselines.Native.F64 t name) pats)
          in
          let glibc =
            measure_ns (batch_dfn (module T) (Baselines.Double_libm.fn name) xs)
          in
          let crl =
            measure_ns (batch_dfn (module T) (Baselines.Crlibm_analog.timed_eval name) xs)
          in
          let sp = [| speedup n32 rlibm; speedup n64 rlibm; speedup glibc rlibm; speedup crl rlibm |] in
          Array.iteri (fun i s -> geo.(i) <- geo.(i) +. Float.log s) sp;
          incr n;
          Printf.printf "%-7s %10.0f %10.0f %10.0f %10.0f %10.0f | %7.2f %7.2f %7.2f %7.2f\n%!"
            name rlibm n32 n64 glibc crl sp.(0) sp.(1) sp.(2) sp.(3))
    Funcs.Specs.float_functions;
  if !n > 0 then
    Printf.printf "%-7s %54s | %7.2f %7.2f %7.2f %7.2f\n%!" "geomean" ""
      (Float.exp (geo.(0) /. float_of_int !n))
      (Float.exp (geo.(1) /. float_of_int !n))
      (Float.exp (geo.(2) /. float_of_int !n))
      (Float.exp (geo.(3) /. float_of_int !n))

(* ------------------------------------------------------------------ *)
(* Figure 4: posit32 functions vs repurposed double libraries.         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  pr_header "FIG4: posit32 per-call cost (ns per 1024-input batch) and RLIBM-32 speedups";
  Printf.printf "%-7s %10s %10s %10s %10s | %7s %7s %7s\n" "func" "rlibm" "glibc-dbl" "nativeF64"
    "crlibm-dd" "vs-glibc" "vs-f64" "vs-crl";
  let t = Funcs.Specs.posit32 in
  let module P = Posit.Posit32 in
  let geo = Array.make 3 0.0 in
  let n = ref 0 in
  List.iter
    (fun name ->
      match Funcs.Libm.get ~quality t name with
      | exception Failure msg -> Printf.printf "%-7s SKIPPED (%s)\n%!" name msg
      | g ->
          let xs = inputs_for name in
          let pats = Array.map P.of_double xs in
          let rlibm = measure_ns (batch_fn (Rlibm.Generator.compile g) pats) in
          let glibc =
            measure_ns (batch_fn (Baselines.Double_libm.eval (module P) name) pats)
          in
          let n64 =
            measure_ns (batch_fn (Baselines.Native.eval_pattern Baselines.Native.F64 t name) pats)
          in
          let crlf = Baselines.Crlibm_analog.timed_eval name in
          let crl =
            measure_ns (batch_fn (fun p -> P.of_double (crlf (P.to_double p))) pats)
          in
          let sp = [| speedup glibc rlibm; speedup n64 rlibm; speedup crl rlibm |] in
          Array.iteri (fun i s -> geo.(i) <- geo.(i) +. Float.log s) sp;
          incr n;
          Printf.printf "%-7s %10.0f %10.0f %10.0f %10.0f | %7.2f %7.2f %7.2f\n%!" name rlibm
            glibc n64 crl sp.(0) sp.(1) sp.(2))
    Funcs.Specs.posit_functions;
  if !n > 0 then
    Printf.printf "%-7s %43s | %7.2f %7.2f %7.2f\n%!" "geomean" ""
      (Float.exp (geo.(0) /. float_of_int !n))
      (Float.exp (geo.(1) /. float_of_int !n))
      (Float.exp (geo.(2) /. float_of_int !n))

(* ------------------------------------------------------------------ *)
(* Figure 5: speedup vs number of piecewise sub-domains.               *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  pr_header "FIG5: log2/log10 speedup vs forced sub-domain count (baseline = single polynomial)";
  Printf.printf "%-7s %6s %12s %10s %8s %s\n" "func" "n" "subdomains" "ns/batch" "speedup" "degree";
  let t = Funcs.Specs.float32 in
  let module T = Fp.Fp32 in
  List.iter
    (fun name ->
      let xs = inputs_for name in
      let pats = patterns_of (module T) (Array.map (fun x -> T.to_double (T.of_double x)) xs) in
      let base = ref None in
      List.iter
        (fun n ->
          let cfg = { Rlibm.Config.default with start_split_bits = n; max_split_bits = n } in
          (* Neutralize the designer hint: this sweep wants exactly 2^n. *)
          let spec = { (Funcs.Specs.by_name name t) with Rlibm.Spec.split_hint = 0 } in
          match
            Rlibm.Generator.generate ~cfg spec ~patterns:(Funcs.Libm.enumeration t quality)
          with
          | Error msg -> Printf.printf "%-7s %6d FAILED: %s\n%!" name n msg
          | Ok g ->
              let ns = measure_ns (batch_fn (Rlibm.Generator.compile g) pats) in
              let b = match !base with None -> base := Some ns; ns | Some b -> b in
              let stats = g.stats.per_component.(0) in
              Printf.printf "%-7s %6d %12d %10.0f %8.2f %d\n%!" name n stats.n_polynomials ns
                (b /. ns) stats.degree)
        [ 0; 2; 4; 6; 8; 10; 12 ])
    [ "log2"; "log10" ]

(* ------------------------------------------------------------------ *)
(* Ablations (design choices DESIGN.md calls out).                     *)
(* ------------------------------------------------------------------ *)

(* Ablation A: counterexample-guided sampling (Algorithm 4) vs handing
   the LP every constraint at once — the paper's claim that sampling is
   what makes 32-bit scale feasible (their LP cap is a few thousand
   constraints; ours is smaller but the asymmetry is the same). *)
let ablation_sampling () =
  pr_header "ABLATION A: counterexample-guided sampling vs full-constraint LP (bfloat16 exp2)";
  let spec = Funcs.Specs.exp2 Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  (* Collect the reduced constraints once. *)
  let cons = Hashtbl.create 1024 in
  Array.iter
    (fun pat ->
      match spec.special pat with
      | Some _ -> ()
      | None -> (
          let y =
            Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
              (T.to_rational pat)
          in
          let iv = Rlibm.Rounding.interval spec.repr y in
          match Rlibm.Reduced.deduce spec ~pattern:pat ~interval:iv with
          | Error _ -> ()
          | Ok (_, cs) -> (
              let c = cs.(0) in
              let key = Fp.Fp64.bits c.r in
              match Hashtbl.find_opt cons key with
              | None -> Hashtbl.replace cons key c
              | Some (p : Rlibm.Reduced.constr) ->
                  Hashtbl.replace cons key
                    { c with lo = Float.max p.lo c.lo; hi = Float.min p.hi c.hi })))
    Rlibm.Enumerate.exhaustive16;
  let arr = Hashtbl.fold (fun _ c acc -> c :: acc) cons [] |> Array.of_list in
  Array.sort (fun (a : Rlibm.Reduced.constr) b -> compare a.r b.r) arr;
  let pos = Array.of_seq (Seq.filter (fun (c : Rlibm.Reduced.constr) -> c.r >= 0.0) (Array.to_seq arr)) in
  Printf.printf "constraints (positive group): %d\n%!" (Array.length pos);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sampled, t_sampled =
    time (fun () -> Rlibm.Polygen.gen ~cfg:Rlibm.Config.default ~terms:[| 0; 1; 2; 3 |] pos)
  in
  let all_lp, t_all =
    time (fun () ->
        Lp.Polyfit.fit ~terms:[| 0; 1; 2; 3 |]
          (Array.map
             (fun (c : Rlibm.Reduced.constr) ->
               { Lp.Polyfit.r = c.r; lo = c.lo; hi = c.hi; lo_open = c.lo_open; hi_open = c.hi_open })
             pos))
  in
  Printf.printf "counterexample-guided: %.2fs (%s)\n" t_sampled
    (match sampled with Rlibm.Polygen.Found _ -> "found" | _ -> "no polynomial");
  Printf.printf "all-constraints LP:    %.2fs (%s)\n%!" t_all
    (match all_lp with Some _ -> "found" | None -> "no polynomial")

(* Ablation B: the paper lets the designer pick odd/even structure; a
   dense polynomial of the same reach costs more per call. *)
let ablation_structure () =
  pr_header "ABLATION B: odd-structure vs dense polynomial, sinpi runtime";
  let t = Funcs.Specs.float32 in
  let module T = Fp.Fp32 in
  match Funcs.Libm.get ~quality t "sinpi" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g ->
      let xs = Array.map (fun x -> T.to_double (T.of_double x)) (inputs_for "sinpi") in
      let pats = patterns_of (module T) xs in
      let odd = measure_ns (batch_fn (Rlibm.Generator.compile g) pats) in
      (* Dense variant: pad the generated odd/even tables to dense terms
         [0..5], zero coefficients where absent; same values, denser
         Horner. *)
      let dense_piece (pw : Rlibm.Piecewise.t) =
        let dense_terms = Array.init 6 (fun i -> i) in
        let widen (grp : Rlibm.Piecewise.group option) =
          Option.map
            (fun (grp : Rlibm.Piecewise.group) ->
              let nsub = Rlibm.Splitting.n_subdomains grp.Rlibm.Piecewise.scheme in
              let nt = Array.length pw.terms in
              let coeffs = Array.make (nsub * 6) 0.0 in
              for s = 0 to nsub - 1 do
                Array.iteri
                  (fun k e -> coeffs.((s * 6) + e) <- grp.coeffs.((s * nt) + k))
                  pw.terms
              done;
              { grp with coeffs })
            grp
        in
        { Rlibm.Piecewise.terms = dense_terms; neg = widen pw.neg; pos = widen pw.pos }
      in
      let dense_pieces = Array.map dense_piece g.pieces in
      let dense_fn pat =
        match g.spec.special pat with
        | Some out -> out
        | None ->
            let rr = g.spec.reduce (T.to_double pat) in
            let v = Array.map (fun pw -> Rlibm.Piecewise.eval pw rr.r) dense_pieces in
            T.of_double (g.spec.compensate rr v)
      in
      let dense = measure_ns (batch_fn dense_fn pats) in
      Printf.printf "odd/even structure: %.0f ns/batch; dense degree-5: %.0f ns/batch (%.2fx)\n%!"
        odd dense (dense /. odd)

(* Scalar calls vs the batch entry point: the paper's vectorization
   observation (§4.3) at OCaml scale. *)
let vec () =
  pr_header "VEC: scalar pattern calls vs Funcs.Batch (1024-input batches)";
  let t = Funcs.Specs.float32 in
  let module T = Fp.Fp32 in
  List.iter
    (fun name ->
      match Funcs.Libm.get ~quality t name with
      | exception Failure msg -> Printf.printf "%-7s SKIPPED (%s)\n%!" name msg
      | g ->
          let xs = Array.map (fun x -> T.to_double (T.of_double x)) (inputs_for name) in
          let pats = patterns_of (module T) xs in
          let dst = Array.make batch 0 in
          let scalar = measure_ns (batch_fn (Rlibm.Generator.compile g) pats) in
          let batched =
            measure_ns
              (Staged.stage (fun () ->
                   Funcs.Batch.eval_patterns g pats dst;
                   dst.(0)))
          in
          Printf.printf "%-7s scalar %8.0f ns  batch %8.0f ns  (%.2fx)\n%!" name scalar batched
            (scalar /. batched))
    [ "log2"; "exp2"; "sinpi" ]

(* Validation throughput vs domain count: the sharded Check/validation
   pass (Algorithm 4's bottleneck at full 32-bit scale) timed at fixed
   job counts.  On a single-CPU host the jobs>1 rows measure scheduling
   overhead, not speedup; on a multicore host they show the scaling the
   ISSUE targets. *)
let par () =
  pr_header "PAR: validation throughput vs worker domains (bfloat16 log2, oracle truth + compare)";
  let t = Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  match Funcs.Libm.get ~quality t "log2" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g ->
      (* Every 8th bfloat16 pattern: large enough to shard, small enough
         to finish promptly at jobs=1. *)
      let pats =
        Array.of_seq
          (Seq.filter (fun p -> p land 7 = 0) (Array.to_seq Rlibm.Enumerate.exhaustive16))
      in
      let n = Array.length pats in
      let spec = g.Rlibm.Generator.spec in
      let validate jobs =
        Parallel.fold_chunks ~jobs ~n ~combine:( + ) ~init:0
          (fun ~lo ~hi ->
            let bad = ref 0 in
            for k = lo to hi - 1 do
              let pat = pats.(k) in
              let want =
                match spec.special pat with
                | Some y -> y
                | None ->
                    Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
                      (T.to_rational pat)
              in
              if
                not
                  (Rlibm.Generator.patterns_value_equal spec.repr
                     (Rlibm.Generator.eval_pattern g pat) want)
              then incr bad
            done;
            !bad)
      in
      Printf.printf "%6s %10s %12s %10s %8s\n" "jobs" "wall_s" "items/s" "busy_s" "bad";
      let base = ref None in
      List.iter
        (fun jobs ->
          let t0 = Unix.gettimeofday () in
          let bad = validate jobs in
          let wall = Unix.gettimeofday () -. t0 in
          let busy =
            match Parallel.last_stats () with
            | Some s -> Array.fold_left ( +. ) 0.0 s.Parallel.shard_seconds
            | None -> wall
          in
          let b = match !base with None -> base := Some wall; wall | Some b -> b in
          Printf.printf "%6d %10.2f %12.0f %10.2f %8d  (%.2fx vs jobs=1)\n%!" jobs wall
            (float_of_int n /. wall) busy bad (b /. wall))
        [ 1; 2; 4; 8 ];
      (* Batch engine on a large synthetic batch: the sharded
         Funcs.Batch path vs its own jobs=1 run. *)
      let big = 1 lsl 16 in
      let src = Array.init big (fun i -> pats.(i mod n)) in
      let dst = Array.make big 0 in
      Printf.printf "batch engine (%d patterns):\n" big;
      List.iter
        (fun jobs ->
          Parallel.set_jobs jobs;
          let t0 = Unix.gettimeofday () in
          for _ = 1 to 8 do
            Funcs.Batch.eval_patterns g src dst
          done;
          let wall = Unix.gettimeofday () -. t0 in
          Printf.printf "  jobs %2d: %8.3f s (%10.0f items/s)\n%!" jobs wall
            (float_of_int (8 * big) /. wall))
        [ 1; 2; 4; 8 ];
      Parallel.set_jobs 1

(* ------------------------------------------------------------------ *)
(* Exact-arithmetic microbenchmarks: the two-tier Bigint vs the frozen  *)
(* naive reference retained in test/util, and the Rational fast paths.  *)
(* ------------------------------------------------------------------ *)

(* Collected metrics for the --json report.  Non-finite values are
   dropped with a warning instead of written: a nan/inf in the JSON
   would kill the whole gate run at parse time, hiding every other
   metric behind one flaky measurement. *)
let metrics : (string * float) list ref = ref []

let record k v =
  if Float.is_finite v then metrics := (k, v) :: !metrics
  else
    Printf.eprintf "warning: metric %S is %s — skipped from the JSON report\n%!" k
      (Printf.sprintf "%h" v)

(* Both the live [Bigint] and the frozen [Test_util.Ref] reference
   satisfy this slice of the interface, so every workload below is
   written once and timed against both. *)
module type BI = sig
  type t
  val zero : t
  val of_int : int -> t
  val of_string : string -> t
  val to_string : t -> string
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val divmod : t -> t -> t * t
  val gcd : t -> t -> t
  val compare : t -> t -> int
  val sign : t -> int
  val shift_left : t -> int -> t
end

(* Deterministic 62-bit-ish stream (splitmix-style), so both modules see
   the same operands. *)
let mix64 i =
  let z = (i + 0x9E3779B9) * 0xBF58476D land max_int in
  let z = (z lxor (z lsr 27)) * 0x94D049BB land max_int in
  z lxor (z lsr 31)

(* The mixed small-operand workload the oracle's reductions generate:
   magnitudes spread over 2^4..2^60, one add/sub/mul/divmod/compare per
   pair.  On the two-tier representation every op stays on the fixnum
   path; the naive reference allocates limb arrays throughout. *)
let bigint_small (module M : BI) =
  let n = 512 in
  let xs =
    Array.init n (fun i ->
        let v = mix64 i land ((1 lsl (4 + (i mod 14 * 4))) - 1) in
        M.of_int (if i land 1 = 0 then v else -v))
  in
  Staged.stage (fun () ->
      let acc = ref 0 in
      for i = 0 to n - 2 do
        let a = xs.(i) and b = xs.(i + 1) in
        acc := !acc + M.sign (M.add a b) + M.sign (M.sub a b) + M.sign (M.mul a b);
        if M.sign b <> 0 then begin
          let q, r = M.divmod a b in
          acc := !acc + M.sign q + M.sign r
        end;
        acc := !acc + M.compare a b
      done;
      !acc)

(* Wide operands: [limbs30] chunks of 30 bits each (local to each
   workload so the packed module's type does not escape). *)
let bigint_mul_wide (module M : BI) =
  let st = Random.State.make [| 7 |] in
  let wide limbs30 =
    let x = ref M.zero in
    for _ = 1 to limbs30 do
      x := M.add (M.shift_left !x 30) (M.of_int (Random.State.full_int st (1 lsl 30)))
    done;
    !x
  in
  let a = wide 135 and b = wide 135 in
  Staged.stage (fun () -> M.sign (M.mul a b))

let bigint_gcd_wide (module M : BI) =
  let st = Random.State.make [| 11 |] in
  let wide limbs30 =
    let x = ref M.zero in
    for _ = 1 to limbs30 do
      x := M.add (M.shift_left !x 30) (M.of_int (Random.State.full_int st (1 lsl 30)))
    done;
    !x
  in
  let g = wide 10 in
  let a = M.mul g (wide 20) and b = M.mul g (wide 20) in
  Staged.stage (fun () -> M.sign (M.gcd a b))

let bigint_of_string (module M : BI) =
  let st = Random.State.make [| 13 |] in
  let wide limbs30 =
    let x = ref M.zero in
    for _ = 1 to limbs30 do
      x := M.add (M.shift_left !x 30) (M.of_int (Random.State.full_int st (1 lsl 30)))
    done;
    !x
  in
  let s = M.to_string (wide 120) in
  Staged.stage (fun () -> M.sign (M.of_string s))

let bigint () =
  pr_header "BIGINT: two-tier fixnum/Karatsuba vs retained naive reference";
  Printf.printf "%-22s %12s %12s %9s\n" "workload" "new(ns)" "naive(ns)" "speedup";
  let live = (module Bigint : BI) and naive = (module Test_util.Ref : BI) in
  List.iter
    (fun (name, mk) ->
      let t_new = measure_ns (mk live) and t_old = measure_ns (mk naive) in
      record (Printf.sprintf "bigint.%s.new_ns" name) t_new;
      record (Printf.sprintf "bigint.%s.naive_ns" name) t_old;
      record (Printf.sprintf "bigint.%s.speedup" name) (t_old /. t_new);
      Printf.printf "%-22s %12.0f %12.0f %8.2fx\n%!" name t_new t_old (t_old /. t_new))
    [
      ("mixed_small(512)", bigint_small);
      ("mul_4050bit", bigint_mul_wide);
      ("gcd_shared_factor", bigint_gcd_wide);
      ("of_string_1080digit", bigint_of_string);
    ]

module Q = Rational
module BB = Bigint

let rational () =
  pr_header "RATIONAL: dyadic fast paths (ns per 256-op batch)";
  let st = Random.State.make [| 17 |] in
  let n = 256 in
  (* Dyadic rationals as the oracle produces them: double significands
     over many binades. *)
  let dy =
    Array.init n (fun _ ->
        let m = Random.State.float st 2.0 -. 1.0 in
        Q.of_float (Float.ldexp m (Random.State.int st 200 - 100)))
  in
  let t_add =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to n - 2 do
             acc := !acc + Q.sign (Q.add dy.(i) dy.(i + 1))
           done;
           !acc))
  in
  (* Near-equal pairs: fast-path compare vs the textbook cross-multiply. *)
  let eps = Q.of_pow2 (-130) in
  let pairs = Array.map (fun a -> (a, Q.add a eps)) dy in
  let t_cmp =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Array.iter (fun (a, b) -> acc := !acc + Q.compare a b + Q.compare b a) pairs;
           !acc))
  in
  let t_cmp_slow =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Array.iter
             (fun (a, b) ->
               let s a b = BB.compare (BB.mul (Q.num a) (Q.den b)) (BB.mul (Q.num b) (Q.den a)) in
               acc := !acc + s a b + s b a)
             pairs;
           !acc))
  in
  (* Magnitude-spread pairs: the bit-length bracket decides without
     touching the numerators (the common case in LP pivoting). *)
  let spread = Array.map (fun a -> (a, Q.mul_pow2 a 3)) dy in
  let t_cmp_spread =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Array.iter (fun (a, b) -> acc := !acc + Q.compare a b + Q.compare b a) spread;
           !acc))
  in
  let t_cmp_spread_slow =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Array.iter
             (fun (a, b) ->
               let s a b = BB.compare (BB.mul (Q.num a) (Q.den b)) (BB.mul (Q.num b) (Q.den a)) in
               acc := !acc + s a b + s b a)
             spread;
           !acc))
  in
  (* Non-dyadic normalization: make with a gcd to strip. *)
  let t_make =
    measure_ns
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to n - 1 do
             let k = (i mod 40) + 2 in
             acc := !acc + Q.sign (Q.of_ints ((i * 6) + 2) (k * 3))
           done;
           !acc))
  in
  record "rational.add_dyadic_ns" t_add;
  record "rational.compare_near_equal_ns" t_cmp;
  record "rational.compare_near_equal_cross_multiply_ns" t_cmp_slow;
  record "rational.compare_spread_ns" t_cmp_spread;
  record "rational.compare_spread_cross_multiply_ns" t_cmp_spread_slow;
  record "rational.make_gcd_ns" t_make;
  Printf.printf "add (dyadic chain):        %10.0f ns\n" t_add;
  Printf.printf "compare (near-equal):      %10.0f ns  vs cross-multiply %10.0f ns (%.2fx)\n"
    t_cmp t_cmp_slow (t_cmp_slow /. t_cmp);
  Printf.printf "compare (spread brackets): %10.0f ns  vs cross-multiply %10.0f ns (%.2fx)\n"
    t_cmp_spread t_cmp_spread_slow (t_cmp_spread_slow /. t_cmp_spread);
  Printf.printf "make (gcd normalization):  %10.0f ns\n%!" t_make

(* ------------------------------------------------------------------ *)
(* LP kernel microbenchmarks: revised simplex vs the retained dense     *)
(* tableau, and warm-started growth vs cold re-solves (the Algorithm-4  *)
(* access pattern).                                                     *)
(* ------------------------------------------------------------------ *)

(* Polyfit-shaped system: bound a degree-4 polynomial within a +-1e-4
   tube around log2 at quasi-random points of [1,2).  Points are drawn
   from a fixed low-discrepancy sequence so [lp_system m] is a prefix of
   [lp_system m'] for m < m' — the warm-grow workload below relies on
   appending exactly the rows the cold re-solves see. *)
let lp_system m =
  let nt = 5 in
  let q = Rational.of_float in
  let point i = 1.0 +. Float.rem (float_of_int (i + 1) *. 0.618033988749895) 1.0 in
  let rows = Array.make m [||] and rhs = Array.make m Rational.zero in
  for i = 0 to (m / 2) - 1 do
    let r = point i in
    let pow = Array.init nt (fun k -> Float.pow r (float_of_int k)) in
    let y = Float.log2 r in
    rows.(2 * i) <- Array.map q pow;
    rhs.(2 * i) <- q (y +. 1e-4);
    rows.((2 * i) + 1) <- Array.map (fun p -> q (-.p)) pow;
    rhs.((2 * i) + 1) <- q (-.(y -. 1e-4))
  done;
  (rows, rhs)

let lp () =
  pr_header "LP: revised simplex vs dense tableau; warm-started growth (degree-4 tube fit)";
  let a, b = lp_system 64 in
  let t_dense = measure_ns (Staged.stage (fun () -> Lp.Simplex.feasible_reference ~a ~b)) in
  let t_rev = measure_ns (Staged.stage (fun () -> Lp.Simplex.feasible ~a ~b)) in
  record "lp.dense_solve_ns" t_dense;
  record "lp.revised_solve_ns" t_rev;
  record "lp.revised_vs_dense_speedup" (t_dense /. t_rev);
  Printf.printf "one-shot solve (64 rows):  dense %10.0f ns  revised %10.0f ns  (%.2fx)\n%!"
    t_dense t_rev (t_dense /. t_rev);
  (* Grown system: solve after every batch of fresh rows, as the
     counterexample loop does.  Cold re-solves from scratch each round;
     warm keeps one state and repairs its basis by dual simplex. *)
  let rounds = 7 and step = 8 in
  let cold_grow () =
    let ok = ref 0 in
    for k = 1 to rounds do
      let a, b = lp_system (k * step) in
      match Lp.Simplex.feasible ~a ~b with Lp.Simplex.Feasible _ -> incr ok | _ -> ()
    done;
    !ok
  in
  let warm_grow () =
    let st = Lp.Simplex.create ~nv:5 in
    let a, b = lp_system (rounds * step) in
    let ok = ref 0 in
    for k = 1 to rounds do
      for i = (k - 1) * step to (k * step) - 1 do
        ignore (Lp.Simplex.add_row st a.(i) b.(i))
      done;
      match Lp.Simplex.solve st with Lp.Simplex.Feasible _ -> incr ok | _ -> ()
    done;
    !ok
  in
  let t_cold_grow = measure_ns (Staged.stage cold_grow) in
  let t_warm_grow = measure_ns (Staged.stage warm_grow) in
  record "lp.cold_grow_ns" t_cold_grow;
  record "lp.warm_grow_ns" t_warm_grow;
  record "lp.warm_grow_speedup" (t_cold_grow /. t_warm_grow);
  (* Pivot counts for one pass of each, so the work saved (not just the
     wall clock) lands in the JSON. *)
  let s0 = Lp.Simplex.snapshot () in
  ignore (cold_grow ());
  let s1 = Lp.Simplex.snapshot () in
  ignore (warm_grow ());
  let s2 = Lp.Simplex.snapshot () in
  let cold_pivots = s1.Lp.Simplex.primal_pivots - s0.Lp.Simplex.primal_pivots in
  let warm_pivots = s2.Lp.Simplex.dual_pivots - s1.Lp.Simplex.dual_pivots in
  record "lp.cold_grow_pivots" (float_of_int cold_pivots);
  record "lp.warm_grow_pivots" (float_of_int warm_pivots);
  Printf.printf
    "grown system (%d rounds x %d rows): cold %10.0f ns (%d pivots)  warm %10.0f ns (%d pivots)  (%.2fx)\n%!"
    rounds step t_cold_grow cold_pivots t_warm_grow warm_pivots (t_cold_grow /. t_warm_grow)

(* End-to-end generator wall-clock: the oracle and LP sit on Bigint and
   Rational, so the two-tier work shows up here. *)
let gen () =
  pr_header "GEN: end-to-end table generation wall-clock (bfloat16, Quick enumeration)";
  let t = Funcs.Specs.bfloat16 in
  List.iter
    (fun name ->
      let spec = Funcs.Specs.by_name name t in
      let t0 = Unix.gettimeofday () in
      match
        Rlibm.Generator.generate ~cfg:Rlibm.Config.default spec
          ~patterns:(Funcs.Libm.enumeration t Funcs.Libm.Quick)
      with
      | Error msg -> Printf.printf "%-7s FAILED: %s\n%!" name msg
      | Ok _ ->
          let wall = Unix.gettimeofday () -. t0 in
          record (Printf.sprintf "gen.bfloat16_%s_s" name) wall;
          Printf.printf "%-7s %8.2f s\n%!" name wall)
    [ "log2"; "exp2" ];
  (* float32 log2: the generation the LP-kernel tentpole targets, cold
     (deterministic revised simplex) and with --lp-warm basis reuse.
     Single runs: a generation is seconds, not nanoseconds. *)
  pr_header "GEN: float32 log2 generation, cold vs warm-started LP";
  let t = Funcs.Specs.float32 in
  let spec = Funcs.Specs.by_name "log2" t in
  List.iter
    (fun (label, metric, cfg) ->
      let t0 = Unix.gettimeofday () in
      match
        Rlibm.Generator.generate ~cfg spec ~patterns:(Funcs.Libm.enumeration t Funcs.Libm.Quick)
      with
      | Error msg -> Printf.printf "log2 (%s) FAILED: %s\n%!" label msg
      | Ok g ->
          let wall = Unix.gettimeofday () -. t0 in
          record metric wall;
          (match g.Rlibm.Generator.stats.lp with
          | None -> ()
          | Some l ->
              let pfx = Printf.sprintf "lp.float32_log2_%s" label in
              record (pfx ^ "_solves")
                (float_of_int
                   (if l.lp_warm_mode then l.lp_warm_solves + l.lp_cold_solves else l.lp_cold_solves));
              record (pfx ^ "_pivots") (float_of_int (l.lp_primal_pivots + l.lp_dual_pivots));
              if l.lp_warm_mode then
                record (pfx ^ "_fallbacks") (float_of_int l.lp_warm_fallbacks));
          Printf.printf "log2 (%s) %8.2f s\n%!" label wall)
    [
      ("cold", "gen.float32_log2_s", Rlibm.Config.default);
      ("warm", "gen.float32_log2_warm_s", { Rlibm.Config.default with lp_warm = true });
    ]

(* Mode-polymorphic rounding machinery: interval computation per mode
   (the nearest modes probe closed double boxes; the directed/odd modes
   add one exact-rational midpoint test per endpoint) and the RLIBM-ALL
   derived path — bfloat16 through the single float34 round-to-odd
   table — against the directly generated bfloat16 table. *)
let round_section () =
  pr_header "ROUND: rounding intervals per mode (bfloat16, 1024 patterns)";
  let module T = Fp.Bfloat16 in
  let pats = patterns_of (module T) (inputs_for "log2") in
  List.iter
    (fun mode ->
      let t =
        measure_ns
          (Staged.stage (fun () ->
               let acc = ref 0.0 in
               for i = 0 to batch - 1 do
                 acc := !acc +. (Rlibm.Rounding.interval (module T) ~mode pats.(i)).lo
               done;
               !acc))
      in
      record (Printf.sprintf "round.interval_bf16_%s_ns" (Fp.Rounding_mode.to_string mode)) t;
      Printf.printf "interval %-5s %12.0f ns\n%!" (Fp.Rounding_mode.to_string mode) t)
    Fp.Rounding_mode.all;
  pr_header "ROUND: direct bfloat16 log2 table vs derived-from-float34 (per 1024-input batch)";
  let direct = Rlibm.Generator.compile (Funcs.Libm.get ~quality Funcs.Specs.bfloat16 "log2") in
  let derived =
    Funcs.Derived.fn ~quality (module T : Fp.Representation.S) ~mode:Fp.Rounding_mode.Rne "log2"
  in
  let t_direct = measure_ns (batch_fn direct pats) in
  let t_derived = measure_ns (batch_fn derived pats) in
  record "round.bf16_log2_direct_ns" t_direct;
  record "round.bf16_log2_derived_ns" t_derived;
  record "round.derived_over_direct_ratio" (t_derived /. t_direct);
  Printf.printf "direct %12.0f ns   derived %12.0f ns   (%.2fx the direct cost)\n%!" t_direct
    t_derived (t_derived /. t_direct)

(* Sweep engine: cold full-oracle sweep vs a cache-warm re-run over the
   same (func, mode, pattern) set — the acceptance number for the
   persistent oracle cache.  Seconds-scale jobs, so single-run wall
   clocks (best-of-3 on the warm side, which is cheap): a cold sweep is
   only cold once, Bechamel's OLS has nothing to regress on. *)
let sweep_section () =
  pr_header "SWEEP: resumable bfloat16 log2 sweep, cold oracle vs warm cache (all 2^16 patterns)";
  let t = Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  match Funcs.Libm.get ~quality t "log2" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g ->
      let spec = g.Rlibm.Generator.spec in
      let compiled = Rlibm.Generator.compile g in
      (* The full 16-bit pattern space: big enough that the cold wall
         clock is seconds-scale (stable under a 25% gate), small enough
         to finish promptly.  [stride] stays in the identity so a later
         strided variant cannot silently resume this checkpoint. *)
      let stride = 1 in
      let n = (((1 lsl T.bits) - 1) / stride) + 1 in
      let root =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rlibm_bench_sweep.%d" (Unix.getpid ()))
      in
      let rec rm_rf p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists root then rm_rf root;
      let identity = Printf.sprintf "bench-sweep v1 target=%s func=log2 stride=%d" T.name stride in
      let cache_dir = Filename.concat root "cache" in
      let run_once tag =
        let cache =
          Sweep.Oracle_cache.open_ ~dir:cache_dir ~repr:T.name ~func:"log2"
            ~mode:(Fp.Rounding_mode.to_string Fp.Rounding_mode.Rne)
        in
        let f ~lo ~hi =
          let ms = ref [] in
          for i = hi - 1 downto lo do
            let pat = i * stride in
            let want =
              match spec.special pat with
              | Some y -> y
              | None ->
                  Sweep.Oracle_cache.memo (Some cache) pat (fun pat ->
                      Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
                        (T.to_rational pat))
            in
            let got = compiled pat in
            if not (Rlibm.Generator.patterns_value_equal spec.repr got want) then
              ms := { Sweep.Checkpoint.pattern = pat; got; want } :: !ms
          done;
          !ms
        in
        let t0 = Unix.gettimeofday () in
        let r = Sweep.Engine.run ~dir:(Filename.concat root tag) ~identity ~n ~chunk_size:512 ~cache f in
        let wall = Unix.gettimeofday () -. t0 in
        Sweep.Oracle_cache.close cache;
        (match r with
        | Error msg -> Printf.printf "sweep (%-5s) FAILED: %s\n%!" tag msg
        | Ok o ->
            Printf.printf "sweep (%-5s) %8.2f s  (%d points, %d mismatches, cache %d hit / %d miss)\n%!"
              tag wall n
              (Array.length o.Sweep.Engine.mismatches)
              o.Sweep.Engine.stats.cache_hits o.Sweep.Engine.stats.cache_misses);
        wall
      in
      let cold = run_once "cold" in
      let warm =
        List.fold_left
          (fun best i -> Float.min best (run_once (Printf.sprintf "warm%d" i)))
          infinity [ 1; 2; 3 ]
      in
      record "sweep.bf16_log2_cold_s" cold;
      record "sweep.bf16_log2_warm_s" warm;
      record "sweep.cache_warm_speedup" (cold /. warm);
      Printf.printf "cold %8.2f s   warm (best of 3) %8.2f s   (%.2fx from the oracle cache)\n%!"
        cold warm (cold /. warm);
      rm_rf root

(* Campaign: the full 2^16 bfloat16 log2 space through the sharded
   driver, fast verifier vs oracle-only.  The acceptance triple lives
   here as gated metrics: inputs/sec through the fast path, the
   fast-path percentage (a correctness-of-strategy canary: if the
   certificate starts missing, this collapses long before anything is
   wrong enough to fail a sweep), and a byte-compare of the two reports
   (100 = identical).  Everything runs in-process: bench shares its
   process with domain-spawning sections, so forking is off the table
   and the throughput is per-worker by construction. *)
let campaign_section () =
  pr_header "CAMPAIGN: sharded bfloat16 log2 certification, fast verifier vs oracle (all 2^16)";
  let t = Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  match Funcs.Libm.get ~quality t "log2" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g ->
      let n = 1 lsl T.bits in
      let root =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rlibm_bench_campaign.%d" (Unix.getpid ()))
      in
      let rec rm_rf p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists root then rm_rf root;
      let identity = "bench-campaign v1 target=bfloat16 func=log2 stride=1" in
      let read_file p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let run tag policy shards =
        let counters = Sweep.Verify.counters () in
        let job ~shard =
          let cache =
            Sweep.Oracle_cache.open_
              ~dir:(Filename.concat root (Printf.sprintf "%s-cache-%d" tag shard))
              ~repr:T.name ~func:"log2" ~mode:"rne"
          in
          let v = Rlibm.Verifier.make ~counters ~cache ~policy g in
          { Campaign.f = Sweep.Verify.sweep_fn v ~stride:1 (); cache = Some cache;
            counters = Some counters }
        in
        match
          Campaign.run ~dir:(Filename.concat root tag) ~identity ~n ~shards ~chunk_size:1024
            ~exec:Campaign.In_process ~job ()
        with
        | Error msg ->
            Printf.printf "campaign (%-6s) FAILED: %s\n%!" tag msg;
            None
        | Ok o ->
            let m = o.Campaign.merged in
            Printf.printf
              "campaign (%-6s) %8.3f s  (%d points, %d shards, %d fast / %d escalated, %d \
               mismatches)\n%!"
              tag m.Campaign.Report.m_busy_seconds n shards m.m_fast m.m_escalated
              (Array.length m.m_mismatches);
            Some (m, read_file o.report_path)
      in
      (match (run "fast" `Fast 4, run "oracle" `Oracle 1) with
      | Some (mf, fast_text), Some (_, oracle_text) ->
          let st =
            {
              Rlibm.Stats.c_items = n;
              c_shards = mf.Campaign.Report.m_n_shards;
              c_busy_seconds = mf.m_busy_seconds;
              c_wall_seconds = mf.m_busy_seconds;
              c_fast = mf.m_fast;
              c_escalated = mf.m_escalated;
              c_mismatches = Array.length mf.m_mismatches;
              c_quarantined = Array.length mf.m_quarantined;
            }
          in
          Rlibm.Stats.pp_campaign Format.std_formatter st;
          record "campaign.bf16_log2_fast_s" mf.m_busy_seconds;
          record "campaign.inputs_per_sec" (Rlibm.Stats.campaign_inputs_per_second st);
          record "campaign.fast_path_pct" (Rlibm.Stats.campaign_fast_pct st);
          record "campaign.report_match_pct" (if fast_text = oracle_text then 100.0 else 0.0);
          record "campaign.projected_full32_8workers_s"
            (Rlibm.Stats.campaign_projected_seconds st ~n_items:(1 lsl 32) ~workers:8);
          Printf.printf "fast report %s oracle report\n%!"
            (if fast_text = oracle_text then "==" else "!=")
      | _ -> ());
      rm_rf root

(* ------------------------------------------------------------------ *)
(* SERVE: the zero-allocation serving path (lib/serve).                *)
(* ------------------------------------------------------------------ *)

let serve_section () =
  pr_header "SERVE: zero-allocation kernel pipeline (float32 log2, uniform mix, 65536-call batches)";
  let t = Funcs.Specs.float32 in
  match Funcs.Libm.get ~quality t "log2" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g -> (
      match Funcs.Kernels.of_generated g with
      | None -> Printf.printf "skipped (no serving kernel for float32 log2)\n"
      | Some p ->
          let n = 65536 in
          let src = Serve.Workload.gen p ~mix:Serve.Workload.Uniform ~seed:2024 ~n in
          Printf.printf "%6s %14s %10s %10s\n" "jobs" "calls/s" "p50_ns" "p99_ns";
          List.iter
            (fun jobs ->
              let slo = Serve.Run.measure ~jobs p src ~batches:32 in
              Printf.printf "%6d %14.0f %10.1f %10.1f\n%!" jobs slo.Serve.Run.calls_per_sec
                slo.Serve.Run.p50_ns slo.Serve.Run.p99_ns;
              let key part = Printf.sprintf "serve.f32_log2_uniform_%s_j%d" part jobs in
              record (key "calls_per_sec") slo.Serve.Run.calls_per_sec;
              record (key "p50_ns") slo.Serve.Run.p50_ns;
              record (key "p99_ns") slo.Serve.Run.p99_ns)
            [ 1; 2; 4 ];
          (* The headline claim: the kernel doubles pipeline vs the old
             boxed closure chain (kept as Batch.eval_doubles_boxed), same
             inputs, same sharding defaults. *)
          let srcd = Array.map (fun pat -> Serve.Kernel.to_double p pat) src in
          let dst = Array.make n 0.0 in
          let time_batches f =
            f ();
            (* warmed: tables pinned, closures built *)
            let batches = 16 in
            let t0 = Unix.gettimeofday () in
            for _ = 1 to batches do
              f ()
            done;
            float_of_int (n * batches) /. (Unix.gettimeofday () -. t0)
          in
          let boxed = time_batches (fun () -> Funcs.Batch.eval_doubles_boxed g srcd dst) in
          let kern = time_batches (fun () -> Serve.Run.doubles p srcd dst) in
          Printf.printf "doubles pipeline: boxed %.0f calls/s, kernel %.0f calls/s (%.2fx)\n%!" boxed
            kern (kern /. boxed);
          record "serve.f32_log2_uniform_vs_boxed_speedup" (kern /. boxed))

(* ------------------------------------------------------------------ *)
(* PROG: the progressive-polynomial Pareto sweep (RLIBM-PROG).  One     *)
(* generation with certificates, then the serving prefix forced to each *)
(* strict degree k (k=0 = the full-polynomial kernel baseline): the     *)
(* cost–accuracy frontier is (k, fast-tier share, p50/p99 ns/call).     *)
(* ------------------------------------------------------------------ *)

let prog_section () =
  pr_header "PROG: progressive prefix tiers (bfloat16 log2, uniform mix, 65536-call batches)";
  let t = Funcs.Specs.bfloat16 in
  let cfg = { Rlibm.Config.default with progressive = true } in
  match Funcs.Libm.get ~quality ~cfg t "log2" with
  | exception Failure msg -> Printf.printf "skipped (%s)\n" msg
  | g -> (
      match (Funcs.Kernels.of_generated g, g.Rlibm.Generator.prog) with
      | None, _ | _, None -> Printf.printf "skipped (no serving kernel or no certificates)\n"
      | Some _, Some pr ->
          let n = 65536 in
          let max_k =
            Array.fold_left
              (fun acc (pc : Rlibm.Prog.piece) -> min acc (pc.Rlibm.Prog.nt - 1))
              max_int pr.Rlibm.Prog.pieces
          in
          let selected = if Array.length pr.Rlibm.Prog.serve_k > 0 then pr.Rlibm.Prog.serve_k.(0) else 0 in
          Printf.printf "%6s %10s %14s %10s %10s\n" "k" "fast_pct" "calls/s" "p50_ns" "p99_ns";
          let full_p50 = ref 0.0 in
          for k = 0 to max_k do
            match Funcs.Kernels.force_tier g ~k with
            | None -> Printf.printf "%6d (no strict degree-%d prefix)\n%!" k k
            | Some p ->
                let src = Serve.Workload.gen p ~mix:Serve.Workload.Uniform ~seed:2024 ~n in
                let slo = Serve.Run.measure ~jobs:1 p src ~batches:32 in
                let tc = slo.Serve.Run.tier_prefix + slo.Serve.Run.tier_full + slo.Serve.Run.tier_fallback in
                let fast_pct =
                  if tc = 0 then 0.0
                  else 100.0 *. float_of_int slo.Serve.Run.tier_prefix /. float_of_int tc
                in
                if k = 0 then full_p50 := slo.Serve.Run.p50_ns;
                Printf.printf "%6d %10.2f %14.0f %10.1f %10.1f%s\n%!" k fast_pct
                  slo.Serve.Run.calls_per_sec slo.Serve.Run.p50_ns slo.Serve.Run.p99_ns
                  (if k = selected then "  <- selected serve_k" else if k = 0 then "  (full kernel)" else "");
                let key part = Printf.sprintf "prog.bf16_log2_k%d_%s" k part in
                record (key "fast_pct") fast_pct;
                record (key "p50_ns") slo.Serve.Run.p50_ns;
                record (key "p99_ns") slo.Serve.Run.p99_ns;
                if k = selected && !full_p50 > 0.0 && slo.Serve.Run.p50_ns > 0.0 then
                  record "prog.bf16_log2_tiered_vs_full_p50_speedup" (!full_p50 /. slo.Serve.Run.p50_ns)
          done;
          record "prog.bf16_log2_serve_k" (float_of_int selected);
          if Array.length pr.Rlibm.Prog.input_coverage > 0 then
            record "prog.bf16_log2_joint_fast_pct" (100.0 *. pr.Rlibm.Prog.input_coverage.(0)))

(* Emit the run as a schema-v1 datafile (lib/datafile).  The file keeps
   the historical BENCH_<rev>.json name so CI's baseline picking and the
   committed history stay continuous; Datafile.read lifts the old
   pre-schema files transparently, so old and new baselines coexist.
   Metrics group into one row per family (the key prefix before the
   first '.') — flattening the rows reproduces the recording order, so
   gate verdicts don't depend on which writer produced the file.  The
   machine context (jobs/cpus/ocaml) rides along for Datafile's
   host-comparability check: numbers from two different machines or job
   counts are noise when compared. *)
let write_json () =
  let entries = List.rev !metrics in
  let rev = Datafile.git_rev () in
  let file = Printf.sprintf "BENCH_%s.json" rev in
  Datafile.write ~path:file
    {
      Datafile.rev;
      date = Datafile.timestamp ();
      seed = None;
      config = "bench --json";
      host =
        Some
          {
            Datafile.jobs = Parallel.jobs ();
            cpus = Domain.recommended_domain_count ();
            ocaml = Sys.ocaml_version;
          };
      rows = Datafile.rows_of_metrics ~kind:"bench" entries;
    };
  Printf.printf "\nwrote %s (%d metrics, datafile schema v%d)\n%!" file (List.length entries)
    Datafile.schema_version

let () =
  Printf.printf "RLIBM-32 reproduction benchmarks (see EXPERIMENTS.md for the paper mapping)\n";
  Printf.printf "Correctness tables: dune exec bin/check.exe -- table1 | table2\n";
  Printf.printf "Generator table:    dune exec bin/generate.exe -- stats\n%!";
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let sections = List.filter (fun a -> a <> "--json") args |> List.map String.lowercase_ascii in
  let want s = sections = [] || List.mem s sections in
  if want "fig3" then fig3 ();
  if want "fig4" then fig4 ();
  if want "fig5" then fig5 ();
  if want "ablations" then begin
    ablation_sampling ();
    ablation_structure ()
  end;
  if want "vec" then vec ();
  if want "par" then par ();
  if want "bigint" then bigint ();
  if want "rational" then rational ();
  if want "lp" then lp ();
  if want "gen" then gen ();
  if want "round" then round_section ();
  if want "sweep" then sweep_section ();
  if want "campaign" then campaign_section ();
  if want "serve" then serve_section ();
  if want "prog" then prog_section ();
  if json then write_json ()
