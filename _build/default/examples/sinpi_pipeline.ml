(* Section 2 of the paper, as a runnable walkthrough: how a correctly
   rounded sinpi(x) for float32 is built.

   Run with:  dune exec examples/sinpi_pipeline.exe

   The two concrete inputs are the paper's own (Figure 2):
     x1 = 1.953126862645149230957031250e-3
     x2 = 2.148437686264514923095703125e-2
   Both reduce to the same R = 1.86264514923095703125e-9. *)

module Q = Rational
module E = Oracle.Elementary
module T = Fp.Fp32

let pq q = Q.to_float q

let () =
  print_endline "== Building sinpi(x) for float32, step by step (paper §2) ==\n";
  let x1 = 1.95312686264514923095703125e-3 in
  let x2 = 2.148437686264514923095703125e-2 in
  let x1 = T.to_double (T.of_double x1) and x2 = T.to_double (T.of_double x2) in
  let spec = Funcs.Specs.sinpi Funcs.Specs.float32 in

  (* Step 1: the correctly rounded result and the rounding interval. *)
  print_endline "Step 1: oracle results and rounding intervals";
  let step1 x =
    let pat = T.of_double x in
    let y = E.correctly_rounded ~round:T.round_rational spec.oracle (T.to_rational pat) in
    let iv = Rlibm.Rounding.interval spec.repr y in
    Printf.printf "  sinpi(%.17g)\n    rounds to %.9g; any double in [%.17g, %.17g] works\n" x
      (T.to_double y) iv.lo iv.hi;
    (pat, y, iv)
  in
  let p1, _, iv1 = step1 x1 in
  let p2, _, iv2 = step1 x2 in

  (* Step 2: range reduction maps both inputs to the same reduced R. *)
  print_endline "\nStep 2: range reduction x = 2I + J, J = K + L, L' = N/512 + R";
  let r1 = spec.reduce x1 and r2 = spec.reduce x2 in
  Printf.printf "  x1: N = %d, R = %.20e\n" (r1.key land 0x1FF) r1.r;
  Printf.printf "  x2: N = %d, R = %.20e\n" (r2.key land 0x1FF) r2.r;
  Printf.printf "  same reduced input: %b (the paper's Figure 2(c))\n" (r1.r = r2.r);

  (* Step 2b: reduced intervals for sinpi(R) and cospi(R), deduced by
     Algorithm 2's joint widening. *)
  print_endline "\nStep 2b: reduced intervals (Algorithm 2, one per component)";
  let show pat iv tag =
    match Rlibm.Reduced.deduce spec ~pattern:pat ~interval:iv with
    | Error _ -> print_endline "  (deduction failed?)"
    | Ok (_, cons) ->
        Array.iteri
          (fun i (c : Rlibm.Reduced.constr) ->
            Printf.printf "  via %s: %s(R) may be anything in [%.20e,\n%56s %.20e]\n" tag
              spec.components.(i).cname c.lo "" c.hi)
          cons
  in
  show p1 iv1 "x1";
  show p2 iv2 "x2";
  print_endline "  (the intervals differ per input: numerical error of range reduction and";
  print_endline "   output compensation is accounted for; the generator intersects them)";

  (* Step 3-4: domain splitting and LP generation, on the real pipeline. *)
  print_endline "\nSteps 3-5: full generation (sampled float32 enumeration)";
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.float32 "sinpi" in
  Array.iteri
    (fun i (c : Rlibm.Stats.component) ->
      Printf.printf "  component %d (%s): %d constraints -> %d polynomial(s), degree %d\n" i
        c.cname c.n_constraints c.n_polynomials c.degree)
    g.stats.per_component;

  (* And the generated function at the paper's inputs. *)
  let sinpi x = T.to_double (Rlibm.Generator.eval_pattern g (T.of_double x)) in
  Printf.printf "\n  generated sinpi(x1) = %.9g  (oracle: %.9g)\n" (sinpi x1)
    (pq (Q.of_float (E.to_double E.sinpi (Q.of_float x1))));
  Printf.printf "  generated sinpi(x2) = %.9g  (oracle: %.9g)\n" (sinpi x2)
    (pq (Q.of_float (E.to_double E.sinpi (Q.of_float x2))));
  List.iter
    (fun x -> Printf.printf "  generated sinpi(%g) = %.9g\n" x (sinpi x))
    [ 0.5; 1.0; -2.5; 0.25; 100.25; 12345.75 ]
