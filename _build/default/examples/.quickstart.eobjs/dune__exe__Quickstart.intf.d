examples/quickstart.mli:
