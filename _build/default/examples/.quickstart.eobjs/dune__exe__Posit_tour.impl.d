examples/posit_tour.ml: Float Funcs List Oracle Posit Printf Rational Rlibm
