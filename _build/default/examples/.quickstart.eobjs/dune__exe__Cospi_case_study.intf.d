examples/cospi_case_study.mli:
