examples/exhaustive16.ml: Array Baselines Fp Funcs List Oracle Printf Rlibm Sys
