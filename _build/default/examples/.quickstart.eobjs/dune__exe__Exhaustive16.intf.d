examples/exhaustive16.mli:
