examples/quickstart.ml: Float Fp Funcs List Oracle Printf Rlibm
