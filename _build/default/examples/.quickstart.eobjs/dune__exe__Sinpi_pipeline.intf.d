examples/sinpi_pipeline.mli:
