examples/posit_tour.mli:
