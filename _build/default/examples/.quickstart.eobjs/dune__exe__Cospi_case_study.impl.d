examples/cospi_case_study.ml: Array Float Fp Funcs Lazy List Oracle Printf Rational Rlibm Stdlib
