examples/sinpi_pipeline.ml: Array Fp Funcs List Oracle Printf Rational Rlibm
