(* A complete Table-1-style experiment with nothing sampled: every input
   of a 16-bit type, every library, exact ground truth.

   Run with:  dune exec examples/exhaustive16.exe [-- <function>]

   This is the scale at which the original RLIBM operated and the
   reproduction's end-to-end soundness witness: the generated function
   must be correct on all 65536 inputs, while the real-value-minimax
   comparators misround. *)

module R = Fp.Representation
module T = Fp.Float16

let value_equal a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | R.Finite, R.Finite -> T.to_double a = T.to_double b
  | R.Nan, R.Nan -> true
  | _ -> false

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "exp" in
  Printf.printf "== exhaustive float16 %s: all 65536 inputs, every library ==\n\n" name;
  let target = Funcs.Specs.float16 in
  let g = Funcs.Libm.get target name in
  let spec = g.Rlibm.Generator.spec in
  let libs =
    [
      ("rlibm-32 (this paper)", Rlibm.Generator.eval_pattern g);
      ("float-native minimax", Baselines.Native.eval_pattern Baselines.Native.F32 target name);
      ("double-native minimax", Baselines.Native.eval_pattern Baselines.Native.F64 target name);
      ("glibc double, re-rounded", Baselines.Double_libm.eval target.repr name);
    ]
  in
  let wrong = Array.make (List.length libs) 0 in
  let total = ref 0 in
  for pat = 0 to 65535 do
    incr total;
    let want =
      match spec.special pat with
      | Some y -> y
      | None ->
          Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
            (T.to_rational pat)
    in
    List.iteri (fun i (_, f) -> if not (value_equal (f pat) want) then wrong.(i) <- wrong.(i) + 1) libs
  done;
  Printf.printf "%-26s  wrong results out of %d\n" "library" !total;
  List.iteri
    (fun i (lname, _) ->
      Printf.printf "%-26s  %s\n" lname
        (if wrong.(i) = 0 then "none (correctly rounded everywhere)"
         else string_of_int wrong.(i)))
    libs;
  print_newline ();
  if wrong.(0) = 0 then print_endline "RLIBM-32 row: all correct — the paper's Table 1 checkmark."
