(* Quickstart: generate a correctly rounded function and use it.

   Run with:  dune exec examples/quickstart.exe

   This generates log2 for bfloat16 — small enough that the generator
   enumerates and validates EVERY input, the paper's full guarantee —
   then uses the generated function and shows it agreeing with the
   arbitrary-precision oracle where the system libm does not have to. *)

let () =
  print_endline "== RLIBM-32 quickstart: a correctly rounded bfloat16 log2 ==\n";

  (* 1. Generate (or fetch from the in-process cache). *)
  let g = Funcs.Libm.get Funcs.Specs.bfloat16 "log2" in
  let s = g.Rlibm.Generator.stats in
  Printf.printf "generated %s for %s: %d inputs enumerated, %d special-cased,\n" s.name
    s.repr_name s.n_inputs s.n_special;
  Printf.printf "%d reduced constraints, validated on every enumerated input.\n\n" s.n_reduced;

  (* 2. Use it: patterns in, patterns out. *)
  let module T = Fp.Bfloat16 in
  let log2 x = T.to_double (Rlibm.Generator.eval_pattern g (T.of_double x)) in
  List.iter
    (fun x -> Printf.printf "  log2(%-8g) = %-12g   (glibc double says %.6f)\n" x (log2 x) (Float.log2 x))
    [ 1.0; 2.0; 0.5; 10.0; 1.5; 3.14159; 1e10; 1e-10 ];

  (* 3. What "correctly rounded" buys: agreement with the exact result
     rounded once, on every single input. *)
  let wrong = ref 0 and total = ref 0 in
  for pat = 0 to 65535 do
    match g.spec.special pat with
    | Some _ -> ()
    | None ->
        incr total;
        let want =
          Oracle.Elementary.correctly_rounded ~round:T.round_rational g.spec.oracle
            (T.to_rational pat)
        in
        if Rlibm.Generator.eval_pattern g pat <> want then incr wrong
  done;
  Printf.printf "\nexhaustive check against the oracle: %d wrong out of %d non-special inputs\n"
    !wrong !total;

  (* 4. The same pipeline scales to float32 (sampled enumeration). *)
  print_endline "\ngenerating float32 log2 (stratified enumeration)...";
  let g32 = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.float32 "log2" in
  let log2f x = Fp.Fp32.to_double (Rlibm.Generator.eval_pattern g32 (Fp.Fp32.of_double x)) in
  Printf.printf "  float32 log2(0.7) = %.9g\n" (log2f 0.7);
  Printf.printf "  float32 log2(6.02e23) = %.9g\n" (log2f 6.02e23);
  print_endline "\ndone. See examples/sinpi_pipeline.exe for the paper's Section 2 walkthrough."
