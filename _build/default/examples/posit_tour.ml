(* Posit arithmetic and the first correctly rounded posit32 functions.

   Run with:  dune exec examples/posit_tour.exe

   The paper develops the first correctly rounded elementary functions
   for 32-bit posits (Table 2); this example shows the codec, the
   tapered-precision behavior that makes repurposed double libraries
   fail, and a generated posit32 function in action. *)

module P32 = Posit.Posit32
module P16 = Posit.Posit16
module Q = Rational

let () =
  print_endline "== posit<32,2>: codec and tapered precision ==\n";
  List.iter
    (fun x ->
      let p = P32.of_double x in
      Printf.printf "  %-12g -> pattern %08x -> decodes back to %.17g\n" x p (P32.to_double p))
    [ 1.0; -1.0; 3.14159265358979; 1e20; 1e-20; 6.02e23 ];

  print_endline "\nprecision tapers with magnitude (fraction bits near 1 vs at the extremes):";
  List.iter
    (fun x ->
      let p = P32.of_double x in
      let next = P32.to_double (p + 1) in
      Printf.printf "  around %-10g the spacing is %.3g (relative %.2e)\n" x (next -. P32.to_double p)
        ((next -. P32.to_double p) /. x))
    [ 1.0; 65536.0; 1e18; 1e30 ];

  print_endline "\nsaturation, not overflow (the Table 2 failure mode for double libms):";
  Printf.printf "  posit32(exp(-400)) should be minpos = %g\n" (P32.to_double 1);
  Printf.printf "  ...but double exp(-400) = %g, which re-rounds to posit %08x (zero!)\n"
    (Float.exp (-400.0))
    (P32.of_double (Float.exp (-400.0)));

  print_endline "\n== a generated correctly rounded posit32 function ==\n";
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.posit32 "ln" in
  let ln p = Rlibm.Generator.eval_pattern g p in
  List.iter
    (fun x ->
      let p = P32.of_double x in
      Printf.printf "  ln(%-8g) = %.9g\n" x (P32.to_double (ln p)))
    [ 1.0; 2.718281828; 10.0; 1e-20; 1e20 ];

  (* Exhaustive posit16 ln: the full guarantee at 16-bit scale. *)
  print_endline "\n== exhaustive posit16 ln: every input vs the oracle ==\n";
  let g16 = Funcs.Libm.get Funcs.Specs.posit16 "ln" in
  let wrong = ref 0 and checked = ref 0 in
  for pat = 0 to 65535 do
    let want =
      match g16.Rlibm.Generator.spec.special pat with
      | Some y -> y
      | None ->
          Oracle.Elementary.correctly_rounded ~round:P16.round_rational
            g16.Rlibm.Generator.spec.oracle (P16.to_rational pat)
    in
    incr checked;
    if Rlibm.Generator.eval_pattern g16 pat <> want then incr wrong
  done;
  Printf.printf "  %d wrong out of %d posit16 inputs\n" !wrong !checked
