test/test_oracle.ml: Alcotest Float Fp List Oracle QCheck Random Rational Test_util
