test/test_core.ml: Alcotest Array Float Fp Funcs Hashtbl List Oracle Posit QCheck Random Rational Rlibm Test_util
