test/test_baselines.ml: Alcotest Array Baselines Float Fp List Oracle Posit Random Rational Test_util
