test/test_rational.ml: Alcotest Bigint Float Fp QCheck Rational Test_util
