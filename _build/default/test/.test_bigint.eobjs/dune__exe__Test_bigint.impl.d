test/test_bigint.ml: Alcotest Bigint Float List QCheck Random Test_util
