test/test_posit.ml: Alcotest Float Fp List Posit QCheck Random Rational Test_util
