test/test_funcs.ml: Alcotest Array Float Fp Funcs Int32 Int64 Lazy Oracle Posit QCheck Random Rational Rlibm Test_util
