test/test_integration.ml: Alcotest Baselines Float Fp Funcs Oracle Posit Printf Rational Rlibm Test_util
