test/test_lp.ml: Alcotest Array Float List Lp QCheck Random Rational Test_util
