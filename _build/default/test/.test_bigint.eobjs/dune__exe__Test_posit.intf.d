test/test_posit.mli:
