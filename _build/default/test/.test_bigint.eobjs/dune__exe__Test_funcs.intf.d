test/test_funcs.mli:
