test/test_fp.ml: Alcotest Float Fp Int64 List QCheck Random Rational Test_util
