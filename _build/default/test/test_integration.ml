(* End-to-end integration: a miniature Table 1 on bfloat16, exhaustively.

   The full-scale float32/posit32 version lives in bin/check.ml; this
   test pins the *shape* the paper reports where we can afford exhaustive
   ground truth: the RLIBM function is correct on every input, the
   straightforward float implementation misrounds some inputs, and the
   double-precision comparators misround at most a handful. *)

module Q = Rational
module R = Fp.Representation
open Test_util

type counts = { rlibm : int; native32 : int; native64 : int; libm64 : int; crlibm : int }

let count_wrong name =
  let target = Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  let g = Funcs.Libm.get target name in
  let native32 = Baselines.Native.eval_pattern Baselines.Native.F32 target name in
  let native64 = Baselines.Native.eval_pattern Baselines.Native.F64 target name in
  let libm64 = Baselines.Double_libm.eval (module T : R.S) name in
  let spec = g.Rlibm.Generator.spec in
  let c = ref { rlibm = 0; native32 = 0; native64 = 0; libm64 = 0; crlibm = 0 } in
  for pat = 0 to 65535 do
    (* Ground truth: our special-case analysis (validated in test_funcs)
       for the special regions, the oracle elsewhere. *)
    let want =
      match spec.special pat with
      | Some y -> Some y
      | None ->
          Some
            (Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
               (T.to_rational pat))
    in
    match want with
    | None -> ()
    | Some want ->
        let crlibm =
          match spec.special pat with
          | Some y -> y (* CR-LIBM handles specials correctly too *)
          | None -> Baselines.Crlibm_analog.round_via_double (module T : R.S) spec.oracle pat
        in
        let tally get field =
          if not (pattern_value_equal (module T) (get pat) want) then field ()
        in
        tally (Rlibm.Generator.eval_pattern g) (fun () -> c := { !c with rlibm = !c.rlibm + 1 });
        tally native32 (fun () -> c := { !c with native32 = !c.native32 + 1 });
        tally native64 (fun () -> c := { !c with native64 = !c.native64 + 1 });
        tally libm64 (fun () -> c := { !c with libm64 = !c.libm64 + 1 });
        if not (pattern_value_equal (module T) crlibm want) then
          c := { !c with crlibm = !c.crlibm + 1 }
  done;
  !c

let table1_shape name () =
  let c = count_wrong name in
  (* The paper's Table 1 shape: RLIBM correct everywhere; the float
     implementation visibly wrong; double implementations close. *)
  Alcotest.(check int) (name ^ ": rlibm wrong count") 0 c.rlibm;
  Alcotest.(check bool)
    (Printf.sprintf "%s: float-native (%d) wrong more than double-native (%d)" name c.native32
       c.native64)
    true
    (c.native32 >= c.native64);
  Alcotest.(check bool)
    (Printf.sprintf "%s: double-native nearly correct (%d)" name c.native64)
    true (c.native64 <= 300);
  Alcotest.(check bool)
    (Printf.sprintf "%s: crlibm analog nearly correct (%d)" name c.crlibm)
    true (c.crlibm <= 16);
  Alcotest.(check bool)
    (Printf.sprintf "%s: system libm nearly correct (%d)" name c.libm64)
    true (c.libm64 <= 300)

(* posit16, exhaustive: RLIBM correct on all inputs; the repurposed
   double libm fails in the saturation regions (Table 2's shape). *)
let table2_shape name () =
  let target = Funcs.Specs.posit16 in
  let module P = Posit.Posit16 in
  let g = Funcs.Libm.get target name in
  let libm64 = Baselines.Double_libm.eval (module P : R.S) name in
  let spec = g.Rlibm.Generator.spec in
  let rl = ref 0 and lm = ref 0 in
  for pat = 0 to 65535 do
    let want =
      match spec.special pat with
      | Some y -> y
      | None ->
          Oracle.Elementary.correctly_rounded ~round:P.round_rational spec.oracle
            (P.to_rational pat)
    in
    if not (pattern_value_equal (module P) (Rlibm.Generator.eval_pattern g pat) want) then incr rl;
    if not (pattern_value_equal (module P) (libm64 pat) want) then incr lm
  done;
  Alcotest.(check int) (name ^ ": rlibm wrong") 0 !rl;
  Alcotest.(check bool)
    (Printf.sprintf "%s: repurposed double libm wrong on many (%d)" name !lm)
    true (!lm > 100)

(* Cross-representation agreement: the float32 and bfloat16 generated
   functions agree wherever bfloat16 embeds into float32. *)
let cross_repr_consistency () =
  let g32 = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.float32 "log2" in
  let g16 = Funcs.Libm.get Funcs.Specs.bfloat16 "log2" in
  for pat = 0 to 65535 do
    if pat mod 13 = 0 && Fp.Bfloat16.classify pat = R.Finite then begin
      let x = Fp.Bfloat16.to_double pat in
      if x > 0.0 then begin
        let y32 = Fp.Fp32.to_double (Rlibm.Generator.eval_pattern g32 (Fp.Fp32.of_double x)) in
        let y16 = Fp.Bfloat16.to_double (Rlibm.Generator.eval_pattern g16 pat) in
        (* bfloat16(y32) must equal y16 except on double-rounding
           boundaries, which correct rounding of both rules out unless
           y32 sits exactly on a bfloat16 midpoint. *)
        let via = Fp.Bfloat16.to_double (Fp.Bfloat16.of_double y32) in
        if Float.abs (via -. y16) > Float.abs (y16 *. 0.004) then
          Alcotest.failf "inconsistent at %h: %h vs %h" x via y16
      end
    end
  done

let () =
  Alcotest.run "integration"
    [
      ( "table1-bfloat16",
        [
          Alcotest.test_case "exp2 shape" `Slow (table1_shape "exp2");
          Alcotest.test_case "log2 shape" `Slow (table1_shape "log2");
        ] );
      ("table2-posit16", [ Alcotest.test_case "exp shape" `Slow (table2_shape "exp") ]);
      ( "cross-representation",
        [ Alcotest.test_case "float32 vs bfloat16 log2" `Slow cross_repr_consistency ] );
    ]
