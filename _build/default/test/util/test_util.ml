(* Shared helpers for the test suites. *)

module Q = Rational
module B = Bigint

(* Deterministic pseudo-random state per suite, so failures reproduce. *)
let rand seed = Random.State.make [| 0x5EED; seed |]

(* Random Bigint with roughly [bits] bits, either sign. *)
let random_bigint st bits =
  let x = ref B.zero in
  let chunks = (bits / 30) + 1 in
  for _ = 1 to chunks do
    x := B.add (B.shift_left !x 30) (B.of_int (Random.State.full_int st (1 lsl 30)))
  done;
  if Random.State.bool st then B.neg !x else !x

let random_nonzero_bigint st bits =
  let rec go () =
    let x = random_bigint st bits in
    if B.is_zero x then go () else x
  in
  go ()

(* Random finite double spread over many binades. *)
let random_double ?(max_exp = 300) st =
  let m = Random.State.float st 2.0 -. 1.0 in
  Float.ldexp m (Random.State.int st (2 * max_exp) - max_exp)

let random_rational st bits = Q.make (random_bigint st bits) (random_nonzero_bigint st bits)

(* ulp distance between doubles, for oracle-vs-libm comparisons. *)
let ulps a b = Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))

(* Value-equality of two patterns of T: equal patterns, or both encode
   the same real (catches -0.0 vs +0.0), or both NaN. *)
let pattern_value_equal (module T : Fp.Representation.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | Fp.Representation.Finite, Fp.Representation.Finite -> T.to_double a = T.to_double b
  | Fp.Representation.Nan, Fp.Representation.Nan -> true
  | _ -> false

(* Alcotest testables. *)
let bigint = Alcotest.testable B.pp B.equal
let rational = Alcotest.testable Q.pp Q.equal

let qsuite name cases = (name, List.map QCheck_alcotest.to_alcotest cases)
