(* Bigint: ring laws, division invariants, conversions. *)

module B = Bigint
open Test_util

let st = rand 1

let check = Alcotest.check bigint

let test_small_arith () =
  check "1+1" (B.of_int 2) (B.add B.one B.one);
  check "2*3" (B.of_int 6) (B.mul B.two (B.of_int 3));
  check "neg" (B.of_int (-5)) (B.neg (B.of_int 5));
  check "sub" (B.of_int (-1)) (B.sub (B.of_int 4) (B.of_int 5));
  Alcotest.(check int) "sign pos" 1 (B.sign (B.of_int 3));
  Alcotest.(check int) "sign neg" (-1) (B.sign (B.of_int (-3)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  check "min_int roundtrip" (B.of_string (string_of_int min_int)) (B.of_int min_int)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789123456789123456789"; "-99999999999999999999999999999999" ]

let test_divmod_basics () =
  let q, r = B.divmod (B.of_int 17) (B.of_int 5) in
  check "17/5 q" (B.of_int 3) q;
  check "17%5 r" (B.of_int 2) r;
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  check "-17/5 q (trunc)" (B.of_int (-3)) q;
  check "-17%5 r" (B.of_int (-2)) r;
  let q, r = B.divmod (B.of_int 17) (B.of_int (-5)) in
  check "17/-5 q" (B.of_int (-3)) q;
  check "17%-5 r" (B.of_int 2) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_shifts () =
  check "shl" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  check "shr" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  check "shr trunc neg" (B.of_int (-5)) (B.shift_right (B.of_int (-40)) 3);
  check "shl big" (B.of_string "1267650600228229401496703205376") (B.shift_left B.one 100);
  Alcotest.(check int) "bit_length 2^100" 101 (B.bit_length (B.shift_left B.one 100));
  Alcotest.(check int) "bit_length 0" 0 (B.bit_length B.zero);
  Alcotest.(check bool) "testbit" true (B.testbit (B.of_int 8) 3);
  Alcotest.(check bool) "testbit off" false (B.testbit (B.of_int 8) 2);
  Alcotest.(check int) "trailing zeros" 100 (B.trailing_zeros (B.shift_left B.one 100))

let test_pow_gcd () =
  check "3^7" (B.of_int 2187) (B.pow (B.of_int 3) 7);
  check "x^0" B.one (B.pow (B.of_int 42) 0);
  check "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  check "gcd zero" (B.of_int 7) (B.gcd B.zero (B.of_int 7));
  check "gcd big"
    (B.shift_left B.one 50)
    (B.gcd (B.shift_left B.one 150) (B.shift_left (B.of_int 3) 50))

let test_to_float () =
  Alcotest.(check (float 0.0)) "small" 12345.0 (B.to_float (B.of_int 12345));
  Alcotest.(check (float 0.0)) "2^100" (Float.ldexp 1.0 100) (B.to_float (B.shift_left B.one 100));
  (* Round-to-even at 54 bits: 2^53 + 1 rounds to 2^53. *)
  Alcotest.(check (float 0.0))
    "2^53+1 RNE"
    (Float.ldexp 1.0 53)
    (B.to_float (B.add (B.shift_left B.one 53) B.one));
  Alcotest.(check (float 0.0))
    "2^53+3 RNE"
    (Float.ldexp 1.0 53 +. 4.0)
    (B.to_float (B.add (B.shift_left B.one 53) (B.of_int 3)))

(* Property tests. *)
let prop_divmod =
  QCheck.Test.make ~name:"divmod invariant" ~count:2000 QCheck.unit (fun () ->
      let a = random_bigint st 180 and b = random_nonzero_bigint st 90 in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_ring =
  QCheck.Test.make ~name:"commutativity/associativity/distributivity" ~count:1000 QCheck.unit
    (fun () ->
      let a = random_bigint st 120 and b = random_bigint st 120 and c = random_bigint st 60 in
      B.equal (B.add a b) (B.add b a)
      && B.equal (B.mul a b) (B.mul b a)
      && B.equal (B.mul (B.add a b) c) (B.add (B.mul a c) (B.mul b c))
      && B.equal (B.sub a b) (B.neg (B.sub b a)))

let prop_string =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:500 QCheck.unit (fun () ->
      let a = random_bigint st 250 in
      B.equal a (B.of_string (B.to_string a)))

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides and is positive" ~count:500 QCheck.unit (fun () ->
      let a = random_nonzero_bigint st 120 and b = random_nonzero_bigint st 120 in
      let g = B.gcd a b in
      B.sign g = 1 && B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_shift =
  QCheck.Test.make ~name:"shift = mul/div by 2^k" ~count:500 QCheck.unit (fun () ->
      let a = random_bigint st 150 in
      let k = Random.State.int st 80 in
      B.equal (B.shift_left a k) (B.mul a (B.pow B.two k))
      && B.equal (B.shift_right a k) (B.div a (B.pow B.two k)))

let prop_to_float_small =
  QCheck.Test.make ~name:"to_float exact on 53-bit ints" ~count:2000 QCheck.unit (fun () ->
      let n = Random.State.full_int st (1 lsl 30) * (1 + Random.State.int st 4096) in
      let n = if Random.State.bool st then -n else n in
      B.to_float (B.of_int n) = float_of_int n)

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "small arithmetic" `Quick test_small_arith;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "divmod basics" `Quick test_divmod_basics;
          Alcotest.test_case "shifts and bits" `Quick test_shifts;
          Alcotest.test_case "pow and gcd" `Quick test_pow_gcd;
          Alcotest.test_case "to_float rounding" `Quick test_to_float;
        ] );
      qsuite "properties"
        [ prop_divmod; prop_ring; prop_string; prop_gcd; prop_shift; prop_to_float_small ];
    ]
