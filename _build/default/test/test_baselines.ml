(* Comparator libraries: minimax interpolation quality, the F64/F32
   native variants, the CR-LIBM analog's double-rounding semantics. *)

module Q = Rational
module E = Oracle.Elementary
open Test_util

let st = rand 9

(* ------------------------------------------------------------------ *)
(* Minimax (Chebyshev interpolation).                                  *)
(* ------------------------------------------------------------------ *)

let test_solve_exact () =
  (* 2x2 system: x + y = 3, x - y = 1. *)
  let a = [| [| Q.one; Q.one |]; [| Q.one; Q.minus_one |] |] in
  let y = [| Q.of_int 3; Q.one |] in
  let s = Baselines.Minimax.solve_exact a y in
  Alcotest.check rational "x" (Q.of_int 2) s.(0);
  Alcotest.check rational "y" Q.one s.(1);
  Alcotest.check_raises "singular" (Invalid_argument "Minimax.solve_exact: singular system")
    (fun () ->
      ignore
        (Baselines.Minimax.solve_exact [| [| Q.one; Q.one |]; [| Q.one; Q.one |] |] [| Q.one; Q.zero |]))

let test_interpolation_error () =
  (* Degree-6 interpolation of exp over the exp reduced domain: error
     must be far below a float32 half-ulp (the F64 comparator's design
     point). *)
  let c = Baselines.Minimax.interpolate E.exp ~lo:(-0.0054182) ~hi:0.0054182 ~degree:6 in
  let worst = ref 0.0 in
  for i = 0 to 400 do
    let x = -0.0054182 +. (float_of_int i /. 400.0 *. 2.0 *. 0.0054182) in
    let approx = Baselines.Minimax.horner c x in
    let exact = E.to_double E.exp (Q.of_float x) in
    worst := Float.max !worst (Float.abs (approx -. exact))
  done;
  Alcotest.(check bool) "degree-6 error < 2^-45" true (!worst < Float.ldexp 1.0 (-45));
  (* Degree-3: error sits near 2^-33 — big enough to misround float32
     sometimes, the designed failure mode of the float comparator. *)
  let c3 = Baselines.Minimax.interpolate E.exp ~lo:(-0.0054182) ~hi:0.0054182 ~degree:3 in
  let worst3 = ref 0.0 in
  for i = 0 to 400 do
    let x = -0.0054182 +. (float_of_int i /. 400.0 *. 2.0 *. 0.0054182) in
    worst3 := Float.max !worst3 (Float.abs (Baselines.Minimax.horner c3 x -. E.to_double E.exp (Q.of_float x)))
  done;
  Alcotest.(check bool) "degree-3 error < 2^-28" true (!worst3 < Float.ldexp 1.0 (-28));
  Alcotest.(check bool) "degree-3 error > 2^-40" true (!worst3 > Float.ldexp 1.0 (-40))

(* Remez exchange: equioscillation and improvement over Chebyshev
   interpolation of the same degree. *)
let test_remez () =
  let lo = -0.0054182 and hi = 0.0054182 in
  let r = Baselines.Remez.fit E.exp ~lo ~hi ~degree:3 in
  (* The leveled error must bound the observed error within the stop
     factor, and beat Chebyshev interpolation at equal degree. *)
  let cheb = Baselines.Minimax.interpolate E.exp ~lo ~hi ~degree:3 in
  let max_err coeffs =
    let worst = ref 0.0 in
    for i = 0 to 800 do
      let x = lo +. ((hi -. lo) *. float_of_int i /. 800.0) in
      let e = Baselines.Minimax.horner coeffs x -. E.to_double E.exp (Q.of_float x) in
      worst := Float.max !worst (Float.abs e)
    done;
    !worst
  in
  let e_remez = max_err r.coeffs and e_cheb = max_err cheb in
  Alcotest.(check bool) "remez <= chebyshev" true (e_remez <= e_cheb *. 1.0001);
  Alcotest.(check bool) "equioscillation certificate" true
    (e_remez <= 1.15 *. r.leveled_error && r.leveled_error <= e_remez *. 1.15);
  Alcotest.(check bool) "converged in a few exchanges" true (r.iterations <= 30)

(* ------------------------------------------------------------------ *)
(* Native comparators.                                                 *)
(* ------------------------------------------------------------------ *)

(* The F64 comparator must agree with glibc's double libm to a few ulps
   on the reduced ranges (both approximate the same real values). *)
let test_native_f64_close_to_libm () =
  let lib = Baselines.Native.make Baselines.Native.F64 ~trig_int:(Float.ldexp 1.0 23) in
  let close name f g pts =
    List.iter
      (fun x ->
        let a = f x and b = g x in
        if ulps a b > 8L then Alcotest.failf "%s at %h: %h vs %h" name x a b)
      pts
  in
  let pos = List.init 60 (fun i -> Float.ldexp (1.0 +. (float_of_int i /. 61.0)) (i - 30)) in
  let sym = List.concat_map (fun x -> [ x; -.x ]) (List.init 40 (fun i -> float_of_int (i + 1) /. 2.0)) in
  close "ln" (lib.eval "ln") Float.log pos;
  close "log2" (lib.eval "log2") Float.log2 pos;
  close "log10" (lib.eval "log10") Float.log10 pos;
  close "exp" (lib.eval "exp") Float.exp sym;
  close "exp2" (lib.eval "exp2") Float.exp2 sym;
  close "sinh" (lib.eval "sinh") Float.sinh sym;
  close "cosh" (lib.eval "cosh") Float.cosh sym

(* The F32 comparator is coarser than F64 but still within a few float32
   ulps of the truth. *)
let test_native_f32_coarse () =
  let lib = Baselines.Native.make Baselines.Native.F32 ~trig_int:(Float.ldexp 1.0 23) in
  let module T = Fp.Fp32 in
  for _ = 1 to 500 do
    let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 40 - 20) in
    let x = T.to_double (T.of_double x) in
    let got = T.of_double (lib.eval "exp" x) in
    let want =
      Oracle.Elementary.correctly_rounded ~round:T.round_rational E.exp (Q.of_float x)
    in
    let dist = Fp.Representation.ulp_distance (module T) got want in
    if dist > 4 then Alcotest.failf "expf too far at %h: %d ulps" x dist
  done

(* Saturation semantics follow the implementation precision: the F64
   comparator underflows to 0 where posits saturate to minpos —
   Table 2's failure mode. *)
let test_native_posit_underflow_mismatch () =
  let lib = Baselines.Native.make Baselines.Native.F64 ~trig_int:(Float.ldexp 1.0 26) in
  let module P = Posit.Posit32 in
  (* Below double's own underflow point (~-745) but well inside posit32's
     input range: the double library flushes to zero, posits saturate. *)
  let x = -800.0 in
  let double_result = lib.eval "exp" x in
  Alcotest.(check (float 0.0)) "double underflows" 0.0 double_result;
  Alcotest.(check int) "posit gets 0 not minpos" 0 (P.of_double double_result);
  (* The correct posit32 answer is minpos. *)
  let want =
    Oracle.Elementary.correctly_rounded ~round:P.round_rational E.exp (Q.of_float x)
  in
  Alcotest.(check int) "oracle says minpos" 1 want

(* ------------------------------------------------------------------ *)
(* CR-LIBM analog.                                                     *)
(* ------------------------------------------------------------------ *)

(* round_via_double equals round(round_double(f)) by construction; when
   the double rounding lands on a float32 boundary it can differ from
   direct rounding.  Construct such a case synthetically to prove the
   mechanism, then check agreement elsewhere. *)
let test_crlibm_double_rounding_mechanism () =
  let module T = Fp.Fp32 in
  (* v = float32 midpoint + tiny: rounds up directly, but the double
     rounding first collapses tiny and then ties-to-even down. *)
  let m = Q.add Q.one (Q.of_pow2 (-24)) in
  (* midpoint between 1.0 and 1+2^-23 *)
  let v = Q.add m (Q.of_pow2 (-80)) in
  let direct = T.round_rational v in
  let via_double = T.of_double (Q.to_float v) in
  Alcotest.(check int) "direct rounds up" (T.of_double (1.0 +. Float.ldexp 1.0 (-23))) direct;
  Alcotest.(check int) "via double ties down" (T.of_double 1.0) via_double;
  Alcotest.(check bool) "they differ" true (direct <> via_double)

let test_crlibm_agreement_generic () =
  let module T = Fp.Fp32 in
  let f = Baselines.Crlibm_analog.round_via_double (module T : Fp.Representation.S) E.exp in
  for _ = 1 to 200 do
    let x = Random.State.float st 10.0 -. 5.0 in
    let pat = T.of_double x in
    let got = f pat in
    let want =
      Oracle.Elementary.correctly_rounded ~round:T.round_rational E.exp (T.to_rational pat)
    in
    (* Double rounding failures are ~1-in-2^29 events; none expected in
       200 random draws. *)
    if got <> want then Alcotest.failf "unexpected double-rounding case at %h" x
  done

let test_timed_eval_runs () =
  List.iter
    (fun name ->
      let f = Baselines.Crlibm_analog.timed_eval name in
      let v = f 1.2345 in
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v))
    [ "exp"; "exp2"; "ln"; "log2"; "sinh" ]

(* Double_libm is the actual system libm. *)
let test_double_libm_passthrough () =
  let f = Baselines.Double_libm.eval (module Fp.Fp32 : Fp.Representation.S) "exp" in
  let pat = Fp.Fp32.of_double 1.0 in
  Alcotest.(check int) "exp 1" (Fp.Fp32.of_double (Float.exp 1.0)) (f pat);
  let g = Baselines.Double_libm.eval (module Posit.Posit32 : Fp.Representation.S) "sinpi" in
  let p = Posit.Posit32.of_double 0.5 in
  Alcotest.(check int) "sinpi 0.5 via sin(pi x)" (Posit.Posit32.of_double 1.0) (g p)

let () =
  Alcotest.run "baselines"
    [
      ( "minimax",
        [
          Alcotest.test_case "exact solve" `Quick test_solve_exact;
          Alcotest.test_case "interpolation error bands" `Quick test_interpolation_error;
          Alcotest.test_case "remez exchange" `Quick test_remez;
        ] );
      ( "native",
        [
          Alcotest.test_case "F64 close to libm" `Quick test_native_f64_close_to_libm;
          Alcotest.test_case "F32 coarse but sane" `Quick test_native_f32_coarse;
          Alcotest.test_case "posit underflow mismatch" `Quick test_native_posit_underflow_mismatch;
        ] );
      ( "crlibm",
        [
          Alcotest.test_case "double rounding mechanism" `Quick test_crlibm_double_rounding_mechanism;
          Alcotest.test_case "agreement elsewhere" `Quick test_crlibm_agreement_generic;
          Alcotest.test_case "timed eval runs" `Quick test_timed_eval_runs;
        ] );
      ( "double-libm",
        [ Alcotest.test_case "passthrough" `Quick test_double_libm_passthrough ] );
    ]
