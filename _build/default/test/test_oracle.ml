(* Oracle: Bigfloat arithmetic against exact rationals; elementary
   functions against the system libm (double, <= 1 ulp apart) and
   against their mathematical identities; Ziv loop behavior. *)

module F = Oracle.Bigfloat
module E = Oracle.Elementary
module Q = Rational
open Test_util

let st = rand 3

(* ------------------------------------------------------------------ *)
(* Bigfloat.                                                           *)
(* ------------------------------------------------------------------ *)

let test_bigfloat_exact_ops () =
  let a = F.of_float 1.5 and b = F.of_float 0.25 in
  Alcotest.check rational "add" (Q.of_float 1.75) (F.to_rational (F.add ~prec:60 a b));
  Alcotest.check rational "sub" (Q.of_float 1.25) (F.to_rational (F.sub ~prec:60 a b));
  Alcotest.check rational "mul" (Q.of_float 0.375) (F.to_rational (F.mul ~prec:60 a b));
  Alcotest.check rational "div" (Q.of_float 6.0) (F.to_rational (F.div ~prec:60 a b));
  Alcotest.check rational "mul_pow2" (Q.of_float 3.0) (F.to_rational (F.mul_pow2 a 1));
  Alcotest.(check int) "ilog2" 0 (F.ilog2 a);
  Alcotest.(check int) "ilog2 small" (-2) (F.ilog2 b);
  Alcotest.(check (float 0.0)) "to_float" 1.5 (F.to_float a)

let test_bigfloat_rounding () =
  (* 1/3 at prec 10: round-to-nearest of the binary expansion. *)
  let third = F.of_rational ~prec:10 (Q.of_ints 1 3) in
  let err = Q.abs (Q.sub (F.to_rational third) (Q.of_ints 1 3)) in
  Alcotest.(check bool) "|1/3 - fl(1/3)| <= 2^-11" true (Q.compare err (Q.of_pow2 (-11)) <= 0);
  (* of_dyadic is exact; non-dyadic raises. *)
  Alcotest.check rational "of_dyadic" (Q.of_ints 3 8) (F.to_rational (F.of_dyadic (Q.of_ints 3 8)));
  Alcotest.check_raises "non-dyadic" (Invalid_argument "Bigfloat.of_dyadic: not dyadic") (fun () ->
      ignore (F.of_dyadic (Q.of_ints 1 3)))

let prop_bigfloat_ops_error =
  QCheck.Test.make ~name:"rounded ops within relative 2^(1-prec)" ~count:800 QCheck.unit
    (fun () ->
      let prec = 50 + Random.State.int st 80 in
      let a = random_rational st 60 and b = random_rational st 60 in
      let fa = F.of_rational ~prec:200 a and fb = F.of_rational ~prec:200 b in
      let check_op exact approx =
        Q.is_zero exact
        ||
        let err = Q.abs (Q.div (Q.sub (F.to_rational approx) exact) exact) in
        Q.compare err (Q.of_pow2 (4 - prec)) <= 0
      in
      check_op (Q.add a b) (F.add ~prec fa fb)
      && check_op (Q.mul a b) (F.mul ~prec fa fb)
      && (Q.is_zero b || check_op (Q.div a b) (F.div ~prec fa fb)))

let prop_bigfloat_compare =
  QCheck.Test.make ~name:"compare agrees with rationals" ~count:1000 QCheck.unit (fun () ->
      let a = random_rational st 50 and b = random_rational st 50 in
      let fa = F.of_rational ~prec:120 a and fb = F.of_rational ~prec:120 b in
      (* 120-bit roundings preserve the order of 50-bit-ish rationals
         unless they are equal. *)
      if Q.equal a b then F.compare fa fb = 0
      else compare (Q.compare a b) 0 = compare (F.compare fa fb) 0)

(* ------------------------------------------------------------------ *)
(* Elementary functions vs glibc (double).                             *)
(* ------------------------------------------------------------------ *)

let against_libm name f g points () =
  List.iter
    (fun x ->
      let ours = E.to_double f (Q.of_float x) in
      let libm = g x in
      if ulps ours libm > 1L then
        Alcotest.failf "%s(%.17g): oracle %.17g vs libm %.17g" name x ours libm)
    points

let logspace lo hi n =
  List.init n (fun i ->
      let t = float_of_int i /. float_of_int (n - 1) in
      lo *. Float.pow (hi /. lo) t)

let points_pos = logspace 1e-35 1e35 120 @ logspace 0.9 1.1 60
let points_sym = List.concat_map (fun x -> [ x; -.x ]) (logspace 1e-6 80.0 60)

let test_constants () =
  Alcotest.(check (float 0.0)) "pi" Float.pi (F.to_float (E.pi ~prec:100));
  Alcotest.(check (float 0.0)) "ln2" (Float.log 2.0) (F.to_float (E.ln2 ~prec:100));
  Alcotest.(check (float 0.0)) "ln10" (Float.log 10.0) (F.to_float (E.ln10 ~prec:100));
  (* Constants are consistent across precisions. *)
  let a = F.to_rational (E.pi ~prec:60) and b = F.to_rational (E.pi ~prec:300) in
  Alcotest.(check bool)
    "pi precisions agree"
    true
    (Q.compare (Q.abs (Q.sub a b)) (Q.of_pow2 (-55)) < 0)

let test_exact_cases () =
  Alcotest.(check (float 0.0)) "exp 0" 1.0 (E.to_double E.exp Q.zero);
  Alcotest.(check (float 0.0)) "ln 1" 0.0 (E.to_double E.ln Q.one);
  Alcotest.(check (float 0.0)) "log2 2^37" 37.0 (E.to_double E.log2 (Q.of_pow2 37));
  Alcotest.(check (float 0.0)) "log2 2^-5" (-5.0) (E.to_double E.log2 (Q.of_pow2 (-5)));
  Alcotest.(check (float 0.0)) "log10 1000" 3.0 (E.to_double E.log10 (Q.of_int 1000));
  Alcotest.(check (float 0.0)) "log10 1/100" (-2.0) (E.to_double E.log10 (Q.of_ints 1 100));
  Alcotest.(check (float 0.0)) "exp2 12" 4096.0 (E.to_double E.exp2 (Q.of_int 12));
  Alcotest.(check (float 0.0)) "exp10 -2" 0.01 (E.to_double E.exp10 (Q.of_int (-2)));
  Alcotest.(check (float 0.0)) "sinpi 7" 0.0 (E.to_double E.sinpi (Q.of_int 7));
  Alcotest.(check (float 0.0)) "sinpi 5/2" 1.0 (E.to_double E.sinpi (Q.of_ints 5 2));
  Alcotest.(check (float 0.0)) "sinpi -1/2" (-1.0) (E.to_double E.sinpi (Q.of_ints (-1) 2));
  Alcotest.(check (float 0.0)) "cospi 3" (-1.0) (E.to_double E.cospi (Q.of_int 3));
  Alcotest.(check (float 0.0)) "cospi 1/2" 0.0 (E.to_double E.cospi Q.half);
  Alcotest.(check (float 0.0)) "sinh 0" 0.0 (E.to_double E.sinh Q.zero);
  Alcotest.(check (float 0.0)) "cosh 0" 1.0 (E.to_double E.cosh Q.zero);
  Alcotest.(check (float 0.0)) "tanh 0" 0.0 (E.to_double E.tanh Q.zero);
  Alcotest.(check (float 0.0)) "expm1 0" 0.0 (E.to_double E.expm1 Q.zero);
  Alcotest.(check (float 0.0)) "log1p 0" 0.0 (E.to_double E.log1p Q.zero)

let test_domain_errors () =
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises
        (name ^ " of -1")
        (Invalid_argument ("Elementary." ^ name ^ ": nonpositive argument"))
        (fun () -> ignore (E.to_double f (Q.of_int (-1)))))
    [ ("ln", E.ln); ("log2", E.log2); ("log10", E.log10) ]

(* Identities evaluated at rational points, checked to ~1 double ulp. *)
let test_identities () =
  let pts = List.init 40 (fun i -> Q.of_ints ((7 * i) + 3) 17) in
  List.iter
    (fun q ->
      (* exp(q) * exp(-q) = 1 *)
      let e = E.to_double E.exp q and e' = E.to_double E.exp (Q.neg q) in
      Alcotest.(check bool) "exp(x)exp(-x)~1" true (Float.abs ((e *. e') -. 1.0) < 1e-13);
      (* cosh^2 - sinh^2 = 1 (for moderate q) *)
      if Q.compare q (Q.of_int 5) < 0 then begin
        let c = E.to_double E.cosh q and s = E.to_double E.sinh q in
        Alcotest.(check bool) "cosh2-sinh2~1" true (Float.abs ((c *. c) -. (s *. s) -. 1.0) < 1e-10)
      end;
      (* log2(x) = ln(x)/ln(2) *)
      let l2 = E.to_double E.log2 q and ln = E.to_double E.ln q in
      Alcotest.(check bool) "log2 vs ln" true (Float.abs (l2 -. (ln /. Float.log 2.0)) < 1e-13))
    pts

(* sinpi/cospi Pythagorean identity on reduced-domain points. *)
let test_sincospi_identity () =
  for i = 1 to 60 do
    let q = Q.of_ints i 1024 in
    let s = E.to_double E.sinpi q and c = E.to_double E.cospi q in
    Alcotest.(check bool) "s^2+c^2~1" true (Float.abs ((s *. s) +. (c *. c) -. 1.0) < 1e-14)
  done

(* The _1p reduced oracles agree with the full logs at 1+r. *)
let test_log1p_consistency () =
  for i = 1 to 50 do
    let r = Q.of_ints i 12800 in
    let a = E.to_double E.ln_1p r and b = E.to_double E.ln (Q.add Q.one r) in
    Alcotest.(check bool) "ln_1p" true (ulps a b <= 1L);
    let a = E.to_double E.log2_1p r and b = E.to_double E.log2 (Q.add Q.one r) in
    Alcotest.(check bool) "log2_1p" true (ulps a b <= 1L);
    let a = E.to_double E.log10_1p r and b = E.to_double E.log10 (Q.add Q.one r) in
    Alcotest.(check bool) "log10_1p" true (ulps a b <= 1L)
  done

(* Ziv loop: rounding to a coarse representation converges and matches
   rounding the high-precision result directly. *)
let test_ziv_coarse_rounding () =
  let round q = Fp.Bfloat16.round_rational q in
  for i = 1 to 100 do
    let x = Q.of_ints ((13 * i) + 1) 64 in
    let via_ziv = E.correctly_rounded ~round E.exp x in
    let direct = round (Q.of_float (E.to_double E.exp x)) in
    (* The double is itself correctly rounded; bfloat16 is so much
       coarser that double rounding is immaterial except on exact
       boundary cases, which these points avoid. *)
    Alcotest.(check int) "ziv vs coarse" direct via_ziv
  done

(* Ziv results are precision-stable: the correctly rounded double is the
   same whether the loop starts low or high. *)
let prop_ziv_stable =
  QCheck.Test.make ~name:"ziv stable across starting precisions" ~count:150 QCheck.unit
    (fun () ->
      let x = Q.of_float (Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 24 - 12)) in
      if Q.is_zero x then true
      else begin
        let a = E.correctly_rounded ~init_prec:60 ~round:Q.to_float E.exp x in
        let b = E.correctly_rounded ~init_prec:240 ~round:Q.to_float E.exp x in
        a = b
      end)

(* exp2/exp10 are exactly rational at integers. *)
let prop_exp_integer_exact =
  QCheck.Test.make ~name:"exp2/exp10 exact at integers" ~count:200 QCheck.unit (fun () ->
      let n = Random.State.int st 60 - 30 in
      (match E.exp2 ~prec:80 (Q.of_int n) with
      | E.Exact q -> Q.equal q (Q.of_pow2 n)
      | E.Approx _ -> false)
      &&
      match E.exp10 ~prec:80 (Q.of_int n) with
      | E.Exact _ -> true
      | E.Approx _ -> false)

(* Periodicity: sinpi(x + 2) = sinpi(x) at rational points, exactly at
   the correctly-rounded-double level. *)
let prop_sinpi_periodic =
  QCheck.Test.make ~name:"sinpi periodicity" ~count:150 QCheck.unit (fun () ->
      let x = Q.of_ints (Random.State.int st 4001 - 2000) 1024 in
      E.to_double E.sinpi x = E.to_double E.sinpi (Q.add x (Q.of_int 2))
      && E.to_double E.cospi x = E.to_double E.cospi (Q.sub x (Q.of_int 2)))

(* Monotonicity of the correctly rounded doubles on a grid (exp strictly
   increasing, ln strictly increasing). *)
let prop_monotone =
  QCheck.Test.make ~name:"rounded exp/ln monotone" ~count:200 QCheck.unit (fun () ->
      let a = Random.State.float st 10.0 and d = Random.State.float st 1.0 +. 1e-6 in
      E.to_double E.exp (Q.of_float a) <= E.to_double E.exp (Q.of_float (a +. d))
      && E.to_double E.ln (Q.of_float (a +. 0.5)) <= E.to_double E.ln (Q.of_float (a +. 0.5 +. d)))

let () =
  Alcotest.run "oracle"
    [
      ( "bigfloat",
        [
          Alcotest.test_case "exact ops" `Quick test_bigfloat_exact_ops;
          Alcotest.test_case "rounding" `Quick test_bigfloat_rounding;
        ] );
      qsuite "bigfloat-properties" [ prop_bigfloat_ops_error; prop_bigfloat_compare ];
      qsuite "oracle-properties"
        [ prop_ziv_stable; prop_exp_integer_exact; prop_sinpi_periodic; prop_monotone ];
      ( "vs-libm",
        [
          Alcotest.test_case "ln" `Quick (against_libm "ln" E.ln Float.log points_pos);
          Alcotest.test_case "log2" `Quick (against_libm "log2" E.log2 Float.log2 points_pos);
          Alcotest.test_case "log10" `Quick (against_libm "log10" E.log10 Float.log10 points_pos);
          Alcotest.test_case "exp" `Quick (against_libm "exp" E.exp Float.exp points_sym);
          Alcotest.test_case "exp2" `Quick (against_libm "exp2" E.exp2 Float.exp2 points_sym);
          Alcotest.test_case "exp10" `Quick
            (against_libm "exp10" E.exp10 (fun x -> Float.pow 10.0 x)
               (List.filter (fun x -> Float.abs x < 35.0) points_sym));
          Alcotest.test_case "sinh" `Quick (against_libm "sinh" E.sinh Float.sinh points_sym);
          Alcotest.test_case "cosh" `Quick (against_libm "cosh" E.cosh Float.cosh points_sym);
          Alcotest.test_case "sinpi" `Quick
            (against_libm "sinpi" E.sinpi
               (fun x -> Float.sin (Float.pi *. x))
               (logspace 1e-4 0.49 40));
          Alcotest.test_case "cospi" `Quick
            (against_libm "cospi" E.cospi
               (fun x -> Float.cos (Float.pi *. x))
               (logspace 1e-4 0.24 30));
          Alcotest.test_case "tanh" `Quick
            (against_libm "tanh" E.tanh Float.tanh (List.filter (fun x -> Float.abs x < 18.0) points_sym));
          Alcotest.test_case "expm1" `Quick
            (against_libm "expm1" E.expm1 Float.expm1 points_sym);
          Alcotest.test_case "log1p" `Quick
            (against_libm "log1p" E.log1p Float.log1p
               (List.filter (fun x -> x > -0.99) points_sym @ logspace 1e-9 1e9 40));
        ] );
      ( "semantics",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "exact cases" `Quick test_exact_cases;
          Alcotest.test_case "domain errors" `Quick test_domain_errors;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "sincospi identity" `Quick test_sincospi_identity;
          Alcotest.test_case "log1p consistency" `Quick test_log1p_consistency;
          Alcotest.test_case "ziv coarse rounding" `Quick test_ziv_coarse_rounding;
        ] );
    ]
