bin/hardcases.ml: Arg Array Cmd Cmdliner Fp Funcs List Oracle Printf Rational Rlibm Term
