bin/check.mli:
