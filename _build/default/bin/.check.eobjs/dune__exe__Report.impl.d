bin/report.ml: Array Baselines Fp Funcs List Oracle Printf Rlibm
