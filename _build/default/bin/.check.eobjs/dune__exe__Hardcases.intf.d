bin/hardcases.mli:
