bin/report.mli:
