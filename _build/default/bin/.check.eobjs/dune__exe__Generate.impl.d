bin/generate.ml: Arg Array Cmd Cmdliner Funcs List Printf Rlibm Term Unix
