bin/check.ml: Arg Array Baselines Cmd Cmdliner Fp Funcs List Oracle Printf Rlibm Term
