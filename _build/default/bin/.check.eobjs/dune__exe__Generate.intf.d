bin/generate.mli:
