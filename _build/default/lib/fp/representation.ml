(* The interface every 32-/16-bit target representation T implements.

   Patterns are plain non-negative [int]s of [bits] width so the
   generator pipeline can enumerate, hash and table them uniformly for
   IEEE formats and posits alike. *)

type class_ = Finite | Inf of int  (* sign: 1 or -1 *) | Nan

module type S = sig
  val name : string

  (** Storage width in bits; patterns live in [0, 2^bits). *)
  val bits : int

  val classify : int -> class_

  (** Exact value of a [Finite] pattern (all our targets embed exactly in
      double). Unspecified for [Inf]/[Nan] patterns. *)
  val to_double : int -> float

  (** Exact value of a [Finite] pattern as a rational. *)
  val to_rational : int -> Rational.t

  (** Round an exact real to the nearest representable pattern, using the
      format's own rules (IEEE round-to-nearest-even with overflow to
      infinity; posit saturation, never rounding a nonzero value to
      zero). *)
  val round_rational : Rational.t -> int

  (** Round a double to the nearest pattern; must agree with
      [round_rational (Rational.of_float x)] on finite [x] and be fast
      enough for the benchmark loops. *)
  val of_double : float -> int

  (** Map a non-[Nan] pattern to an integer line monotone in the value it
      represents (IEEE formats are sign-magnitude, posits are two's
      complement, so each format supplies its own). *)
  val order_key : int -> int
end

(** [ulp_distance (module T) a b] counts the representable values
    separating two non-[Nan] patterns on T's monotone ordering. *)
let ulp_distance (module T : S) a b = abs (T.order_key a - T.order_key b)
