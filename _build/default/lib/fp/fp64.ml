(* Bit-level utilities on H = double: successor/predecessor and a
   monotone integer key.  These implement GetPrev/GetNext of Algorithm 2
   and drive the binary searches for rounding intervals. *)

let bits = Int64.bits_of_float
let of_bits = Int64.float_of_bits

(* Monotone key: doubles compare like their keys.  -0.0 and +0.0 both
   map to 0. *)
let key x =
  let b = bits x in
  if Int64.compare b 0L >= 0 then b else Int64.sub Int64.min_int b

let of_key k =
  if Int64.compare k 0L >= 0 then of_bits k else of_bits (Int64.sub Int64.min_int k)

(* Next double toward +infinity.  Finite input, finite-or-inf output. *)
let next_up x =
  if x = 0.0 then of_bits 1L
  else begin
    let b = bits x in
    if Int64.compare b 0L >= 0 then of_bits (Int64.add b 1L)
    else if Int64.equal b Int64.min_int (* -0.0 *) then of_bits 1L
    else of_bits (Int64.sub b 1L)
  end

(* Next double toward -infinity. *)
let next_down x = -.next_up (-.x)

(* Keys of the infinities bound the meaningful part of the key line. *)
let inf_key = bits infinity
let neg_inf_key = Int64.neg inf_key

(* [advance x k] moves [k] representable doubles up (k may be negative),
   saturating at the infinities so callers can probe far without leaving
   the float line. *)
let advance x k =
  let base = key x in
  let t = Int64.add base (Int64.of_int k) in
  (* Saturating add: detect Int64 wraparound by the sign of the step. *)
  let t = if k >= 0 && Int64.compare t base < 0 then inf_key else t in
  let t = if k < 0 && Int64.compare t base > 0 then neg_inf_key else t in
  let t = if Int64.compare t inf_key > 0 then inf_key else t in
  let t = if Int64.compare t neg_inf_key < 0 then neg_inf_key else t in
  of_key t

(* Number of doubles strictly between is |steps| - ... ; here: signed
   count of representable steps from [a] to [b]. *)
let steps a b = Int64.sub (key b) (key a)
