lib/fp/bfloat16.ml: Ieee
