lib/fp/fp32.ml: Ieee Int32
