lib/fp/fp64.ml: Int64
