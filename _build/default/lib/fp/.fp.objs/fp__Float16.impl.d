lib/fp/float16.ml: Ieee
