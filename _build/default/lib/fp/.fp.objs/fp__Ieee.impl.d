lib/fp/ieee.ml: Bigint Float Rational Representation
