lib/fp/representation.ml: Rational
