(* Batch evaluation.

   The paper's §4.3 measures a vectorized harness (1024-input arrays)
   where Intel's compiler auto-vectorizes the comparators; RLIBM-32 is
   "almost as fast as vectorized code while producing correct results".
   OCaml has no auto-vectorizer, but the batch shape still pays: the
   spec's closures, tables and piecewise structures are hoisted out of
   the loop, bounds checks amortize, and the double<->pattern conversions
   pipeline.  The VEC bench section measures scalar-call vs batch. *)

module G = Rlibm.Generator

(** [eval_patterns g src dst] applies the generated function to every
    pattern of [src] into [dst].
    @raise Invalid_argument on length mismatch. *)
let eval_patterns (g : G.generated) (src : int array) (dst : int array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_patterns: length mismatch";
  let module T = (val g.spec.repr) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let evals = Array.map Rlibm.Piecewise.compile g.pieces in
  let ncomp = Array.length evals in
  (* Scratch for component values, reused across the batch. *)
  let v = Array.make ncomp 0.0 in
  for i = 0 to Array.length src - 1 do
    let pat = src.(i) in
    dst.(i) <-
      (match special pat with
      | Some out -> out
      | None ->
          let rr = reduce (T.to_double pat) in
          for c = 0 to ncomp - 1 do
            v.(c) <- evals.(c) rr.r
          done;
          T.of_double (compensate rr v))
  done

(** [eval_doubles g src dst] is the double-valued batch entry point (the
    arrays hold exact target values, as in the paper's harness). *)
let eval_doubles (g : G.generated) (src : float array) (dst : float array) =
  if Array.length src <> Array.length dst then invalid_arg "Batch.eval_doubles: length mismatch";
  let module T = (val g.spec.repr) in
  let special = g.spec.special in
  let reduce = g.spec.reduce in
  let compensate = g.spec.compensate in
  let evals = Array.map Rlibm.Piecewise.compile g.pieces in
  let ncomp = Array.length evals in
  let v = Array.make ncomp 0.0 in
  for i = 0 to Array.length src - 1 do
    let x = src.(i) in
    let pat = T.of_double x in
    dst.(i) <-
      (match special pat with
      | Some out -> T.to_double out
      | None ->
          let rr = reduce x in
          for c = 0 to ncomp - 1 do
            v.(c) <- evals.(c) rr.r
          done;
          T.to_double (T.of_double (compensate rr v)))
  done
