lib/funcs/libm.mli: Rlibm Specs
