lib/funcs/batch.ml: Array Rlibm
