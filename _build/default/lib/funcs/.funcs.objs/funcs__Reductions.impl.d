lib/funcs/reductions.ml: Array Float Fp Int64 Lazy Rlibm Stdlib Tables
