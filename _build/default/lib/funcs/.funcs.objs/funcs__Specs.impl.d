lib/funcs/specs.ml: Float Fp Lazy Oracle Posit Reductions Rlibm Stdlib String Tables
