lib/funcs/libm.ml: Hashtbl Rlibm Specs
