lib/funcs/tables.ml: Array Float Fp Int64 Oracle Rational
