lib/baselines/minimax.ml: Array Float Oracle Rational
