lib/baselines/crlibm_analog.ml: Array Float Fp Funcs Hashtbl Int64 Lazy Minimax Oracle Rational
