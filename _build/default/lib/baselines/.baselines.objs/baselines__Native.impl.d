lib/baselines/native.ml: Array Float Funcs Int32 Lazy Minimax Oracle Rational
