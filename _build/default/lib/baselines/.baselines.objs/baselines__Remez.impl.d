lib/baselines/remez.ml: Array Float List Minimax Oracle Rational
