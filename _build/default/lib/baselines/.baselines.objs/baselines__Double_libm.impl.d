lib/baselines/double_libm.ml: Float Fp
