(* Near-minimax real-value polynomial generation, standing in for the
   Remez/Sollya machinery behind the comparator libraries (glibc, Intel,
   MetaLibm — §6).

   Interpolation at Chebyshev nodes is within a small factor of the true
   minimax polynomial; the coefficients come from an exact rational
   Vandermonde solve against oracle values, so the only approximation is
   the mathematical interpolation error.  This is the philosophical
   opposite of the RLIBM approach the paper argues for: these
   polynomials chase the *real value* of f, not the correctly rounded
   value, and their misroundings in Table 1 are the paper's point. *)

module Q = Rational
module E = Oracle.Elementary

(* Solve the linear system A c = y exactly (Gaussian elimination with
   partial pivoting by magnitude).  Sizes here are tiny (degree <= 10). *)
let solve_exact (a : Q.t array array) (y : Q.t array) =
  let n = Array.length y in
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| y.(i) |]) in
  for col = 0 to n - 1 do
    (* Pivot: largest |entry| in this column. *)
    let best = ref col in
    for row = col + 1 to n - 1 do
      if Q.compare (Q.abs m.(row).(col)) (Q.abs m.(!best).(col)) > 0 then best := row
    done;
    let tmp = m.(col) in
    m.(col) <- m.(!best);
    m.(!best) <- tmp;
    if Q.is_zero m.(col).(col) then invalid_arg "Minimax.solve_exact: singular system";
    for row = 0 to n - 1 do
      if row <> col && not (Q.is_zero m.(row).(col)) then begin
        let f = Q.div m.(row).(col) m.(col).(col) in
        for j = col to n do
          m.(row).(j) <- Q.sub m.(row).(j) (Q.mul f m.(col).(j))
        done
      end
    done
  done;
  Array.init n (fun i -> Q.div m.(i).(n) m.(i).(i))

(** [interpolate f ~lo ~hi ~degree] fits f at [degree+1] Chebyshev nodes
    of [lo, hi] and returns double coefficients (lowest power first). *)
let interpolate (f : E.fn) ~lo ~hi ~degree =
  let n = degree + 1 in
  let mid = (lo +. hi) /. 2.0 and rad = (hi -. lo) /. 2.0 in
  let nodes =
    Array.init n (fun i ->
        mid +. (rad *. Float.cos (Float.pi *. (float_of_int ((2 * i) + 1) /. float_of_int (2 * n)))))
  in
  let y = Array.map (fun x -> Q.of_float (E.to_double f (Q.of_float x))) nodes in
  let a =
    Array.map
      (fun x ->
        let qx = Q.of_float x in
        let row = Array.make n Q.one in
        for j = 1 to n - 1 do
          row.(j) <- Q.mul row.(j - 1) qx
        done;
        row)
      nodes
  in
  Array.map Q.to_float (solve_exact a y)

(** Dense Horner in double. *)
let horner coeffs x =
  let acc = ref coeffs.(Array.length coeffs - 1) in
  for i = Array.length coeffs - 2 downto 0 do
    acc := coeffs.(i) +. (!acc *. x)
  done;
  !acc
