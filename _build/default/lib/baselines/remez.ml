(* The Remez exchange algorithm — the mini-max machinery the paper's §1
   recounts (Weierstrass + Chebyshev alternation) and that Sollya/
   MetaLibm build on.

   Given f on [a, b] and a degree d, iterate:

   + solve, exactly in rationals, the (d+2)-point alternation system
       P(x_i) + (-1)^i E = f(x_i)
     for the d+1 coefficients and the leveled error E;
   + scan a dense grid for the extrema of the new error curve and make
     them the next reference (single-point exchange is enough here: we
     take the full alternating extrema set);
   + stop when the leveled |E| and the observed maximum error agree to a
     small factor — the Chebyshev alternation theorem's equioscillation
     certificate.

   This is the genuine article the comparator libraries approximate
   with; {!Minimax} (Chebyshev interpolation) remains the cheap default
   for table building, and the tests assert Remez improves on it. *)

module Q = Rational
module E = Oracle.Elementary

type result = {
  coeffs : float array;  (** lowest power first *)
  leveled_error : float;  (** |E| of the final alternation system *)
  iterations : int;
}

(* Solve the alternation system for reference nodes [xs] (length d+2):
   unknowns c_0..c_d, e. *)
let solve_alternation f xs =
  let n = Array.length xs in
  let d = n - 2 in
  let rows =
    Array.mapi
      (fun i x ->
        let qx = Q.of_float x in
        let row = Array.make (n + 0) Q.zero in
        let p = ref Q.one in
        for j = 0 to d do
          row.(j) <- !p;
          p := Q.mul !p qx
        done;
        row.(d + 1) <- (if i land 1 = 0 then Q.one else Q.minus_one);
        row)
      xs
  in
  let rhs = Array.map (fun x -> Q.of_float (E.to_double f (Q.of_float x))) xs in
  let sol = Minimax.solve_exact rows rhs in
  (Array.init (d + 1) (fun j -> Q.to_float sol.(j)), Q.to_float sol.(d + 1))

(* Error f - P on a point. *)
let err f coeffs x = E.to_double f (Q.of_float x) -. Minimax.horner coeffs x

(* Alternating extrema of the error on a dense grid: walk the grid and
   keep the largest |error| point of each sign run, then trim/merge to
   exactly [n] alternating points (keeping the largest magnitudes). *)
let extrema f coeffs ~lo ~hi ~n ~grid =
  let pts =
    Array.init grid (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (grid - 1)))
  in
  let runs = ref [] in
  let cur_sign = ref 0 and cur_best = ref nan and cur_val = ref 0.0 in
  Array.iter
    (fun x ->
      let e = err f coeffs x in
      let s = compare e 0.0 in
      if s <> 0 && s <> !cur_sign then begin
        if !cur_sign <> 0 then runs := (!cur_best, !cur_val) :: !runs;
        cur_sign := s;
        cur_best := x;
        cur_val := e
      end
      else if s <> 0 && Float.abs e > Float.abs !cur_val then begin
        cur_best := x;
        cur_val := e
      end)
    pts;
  if !cur_sign <> 0 then runs := (!cur_best, !cur_val) :: !runs;
  let runs = Array.of_list (List.rev !runs) in
  if Array.length runs >= n then begin
    (* Keep a window of n consecutive alternating runs with the largest
       smallest-magnitude member. *)
    let best_start = ref 0 and best_min = ref neg_infinity in
    for s = 0 to Array.length runs - n do
      let m = ref infinity in
      for k = s to s + n - 1 do
        m := Float.min !m (Float.abs (snd runs.(k)))
      done;
      if !m > !best_min then begin
        best_min := !m;
        best_start := s
      end
    done;
    Some (Array.init n (fun k -> fst runs.(!best_start + k)))
  end
  else None

(** [fit f ~lo ~hi ~degree] runs the exchange until the leveled error
    and the grid maximum agree within 10%, or 30 iterations. *)
let fit (f : E.fn) ~lo ~hi ~degree =
  let n = degree + 2 in
  (* Chebyshev extrema as the initial reference. *)
  let nodes =
    Array.init n (fun i ->
        let t = Float.cos (Float.pi *. float_of_int i /. float_of_int (n - 1)) in
        ((lo +. hi) /. 2.0) +. ((hi -. lo) /. 2.0 *. t))
  in
  Array.sort compare nodes;
  let grid = 64 * n in
  let rec go nodes it (prev : result option) =
    let coeffs, e = solve_alternation f nodes in
    let max_err = ref 0.0 in
    for i = 0 to grid - 1 do
      let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (grid - 1)) in
      max_err := Float.max !max_err (Float.abs (err f coeffs x))
    done;
    let res = { coeffs; leveled_error = Float.abs e; iterations = it } in
    if it >= 30 || !max_err <= 1.10 *. Float.abs e then res
    else begin
      match extrema f coeffs ~lo ~hi ~n ~grid with
      | Some nodes' -> go nodes' (it + 1) (Some res)
      | None -> ( match prev with Some r -> r | None -> res)
    end
  in
  go nodes 1 None
