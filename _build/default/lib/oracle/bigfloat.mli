(** Arbitrary-precision binary floating point.

    A value is [m * 2^e] with a signed arbitrary-precision mantissa [m]
    and a machine-integer exponent.  All rounding operations take an
    explicit precision [prec] (mantissa bits) and round to nearest, ties
    to even.  Together with {!Elementary} this is the reproduction's
    substitute for the MPFR oracle used by RLIBM-32 (§4.1 of the paper).

    Error contract: [add], [sub], [mul] and [div] introduce a relative
    error of at most [2^(1-prec)] ("one ulp") per operation; exact
    constructors introduce none. *)

type t

(** {1 Constructors} *)

val zero : t
val one : t
val of_int : int -> t

(** [of_float x] represents the finite double [x] exactly.
    @raise Invalid_argument on NaN or infinities. *)
val of_float : float -> t

(** [of_bigint n] is exact. *)
val of_bigint : Bigint.t -> t

(** [make m e] is [m * 2^e], exact. *)
val make : Bigint.t -> int -> t

(** [of_dyadic q] is exact for a rational whose denominator is a power
    of two (every double is).
    @raise Invalid_argument otherwise. *)
val of_dyadic : Rational.t -> t

(** [of_rational ~prec q] rounds an arbitrary rational to [prec] bits. *)
val of_rational : prec:int -> Rational.t -> t

(** {1 Queries} *)

val sign : t -> int
val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

(** [ilog2 t] is [floor (log2 |t|)] for nonzero [t].
    @raise Invalid_argument on zero. *)
val ilog2 : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t

(** [round ~prec t] rounds the mantissa to [prec] bits, nearest-even. *)
val round : prec:int -> t -> t

val add : prec:int -> t -> t -> t
val sub : prec:int -> t -> t -> t
val mul : prec:int -> t -> t -> t

(** @raise Division_by_zero when the divisor is zero. *)
val div : prec:int -> t -> t -> t

(** [mul_pow2 t k] is [t * 2^k], exact. *)
val mul_pow2 : t -> int -> t

(** [mul_int ~prec t n] is [t * n] rounded. *)
val mul_int : prec:int -> t -> int -> t

(** [div_int ~prec t n] is [t / n] rounded. *)
val div_int : prec:int -> t -> int -> t

(** {1 Conversions} *)

(** Exact. *)
val to_rational : t -> Rational.t

(** Correctly rounded to double. *)
val to_float : t -> float

val pp : Format.formatter -> t -> unit
