lib/oracle/elementary.ml: Bigfloat Bigint Float Hashtbl Rational
