lib/oracle/bigfloat.ml: Bigint Float Format Int64 Rational Stdlib
