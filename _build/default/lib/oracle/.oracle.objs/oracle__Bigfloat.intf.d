lib/oracle/bigfloat.mli: Bigint Format Rational
