lib/oracle/elementary.mli: Bigfloat Rational
