(** Exact rational arithmetic.

    Rationals are kept normalized: the denominator is positive and
    [gcd num den = 1].  They are the number type of the LP solver
    ({!Lp}) — the SoPlex substitute — and the exchange format between
    double-precision values and the exact world: every finite double is a
    rational with a power-of-two denominator, so {!of_float} is exact and
    {!to_float} is the only place a rounding decision is made. *)

type t

(** {1 Constants and constructors} *)

val zero : t
val one : t
val minus_one : t
val half : t

val of_int : int -> t
val of_bigint : Bigint.t -> t

(** [make num den] is [num/den] normalized.
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_ints : int -> int -> t

(** [of_float x] is the exact rational value of the finite double [x].
    @raise Invalid_argument on NaN or infinities. *)
val of_float : float -> t

(** [of_pow2 k] is [2^k] for any sign of [k]. *)
val of_pow2 : int -> t

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Queries} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when the divisor is zero. *)
val div : t -> t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

val mul_pow2 : t -> int -> t

(** {1 Conversions} *)

(** [to_float t] is [t] rounded to the nearest double, ties to even,
    with overflow to infinity and gradual underflow to subnormals. *)
val to_float : t -> float

(** [ilog2 t] is [floor (log2 |t|)] for nonzero [t]. *)
val ilog2 : t -> int

(** [floor t] is the largest integer [<= t]. *)
val floor : t -> Bigint.t

(** [round_nearest t] rounds to the nearest integer, ties away from 0. *)
val round_nearest : t -> Bigint.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
