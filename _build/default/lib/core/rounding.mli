(** Rounding intervals (Algorithm 1, lines 14–17).

    The rounding interval of a target value [y] is the set of doubles
    that round to (a pattern with the value of) [y] under the target's
    round-to-nearest.  Membership is up to the sign of zero: the +0 and
    -0 patterns denote one value. *)

type t = { lo : float; hi : float }

(** [contains i v]: closed-interval membership. *)
val contains : t -> float -> bool

(** Width counted in representable doubles. *)
val width_ulps : t -> int64

(** [search_max pred bound] is the largest [k <= bound] with [pred k],
    for a monotone predicate with [pred 0] (exponential bracket + binary
    search). *)
val search_max : (int -> bool) -> int -> int

(** [interval (module T) y] computes the rounding interval of the
    finite pattern [y] by monotone search over the double line. *)
val interval : (module Fp.Representation.S) -> int -> t
