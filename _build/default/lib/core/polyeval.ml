(* Double-precision evaluation of structured polynomials (Horner, §4.1).

   A polynomial is a term-exponent array (ascending) plus matching
   coefficients; odd and even structures evaluate through u = r*r so an
   odd polynomial costs the same as a dense one of half the degree —
   the reason the paper lets the library designer pick the structure. *)

(** [eval ~terms coeffs r] evaluates in double, Horner-style: exactly
    the operation order the generated library uses at run time, so the
    generator's Check phase (Algorithm 4) sees bit-identical results. *)
let eval ~terms coeffs r =
  let n = Array.length terms in
  if n = 0 then 0.0
  else begin
    let u = r *. r in
    (* Step between consecutive exponents decides the Horner multiplier. *)
    let step k = match terms.(k) - terms.(k - 1) with 1 -> r | 2 -> u | d -> r ** float_of_int d in
    let acc = ref coeffs.(n - 1) in
    for k = n - 1 downto 1 do
      acc := coeffs.(k - 1) +. (!acc *. step k)
    done;
    (* Leading factor r^e0. *)
    match terms.(0) with
    | 0 -> !acc
    | 1 -> !acc *. r
    | 2 -> !acc *. u
    | e -> !acc *. (r ** float_of_int e)
  end
