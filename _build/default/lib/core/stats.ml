(* Generation statistics, one record per generated function: the data
   behind Table 3 (generation time, reduced-input counts, piecewise
   sizes, polynomial degree and term counts). *)

type t = {
  name : string;
  repr_name : string;
  gen_seconds : float;
  n_inputs : int;  (* enumerated inputs *)
  n_special : int;  (* handled by special cases *)
  n_reduced : int;  (* distinct reduced constraints, summed over components *)
  per_component : component array;
}

and component = {
  cname : string;
  n_constraints : int;
  n_polynomials : int;  (* total sub-domain count over both sign groups *)
  split_bits : int;  (* the n of 2^n sub-domains (max over groups) *)
  degree : int;
  n_terms : int;
}

let pp fmt t =
  Format.fprintf fmt "%s (%s): %.1fs, %d inputs (%d special), %d reduced@." t.name t.repr_name
    t.gen_seconds t.n_inputs t.n_special t.n_reduced;
  Array.iter
    (fun c ->
      Format.fprintf fmt "  %-10s %7d constraints, %4d polys (2^%d), degree %d, %d terms@."
        c.cname c.n_constraints c.n_polynomials c.split_bits c.degree c.n_terms)
    t.per_component
