lib/core/config.ml:
