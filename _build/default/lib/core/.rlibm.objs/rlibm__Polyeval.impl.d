lib/core/polyeval.ml: Array
