lib/core/generator.ml: Array Config Float Fp Fun Hashtbl List Option Oracle Piecewise Polygen Printf Reduced Rounding Seq Spec Splitting Stats Stdlib String Sys
