lib/core/polygen.mli: Config Reduced
