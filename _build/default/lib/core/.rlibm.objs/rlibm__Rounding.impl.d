lib/core/rounding.ml: Fp Stdlib
