lib/core/piecewise.ml: Array Splitting
