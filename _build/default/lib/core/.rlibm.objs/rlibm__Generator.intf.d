lib/core/generator.mli: Config Fp Piecewise Spec Stats
