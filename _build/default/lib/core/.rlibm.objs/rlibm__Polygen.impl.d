lib/core/polygen.ml: Array Config Float Fp Hashtbl List Lp Polyeval Printf Rational Reduced Seq Stdlib Sys
