lib/core/spec.ml: Array Fp Oracle Stdlib
