lib/core/splitting.ml: Fp Int64 Stdlib
