lib/core/reduced.ml: Array Fp Oracle Rational Rounding Spec
