lib/core/rounding.mli: Fp
