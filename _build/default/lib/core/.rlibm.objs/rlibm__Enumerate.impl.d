lib/core/enumerate.ml: Array Int64
