(* Rounding intervals (Algorithm 1, lines 14-17).

   For a target value y of representation T, the rounding interval is
   the set of doubles v with RN_T(v) = y.  Because RN_T is monotone on
   the double line, the interval's endpoints can be found by an
   exponential bracket followed by binary search on the monotone integer
   key of the double space — representation-agnostic, so the same code
   serves floats and posits. *)

type t = { lo : float; hi : float }

let contains i v = v >= i.lo && v <= i.hi
let width_ulps i = Fp.Fp64.steps i.lo i.hi

(* Largest k in [0, bound] with (pred k) true, where pred is monotone
   (true then false as k grows); requires pred 0. *)
let search_max pred bound =
  if pred bound then bound
  else begin
    (* Exponential bracket. *)
    let lo = ref 0 and hi = ref 1 in
    while !hi < bound && pred !hi do
      lo := !hi;
      hi := !hi * 2
    done;
    let hi = ref (Stdlib.min !hi bound) in
    (* Invariant: pred !lo, not (pred !hi). *)
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if pred mid then lo := mid else hi := mid
    done;
    !lo
  end

(* How far (in double ulps) the search may ever need to reach: the gap
   between consecutive representable values of any of our targets is at
   most ~2^96 doubles away from the value itself (posit32 regimes). *)
let max_reach = 1 lsl 62 - 1

(** [interval (module T) y] is the rounding interval of the finite
    pattern [y]: every double in it rounds to a pattern representing the
    same value as [y] under [T.of_double], and no double outside does.
    Equality is up to the sign of zero — the +0 and -0 patterns denote
    one value, and treating them as distinct would pin the reduced
    constraints of odd functions at exact zeros to empty boxes. *)
let interval (module T : Fp.Representation.S) y =
  let v0 = T.to_double y in
  let same p =
    p = y
    ||
    match (T.classify p, T.classify y) with
    | Fp.Representation.Finite, Fp.Representation.Finite -> T.to_double p = T.to_double y
    | _ -> false
  in
  (* v0 is exact, so it certainly rounds back to y. *)
  assert (same (T.of_double v0));
  let down k = same (T.of_double (Fp.Fp64.advance v0 (-k))) in
  let up k = same (T.of_double (Fp.Fp64.advance v0 k)) in
  let kd = search_max down max_reach in
  let ku = search_max up max_reach in
  { lo = Fp.Fp64.advance v0 (-kd); hi = Fp.Fp64.advance v0 ku }
