lib/posit/posit16.ml: Posit_codec
