lib/posit/posit32.ml: Posit_codec
