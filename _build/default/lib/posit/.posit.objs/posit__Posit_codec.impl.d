lib/posit/posit_codec.ml: Bigint Float Fp Int64 Rational Stdlib
