lib/posit/posit8.ml: Posit_codec
