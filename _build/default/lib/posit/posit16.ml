(* posit<16,1>: the 16-bit posit of the original RLIBM work; small
   enough for exhaustive end-to-end validation. *)

include Posit_codec.Make (struct
  let params = { Posit_codec.n = 16; es = 1; name = "posit16" }
end)
