(* posit<32,2>: the paper's second 32-bit target type (Table 2). *)

include Posit_codec.Make (struct
  let params = { Posit_codec.n = 32; es = 2; name = "posit32" }
end)
