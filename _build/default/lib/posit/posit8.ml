(* posit<8,0>: the smallest standard posit.  Not part of the paper's
   evaluation, but the generic codec supports it for free and the tiny
   pattern space (256 values) makes it a brutal exhaustive test of the
   rounding rules. *)

include Posit_codec.Make (struct
  let params = { Posit_codec.n = 8; es = 0; name = "posit8" }
end)
