(* Two-phase primal simplex over exact rationals — the SoPlex-faithful
   kernel.

   Feasibility of  A x <= b  (x free) is decided by splitting
   x = u - v (u, v >= 0), adding slacks, flipping rows with negative
   right-hand side and giving those rows artificial variables; phase 1
   minimizes the sum of artificials.  Bland's rule makes every pivot
   choice deterministic and cycle-free, and with exact arithmetic the
   Feasible/Infeasible answers are ground truth.

   Performance notes: tableau entries are quotients of minors of the
   structural columns, so they stay a few hundred bits wide for the
   polynomial-fitting workloads; {!Rational}'s dyadic fast path and the
   division-free ratio test below keep gcd work off the hot path.
   Callers control cost through problem size (see {!Polyfit.max_active}),
   not through approximation. *)

module Q = Rational

type outcome = Feasible of Q.t array | Infeasible | Unknown

let max_pivots = ref 20000

let feasible ~a ~b =
  let m = Array.length a in
  if m = 0 then invalid_arg "Simplex.feasible: no rows";
  let nv = Array.length a.(0) in
  Array.iter (fun row -> if Array.length row <> nv then invalid_arg "Simplex.feasible: ragged matrix") a;
  if Array.length b <> m then invalid_arg "Simplex.feasible: bad rhs length";
  (* Columns: u_0..u_{nv-1}, v_0..v_{nv-1}, s_0..s_{m-1}, then one
     artificial per negative-rhs row. *)
  let neg_rows = ref [] in
  for i = m - 1 downto 0 do
    if Q.sign b.(i) < 0 then neg_rows := i :: !neg_rows
  done;
  let neg_rows = !neg_rows in
  let n_art = List.length neg_rows in
  let n_cols = (2 * nv) + m + n_art in
  let t = Array.make_matrix m (n_cols + 1) Q.zero in
  let basis = Array.make m 0 in
  let art_col = Hashtbl.create 8 in
  List.iteri (fun j i -> Hashtbl.add art_col i ((2 * nv) + m + j)) neg_rows;
  for i = 0 to m - 1 do
    let flip = Q.sign b.(i) < 0 in
    let put j q = t.(i).(j) <- (if flip then Q.neg q else q) in
    for j = 0 to nv - 1 do
      put j a.(i).(j);
      put (nv + j) (Q.neg a.(i).(j))
    done;
    put ((2 * nv) + i) Q.one;
    t.(i).(n_cols) <- (if flip then Q.neg b.(i) else b.(i));
    if flip then begin
      let c = Hashtbl.find art_col i in
      t.(i).(c) <- Q.one;
      basis.(i) <- c
    end
    else basis.(i) <- (2 * nv) + i
  done;
  if n_art = 0 then begin
    (* The all-slack basis is already feasible; x = 0 works. *)
    Feasible (Array.make nv Q.zero)
  end
  else begin
    (* Phase-1 objective row (minimize the artificial sum), kept in
       reduced form: entering candidates are columns with positive
       coefficient. *)
    let obj = Array.make (n_cols + 1) Q.zero in
    for i = 0 to m - 1 do
      if basis.(i) >= (2 * nv) + m then
        for j = 0 to n_cols do
          obj.(j) <- Q.add obj.(j) t.(i).(j)
        done
    done;
    let pivots = ref 0 in
    let result = ref None in
    let is_basic = Array.make (n_cols + 1) false in
    Array.iter (fun j -> is_basic.(j) <- true) basis;
    while !result = None do
      if !pivots > !max_pivots then result := Some Unknown
      else begin
        (* Bland: the lowest-index improving column (cycle-free). *)
        let entering = ref (-1) in
        (try
           for j = 0 to n_cols - 1 do
             if (not is_basic.(j)) && Q.sign obj.(j) > 0 then begin
               entering := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !entering < 0 then begin
          (* Optimal: feasible iff the artificial sum is zero. *)
          if Q.is_zero obj.(n_cols) then begin
            let x = Array.make nv Q.zero in
            for i = 0 to m - 1 do
              if basis.(i) < nv then x.(basis.(i)) <- Q.add x.(basis.(i)) t.(i).(n_cols)
              else if basis.(i) < 2 * nv then
                x.(basis.(i) - nv) <- Q.sub x.(basis.(i) - nv) t.(i).(n_cols)
            done;
            result := Some (Feasible x)
          end
          else result := Some Infeasible
        end
        else begin
          let e = !entering in
          (* Division-free ratio test (cross-multiplication), Bland
             tie-break on the basis column index. *)
          let leave = ref (-1) in
          for i = 0 to m - 1 do
            if Q.sign t.(i).(e) > 0 then begin
              if !leave < 0 then leave := i
              else begin
                let l = !leave in
                (* rhs_i / t_ie ? rhs_l / t_le, all pivots positive. *)
                let lhs = Q.mul t.(i).(n_cols) t.(l).(e) in
                let rhs = Q.mul t.(l).(n_cols) t.(i).(e) in
                let c = Q.compare lhs rhs in
                if c < 0 || (c = 0 && basis.(i) < basis.(l)) then leave := i
              end
            end
          done;
          if !leave < 0 then
            (* Phase-1 objective is bounded below by 0, so no improving
               ray exists in exact arithmetic; defensive bail-out. *)
            result := Some Unknown
          else begin
            let l = !leave in
            let piv = t.(l).(e) in
            for j = 0 to n_cols do
              t.(l).(j) <- Q.div t.(l).(j) piv
            done;
            for i = 0 to m - 1 do
              if i <> l && not (Q.is_zero t.(i).(e)) then begin
                let f = t.(i).(e) in
                for j = 0 to n_cols do
                  t.(i).(j) <- Q.sub t.(i).(j) (Q.mul f t.(l).(j))
                done
              end
            done;
            (* Incremental objective update (exact, hence faithful). *)
            if not (Q.is_zero obj.(e)) then begin
              let f = obj.(e) in
              for j = 0 to n_cols do
                obj.(j) <- Q.sub obj.(j) (Q.mul f t.(l).(j))
              done
            end;
            is_basic.(basis.(l)) <- false;
            is_basic.(e) <- true;
            basis.(l) <- e;
            incr pivots
          end
        end
      end
    done;
    match !result with Some r -> r | None -> Unknown
  end
