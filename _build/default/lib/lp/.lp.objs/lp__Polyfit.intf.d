lib/lp/polyfit.mli: Rational
