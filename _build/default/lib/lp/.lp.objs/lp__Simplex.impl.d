lib/lp/simplex.ml: Array Hashtbl List Rational
