lib/lp/polyfit.ml: Array Bigint Float Hashtbl List Oracle Rational Simplex Stdlib
