(* Active-set LP polynomial fitting; see the .mli for the layering. *)

module Q = Rational
module F = Oracle.Bigfloat

type constr = { r : float; lo : float; hi : float }

let max_active = ref 40

(* q^e for small e, exactly. *)
let qpow q e = Q.make (Bigint.pow (Q.num q) e) (Bigint.pow (Q.den q) e)

(* Round a rational to at most 64 significant bits (dyadic): keeps
   simplex minors narrow.  64 bits matters: the LP's view of P(r) then
   differs from the double Horner evaluation by well under one double
   ulp of the result, so when the LP parks its vertex on a constraint
   edge, rounding the coefficients to double is symmetric noise that
   search-and-refine resolves in a few steps.  A coarser view would bias
   the rounding to the same side every time and the refine loop would
   chase the edge forever. *)
let round64 q = if Q.is_zero q then q else F.to_rational (F.of_rational ~prec:64 q)

let eval_exact ~terms coeffs x =
  let qx = Q.of_float x in
  let acc = ref Q.zero in
  Array.iteri (fun i e -> acc := Q.add !acc (Q.mul coeffs.(i) (qpow qx e))) terms;
  !acc

let fit ~terms cons =
  let m = Array.length cons in
  let nt = Array.length terms in
  if m = 0 then Some (Array.make nt Q.zero)
  else begin
    (* Empty interval anywhere: no polynomial can exist. *)
    if Array.exists (fun c -> c.lo > c.hi) cons then None
    else begin
      (* Variable scaling: bring the largest |r| near 1. *)
      let rmax = Array.fold_left (fun acc c -> Float.max acc (Float.abs c.r)) 0.0 cons in
      let sigma = if rmax = 0.0 then 0 else -snd (Float.frexp rmax) in
      (* LP view of each constraint: rounded powers of the scaled input. *)
      let row_of i =
        let c = cons.(i) in
        let qr = Q.mul_pow2 (Q.of_float c.r) sigma in
        Array.map (fun e -> round64 (qpow qr e)) terms
      in
      let rows = Array.init m row_of in
      let lo i = Q.of_float cons.(i).lo and hi i = Q.of_float cons.(i).hi in
      (* Double-precision view of the rows for the full-set violation
         scan.  Exactness is not needed there: the caller re-validates
         every candidate in double against the true intervals
         (Algorithm 4's Check), so a borderline miss only costs one more
         counterexample round — while an exact scan over thousands of
         constraints with fat simplex rationals dominates generation
         time. *)
      let rows_f = Array.map (Array.map Q.to_float) rows in
      let violation coeffs_f i =
        let v = ref 0.0 in
        Array.iteri (fun j _ -> v := !v +. (coeffs_f.(j) *. rows_f.(i).(j))) terms;
        let v = !v in
        if v < cons.(i).lo then cons.(i).lo -. v
        else if v > cons.(i).hi then v -. cons.(i).hi
        else 0.0
      in
      (* Initial active set: an even spread, always including both ends. *)
      let init_size = Stdlib.min m ((3 * nt) + 2) in
      let active = Hashtbl.create 64 in
      for k = 0 to init_size - 1 do
        Hashtbl.replace active (k * (m - 1) / Stdlib.max 1 (init_size - 1)) ()
      done;
      let solve_active () =
        let idx = Hashtbl.fold (fun i () acc -> i :: acc) active [] |> List.sort compare in
        let k = List.length idx in
        let a = Array.make_matrix (2 * k) nt Q.zero in
        let b = Array.make (2 * k) Q.zero in
        List.iteri
          (fun p i ->
            (* row <= hi  and  -row <= -lo *)
            Array.iteri
              (fun j v ->
                a.(p).(j) <- v;
                a.(k + p).(j) <- Q.neg v)
              rows.(i);
            b.(p) <- hi i;
            b.(k + p) <- Q.neg (lo i))
          idx;
        Simplex.feasible ~a ~b
      in
      let rec loop rounds =
        if rounds > 60 || Hashtbl.length active > !max_active then None
        else begin
          match solve_active () with
          | Simplex.Infeasible | Simplex.Unknown -> None
          | Simplex.Feasible coeffs -> (
              (* Gather the worst violations over the full set. *)
              let coeffs_f = Array.map Q.to_float coeffs in
              let viols = ref [] in
              for i = 0 to m - 1 do
                if not (Hashtbl.mem active i) then begin
                  let v = violation coeffs_f i in
                  if v > 0.0 then viols := (v, i) :: !viols
                end
              done;
              match !viols with
              | [] ->
                  (* Undo the variable scaling: c_j <- c_j * 2^(e_j*sigma). *)
                  Some (Array.mapi (fun j c -> Q.mul_pow2 c (terms.(j) * sigma)) coeffs)
              | vs ->
                  let vs = List.sort (fun ((a : float), _) (b, _) -> compare b a) vs in
                  List.iteri (fun k (_, i) -> if k < 16 then Hashtbl.replace active i ()) vs;
                  loop (rounds + 1))
        end
      in
      loop 0
    end
  end
