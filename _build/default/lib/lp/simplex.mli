(** Exact rational feasibility solver (two-phase primal simplex).

    This is the LP kernel of the reproduction's SoPlex substitute: the
    paper's `GetCoeffsUsingLP` (§3.4) asks only for *a* feasible point of
    the system [l <= P(r_i) <= h_i], so the solver exposes feasibility of
    [A x <= b] over free variables.  Arithmetic is exact throughout
    (Bland's rule, so no cycling); an iteration cap turns pathological
    instances into a clean [Unknown]. *)

type outcome =
  | Feasible of Rational.t array  (** a point satisfying every row *)
  | Infeasible  (** proven: the phase-1 optimum is positive *)
  | Unknown  (** iteration cap hit; treat as "no polynomial found" *)

(** [feasible ~a ~b] decides [exists x. a x <= b] with [x] free.
    [a] is an [m x n] dense matrix (rows of equal length [n]).
    @raise Invalid_argument on ragged or empty input. *)
val feasible : a:Rational.t array array -> b:Rational.t array -> outcome

(** Iteration cap for a single solve (default 20000). *)
val max_pivots : int ref
