# Convenience wrappers around the dune alias split.
#
#   make check-fast   build + the fast test tier (@runtest: strided
#                     16-bit subsets, engine determinism at jobs 1/2/4)
#   make check-full   fast tier + @exhaustive (every bfloat16/float16
#                     input of the differential suite — including all five
#                     standard rounding modes derived from the float34
#                     round-to-odd table — RLIBM_EXHAUSTIVE=1)
#   make bench-json   exact-arithmetic + generator benches, results
#                     written to BENCH_<rev>.json (schema-v1 datafile)
#   make bench-diff   markdown diff of two run datafiles:
#                     make bench-diff BASE=BENCH_old.json CURR=BENCH_new.json
#
# RLIBM_JOBS=<n> controls worker domains for the sharded passes.

.PHONY: all build check-fast check-full bench bench-json bench-diff clean

all: build

build:
	dune build

check-fast: build
	dune runtest

check-full: check-fast
	dune build @exhaustive

bench: build
	dune exec bench/main.exe

bench-json: build
	dune exec bench/main.exe -- --json bigint rational lp gen round sweep campaign serve

bench-diff: build
	dune exec bin/report.exe -- datafile-diff $(BASE) $(CURR)

clean:
	dune clean
