(* Bigint: ring laws, division invariants, conversions. *)

module B = Bigint
open Test_util

let st = rand 1

let check = Alcotest.check bigint

let test_small_arith () =
  check "1+1" (B.of_int 2) (B.add B.one B.one);
  check "2*3" (B.of_int 6) (B.mul B.two (B.of_int 3));
  check "neg" (B.of_int (-5)) (B.neg (B.of_int 5));
  check "sub" (B.of_int (-1)) (B.sub (B.of_int 4) (B.of_int 5));
  Alcotest.(check int) "sign pos" 1 (B.sign (B.of_int 3));
  Alcotest.(check int) "sign neg" (-1) (B.sign (B.of_int (-3)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  check "min_int roundtrip" (B.of_string (string_of_int min_int)) (B.of_int min_int)

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789123456789123456789"; "-99999999999999999999999999999999" ]

let test_divmod_basics () =
  let q, r = B.divmod (B.of_int 17) (B.of_int 5) in
  check "17/5 q" (B.of_int 3) q;
  check "17%5 r" (B.of_int 2) r;
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  check "-17/5 q (trunc)" (B.of_int (-3)) q;
  check "-17%5 r" (B.of_int (-2)) r;
  let q, r = B.divmod (B.of_int 17) (B.of_int (-5)) in
  check "17/-5 q" (B.of_int (-3)) q;
  check "17%-5 r" (B.of_int 2) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_shifts () =
  check "shl" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  check "shr" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  check "shr trunc neg" (B.of_int (-5)) (B.shift_right (B.of_int (-40)) 3);
  check "shl big" (B.of_string "1267650600228229401496703205376") (B.shift_left B.one 100);
  Alcotest.(check int) "bit_length 2^100" 101 (B.bit_length (B.shift_left B.one 100));
  Alcotest.(check int) "bit_length 0" 0 (B.bit_length B.zero);
  Alcotest.(check bool) "testbit" true (B.testbit (B.of_int 8) 3);
  Alcotest.(check bool) "testbit off" false (B.testbit (B.of_int 8) 2);
  Alcotest.(check int) "trailing zeros" 100 (B.trailing_zeros (B.shift_left B.one 100))

let test_pow_gcd () =
  check "3^7" (B.of_int 2187) (B.pow (B.of_int 3) 7);
  check "x^0" B.one (B.pow (B.of_int 42) 0);
  check "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int (-24)));
  check "gcd zero" (B.of_int 7) (B.gcd B.zero (B.of_int 7));
  check "gcd big"
    (B.shift_left B.one 50)
    (B.gcd (B.shift_left B.one 150) (B.shift_left (B.of_int 3) 50))

let test_to_float () =
  Alcotest.(check (float 0.0)) "small" 12345.0 (B.to_float (B.of_int 12345));
  Alcotest.(check (float 0.0)) "2^100" (Float.ldexp 1.0 100) (B.to_float (B.shift_left B.one 100));
  (* Round-to-even at 54 bits: 2^53 + 1 rounds to 2^53. *)
  Alcotest.(check (float 0.0))
    "2^53+1 RNE"
    (Float.ldexp 1.0 53)
    (B.to_float (B.add (B.shift_left B.one 53) B.one));
  Alcotest.(check (float 0.0))
    "2^53+3 RNE"
    (Float.ldexp 1.0 53 +. 4.0)
    (B.to_float (B.add (B.shift_left B.one 53) (B.of_int 3)))

(* Tier-boundary unit coverage: values around the 62-bit fixnum edge. *)
let test_fixnum_boundary () =
  let p62 = B.shift_left B.one 62 in
  check "max_int + 1 = 2^62" p62 (B.add (B.of_int max_int) B.one);
  check "2^62 - 1 = max_int" (B.of_int max_int) (B.sub p62 B.one);
  Alcotest.(check (option int)) "to_int max_int" (Some max_int) (B.to_int (B.of_int max_int));
  Alcotest.(check (option int)) "to_int 2^62" None (B.to_int p62);
  check "neg min_int" p62 (B.neg (B.of_int min_int));
  check "min_int = -2^62" (B.neg p62) (B.of_int min_int);
  check "min_int via add" (B.of_int min_int)
    (B.add (B.of_int (-(1 lsl 61))) (B.of_int (-(1 lsl 61))));
  check "mul overflow" (B.shift_left B.one 62) (B.mul (B.shift_left B.one 31) (B.shift_left B.one 31));
  Alcotest.(check string) "to_string max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  Alcotest.(check string) "to_string min_int" (string_of_int min_int) (B.to_string (B.of_int min_int));
  check "of_string min_int" (B.of_int min_int) (B.of_string (string_of_int min_int));
  (* Narrowing re-enters the fixnum tier and stays canonical for
     structural equality. *)
  Alcotest.(check bool) "narrowed = fixnum" true
    (B.sub p62 (B.of_int 1) = B.of_int max_int);
  Alcotest.(check int) "bit_length max_int" 62 (B.bit_length (B.of_int max_int));
  Alcotest.(check int) "bit_length 2^62" 63 (B.bit_length p62)

let test_new_queries () =
  Alcotest.(check bool) "is_pow2 1" true (B.is_pow2 B.one);
  Alcotest.(check bool) "is_pow2 2^100" true (B.is_pow2 (B.shift_left B.one 100));
  Alcotest.(check bool) "is_pow2 3*2^100" false (B.is_pow2 (B.shift_left (B.of_int 3) 100));
  Alcotest.(check bool) "is_pow2 0" false (B.is_pow2 B.zero);
  Alcotest.(check bool) "is_pow2 -4" false (B.is_pow2 (B.of_int (-4)));
  Alcotest.(check bool) "low_bits 12 k=2" false (B.low_bits_nonzero (B.of_int 12) 2);
  Alcotest.(check bool) "low_bits 12 k=3" true (B.low_bits_nonzero (B.of_int 12) 3);
  Alcotest.(check bool) "low_bits 2^80 k=80" false (B.low_bits_nonzero (B.shift_left B.one 80) 80);
  Alcotest.(check bool) "low_bits 2^80+2 k=80" true
    (B.low_bits_nonzero (B.add (B.shift_left B.one 80) B.two) 80);
  check "shift_add" (B.of_int 83) (B.shift_add (B.of_int 10) 3 (B.of_int 3));
  check "shift_add mixed sign" (B.of_int 77) (B.shift_add (B.of_int 10) 3 (B.of_int (-3)))

(* Exhaustive small-operand differential sweep against the naive
   reference: every pair in [-40, 40]. *)
let test_exhaustive_small_diff () =
  for a = -40 to 40 do
    for b = -40 to 40 do
      let ba = B.of_int a and bb = B.of_int b in
      let ra = Ref.of_int a and rb = Ref.of_int b in
      let chk tag x y =
        if not (ref_eq x y) then
          Alcotest.failf "%s (%d, %d): %s vs %s" tag a b (B.to_string x) (Ref.to_string y)
      in
      chk "add" (B.add ba bb) (Ref.add ra rb);
      chk "sub" (B.sub ba bb) (Ref.sub ra rb);
      chk "mul" (B.mul ba bb) (Ref.mul ra rb);
      chk "gcd" (B.gcd ba bb) (Ref.gcd ra rb);
      Alcotest.(check int)
        (Printf.sprintf "compare (%d, %d)" a b)
        (Ref.compare ra rb) (B.compare ba bb);
      if b <> 0 then begin
        let q, r = B.divmod ba bb in
        let q', r' = Ref.divmod ra rb in
        chk "div" q q';
        chk "rem" r r'
      end
    done
  done

(* Property tests. *)
let prop_divmod =
  QCheck.Test.make ~name:"divmod invariant" ~count:2000 QCheck.unit (fun () ->
      let a = random_bigint st 180 and b = random_nonzero_bigint st 90 in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_ring =
  QCheck.Test.make ~name:"commutativity/associativity/distributivity" ~count:1000 QCheck.unit
    (fun () ->
      let a = random_bigint st 120 and b = random_bigint st 120 and c = random_bigint st 60 in
      B.equal (B.add a b) (B.add b a)
      && B.equal (B.mul a b) (B.mul b a)
      && B.equal (B.mul (B.add a b) c) (B.add (B.mul a c) (B.mul b c))
      && B.equal (B.sub a b) (B.neg (B.sub b a)))

let prop_string =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:500 QCheck.unit (fun () ->
      let a = random_bigint st 250 in
      B.equal a (B.of_string (B.to_string a)))

let prop_gcd =
  QCheck.Test.make ~name:"gcd divides and is positive" ~count:500 QCheck.unit (fun () ->
      let a = random_nonzero_bigint st 120 and b = random_nonzero_bigint st 120 in
      let g = B.gcd a b in
      B.sign g = 1 && B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_shift =
  QCheck.Test.make ~name:"shift = mul/div by 2^k" ~count:500 QCheck.unit (fun () ->
      let a = random_bigint st 150 in
      let k = Random.State.int st 80 in
      B.equal (B.shift_left a k) (B.mul a (B.pow B.two k))
      && B.equal (B.shift_right a k) (B.div a (B.pow B.two k)))

let prop_to_float_small =
  QCheck.Test.make ~name:"to_float exact on 53-bit ints" ~count:2000 QCheck.unit (fun () ->
      let n = Random.State.full_int st (1 lsl 30) * (1 + Random.State.int st 4096) in
      let n = if Random.State.bool st then -n else n in
      B.to_float (B.of_int n) = float_of_int n)

(* Differential properties against the naive reference.  Operand widths
   deliberately straddle the two representation thresholds: the 62-bit
   fixnum/limb edge and the Karatsuba cutover (24 limbs = 744 bits). *)

let straddle_62 st = 40 + Random.State.int st 50 (* 40..89 bits *)
let straddle_kara st = 500 + Random.State.int st 1300 (* 500..1799 bits *)

let prop_diff_ring_62 =
  QCheck.Test.make ~name:"diff vs naive: add/sub/mul near 62-bit edge" ~count:1500 QCheck.unit
    (fun () ->
      let a, a' = bigint_pair ~exact:true st (straddle_62 st) in
      let b, b' = bigint_pair st (straddle_62 st) in
      ref_eq (B.add a b) (Ref.add a' b')
      && ref_eq (B.sub a b) (Ref.sub a' b')
      && ref_eq (B.mul a b) (Ref.mul a' b')
      && B.compare a b = Ref.compare a' b')

let prop_diff_divmod =
  QCheck.Test.make ~name:"diff vs naive: divmod across tiers" ~count:800 QCheck.unit (fun () ->
      let a, a' = bigint_pair st (40 + Random.State.int st 200) in
      let b, b' = nonzero_bigint_pair st (20 + Random.State.int st 80) in
      let q, r = B.divmod a b in
      let q', r' = Ref.divmod a' b' in
      ref_eq q q' && ref_eq r r')

let prop_diff_mul_kara =
  QCheck.Test.make ~name:"diff vs naive: Karatsuba-width products" ~count:60 QCheck.unit (fun () ->
      let a, a' = bigint_pair ~exact:true st (straddle_kara st) in
      let b, b' = bigint_pair ~exact:true st (straddle_kara st) in
      ref_eq (B.mul a b) (Ref.mul a' b'))

let prop_diff_mul_unbalanced =
  QCheck.Test.make ~name:"diff vs naive: unbalanced wide products" ~count:60 QCheck.unit (fun () ->
      let a, a' = bigint_pair ~exact:true st (1200 + Random.State.int st 800) in
      let b, b' = bigint_pair ~exact:true st (100 + Random.State.int st 400) in
      ref_eq (B.mul a b) (Ref.mul a' b'))

let prop_diff_gcd =
  QCheck.Test.make ~name:"diff vs naive: gcd mixed widths" ~count:150 QCheck.unit (fun () ->
      (* Share a factor so the gcd is rarely 1. *)
      let g, g' = nonzero_bigint_pair st (10 + Random.State.int st 60) in
      let a, a' = nonzero_bigint_pair st (20 + Random.State.int st 300) in
      let b, b' = nonzero_bigint_pair st (20 + Random.State.int st 300) in
      ref_eq (B.gcd (B.mul g a) (B.mul g b)) (Ref.gcd (Ref.mul g' a') (Ref.mul g' b')))

let prop_diff_gcd_lehmer =
  QCheck.Test.make ~name:"diff vs naive: gcd wide (multiple Lehmer rounds)" ~count:40 QCheck.unit
    (fun () ->
      let g, g' = nonzero_bigint_pair st (100 + Random.State.int st 300) in
      let a, a' = nonzero_bigint_pair st (400 + Random.State.int st 1200) in
      let b, b' = nonzero_bigint_pair st (400 + Random.State.int st 1200) in
      ref_eq (B.gcd (B.mul g a) (B.mul g b)) (Ref.gcd (Ref.mul g' a') (Ref.mul g' b')))

(* Consecutive Fibonacci numbers: every Euclid quotient is 1, the
   maximal-cofactor-growth case for the Lehmer inner loop. *)
let test_gcd_fibonacci () =
  let rec fib a b n = if n = 0 then (a, b) else fib b (B.add a b) (n - 1) in
  let fa, fb = fib B.one B.one 600 in
  Alcotest.(check bool) "gcd(F_601, F_602) = 1" true (B.equal B.one (B.gcd fa fb));
  let g = B.of_string "123456789123456789123456789123456789" in
  Alcotest.(check bool) "shared-factor fib gcd" true (B.equal g (B.gcd (B.mul fa g) (B.mul fb g)))

let prop_diff_string =
  QCheck.Test.make ~name:"diff vs naive: of_string chunking" ~count:300 QCheck.unit (fun () ->
      let a, a' = bigint_pair st (Random.State.int st 700) in
      let s = Ref.to_string a' in
      (* The chunked parser agrees with the naive one on the same
         literal, with and without leading zeros / explicit sign. *)
      let zero_padded =
        if Ref.sign a' >= 0 then "000" ^ s else "-000" ^ String.sub s 1 (String.length s - 1)
      in
      B.equal a (B.of_string s) && B.equal a (B.of_string zero_padded)
      && String.equal s (B.to_string a))

let prop_shift_add =
  QCheck.Test.make ~name:"shift_add = shift_left then add" ~count:800 QCheck.unit (fun () ->
      let a = random_bigint st (Random.State.int st 200) in
      let b = random_bigint st (Random.State.int st 200) in
      let k = Random.State.int st 120 in
      B.equal (B.shift_add a k b) (B.add (B.shift_left a k) b))

let prop_low_bits =
  QCheck.Test.make ~name:"low_bits_nonzero = rem by 2^k <> 0" ~count:800 QCheck.unit (fun () ->
      let a = random_bigint st (Random.State.int st 200) in
      let k = Random.State.int st 220 in
      B.low_bits_nonzero a k
      = not (B.is_zero (B.sub (B.abs a) (B.shift_left (B.shift_right (B.abs a) k) k))))

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "small arithmetic" `Quick test_small_arith;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "divmod basics" `Quick test_divmod_basics;
          Alcotest.test_case "shifts and bits" `Quick test_shifts;
          Alcotest.test_case "pow and gcd" `Quick test_pow_gcd;
          Alcotest.test_case "to_float rounding" `Quick test_to_float;
          Alcotest.test_case "fixnum tier boundary" `Quick test_fixnum_boundary;
          Alcotest.test_case "is_pow2/low_bits/shift_add" `Quick test_new_queries;
          Alcotest.test_case "exhaustive small diff vs naive" `Quick test_exhaustive_small_diff;
          Alcotest.test_case "gcd of consecutive Fibonaccis" `Quick test_gcd_fibonacci;
        ] );
      qsuite "properties"
        [ prop_divmod; prop_ring; prop_string; prop_gcd; prop_shift; prop_to_float_small ];
      qsuite "differential"
        [
          prop_diff_ring_62;
          prop_diff_divmod;
          prop_diff_mul_kara;
          prop_diff_mul_unbalanced;
          prop_diff_gcd;
          prop_diff_gcd_lehmer;
          prop_diff_string;
          prop_shift_add;
          prop_low_bits;
        ];
    ]
