(* LP: simplex kernel and the active-set polynomial fitter. *)

module Q = Rational
module S = Lp.Simplex
module P = Lp.Polyfit
open Test_util

let st = rand 6
let q = Q.of_int

let feasible_point a b = function
  | S.Feasible x ->
      Array.iteri
        (fun i row ->
          let v = ref Q.zero in
          Array.iteri (fun j c -> v := Q.add !v (Q.mul c x.(j))) row;
          if Q.compare !v b.(i) > 0 then Alcotest.failf "row %d violated" i)
        a;
      true
  | S.Infeasible | S.Unknown -> false

let test_simplex_1d () =
  let a = [| [| q 1 |]; [| q (-1) |] |] in
  let b = [| q 3; q (-1) |] in
  Alcotest.(check bool) "x in [1,3]" true (feasible_point a b (S.feasible ~a ~b));
  let b' = [| q 1; q (-2) |] in
  Alcotest.(check bool)
    "empty [2,1]"
    true
    (S.feasible ~a ~b:b' = S.Infeasible)

let test_simplex_equality_like () =
  (* x + y <= 1 and x + y >= 1 pin the sum. *)
  let a = [| [| q 1; q 1 |]; [| q (-1); q (-1) |]; [| q (-1); q 0 |] |] in
  let b = [| q 1; q (-1); q 5 |] in
  match S.feasible ~a ~b with
  | S.Feasible x -> Alcotest.check rational "x+y=1" Q.one (Q.add x.(0) x.(1))
  | _ -> Alcotest.fail "should be feasible"

let test_simplex_negative_solution () =
  (* Force a negative free variable: x <= -5. *)
  let a = [| [| q 1 |] |] and b = [| q (-5) |] in
  match S.feasible ~a ~b with
  | S.Feasible x -> Alcotest.(check bool) "x <= -5" true (Q.compare x.(0) (q (-5)) <= 0)
  | _ -> Alcotest.fail "feasible"

let test_simplex_degenerate () =
  (* Many redundant rows pinning the same point. *)
  let rows = 40 in
  let a = Array.init rows (fun i -> if i mod 2 = 0 then [| q 1 |] else [| q (-1) |]) in
  let b = Array.init rows (fun i -> if i mod 2 = 0 then q 7 else q (-7)) in
  match S.feasible ~a ~b with
  | S.Feasible x -> Alcotest.check rational "pinned" (q 7) x.(0)
  | _ -> Alcotest.fail "feasible"

let prop_simplex_random_feasible =
  QCheck.Test.make ~name:"random systems built around a known point" ~count:120 QCheck.unit
    (fun () ->
      (* Draw a point, then constraints that the point satisfies. *)
      let nv = 1 + Random.State.int st 4 in
      let m = 1 + Random.State.int st 25 in
      let point = Array.init nv (fun _ -> Q.of_ints (Random.State.int st 41 - 20) (1 + Random.State.int st 7)) in
      let a =
        Array.init m (fun _ -> Array.init nv (fun _ -> q (Random.State.int st 11 - 5)))
      in
      let b =
        Array.init m (fun i ->
            let v = ref Q.zero in
            Array.iteri (fun j c -> v := Q.add !v (Q.mul c point.(j))) a.(i);
            Q.add !v (Q.of_ints (Random.State.int st 5) 3))
      in
      feasible_point a b (S.feasible ~a ~b))

let prop_simplex_farkas =
  QCheck.Test.make ~name:"contradictory band is infeasible" ~count:100 QCheck.unit (fun () ->
      (* a.x <= c and -a.x <= -(c + gap) with gap > 0 cannot both hold. *)
      let nv = 1 + Random.State.int st 3 in
      let coeff = Array.init nv (fun _ -> q (1 + Random.State.int st 5)) in
      let c = q (Random.State.int st 10) in
      let a = [| coeff; Array.map Q.neg coeff |] in
      let b = [| c; Q.sub (Q.neg c) Q.one |] in
      S.feasible ~a ~b = S.Infeasible)

(* ------------------------------------------------------------------ *)
(* Revised vs reference, and the warm-started state.                   *)
(* ------------------------------------------------------------------ *)

let random_system ?(nv_max = 4) ?(m_max = 25) () =
  let nv = 1 + Random.State.int st nv_max in
  let m = 1 + Random.State.int st m_max in
  let a = Array.init m (fun _ -> Array.init nv (fun _ -> q (Random.State.int st 11 - 5))) in
  let b =
    Array.init m (fun _ -> Q.of_ints (Random.State.int st 21 - 10) (1 + Random.State.int st 4))
  in
  (a, b)

let same_outcome r1 r2 =
  match (r1, r2) with
  | S.Feasible x, S.Feasible y -> Array.for_all2 Q.equal x y
  | S.Infeasible, S.Infeasible | S.Unknown, S.Unknown -> true
  | _ -> false

let same_verdict r1 r2 =
  match (r1, r2) with
  | S.Feasible _, S.Feasible _ | S.Infeasible, S.Infeasible | S.Unknown, S.Unknown -> true
  | _ -> false

(* The revised kernel must replay the dense tableau *exactly*: same
   verdict and the same returned point (bit-identical tables depend on
   this). *)
let prop_revised_replays_reference =
  QCheck.Test.make ~name:"revised = dense reference (outcome and point)" ~count:300
    QCheck.unit (fun () ->
      let a, b = random_system () in
      same_outcome (S.feasible ~a ~b) (S.feasible_reference ~a ~b))

let prop_revised_replays_reference_small_refactor =
  QCheck.Test.make ~name:"replay holds across refactorization boundaries" ~count:120
    QCheck.unit (fun () ->
      let saved = !S.refactor_interval in
      S.refactor_interval := 1 + Random.State.int st 3;
      let a, b = random_system () in
      let ok = same_outcome (S.feasible ~a ~b) (S.feasible_reference ~a ~b) in
      S.refactor_interval := saved;
      ok)

(* Klee-Minty-flavoured degenerate stack: many tight, redundant rows
   around one vertex — the classic cycling trap Bland's rule avoids. *)
let test_degenerate_cycling_guard () =
  let nv = 3 in
  let rows = ref [] in
  for i = 0 to nv - 1 do
    let r = Array.make nv Q.zero in
    r.(i) <- Q.one;
    rows := (Array.copy r, Q.zero) :: !rows;
    r.(i) <- Q.minus_one;
    rows := (r, Q.zero) :: !rows
  done;
  (* Redundant combinations of the tight rows, all through the origin. *)
  for k = 0 to 9 do
    let r = Array.init nv (fun j -> q (((k + j) mod 5) - 2)) in
    rows := (r, Q.zero) :: !rows
  done;
  let rows = Array.of_list !rows in
  let a = Array.map fst rows and b = Array.map snd rows in
  (match S.feasible ~a ~b with
  | S.Feasible x -> Array.iter (fun v -> Alcotest.check rational "origin" Q.zero v) x
  | _ -> Alcotest.fail "degenerate system is feasible (origin)");
  Alcotest.(check bool) "matches reference" true
    (same_outcome (S.feasible ~a ~b) (S.feasible_reference ~a ~b))

(* Regression: the original dense kernel initialized the phase-1
   criterion row to the z-row (artificial entries 1) rather than z - c
   (0), overstating a departed artificial's reduced cost by 1; the
   artificial could wrongly re-enter, corrupting the "objective rhs =
   artificial sum" invariant, and this two-row system — y >= 3/4 and
   y <= -2/3 — came back Feasible.  Artificials are now barred from
   re-entering (in both kernels). *)
let test_artificial_reentry_soundness () =
  let a = [| [| q 0; q (-4); q 0 |]; [| q 0; q 1; q 0 |] |] in
  let b = [| q (-3); Q.of_ints (-2) 3 |] in
  Alcotest.(check bool) "reference sound" true (S.feasible_reference ~a ~b = S.Infeasible);
  Alcotest.(check bool) "revised sound" true (S.feasible ~a ~b = S.Infeasible);
  let stt = S.create ~nv:3 in
  Array.iteri (fun i row -> ignore (S.add_row stt row b.(i))) a;
  Alcotest.(check bool) "warm sound" true (S.solve stt = S.Infeasible)

let test_infeasible_variants () =
  (* Plain contradiction. *)
  let a = [| [| q 2; q 3 |]; [| q (-2); q (-3) |] |] in
  let b = [| q 1; q (-2) |] in
  Alcotest.(check bool) "band" true (S.feasible ~a ~b = S.Infeasible);
  (* Infeasibility only visible through a combination of three rows. *)
  let a = [| [| q 1; q 1 |]; [| q 1; q (-1) |]; [| q (-1); q 0 |] |] in
  let b = [| q 0; q 0; q (-1) |] in
  Alcotest.(check bool) "triple" true (S.feasible ~a ~b = S.Infeasible)

let warm_of_system a b =
  let stt = S.create ~nv:(Array.length a.(0)) in
  Array.iteri (fun i row -> ignore (S.add_row stt row b.(i))) a;
  stt

let test_warm_basic () =
  let a = [| [| q 1 |]; [| q (-1) |] |] and b = [| q 3; q (-1) |] in
  let stt = warm_of_system a b in
  Alcotest.(check bool) "feasible" true (feasible_point a b (S.solve stt));
  (* Tighten to infeasible via set_rhs, then loosen back. *)
  S.set_rhs stt 0 (q 0);
  Alcotest.(check bool) "tightened" true (S.solve stt = S.Infeasible);
  S.set_rhs stt 0 (q 3);
  Alcotest.(check bool) "loosened" true (feasible_point a b (S.solve stt))

let test_warm_drop_rows () =
  let a = [| [| q 1; q 0 |]; [| q 0; q 1 |]; [| q (-1); q 0 |]; [| q (-1); q (-1) |] |] in
  let b = [| q 2; q 2; q (-1); q (-10) |] in
  let stt = warm_of_system a b in
  Alcotest.(check bool) "over-constrained infeasible" true (S.solve stt = S.Infeasible);
  (* Dropping the contradictory row restores feasibility. *)
  S.drop_rows stt ~keep:(fun i -> i <> 3);
  let a' = [| a.(0); a.(1); a.(2) |] and b' = [| b.(0); b.(1); b.(2) |] in
  Alcotest.(check bool) "after drop" true (feasible_point a' b' (S.solve stt));
  Alcotest.(check int) "row count" 3 (S.nrows stt)

(* The differential suite the issue asks for: grow a random system row
   by row; after every edit the warm verdict must equal a cold solve of
   the same system.  Also exercises copy + drop_rows divergence. *)
let prop_warm_equals_cold_grown =
  QCheck.Test.make ~name:"warm solve = cold solve on grown systems" ~count:120 QCheck.unit
    (fun () ->
      let nv = 1 + Random.State.int st 3 in
      let stt = S.create ~nv in
      let rows = ref [] in
      let steps = 3 + Random.State.int st 12 in
      let ok = ref true in
      for _ = 1 to steps do
        let row = Array.init nv (fun _ -> q (Random.State.int st 9 - 4)) in
        let rhs = Q.of_ints (Random.State.int st 15 - 7) (1 + Random.State.int st 3) in
        ignore (S.add_row stt row rhs);
        rows := (row, rhs) :: !rows;
        let sys = Array.of_list (List.rev !rows) in
        let a = Array.map fst sys and b = Array.map snd sys in
        let warm = S.solve stt and cold = S.feasible ~a ~b in
        (match warm with
        | S.Feasible x ->
            Array.iteri
              (fun i r ->
                let v = ref Q.zero in
                Array.iteri (fun j c -> v := Q.add !v (Q.mul c x.(j))) r;
                if Q.compare !v b.(i) > 0 then ok := false)
              a
        | _ -> ());
        if not (same_verdict warm cold) then ok := false
      done;
      !ok)

let prop_warm_drop_rows_random =
  QCheck.Test.make ~name:"drop_rows keeps warm = cold" ~count:80 QCheck.unit (fun () ->
      let nv = 1 + Random.State.int st 3 in
      let m = 4 + Random.State.int st 12 in
      let a = Array.init m (fun _ -> Array.init nv (fun _ -> q (Random.State.int st 9 - 4))) in
      let b = Array.init m (fun _ -> Q.of_ints (Random.State.int st 15 - 7) (1 + Random.State.int st 3)) in
      let stt = warm_of_system a b in
      ignore (S.solve stt);
      (* Keep a random subset (the copy keeps solving the full system). *)
      let keep = Array.init m (fun _ -> Random.State.bool st) in
      if not (Array.exists Fun.id keep) then keep.(0) <- true;
      let clone = S.copy stt in
      S.drop_rows stt ~keep:(fun i -> keep.(i));
      let idx = ref [] in
      for i = m - 1 downto 0 do
        if keep.(i) then idx := i :: !idx
      done;
      let idx = Array.of_list !idx in
      let a' = Array.map (fun i -> a.(i)) idx and b' = Array.map (fun i -> b.(i)) idx in
      same_verdict (S.solve stt) (S.feasible ~a:a' ~b:b')
      && same_verdict (S.solve clone) (S.feasible ~a ~b))

(* ------------------------------------------------------------------ *)
(* Polyfit.                                                            *)
(* ------------------------------------------------------------------ *)

let cons_of_fn f ?(tol = 1e-9) pts = Array.of_list (List.map (fun r -> { P.r; lo = f r -. tol; hi = f r +. tol; lo_open = false; hi_open = false }) pts)

let validate terms coeffs cons =
  Array.iter
    (fun { P.r; lo; hi; _ } ->
      let v = Q.to_float (P.eval_exact ~terms coeffs r) in
      if not (v >= lo -. 1e-12 && v <= hi +. 1e-12) then Alcotest.failf "violated at %h" r)
    cons

let test_fit_cubic () =
  let f x = 1.0 +. (0.5 *. x) -. (0.25 *. x *. x *. x) in
  let pts = List.init 200 (fun i -> float_of_int i /. 200.0) in
  let cons = cons_of_fn f pts in
  match P.fit ~terms:[| 0; 1; 2; 3 |] cons with
  | Some c -> validate [| 0; 1; 2; 3 |] c cons
  | None -> Alcotest.fail "cubic fit failed"

let test_fit_odd_structure () =
  let f x = x -. (x *. x *. x /. 6.0) in
  let pts = List.init 150 (fun i -> float_of_int (i + 1) /. 300.0) in
  let cons = cons_of_fn ~tol:1e-7 f pts in
  match P.fit ~terms:[| 1; 3 |] cons with
  | Some c -> validate [| 1; 3 |] c cons
  | None -> Alcotest.fail "odd fit failed"

let test_fit_infeasible () =
  let cons =
    [| { P.r = 0.5; lo = 1.0; hi = 2.0; lo_open = false; hi_open = false }; { P.r = 0.5; lo = 3.0; hi = 4.0; lo_open = false; hi_open = false } |]
  in
  Alcotest.(check bool) "contradiction" true (P.fit ~terms:[| 0; 1 |] cons = None);
  (* Quadratic data cannot be matched by a line at 1e-9 tolerance. *)
  let parab = cons_of_fn (fun x -> x *. x) (List.init 9 (fun i -> float_of_int i /. 8.0)) in
  Alcotest.(check bool) "degree too low" true (P.fit ~terms:[| 0; 1 |] parab = None)

let test_fit_tiny_domain_scaling () =
  (* Scaling must handle r ~ 2^-40 without conditioning collapse. *)
  let f x = 1.0 +. x in
  let pts = List.init 60 (fun i -> Float.ldexp (1.0 +. (float_of_int i /. 64.0)) (-40)) in
  let cons = cons_of_fn ~tol:1e-20 f pts in
  match P.fit ~terms:[| 0; 1; 2 |] cons with
  | Some c -> validate [| 0; 1; 2 |] c cons
  | None -> Alcotest.fail "tiny-domain fit failed"

let test_eval_exact () =
  let c = [| Q.of_int 2; Q.of_ints 1 2 |] in
  Alcotest.check rational "2 + x/2 at 3" (Q.of_ints 7 2) (P.eval_exact ~terms:[| 0; 1 |] c 3.0);
  let codd = [| Q.one; Q.of_int 2 |] in
  Alcotest.check rational "x + 2x^3 at 2" (Q.of_int 18) (P.eval_exact ~terms:[| 1; 3 |] codd 2.0)

let prop_fit_random_poly =
  QCheck.Test.make ~name:"recovers random polynomials within tolerance" ~count:25 QCheck.unit
    (fun () ->
      let deg = 1 + Random.State.int st 3 in
      let coeffs = Array.init (deg + 1) (fun _ -> Random.State.float st 4.0 -. 2.0) in
      let f x =
        let acc = ref 0.0 in
        Array.iteri (fun i c -> acc := !acc +. (c *. Float.pow x (float_of_int i))) coeffs;
        !acc
      in
      let pts = List.init 80 (fun i -> float_of_int i /. 80.0) in
      let cons = cons_of_fn ~tol:1e-6 f pts in
      let terms = Array.init (deg + 1) (fun i -> i) in
      match P.fit ~terms cons with
      | Some c ->
          Array.for_all
            (fun { P.r; lo; hi; _ } ->
              let v = Q.to_float (P.eval_exact ~terms c r) in
              v >= lo -. 1e-9 && v <= hi +. 1e-9)
            cons
      | None -> false)

(* Simplex is deterministic: same input, same answer (Bland's rule has
   no randomness; this pins it). *)
let prop_simplex_deterministic =
  QCheck.Test.make ~name:"deterministic" ~count:50 QCheck.unit (fun () ->
      let nv = 1 + Random.State.int st 3 in
      let m = 1 + Random.State.int st 10 in
      let a = Array.init m (fun _ -> Array.init nv (fun _ -> q (Random.State.int st 9 - 4))) in
      let b = Array.init m (fun _ -> q (Random.State.int st 9 - 4)) in
      let same r1 r2 =
        match (r1, r2) with
        | S.Feasible x, S.Feasible y -> Array.for_all2 Q.equal x y
        | S.Infeasible, S.Infeasible | S.Unknown, S.Unknown -> true
        | _ -> false
      in
      same (S.feasible ~a ~b) (S.feasible ~a ~b))

(* Polynomial fitting is scale-covariant: scaling all inputs by 2^k and
   fitting yields a polynomial making the same predictions at the scaled
   points. *)
let test_fit_scale_covariant () =
  let f x = 0.5 +. (2.0 *. x) in
  let pts = List.init 50 (fun i -> float_of_int (i + 1) /. 64.0) in
  let cons k =
    Array.of_list
      (List.map
         (fun r0 ->
           let r = Float.ldexp r0 k in
           { P.r; lo = f r0 -. 1e-9; hi = f r0 +. 1e-9; lo_open = false; hi_open = false })
         pts)
  in
  match (P.fit ~terms:[| 0; 1 |] (cons 0), P.fit ~terms:[| 0; 1 |] (cons (-20))) with
  | Some c0, Some c1 ->
      List.iter
        (fun r0 ->
          let v0 = Q.to_float (P.eval_exact ~terms:[| 0; 1 |] c0 r0) in
          let v1 = Q.to_float (P.eval_exact ~terms:[| 0; 1 |] c1 (Float.ldexp r0 (-20))) in
          if Float.abs (v0 -. v1) > 1e-8 then Alcotest.failf "scale mismatch at %h" r0)
        pts
  | _ -> Alcotest.fail "fits failed"

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "1d interval" `Quick test_simplex_1d;
          Alcotest.test_case "equality via band" `Quick test_simplex_equality_like;
          Alcotest.test_case "negative solution" `Quick test_simplex_negative_solution;
          Alcotest.test_case "degenerate rows" `Quick test_simplex_degenerate;
        ] );
      qsuite "simplex-properties"
        [ prop_simplex_random_feasible; prop_simplex_farkas; prop_simplex_deterministic ];
      ( "simplex-revised",
        [
          Alcotest.test_case "degenerate cycling guard" `Quick test_degenerate_cycling_guard;
          Alcotest.test_case "artificial re-entry soundness" `Quick test_artificial_reentry_soundness;
          Alcotest.test_case "infeasible variants" `Quick test_infeasible_variants;
          Alcotest.test_case "warm basic" `Quick test_warm_basic;
          Alcotest.test_case "warm drop rows" `Quick test_warm_drop_rows;
        ] );
      qsuite "simplex-replay"
        [ prop_revised_replays_reference; prop_revised_replays_reference_small_refactor ];
      qsuite "simplex-warm" [ prop_warm_equals_cold_grown; prop_warm_drop_rows_random ];
      ( "polyfit",
        [
          Alcotest.test_case "cubic" `Quick test_fit_cubic;
          Alcotest.test_case "odd structure" `Quick test_fit_odd_structure;
          Alcotest.test_case "infeasible" `Quick test_fit_infeasible;
          Alcotest.test_case "tiny-domain scaling" `Quick test_fit_tiny_domain_scaling;
          Alcotest.test_case "eval_exact" `Quick test_eval_exact;
          Alcotest.test_case "scale covariant" `Quick test_fit_scale_covariant;
        ] );
      qsuite "polyfit-properties" [ prop_fit_random_poly ];
    ]
