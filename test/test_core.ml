(* Core pipeline: rounding intervals, domain splitting, polynomial
   evaluation, counterexample-guided generation, reduced intervals. *)

module Q = Rational
module R = Fp.Representation
open Test_util

let st = rand 7

(* ------------------------------------------------------------------ *)
(* Rounding intervals (Algorithm 1).                                   *)
(* ------------------------------------------------------------------ *)

(* The defining property, checked at the endpoints and just outside;
   interval membership is up to the sign of zero (value equality). *)
let interval_property (module T : R.S) y =
  let same p = pattern_value_equal (module T) p y in
  let iv = Rlibm.Rounding.interval (module T) y in
  if not (same (T.of_double iv.lo)) then Alcotest.failf "lo not in interval for %x" y;
  if not (same (T.of_double iv.hi)) then Alcotest.failf "hi not in interval for %x" y;
  let below = Fp.Fp64.next_down iv.lo and above = Fp.Fp64.next_up iv.hi in
  if Float.is_finite below && same (T.of_double below) then Alcotest.failf "lo not minimal for %x" y;
  if Float.is_finite above && same (T.of_double above) then Alcotest.failf "hi not maximal for %x" y

let test_rounding_intervals_bf16 () =
  for p = 0 to 65535 do
    if p mod 17 = 0 && Fp.Bfloat16.classify p = R.Finite then
      interval_property (module Fp.Bfloat16) p
  done

let test_rounding_intervals_f32 () =
  for _ = 1 to 400 do
    let p = Random.State.full_int st (1 lsl 30) lor (Random.State.int st 4 lsl 30) in
    if Fp.Fp32.classify p = R.Finite then interval_property (module Fp.Fp32) p
  done

let test_rounding_intervals_posit () =
  for _ = 1 to 400 do
    let p = Random.State.full_int st (1 lsl 30) lor (Random.State.int st 4 lsl 30) in
    if Posit.Posit32.classify p = R.Finite then interval_property (module Posit.Posit32) p
  done;
  (* maxpos has a one-sided-unbounded interval ending at the largest double *)
  let iv = Rlibm.Rounding.interval (module Posit.Posit32) 0x7FFFFFFF in
  Alcotest.(check (float 0.0)) "maxpos interval top" Float.max_float iv.hi

let test_search_max () =
  Alcotest.(check int) "all true" 100 (Rlibm.Rounding.search_max (fun _ -> true) 100);
  Alcotest.(check int) "threshold" 37 (Rlibm.Rounding.search_max (fun k -> k <= 37) 1000000);
  Alcotest.(check int) "only zero" 0 (Rlibm.Rounding.search_max (fun k -> k = 0) 1000000)

(* ------------------------------------------------------------------ *)
(* Splitting.                                                          *)
(* ------------------------------------------------------------------ *)

let test_splitting_basics () =
  let hull = (Float.ldexp 1.0 (-20), Float.ldexp 1.0 (-10)) in
  let s = Rlibm.Splitting.make ~hull ~nbits:4 in
  Alcotest.(check int) "16 subdomains" 16 (Rlibm.Splitting.n_subdomains s);
  (* Index is monotone over the hull. *)
  let prev = ref (-1) in
  for i = 0 to 1000 do
    let r = Float.ldexp (1.0 +. (float_of_int i /. 1001.0)) (-15) in
    let idx = Rlibm.Splitting.index s r in
    if idx < !prev then Alcotest.fail "index not monotone";
    prev := max !prev idx;
    if idx < 0 || idx > 15 then Alcotest.fail "index out of range"
  done;
  (* Outside the hull clamps. *)
  Alcotest.(check int) "clamp low" (Rlibm.Splitting.index s (Float.ldexp 1.0 (-20)))
    (Rlibm.Splitting.index s 0.0);
  Alcotest.(check int) "clamp high" (Rlibm.Splitting.index s (Float.ldexp 1.0 (-10)))
    (Rlibm.Splitting.index s 1.0)

let test_splitting_negative_hull () =
  let hull = (-0.0078125, -.Float.ldexp 1.0 (-40)) in
  let s = Rlibm.Splitting.make ~hull ~nbits:3 in
  (* Monotone in magnitude for negatives. *)
  let i_small = Rlibm.Splitting.index s (-.Float.ldexp 1.0 (-39)) in
  let i_big = Rlibm.Splitting.index s (-0.0078) in
  Alcotest.(check bool) "magnitude order" true (i_small <= i_big)

let test_splitting_single_point () =
  let r = 0.25 in
  let s = Rlibm.Splitting.make ~hull:(r, r) ~nbits:5 in
  Alcotest.(check int) "degenerate hull -> 1 subdomain" 1 (Rlibm.Splitting.n_subdomains s);
  Alcotest.(check int) "index" 0 (Rlibm.Splitting.index s r)

(* Generation-time bucketing always matches run-time indexing. *)
let prop_split_consistency =
  QCheck.Test.make ~name:"index stable across calls" ~count:2000 QCheck.unit (fun () ->
      let s = Rlibm.Splitting.make ~hull:(Float.ldexp 1.0 (-60), 0.0078125) ~nbits:5 in
      let r = Float.ldexp (Random.State.float st 1.0 +. 1.0) (-(8 + Random.State.int st 50)) in
      let i = Rlibm.Splitting.index s r in
      i >= 0 && i < 32 && i = Rlibm.Splitting.index s r)

(* ------------------------------------------------------------------ *)
(* Polyeval.                                                           *)
(* ------------------------------------------------------------------ *)

let naive terms coeffs r =
  let acc = ref 0.0 in
  Array.iteri (fun i e -> acc := !acc +. (coeffs.(i) *. Float.pow r (float_of_int e))) terms;
  !acc

let prop_polyeval_close_to_naive =
  QCheck.Test.make ~name:"Horner close to naive power eval" ~count:3000 QCheck.unit (fun () ->
      let structures = [ [| 0; 1; 2; 3 |]; [| 1; 3; 5 |]; [| 0; 2; 4 |]; [| 1; 2; 3 |] ] in
      let terms = List.nth structures (Random.State.int st 4) in
      let coeffs = Array.map (fun _ -> Random.State.float st 4.0 -. 2.0) terms in
      let r = Random.State.float st 0.01 in
      let a = Rlibm.Polyeval.eval ~terms coeffs r and b = naive terms coeffs r in
      a = b || Float.abs (a -. b) <= 1e-12 *. Float.max 1.0 (Float.abs a))

let test_polyeval_exact_structure () =
  (* Odd structure at 0 is exactly +0. *)
  Alcotest.(check (float 0.0)) "odd at 0" 0.0 (Rlibm.Polyeval.eval ~terms:[| 1; 3; 5 |] [| 3.1; -2.0; 1.0 |] 0.0);
  (* Constant-led structure at 0 gives c0. *)
  Alcotest.(check (float 0.0)) "even at 0" 7.5 (Rlibm.Polyeval.eval ~terms:[| 0; 2; 4 |] [| 7.5; 1.0; 1.0 |] 0.0)

(* ------------------------------------------------------------------ *)
(* Polygen (Algorithm 4).                                              *)
(* ------------------------------------------------------------------ *)

let mk_cons f tol pts =
  Array.of_list
    (List.map (fun r -> { Rlibm.Reduced.r; lo = f r -. tol; hi = f r +. tol; lo_open = false; hi_open = false; mid = f r }) pts)

let test_polygen_simple () =
  let f r = 1.0 +. r +. (r *. r /. 2.0) in
  let cons = mk_cons f 1e-8 (List.init 500 (fun i -> float_of_int i /. 64000.0)) in
  match Rlibm.Polygen.gen ~cfg:Rlibm.Config.default ~terms:[| 0; 1; 2; 3 |] cons with
  | Rlibm.Polygen.Found c ->
      Array.iter
        (fun (x : Rlibm.Reduced.constr) ->
          let v = Rlibm.Polyeval.eval ~terms:[| 0; 1; 2; 3 |] c x.r in
          if not (v >= x.lo && v <= x.hi) then Alcotest.fail "constraint violated")
        cons
  | Rlibm.Polygen.No_polynomial -> Alcotest.fail "generation failed"

let test_polygen_infeasible () =
  (* |sin|-like data cannot be fitted by any polynomial of the structure
     when two constraints at the same r contradict. *)
  let cons =
    [|
      { Rlibm.Reduced.r = 0.001; lo = 0.5; hi = 0.6; lo_open = false; hi_open = false; mid = 0.55 };
      { Rlibm.Reduced.r = 0.001; lo = 0.7; hi = 0.8; lo_open = false; hi_open = false; mid = 0.75 };
    |]
  in
  Alcotest.(check bool)
    "contradiction"
    true
    (Rlibm.Polygen.gen ~cfg:Rlibm.Config.default ~terms:[| 0; 1 |] cons = Rlibm.Polygen.No_polynomial)

let test_polygen_counterexample_loop () =
  (* A tight "bump" away from the initial uniform sample forces the
     counterexample path: intervals are wide except one narrow pinch. *)
  let f r = r *. (1.0 +. (r *. r)) in
  let pts = List.init 2000 (fun i -> float_of_int (i + 1) /. 300000.0) in
  let cons =
    Array.of_list
      (List.mapi
         (fun i r ->
           let tol = if i = 1234 then 1e-13 else 1e-5 in
           { Rlibm.Reduced.r; lo = f r -. tol; hi = f r +. tol; lo_open = false; hi_open = false; mid = f r })
         pts)
  in
  match Rlibm.Polygen.gen ~cfg:Rlibm.Config.default ~terms:[| 1; 3 |] cons with
  | Rlibm.Polygen.Found c ->
      let x = cons.(1234) in
      let v = Rlibm.Polyeval.eval ~terms:[| 1; 3 |] c x.r in
      Alcotest.(check bool) "pinch satisfied" true (v >= x.lo && v <= x.hi)
  | Rlibm.Polygen.No_polynomial -> Alcotest.fail "should find a polynomial"

let test_tube_shrink () =
  (* Every rung keeps [mid] inside and never leaves the original box. *)
  let c = { Rlibm.Reduced.r = 0.01; lo = 1.0; hi = 1.0 +. 1e-6; lo_open = false; hi_open = false; mid = 1.0 +. 3e-7 } in
  List.iter
    (fun f ->
      let s = Rlibm.Polygen.shrink_by f c in
      Alcotest.(check bool) "mid inside" true (s.lo <= c.mid && c.mid <= s.hi);
      Alcotest.(check bool) "subset" true (s.lo >= c.lo && s.hi <= c.hi);
      (* Tube width ~ max(width/f, tube_ulps), up to 2x for centering. *)
      let budget = Float.max ((c.hi -. c.lo) /. f) (Float.ldexp 3e-7 (-45)) in
      Alcotest.(check bool) "tube bounded" true (s.hi -. s.lo <= (2.2 *. budget)))
    [ 65536.0; 1024.0; 16.0 ];
  (* A box narrower than the tube is returned intersected, nonempty. *)
  let narrow = { Rlibm.Reduced.r = 0.01; lo = 2.0; hi = Fp.Fp64.advance 2.0 1; lo_open = false; hi_open = false; mid = 2.0 } in
  let s2 = Rlibm.Polygen.shrink narrow in
  Alcotest.(check bool) "narrow box survives" true (s2.lo <= s2.hi)

(* ------------------------------------------------------------------ *)
(* Enumerate.                                                          *)
(* ------------------------------------------------------------------ *)

let test_enumerate () =
  Alcotest.(check int) "exhaustive16 size" 65536 (Array.length Rlibm.Enumerate.exhaustive16);
  let a = Rlibm.Enumerate.stratified32 ~per_stratum:4 () in
  let b = Rlibm.Enumerate.stratified32 ~per_stratum:4 () in
  Alcotest.(check int) "stratified size" (512 * 4) (Array.length a);
  Alcotest.(check bool) "deterministic" true (a = b);
  (* Every stratum is represented. *)
  let seen = Hashtbl.create 512 in
  Array.iter (fun p -> Hashtbl.replace seen (p lsr 23) ()) a;
  Alcotest.(check int) "all strata" 512 (Hashtbl.length seen);
  let r = Rlibm.Enumerate.range ~lo:10 ~hi:20 ~stride:5 in
  Alcotest.(check (array int)) "range" [| 10; 15; 20 |] r

(* ------------------------------------------------------------------ *)
(* Reduced intervals (Algorithm 2) via a tiny synthetic spec.          *)
(* ------------------------------------------------------------------ *)

(* f(x) = exp(x) over bfloat16 with the real reduction; check that the
   deduced box maps into the rounding interval under OC at its corners. *)
let test_reduced_box_property () =
  let spec = Funcs.Specs.exp Funcs.Specs.bfloat16 in
  let module T = Fp.Bfloat16 in
  let count = ref 0 in
  for p = 0 to 65535 do
    if !count < 300 && p mod 97 = 0 && spec.special p = None then begin
      incr count;
      let y =
        Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle (T.to_rational p)
      in
      let interval = Rlibm.Rounding.interval spec.repr y in
      match Rlibm.Reduced.deduce spec ~pattern:p ~interval with
      | Error _ -> Alcotest.failf "deduce failed at %04x" p
      | Ok (rr, cons) ->
          let lo = Array.map (fun (c : Rlibm.Reduced.constr) -> c.lo) cons in
          let hi = Array.map (fun (c : Rlibm.Reduced.constr) -> c.hi) cons in
          let inside v = Rlibm.Rounding.contains interval (spec.compensate rr v) in
          if not (inside lo) then Alcotest.failf "low corner escapes at %04x" p;
          if not (inside hi) then Alcotest.failf "high corner escapes at %04x" p
    end
  done

let () =
  Alcotest.run "core"
    [
      ( "rounding",
        [
          Alcotest.test_case "bfloat16 intervals" `Quick test_rounding_intervals_bf16;
          Alcotest.test_case "float32 intervals" `Quick test_rounding_intervals_f32;
          Alcotest.test_case "posit32 intervals" `Quick test_rounding_intervals_posit;
          Alcotest.test_case "search_max" `Quick test_search_max;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "basics" `Quick test_splitting_basics;
          Alcotest.test_case "negative hull" `Quick test_splitting_negative_hull;
          Alcotest.test_case "single point" `Quick test_splitting_single_point;
        ] );
      qsuite "splitting-properties" [ prop_split_consistency ];
      ( "polyeval",
        [ Alcotest.test_case "exact structure" `Quick test_polyeval_exact_structure ] );
      qsuite "polyeval-properties" [ prop_polyeval_close_to_naive ];
      ( "polygen",
        [
          Alcotest.test_case "simple" `Quick test_polygen_simple;
          Alcotest.test_case "infeasible" `Quick test_polygen_infeasible;
          Alcotest.test_case "counterexample loop" `Quick test_polygen_counterexample_loop;
          Alcotest.test_case "tube shrink" `Quick test_tube_shrink;
        ] );
      ("enumerate", [ Alcotest.test_case "enumerations" `Quick test_enumerate ]);
      ("reduced", [ Alcotest.test_case "box property" `Quick test_reduced_box_property ]);
    ]
