(* Posit codec: exhaustive posit16, randomized posit32, saturation and
   tie behavior per the posit standard. *)

module Q = Rational
module R = Fp.Representation
module P16 = Posit.Posit16
module P32 = Posit.Posit32
open Test_util

let st = rand 5

let test_p16_exhaustive () =
  for pat = 0 to 65535 do
    match P16.classify pat with
    | R.Nan -> Alcotest.(check int) "only NaR" 0x8000 pat
    | R.Inf _ -> Alcotest.fail "posits have no infinities"
    | R.Finite ->
        let d = P16.to_double pat in
        if P16.of_double d <> pat then Alcotest.failf "roundtrip %04x" pat;
        if pat <> 0 then begin
          let q = P16.to_rational pat in
          if Q.to_float q <> d then Alcotest.failf "rational %04x" pat;
          if P16.round_rational q <> pat then Alcotest.failf "round_rational %04x" pat
        end
  done

let test_p16_ties_to_even_pattern () =
  (* For every adjacent positive pair, the value midpoint rounds to the
     even pattern. *)
  let prev = ref None in
  for pat = 1 to 0x7FFE do
    (match !prev with
    | Some (p0, q0) ->
        let q1 = P16.to_rational pat in
        let mid = Q.mul_pow2 (Q.add q0 q1) (-1) in
        let expect = if p0 land 1 = 0 then p0 else pat in
        if P16.round_rational mid <> expect then Alcotest.failf "tie %04x/%04x" p0 pat
    | None -> ());
    prev := Some (pat, P16.to_rational pat)
  done

let test_p16_known_values () =
  Alcotest.(check int) "1.0" 0x4000 (P16.of_double 1.0);
  Alcotest.(check int) "-1.0" 0xC000 (P16.of_double (-1.0));
  Alcotest.(check int) "2.0" 0x5000 (P16.of_double 2.0);
  Alcotest.(check int) "0.5" 0x3000 (P16.of_double 0.5);
  Alcotest.(check (float 0.0)) "maxpos" (Float.ldexp 1.0 28) (P16.to_double 0x7FFF);
  Alcotest.(check (float 0.0)) "minpos" (Float.ldexp 1.0 (-28)) (P16.to_double 0x0001)

let test_p32_known_values () =
  Alcotest.(check int) "1.0" 0x40000000 (P32.of_double 1.0);
  Alcotest.(check int) "4.0" 0x50000000 (P32.of_double 4.0);
  Alcotest.(check (float 0.0)) "maxpos" (Float.ldexp 1.0 120) (P32.to_double 0x7FFFFFFF);
  Alcotest.(check (float 0.0)) "minpos" (Float.ldexp 1.0 (-120)) (P32.to_double 1);
  (* Near 1, posit32 has 27 fraction bits: ulp = 2^-27. *)
  Alcotest.(check (float 0.0)) "1+ulp" (1.0 +. Float.ldexp 1.0 (-27)) (P32.to_double 0x40000001)

let test_p32_saturation () =
  Alcotest.(check int) "overflow" 0x7FFFFFFF (P32.of_double 1e40);
  Alcotest.(check int) "neg overflow" 0x80000001 (P32.of_double (-1e40));
  Alcotest.(check int) "underflow to minpos" 1 (P32.of_double 1e-200);
  Alcotest.(check int) "neg underflow" 0xFFFFFFFF (P32.of_double (-1e-200));
  Alcotest.(check int) "inf is NaR" 0x80000000 (P32.of_double infinity);
  Alcotest.(check int) "nan is NaR" 0x80000000 (P32.of_double Float.nan);
  (* Exactly half of minpos still rounds to minpos (never to zero). *)
  Alcotest.(check int) "half minpos" 1 (P32.round_rational (Q.of_pow2 (-121)));
  Alcotest.(check int) "tiny" 1 (P32.round_rational (Q.of_pow2 (-4000)))

let prop_p32_roundtrip =
  QCheck.Test.make ~name:"posit32 roundtrip" ~count:30000 QCheck.unit (fun () ->
      let pat = Random.State.full_int st (1 lsl 30) lor (Random.State.int st 4 lsl 30) in
      match P32.classify pat with
      | R.Finite -> P32.of_double (P32.to_double pat) = pat
      | R.Nan -> true
      | R.Inf _ -> false)

let prop_p32_of_double_exact =
  QCheck.Test.make ~name:"of_double = round_rational" ~count:10000 QCheck.unit (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 300 - 150) in
      P32.of_double x = P32.round_rational (Q.of_float x))

let prop_p32_monotone =
  QCheck.Test.make ~name:"rounding is monotone" ~count:5000 QCheck.unit (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 280 - 140) in
      let y = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 280 - 140) in
      let a = P32.of_double x and b = P32.of_double y in
      if x <= y then P32.order_key a <= P32.order_key b else P32.order_key a >= P32.order_key b)

let prop_p16_vs_p32_precision =
  QCheck.Test.make ~name:"posit32 refines posit16" ~count:3000 QCheck.unit (fun () ->
      (* Rounding error of posit32 never exceeds posit16's on |x| in a
         shared regime range. *)
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 40 - 20) in
      if x = 0.0 then true
      else begin
        let e16 = Float.abs (P16.to_double (P16.of_double x) -. x) in
        let e32 = Float.abs (P32.to_double (P32.of_double x) -. x) in
        e32 <= e16
      end)

(* posit<8,0>: brutal exhaustive codec check — every pattern, every
   adjacent-pair midpoint. *)
let test_p8_exhaustive () =
  let module P8 = Posit.Posit8 in
  for pat = 0 to 255 do
    match P8.classify pat with
    | R.Nan -> Alcotest.(check int) "only NaR" 0x80 pat
    | R.Inf _ -> Alcotest.fail "posits have no infinities"
    | R.Finite ->
        let d = P8.to_double pat in
        if P8.of_double d <> pat then Alcotest.failf "roundtrip %02x" pat;
        if pat <> 0 && P8.round_rational (P8.to_rational pat) <> pat then
          Alcotest.failf "round_rational %02x" pat
  done;
  Alcotest.(check (float 0.0)) "maxpos = 64" 64.0 (P8.to_double 0x7F);
  Alcotest.(check (float 0.0)) "minpos = 1/64" (1.0 /. 64.0) (P8.to_double 0x01);
  (* tie-to-even-pattern across all adjacent positive pairs *)
  let prev = ref None in
  for pat = 1 to 0x7E do
    (match !prev with
    | Some (p0, q0) ->
        let q1 = P8.to_rational pat in
        let mid = Q.mul_pow2 (Q.add q0 q1) (-1) in
        let expect = if p0 land 1 = 0 then p0 else pat in
        if P8.round_rational mid <> expect then Alcotest.failf "tie %02x/%02x" p0 pat
    | None -> ());
    prev := Some (pat, P8.to_rational pat)
  done

(* Exhaustive: posit16 order_key sorts patterns exactly by value. *)
let test_p16_order_exhaustive () =
  let finite = ref [] in
  for pat = 65535 downto 0 do
    if P16.classify pat = R.Finite then finite := pat :: !finite
  done;
  let by_key = List.sort (fun a b -> compare (P16.order_key a) (P16.order_key b)) !finite in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        if not (P16.to_double a < P16.to_double b || (P16.to_double a = 0.0 && P16.to_double b = 0.0))
        then Alcotest.failf "order violated: %04x %04x" a b;
        walk rest
    | _ -> ()
  in
  walk by_key

(* ------------------------------------------------------------------ *)
(* Codec round-trip and saturation properties (qcheck).                *)
(* ------------------------------------------------------------------ *)

(* decode∘encode = id on every finite pattern: going out to the exact
   double value and rounding back must reproduce the pattern bits. *)
let prop_pattern_roundtrip (module P : R.S) nbits name =
  QCheck.Test.make ~name ~count:20000 QCheck.unit (fun () ->
      let pat = Random.State.int st (1 lsl nbits) in
      match P.classify pat with
      | R.Nan -> true
      | R.Inf _ -> false (* posits have no infinities *)
      | R.Finite ->
          P.of_double (P.to_double pat) = pat
          && (pat = 0 || P.round_rational (P.to_rational pat) = pat))

let prop_p8_pattern_roundtrip =
  prop_pattern_roundtrip (module Posit.Posit8) 8 "posit8 decode∘encode = id"

let prop_p16_pattern_roundtrip =
  prop_pattern_roundtrip (module Posit.Posit16) 16 "posit16 decode∘encode = id"

(* Saturation at the extremes: magnitudes past maxpos round to maxpos
   (never NaR or a wrapped pattern), nonzero magnitudes below minpos
   round to minpos (never to zero). *)
let prop_saturation (module P : R.S) nbits name =
  let maxpos = (1 lsl (nbits - 1)) - 1 and nar = 1 lsl (nbits - 1) in
  QCheck.Test.make ~name ~count:5000 QCheck.unit (fun () ->
      let huge = Float.ldexp (1.0 +. Random.State.float st 1.0) (Random.State.int st 300 + 300) in
      let tiny = Float.ldexp (1.0 +. Random.State.float st 1.0) (-(Random.State.int st 300 + 300)) in
      P.of_double huge = maxpos
      && P.of_double (-.huge) = (1 lsl nbits) - maxpos
      && P.of_double tiny = 1
      && P.of_double (-.tiny) = (1 lsl nbits) - 1
      && P.of_double Float.nan = nar)

let prop_p8_saturation = prop_saturation (module Posit.Posit8) 8 "posit8 saturation at extremes"
let prop_p16_saturation = prop_saturation (module Posit.Posit16) 16 "posit16 saturation at extremes"

let () =
  Alcotest.run "posit"
    [
      ( "posit8", [ Alcotest.test_case "exhaustive" `Quick test_p8_exhaustive ] );
      ( "posit16",
        [
          Alcotest.test_case "exhaustive" `Quick test_p16_exhaustive;
          Alcotest.test_case "order key exhaustive" `Quick test_p16_order_exhaustive;
          Alcotest.test_case "ties to even pattern" `Quick test_p16_ties_to_even_pattern;
          Alcotest.test_case "known values" `Quick test_p16_known_values;
        ] );
      ( "posit32",
        [
          Alcotest.test_case "known values" `Quick test_p32_known_values;
          Alcotest.test_case "saturation" `Quick test_p32_saturation;
        ] );
      qsuite "properties"
        [ prop_p32_roundtrip; prop_p32_of_double_exact; prop_p32_monotone; prop_p16_vs_p32_precision ];
      qsuite "codec-roundtrip-properties"
        [ prop_p8_pattern_roundtrip; prop_p16_pattern_roundtrip; prop_p8_saturation; prop_p16_saturation ];
    ]
