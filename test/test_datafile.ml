(* The versioned run datafile: round-trip (property and example),
   refusal of truncated/corrupted/future files, the paranoid merge
   rejection matrix, diff polarity, the legacy BENCH_<rev>.json lift
   over every committed baseline, and the 2-shard-vs-1-shard campaign
   byte-identity the schema exists to guarantee. *)

module D = Datafile

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_err name subs = function
  | Ok _ -> Alcotest.fail (name ^ ": accepted")
  | Error msg ->
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S in %S" name sub msg)
            true (contains sub msg))
        subs

(* ------------------------------------------------------------------ *)
(* Fixtures.                                                           *)
(* ------------------------------------------------------------------ *)

let row ?span ?(kind = "sweep") ?(func = "log2") ?(repr = "bfloat16") ?(mode = "rne")
    ?(identity = "id") ?(tables_hash = "fnv1a:00000000deadbeef") ?(metrics = [ ("sweep.fast", 7.0) ])
    ?(mismatches = [||]) ?(quarantined = [||]) () =
  { D.kind; func; repr; mode; identity; tables_hash; span; metrics; mismatches; quarantined }

let file ?(rev = "abc1234") ?(date = "2026-08-09T00:00:00Z") ?seed ?(config = "cfg")
    ?(host = Some { D.jobs = 4; cpus = 8; ocaml = "5.1.1" }) rows =
  { D.rev; date; seed; config; host; rows }

let sample () =
  file ~seed:42
    [
      row ~span:{ D.lo = 0; hi = 100; n_items = 100; chunk_size = 10 }
        ~metrics:[ ("sweep.fast", 93.0); ("sweep.escalated", 7.0); ("sweep.wall_seconds", 0.25) ]
        ~mismatches:[| { D.pattern = 0x3f80; got = 1; want = 2 } |]
        ~quarantined:[| (10, 20, "lp timeout") |]
        ();
      row ~kind:"serve" ~func:"exp" ~identity:"" ~metrics:[ ("serve.calls_per_sec", 1.5e8) ] ();
    ]

(* ------------------------------------------------------------------ *)
(* Round-trip.                                                         *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_example () =
  let t = sample () in
  match D.of_string (D.to_string t) with
  | Error msg -> Alcotest.fail msg
  | Ok t' -> Alcotest.(check bool) "round-trip equal" true (D.equal t t')

(* Strings exercise every escape class: quote, backslash, newline, tab,
   control byte, a high (non-UTF-8) byte. *)
let nasty_string =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'Z'; '0'; ' '; '"'; '\\'; '\n'; '\t'; '\x01'; '\xff'; '/' ])
      (int_bound 12))

let finite_float =
  QCheck.Gen.(
    map2 (fun m e -> ldexp (float_of_int m) e) (int_range (-1_000_000) 1_000_000) (int_range (-60) 60))

let gen_row =
  QCheck.Gen.(
    let* kind = oneofl [ "bench"; "sweep"; "campaign"; "serve"; "generate" ] in
    let* func = nasty_string in
    let* identity = nasty_string in
    let* span =
      oneof
        [
          return None;
          (let* lo = int_bound 50 in
           let* len = int_range 1 50 in
           return (Some { D.lo; hi = lo + len; n_items = 128; chunk_size = 8 }));
        ]
    in
    let* metrics = list_size (int_bound 6) (pair nasty_string finite_float) in
    let* mismatches =
      array_size (int_bound 3)
        (let* pattern = int_bound 0xffff in
         let* got = int_bound 0xffff in
         let* want = int_bound 0xffff in
         return { D.pattern; got; want })
    in
    let* quarantined =
      array_size (int_bound 3)
        (let* lo = int_bound 100 in
         let* len = int_range 1 10 in
         let* msg = nasty_string in
         return (lo, lo + len, msg))
    in
    return
      {
        D.kind;
        func;
        repr = "bfloat16";
        mode = "rne";
        identity;
        tables_hash = "";
        span;
        metrics;
        mismatches;
        quarantined;
      })

let gen_datafile =
  QCheck.Gen.(
    let* rev = nasty_string in
    let* date = nasty_string in
    let* seed = opt (int_bound 1000) in
    let* config = nasty_string in
    let* host =
      opt
        (let* jobs = int_range 1 64 in
         let* cpus = int_range 1 64 in
         let* ocaml = nasty_string in
         return { D.jobs; cpus; ocaml })
    in
    let* rows = list_size (int_bound 4) gen_row in
    return { D.rev; date; seed; config; host; rows })

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"to_string/of_string round-trip (bitwise)"
    (QCheck.make gen_datafile) (fun t ->
      match D.of_string (D.to_string t) with
      | Ok t' -> D.equal t t'
      | Error msg -> QCheck.Test.fail_report msg)

let test_write_refuses_nonfinite () =
  let t = file [ row ~metrics:[ ("sweep.bad", Float.nan) ] () ] in
  match D.to_string t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN metric serialized"

(* ------------------------------------------------------------------ *)
(* Refusals on read.                                                   *)
(* ------------------------------------------------------------------ *)

let test_truncation_refused () =
  let s = D.to_string (sample ()) in
  (* Every proper prefix must be refused — never silently decoded. *)
  List.iter
    (fun keep ->
      let cut = String.sub s 0 (String.length s * keep / 100) in
      match D.of_string cut with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %d%% prefix" keep)
      | Error _ -> ())
    [ 10; 50; 90; 99 ]

let test_corruption_refused () =
  let s = Bytes.of_string (D.to_string (sample ())) in
  (* Flip a digit inside a metric value: still valid JSON, wrong bytes. *)
  let i = ref (-1) in
  Bytes.iteri (fun j c -> if !i < 0 && c = '9' then i := j) s;
  Bytes.set s !i '8';
  check_err "bit flip" [ "checksum mismatch" ] (D.of_string (Bytes.to_string s))

let test_future_version_refused () =
  let s = D.to_string (sample ()) in
  let needle = Printf.sprintf "\"schema_version\": %d" D.schema_version in
  let fresh =
    let rec find i =
      if i + String.length needle > String.length s then Alcotest.fail "no version field"
      else if String.sub s i (String.length needle) = needle then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub s 0 i
    ^ Printf.sprintf "\"schema_version\": %d" (D.schema_version + 1)
    ^ String.sub s (i + String.length needle) (String.length s - i - String.length needle)
  in
  check_err "future version" [ "unsupported schema version" ] (D.of_string fresh)

let test_garbage_refused () =
  check_err "garbage" [ "datafile" ] (D.of_string "{ \"rev\": \"x\" }")

(* ------------------------------------------------------------------ *)
(* Merge rejection matrix.                                             *)
(* ------------------------------------------------------------------ *)

let span lo hi = Some { D.lo; hi; n_items = 100; chunk_size = 10 }

let test_merge_two_shards () =
  let r1 =
    row ~span:(Option.get (span 0 50))
      ~metrics:[ ("fast", 40.0); ("busy_seconds", 1.5) ]
      ~mismatches:[| { D.pattern = 3; got = 1; want = 2 } |]
      ~quarantined:[| (4, 5, "a") |]
      ()
  in
  let r2 =
    row ~span:(Option.get (span 50 100))
      ~metrics:[ ("fast", 53.0); ("busy_seconds", 2.5) ]
      ~mismatches:[| { D.pattern = 77; got = 8; want = 9 } |]
      ~quarantined:[| (60, 70, "b") |]
      ()
  in
  (* Order-insensitive: both orders give the identical row. *)
  match (D.merge_rows [ r1; r2 ], D.merge_rows [ r2; r1 ]) with
  | Ok m, Ok m' ->
      Alcotest.(check bool) "order-insensitive" true (m = m');
      let sp = Option.get m.D.span in
      Alcotest.(check int) "covers all items" 100 (sp.D.hi - sp.D.lo);
      Alcotest.(check (float 0.0)) "counters sum" 93.0 (List.assoc "fast" m.D.metrics);
      Alcotest.(check (float 1e-9)) "busy sums" 4.0 (List.assoc "busy_seconds" m.D.metrics);
      Alcotest.(check int) "mismatches concatenated" 2 (Array.length m.D.mismatches);
      Alcotest.(check bool) "ascending order" true (m.D.mismatches.(0).D.pattern = 3);
      Alcotest.(check bool) "quarantine ascending" true (m.D.quarantined.(0) = (4, 5, "a"))
  | Error msg, _ | _, Error msg -> Alcotest.fail msg

let test_merge_overlap_refused () =
  check_err "overlap" [ "overlap" ]
    (D.merge_rows [ row ~span:(Option.get (span 0 60)) (); row ~span:(Option.get (span 50 100)) () ])

let test_merge_gap_refused () =
  check_err "gap" [ "missing" ]
    (D.merge_rows [ row ~span:(Option.get (span 0 40)) (); row ~span:(Option.get (span 50 100)) () ])

let test_merge_identity_drift_refused () =
  check_err "identity drift" [ "different run" ]
    (D.merge_rows
       [
         row ~span:(Option.get (span 0 50)) ~identity:"id-a" ();
         row ~span:(Option.get (span 50 100)) ~identity:"id-b" ();
       ])

let test_merge_tables_drift_refused () =
  check_err "tables drift" [ "tables" ]
    (D.merge_rows
       [
         row ~span:(Option.get (span 0 50)) ~tables_hash:"fnv1a:aa" ();
         row ~span:(Option.get (span 50 100)) ~tables_hash:"fnv1a:bb" ();
       ])

let test_merge_geometry_drift_refused () =
  check_err "geometry drift" [ "geometry" ]
    (D.merge_rows
       [
         row ~span:{ D.lo = 0; hi = 50; n_items = 100; chunk_size = 10 } ();
         row ~span:{ D.lo = 50; hi = 100; n_items = 200; chunk_size = 10 } ();
       ])

let test_merge_whole_run_rows_refused () =
  check_err "two whole-run rows" [ "shard" ] (D.merge_rows [ row (); row () ])

let test_merge_incomplete_singleton_refused () =
  (* One shard alone does not certify the campaign. *)
  check_err "partial singleton" [ "missing" ] (D.merge_rows [ row ~span:(Option.get (span 0 50)) () ])

let test_merge_file_drift_refused () =
  let a = file ~rev:"abc" [ row ~span:(Option.get (span 0 50)) () ] in
  let b = file ~rev:"def" [ row ~span:(Option.get (span 50 100)) () ] in
  check_err "rev drift" [ "rev" ] (D.merge a b);
  let c = file ~config:"other" [ row ~span:(Option.get (span 50 100)) () ] in
  check_err "config drift" [ "config" ] (D.merge (file [ row ~span:(Option.get (span 0 50)) () ]) c)

let test_merge_files () =
  let host_b = Some { D.jobs = 1; cpus = 1; ocaml = "5.2.0" } in
  let a = file ~date:"2026-08-09T02:00:00Z" [ row ~span:(Option.get (span 0 50)) () ] in
  let b = file ~date:"2026-08-09T01:00:00Z" ~host:host_b [ row ~span:(Option.get (span 50 100)) () ] in
  match D.merge a b with
  | Error msg -> Alcotest.fail msg
  | Ok m ->
      Alcotest.(check string) "earlier date wins" "2026-08-09T01:00:00Z" m.D.date;
      Alcotest.(check bool) "host drops on disagreement" true (m.D.host = None);
      Alcotest.(check int) "rows welded" 1 (List.length m.D.rows)

(* ------------------------------------------------------------------ *)
(* Diff polarity.                                                      *)
(* ------------------------------------------------------------------ *)

let test_diff_polarity () =
  let vs =
    D.diff_metrics ~threshold:0.25
      [
        ("serve.calls_per_sec", 100.0);
        ("campaign.fast_path_pct", 100.0);
        ("sweep.wall_seconds", 1.0);
        ("bigint.mul_ns", 1.0);
      ]
      [
        ("serve.calls_per_sec", 50.0);
        (* halved throughput: regression *)
        ("campaign.fast_path_pct", 99.0);
        (* within threshold *)
        ("sweep.wall_seconds", 2.0);
        (* doubled time: regression *)
        ("bigint.mul_ns", 10.0);
        (* 10x worse but ungated *)
      ]
  in
  let v k = List.find (fun (v : D.verdict) -> v.key = k) vs in
  Alcotest.(check bool) "per_sec drop regresses" true (v "serve.calls_per_sec").regressed;
  Alcotest.(check (float 1e-9)) "per_sec ratio is base/curr" 2.0 (v "serve.calls_per_sec").ratio;
  Alcotest.(check bool) "pct within threshold ok" false (v "campaign.fast_path_pct").regressed;
  Alcotest.(check bool) "time growth regresses" true (v "sweep.wall_seconds").regressed;
  Alcotest.(check bool) "ungated never fails" false (v "bigint.mul_ns").regressed;
  Alcotest.(check bool) "gate trips" true (D.any_regression vs)

let test_diff_over_files () =
  let mk v = file [ row ~metrics:[ ("sweep.wall_seconds", v) ] () ] in
  Alcotest.(check bool) "2x sweep time trips file diff" true
    (D.any_regression (D.diff (mk 1.0) (mk 2.0)));
  Alcotest.(check bool) "equal passes" false (D.any_regression (D.diff (mk 1.0) (mk 1.0)))

let test_host_mismatch () =
  let a = sample () in
  Alcotest.(check (list string)) "same host comparable" [] (D.host_mismatch a a);
  let b = { a with D.host = Some { D.jobs = 1; cpus = 8; ocaml = "5.1.1" } } in
  Alcotest.(check bool) "jobs drift reported" true (D.host_mismatch a b <> []);
  let c = { a with D.host = None } in
  Alcotest.(check bool) "missing host reported" true (D.host_mismatch a c <> [])

let test_markdown_diff () =
  let md = D.markdown_diff (sample ()) (sample ()) in
  Alcotest.(check bool) "has metric table header" true (contains "| metric |" md);
  Alcotest.(check bool) "has gate verdict" true (contains "gate" md)

(* ------------------------------------------------------------------ *)
(* Legacy BENCH_<rev>.json lift over every committed baseline.          *)
(* ------------------------------------------------------------------ *)

let repo_root () =
  let rec up d =
    if Sys.file_exists (Filename.concat d ".git") then Some d
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent
  in
  up (Sys.getcwd ())

let test_legacy_lift_committed_baselines () =
  match repo_root () with
  | None -> Alcotest.fail "no repo root above cwd (test must run inside the checkout)"
  | Some root ->
      let baselines =
        Sys.readdir root |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 10
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
        |> List.sort compare
      in
      Alcotest.(check bool) "committed baselines present" true (baselines <> []);
      List.iter
        (fun f ->
          let path = Filename.concat root f in
          let ic = open_in_bin path in
          let raw = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match D.read ~path with
          | Error msg -> Alcotest.fail (f ^ ": " ^ msg)
          | Ok t ->
              (* The lift must preserve every metric and its exact value.
                 Grouping by family may reorder keys the old flat files
                 interleaved; the gate compares by key, so order is free. *)
              let old = List.sort compare (D.Legacy.parse_metrics raw) in
              let lifted = List.sort compare (D.metrics t) in
              Alcotest.(check int) (f ^ ": metric count") (List.length old) (List.length lifted);
              List.iter2
                (fun (k, v) (k', v') ->
                  Alcotest.(check string) (f ^ ": key") k k';
                  Alcotest.(check bool) (f ^ ": value " ^ k) true (v = v'))
                old lifted;
              let hdr = D.Legacy.parse_header raw in
              Alcotest.(check string) (f ^ ": rev") (List.assoc "rev" hdr) t.D.rev;
              Alcotest.(check string) (f ^ ": date") (List.assoc "date" hdr) t.D.date)
        baselines

(* ------------------------------------------------------------------ *)
(* 2-shard campaign == 1-shard campaign, through Datafile.merge.        *)
(* ------------------------------------------------------------------ *)

let shard_report ~lo ~hi ~mismatches ~quarantined ~fast ~escalated ~wall =
  {
    Campaign.Report.identity = "bfloat16 log2 rne n=100 chunk=10";
    n_items = 100;
    chunk_size = 10;
    lo;
    hi;
    mismatches;
    quarantined;
    fast;
    escalated;
    wall_seconds = wall;
  }

let test_campaign_two_shards_byte_identical () =
  let m1 = { Sweep.Checkpoint.pattern = 0x11; got = 1; want = 2 } in
  let m2 = { Sweep.Checkpoint.pattern = 0xbeef; got = 3; want = 4 } in
  let r1 = shard_report ~lo:0 ~hi:50 ~mismatches:[| m1 |] ~quarantined:[| (7, 8, "x") |] ~fast:45 ~escalated:4 ~wall:1.0 in
  let r2 = shard_report ~lo:50 ~hi:100 ~mismatches:[| m2 |] ~quarantined:[||] ~fast:49 ~escalated:0 ~wall:2.0 in
  let r_full =
    shard_report ~lo:0 ~hi:100 ~mismatches:[| m1; m2 |] ~quarantined:[| (7, 8, "x") |] ~fast:94
      ~escalated:4 ~wall:3.0
  in
  let text reports =
    match Campaign.Report.merge reports with
    | Error msg -> Alcotest.fail msg
    | Ok m -> Campaign.Report.text m
  in
  let one = text [ r_full ] and two = text [ r1; r2 ] in
  Alcotest.(check string) "sharding is invisible in the report" one two;
  (* Same weld through the datafile layer: per-shard datafiles merged by
     Datafile.merge render the identical canonical report. *)
  let df r = file [ Campaign.Report.row_of_report r ] in
  (match D.merge (df r1) (df r2) with
  | Error msg -> Alcotest.fail msg
  | Ok merged -> (
      match merged.D.rows with
      | [ r ] -> Alcotest.(check string) "datafile merge renders the same text" one (D.campaign_text r)
      | rows -> Alcotest.fail (Printf.sprintf "expected 1 merged row, got %d" (List.length rows))));
  match Campaign.Report.merge [ r_full ] with
  | Error msg -> Alcotest.fail msg
  | Ok m ->
      Alcotest.(check string) "row_of_merged renders text verbatim" one
        (D.campaign_text (Campaign.Report.row_of_merged m))

let () =
  Alcotest.run "datafile"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "example round-trip" `Quick test_roundtrip_example;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "write refuses non-finite" `Quick test_write_refuses_nonfinite;
        ] );
      ( "refusal",
        [
          Alcotest.test_case "truncation refused" `Quick test_truncation_refused;
          Alcotest.test_case "corruption refused" `Quick test_corruption_refused;
          Alcotest.test_case "future version refused" `Quick test_future_version_refused;
          Alcotest.test_case "garbage refused" `Quick test_garbage_refused;
        ] );
      ( "merge",
        [
          Alcotest.test_case "two shards weld" `Quick test_merge_two_shards;
          Alcotest.test_case "overlap refused" `Quick test_merge_overlap_refused;
          Alcotest.test_case "gap refused" `Quick test_merge_gap_refused;
          Alcotest.test_case "identity drift refused" `Quick test_merge_identity_drift_refused;
          Alcotest.test_case "tables-hash drift refused" `Quick test_merge_tables_drift_refused;
          Alcotest.test_case "geometry drift refused" `Quick test_merge_geometry_drift_refused;
          Alcotest.test_case "whole-run rows refused" `Quick test_merge_whole_run_rows_refused;
          Alcotest.test_case "incomplete singleton refused" `Quick
            test_merge_incomplete_singleton_refused;
          Alcotest.test_case "file identity drift refused" `Quick test_merge_file_drift_refused;
          Alcotest.test_case "file-level merge" `Quick test_merge_files;
        ] );
      ( "diff",
        [
          Alcotest.test_case "polarity" `Quick test_diff_polarity;
          Alcotest.test_case "over files" `Quick test_diff_over_files;
          Alcotest.test_case "host mismatch" `Quick test_host_mismatch;
          Alcotest.test_case "markdown diff" `Quick test_markdown_diff;
        ] );
      ( "legacy",
        [
          Alcotest.test_case "lift every committed baseline" `Quick
            test_legacy_lift_committed_baselines;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "2 shards == 1 shard, byte-identical" `Quick
            test_campaign_two_shards_byte_identical;
        ] );
    ]
