(* Naive reference bignums: the pre-tentpole [Bigint], frozen verbatim.

   This module is the differential-testing oracle for lib/bigint's
   two-tier fixnum/Karatsuba rewrite: single-representation
   sign-magnitude limbs, schoolbook O(n^2) multiplication, binary GCD,
   digit-at-a-time parsing.  It is deliberately boring — do not optimize
   it, or the differential suites in test_bigint.ml lose their anchor.
   bench/main.ml also times it as the "before" side of the BIGINT
   speedup sections.

   Original invariants:
   - [mag] is little-endian and has no trailing (most significant) zero limb;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1.
   Base 2^31 keeps every limb product below 2^62, inside OCaml's native
   [int] on 64-bit platforms. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* Strip most-significant zero limbs and normalize the zero sign. *)
let make sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* Peel limbs off the negative of [n] so [min_int], whose absolute
       value is not representable, needs no special case. *)
    let rec limbs acc m =
      if m = 0 then List.rev acc else limbs (-(m mod base) :: acc) (m / base)
    in
    make sign (Array.of_list (limbs [] (if n > 0 then -n else n)))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

(* Magnitude comparison: -1, 0, 1. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign = 0 then 0
  else x.sign * cmp_mag x.mag y.mag

let equal x y = compare x y = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can span several limbs. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done
    end
  done;
  r

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

let bit_length t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec msb k = if top lsr k <> 0 then k + 1 else msb (k - 1) in
    ((n - 1) * limb_bits) + msb (limb_bits - 1)
  end

let testbit t i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr off) land 1 = 1

let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length t.mag in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (t.mag.(i) lsl bits) lor !carry in
      r.(i + limbs) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    r.(la + limbs) <- !carry;
    make t.sign r
  end

let shift_right t k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length t.mag in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = t.mag.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < la then (t.mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        r.(i) <- lo lor hi
      done;
      make t.sign r
    end
  end

(* Knuth's Algorithm D on normalized magnitudes.  [a], [b] are magnitudes
   with [cmp_mag a b >= 0] and [Array.length b >= 2]. *)
let divmod_mag_knuth a b =
  (* Normalize so the divisor's top limb has its high bit set. *)
  let top = b.(Array.length b - 1) in
  let rec shift_for k = if (top lsl k) land (1 lsl (limb_bits - 1)) <> 0 then k else shift_for (k + 1) in
  let sh = shift_for 0 in
  let u = make 1 a and v = make 1 b in
  let u = (shift_left u sh).mag and v = (shift_left v sh).mag in
  let n = Array.length v in
  let m = Array.length u - n in
  let m = if m < 0 then 0 else m in
  (* Working copy of the dividend with one extra high limb. *)
  let w = Array.make (Array.length u + 1) 0 in
  Array.blit u 0 w 0 (Array.length u);
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = v.(n - 2) in
  for j = m downto 0 do
    (* Estimate the quotient limb from the top two/three limbs. *)
    let num = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
    let qhat = ref (num / vn1) and rhat = ref (num mod vn1) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn2 > (!rhat lsl limb_bits) lor w.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = w.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        w.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        w.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = w.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      w.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = w.(i + j) + v.(i) + !c in
        w.(i + j) <- s land limb_mask;
        c := s lsr limb_bits
      done;
      w.(j + n) <- (w.(j + n) + !c) land limb_mask
    end
    else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = make 1 (Array.sub w 0 n) in
  (q, (shift_right r sh).mag)

(* Divide a magnitude by a single limb. *)
let divmod_mag_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  if x.sign = 0 then (zero, zero)
  else if cmp_mag x.mag y.mag < 0 then (zero, x)
  else begin
    let qmag, rmag =
      if Array.length y.mag = 1 then begin
        let q, r = divmod_mag_limb x.mag y.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_mag_knuth x.mag y.mag
    in
    let qsign = x.sign * y.sign in
    (make qsign qmag, make x.sign rmag)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let pow t k =
  if k < 0 then invalid_arg "Bigint.pow";
  let rec go acc b k = if k = 0 then acc else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1) in
  go one t k

let trailing_zeros t =
  if t.sign = 0 then invalid_arg "Bigint.trailing_zeros: zero";
  let i = ref 0 in
  while t.mag.(!i) = 0 do
    incr i
  done;
  let limb = t.mag.(!i) in
  let rec ctz k = if (limb lsr k) land 1 = 1 then k else ctz (k + 1) in
  (!i * limb_bits) + ctz 0

let gcd a b =
  (* Binary GCD on magnitudes. *)
  let a = abs a and b = abs b in
  if is_zero a then b
  else if is_zero b then a
  else begin
    let za = trailing_zeros a and zb = trailing_zeros b in
    let shift = min za zb in
    let a = ref (shift_right a za) and b = ref (shift_right b zb) in
    while not (is_zero !b) do
      let c = compare !a !b in
      if c > 0 then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := sub !b !a;
      if not (is_zero !b) then b := shift_right !b (trailing_zeros !b)
    done;
    shift_left !a shift
  end

let add_int t n = add t (of_int n)
let mul_int t n = mul t (of_int n)

let to_int t =
  if t.sign = 0 then Some 0
  else if bit_length t <= 62 then begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end
  else None

let to_int_exn t = match to_int t with Some n -> n | None -> failwith "Bigint.to_int_exn: overflow"

let to_float t =
  (* Round-to-nearest-even conversion to double: keep the top 53 bits and
     round with an explicit round/sticky pair so huge values stay within
     half an ulp. *)
  if t.sign = 0 then 0.0
  else begin
    let bl = bit_length t in
    if bl <= 53 then float_of_int (to_int_exn t)
    else begin
      let sh = bl - 53 in
      let a = abs t in
      let head = to_int_exn (shift_right a sh) in
      let round = testbit a (sh - 1) in
      let low = sub a (shift_left (shift_right a (sh - 1)) (sh - 1)) in
      let head = if round && ((not (is_zero low)) || head land 1 = 1) then head + 1 else head in
      let v = ldexp (float_of_int head) sh in
      if t.sign < 0 then -.v else v
    end
  end

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref (abs t) in
    let ten9 = of_int 1_000_000_000 in
    while not (is_zero !m) do
      let q, r = divmod !m ten9 in
      chunks := to_int_exn r :: !chunks;
      m := q
    done;
    let b = Buffer.create 32 in
    if t.sign < 0 then Buffer.add_char b '-';
    (match !chunks with
    | [] -> Buffer.add_char b '0'
    | first :: rest ->
        Buffer.add_string b (string_of_int first);
        List.iter (fun c -> Buffer.add_string b (Printf.sprintf "%09d" c)) rest);
    Buffer.contents b
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
