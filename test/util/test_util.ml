(* Shared helpers for the test suites. *)

module Q = Rational
module B = Bigint

(* Deterministic pseudo-random state per suite, so failures reproduce. *)
let rand seed = Random.State.make [| 0x5EED; seed |]

(* Random Bigint with roughly [bits] bits, either sign. *)
let random_bigint st bits =
  let x = ref B.zero in
  let chunks = (bits / 30) + 1 in
  for _ = 1 to chunks do
    x := B.add (B.shift_left !x 30) (B.of_int (Random.State.full_int st (1 lsl 30)))
  done;
  if Random.State.bool st then B.neg !x else !x

let random_nonzero_bigint st bits =
  let rec go () =
    let x = random_bigint st bits in
    if B.is_zero x then go () else x
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Differential-testing support: build the same value in the live       *)
(* [Bigint] and in the frozen naive reference ([Ref_bigint]) from one   *)
(* stream of random chunks, so no conversion path is trusted.           *)
(* ------------------------------------------------------------------ *)

module Ref = Ref_bigint

(* Exactly [bits] bits (top bit set) when [bits > 0], same value in both
   representations; sign chosen by the same coin. *)
let bigint_pair ?(exact = false) st bits =
  let b = ref B.zero and r = ref Ref.zero in
  let chunks = (bits + 29) / 30 in
  for i = 1 to chunks do
    let width = if i = 1 && bits mod 30 <> 0 then bits mod 30 else 30 in
    let c = Random.State.full_int st (1 lsl width) in
    let c = if exact && i = 1 then c lor (1 lsl (width - 1)) else c in
    b := B.add (B.shift_left !b width) (B.of_int c);
    r := Ref.add (Ref.shift_left !r width) (Ref.of_int c)
  done;
  if Random.State.bool st then (B.neg !b, Ref.neg !r) else (!b, !r)

let nonzero_bigint_pair ?exact st bits =
  let rec go () =
    let (b, _) as p = bigint_pair ?exact st bits in
    if B.is_zero b then go () else p
  in
  go ()

(* Value equality across the two representations, via their independent
   decimal printers. *)
let ref_eq b r = String.equal (B.to_string b) (Ref.to_string r)

(* Random finite double spread over many binades. *)
let random_double ?(max_exp = 300) st =
  let m = Random.State.float st 2.0 -. 1.0 in
  Float.ldexp m (Random.State.int st (2 * max_exp) - max_exp)

let random_rational st bits = Q.make (random_bigint st bits) (random_nonzero_bigint st bits)

(* ulp distance between doubles, for oracle-vs-libm comparisons. *)
let ulps a b = Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))

(* Value-equality of two patterns of T: equal patterns, or both encode
   the same real (catches -0.0 vs +0.0), or both NaN. *)
let pattern_value_equal (module T : Fp.Representation.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | Fp.Representation.Finite, Fp.Representation.Finite -> T.to_double a = T.to_double b
  | Fp.Representation.Nan, Fp.Representation.Nan -> true
  | _ -> false

(* Alcotest testables. *)
let bigint = Alcotest.testable B.pp B.equal
let rational = Alcotest.testable Q.pp Q.equal

let qsuite name cases = (name, List.map QCheck_alcotest.to_alcotest cases)
