(* Rational: field laws, normalization, correctly rounded to_float. *)

module Q = Rational
module B = Bigint
open Test_util

let st = rand 2
let check = Alcotest.check rational

let test_basics () =
  check "1/2+1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  check "normalize" (Q.of_ints 2 3) (Q.of_ints 14 21);
  check "neg den" (Q.of_ints (-2) 3) (Q.of_ints 2 (-3));
  check "mul" (Q.of_ints 1 3) (Q.mul (Q.of_ints 2 3) Q.half);
  check "div" (Q.of_ints 4 3) (Q.div (Q.of_ints 2 3) Q.half);
  check "inv" (Q.of_ints 3 2) (Q.inv (Q.of_ints 2 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero));
  Alcotest.(check int) "compare" (-1) (Q.compare (Q.of_ints 1 3) Q.half);
  Alcotest.(check int) "sign" (-1) (Q.sign (Q.of_ints (-1) 7))

let test_of_float_exact () =
  check "0.5" Q.half (Q.of_float 0.5);
  check "0.1 is not 1/10"
    (Q.make (B.of_string "3602879701896397") (B.shift_left B.one 55))
    (Q.of_float 0.1);
  check "subnormal" (Q.of_pow2 (-1074)) (Q.of_float (Float.ldexp 1.0 (-1074)));
  Alcotest.check_raises "nan" (Invalid_argument "Rational.of_float: not finite") (fun () ->
      ignore (Q.of_float Float.nan))

let test_to_float_rounding () =
  (* 1/3 rounds to the double nearest 1/3. *)
  Alcotest.(check (float 0.0)) "1/3" (1.0 /. 3.0) (Q.to_float (Q.of_ints 1 3));
  (* Exactly representable stays exact. *)
  Alcotest.(check (float 0.0)) "exact" 0.625 (Q.to_float (Q.of_ints 5 8));
  (* Ties to even: 2^53 + 1 viewed as rational. *)
  Alcotest.(check (float 0.0))
    "tie to even"
    (Float.ldexp 1.0 53)
    (Q.to_float (Q.of_bigint (B.add (B.shift_left B.one 53) B.one)));
  (* Overflow and underflow. *)
  Alcotest.(check (float 0.0)) "overflow" infinity (Q.to_float (Q.of_pow2 1100));
  Alcotest.(check (float 0.0)) "neg overflow" neg_infinity (Q.to_float (Q.neg (Q.of_pow2 1100)));
  Alcotest.(check (float 0.0)) "underflow" 0.0 (Q.to_float (Q.of_pow2 (-1100)));
  (* Smallest subnormal midpoint: 2^-1075 ties to 0 (even). *)
  Alcotest.(check (float 0.0)) "2^-1075 tie" 0.0 (Q.to_float (Q.of_pow2 (-1075)));
  (* Just above the tie rounds up to the smallest subnormal. *)
  Alcotest.(check (float 0.0))
    "just above 2^-1075"
    (Float.ldexp 1.0 (-1074))
    (Q.to_float (Q.add (Q.of_pow2 (-1075)) (Q.of_pow2 (-1200))));
  (* Subnormal midpoints round to even significand. *)
  let sub3 = Q.mul (Q.of_int 3) (Q.of_pow2 (-1074)) in
  let mid = Q.add sub3 (Q.of_pow2 (-1075)) in
  Alcotest.(check (float 0.0)) "subnormal tie" (Float.ldexp 4.0 (-1074)) (Q.to_float mid)

let test_ilog2_floor () =
  Alcotest.(check int) "ilog2 5/2" 1 (Q.ilog2 (Q.of_ints 5 2));
  Alcotest.(check int) "ilog2 1" 0 (Q.ilog2 Q.one);
  Alcotest.(check int) "ilog2 1/3" (-2) (Q.ilog2 (Q.of_ints 1 3));
  Alcotest.(check int) "ilog2 -8" 3 (Q.ilog2 (Q.of_int (-8)));
  Alcotest.check bigint "floor 7/2" (B.of_int 3) (Q.floor (Q.of_ints 7 2));
  Alcotest.check bigint "floor -7/2" (B.of_int (-4)) (Q.floor (Q.of_ints (-7) 2));
  Alcotest.check bigint "round 5/2 away" (B.of_int 3) (Q.round_nearest (Q.of_ints 5 2));
  Alcotest.check bigint "round -5/2 away" (B.of_int (-3)) (Q.round_nearest (Q.of_ints (-5) 2));
  Alcotest.check bigint "round 7/3" (B.of_int 2) (Q.round_nearest (Q.of_ints 7 3))

(* The compare fast path (sign, then bit-length brackets) must agree
   with the textbook cross-multiplication on pairs built to be nearly
   equal — same sign, same ilog2, differing only far down the
   numerator — which is exactly where the bracket test cannot decide
   and must hand over to the slow path. *)
let slow_compare a b = B.compare (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a))

let test_compare_adversarial () =
  let q = Q.make (B.of_string "123456789123456789") (B.of_string "98765432123456789") in
  List.iter
    (fun k ->
      (* eps = 1/(3 * 2^k): keeps the perturbed denominator non-dyadic. *)
      let eps = Q.make B.one (B.shift_left (B.of_int 3) k) in
      List.iter
        (fun (a, b) ->
          let want = slow_compare a b in
          Alcotest.(check int)
            (Printf.sprintf "near-equal k=%d" k)
            want (Q.compare a b);
          Alcotest.(check int)
            (Printf.sprintf "near-equal swapped k=%d" k)
            (-want) (Q.compare b a))
        [
          (q, Q.add q eps);
          (q, Q.sub q eps);
          (Q.neg q, Q.neg (Q.add q eps));
          (Q.add q eps, Q.add q eps);
        ])
    [ 5; 60; 63; 120; 200 ];
  (* Dyadic near-equal pairs exercise the shift-compare branch. *)
  let d = Q.of_float 0.7853981633974483 in
  let tiny = Q.of_pow2 (-140) in
  Alcotest.(check int) "dyadic +eps" (slow_compare d (Q.add d tiny)) (Q.compare d (Q.add d tiny));
  Alcotest.(check int) "dyadic -eps" (slow_compare d (Q.sub d tiny)) (Q.compare d (Q.sub d tiny));
  Alcotest.(check int) "dyadic equal" 0 (Q.compare d (Q.of_float 0.7853981633974483))

let prop_compare_fast_vs_slow =
  QCheck.Test.make ~name:"compare fast path agrees with cross-multiply" ~count:2000 QCheck.unit
    (fun () ->
      let a = random_rational st 90 and b = random_rational st 90 in
      (* Mix in adversarial near-equal pairs and scaled copies. *)
      let b =
        match Random.State.int st 4 with
        | 0 -> Q.add a (Q.make B.one (B.shift_left (B.of_int 3) (60 + Random.State.int st 80)))
        | 1 -> Q.sub a (Q.make B.one (B.shift_left (B.of_int 3) (60 + Random.State.int st 80)))
        | 2 -> Q.mul_pow2 a (Random.State.int st 7 - 3)
        | _ -> b
      in
      Q.compare a b = slow_compare a b
      && Q.compare b a = slow_compare b a
      && Q.compare a a = 0)

let prop_add_dyadic_vs_general =
  QCheck.Test.make ~name:"dyadic add fast path = cross-multiplied add" ~count:2000 QCheck.unit
    (fun () ->
      let x = random_double ~max_exp:200 st and y = random_double ~max_exp:200 st in
      let a = Q.of_float x and b = Q.of_float y in
      (* The general formula, normalized through make (gcd path). *)
      let general =
        Q.make
          (B.add (B.mul (Q.num a) (Q.den b)) (B.mul (Q.num b) (Q.den a)))
          (B.mul (Q.den a) (Q.den b))
      in
      Q.equal (Q.add a b) general && Q.to_float (Q.add a b) = x +. y)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_float/to_float roundtrip" ~count:5000 QCheck.unit (fun () ->
      let x = random_double ~max_exp:500 st in
      Q.to_float (Q.of_float x) = x)

let prop_field =
  QCheck.Test.make ~name:"field laws" ~count:1000 QCheck.unit (fun () ->
      let a = random_rational st 80 and b = random_rational st 80 and c = random_rational st 40 in
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.mul (Q.add a b) c) (Q.add (Q.mul a c) (Q.mul b c))
      && Q.equal (Q.sub a (Q.add a b)) (Q.neg b)
      && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a))

let prop_compare_to_float =
  QCheck.Test.make ~name:"to_float is monotone" ~count:2000 QCheck.unit (fun () ->
      let a = random_rational st 60 and b = random_rational st 60 in
      let c = Q.compare a b in
      let fa = Q.to_float a and fb = Q.to_float b in
      if c < 0 then fa <= fb else if c > 0 then fa >= fb else fa = fb)

let prop_to_float_half_ulp =
  QCheck.Test.make ~name:"to_float within half ulp" ~count:2000 QCheck.unit (fun () ->
      let a = random_rational st 70 in
      if Q.is_zero a then true
      else begin
        let f = Q.to_float a in
        if not (Float.is_finite f) then true
        else begin
          (* |a - f| <= ulp-gap to either neighbor. *)
          let up = Q.of_float (Fp.Fp64.next_up f) and dn = Q.of_float (Fp.Fp64.next_down f) in
          let d = Q.abs (Q.sub a (Q.of_float f)) in
          Q.compare d (Q.abs (Q.sub a up)) <= 0 && Q.compare d (Q.abs (Q.sub a dn)) <= 0
        end
      end)

let () =
  Alcotest.run "rational"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "of_float exact" `Quick test_of_float_exact;
          Alcotest.test_case "to_float rounding" `Quick test_to_float_rounding;
          Alcotest.test_case "ilog2/floor/round" `Quick test_ilog2_floor;
          Alcotest.test_case "compare fast path adversarial" `Quick test_compare_adversarial;
        ] );
      qsuite "properties"
        [
          prop_roundtrip;
          prop_field;
          prop_compare_to_float;
          prop_to_float_half_ulp;
          prop_compare_fast_vs_slow;
          prop_add_dyadic_vs_general;
        ];
    ]
