(* The sharded campaign driver and the oracle-free fast verifier.

   Three battlegrounds:
   - crash determinism: fork+SIGKILL one shard worker, resume, merge —
     the campaign report must be byte-identical to an uninterrupted
     single-shard run (and to a forked multi-worker run);
   - merge hygiene: order-insensitive byte-identical merges; overlapping,
     missing, foreign and geometry-skewed shard reports refused loudly;
   - the fast verifier itself: differential against the Ziv oracle — on
     every verdict, for bfloat16/float16 log2/exp under all five standard
     rounding modes.  A disagreement is a test failure, never a fallback:
     the fast path must only ever be *faster*, not *different*.

   Fork-ordering constraint (same as test_sweep): OCaml 5 refuses
   Unix.fork once any domain has ever been spawned in the process, so
   the forking tests run first and the whole binary pins Parallel to
   jobs=1 — generation and the in-process engine then never spawn a
   domain. *)

let () = Parallel.set_jobs 1

module C = Sweep.Checkpoint
module V = Sweep.Verify
module G = Rlibm.Generator
module P = Campaign.Plan
module R = Campaign.Report

let fresh_dir =
  let ctr = ref 0 in
  fun prefix ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm_%s.%d.%d" prefix (Unix.getpid ()) !ctr)

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Synthetic campaign job: pure function of the global range, with a    *)
(* deterministic mismatch pattern and one permanently faulty chunk, so  *)
(* mismatch AND quarantine determinism are both exercised.              *)
(* ------------------------------------------------------------------ *)

let n_items = 2048
let chunk_size = 32
let identity = "campaign-test v1"

(* Items with i mod 17 = 3 mismatch; the chunk holding item 100 always
   faults (quarantined at the same global range under any shard plan). *)
let synth ~lo ~hi =
  if lo <= 100 && 100 < hi then failwith "permanent fault";
  let ms = ref [] in
  for i = hi - 1 downto lo do
    if i mod 17 = 3 then ms := { C.pattern = i; got = i land 0xff; want = (i + 1) land 0xff } :: !ms
  done;
  !ms

let synth_job ~shard:_ = { Campaign.f = synth; cache = None; counters = None }

let run_campaign ?(shards = 1) ?(resume = false) ?(exec = Campaign.In_process) dir =
  match
    Campaign.run ~dir ~identity ~n:n_items ~shards ~chunk_size ~checkpoint_every:4 ~jobs:1
      ~resume ~exec ~job:synth_job ()
  with
  | Ok o -> o
  | Error msg -> Alcotest.failf "campaign: %s" msg

(* The uninterrupted single-shard reference everything must reproduce. *)
let reference = lazy (
  let dir = fresh_dir "camp_ref" in
  let o = run_campaign ~shards:1 dir in
  let text = read_file o.report_path in
  rm_rf dir;
  (o.merged, text))

(* ------------------------------------------------------------------ *)
(* Fork-based tests (must run before any domain is spawned).            *)
(* ------------------------------------------------------------------ *)

let test_sigkill_resume_merge () =
  let _, ref_text = Lazy.force reference in
  let dir = fresh_dir "camp_kill" in
  let plan =
    match P.make ~n_items ~chunk_size ~shards:2 with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  (* Shard 0 runs to completion up front. *)
  (match
     Campaign.run_shard ~dir ~identity ~plan ~shard:0 ~checkpoint_every:4 ~jobs:1
       (synth_job ~shard:0)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shard 0: %s" m);
  (* Shard 1 runs slowed-down in a forked worker and is SIGKILLed once
     its checkpoint shows real progress. *)
  let slow_job ~shard:_ =
    {
      Campaign.f =
        (fun ~lo ~hi ->
          Unix.sleepf 0.004;
          synth ~lo ~hi);
      cache = None;
      counters = None;
    }
  in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       ignore
         (Campaign.run_shard ~dir ~identity ~plan ~shard:1 ~checkpoint_every:4 ~jobs:1
            (slow_job ~shard:1))
     with _ -> ());
    Unix._exit 0
  end;
  let ckpt = Filename.concat (P.shard_dir dir 1) "checkpoint.bin" in
  let deadline = Unix.gettimeofday () +. 30.0 in
  let rec wait () =
    let enough =
      Sys.file_exists ckpt
      && match C.load ~path:ckpt with Ok cp -> C.completed cp >= 4 | Error _ -> false
    in
    if (not enough) && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  wait ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Alcotest.(check bool) "killed worker left no shard report" false
    (Sys.file_exists (R.path ~shard_dir:(P.shard_dir dir 1)));
  (* Resume the campaign: shard 0 skipped (report intact), shard 1
     resumed from its checkpoint; then the auto-merge. *)
  let o = run_campaign ~shards:2 ~resume:true dir in
  Alcotest.(check string) "resumed 2-shard report == uninterrupted 1-shard report" ref_text
    (read_file o.report_path);
  rm_rf dir

let test_forked_workers_match_in_process () =
  let _, ref_text = Lazy.force reference in
  let dir = fresh_dir "camp_fork" in
  let o = run_campaign ~shards:3 ~exec:(Campaign.Fork 2) dir in
  Alcotest.(check int) "three shards merged" 3 o.merged.m_n_shards;
  Alcotest.(check string) "forked 3-shard report == 1-shard report" ref_text
    (read_file o.report_path);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Plan and merge properties.                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_tiles_and_aligns () =
  List.iter
    (fun shards ->
      match P.make ~n_items ~chunk_size ~shards with
      | Error m -> Alcotest.fail m
      | Ok p ->
          let cursor = ref 0 in
          Array.iter
            (fun (lo, hi) ->
              Alcotest.(check int) "contiguous" !cursor lo;
              Alcotest.(check bool) "non-empty" true (hi > lo);
              Alcotest.(check int) "chunk-aligned boundary" 0 (lo mod chunk_size);
              cursor := hi)
            p.P.shards;
          Alcotest.(check int) "tiles the item space" n_items !cursor)
    [ 1; 2; 3; 7; 64 ];
  (match P.make ~n_items:100 ~chunk_size:32 ~shards:5 with
  | Error _ -> ()  (* 4 chunks cannot host 5 shards *)
  | Ok _ -> Alcotest.fail "accepted more shards than chunks");
  match P.make ~n_items:0 ~chunk_size:32 ~shards:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an empty item space"

(* Hand-built shard reports over a 3-shard tiling of [0, 300). *)
let shard_report ?(identity = "m") ?(n_items = 300) ?(chunk_size = 50) ~lo ~hi () =
  {
    R.identity;
    n_items;
    chunk_size;
    lo;
    hi;
    mismatches = [| { C.pattern = lo + 1; got = 0; want = 1 } |];
    quarantined = [| (lo + 10, lo + 20, Printf.sprintf "fault@%d" lo) |];
    fast = hi - lo - 10;
    escalated = 10;
    wall_seconds = 1.5;
  }

let test_merge_order_insensitive () =
  let a = shard_report ~lo:0 ~hi:100 () in
  let b = shard_report ~lo:100 ~hi:250 () in
  let c = shard_report ~lo:250 ~hi:300 () in
  let texts =
    List.map
      (fun perm ->
        match R.merge perm with
        | Ok m -> R.text m
        | Error msg -> Alcotest.failf "merge refused a valid tiling: %s" msg)
      [ [ a; b; c ]; [ c; a; b ]; [ b; c; a ]; [ c; b; a ] ]
  in
  List.iter
    (fun t -> Alcotest.(check string) "permutation byte-identical" (List.hd texts) t)
    (List.tl texts);
  (* Counters aggregate regardless of order. *)
  match R.merge [ c; a; b ] with
  | Error m -> Alcotest.fail m
  | Ok m ->
      Alcotest.(check int) "fast summed" (a.R.fast + b.R.fast + c.R.fast) m.R.m_fast;
      Alcotest.(check int) "escalated summed" 30 m.R.m_escalated;
      Alcotest.(check int) "mismatches concatenated ascending" 3 (Array.length m.R.m_mismatches);
      Alcotest.(check bool) "busy time summed" true (abs_float (m.R.m_busy_seconds -. 4.5) < 1e-9)

let expect_merge_error ~what reports =
  match R.merge reports with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the problem (%s): %s" what msg)
        true
        (String.length msg > 0)
  | Ok _ -> Alcotest.failf "merge accepted %s" what

let test_merge_rejections () =
  let a = shard_report ~lo:0 ~hi:100 () in
  let c = shard_report ~lo:250 ~hi:300 () in
  expect_merge_error ~what:"an empty report list" [];
  expect_merge_error ~what:"a gap" [ a; c ];
  expect_merge_error ~what:"a missing tail"
    [ a; shard_report ~lo:100 ~hi:250 () ];
  expect_merge_error ~what:"an overlap"
    [ a; shard_report ~lo:50 ~hi:300 () ];
  expect_merge_error ~what:"a foreign campaign"
    [ a; shard_report ~identity:"other" ~lo:100 ~hi:300 () ];
  expect_merge_error ~what:"disagreeing geometry"
    [ a; shard_report ~chunk_size:25 ~lo:100 ~hi:300 () ]

let qcheck_shard_report_roundtrip =
  QCheck.Test.make ~name:"shard report encode/decode roundtrip" ~count:200 QCheck.unit
    (let st = Random.State.make [| 7 |] in
     fun () ->
       let lo = Random.State.int st 1000 in
       let hi = lo + 1 + Random.State.int st 1000 in
       let r =
         {
           R.identity = String.init (Random.State.int st 40) (fun _ -> Char.chr (32 + Random.State.int st 95));
           n_items = hi + Random.State.int st 100;
           chunk_size = 1 + Random.State.int st 64;
           lo;
           hi;
           mismatches =
             Array.init (Random.State.int st 5) (fun _ ->
                 {
                   C.pattern = Random.State.int st 0x10000;
                   got = Random.State.int st 0x10000;
                   want = Random.State.int st 0x10000;
                 });
           quarantined =
             Array.init (Random.State.int st 3) (fun k ->
                 (lo + (k * 10), lo + (k * 10) + 5, "err"));
           fast = Random.State.int st 10000;
           escalated = Random.State.int st 10000;
           wall_seconds = Random.State.float st 100.0;
         }
       in
       match R.decode (R.encode r) with
       | Ok r' -> r = r'
       | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let qcheck_shard_report_corruption =
  QCheck.Test.make ~name:"shard report: one flipped byte is rejected" ~count:200 QCheck.unit
    (let st = Random.State.make [| 8 |] in
     fun () ->
       let enc =
         Bytes.of_string (R.encode (shard_report ~lo:(Random.State.int st 50) ~hi:100 ()))
       in
       let i = Random.State.int st (Bytes.length enc) in
       Bytes.set enc i (Char.chr (Char.code (Bytes.get enc i) lxor (1 lsl Random.State.int st 8)));
       match R.decode (Bytes.to_string enc) with
       | Error _ -> true
       | Ok _ -> QCheck.Test.fail_reportf "corrupted byte %d accepted" i)

let test_campaign_refuses_unflagged_restart () =
  let dir = fresh_dir "camp_restart" in
  ignore (run_campaign ~shards:2 dir);
  (match
     Campaign.run ~dir ~identity ~n:n_items ~shards:2 ~chunk_size ~jobs:1
       ~exec:Campaign.In_process ~job:synth_job ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "silently restarted over shard reports");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Differential tier: fast verifier vs the Ziv oracle (satellite 1).    *)
(*                                                                      *)
(* For each target x function x rounding mode, a generation at Quick    *)
(* quality (exhaustive 16-bit enumeration), then random strided ranges  *)
(* verified twice — once through the certificate-based fast verifier,   *)
(* once purely through the oracle — demanding identical verdicts on     *)
(* every pattern.  A fast verifier that is ever *different* fails here, *)
(* no matter how plausible its answer.                                  *)
(* ------------------------------------------------------------------ *)

let differential_combo (target : Funcs.Specs.target) fname mode =
  let t = Funcs.Specs.with_mode target mode in
  let module T = (val t.repr) in
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick t fname in
  Alcotest.(check bool) "16-bit generation is exhaustive (certificate sound)" true
    (Rlibm.Verifier.certifiable g);
  let fast_counters = V.counters () in
  let vfast = Rlibm.Verifier.make ~counters:fast_counters ~policy:`Fast g in
  let voracle = Rlibm.Verifier.make ~policy:`Oracle g in
  let st = Random.State.make [| 0xD1F; T.bits; Hashtbl.hash (fname, Fp.Rounding_mode.to_string mode) |] in
  let total = 1 lsl T.bits in
  for _ = 1 to 24 do
    let stride = 1 + Random.State.int st 97 in
    let span = 64 in
    let max_lo = Stdlib.max 1 ((total / stride) - span) in
    let lo = Random.State.int st max_lo in
    let hi = Stdlib.min (lo + span) (((total - 1) / stride) + 1) in
    (* Whole-range verdict lists must agree... *)
    let mf = V.sweep_fn vfast ~stride () ~lo ~hi in
    let mo = V.sweep_fn voracle ~stride () ~lo ~hi in
    if mf <> mo then
      Alcotest.failf "%s/%s/%s: fast and oracle verifiers disagree on [%d,%d) stride %d"
        t.tname fname
        (Fp.Rounding_mode.to_string mode)
        lo hi stride;
    (* ...and so must every individual verdict. *)
    for i = lo to hi - 1 do
      let pat = i * stride in
      if V.check vfast pat <> V.check voracle pat then
        Alcotest.failf "%s/%s/%s: verdict disagrees at pattern %#x" t.tname fname
          (Fp.Rounding_mode.to_string mode)
          pat
    done
  done;
  (* The fast path must actually be a fast path, not escalate-everything
     in disguise. *)
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s/%s: >= 95%% certified oracle-free (got %.2f%%)" t.tname fname
       (Fp.Rounding_mode.to_string mode)
       (V.fast_pct fast_counters))
    true
    (V.fast_pct fast_counters >= 95.0)

let differential_tests =
  List.concat_map
    (fun (target, tn) ->
      List.concat_map
        (fun fname ->
          List.map
            (fun mode ->
              Alcotest.test_case
                (Printf.sprintf "%s %s %s" tn fname (Fp.Rounding_mode.to_string mode))
                `Slow
                (fun () -> differential_combo target fname mode))
            Fp.Rounding_mode.standard)
        [ "log2"; "exp" ])
    [ (Funcs.Specs.bfloat16, "bfloat16"); (Funcs.Specs.float16, "float16") ]

(* The acceptance-criterion scenario at test scale: the full 2^16
   bfloat16 space through a fast-verifier campaign, >= 95% oracle-free,
   report byte-identical to the oracle-only campaign. *)
let test_full_bf16_fast_vs_oracle () =
  let t = Funcs.Specs.bfloat16 in
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick t "log2" in
  let n = 65536 in
  let id = "campaign-test bf16 log2 full" in
  let run policy =
    let dir = fresh_dir "camp_full" in
    let counters = V.counters () in
    let job ~shard:_ =
      let v = Rlibm.Verifier.make ~counters ~policy g in
      { Campaign.f = V.sweep_fn v ~stride:1 (); cache = None; counters = Some counters }
    in
    match
      Campaign.run ~dir ~identity:id ~n ~shards:2 ~chunk_size:1024 ~jobs:1
        ~exec:Campaign.In_process ~job ()
    with
    | Error msg -> Alcotest.failf "campaign: %s" msg
    | Ok o ->
        let text = read_file o.report_path in
        rm_rf dir;
        (o.merged, text)
  in
  let mf, ft = run `Fast in
  let _, ot = run `Oracle in
  Alcotest.(check string) "fast report == oracle report" ot ft;
  Alcotest.(check int) "no mismatches" 0 (Array.length mf.R.m_mismatches);
  let pct = 100.0 *. float_of_int mf.R.m_fast /. float_of_int (mf.R.m_fast + mf.R.m_escalated) in
  Alcotest.(check bool)
    (Printf.sprintf ">= 95%% oracle-free (got %.2f%%)" pct)
    true (pct >= 95.0)

let () =
  Alcotest.run "campaign"
    [
      ( "fork",
        [
          (* Must run first: they fork, which OCaml 5 refuses once any
             test has spawned a domain. *)
          Alcotest.test_case "SIGKILL one shard + resume + merge == uninterrupted" `Quick
            test_sigkill_resume_merge;
          Alcotest.test_case "forked workers == in-process == single shard" `Quick
            test_forked_workers_match_in_process;
        ] );
      ( "plan/merge",
        [
          Alcotest.test_case "plans tile and chunk-align" `Quick test_plan_tiles_and_aligns;
          Alcotest.test_case "merge is order-insensitive" `Quick test_merge_order_insensitive;
          Alcotest.test_case "merge refuses overlap/gap/foreign" `Quick test_merge_rejections;
          QCheck_alcotest.to_alcotest qcheck_shard_report_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_shard_report_corruption;
          Alcotest.test_case "refuses restart without resume" `Quick
            test_campaign_refuses_unflagged_restart;
        ] );
      ( "differential",
        Alcotest.test_case "full bf16 log2: fast == oracle, >=95% oracle-free" `Quick
          test_full_bf16_fast_vs_oracle
        :: differential_tests );
    ]
