(* The serving path's correctness bar (ISSUE 7): kernels bit-identical
   to the scalar path, proven exhaustively on the 16-bit targets across
   every standard rounding mode, differentially on float32, with the
   jobs-1/2/4 determinism and zero-allocation contracts as machine
   checks.

   Default tier: bfloat16 x log2 and float16 x exp across all five
   standard modes on strided inputs.  RLIBM_EXHAUSTIVE=1 (the
   @exhaustive alias / make check-full): both targets x both functions
   x all five modes over every one of the 65536 patterns. *)

module K = Serve.Kernel
module R = Serve.Run
module W = Serve.Workload
module G = Rlibm.Generator
module S = Funcs.Specs

let exhaustive =
  match Sys.getenv_opt "RLIBM_EXHAUSTIVE" with Some ("1" | "true") -> true | _ -> false

let patterns16 () =
  if exhaustive then Rlibm.Enumerate.exhaustive16
  else Array.init (65536 / 7) (fun i -> i * 7)

(* ------------------------------------------------------------------ *)
(* Serve vs scalar bit-identity: 16-bit targets, all standard modes.   *)
(* ------------------------------------------------------------------ *)

let identity16 (base : S.target) name mode () =
  let t = if mode = Fp.Rounding_mode.Rne then base else S.with_mode base mode in
  let g = Funcs.Libm.get t name in
  let p =
    match Funcs.Kernels.of_generated g with
    | Some p -> p
    | None -> Alcotest.failf "%s %s: no kernel" t.tname name
  in
  let src = patterns16 () in
  let dst = Array.make (Array.length src) 0 in
  R.patterns p src dst;
  Array.iteri
    (fun i pat ->
      let want = G.eval_pattern g pat in
      if dst.(i) <> want then
        Alcotest.failf "%s %s @%s: pattern %04x: kernel %04x <> scalar %04x" t.tname name
          (Fp.Rounding_mode.to_string mode)
          pat dst.(i) want)
    src

let identity_tier () =
  let combos =
    if exhaustive then
      List.concat_map
        (fun t -> List.map (fun f -> (t, f)) [ "log2"; "exp" ])
        [ S.bfloat16; S.float16 ]
    else [ (S.bfloat16, "log2"); (S.float16, "exp") ]
  in
  List.concat_map
    (fun ((t : S.target), f) ->
      List.map
        (fun mode ->
          Alcotest.test_case
            (Printf.sprintf "%s %s @%s" t.tname f (Fp.Rounding_mode.to_string mode))
            `Slow (identity16 t f mode))
        Fp.Rounding_mode.standard)
    combos

(* ------------------------------------------------------------------ *)
(* float32 differential: strided sweep of the full input space.        *)
(* ------------------------------------------------------------------ *)

let test_float32_strided () =
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick S.float32 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let stride = 65537 in
  let n = (1 lsl 32) / stride in
  let src = Array.init n (fun i -> i * stride) in
  let dst = Array.make n 0 in
  R.patterns p src dst;
  Array.iteri
    (fun i pat ->
      let want = G.eval_pattern g pat in
      if dst.(i) <> want then
        Alcotest.failf "float32 log2: pattern %08x: kernel %08x <> scalar %08x" pat dst.(i) want)
    src

(* Run.verify agrees with the definition above and covers every mix. *)
let test_verify_mixes () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  List.iter
    (fun mix ->
      let src = W.gen p ~mix ~seed:7 ~n:4096 in
      match R.verify p src with
      | None -> ()
      | Some pat -> Alcotest.failf "%s mix: mismatch at %04x" (W.mix_to_string mix) pat)
    [ W.Uniform; W.Hardcase; W.Subnormal ]

(* ------------------------------------------------------------------ *)
(* Determinism: jobs 1/2/4 produce identical output buffers.           *)
(* ------------------------------------------------------------------ *)

let test_jobs_identical () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:20 ~name:"serve jobs 1/2/4 identical"
       (QCheck.pair (QCheck.int_bound 100_000) (QCheck.int_range 512 4096))
       (fun (seed, n) ->
         let src = W.gen p ~mix:W.Hardcase ~seed ~n in
         let run j =
           let dst = Array.make n 0 in
           R.patterns ~jobs:j ~par_min:256 p src dst;
           dst
         in
         let want = run 1 in
         run 2 = want && run 4 = want))

(* ------------------------------------------------------------------ *)
(* Zero allocation per element on the steady-state path.               *)
(* ------------------------------------------------------------------ *)

let test_zero_alloc () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let n = 65536 in
  let src = W.gen p ~mix:W.Uniform ~seed:42 ~n in
  let dst = Array.make n 0 in
  (* Warm up: pin the plan clone on this domain, fault everything in. *)
  R.patterns ~jobs:1 ~par_min:max_int p src dst;
  R.patterns ~jobs:1 ~par_min:max_int p src dst;
  let w0 = Gc.minor_words () in
  R.patterns ~jobs:1 ~par_min:max_int p src dst;
  let dw = Gc.minor_words () -. w0 in
  (* The shard setup (one closure, one 4-slot scratch) is the only
     allowed allocation: with 65536 elements, even one boxed float per
     element would show up as >= 3 * 65536 words. *)
  if dw > 1024.0 then
    Alcotest.failf "serving path allocates: %.0f minor words for %d uniform calls" dw n

(* The double pipeline too (the acceptance criterion's benchmark shape:
   uniform float32 mix through eval_doubles).  bfloat16 exercises the
   integer-rounding input leg, which is the allocation-riskier one. *)
let test_zero_alloc_doubles () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let n = 65536 in
  let pats = W.gen p ~mix:W.Uniform ~seed:43 ~n in
  let src = Array.map (fun pat -> K.to_double p pat) pats in
  let dst = Array.make n 0.0 in
  R.doubles ~jobs:1 ~par_min:max_int p src dst;
  R.doubles ~jobs:1 ~par_min:max_int p src dst;
  let w0 = Gc.minor_words () in
  R.doubles ~jobs:1 ~par_min:max_int p src dst;
  let dw = Gc.minor_words () -. w0 in
  if dw > 1024.0 then
    Alcotest.failf "doubles pipeline allocates: %.0f minor words for %d uniform calls" dw n

(* ------------------------------------------------------------------ *)
(* Bigarray pipelines agree with the array pipelines.                  *)
(* ------------------------------------------------------------------ *)

let test_ba_pipelines () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let n = 4096 in
  let src = W.gen p ~mix:W.Hardcase ~seed:11 ~n in
  let dst = Array.make n 0 in
  R.patterns p src dst;
  (* int32 pattern buffers *)
  let inb = R.create_i32 n and outb = R.create_i32 n in
  Array.iteri (fun i pat -> Bigarray.Array1.set inb i (Int32.of_int pat)) src;
  R.ba32 p inb outb;
  for i = 0 to n - 1 do
    let got = Int32.to_int (Bigarray.Array1.get outb i) land 0xFFFF_FFFF in
    if got <> dst.(i) then Alcotest.failf "ba32 mismatch at %d: %04x <> %04x" i got dst.(i)
  done;
  (* float64 value buffers vs the float-array pipeline *)
  let srcd = Array.map (fun pat -> K.to_double p pat) src in
  let dstd = Array.make n 0.0 in
  R.doubles p srcd dstd;
  let inf = R.create_f64 n and outf = R.create_f64 n in
  Array.iteri (fun i x -> Bigarray.Array1.set inf i x) srcd;
  R.ba64 p inf outf;
  for i = 0 to n - 1 do
    let got = Bigarray.Array1.get outf i in
    if Int64.bits_of_float got <> Int64.bits_of_float dstd.(i) then
      Alcotest.failf "ba64 mismatch at %d" i
  done

(* ------------------------------------------------------------------ *)
(* Batch delegation: the old API rides the kernels and stays           *)
(* bit-identical to the boxed closure path, edge patterns included.    *)
(* ------------------------------------------------------------------ *)

let test_batch_delegates () =
  let g = Funcs.Libm.get S.bfloat16 "exp" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let n = 8192 in
  let src = W.gen p ~mix:W.Hardcase ~seed:3 ~n in
  let dst = Array.make n 0 and dst_boxed = Array.make n 0 in
  Funcs.Batch.eval_patterns g src dst;
  Funcs.Batch.eval_patterns_boxed g src dst_boxed;
  Alcotest.(check bool) "patterns: kernel = boxed" true (dst = dst_boxed);
  let srcd = Array.map (fun pat -> K.to_double p pat) src in
  let dd = Array.make n 0.0 and dd_boxed = Array.make n 0.0 in
  Funcs.Batch.eval_doubles g srcd dd;
  Funcs.Batch.eval_doubles_boxed g srcd dd_boxed;
  for i = 0 to n - 1 do
    if Int64.bits_of_float dd.(i) <> Int64.bits_of_float dd_boxed.(i) then
      Alcotest.failf "doubles: kernel <> boxed at %d (pattern %04x)" i src.(i)
  done

(* Posit targets have no kernel; the old path must still work. *)
let test_posit_fallback () =
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Draft S.posit16 "exp" in
  Alcotest.(check bool) "posit16 has no kernel" true (Funcs.Kernels.of_generated g = None);
  let src = Array.init 1024 (fun i -> i * 64) in
  let dst = Array.make 1024 0 in
  Funcs.Batch.eval_patterns g src dst;
  Array.iteri
    (fun i pat ->
      if dst.(i) <> G.eval_pattern g pat then Alcotest.failf "posit mismatch at %04x" pat)
    src

(* ------------------------------------------------------------------ *)
(* Workload generator properties.                                      *)
(* ------------------------------------------------------------------ *)

let test_workload () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  (* Determinism: same (mix, seed, n) -> same patterns. *)
  List.iter
    (fun mix ->
      Alcotest.(check bool)
        (W.mix_to_string mix ^ " deterministic")
        true
        (W.gen p ~mix ~seed:5 ~n:512 = W.gen p ~mix ~seed:5 ~n:512))
    [ W.Uniform; W.Hardcase; W.Subnormal ];
  (* Uniform stays on the fast path. *)
  let u = W.gen p ~mix:W.Uniform ~seed:5 ~n:4096 in
  Alcotest.(check bool) "uniform all fast" true (Array.for_all (K.is_fast p) u);
  (* Hardcase hits the fallback often. *)
  let h = W.gen p ~mix:W.Hardcase ~seed:5 ~n:4096 in
  let slow = Array.fold_left (fun acc pat -> if K.is_fast p pat then acc else acc + 1) 0 h in
  Alcotest.(check bool) "hardcase >= 25% fallback" true (slow * 4 >= 4096);
  (* Subnormal mix concentrates on the zero-exponent field. *)
  let s = W.gen p ~mix:W.Subnormal ~seed:5 ~n:4096 in
  let subs =
    Array.fold_left
      (fun acc pat -> if (pat lsr 7) land 0xFF = 0 then acc + 1 else acc)
      0 s
  in
  Alcotest.(check bool) "subnormal >= 60% zero-exponent" true (subs * 10 >= 4096 * 6);
  (* Patterns stay inside the format width. *)
  Array.iter (fun pat -> assert (pat >= 0 && pat < 1 lsl 16)) s;
  (* mix round-trip *)
  List.iter
    (fun mix -> Alcotest.(check bool) "mix roundtrip" true (W.mix_of_string (W.mix_to_string mix) = Some mix))
    [ W.Uniform; W.Hardcase; W.Subnormal ]

(* SLO measurement sanity: positive, ordered percentiles. *)
let test_measure () =
  let g = Funcs.Libm.get S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let src = W.gen p ~mix:W.Uniform ~seed:1 ~n:2048 in
  let slo = R.measure ~jobs:1 p src ~batches:8 in
  Alcotest.(check bool) "calls/sec > 0" true (slo.R.calls_per_sec > 0.0);
  Alcotest.(check bool) "p50 <= p99" true (slo.R.p50_ns <= slo.R.p99_ns);
  Alcotest.(check bool) "p50 > 0" true (slo.R.p50_ns > 0.0)

(* Config knob: RLIBM_BATCH_PAR_MIN feeds Batch's sharding threshold. *)
let test_par_min_config () =
  Alcotest.(check int) "default par_min" (1 lsl 14) Rlibm.Config.default.batch_par_min

(* ------------------------------------------------------------------ *)
(* Progressive tier (RLIBM-PROG): the prefix tier is a serving detail, *)
(* never a semantic one — tiered output must be bit-identical to the   *)
(* full kernel and the scalar path on every input, and a certificate   *)
(* miss escalates instead of deciding.                                 *)
(* ------------------------------------------------------------------ *)

let prog_cfg = { Rlibm.Config.default with progressive = true }

(* Tiered vs full kernel vs scalar, across targets x functions x all
   five standard modes (exhaustive16 under RLIBM_EXHAUSTIVE).  Combos
   whose generation certifies no prefix still run — the tiered pipeline
   then takes the counted full path, which must agree all the same. *)
let tier_identity16 (base : S.target) name mode () =
  let t = if mode = Fp.Rounding_mode.Rne then base else S.with_mode base mode in
  let g = Funcs.Libm.get ~cfg:prog_cfg t name in
  let p =
    match Funcs.Kernels.of_generated g with
    | Some p -> p
    | None -> Alcotest.failf "%s %s: no kernel" t.tname name
  in
  let src = patterns16 () in
  let n = Array.length src in
  let dst = Array.make n 0 in
  let ctr = K.counters () in
  R.patterns_tiered p src dst ctr;
  let dst_full = Array.make n 0 in
  R.patterns { p with K.tier = None } src dst_full;
  Array.iteri
    (fun i pat ->
      let want = G.eval_pattern g pat in
      if dst.(i) <> want then
        Alcotest.failf "%s %s @%s: pattern %04x: tiered %04x <> scalar %04x" t.tname name
          (Fp.Rounding_mode.to_string mode)
          pat dst.(i) want;
      if dst_full.(i) <> want then
        Alcotest.failf "%s %s @%s: pattern %04x: full kernel %04x <> scalar %04x" t.tname name
          (Fp.Rounding_mode.to_string mode)
          pat dst_full.(i) want)
    src;
  (* Every call lands in exactly one tier counter. *)
  Alcotest.(check int)
    (Printf.sprintf "%s %s @%s: tier counts conserve" t.tname name
       (Fp.Rounding_mode.to_string mode))
    n
    (ctr.(K.c_prefix) + ctr.(K.c_full) + ctr.(K.c_fallback))

let tier_identity_cases () =
  let combos =
    if exhaustive then
      List.concat_map
        (fun t -> List.map (fun f -> (t, f)) [ "log2"; "exp" ])
        [ S.bfloat16; S.float16 ]
    else [ (S.bfloat16, "log2"); (S.float16, "exp") ]
  in
  List.concat_map
    (fun ((t : S.target), f) ->
      List.map
        (fun mode ->
          Alcotest.test_case
            (Printf.sprintf "tiered %s %s @%s" t.tname f (Fp.Rounding_mode.to_string mode))
            `Slow (tier_identity16 t f mode))
        Fp.Rounding_mode.standard)
    combos

(* The acceptance workload: bfloat16 log2 must actually certify a tier,
   and a uniform mix must serve >= 90% of calls from the prefix. *)
let test_tier_fast_share () =
  let g = Funcs.Libm.get ~cfg:prog_cfg S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  let tp =
    match p.K.tier with
    | Some tp -> tp
    | None -> Alcotest.fail "bfloat16 log2: no certified prefix tier"
  in
  Alcotest.(check bool) "prefix is strict" true (tp.(0).K.tk >= 1);
  let n = 8192 in
  let src = W.gen p ~mix:W.Uniform ~seed:9 ~n in
  let dst = Array.make n 0 in
  let ctr = K.counters () in
  R.patterns_tiered ~jobs:1 p src dst ctr;
  Alcotest.(check int) "counts conserve" n (ctr.(K.c_prefix) + ctr.(K.c_full) + ctr.(K.c_fallback));
  Alcotest.(check bool)
    (Printf.sprintf "uniform >= 90%% prefix tier (got %d/%d)" ctr.(K.c_prefix) n)
    true
    (ctr.(K.c_prefix) * 10 >= n * 9)

(* Miss-never-wrong, adversarially: poison a pseudo-random subset of the
   dense certificate rows with NaN (the kernel's miss marker) in a
   cloned plan.  Every poisoned bucket becomes a forced certificate
   miss — outputs must stay bit-identical to the scalar path, and the
   forced misses must surface as full-polynomial counts, not prefix
   counts.  This drives the escalation path even when the real
   certificates cover 100% of the workload. *)
let test_miss_never_wrong () =
  let g = Funcs.Libm.get ~cfg:prog_cfg S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  if p.K.tier = None then Alcotest.fail "bfloat16 log2: no certified prefix tier";
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"certificate miss escalates, never decides"
       (QCheck.pair (QCheck.int_range 1 7) (QCheck.int_bound 100_000))
       (fun (keep_mod, seed) ->
         let q = K.clone p in
         (match q.K.tier with
         | None -> ()
         | Some tps ->
             Array.iter
               (fun (tp : K.tpiece) ->
                 List.iter
                   (fun (tc : K.tcert) ->
                     let rows = Array.length tc.K.t_coeffs / max 1 tp.K.tk in
                     for row = 0 to rows - 1 do
                       (* Deterministic pseudo-random poisoning. *)
                       if (row + seed) mod keep_mod <> 0 then
                         for j = 0 to tp.K.tk - 1 do
                           tc.K.t_coeffs.((row * tp.K.tk) + j) <- Float.nan
                         done
                     done)
                   [ tp.K.tneg; tp.K.tpos ])
               tps);
         let n = 2048 in
         let src = W.gen p ~mix:W.Uniform ~seed ~n in
         let dst = Array.make n 0 in
         let ctr = K.counters () in
         R.patterns_tiered ~jobs:1 ~par_min:max_int q src dst ctr;
         Array.for_all2 (fun got pat -> got = G.eval_pattern g pat) dst src
         && ctr.(K.c_prefix) + ctr.(K.c_full) + ctr.(K.c_fallback) = n))

(* The tiered pipeline keeps the serving path's zero-allocation
   contract: certificate probes are integer/float ops over preallocated
   dense tables, and the counters are a plain int array. *)
let test_tier_zero_alloc () =
  let g = Funcs.Libm.get ~cfg:prog_cfg S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  if p.K.tier = None then Alcotest.fail "bfloat16 log2: no certified prefix tier";
  let n = 65536 in
  let src = W.gen p ~mix:W.Uniform ~seed:42 ~n in
  let dst = Array.make n 0 in
  let ctr = K.counters () in
  R.patterns_tiered ~jobs:1 ~par_min:max_int p src dst ctr;
  R.patterns_tiered ~jobs:1 ~par_min:max_int p src dst ctr;
  let w0 = Gc.minor_words () in
  R.patterns_tiered ~jobs:1 ~par_min:max_int p src dst ctr;
  let dw = Gc.minor_words () -. w0 in
  if dw > 1024.0 then
    Alcotest.failf "tiered serving path allocates: %.0f minor words for %d uniform calls" dw n

(* Tier metadata invariants on every kernel-capable combo that certified
   one: strict prefix (tk < nt is enforced at lowering), dense tables
   sized rows * tk, and the non-progressive generation of the same
   function carries no tier at all (the classic path is untouched). *)
let test_tier_shape () =
  let g = Funcs.Libm.get ~cfg:prog_cfg S.bfloat16 "log2" in
  let p = Option.get (Funcs.Kernels.of_generated g) in
  (match p.K.tier with
  | None -> Alcotest.fail "bfloat16 log2: no certified prefix tier"
  | Some tps ->
      Array.iteri
        (fun i (tp : K.tpiece) ->
          Alcotest.(check bool) (Printf.sprintf "piece %d: tk >= 1" i) true (tp.K.tk >= 1);
          List.iter
            (fun (tc : K.tcert) ->
              Alcotest.(check int)
                (Printf.sprintf "piece %d: dense rows divide evenly" i)
                0
                (Array.length tc.K.t_coeffs mod tp.K.tk))
            [ tp.K.tneg; tp.K.tpos ])
        tps);
  let g0 = Funcs.Libm.get S.bfloat16 "log2" in
  let p0 = Option.get (Funcs.Kernels.of_generated g0) in
  Alcotest.(check bool) "classic generation has no tier" true (p0.K.tier = None)

let () =
  Alcotest.run "serve"
    [
      ("identity16", identity_tier ());
      ( "float32",
        [ Alcotest.test_case "log2 strided differential" `Slow test_float32_strided ] );
      ( "pipelines",
        [
          Alcotest.test_case "verify over mixes" `Quick test_verify_mixes;
          Alcotest.test_case "bigarray = array" `Quick test_ba_pipelines;
          Alcotest.test_case "batch delegates" `Quick test_batch_delegates;
          Alcotest.test_case "posit fallback" `Quick test_posit_fallback;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "jobs 1/2/4 identical" `Slow test_jobs_identical;
          Alcotest.test_case "zero alloc (patterns)" `Quick test_zero_alloc;
          Alcotest.test_case "zero alloc (doubles)" `Quick test_zero_alloc_doubles;
          Alcotest.test_case "workload mixes" `Quick test_workload;
          Alcotest.test_case "slo measure" `Quick test_measure;
          Alcotest.test_case "par_min config" `Quick test_par_min_config;
        ] );
      ("tier_identity16", tier_identity_cases ());
      ( "tier",
        [
          Alcotest.test_case "uniform fast-tier share" `Quick test_tier_fast_share;
          Alcotest.test_case "miss never wrong (qcheck)" `Slow test_miss_never_wrong;
          Alcotest.test_case "zero alloc (tiered)" `Quick test_tier_zero_alloc;
          Alcotest.test_case "tier shape invariants" `Quick test_tier_shape;
        ] );
    ]
