(* The CI bench-regression gate: parsing of the machine-written
   BENCH_<rev>.json shape, direction inference, and the synthetic
   regression the ISSUE requires the gate to flag. *)

let bench_json metrics =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"rev\": \"abc1234\",\n  \"date\": \"2026-01-01T00:00:00Z\",\n";
  Buffer.add_string b "  \"metrics\": {\n";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    %S: %.3f%s\n" k v (if i = List.length metrics - 1 then "" else ",")))
    metrics;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let base_metrics =
  [
    ("bigint.mixed_small(512).speedup", 2.482);
    ("gen.bfloat16_log2_s", 2.514);
    ("gen.float32_log2_s", 2.2);
    ("lp.warm_grow_speedup", 6.5);
    ("lp.warm_grow_pivots", 15.0);
  ]

let test_parse_roundtrip () =
  let parsed = Benchgate.parse_metrics (bench_json base_metrics) in
  Alcotest.(check int) "all metrics parsed" (List.length base_metrics) (List.length parsed);
  List.iter2
    (fun (k, v) (k', v') ->
      Alcotest.(check string) "key" k k';
      Alcotest.(check (float 0.0005)) k v v')
    base_metrics parsed

let test_parse_rejects_garbage () =
  Alcotest.check_raises "no metrics object" (Benchgate.Parse_error "missing \"\\\"metrics\\\"\"")
    (fun () -> ignore (Benchgate.parse_metrics "{ \"rev\": \"x\" }"))

let test_direction () =
  Alcotest.(check bool) "time is lower-better" true
    (Benchgate.direction_of "gen.float32_log2_s" = Benchgate.Lower_better);
  Alcotest.(check bool) "speedup is higher-better" true
    (Benchgate.direction_of "lp.warm_grow_speedup" = Benchgate.Higher_better);
  Alcotest.(check bool) "throughput is higher-better" true
    (Benchgate.direction_of "campaign.inputs_per_sec" = Benchgate.Higher_better);
  Alcotest.(check bool) "percentage is higher-better" true
    (Benchgate.direction_of "campaign.fast_path_pct" = Benchgate.Higher_better);
  Alcotest.(check bool) "campaign time is lower-better" true
    (Benchgate.direction_of "campaign.bf16_log2_fast_s" = Benchgate.Lower_better);
  Alcotest.(check bool) "gen is gated" true (Benchgate.gated "gen.float32_log2_s");
  Alcotest.(check bool) "lp is gated" true (Benchgate.gated "lp.dense_solve_ns");
  Alcotest.(check bool) "round is gated" true (Benchgate.gated "round.interval_bf16_odd_ns");
  Alcotest.(check bool) "sweep is gated" true (Benchgate.gated "sweep.bf16_log2_cold_s");
  Alcotest.(check bool) "campaign is gated" true (Benchgate.gated "campaign.inputs_per_sec");
  Alcotest.(check bool) "bigint is not gated" false (Benchgate.gated "bigint.mul.speedup")

(* A fast-path share or report-agreement percentage that *drops* is a
   regression even though it is not a time: 100% -> 70% oracle-free
   means the certificate table stopped covering the input space. *)
let test_pct_drop_regresses () =
  let base = [ ("campaign.fast_path_pct", 100.0) ] in
  let curr = [ ("campaign.fast_path_pct", 70.0) ] in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base curr in
  Alcotest.(check bool) "fast-path collapse trips the gate" true (Benchgate.any_regression vs)

(* The acceptance scenario: a synthetic >25% wall-clock regression in a
   gen.* metric must trip the gate. *)
let test_flags_gen_regression () =
  let curr = List.map (fun (k, v) -> if k = "gen.float32_log2_s" then (k, v *. 1.30) else (k, v)) base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  Alcotest.(check bool) "regression detected" true (Benchgate.any_regression vs);
  let v = List.find (fun (v : Benchgate.verdict) -> v.key = "gen.float32_log2_s") vs in
  Alcotest.(check bool) "the gen metric is the one flagged" true v.regressed;
  Alcotest.(check int) "exactly one regression" 1
    (List.length (List.filter (fun (v : Benchgate.verdict) -> v.regressed) vs))

(* A speedup metric regresses by *dropping*. *)
let test_flags_lp_speedup_drop () =
  let curr = List.map (fun (k, v) -> if k = "lp.warm_grow_speedup" then (k, v /. 1.4) else (k, v)) base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  let v = List.find (fun (v : Benchgate.verdict) -> v.key = "lp.warm_grow_speedup") vs in
  Alcotest.(check bool) "speedup drop flagged" true v.regressed

let test_within_threshold_ok () =
  let curr = List.map (fun (k, v) -> (k, v *. 1.10)) base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  Alcotest.(check bool) "10% drift passes a 25% gate" false (Benchgate.any_regression vs)

(* Ungated families never fail the gate, however bad. *)
let test_ungated_families_ignored () =
  let curr =
    List.map (fun (k, v) -> if k = "bigint.mixed_small(512).speedup" then (k, v /. 10.0) else (k, v)) base_metrics
  in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  Alcotest.(check bool) "bigint collapse is informational" false (Benchgate.any_regression vs)

(* The gate's first blind spot: a gated metric that vanishes from the
   current run used to be skipped silently — renaming or dropping a
   gated benchmark un-gated it.  Now it is a failure. *)
let test_vanished_gated_metric_fails () =
  let curr = List.remove_assoc "lp.warm_grow_pivots" base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  Alcotest.(check bool) "vanished gated metric fails the gate" true (Benchgate.any_regression vs);
  let v = List.find (fun (v : Benchgate.verdict) -> v.key = "lp.warm_grow_pivots") vs in
  Alcotest.(check bool) "the vanished metric is the one flagged" true v.regressed;
  Alcotest.(check bool) "its current value is absent" true (v.curr = None)

(* ... but a vanished *non-gated* metric stays informational, and a
   metric new in the current run is never a regression (it has no
   baseline to regress from). *)
let test_asymmetric_ungated_and_new_ok () =
  let curr =
    ("lp.new_metric_ns", 1.0)
    :: List.remove_assoc "bigint.mixed_small(512).speedup" base_metrics
  in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  Alcotest.(check bool) "no spurious regressions" false (Benchgate.any_regression vs);
  let dropped = List.find (fun (v : Benchgate.verdict) -> v.key = "bigint.mixed_small(512).speedup") vs in
  Alcotest.(check bool) "ungated vanish reported, not failed" true
    (dropped.curr = None && not dropped.regressed);
  let fresh = List.find (fun (v : Benchgate.verdict) -> v.key = "lp.new_metric_ns") vs in
  Alcotest.(check bool) "new metric reported, not failed" true
    (fresh.base = None && not fresh.regressed)

(* The gate's second blind spot: a gated work counter at 0.0 in the
   baseline.  curr/base was computed as 0/0 -> reported 1.0, so any
   growth passed.  Growth from zero is now an infinite ratio. *)
let test_zero_baseline_growth_fails () =
  let base = ("lp.float32_log2_warm_fallbacks", 0.0) :: base_metrics in
  let curr = ("lp.float32_log2_warm_fallbacks", 37.0) :: base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base curr in
  let v = List.find (fun (v : Benchgate.verdict) -> v.key = "lp.float32_log2_warm_fallbacks") vs in
  Alcotest.(check bool) "0 -> 37 fallbacks trips the gate" true v.regressed;
  Alcotest.(check bool) "ratio is infinite" true (v.ratio = infinity)

let test_zero_stays_zero_ok () =
  let both = ("lp.float32_log2_warm_fallbacks", 0.0) :: base_metrics in
  let vs = Benchgate.compare_metrics ~threshold:0.25 both both in
  Alcotest.(check bool) "0 -> 0 passes" false (Benchgate.any_regression vs)

(* Symmetric blind spot on the Higher_better side: base/curr with a
   zero-or-negative current speedup used to divide to <= 0, under the
   1.25 bar, and pass. *)
let test_speedup_collapse_fails () =
  let curr =
    List.map (fun (k, v) -> if k = "lp.warm_grow_speedup" then (k, 0.0) else (k, v)) base_metrics
  in
  let vs = Benchgate.compare_metrics ~threshold:0.25 base_metrics curr in
  let v = List.find (fun (v : Benchgate.verdict) -> v.key = "lp.warm_grow_speedup") vs in
  Alcotest.(check bool) "speedup collapsing to 0 trips the gate" true v.regressed;
  Alcotest.(check bool) "ratio is infinite" true (v.ratio = infinity)

(* Malformed numbers name the metric they sit under. *)
let test_parse_error_names_the_key () =
  let doc =
    "{\n  \"metrics\": {\n    \"gen.float32_log2_s\": 2.2,\n    \"lp.warm_grow_speedup\": oops\n  }\n}\n"
  in
  match Benchgate.parse_metrics doc with
  | _ -> Alcotest.fail "malformed number accepted"
  | exception Benchgate.Parse_error msg ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S names the offending key" msg)
        true
        (contains "lp.warm_grow_speedup" msg)

let () =
  Alcotest.run "benchgate"
    [
      ( "gate",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "direction + gating" `Quick test_direction;
          Alcotest.test_case "fast-path pct drop regresses" `Quick test_pct_drop_regresses;
          Alcotest.test_case "flags >25% gen regression" `Quick test_flags_gen_regression;
          Alcotest.test_case "flags lp speedup drop" `Quick test_flags_lp_speedup_drop;
          Alcotest.test_case "within threshold passes" `Quick test_within_threshold_ok;
          Alcotest.test_case "ungated families ignored" `Quick test_ungated_families_ignored;
          Alcotest.test_case "vanished gated metric fails" `Quick test_vanished_gated_metric_fails;
          Alcotest.test_case "ungated vanish / new metric informational" `Quick
            test_asymmetric_ungated_and_new_ok;
          Alcotest.test_case "zero-baseline growth fails" `Quick test_zero_baseline_growth_fails;
          Alcotest.test_case "zero stays zero passes" `Quick test_zero_stays_zero_ok;
          Alcotest.test_case "speedup collapse fails" `Quick test_speedup_collapse_fails;
          Alcotest.test_case "parse error names the key" `Quick test_parse_error_names_the_key;
        ] );
    ]
