(* Machine checks promised by lib/funcs/specs.ml's header:

   1. every named tiny-input snap threshold ([sinh_snap] and friends) is
      brute-forced against the Ziv oracle around its boundary, per
      target — float16's bounds really do differ from float32's, and the
      posit thresholds lean on the tapered-precision argument;
   2. the 16-bit trig special regions are swept exhaustively, both
      signs, with expectations stated independently of the
      implementation.  Signed zeros are compared by *pattern*, not by
      value — the seed's sinpi bug (+0 for negative integers) is
      invisible to value-level equality;
   3. the Payne–Hanek reduction is differentially tested against
      Oracle.Elementary on adversarial inputs: the output compensation
      applied to correctly rounded component values of the reduced
      residual must land within a few double ulps of the correctly
      rounded sin/cos/tan of x itself. *)

module Specs = Funcs.Specs
module R = Funcs.Reductions
module E = Oracle.Elementary
module Q = Rational
module Repr = Fp.Representation
open Test_util

let st = rand 0x57EC

(* CR pattern of [oracle] at the exact double [x], in [t]'s format. *)
let cr_pattern (t : Specs.target) oracle x =
  let module T = (val t.repr) in
  E.correctly_rounded ~round:(T.round_rational ~mode:t.mode) oracle (Q.of_float x)

(* ------------------------------------------------------------------ *)
(* 1. Snap thresholds vs the oracle.                                   *)
(* ------------------------------------------------------------------ *)

(* The snap analyses assume round-to-nearest (the to-odd targets reject
   these functions in Specs.by_name), so the RNE targets are the ones
   with a contract to check. *)
let rne_targets =
  [ Specs.float32; Specs.bfloat16; Specs.float16; Specs.posit32; Specs.posit16 ]

(* Every named threshold, with the special-case builder it guards and
   the oracle that arbitrates. *)
let snapped : (string * (Specs.target -> int -> int option) * (Specs.target -> float) * E.fn) list
    =
  [
    ("sinh", Specs.sinh_special, Specs.sinh_snap, E.sinh);
    ("cosh", Specs.cosh_special, Specs.cosh_snap, E.cosh);
    ("tanh", Specs.tanh_special, Specs.tanh_snap, E.tanh);
    ("cos", Specs.cos_special, Specs.cos_snap, E.cos);
    ("cospi", Specs.cospi_special, Specs.cospi_snap, E.cospi);
    ("expm1", Specs.expm1_special, Specs.expm1_snap, E.expm1);
    ("log1p", Specs.log1p_special, Specs.log1p_snap, E.log1p);
    ("sin", Specs.sin_special, Specs.trig_snap, E.sin);
    ("tan", Specs.tan_special, Specs.trig_snap, E.tan);
    ("sinpi", Specs.sinpi_special, (fun (t : Specs.target) -> t.trig_tiny), E.sinpi);
  ]

(* Around one threshold on one target: walk the patterns straddling the
   boundary (both signs) plus strided samples of the binades just below
   it.  Inside the radius the special must fire and agree with the
   oracle's correctly rounded pattern; wherever it fires it must agree
   (a special that overreaches its sound region is the same bug). *)
let check_snap (t : Specs.target) (name, special, snap, oracle) =
  let module T = (val t.repr) in
  let special = special t in
  let s = snap t in
  let check pat =
    if pat > 0 then
      match T.classify pat with
      | Repr.Finite ->
          let x = T.to_double pat in
          if x <> 0.0 then (
            match special pat with
            | Some got ->
                let want = cr_pattern t oracle x in
                if got <> want then
                  Alcotest.failf "%s %s: special(%h) = %#x but the oracle rounds to %#x" t.tname
                    name x got want
            | None ->
                if Float.abs x <= s then
                  Alcotest.failf "%s %s: special silent at %h inside snap radius %h" t.tname name
                    x s)
      | _ -> ()
  in
  let check_both pat =
    check pat;
    match T.classify pat with
    | Repr.Finite -> check (T.of_double (-.T.to_double pat))
    | _ -> ()
  in
  (* The boundary pattern, a run below it, and a few just above. *)
  let bpat = T.of_double s in
  for i = -4 to 48 do
    let p = bpat - i in
    if p > 0 then check_both p
  done;
  (* Strided coverage of the three binades below the boundary. *)
  for _ = 1 to 16 do
    let x = Float.ldexp (s *. (0.5 +. Random.State.float st 0.5)) (-Random.State.int st 3) in
    check_both (T.of_double x)
  done

let test_snap_thresholds (t : Specs.target) () = List.iter (check_snap t) snapped

(* ------------------------------------------------------------------ *)
(* 2. Exhaustive 16-bit trig specials, both signs.                     *)
(* ------------------------------------------------------------------ *)

(* IEEE 16-bit targets: every pattern, with the sign bit read straight
   off the pattern (bit 15) so the signed-zero expectation is stated
   independently of the representation module. *)
let ieee16_trig_specials (t : Specs.target) () =
  let module T = (val t.repr) in
  let sinpi_s = Specs.sinpi_special t
  and cospi_s = Specs.cospi_special t
  and sin_s = Specs.sin_special t
  and cos_s = Specs.cos_special t
  and tan_s = Specs.tan_special t in
  let all = [ ("sinpi", sinpi_s); ("cospi", cospi_s); ("sin", sin_s); ("cos", cos_s); ("tan", tan_s) ] in
  let one = T.of_double 1.0 in
  let trig_snap = Specs.trig_snap t and cos_snap = Specs.cos_snap t in
  for pat = 0 to 65535 do
    match T.classify pat with
    | Repr.Nan | Repr.Inf _ ->
        (* NaN propagates; the trig family has no limit at infinity. *)
        List.iter
          (fun (n, s) ->
            if s pat <> Some t.nan then
              Alcotest.failf "%s %s: pattern %#x must map to NaN" t.tname n pat)
          all
    | Repr.Finite ->
        let x = T.to_double pat in
        let a = Float.abs x in
        let sign = pat land 0x8000 in
        if a >= t.trig_int then (
          (* sinpi is odd: the exact zero carries x's sign bit.  Pattern
             equality — value equality can't see a +0/-0 swap. *)
          (match sinpi_s pat with
          | Some z when z = sign -> ()
          | Some z -> Alcotest.failf "%s sinpi(%h): got %#x, want signed zero %#x" t.tname x z sign
          | None -> Alcotest.failf "%s sinpi(%h): special must fire at integers" t.tname x);
          (* Every 16-bit value at or past trig_int is an even integer
             (the ulp there is at least 2), so cospi is exactly 1. *)
          match cospi_s pat with
          | Some o when o = one -> ()
          | Some o -> Alcotest.failf "%s cospi(%h): got %#x, want 1" t.tname x o
          | None -> Alcotest.failf "%s cospi(%h): special must fire at integers" t.tname x);
        if a <= t.trig_tiny then (
          match sinpi_s pat with
          | Some z ->
              if z land 0x8000 <> sign then
                Alcotest.failf "%s sinpi(%h): sign lost in tiny region (got %#x)" t.tname x z;
              if x = 0.0 && z <> pat then
                Alcotest.failf "%s sinpi(%c0): signed zero must pass through, got %#x" t.tname
                  (if sign = 0 then '+' else '-')
                  z
          | None -> Alcotest.failf "%s sinpi(%h): tiny special must fire" t.tname x);
        if a <= trig_snap then (
          (match sin_s pat with
          | Some z when z = pat -> ()
          | _ -> Alcotest.failf "%s sin(%h): tiny snap must pass the pattern through" t.tname x);
          match tan_s pat with
          | Some z when z = pat -> ()
          | _ -> Alcotest.failf "%s tan(%h): tiny snap must pass the pattern through" t.tname x);
        if a <= cos_snap then
          match cos_s pat with
          | Some o when o = one -> ()
          | _ -> Alcotest.failf "%s cos(%h): tiny snap must produce exactly 1" t.tname x
  done

(* posit16: a single unsigned zero and no infinities, but the integer
   region exists (maxpos = 2^28 > trig_int) and must collapse cleanly. *)
let posit16_trig_specials () =
  let t = Specs.posit16 in
  let module T = (val t.repr) in
  let sinpi_s = Specs.sinpi_special t and cospi_s = Specs.cospi_special t in
  let one = T.of_double 1.0 in
  let seen = ref 0 in
  for pat = 0 to 65535 do
    match T.classify pat with
    | Repr.Nan | Repr.Inf _ ->
        if sinpi_s pat <> Some t.nan || cospi_s pat <> Some t.nan then
          Alcotest.failf "posit16 sinpi/cospi: NaR must map to NaR"
    | Repr.Finite ->
        let x = T.to_double pat in
        if x <> 0.0 && Float.abs x >= t.trig_int then (
          incr seen;
          (match sinpi_s pat with
          | Some 0 -> () (* posits collapse both signs onto their one zero *)
          | Some z -> Alcotest.failf "posit16 sinpi(%h): got %#x, want the single zero" x z
          | None -> Alcotest.failf "posit16 sinpi(%h): special must fire at integers" x);
          match cospi_s pat with
          | Some o when o = one -> ()
          | _ -> Alcotest.failf "posit16 cospi(%h): want exactly 1" x)
  done;
  Alcotest.(check bool) "posit16 reaches the integer region" true (!seen > 0)

(* ------------------------------------------------------------------ *)
(* 3. Payne–Hanek reduction vs the oracle.                             *)
(* ------------------------------------------------------------------ *)

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* Adversarial float32 inputs: the nearest float32 to k*(pi/2) for a
   spread of k (maximal cancellation in the level-1 reduction), whole
   binades up to and including the largest finite float32, and random
   full-range patterns. *)
let adversarial_inputs () =
  let acc = ref [] in
  let add x = if Float.is_finite x && x > 0.0 then acc := x :: !acc in
  List.iter
    (fun k -> add (f32 (float_of_int k *. Float.pi /. 2.0)))
    [ 1; 2; 3; 5; 7; 11; 101; 1000; 75000; 1000003; 123456789 ];
  List.iter
    (fun e ->
      add (Float.ldexp 1.0 e);
      add (f32 (Float.ldexp 0x1.fffffep0 e)))
    [ 24; 31; 45; 60; 77; 90; 101; 120; 127 ];
  add 0x1.fffffep127;
  for _ = 1 to 40 do
    add (f32 (Float.ldexp (1.0 +. Random.State.float st 1.0) (Random.State.int st 120)))
  done;
  !acc

(* Feed the *correctly rounded* component values at the reduced residual
   through each compensation and compare against the oracle at x.  The
   residual r carries ~60+ significant bits relative to itself, and the
   component doubles each at most half an ulp of error, so a healthy
   reduction lands within a few double ulps; a quadrant, sign, or table
   bug misses by orders of magnitude. *)
let test_payne_hanek () =
  let budget = 16L in
  let check1 x =
    let red = R.trig_reduce x in
    let n = (red.key lsr 4) land 0xFF in
    if n > 128 then Alcotest.failf "trig_reduce %h: table index %d out of range" x n;
    if Float.abs red.r > 0.0030680 then
      Alcotest.failf "trig_reduce %h: residual %h above pi/1024" x red.r;
    let v = [| E.to_double E.sin (Q.of_float red.r); E.to_double E.cos (Q.of_float red.r) |] in
    List.iter
      (fun (name, comp, oracle) ->
        let got = comp red v in
        let want = E.to_double oracle (Q.of_float x) in
        if ulps got want > budget then
          Alcotest.failf "%s(%h): compensated %h vs oracle %h (%Ld ulps)" name x got want
            (ulps got want))
      [
        ("sin", R.sin_compensate, E.sin);
        ("cos", R.cos_compensate, E.cos);
        ("tan", R.tan_compensate, E.tan);
      ]
  in
  List.iter
    (fun x ->
      check1 x;
      check1 (-.x))
    (adversarial_inputs ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "specs"
    [
      ( "snap-thresholds",
        List.map
          (fun (t : Specs.target) ->
            Alcotest.test_case t.tname `Quick (test_snap_thresholds t))
          rne_targets );
      ( "trig-specials-16bit",
        [
          Alcotest.test_case "bfloat16" `Quick (ieee16_trig_specials Specs.bfloat16);
          Alcotest.test_case "float16" `Quick (ieee16_trig_specials Specs.float16);
          Alcotest.test_case "posit16" `Quick posit16_trig_specials;
        ] );
      ( "payne-hanek",
        [ Alcotest.test_case "adversarial reduction differential" `Quick test_payne_hanek ] );
    ]
