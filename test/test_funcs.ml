(* Function specs: reduction exactness properties, table values,
   special-case boundaries, and exhaustive 16-bit generation. *)

module Q = Rational
module E = Oracle.Elementary
module R = Funcs.Reductions
module S = Funcs.Specs
open Test_util

let st = rand 8

(* ------------------------------------------------------------------ *)
(* Tables.                                                             *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  Alcotest.(check (float 0.0)) "ln2" (Float.log 2.0) (Parallel.Once.get Funcs.Tables.ln2_d);
  Alcotest.(check (float 0.0)) "pi" Float.pi (Parallel.Once.get Funcs.Tables.pi_d);
  Alcotest.(check (float 0.0)) "log10(2)" (Float.log10 2.0) (Parallel.Once.get Funcs.Tables.log10_2_d);
  (* Cody-Waite split reconstructs the constant to ~2^-85. *)
  let cw = Parallel.Once.get Funcs.Tables.ln2_over_64 in
  let exact = Q.mul_pow2 (Oracle.Bigfloat.to_rational (E.ln2 ~prec:140)) (-6) in
  let err = Q.abs (Q.sub (Q.add (Q.of_float cw.hi) (Q.of_float cw.lo)) exact) in
  Alcotest.(check bool) "cw sum accuracy" true (Q.compare err (Q.of_pow2 (-85)) < 0);
  (* hi has at most 32 significant bits: k*hi stays exact. *)
  Alcotest.(check bool)
    "cw hi short mantissa"
    true
    (Int64.logand (Fp.Fp64.bits cw.hi) 0x1FFFFFL = 0L)

let test_pow2 () =
  for q = -300 to 300 do
    Alcotest.(check (float 0.0)) "pow2" (Float.ldexp 1.0 q) (Funcs.Tables.pow2 q)
  done

let test_table_spot_values () =
  Alcotest.(check (float 0.0)) "2^(0/64)" 1.0 (Parallel.Once.get Funcs.Tables.exp2_j).(0);
  Alcotest.(check (float 0.0)) "2^(32/64)" (Float.sqrt 2.0) (Parallel.Once.get Funcs.Tables.exp2_j).(32);
  Alcotest.(check (float 0.0)) "ln(1)" 0.0 (Parallel.Once.get Funcs.Tables.ln_f).(0);
  Alcotest.(check (float 0.0)) "log2(1.5)" (Float.log2 1.5) (Parallel.Once.get Funcs.Tables.log2_f).(64);
  Alcotest.(check (float 0.0)) "sinpi(0)" 0.0 (Parallel.Once.get Funcs.Tables.sinpi_n).(0);
  Alcotest.(check (float 0.0)) "cospi(0)" 1.0 (Parallel.Once.get Funcs.Tables.cospi_n).(0);
  Alcotest.(check (float 0.0)) "sinpi(256/512)" 1.0 (Parallel.Once.get Funcs.Tables.sinpi_n).(256);
  Alcotest.(check (float 0.0)) "cospi(256/512)" 0.0 (Parallel.Once.get Funcs.Tables.cospi_n).(256)

(* ------------------------------------------------------------------ *)
(* Reduction exactness and reconstruction properties.                  *)
(* ------------------------------------------------------------------ *)

(* log: x = 2^e * F * (1+r) must reconstruct x exactly in rationals up
   to the single rounding in r = f/F. *)
let prop_log_reduce =
  QCheck.Test.make ~name:"log reduction reconstructs x" ~count:4000 QCheck.unit (fun () ->
      let x = Float.ldexp (1.0 +. Random.State.float st 1.0) (Random.State.int st 250 - 125) in
      let red = R.log_reduce x in
      let j, e = R.log_key red.key in
      let f = Q.add Q.one (Q.of_ints j 128) in
      (* (x / 2^e / F) - 1 vs r: equal within one double rounding. *)
      let true_r = Q.sub (Q.div (Q.mul_pow2 (Q.of_float x) (-e)) f) Q.one in
      let err = Q.abs (Q.sub true_r (Q.of_float red.r)) in
      0 <= j && j < 128 && red.r >= 0.0
      && red.r < 0.0079
      && Q.compare err (Q.of_pow2 (-57)) <= 0)

(* exp2: r = x - k/64 is exact, and |r| <= 1/128.  Only the non-special
   domain reaches the reduction (|x| < 150 after the special filter). *)
let prop_exp2_reduce_exact =
  QCheck.Test.make ~name:"exp2 reduction is exact" ~count:4000 QCheck.unit (fun () ->
      let x32 = Int32.float_of_bits (Int32.bits_of_float (random_double ~max_exp:8 st)) in
      let red = R.exp2_reduce x32 in
      let j, q = Funcs.Reductions.exp_key red.key in
      let k = (q * 64) + j in
      Q.equal (Q.of_float red.r) (Q.sub (Q.of_float x32) (Q.of_ints k 64))
      && Float.abs red.r <= 0.0078125)

(* sinpi: reduction identity sinpi(x) = S*(spn*cos + cpn*sin) checked
   against the oracle at full precision. *)
let prop_sinpi_reduce_identity =
  QCheck.Test.make ~name:"sinpi reduction identity" ~count:300 QCheck.unit (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 24) in
      let x = Int32.float_of_bits (Int32.bits_of_float x) in
      if Float.abs x >= Float.ldexp 1.0 23 then true
      else begin
        let red = R.sinpi_reduce x in
        let n = red.key land 0x1FF in
        let s = if red.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
        (* Exact: x's sinpi equals s * sinpi(n/512 + r). *)
        let lhs = E.to_double E.sinpi (Q.of_float x) in
        let rhs_arg = Q.add (Q.of_ints n 512) (Q.of_float red.r) in
        let rhs = s *. E.to_double E.sinpi rhs_arg in
        0.0 <= red.r && red.r <= 1.0 /. 512.0 && ulps lhs rhs <= 1L
      end)

(* cospi (§5): identity with the monotone rewrite. *)
let prop_cospi_reduce_identity =
  QCheck.Test.make ~name:"cospi monotone reduction identity" ~count:300 QCheck.unit (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 24) in
      let x = Int32.float_of_bits (Int32.bits_of_float x) in
      if Float.abs x >= Float.ldexp 1.0 23 then true
      else begin
        let red = R.cospi_reduce x in
        let n' = red.key land 0x1FF in
        let s = if red.key land (1 lsl 9) <> 0 then -1.0 else 1.0 in
        let lhs = E.to_double E.cospi (Q.of_float x) in
        let rhs =
          if n' = 0 then s *. E.to_double E.cospi (Q.of_float red.r)
          else s *. E.to_double E.cospi (Q.sub (Q.of_ints n' 512) (Q.of_float red.r))
        in
        0.0 <= red.r && red.r <= 1.0 /. 512.0 && ulps lhs rhs <= 1L
      end)

(* sinh/cosh: R = |x| - N/64 exact for representable inputs. *)
let prop_sinhcosh_reduce_exact =
  QCheck.Test.make ~name:"sinh/cosh reduction exact" ~count:4000 QCheck.unit (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 13 - 6) in
      let x = Int32.float_of_bits (Int32.bits_of_float x) in
      if Float.abs x >= 89.5 then true
      else begin
        let red = R.sinhcosh_reduce x in
        let n = red.key land 0x1FFF in
        Q.equal (Q.of_float red.r) (Q.sub (Q.of_float (Float.abs x)) (Q.of_ints n 64))
        && red.r >= 0.0 && red.r < 1.0 /. 64.0
      end)

(* ------------------------------------------------------------------ *)
(* Special-case thresholds: machine-check the derivations.             *)
(* ------------------------------------------------------------------ *)

let test_float32_thresholds () =
  let t = S.float32 in
  (* exp(exp_hi) must already exceed the float32 overflow boundary. *)
  let boundary = Q.mul (Q.of_pow2 127) (Q.sub (Q.of_int 2) (Q.of_pow2 (-24))) in
  let v = E.to_double E.exp (Q.of_float t.exp_hi) in
  Alcotest.(check bool) "exp_hi overflows" true (Q.compare (Q.of_float v) boundary >= 0);
  (* exp(exp_lo) must be at-or-below half the smallest subnormal. *)
  let v = E.to_double E.exp (Q.of_float t.exp_lo) in
  Alcotest.(check bool) "exp_lo underflows" true (Q.compare (Q.of_float v) (Q.of_pow2 (-150)) <= 0);
  let v = E.to_double E.exp10 (Q.of_float t.exp10_hi) in
  Alcotest.(check bool) "exp10_hi overflows" true (Q.compare (Q.of_float v) boundary >= 0);
  let v = E.to_double E.sinh (Q.of_float t.sinh_hi) in
  Alcotest.(check bool) "sinh_hi overflows" true (Q.compare (Q.of_float v) boundary >= 0)

(* The tiny-input short-circuits: provably below half an ulp. *)
let test_tiny_specials () =
  let x = Float.ldexp 1.0 (-13) in
  (* cosh(2^-13) - 1 = x^2/2 + ... < 2^-25 = half ulp of 1.0 in float32. *)
  let v = E.to_double E.cosh (Q.of_float x) in
  Alcotest.(check bool) "cosh tiny" true (v -. 1.0 < Float.ldexp 1.0 (-25));
  (* sinh(x) - x relative < 2^-25. *)
  let s = E.to_double E.sinh (Q.of_float x) in
  Alcotest.(check bool) "sinh tiny" true ((s -. x) /. x < Float.ldexp 1.0 (-25))

let test_specials_dispatch () =
  let t = S.float32 in
  let spec = S.by_name "exp" t in
  let module T = Fp.Fp32 in
  Alcotest.(check (option int)) "nan" (Some t.nan) (spec.special (T.of_double Float.nan));
  Alcotest.(check (option int)) "+inf" (Some t.pos_inf) (spec.special 0x7F800000);
  Alcotest.(check (option int)) "-inf -> 0" (Some 0) (spec.special 0xFF800000);
  Alcotest.(check (option int)) "big x" (Some t.pos_inf) (spec.special (T.of_double 100.0));
  Alcotest.(check (option int)) "tiny result" (Some 0) (spec.special (T.of_double (-110.0)));
  Alcotest.(check (option int)) "normal" None (spec.special (T.of_double 1.0));
  let lspec = S.by_name "ln" t in
  Alcotest.(check (option int)) "ln 0" (Some t.neg_inf) (lspec.special 0);
  Alcotest.(check (option int)) "ln -1" (Some t.nan) (lspec.special (T.of_double (-1.0)));
  let pspec = S.by_name "exp" S.posit32 in
  Alcotest.(check (option int)) "posit exp big -> maxpos" (Some 0x7FFFFFFF)
    (pspec.special (Posit.Posit32.of_double 100.0));
  Alcotest.(check (option int)) "posit exp small -> minpos" (Some 1)
    (pspec.special (Posit.Posit32.of_double (-100.0)));
  Alcotest.(check (option int)) "posit NaR" (Some 0x80000000) (pspec.special 0x80000000)

(* Batch evaluation agrees with the scalar path bit-for-bit. *)
let test_batch_agrees () =
  let g = Funcs.Libm.get S.bfloat16 "exp2" in
  let src = Array.init 65536 (fun i -> i) in
  let dst = Array.make 65536 0 in
  Funcs.Batch.eval_patterns g src dst;
  Array.iteri
    (fun i pat ->
      if dst.(i) <> Rlibm.Generator.eval_pattern g pat then Alcotest.failf "batch mismatch at %04x" pat)
    src;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Batch.eval_patterns: length mismatch") (fun () ->
      Funcs.Batch.eval_patterns g src (Array.make 3 0));
  (* The compiled closure agrees with the reference path bit-for-bit. *)
  let c = Rlibm.Generator.compile g in
  for pat = 0 to 65535 do
    if c pat <> Rlibm.Generator.eval_pattern g pat then Alcotest.failf "compile mismatch %04x" pat
  done

(* ------------------------------------------------------------------ *)
(* Exhaustive 16-bit end-to-end generation: the soundness witness.     *)
(* ------------------------------------------------------------------ *)

let exhaustive_correct target name () =
  let g = Funcs.Libm.get target name in
  let module T = (val g.Rlibm.Generator.spec.repr) in
  (* Generation already validates every enumerated input; re-verify a
     stride of them independently against the oracle. *)
  let bad = ref 0 in
  for pat = 0 to 65535 do
    if pat mod 29 = 0 then begin
      let got = Rlibm.Generator.eval_pattern g pat in
      let want =
        match g.spec.special pat with
        | Some y -> y
        | None ->
            Oracle.Elementary.correctly_rounded ~round:T.round_rational g.spec.oracle
              (T.to_rational pat)
      in
      if not (pattern_value_equal (module T) got want) then incr bad
    end
  done;
  Alcotest.(check int) (name ^ " misrounds") 0 !bad

let () =
  Alcotest.run "funcs"
    [
      ( "tables",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "spot values" `Quick test_table_spot_values;
        ] );
      qsuite "reductions"
        [
          prop_log_reduce;
          prop_exp2_reduce_exact;
          prop_sinpi_reduce_identity;
          prop_cospi_reduce_identity;
          prop_sinhcosh_reduce_exact;
        ];
      ( "specials",
        [
          Alcotest.test_case "float32 thresholds" `Quick test_float32_thresholds;
          Alcotest.test_case "tiny short-circuits" `Quick test_tiny_specials;
          Alcotest.test_case "dispatch" `Quick test_specials_dispatch;
        ] );
      ("batch", [ Alcotest.test_case "agrees with scalar" `Slow test_batch_agrees ]);
      ( "exhaustive-16bit",
        [
          Alcotest.test_case "bfloat16 exp2" `Slow (exhaustive_correct S.bfloat16 "exp2");
          Alcotest.test_case "bfloat16 log2" `Slow (exhaustive_correct S.bfloat16 "log2");
          Alcotest.test_case "float16 exp" `Slow (exhaustive_correct S.float16 "exp");
          Alcotest.test_case "bfloat16 sinpi" `Slow (exhaustive_correct S.bfloat16 "sinpi");
        ] );
      ( "exhaustive-16bit-extensions",
        [
          Alcotest.test_case "bfloat16 tanh" `Slow (exhaustive_correct S.bfloat16 "tanh");
          Alcotest.test_case "bfloat16 expm1" `Slow (exhaustive_correct S.bfloat16 "expm1");
          Alcotest.test_case "float16 log1p" `Slow (exhaustive_correct S.float16 "log1p");
        ] );
    ]
