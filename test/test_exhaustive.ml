(* 16-bit differential tier: the generated log2 and exp checked against
   the arbitrary-precision oracle on bfloat16 and float16 inputs,
   through the sharded validation engine; plus the RLIBM-ALL derived
   tier, where the SAME two functions are evaluated for both targets in
   all five standard rounding modes through the single float34
   round-to-odd table and checked against the mode-aware oracle.

   Default (`dune runtest`): a strided subset — every 16th pattern — so
   the tier stays fast.  With RLIBM_EXHAUSTIVE=1 (the @exhaustive
   alias, `make check-full`): every one of the 65536 patterns of each
   target, the scale at which our guarantee equals the paper's. *)

module R = Fp.Representation
open Test_util

let exhaustive =
  match Sys.getenv_opt "RLIBM_EXHAUSTIVE" with Some ("1" | "true") -> true | _ -> false

let patterns () =
  if exhaustive then Rlibm.Enumerate.exhaustive16
  else Array.init (65536 / 16) (fun i -> i * 16)

let differential (target : Funcs.Specs.target) name () =
  let module T = (val target.repr) in
  let g = Funcs.Libm.get target name in
  let spec = g.Rlibm.Generator.spec in
  let pats = patterns () in
  let bad =
    Parallel.fold_chunks ~n:(Array.length pats) ~combine:( + ) ~init:0
      (fun ~lo ~hi ->
        let bad = ref 0 in
        for k = lo to hi - 1 do
          let pat = pats.(k) in
          let want =
            match spec.special pat with
            | Some y -> y
            | None ->
                Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
                  (T.to_rational pat)
          in
          if not (pattern_value_equal (module T) (Rlibm.Generator.eval_pattern g pat) want) then
            incr bad
        done;
        !bad)
  in
  Alcotest.(check int)
    (Printf.sprintf "%s %s: misrounded inputs (of %d)" target.tname name (Array.length pats))
    0 bad

let tier (target : Funcs.Specs.target) =
  ( target.tname,
    List.map
      (fun name -> Alcotest.test_case (name ^ " vs oracle") `Slow (differential target name))
      [ "log2"; "exp" ] )

(* Derived tier: base-format results re-rounded from the float34
   round-to-odd table, compared against the mode-aware oracle (special
   cases from the mode-retargeted spec, everything else from exact
   rational rounding under the mode). *)
let derived_differential (base : Funcs.Specs.target) name mode () =
  let t = Funcs.Specs.with_mode base mode in
  let module T = (val t.repr) in
  let spec = Funcs.Specs.by_name name t in
  let f = Funcs.Derived.fn t.repr ~mode name in
  let pats = patterns () in
  let bad =
    Parallel.fold_chunks ~n:(Array.length pats) ~combine:( + ) ~init:0
      (fun ~lo ~hi ->
        let bad = ref 0 in
        for k = lo to hi - 1 do
          let pat = pats.(k) in
          let want =
            match spec.Rlibm.Spec.special pat with
            | Some y -> y
            | None ->
                Oracle.Elementary.correctly_rounded
                  ~round:(T.round_rational ~mode)
                  spec.Rlibm.Spec.oracle (T.to_rational pat)
          in
          if not (pattern_value_equal (module T) (f pat) want) then incr bad
        done;
        !bad)
  in
  Alcotest.(check int)
    (Printf.sprintf "%s %s@%s derived: misrounded inputs (of %d)" base.tname name
       (Fp.Rounding_mode.to_string mode)
       (Array.length pats))
    0 bad

let derived_tier (base : Funcs.Specs.target) =
  ( base.tname ^ "-derived",
    List.concat_map
      (fun name ->
        List.map
          (fun mode ->
            Alcotest.test_case
              (Printf.sprintf "%s @%s via float34" name (Fp.Rounding_mode.to_string mode))
              `Slow
              (derived_differential base name mode))
          Fp.Rounding_mode.standard)
      [ "log2"; "exp" ] )

let () =
  if exhaustive then print_endline "RLIBM_EXHAUSTIVE=1: checking all 65536 inputs per target";
  Alcotest.run "exhaustive16"
    [
      tier Funcs.Specs.bfloat16;
      tier Funcs.Specs.float16;
      derived_tier Funcs.Specs.bfloat16;
      derived_tier Funcs.Specs.float16;
    ]
