(* Mode-polymorphic rounding: the properties that make one round-to-odd
   table serve every representation and rounding mode.

   - of_double agrees with exact rational rounding in every mode;
   - the rounding interval of round(x) contains x (membership);
   - adjacent rounding intervals tile the real line: under the nearest
     modes they are closed double boxes one double apart, under the
     directed modes and round-to-odd they share their boundary value
     with complementary openness;
   - search_max is safe at its max_int bound (the clamped doubling);
   - batch evaluation through one shared compiled closure is
     bit-identical at every job count (domain-local scratch). *)

module Q = Rational
module R = Fp.Representation
module M = Fp.Rounding_mode
open Test_util

let st = rand 11

(* ------------------------------------------------------------------ *)
(* Interval properties per representation x mode.                      *)
(* ------------------------------------------------------------------ *)

let prop_differential (module T : R.S) tname ~max_exp =
  QCheck.Test.make
    ~name:(tname ^ ": of_double = exact rational rounding, every mode")
    ~count:3000 QCheck.unit
    (fun () ->
      let x = random_double ~max_exp st in
      List.for_all
        (fun mode ->
          pattern_value_equal (module T)
            (T.of_double ~mode x)
            (T.round_rational ~mode (Q.of_float x)))
        M.all)

let prop_membership (module T : R.S) tname ~max_exp =
  QCheck.Test.make
    ~name:(tname ^ ": interval of round(x) contains x, every mode")
    ~count:2000 QCheck.unit
    (fun () ->
      let x = random_double ~max_exp st in
      List.for_all
        (fun mode ->
          let p = T.of_double ~mode x in
          match T.classify p with
          | R.Finite -> Rlibm.Rounding.contains (Rlibm.Rounding.interval (module T) ~mode p) x
          | R.Inf _ | R.Nan -> true)
        M.all)

(* The interval of [p] and the interval of the next value up must tile:
   no real between them is unclaimed and none is claimed twice. *)
let prop_tiling (module T : R.S) tname ~max_exp =
  QCheck.Test.make ~name:(tname ^ ": adjacent intervals tile, every mode") ~count:1500
    QCheck.unit
    (fun () ->
      let x = random_double ~max_exp st in
      List.for_all
        (fun mode ->
          let p = T.of_double ~mode x in
          match T.classify p with
          | R.Inf _ | R.Nan -> true
          | R.Finite -> (
              let i = Rlibm.Rounding.interval (module T) ~mode p in
              if not (Float.is_finite i.hi) then true
              else
                (* First real past p's region; the pattern owning it is
                   the next value up. *)
                let x' = if i.hi_open then i.hi else Fp.Fp64.next_up i.hi in
                let q = T.of_double ~mode x' in
                match T.classify q with
                | R.Inf _ | R.Nan -> true
                | R.Finite ->
                    (not (pattern_value_equal (module T) q p))
                    &&
                    let j = Rlibm.Rounding.interval (module T) ~mode q in
                    if M.nearest mode then
                      (* Closed double boxes, one double apart. *)
                      (not i.hi_open) && (not j.lo_open) && Fp.Fp64.steps i.hi j.lo = 1L
                    else
                      (* Shared boundary value, exactly one side open. *)
                      j.lo = i.hi && j.lo_open = not i.hi_open))
        M.all)

let interval_props (module T : R.S) tname ~max_exp =
  [
    prop_differential (module T) tname ~max_exp;
    prop_membership (module T) tname ~max_exp;
    prop_tiling (module T) tname ~max_exp;
  ]

(* ------------------------------------------------------------------ *)
(* search_max at its extreme bound.                                    *)
(* ------------------------------------------------------------------ *)

(* The interval search brackets up to max_int double steps (an IEEE
   infinity pattern's region reaches ~4.5e18 doubles for float16); the
   doubling must clamp instead of wrapping negative. *)
let test_search_max_extreme () =
  let sm = Rlibm.Rounding.search_max in
  Alcotest.(check int) "bound itself" max_int (sm (fun _ -> true) max_int);
  Alcotest.(check int) "max_int - 1" (max_int - 1) (sm (fun k -> k <= max_int - 1) max_int);
  Alcotest.(check int) "only zero" 0 (sm (fun k -> k = 0) max_int);
  let deep = 4_540_000_000_000_000_000 (* ~ the float16 +inf reach *) in
  Alcotest.(check int) "float16-inf-scale reach" deep (sm (fun k -> k <= deep) max_int);
  Alcotest.(check int) "2^61" (1 lsl 61) (sm (fun k -> k <= 1 lsl 61) max_int);
  Alcotest.(check int) "max_reach covers the deep case" max_int Rlibm.Rounding.max_reach

(* ------------------------------------------------------------------ *)
(* Shared-closure batch determinism (domain-local scratch).            *)
(* ------------------------------------------------------------------ *)

let gen () = Funcs.Libm.get ~quality:Funcs.Libm.Quick Funcs.Specs.bfloat16 "log2"

let test_batch_jobs_deterministic () =
  let g = gen () in
  let src = Rlibm.Enumerate.exhaustive16 in
  let run j =
    Parallel.set_jobs j;
    let dst = Array.make (Array.length src) 0 in
    Funcs.Batch.eval_patterns g src dst;
    dst
  in
  let want = run 1 in
  List.iter
    (fun j ->
      Alcotest.(check bool) (Printf.sprintf "jobs=%d bit-identical" j) true (run j = want))
    [ 2; 4 ];
  Parallel.set_jobs 1

(* One compiled closure called concurrently from four domains: the
   domain-local scratch keeps every call's result equal to the
   sequential one. *)
let test_compile_reentrant () =
  let g = gen () in
  let f = Rlibm.Generator.compile g in
  let pats = Array.init 4096 (fun i -> i * 16) in
  let want = Array.map f pats in
  let doms = Array.init 4 (fun _ -> Domain.spawn (fun () -> Array.map f pats)) in
  Array.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "domain %d matches" i) true (Domain.join d = want))
    doms

let () =
  Alcotest.run "modes"
    [
      qsuite "bfloat16" (interval_props (module Fp.Bfloat16) "bfloat16" ~max_exp:45);
      qsuite "float16" (interval_props (module Fp.Float16) "float16" ~max_exp:20);
      qsuite "float32" (interval_props (module Fp.Fp32) "float32" ~max_exp:45);
      qsuite "posit16" (interval_props (module Posit.Posit16) "posit16" ~max_exp:20);
      ( "search_max",
        [ Alcotest.test_case "clamped doubling at max_int" `Quick test_search_max_extreme ] );
      ( "batch",
        [
          Alcotest.test_case "eval_patterns bit-identical at jobs 1/2/4" `Slow
            test_batch_jobs_deterministic;
          Alcotest.test_case "compiled closure reentrant across domains" `Slow
            test_compile_reentrant;
        ] );
    ]
