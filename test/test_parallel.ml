(* The determinism contract of lib/parallel: identical results — bit for
   bit — at every job count, for the engine primitives and for the full
   generation pipeline built on them. *)

module P = Parallel
open Test_util

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Engine primitives.                                                  *)
(* ------------------------------------------------------------------ *)

let test_shards_partition () =
  List.iter
    (fun n ->
      let sh = P.shards n in
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "ordered" true (lo <= hi);
          if i = 0 then Alcotest.(check int) "starts at 0" 0 lo
          else Alcotest.(check int) "contiguous" (snd sh.(i - 1)) lo;
          covered := !covered + (hi - lo))
        sh;
      Alcotest.(check int) (Printf.sprintf "covers [0,%d)" n) n !covered;
      (* A function of n alone: byte-identical on a second call. *)
      Alcotest.(check bool) "stable" true (sh = P.shards n))
    [ 0; 1; 2; 63; 64; 65; 1000; 65536 ]

let test_map_chunks_deterministic () =
  let n = 10_000 in
  let f ~lo ~hi =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + (i * i)
    done;
    !s
  in
  let want = P.map_chunks ~jobs:1 ~n f in
  List.iter
    (fun j ->
      let got = P.map_chunks ~jobs:j ~n f in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d" j) true (got = want))
    job_counts

(* String concatenation is not commutative: only the fixed left-to-right
   shard-order merge makes this identical at every job count. *)
let test_fold_noncommutative () =
  let n = 5000 in
  let chunk ~lo ~hi = Printf.sprintf "[%d,%d)" lo hi in
  let run j = P.fold_chunks ~jobs:j ~n ~combine:( ^ ) ~init:"" chunk in
  let want = run 1 in
  List.iter
    (fun j -> Alcotest.(check string) (Printf.sprintf "jobs=%d" j) want (run j))
    job_counts

let test_find_violation () =
  let n = 100_000 in
  List.iter
    (fun j ->
      (* Violations in many shards: the lowest must win. *)
      Alcotest.(check (option int))
        (Printf.sprintf "lowest wins, jobs=%d" j)
        (Some 17)
        (P.find_violation ~jobs:j ~n (fun i -> i mod 1000 = 17));
      (* Single violation in the last shard. *)
      Alcotest.(check (option int))
        (Printf.sprintf "last shard, jobs=%d" j)
        (Some (n - 1))
        (P.find_violation ~jobs:j ~n (fun i -> i = n - 1));
      (* No violation. *)
      Alcotest.(check (option int))
        (Printf.sprintf "none, jobs=%d" j)
        None
        (P.find_violation ~jobs:j ~n (fun _ -> false)))
    job_counts

let test_once_runs_once () =
  let runs = Atomic.make 0 in
  let o =
    P.Once.make (fun () ->
        Atomic.incr runs;
        (* Widen the race window. *)
        let s = ref 0 in
        for i = 1 to 100_000 do
          s := !s + i
        done;
        !s)
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn (fun () -> P.Once.get o)) in
  let vals = Array.map Domain.join doms in
  Array.iter (fun v -> Alcotest.(check int) "same value" vals.(0) v) vals;
  Alcotest.(check int) "initializer ran once" 1 (Atomic.get runs)

let test_exception_deterministic () =
  (* Whatever domain hits its failure first, the lowest failing shard's
     exception is the one reported. *)
  let n = 100_000 in
  List.iter
    (fun j ->
      match
        P.map_chunks ~jobs:j ~n (fun ~lo ~hi:_ ->
            if lo >= 50_000 then failwith (Printf.sprintf "high %d" lo)
            else if lo >= 20_000 then failwith (Printf.sprintf "low %d" lo))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          let first_failing =
            Array.to_list (P.shards n)
            |> List.find (fun (lo, _) -> lo >= 20_000)
            |> fst
          in
          Alcotest.(check string)
            (Printf.sprintf "lowest shard's exception, jobs=%d" j)
            (Printf.sprintf "low %d" first_failing)
            msg)
    job_counts

(* ------------------------------------------------------------------ *)
(* Generation pipeline: bit-identical functions at every job count.    *)
(* ------------------------------------------------------------------ *)

(* A strided bfloat16 subset keeps this test a few seconds per job
   count while exercising the sharded oracle pass, Algorithm 4's
   sharded Check and the sharded validation replay. *)
let subset = Array.init (65536 / 4) (fun i -> i * 4)

let generate_with_jobs j =
  P.set_jobs j;
  let spec = Funcs.Specs.log2 Funcs.Specs.bfloat16 in
  match Rlibm.Generator.generate spec ~patterns:subset with
  | Error msg -> Alcotest.failf "generation failed at jobs=%d: %s" j msg
  | Ok g -> g

let coeff_bits (g : Rlibm.Generator.generated) =
  (* Every coefficient of every piecewise group, as exact bits. *)
  Array.to_list g.pieces
  |> List.concat_map (fun (pw : Rlibm.Piecewise.t) ->
         List.concat_map
           (function
             | None -> []
             | Some (grp : Rlibm.Piecewise.group) ->
                 Array.to_list (Array.map Int64.bits_of_float grp.coeffs))
           [ pw.neg; pw.pos ])

let misround_count (g : Rlibm.Generator.generated) j =
  let module T = Fp.Bfloat16 in
  let spec = g.Rlibm.Generator.spec in
  P.fold_chunks ~jobs:j ~n:(Array.length subset) ~combine:( + ) ~init:0
    (fun ~lo ~hi ->
      let bad = ref 0 in
      for k = lo to hi - 1 do
        let pat = subset.(k) in
        let want =
          match spec.special pat with
          | Some y -> y
          | None ->
              Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
                (T.to_rational pat)
        in
        if not (pattern_value_equal (module T) (Rlibm.Generator.eval_pattern g pat) want) then
          incr bad
      done;
      !bad)

let test_generation_bit_identical () =
  let gs = List.map generate_with_jobs job_counts in
  P.set_jobs 1;
  let g1 = List.hd gs in
  let want_bits = coeff_bits g1 in
  List.iter2
    (fun j g ->
      Alcotest.(check bool)
        (Printf.sprintf "coefficients bit-identical at jobs=%d" j)
        true
        (coeff_bits g = want_bits))
    job_counts gs;
  (* Misrounding counts agree at every job count, and on the validated
     enumeration they are zero. *)
  let counts = List.map (misround_count g1) job_counts in
  List.iter2
    (fun j c -> Alcotest.(check int) (Printf.sprintf "misround count at jobs=%d" j) 0 c)
    job_counts counts

let () =
  Alcotest.run "parallel"
    [
      ( "engine",
        [
          Alcotest.test_case "shards partition [0,n)" `Quick test_shards_partition;
          Alcotest.test_case "map_chunks deterministic" `Quick test_map_chunks_deterministic;
          Alcotest.test_case "fold non-commutative combine" `Quick test_fold_noncommutative;
          Alcotest.test_case "find_violation lowest-first" `Quick test_find_violation;
          Alcotest.test_case "Once runs once across domains" `Quick test_once_runs_once;
          Alcotest.test_case "deterministic exception" `Quick test_exception_deterministic;
        ] );
      ( "generation",
        [
          Alcotest.test_case "bfloat16 log2 bit-identical at jobs 1/2/4" `Slow
            test_generation_bit_identical;
        ] );
    ]
