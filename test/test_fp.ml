(* IEEE representations and double bit utilities. *)

module Q = Rational
module R = Fp.Representation
open Test_util

let st = rand 4

(* ------------------------------------------------------------------ *)
(* Exhaustive checks on the 16-bit formats.                            *)
(* ------------------------------------------------------------------ *)

let exhaustive_roundtrip (module T : R.S) () =
  for p = 0 to 65535 do
    match T.classify p with
    | R.Finite ->
        let d = T.to_double p in
        if T.of_double d <> p then Alcotest.failf "roundtrip %04x -> %h -> %04x" p d (T.of_double d);
        if Q.to_float (T.to_rational p) <> d then Alcotest.failf "rational mismatch %04x" p
    | R.Inf _ | R.Nan -> ()
  done

(* Midpoints between adjacent values round to the even pattern; points
   just off the midpoint round to the nearer value. *)
let exhaustive_midpoints (module T : R.S) () =
  let finite = ref [] in
  for p = 65535 downto 0 do
    match T.classify p with R.Finite -> finite := p :: !finite | _ -> ()
  done;
  let by_key = List.sort (fun a b -> compare (T.order_key a) (T.order_key b)) !finite in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let va = T.to_double a and vb = T.to_double b in
        if va < vb then begin
          let mid = Q.mul_pow2 (Q.add (Q.of_float va) (Q.of_float vb)) (-1) in
          let r = T.round_rational mid in
          let expect = if a land 1 = 0 then a else b in
          (* Skip the two zero patterns (+0/-0 share a value). *)
          if va <> 0.0 && vb <> 0.0 && r <> expect then
            Alcotest.failf "midpoint of %04x,%04x -> %04x (expect %04x)" a b r expect;
          (* Just above the midpoint must round up to b. *)
          let above = Q.add mid (Q.mul_pow2 (Q.sub (Q.of_float vb) (Q.of_float va)) (-30)) in
          if va <> 0.0 && vb <> 0.0 && T.round_rational above <> b then
            Alcotest.failf "above-midpoint of %04x,%04x" a b
        end;
        pairs rest
    | _ -> ()
  in
  pairs by_key

let test_order_key (module T : R.S) () =
  (* order_key is monotone with the represented value. *)
  let patterns = List.init 4000 (fun _ -> Random.State.int st 65536) in
  let finite = List.filter (fun p -> T.classify p = R.Finite) patterns in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let va = T.to_double a and vb = T.to_double b in
          if va < vb && T.order_key a >= T.order_key b then
            Alcotest.failf "order_key not monotone: %04x %04x" a b)
        (List.filteri (fun i _ -> i < 40) finite))
    (List.filteri (fun i _ -> i < 40) finite)

(* ------------------------------------------------------------------ *)
(* Pattern-level GetNext/GetPrev (Ieee.next_up/next_down).             *)
(* ------------------------------------------------------------------ *)

(* next_down inverts next_up up to value equality: the walk through the
   two zero patterns lands on the other zero (nextUp(-minsub) = -0,
   nextDown of that is -minsub again), which is the same real value. *)
let prop_next_inverse (module T : R.S) next_up next_down name =
  QCheck.Test.make ~name ~count:20000 QCheck.unit (fun () ->
      let p = Random.State.int st 65536 in
      match T.classify p with
      | R.Nan -> true
      | _ ->
          let up_ok =
            let u = next_up p in
            u = p (* +inf saturates *) || pattern_value_equal (module T) (next_down u) p
          in
          let down_ok =
            let d = next_down p in
            d = p (* -inf saturates *) || pattern_value_equal (module T) (next_up d) p
          in
          up_ok && down_ok)

let prop_next_monotone (module T : R.S) next_up name =
  QCheck.Test.make ~name ~count:20000 QCheck.unit (fun () ->
      let p = Random.State.int st 65536 in
      match T.classify p with
      | R.Nan -> true
      | R.Inf _ -> true
      | R.Finite ->
          let u = next_up p in
          (match T.classify u with
          | R.Finite -> T.to_double u > T.to_double p
          | R.Inf s -> s > 0 (* max finite steps to +inf *)
          | R.Nan -> false))

(* The subnormal/normal boundary crossed by a plain walk: the largest
   subnormal's successor is the smallest normal, one ulp away. *)
let test_next_boundary () =
  let check_fmt name (module T : R.S) next_up next_down ~mb ~emin =
    let max_subnormal = (1 lsl mb) - 1 in
    let min_normal = 1 lsl mb in
    Alcotest.(check int) (name ^ ": up across boundary") min_normal (next_up max_subnormal);
    Alcotest.(check int) (name ^ ": down across boundary") max_subnormal (next_down min_normal);
    let gap = T.to_double min_normal -. T.to_double max_subnormal in
    Alcotest.(check (float 0.0)) (name ^ ": boundary gap is one ulp")
      (Float.ldexp 1.0 (emin - mb)) gap
  in
  check_fmt "bfloat16" (module Fp.Bfloat16) Fp.Bfloat16.next_up Fp.Bfloat16.next_down ~mb:7
    ~emin:(-126);
  check_fmt "float16" (module Fp.Float16) Fp.Float16.next_up Fp.Float16.next_down ~mb:10
    ~emin:(-14)

let test_next_zeros_and_infs () =
  let module T = Fp.Bfloat16 in
  let sign_bit = 1 lsl 15 in
  Alcotest.(check int) "next_up +0 = minsub" 1 (T.next_up 0);
  Alcotest.(check int) "next_up -0 = +minsub" 1 (T.next_up sign_bit);
  Alcotest.(check int) "next_down +0 = -minsub" (sign_bit lor 1) (T.next_down 0);
  Alcotest.(check int) "next_down -0 = -minsub" (sign_bit lor 1) (T.next_down sign_bit);
  let pinf = 0xFF lsl 7 in
  let ninf = sign_bit lor pinf in
  Alcotest.(check int) "+inf saturates" pinf (T.next_up pinf);
  Alcotest.(check int) "-inf saturates" ninf (T.next_down ninf);
  Alcotest.(check int) "down from +inf = max finite" (pinf - 1) (T.next_down pinf);
  Alcotest.(check int) "up from -inf = -max finite" (ninf - 1) (T.next_up ninf)

(* ------------------------------------------------------------------ *)
(* float32: hardware vs exact rational rounding.                       *)
(* ------------------------------------------------------------------ *)

let prop_fp32_hw_vs_exact =
  QCheck.Test.make ~name:"of_double agrees with exact rational rounding" ~count:20000 QCheck.unit
    (fun () ->
      let x = Float.ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 340 - 190) in
      Fp.Fp32.of_double x = Fp.Fp32.round_rational (Q.of_float x))

let prop_fp32_roundtrip =
  QCheck.Test.make ~name:"float32 pattern roundtrip" ~count:20000 QCheck.unit (fun () ->
      let p = Random.State.full_int st (1 lsl 30) lor (Random.State.int st 4 lsl 30) in
      match Fp.Fp32.classify p with
      | R.Finite -> Fp.Fp32.of_double (Fp.Fp32.to_double p) = p
      | R.Inf _ | R.Nan -> true)

let test_fp32_extremes () =
  let maxf = Fp.Fp32.to_double 0x7F7FFFFF in
  Alcotest.(check (float 0.0)) "max finite" (Float.ldexp (2.0 -. Float.ldexp 1.0 (-23)) 127) maxf;
  (* Just past the overflow boundary rounds to +inf. *)
  let boundary = Q.mul (Q.of_float (Float.ldexp 1.0 127)) (Q.sub (Q.of_int 2) (Q.of_pow2 (-24))) in
  Alcotest.(check int) "boundary to inf" 0x7F800000 (Fp.Fp32.round_rational boundary);
  Alcotest.(check int)
    "below boundary to max"
    0x7F7FFFFF
    (Fp.Fp32.round_rational (Q.sub boundary (Q.of_pow2 60)));
  (* Smallest subnormal. *)
  Alcotest.(check int) "minsub up" 1 (Fp.Fp32.round_rational (Q.of_pow2 (-150) |> Q.add (Q.of_pow2 (-160))));
  Alcotest.(check int) "half minsub ties to 0" 0 (Fp.Fp32.round_rational (Q.of_pow2 (-150)));
  Alcotest.(check int) "neg zero" 0 (Fp.Fp32.round_rational Q.zero)

(* ------------------------------------------------------------------ *)
(* Fp64 bit utilities.                                                 *)
(* ------------------------------------------------------------------ *)

let test_fp64_next () =
  Alcotest.(check (float 0.0)) "next_up 0" (Float.ldexp 1.0 (-1074)) (Fp.Fp64.next_up 0.0);
  Alcotest.(check (float 0.0)) "next_down 0" (-.Float.ldexp 1.0 (-1074)) (Fp.Fp64.next_down 0.0);
  Alcotest.(check (float 0.0)) "next_up max" infinity (Fp.Fp64.next_up Float.max_float);
  Alcotest.(check bool) "next_up 1 > 1" true (Fp.Fp64.next_up 1.0 > 1.0);
  Alcotest.(check (float 0.0)) "inverse" 1.0 (Fp.Fp64.next_down (Fp.Fp64.next_up 1.0));
  Alcotest.(check (float 0.0)) "neg next_up toward 0" (-0.99999999999999989) (Fp.Fp64.next_up (-1.0))

let prop_fp64_advance_steps =
  QCheck.Test.make ~name:"advance/steps inverse" ~count:5000 QCheck.unit (fun () ->
      let x = random_double ~max_exp:500 st in
      let k = Random.State.int st 2000 - 1000 in
      let y = Fp.Fp64.advance x k in
      (not (Float.is_finite y)) || Fp.Fp64.steps x y = Int64.of_int k)

let prop_fp64_key_monotone =
  QCheck.Test.make ~name:"key monotone" ~count:5000 QCheck.unit (fun () ->
      let a = random_double ~max_exp:500 st and b = random_double ~max_exp:500 st in
      if a < b then Int64.compare (Fp.Fp64.key a) (Fp.Fp64.key b) < 0
      else if a > b then Int64.compare (Fp.Fp64.key a) (Fp.Fp64.key b) > 0
      else true)

let test_fp64_saturation () =
  (* Far advances clamp at the infinities instead of wrapping. *)
  Alcotest.(check (float 0.0)) "huge up" infinity (Fp.Fp64.advance Float.max_float (1 lsl 61));
  Alcotest.(check (float 0.0))
    "huge down"
    neg_infinity
    (Fp.Fp64.advance (-.Float.max_float) (-(1 lsl 61)))

let () =
  Alcotest.run "fp"
    [
      ( "bfloat16",
        [
          Alcotest.test_case "exhaustive roundtrip" `Quick (exhaustive_roundtrip (module Fp.Bfloat16));
          Alcotest.test_case "exhaustive midpoints" `Quick (exhaustive_midpoints (module Fp.Bfloat16));
          Alcotest.test_case "order key" `Quick (test_order_key (module Fp.Bfloat16));
        ] );
      ( "float16",
        [
          Alcotest.test_case "exhaustive roundtrip" `Quick (exhaustive_roundtrip (module Fp.Float16));
          Alcotest.test_case "exhaustive midpoints" `Quick (exhaustive_midpoints (module Fp.Float16));
        ] );
      ( "float32",
        [
          Alcotest.test_case "extremes" `Quick test_fp32_extremes;
        ] );
      qsuite "float32-properties" [ prop_fp32_hw_vs_exact; prop_fp32_roundtrip ];
      ( "next-up-down",
        [
          Alcotest.test_case "subnormal/normal boundary" `Quick test_next_boundary;
          Alcotest.test_case "zeros and infinities" `Quick test_next_zeros_and_infs;
        ] );
      qsuite "next-up-down-properties"
        [
          prop_next_inverse (module Fp.Bfloat16) Fp.Bfloat16.next_up Fp.Bfloat16.next_down
            "bfloat16 next_down inverts next_up";
          prop_next_inverse (module Fp.Float16) Fp.Float16.next_up Fp.Float16.next_down
            "float16 next_down inverts next_up";
          prop_next_monotone (module Fp.Bfloat16) Fp.Bfloat16.next_up "bfloat16 next_up monotone";
          prop_next_monotone (module Fp.Float16) Fp.Float16.next_up "float16 next_up monotone";
        ];
      ( "fp64",
        [
          Alcotest.test_case "next_up/down" `Quick test_fp64_next;
          Alcotest.test_case "saturation" `Quick test_fp64_saturation;
        ] );
      qsuite "fp64-properties" [ prop_fp64_advance_steps; prop_fp64_key_monotone ];
    ]
