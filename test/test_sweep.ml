(* The sweep engine: checkpoint encode/decode (qcheck roundtrip plus
   corruption/truncation rejection), the oracle cache's persistence and
   crash tolerance, and the engine's determinism contract — an
   interrupted-and-resumed sweep (SIGKILL mid-run) must produce a report
   bit-identical to an uninterrupted one, at any job count. *)

module C = Sweep.Checkpoint
module OC = Sweep.Oracle_cache
module E = Sweep.Engine

(* Unique scratch directories under TMPDIR; the engine/cache mkdir_p
   them on first use. *)
let fresh_dir =
  let ctr = ref 0 in
  fun prefix ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rlibm_%s.%d.%d" prefix (Unix.getpid ()) !ctr)

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

(* ------------------------------------------------------------------ *)
(* Checkpoint encoding.                                                *)
(* ------------------------------------------------------------------ *)

(* A random checkpoint in a random intermediate state, identity
   including bytes that would break a text format (the encoding is
   length-prefixed, so it must not care). *)
let random_checkpoint st =
  let random_string n =
    String.init n (fun _ ->
        match Random.State.int st 20 with
        | 0 -> '\x00'
        | 1 -> '\n'
        | 2 -> '"'
        | _ -> Char.chr (32 + Random.State.int st 95))
  in
  let identity = random_string (Random.State.int st 60) in
  let n_items = 1 + Random.State.int st 400 in
  let chunk_size = 1 + Random.State.int st 48 in
  let cp = C.create ~identity ~n_items ~chunk_size in
  Array.iteri
    (fun i _ ->
      match Random.State.int st 3 with
      | 0 -> ()
      | 1 ->
          cp.C.state.(i) <- C.Done;
          cp.C.retries.(i) <- Random.State.int st 3;
          cp.C.mismatches.(i) <-
            Array.init (Random.State.int st 4) (fun _ ->
                {
                  C.pattern = Random.State.int st 0x10000;
                  got = Random.State.int st 0x10000;
                  want = Random.State.int st 0x10000;
                })
      | _ ->
          cp.C.state.(i) <- C.Quarantined;
          cp.C.retries.(i) <- 1 + Random.State.int st 3;
          cp.C.errors.(i) <- random_string (Random.State.int st 30))
    cp.C.state;
  cp

let qcheck_roundtrip =
  QCheck.Test.make ~name:"checkpoint encode/decode roundtrip" ~count:300 QCheck.unit
    (let st = Random.State.make [| 42 |] in
     fun () ->
       let cp = random_checkpoint st in
       match C.decode (C.encode cp) with
       | Ok cp' -> cp = cp'
       | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let qcheck_corruption_rejected =
  QCheck.Test.make ~name:"one flipped byte is rejected" ~count:300 QCheck.unit
    (let st = Random.State.make [| 43 |] in
     fun () ->
       let cp = random_checkpoint st in
       let enc = Bytes.of_string (C.encode cp) in
       let i = Random.State.int st (Bytes.length enc) in
       Bytes.set enc i (Char.chr (Char.code (Bytes.get enc i) lxor (1 lsl Random.State.int st 8)));
       match C.decode (Bytes.to_string enc) with
       | Error _ -> true
       | Ok _ -> QCheck.Test.fail_reportf "corrupted byte %d accepted" i)

let qcheck_truncation_rejected =
  QCheck.Test.make ~name:"any truncation is rejected" ~count:300 QCheck.unit
    (let st = Random.State.make [| 44 |] in
     fun () ->
       let enc = C.encode (random_checkpoint st) in
       let cut = Random.State.int st (String.length enc) in
       match C.decode (String.sub enc 0 cut) with
       | Error _ -> true
       | Ok _ -> QCheck.Test.fail_reportf "truncation at %d accepted" cut)

let test_bad_magic_and_garbage () =
  let enc = C.encode (C.create ~identity:"x" ~n_items:10 ~chunk_size:4) in
  let flipped = "X" ^ String.sub enc 1 (String.length enc - 1) in
  (match C.decode flipped with
  | Error msg -> Alcotest.(check bool) "names the magic" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match C.decode (enc ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match C.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty file accepted"

let test_save_load_atomic () =
  let dir = fresh_dir "ckpt" in
  OC.mkdir_p dir;
  let path = Filename.concat dir "checkpoint.bin" in
  let cp = C.create ~identity:"save/load" ~n_items:100 ~chunk_size:16 in
  cp.C.state.(2) <- C.Done;
  C.save ~path cp;
  (match C.load ~path with
  | Ok cp' -> Alcotest.(check bool) "roundtrips through disk" true (cp = cp')
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool) "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Oracle cache.                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_persists () =
  let dir = fresh_dir "orc" in
  let open_it () = OC.open_ ~dir ~repr:"t16" ~func:"f" ~mode:"rne" in
  let c = open_it () in
  Alcotest.(check int) "memo computes on a miss" 7 (OC.memo (Some c) 3 (fun p -> p + 4));
  Alcotest.(check int) "one miss counted" 1 (OC.misses c);
  Alcotest.(check int) "memo serves the hit" 7 (OC.memo (Some c) 3 (fun _ -> Alcotest.fail "recomputed"));
  Alcotest.(check int) "one hit counted" 1 (OC.hits c);
  OC.close c;
  let c2 = open_it () in
  Alcotest.(check int) "entry survived reopen" 7
    (OC.memo (Some c2) 3 (fun _ -> Alcotest.fail "recomputed after reopen"));
  Alcotest.(check int) "size" 1 (OC.size c2);
  OC.close c2;
  rm_rf dir

let test_cache_truncates_partial_tail () =
  let dir = fresh_dir "orc_tail" in
  let open_it () = OC.open_ ~dir ~repr:"t16" ~func:"f" ~mode:"rne" in
  let c = open_it () in
  ignore (OC.memo (Some c) 1 (fun _ -> 11));
  ignore (OC.memo (Some c) 2 (fun _ -> 22));
  OC.close c;
  (* A kill mid-append leaves a partial trailing record. *)
  let path = Filename.concat dir "t16.f.rne.orc" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x01\x02\x03\x04\x05";
  close_out oc;
  let c2 = open_it () in
  Alcotest.(check int) "whole records survive" 2 (OC.size c2);
  Alcotest.(check int) "lookup intact" 22 (OC.memo (Some c2) 2 (fun _ -> Alcotest.fail "lost"));
  (* The truncated file must append cleanly on a record boundary. *)
  ignore (OC.memo (Some c2) 3 (fun _ -> 33));
  OC.close c2;
  let c3 = open_it () in
  Alcotest.(check int) "post-truncation append readable" 3 (OC.size c3);
  OC.close c3;
  rm_rf dir

let test_cache_rejects_foreign_header () =
  let dir = fresh_dir "orc_hdr" in
  OC.mkdir_p dir;
  (* A file for a different function sitting at this triple's path:
     stale bits must be refused, not served. *)
  let path = Filename.concat dir "t16.f.rne.orc" in
  let oc = open_out_bin path in
  output_string oc "RLOC 1 t16 OTHER rne\n";
  close_out oc;
  (match OC.open_ ~dir ~repr:"t16" ~func:"f" ~mode:"rne" with
  | exception Failure msg ->
      Alcotest.(check bool) "error names the mismatch" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "foreign header accepted");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Engine.                                                             *)
(* ------------------------------------------------------------------ *)

(* Synthetic pure sweep: every item with i mod 17 = 3 is a "mismatch".
   Pure function of the range, so any schedule must reproduce it. *)
let synth ~lo ~hi =
  let ms = ref [] in
  for i = hi - 1 downto lo do
    if i mod 17 = 3 then ms := { C.pattern = i; got = i land 0xff; want = (i + 1) land 0xff } :: !ms
  done;
  !ms

let run_ok ?(n = 2048) ?(chunk_size = 32) ?jobs ?resume ?dir ~identity f =
  let dir = match dir with Some d -> d | None -> fresh_dir "engine" in
  match E.run ~dir ~identity ~n ~chunk_size ~checkpoint_every:4 ?jobs ?resume f with
  | Ok o -> (dir, o)
  | Error msg -> Alcotest.failf "engine: %s" msg

let test_engine_jobs_invariant () =
  let _, base = run_ok ~jobs:1 ~identity:"jobs invariant" synth in
  List.iter
    (fun jobs ->
      let dir, o = run_ok ~jobs ~identity:"jobs invariant" synth in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d report identical" jobs)
        true
        (o.E.mismatches = base.E.mismatches);
      Alcotest.(check int) "all chunks done" o.E.stats.total_chunks o.E.stats.completed_chunks;
      rm_rf dir)
    [ 2; 4 ];
  Alcotest.(check int) "expected mismatch count"
    (List.length (List.filter (fun i -> i mod 17 = 3) (List.init 2048 Fun.id)))
    (Array.length base.E.mismatches)

let test_engine_refuses_unflagged_restart () =
  let dir, _ = run_ok ~jobs:1 ~identity:"restart" synth in
  (match E.run ~dir ~identity:"restart" ~n:2048 ~chunk_size:32 ~jobs:1 synth with
  | Error msg -> Alcotest.(check bool) "mentions --resume" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "silently restarted over a checkpoint");
  (* Wrong identity refuses even with --resume. *)
  (match E.run ~dir ~identity:"different job" ~n:2048 ~chunk_size:32 ~jobs:1 ~resume:true synth with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resumed a foreign checkpoint");
  (* Wrong geometry refuses too. *)
  (match E.run ~dir ~identity:"restart" ~n:2048 ~chunk_size:64 ~jobs:1 ~resume:true synth with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resumed with different geometry");
  rm_rf dir

let test_engine_retries_then_succeeds () =
  (* Chunk [64,96) fails on its first attempt only; jobs=1 keeps the
     attempt table single-domain. *)
  let attempts = Hashtbl.create 8 in
  let flaky ~lo ~hi =
    let k = Hashtbl.find_opt attempts lo |> Option.value ~default:0 in
    Hashtbl.replace attempts lo (k + 1);
    if lo = 64 && k = 0 then failwith "transient fault";
    synth ~lo ~hi
  in
  let _, base = run_ok ~jobs:1 ~identity:"retry baseline" synth in
  let dir, o = run_ok ~jobs:1 ~identity:"retry" flaky in
  Alcotest.(check int) "nothing quarantined" 0 o.E.stats.quarantined_chunks;
  Alcotest.(check int) "one retry recorded" 1 o.E.stats.retry_attempts;
  Alcotest.(check int) "failing chunk reattempted" 2 (Hashtbl.find attempts 64);
  Alcotest.(check bool) "report identical to the clean run" true
    (o.E.mismatches = base.E.mismatches);
  rm_rf dir

let test_engine_quarantines_persistent_failure () =
  let bad ~lo ~hi = if lo = 96 then failwith "permanent fault" else synth ~lo ~hi in
  let dir, o = run_ok ~jobs:1 ~identity:"quarantine" bad in
  Alcotest.(check int) "one chunk quarantined" 1 o.E.stats.quarantined_chunks;
  (match o.E.quarantined with
  | [ (ci, lo, hi, err) ] ->
      Alcotest.(check int) "chunk index" 3 ci;
      Alcotest.(check int) "range lo" 96 lo;
      Alcotest.(check int) "range hi" 128 hi;
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "last error preserved" true (contains "permanent fault" err)
  | q -> Alcotest.failf "expected one quarantine record, got %d" (List.length q));
  (* Every other chunk still completed, and its mismatches survive. *)
  Alcotest.(check int) "rest completed" (o.E.stats.total_chunks - 1) (C.completed o.E.checkpoint);
  rm_rf dir

(* The acceptance scenario: SIGKILL a sweep mid-run, resume it, and the
   final report is bit-identical to an uninterrupted run — at every job
   count.

   OCaml 5 refuses Unix.fork once any domain has ever been spawned in
   the process, so the test is structured in two phases — all children
   forked and killed first (everything at jobs=1, no domains), then the
   resumes (which do spawn domains for jobs>1) — and it must run before
   any other multi-domain test in this binary. *)
let test_kill_and_resume () =
  let identity = "kill/resume" in
  let n = 2048 and chunk_size = 32 in
  let _, base = run_ok ~n ~chunk_size ~jobs:1 ~identity synth in
  let dirs = List.map (fun jobs -> (jobs, fresh_dir "engine_kill")) [ 1; 2; 4 ] in
  (* Phase 1: fork a slow sweep per job count, kill each once its
     checkpoint shows real progress. *)
  List.iter
    (fun (_, dir) ->
      let slow ~lo ~hi =
        Unix.sleepf 0.004;
        synth ~lo ~hi
      in
      let pid = Unix.fork () in
      if pid = 0 then begin
        (try ignore (E.run ~dir ~identity ~n ~chunk_size ~checkpoint_every:4 ~jobs:1 slow)
         with _ -> ());
        Unix._exit 0
      end;
      let path = Filename.concat dir "checkpoint.bin" in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec wait () =
        let enough =
          Sys.file_exists path
          && match C.load ~path with Ok cp -> C.completed cp >= 8 | Error _ -> false
        in
        if (not enough) && Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.005;
          wait ()
        end
      in
      wait ();
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid))
    dirs;
  (* Phase 2: resume each killed sweep at its job count. *)
  List.iter
    (fun (jobs, dir) ->
      match E.run ~dir ~identity ~n ~chunk_size ~checkpoint_every:4 ~jobs ~resume:true synth with
      | Error msg -> Alcotest.failf "resume (jobs=%d): %s" jobs msg
      | Ok o ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: checkpoint restored progress" jobs)
            true (o.E.stats.restored_chunks > 0);
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d: resumed report identical to uninterrupted" jobs)
            true
            (o.E.mismatches = base.E.mismatches);
          Alcotest.(check int) "all chunks accounted for" o.E.stats.total_chunks
            (C.completed o.E.checkpoint);
          rm_rf dir)
    dirs

(* ------------------------------------------------------------------ *)
(* Adversarial fast-verifier case: a rounding-interval table entry      *)
(* corrupted by one ulp.  Guards against a verifier that "passes" by    *)
(* never disagreeing — the corruption must surface as a certificate     *)
(* miss (escalation), and in strict no-oracle mode as a quarantine      *)
(* record naming the input.                                             *)
(* ------------------------------------------------------------------ *)

let test_corrupted_table_entry_flagged () =
  let t = Funcs.Specs.bfloat16 in
  let g = Funcs.Libm.get ~quality:Funcs.Libm.Quick t "log2" in
  let module G = Rlibm.Generator in
  let module T = (val g.G.spec.repr) in
  (* A non-special pattern to frame. *)
  let pat =
    let rec find p =
      if p >= 1 lsl T.bits then Alcotest.fail "no non-special pattern"
      else if g.G.spec.special p = None then p
      else find (p + 1)
    in
    find 0
  in
  let rr = g.G.spec.reduce (T.to_double pat) in
  let key = Fp.Fp64.bits rr.Rlibm.Spec.r in
  (* Corrupt a private copy of the table: pull the interval's upper
     bound one ulp below the polynomial's actual value there, so the
     certificate cannot hold at [pat]. *)
  let v0 = Rlibm.Piecewise.eval g.G.pieces.(0) rr.Rlibm.Spec.r in
  let intervals = Array.map Hashtbl.copy g.G.intervals in
  (match Hashtbl.find_opt intervals.(0) key with
  | None -> Alcotest.fail "reduced input missing from the interval table"
  | Some c ->
      Hashtbl.replace intervals.(0) key
        { c with Rlibm.Reduced.hi = Fp.Fp64.advance v0 (-1); hi_open = false });
  let bad = { g with G.intervals } in
  (* Escalation mode: the miss goes to the oracle, which (the library
     being correct) agrees — so the verdict is clean but the escalation
     counter proves the corruption was caught, not skipped. *)
  let counters = Sweep.Verify.counters () in
  let v_esc = Rlibm.Verifier.make ~counters ~policy:`Fast bad in
  Alcotest.(check bool) "escalated verdict is clean" true (Sweep.Verify.check v_esc pat = None);
  Alcotest.(check int) "corruption forced an oracle escalation" 1
    (Sweep.Verify.escalated counters);
  (* Sanity: the uncorrupted table certifies the same pattern fast. *)
  let counters_ok = Sweep.Verify.counters () in
  let v_ok = Rlibm.Verifier.make ~counters:counters_ok ~policy:`Fast g in
  Alcotest.(check bool) "uncorrupted verdict is clean" true (Sweep.Verify.check v_ok pat = None);
  Alcotest.(check int) "uncorrupted table certifies oracle-free" 1
    (Sweep.Verify.fast counters_ok);
  (* Strict no-oracle mode through the engine: the chunk holding the
     corrupted input is quarantined and the record names the input. *)
  let v_fail = Rlibm.Verifier.make ~policy:`Fast ~on_escalate:`Fail bad in
  let dir = fresh_dir "adversarial" in
  (* One-item job framing exactly the corrupted input. *)
  let f ~lo:_ ~hi:_ =
    match Sweep.Verify.check v_fail pat with Some m -> [ m ] | None -> []
  in
  (match
     E.run ~dir ~identity:"adversarial" ~n:1 ~chunk_size:1 ~max_retries:0 ~checkpoint_every:1
       ~jobs:1 f
   with
  | Error msg -> Alcotest.fail msg
  | Ok o -> (
      match o.E.quarantined with
      | [ (ci, _, _, err) ] ->
          Alcotest.(check int) "the chunk holding the input" 0 ci;
          let hex = Printf.sprintf "%#x" pat in
          let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "quarantine names the input %s: %s" hex err)
            true (contains hex err)
      | q -> Alcotest.failf "expected exactly one quarantined chunk, got %d" (List.length q)));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Resume ETA basis: throughput and ETA must come from chunks finished  *)
(* THIS run — a resume that restores most of the work from the          *)
(* checkpoint has demonstrated nothing about how fast the pending       *)
(* chunks will go, so restored chunks must not inflate the rate.        *)
(* ------------------------------------------------------------------ *)

let test_resume_eta_pending_only () =
  let identity = "eta basis" in
  let n = 640 and chunk_size = 32 in
  let dir = fresh_dir "eta" in
  OC.mkdir_p dir;
  (* A checkpoint with 15 of 20 chunks already done: the resume inherits
     75% of the campaign for free. *)
  let cp = C.create ~identity ~n_items:n ~chunk_size in
  for i = 0 to 14 do
    cp.C.state.(i) <- C.Done
  done;
  C.save ~path:(Filename.concat dir "checkpoint.bin") cp;
  let rows = ref [] in
  let slow ~lo ~hi =
    Unix.sleepf 0.02;
    synth ~lo ~hi
  in
  (match
     E.run ~dir ~identity ~n ~chunk_size ~checkpoint_every:1 ~jobs:1 ~resume:true
       ~progress:(fun p -> rows := p :: !rows)
       slow
   with
  | Error msg -> Alcotest.fail msg
  | Ok _ -> ());
  let informative =
    List.filter
      (fun (p : E.progress) -> p.completed_chunks > p.restored_chunks && p.wall_seconds > 0.0)
      !rows
  in
  Alcotest.(check bool) "captured post-restore progress rows" true (informative <> []);
  List.iter
    (fun (p : E.progress) ->
      let done_this_run = p.completed_chunks - p.restored_chunks in
      (* The advertised rate counts exactly this run's chunks... *)
      Alcotest.(check bool) "rate counts pending-chunk work only" true
        (abs_float ((p.chunk_rate *. p.wall_seconds) -. float_of_int done_this_run) < 1e-6);
      (* ...the ETA derives from that rate... *)
      let remaining = p.total_chunks - p.completed_chunks - p.quarantined_chunks in
      if remaining > 0 && p.chunk_rate > 0.0 then
        Alcotest.(check bool) "eta = remaining / pending rate" true
          (abs_float (p.eta_seconds -. (float_of_int remaining /. p.chunk_rate)) < 1e-6);
      (* ...and is strictly below the misleading restored-inflated rate
         the old report implied. *)
      if p.restored_chunks > 0 && p.chunk_rate > 0.0 then
        Alcotest.(check bool) "restored chunks do not inflate the rate" true
          (p.chunk_rate < float_of_int p.completed_chunks /. p.wall_seconds))
    informative;
  rm_rf dir

let () =
  Alcotest.run "sweep"
    [
      ( "checkpoint",
        QCheck_alcotest.to_alcotest qcheck_roundtrip
        :: QCheck_alcotest.to_alcotest qcheck_corruption_rejected
        :: QCheck_alcotest.to_alcotest qcheck_truncation_rejected
        :: [
             Alcotest.test_case "bad magic / trailing garbage / empty" `Quick
               test_bad_magic_and_garbage;
             Alcotest.test_case "save/load atomic" `Quick test_save_load_atomic;
           ] );
      ( "oracle cache",
        [
          Alcotest.test_case "persists across reopen" `Quick test_cache_persists;
          Alcotest.test_case "truncates a partial tail" `Quick test_cache_truncates_partial_tail;
          Alcotest.test_case "rejects a foreign header" `Quick test_cache_rejects_foreign_header;
        ] );
      ( "engine",
        [
          (* Must run first: it forks, which OCaml 5 refuses once any
             other test has spawned a domain. *)
          Alcotest.test_case "SIGKILL + resume is bit-identical" `Quick test_kill_and_resume;
          Alcotest.test_case "bit-identical at jobs 1/2/4" `Quick test_engine_jobs_invariant;
          Alcotest.test_case "refuses restart without --resume" `Quick
            test_engine_refuses_unflagged_restart;
          Alcotest.test_case "retries transient chunk failures" `Quick
            test_engine_retries_then_succeeds;
          Alcotest.test_case "quarantines persistent failures" `Quick
            test_engine_quarantines_persistent_failure;
          Alcotest.test_case "resume ETA uses pending-chunk throughput only" `Quick
            test_resume_eta_pending_only;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "one-ulp table corruption is flagged and quarantined" `Quick
            test_corrupted_table_entry_flagged;
        ] );
    ]
