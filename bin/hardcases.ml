(* Hard-case hunter: find inputs whose exact function value lies
   unusually close to a rounding boundary of the target type.

   These are the inputs that break real-value-approximating libraries —
   the glibc/Intel/CR-LIBM failures of Tables 1-2 are precisely
   hard cases past the comparator's error bound (Lefevre and Muller's
   worst cases for correct rounding; the paper cites their double-
   precision search [28]).  The hunter reports, per input, the
   "hardness" h = -log2(2*d/ulp), where d is the distance from f(x) to
   the nearest rounding boundary of T: a straightforward implementation
   with relative error 2^-p misrounds an input of hardness >= p.  It
   also doubles as a fresh-sample generator for the correctness checker
   (check the library exactly where it is most likely to be wrong). *)

module Q = Rational
module E = Oracle.Elementary
module R = Fp.Representation

(* Distance from the exact value [q] to the nearest boundary of its
   rounding interval in T, normalized by the interval width; both as
   rationals for exactness, reported as hardness bits.  The
   correctly-rounded result goes through the persistent oracle cache
   when one is attached, so re-hunts (and sweeps over the same target)
   skip Ziv's loop on settled inputs. *)
let hardness ?cache (module T : R.S) (f : E.fn) pat =
  let x = T.to_rational pat in
  match f ~prec:200 x with
  | E.Exact _ -> None (* exactly representable values are not hard cases *)
  | E.Approx v ->
      let q = Oracle.Bigfloat.to_rational v in
      let y =
        Sweep.Oracle_cache.memo cache pat (fun _ -> E.correctly_rounded ~round:T.round_rational f x)
      in
      (match T.classify y with
      | R.Finite ->
          let iv = Rlibm.Rounding.interval (module T) y in
          let lo = Q.of_float iv.lo and hi = Q.of_float iv.hi in
          let width = Q.sub hi lo in
          if Q.sign width <= 0 then None
          else begin
            let d = Q.min (Q.sub q lo) (Q.sub hi q) in
            if Q.sign d <= 0 then Some 200.0
            else begin
              (* hardness = log2(width / (2 d)) + 1ish; use ilog2. *)
              let ratio = Q.div width (Q.mul_pow2 d 1) in
              Some (float_of_int (Q.ilog2 ratio))
            end
          end
      | R.Inf _ | R.Nan -> None)

let run jobs tname fname per_stratum top cache_dir =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  let target =
    match tname with
    | "float32" -> Funcs.Specs.float32
    | "posit32" -> Funcs.Specs.posit32
    | "bfloat16" -> Funcs.Specs.bfloat16
    | "float16" -> Funcs.Specs.float16
    | _ -> invalid_arg ("unknown target " ^ tname)
  in
  let module T = (val target.repr) in
  let spec = Funcs.Specs.by_name fname target in
  let cache_dir =
    match cache_dir with
    | Some _ -> cache_dir
    | None -> Sys.getenv_opt "RLIBM_ORACLE_CACHE"
  in
  let cache =
    Option.map
      (fun dir ->
        Sweep.Oracle_cache.open_ ~dir ~repr:T.name ~func:fname
          ~mode:(Fp.Rounding_mode.to_string Fp.Rounding_mode.Rne))
      cache_dir
  in
  let patterns =
    if T.bits = 16 then Rlibm.Enumerate.exhaustive16
    else Rlibm.Enumerate.stratified32 ~seed:1234 ~per_stratum ()
  in
  (* Sharded boundary hunt: each shard collects its own (hardness, pat)
     list in pattern order; shard-order concatenation keeps the combined
     list identical at every job count, and the final sort is stable so
     equal-hardness ties stay in pattern order. *)
  let found =
    Parallel.fold_chunks ~n:(Array.length patterns)
      ~combine:(fun a b -> a @ b)
      ~init:[]
      (fun ~lo ~hi ->
        let acc = ref [] in
        for k = hi - 1 downto lo do
          let pat = patterns.(k) in
          if spec.special pat = None then
            match hardness ?cache target.repr spec.oracle pat with
            | Some h when h > 30.0 -> acc := (h, pat) :: !acc
            | _ -> ()
        done;
        !acc)
  in
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare (b : float) a) found in
  Printf.printf "%s %s: %d inputs scanned, %d with hardness > 30 bits\n" tname fname
    (Array.length patterns) (List.length sorted);
  Printf.printf "%-12s %-10s %s\n" "hardness" "pattern" "x";
  List.iteri
    (fun i (h, pat) ->
      if i < top then Printf.printf "%-12.0f %08x   %.17g\n" h pat (T.to_double pat))
    sorted;
  (* The generated library must get even these right. *)
  match Funcs.Libm.get ~quality:Funcs.Libm.Quick target fname with
  | exception Failure msg -> Printf.printf "(library generation failed: %s)\n" msg
  | g ->
      let wrong =
        List.filter
          (fun (_, pat) ->
            let want =
              Sweep.Oracle_cache.memo cache pat (fun pat ->
                  E.correctly_rounded ~round:T.round_rational spec.oracle (T.to_rational pat))
            in
            not (Rlibm.Generator.patterns_value_equal target.repr (Rlibm.Generator.eval_pattern g pat) want))
          sorted
      in
      Printf.printf "rlibm-32 on the hard cases: %d wrong of %d\n" (List.length wrong)
        (List.length sorted);
      Option.iter
        (fun c ->
          Sweep.Oracle_cache.close c;
          Printf.printf "oracle cache: %d hits, %d misses (%d entries)\n"
            (Sweep.Oracle_cache.hits c) (Sweep.Oracle_cache.misses c) (Sweep.Oracle_cache.size c))
        cache

open Cmdliner

let jobs =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Worker domains for the sharded scan (default: RLIBM_JOBS or the runtime's recommendation).")

let tname = Arg.(value & opt string "float32" & info [ "t"; "target" ] ~doc:"Target type.")
let fname = Arg.(value & opt string "exp" & info [ "f"; "function" ] ~doc:"Function name.")
let per = Arg.(value & opt int 16 & info [ "per-stratum" ] ~doc:"Patterns per stratum (32-bit targets).")
let top = Arg.(value & opt int 20 & info [ "top" ] ~doc:"How many hardest inputs to print.")

let cache_dir =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ]
           ~doc:"Persistent oracle cache directory (default: RLIBM_ORACLE_CACHE, else no cache).  \
                 Shared with check sweep and cached generation runs, so settled inputs skip Ziv's \
                 loop.")

let () =
  let cmd =
    Cmd.v
      (Cmd.info "hardcases" ~doc:"Find inputs near rounding boundaries (worst cases for correct rounding)")
      Term.(const run $ jobs $ tname $ fname $ per $ top $ cache_dir)
  in
  exit (Cmd.eval cmd)
