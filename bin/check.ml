(* Correctness checker: Tables 1 and 2 of the paper.

   For every function and every library, count wrong results over two
   input sets:

   - the generation enumeration (the RLIBM function is validated on it,
     mirroring the paper's all-inputs guarantee at our sampled scale);
   - a disjoint fresh stratified sample (measures the sampling residue
     of scaled-down generation — see DESIGN.md).

   Ground truth is the special-case analysis (machine-checked in the
   test suite) plus the arbitrary-precision oracle. *)

module R = Fp.Representation
module G = Rlibm.Generator

let value_equal (module T : R.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | R.Finite, R.Finite -> T.to_double a = T.to_double b
  | R.Nan, R.Nan -> true
  | _ -> false

type lib = { lname : string; eval : int -> int }

let libraries (t : Funcs.Specs.target) name (g : G.generated) =
  let module T = (val t.repr) in
  let spec = g.spec in
  (* A baseline that does not implement [name] (the native simulations
     have no radian-trig path, for instance) drops its row from the
     table instead of aborting the whole run. *)
  let if_known lname mk =
    try Some { lname; eval = mk () } with Invalid_argument _ -> None
  in
  List.filter_map Fun.id
    [
      Some { lname = "rlibm-32"; eval = G.eval_pattern g };
      if_known "libm-float(native)" (fun () ->
          Baselines.Native.eval_pattern Baselines.Native.F32 t name);
      if_known "libm-double(native)" (fun () ->
          Baselines.Native.eval_pattern Baselines.Native.F64 t name);
      if_known "glibc-double" (fun () -> Baselines.Double_libm.eval t.repr name);
      Some
        {
          lname = "crlibm(double-rounded)";
          eval =
            (fun pat ->
              match spec.special pat with
              | Some y -> y
              | None -> Baselines.Crlibm_analog.round_via_double t.repr spec.oracle pat);
        };
    ]

let check_function (t : Funcs.Specs.target) name ~fresh_per_stratum ~quality =
  let module T = (val t.repr) in
  let g = Funcs.Libm.get ~quality t name in
  let libs = libraries t name g in
  let truth pat =
    match g.spec.special pat with
    | Some y -> y
    | None ->
        Oracle.Elementary.correctly_rounded
          ~round:(T.round_rational ~mode:g.spec.mode)
          g.spec.oracle (T.to_rational pat)
  in
  (* Sharded across domains: each shard counts into its own array; the
     shard-order element-wise sum makes the totals identical at every
     job count (integer addition is associative-commutative anyway, but
     the merge order is fixed regardless). *)
  let nlibs = List.length libs in
  let count patterns =
    Parallel.fold_chunks ~n:(Array.length patterns)
      ~combine:(fun a b -> Array.map2 ( + ) a b)
      ~init:(Array.make nlibs 0)
      (fun ~lo ~hi ->
        let wrong = Array.make nlibs 0 in
        for k = lo to hi - 1 do
          let pat = patterns.(k) in
          let want = truth pat in
          List.iteri
            (fun i l ->
              if not (value_equal (module T) (l.eval pat) want) then wrong.(i) <- wrong.(i) + 1)
            libs
        done;
        wrong)
  in
  let gen_set = Funcs.Libm.enumeration t quality in
  let fresh =
    (* 16-bit targets are exhaustive already: the "fresh" column would
       re-check the same ground truth. *)
    if Array.length gen_set = 65536 then [||]
    else Rlibm.Enumerate.stratified32 ~seed:77 ~per_stratum:fresh_per_stratum ()
  in
  let w_gen = count gen_set and w_fresh = count fresh in
  Printf.printf "%-7s | %8s %8s | %s\n" name "enum" "fresh" "library";
  List.iteri
    (fun i l ->
      Printf.printf "        | %8d %8d | %s\n" w_gen.(i) w_fresh.(i) l.lname)
    libs;
  Printf.printf "          (enum = %d inputs, fresh = %d inputs)\n%!" (Array.length gen_set)
    (Array.length fresh)

let label (t : Funcs.Specs.target) =
  if t.mode = Fp.Rounding_mode.Rne then t.tname
  else t.tname ^ "@" ^ Fp.Rounding_mode.to_string t.mode

let run_table (t : Funcs.Specs.target) names ~fresh_per_stratum ~quality =
  Printf.printf "=== %s correctness (wrong-result counts; paper Table %s) ===\n%!" (label t)
    (if t.tname = "posit32" then "2" else "1");
  List.iter
    (fun name ->
      try check_function t name ~fresh_per_stratum ~quality
      with Failure msg -> Printf.printf "%-7s | GENERATION FAILED: %s\n%!" name msg)
    names

open Cmdliner

let jobs_term =
  let doc = "Worker domains for the sharded passes (default: RLIBM_JOBS or the runtime's recommendation)." in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc)

let set_jobs = function Some j -> Parallel.set_jobs j | None -> ()

let quality_term =
  let q =
    Arg.(value
         & opt (enum [ ("quick", Funcs.Libm.Quick); ("full", Funcs.Libm.Full) ]) Funcs.Libm.Quick
         & info [ "quality" ]
             ~doc:"Generation quality: quick (8/stratum, default) or full (24/stratum).")
  in
  q

let fresh_term =
  Arg.(value & opt int 8 & info [ "fresh-per-stratum" ] ~doc:"Fresh-sample density per stratum.")

let funcs_term =
  Arg.(value & opt_all string [] & info [ "f"; "function" ] ~doc:"Check only this function (repeatable).")

let mode_conv =
  let parse s =
    match Fp.Rounding_mode.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg ("unknown rounding mode: " ^ s ^ " (want rne/rna/up/down/zero/odd)"))
  in
  Arg.conv (parse, Fp.Rounding_mode.pp)

let mode_term =
  Arg.(value & opt (some mode_conv) None
       & info [ "mode" ]
           ~doc:"Check the target under this rounding mode (rne, rna, up, down, zero, odd).  \
                 Non-nearest modes restrict the default function list to the odd-capable set.")

let apply_mode mode (t : Funcs.Specs.target) =
  match mode with None -> t | Some m -> Funcs.Specs.with_mode t m

let default_names (t : Funcs.Specs.target) fns ~posit =
  if fns <> [] then fns
  else if t.mode <> Fp.Rounding_mode.Rne then Funcs.Specs.odd_functions
  else if posit then Funcs.Specs.posit_functions
  else Funcs.Specs.float_functions

let table1 jobs quality fresh mode fns =
  set_jobs jobs;
  let t = apply_mode mode Funcs.Specs.float32 in
  run_table t (default_names t fns ~posit:false) ~fresh_per_stratum:fresh ~quality

let table2 jobs quality fresh mode fns =
  set_jobs jobs;
  let t = apply_mode mode Funcs.Specs.posit32 in
  run_table t (default_names t fns ~posit:true) ~fresh_per_stratum:fresh ~quality

(* Table 1/2 with nothing sampled: every input of every 16-bit target.
   This is the scale where our guarantee equals the paper's. *)
let table16 jobs quality fresh mode fns =
  set_jobs jobs;
  List.iter
    (fun (t : Funcs.Specs.target) ->
      let t = apply_mode mode t in
      run_table t (default_names t fns ~posit:(t.tname = "posit16")) ~fresh_per_stratum:fresh
        ~quality)
    [ Funcs.Specs.bfloat16; Funcs.Specs.float16; Funcs.Specs.posit16 ]

(* RLIBM-ALL (Lim & Nagarakatte 2021) witness: evaluate bfloat16 and
   float16 through the ONE float34 round-to-odd table, re-rounding its
   27-bit output in each requested standard mode, and compare every
   16-bit input against the mode-aware oracle.  A zero count per (target,
   function, mode) is the paper's headline claim at full 16-bit scale. *)
let derived jobs quality modes fns =
  set_jobs jobs;
  let names = if fns = [] then [ "log2"; "exp" ] else fns in
  let modes = if modes = [] then Fp.Rounding_mode.standard else modes in
  Printf.printf "=== derived from the single float34 round-to-odd table ===\n%!";
  List.iter
    (fun (base : Funcs.Specs.target) ->
      List.iter
        (fun name ->
          List.iter
            (fun mode ->
              let t = Funcs.Specs.with_mode base mode in
              let module T = (val t.repr) in
              let spec = Funcs.Specs.by_name name t in
              let f = Funcs.Derived.fn ~quality t.repr ~mode name in
              let truth pat =
                match spec.Rlibm.Spec.special pat with
                | Some y -> y
                | None ->
                    Oracle.Elementary.correctly_rounded
                      ~round:(T.round_rational ~mode)
                      spec.Rlibm.Spec.oracle (T.to_rational pat)
              in
              let pats = Rlibm.Enumerate.exhaustive16 in
              let wrong =
                Parallel.fold_chunks ~n:(Array.length pats) ~combine:( + ) ~init:0
                  (fun ~lo ~hi ->
                    let bad = ref 0 in
                    for k = lo to hi - 1 do
                      let pat = pats.(k) in
                      if not (value_equal (module T) (f pat) (truth pat)) then incr bad
                    done;
                    !bad)
              in
              Printf.printf "%-8s %-7s %-5s | %8d wrong of %d\n%!" base.tname name
                (Fp.Rounding_mode.to_string mode)
                wrong (Array.length pats))
            modes)
        names)
    [ Funcs.Specs.bfloat16; Funcs.Specs.float16 ]

let modes_term =
  Arg.(value & opt_all mode_conv []
       & info [ "mode" ]
           ~doc:"Standard rounding mode to derive (repeatable; default: all five).")

(* ------------------------------------------------------------------ *)
(* Full-range sweep: every pattern of the target (optionally strided)   *)
(* checked against the oracle through the resumable, checkpointed,      *)
(* fault-tolerant Sweep engine.  This is the scale at which the paper's *)
(* all-inputs claim is actually verified, so the job must survive a     *)
(* kill: chunk completion lands in dir/checkpoint.bin (atomic rename)   *)
(* after every batch, --resume picks up exactly the pending chunks, and *)
(* the final report is bit-identical either way.                        *)
(* ------------------------------------------------------------------ *)

let target_by_name = function
  | "float32" -> Funcs.Specs.float32
  | "posit32" -> Funcs.Specs.posit32
  | "bfloat16" -> Funcs.Specs.bfloat16
  | "float16" -> Funcs.Specs.float16
  | "posit16" -> Funcs.Specs.posit16
  | s -> invalid_arg ("unknown target " ^ s ^ " (want float32/posit32/bfloat16/float16/posit16)")

let quality_name = function
  | Funcs.Libm.Draft -> "draft"
  | Funcs.Libm.Quick -> "quick"
  | Funcs.Libm.Full -> "full"

(* Deterministic report: identity line, mismatches in pattern order,
   quarantined chunks in chunk order, totals.  No timings, no counters —
   an interrupted-and-resumed sweep must reproduce it byte for byte. *)
let write_report path ~identity (o : Sweep.Engine.outcome) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%s\n" identity;
  Array.iter
    (fun (m : Sweep.Checkpoint.mismatch) ->
      Printf.fprintf oc "mismatch 0x%x got 0x%x want 0x%x\n" m.pattern m.got m.want)
    o.mismatches;
  List.iter
    (fun (ci, lo, hi, msg) -> Printf.fprintf oc "quarantined chunk %d [%d,%d): %s\n" ci lo hi msg)
    o.quarantined;
  Printf.fprintf oc "total %d mismatches, %d quarantined chunks over %d points\n"
    (Array.length o.mismatches) (List.length o.quarantined) o.checkpoint.Sweep.Checkpoint.n_items;
  close_out oc;
  Sys.rename tmp path

(* This machine's context for run datafiles: comparisons across
   different jobs/cpus/ocaml are noise, and Datafile.host_mismatch
   wants the facts recorded at run time. *)
let datafile_host () =
  Some
    {
      Datafile.jobs = Parallel.jobs ();
      cpus = Domain.recommended_domain_count ();
      ocaml = Sys.ocaml_version;
    }

let datafile_mismatches ms =
  Array.map
    (fun (m : Sweep.Checkpoint.mismatch) ->
      { Datafile.pattern = m.pattern; got = m.got; want = m.want })
    ms

(* Resolve the verifier policy, refusing [`Fast] when the certificate
   would be unsound (non-exhaustive generation) and reporting what
   [`Auto] picked. *)
let resolve_policy (policy : Rlibm.Verifier.policy) (g : G.generated) =
  match policy with
  | `Fast when not (Rlibm.Verifier.certifiable g) ->
      prerr_endline
        (Printf.sprintf
           "--verifier fast: %s was generated from %d patterns, not the full 2^%d — the \
            oracle-free certificate is only sound over an exhaustive enumeration (use auto or \
            oracle)"
           g.G.spec.name g.G.stats.n_inputs
           (let module T = (val g.G.spec.repr) in
            T.bits));
      exit 3
  | `Auto -> if Rlibm.Verifier.certifiable g then `Fast else `Oracle
  | (`Fast | `Oracle) as p -> p

(* A progressive generation changes which coefficients are served, but
   not the sweep/campaign identity: verdicts are output-level and the
   tier is bit-identical to the full path, so reports from progressive
   and classic runs must stay interchangeable (byte-identical). *)
let cfg_of_prog prog =
  if prog then Some { Rlibm.Config.default with progressive = true } else None

let sweep jobs quality prog mode tname fname stride chunk ckpt_every retries dir resume cache_dir
    verifier =
  set_jobs jobs;
  let t = apply_mode mode (target_by_name tname) in
  let module T = (val t.repr) in
  let g = Funcs.Libm.get ~quality ?cfg:(cfg_of_prog prog) t fname in
  let spec = g.G.spec in
  let stride = Stdlib.max 1 stride in
  let n = (((1 lsl T.bits) - 1) / stride) + 1 in
  let mode_s = Fp.Rounding_mode.to_string spec.mode in
  (* The verifier policy is NOT part of the identity: fast and oracle
     verification are two ways of computing the same verdicts, and their
     reports must stay interchangeable (byte-identical). *)
  let identity =
    Printf.sprintf "rlibm-sweep v1 target=%s func=%s mode=%s bits=%d stride=%d quality=%s"
      t.tname fname mode_s T.bits stride (quality_name quality)
  in
  (* The oracle cache outlives the sweep directory on purpose: repeated
     sweeps, hard-case hunts and cached generations all share it. *)
  let cache_dir =
    match cache_dir with
    | Some d -> d
    | None -> (
        match Sys.getenv_opt "RLIBM_ORACLE_CACHE" with
        | Some d when String.trim d <> "" -> String.trim d
        | _ -> Filename.concat dir "cache")
  in
  let cache = Sweep.Oracle_cache.open_ ~dir:cache_dir ~repr:T.name ~func:fname ~mode:mode_s in
  let policy = resolve_policy verifier g in
  let counters = Sweep.Verify.counters () in
  let v = Rlibm.Verifier.make ~counters ~cache ~policy g in
  let f = Sweep.Verify.sweep_fn v ~stride () in
  Printf.printf "sweep: %s — %d points in chunks of %d, %s verifier (dir %s%s)\n%!" identity n
    chunk
    (match policy with `Fast -> "fast (oracle on escalation)" | `Oracle -> "oracle")
    dir
    (if resume then ", resuming" else "");
  let last_print = ref 0.0 in
  let progress (p : Sweep.Engine.progress) =
    let now = Unix.gettimeofday () in
    if now -. !last_print >= 1.0 || p.completed_chunks + p.quarantined_chunks = p.total_chunks
    then begin
      last_print := now;
      Rlibm.Stats.pp_sweep Format.std_formatter p
    end
  in
  match
    Sweep.Engine.run ~dir ~identity ~n ~chunk_size:chunk ~max_retries:retries
      ~checkpoint_every:ckpt_every ~resume ~cache ~verify:counters ~progress f
  with
  | Error msg ->
      prerr_endline msg;
      exit 3
  | Ok o ->
      Sweep.Oracle_cache.close cache;
      let report = Filename.concat dir "report.txt" in
      write_report report ~identity o;
      (* The run as a datafile: verdicts + timings + machine context in
         the one schema the gate and `report datafile-diff` consume.
         report.txt stays the canonical byte-identity artifact; the
         datafile deliberately carries what that report omits. *)
      let datafile = Filename.concat dir "datafile.json" in
      Datafile.write ~path:datafile
        {
          Datafile.rev = Datafile.git_rev ();
          date = Datafile.timestamp ();
          seed = None;
          config = identity;
          host = datafile_host ();
          rows =
            [
              {
                Datafile.kind = "sweep";
                func = fname;
                repr = t.tname;
                mode = mode_s;
                identity;
                tables_hash = G.tables_fingerprint g;
                span = Some { Datafile.lo = 0; hi = n; n_items = n; chunk_size = chunk };
                metrics =
                  [
                    ("sweep.wall_seconds", o.stats.wall_seconds);
                    ("sweep.retry_attempts", float_of_int o.stats.retry_attempts);
                    ("sweep.cache_hits", float_of_int o.stats.cache_hits);
                    ("sweep.cache_misses", float_of_int o.stats.cache_misses);
                    ("sweep.fast", float_of_int (Sweep.Verify.fast counters));
                    ("sweep.escalated", float_of_int (Sweep.Verify.escalated counters));
                  ];
                mismatches = datafile_mismatches o.mismatches;
                quarantined =
                  Array.of_list (List.map (fun (_ci, lo, hi, msg) -> (lo, hi, msg)) o.quarantined);
              };
            ];
        };
      let nmis = Array.length o.mismatches and nq = List.length o.quarantined in
      Printf.printf
        "sweep done: %d points, %d mismatches, %d quarantined chunks, %d retries, cache %d hit / \
         %d miss, verifier %d fast / %d escalated\nreport: %s\ndatafile: %s\n%!"
        n nmis nq o.stats.retry_attempts o.stats.cache_hits o.stats.cache_misses
        (Sweep.Verify.fast counters) (Sweep.Verify.escalated counters) report datafile;
      List.iter
        (fun (ci, lo, hi, msg) ->
          Printf.printf "  QUARANTINED chunk %d (points %d..%d): %s\n%!" ci lo (hi - 1) msg)
        o.quarantined;
      exit (if nq > 0 then 2 else if nmis > 0 then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Sharded campaign: the sweep scaled out to worker processes.  The     *)
(* parent plans chunk-aligned shards, forks one worker per shard (or    *)
(* runs them inline), each worker sweeps its range through its own      *)
(* engine checkpoint, and the merge step welds the shard reports into   *)
(* one campaign verdict.                                                *)
(* ------------------------------------------------------------------ *)

let campaign jobs quality prog mode tname fname stride chunk ckpt_every retries dir resume
    cache_dir verifier shards workers shard_sel do_merge =
  (* OCaml refuses fork once a domain has been spawned, so the parent
     pins itself to inline execution; [--jobs] applies inside workers. *)
  Parallel.set_jobs 1;
  let t = apply_mode mode (target_by_name tname) in
  let module T = (val t.repr) in
  let stride = Stdlib.max 1 stride in
  let n = (((1 lsl T.bits) - 1) / stride) + 1 in
  let mode_s = Fp.Rounding_mode.to_string t.mode in
  (* Free of verifier policy, shard count and worker count: the merged
     report must byte-compare across all of them. *)
  let identity =
    Printf.sprintf "rlibm-campaign v1 target=%s func=%s mode=%s bits=%d stride=%d quality=%s"
      t.tname fname mode_s T.bits stride (quality_name quality)
  in
  let finish ~tables_hash (o : Campaign.outcome) =
    let m = o.merged in
    let quarantined_items =
      Array.fold_left (fun a (lo, hi, _) -> a + (hi - lo)) 0 m.m_quarantined
    in
    let st =
      {
        Rlibm.Stats.c_items = n - quarantined_items;
        c_shards = m.m_n_shards;
        c_busy_seconds = m.m_busy_seconds;
        c_wall_seconds = o.wall_seconds;
        c_fast = m.m_fast;
        c_escalated = m.m_escalated;
        c_mismatches = Array.length m.m_mismatches;
        c_quarantined = Array.length m.m_quarantined;
      }
    in
    Rlibm.Stats.pp_campaign Format.std_formatter st;
    (* The merged verdict as a datafile: the row is exactly
       Report.row_of_merged (so Datafile.campaign_text over it equals
       report.txt), plus the function/target/tables identity the binary
       shard reports don't carry. *)
    let datafile = Filename.concat dir "datafile.json" in
    Datafile.write ~path:datafile
      {
        Datafile.rev = Datafile.git_rev ();
        date = Datafile.timestamp ();
        seed = None;
        config = identity;
        host = datafile_host ();
        rows =
          [
            {
              (Campaign.Report.row_of_merged m) with
              Datafile.func = fname;
              repr = t.tname;
              mode = mode_s;
              tables_hash;
            };
          ];
      };
    Printf.printf "report: %s\ndatafile: %s\n%!" o.report_path datafile;
    exit
      (if Array.length m.m_quarantined > 0 then 2
       else if Array.length m.m_mismatches > 0 then 1
       else 0)
  in
  if do_merge then begin
    match Campaign.merge_only ~dir ~identity ~n ~shards ~chunk_size:chunk () with
    | Error msg ->
        prerr_endline msg;
        exit 3
    (* Merge-only runs nothing, so there are no tables to fingerprint:
       the hash stays empty rather than inventing one. *)
    | Ok o -> finish ~tables_hash:"" o
  end
  else begin
    let g = Funcs.Libm.get ~quality ?cfg:(cfg_of_prog prog) t fname in
    let policy = resolve_policy verifier g in
    let counters = Sweep.Verify.counters () in
    (* One cache file per shard: the append-only cache format is not
       safe for concurrent writer processes. *)
    let shard_cache shard =
      let base = match cache_dir with Some d -> d | None -> dir in
      Filename.concat (Filename.concat base (Printf.sprintf "shard-%04d" shard)) "cache"
    in
    let job ~shard =
      let cache =
        Sweep.Oracle_cache.open_ ~dir:(shard_cache shard) ~repr:T.name ~func:fname ~mode:mode_s
      in
      let v = Rlibm.Verifier.make ~counters ~cache ~policy g in
      { Campaign.f = Sweep.Verify.sweep_fn v ~stride (); cache = Some cache; counters = Some counters }
    in
    let last_print = ref 0.0 in
    let progress (p : Sweep.Engine.progress) =
      let now = Unix.gettimeofday () in
      if now -. !last_print >= 1.0 then begin
        last_print := now;
        Rlibm.Stats.pp_sweep Format.std_formatter p
      end
    in
    Printf.printf "campaign: %s — %d points, %d shards, %s verifier (dir %s%s)\n%!" identity n
      shards
      (match policy with `Fast -> "fast (oracle on escalation)" | `Oracle -> "oracle")
      dir
      (if resume then ", resuming" else "");
    match shard_sel with
    | Some s -> (
        (* Run exactly one shard in this process (a worker invocation —
           what the fork driver does for you, by hand). *)
        match Campaign.Plan.make ~n_items:n ~chunk_size:chunk ~shards with
        | Error msg ->
            prerr_endline msg;
            exit 3
        | Ok plan ->
            if s < 0 || s >= Campaign.Plan.n_shards plan then begin
              Printf.eprintf "campaign: no shard %d in a %d-shard plan\n%!" s shards;
              exit 3
            end;
            (match
               Campaign.run_shard ~dir ~identity ~plan ~shard:s ~max_retries:retries
                 ~checkpoint_every:ckpt_every ?jobs ~resume ~progress (job ~shard:s)
             with
            | Error msg ->
                prerr_endline msg;
                exit 3
            | Ok r ->
                (* A per-shard datafile next to the binary shard report:
                   shard datafiles from any subset of workers weld into
                   the campaign verdict through Datafile.merge, which
                   refuses overlaps, gaps and identity drift. *)
                let sdf = Filename.concat (Campaign.Plan.shard_dir dir s) "datafile.json" in
                Datafile.write ~path:sdf
                  {
                    Datafile.rev = Datafile.git_rev ();
                    date = Datafile.timestamp ();
                    seed = None;
                    config = identity;
                    host = datafile_host ();
                    rows =
                      [
                        {
                          (Campaign.Report.row_of_report r) with
                          Datafile.func = fname;
                          repr = t.tname;
                          mode = mode_s;
                          tables_hash = G.tables_fingerprint g;
                        };
                      ];
                  };
                Printf.printf
                  "shard %d done: [%d,%d), %d mismatches, %d quarantined ranges, %d fast / %d \
                   escalated\ndatafile: %s\n%!"
                  s r.lo r.hi (Array.length r.mismatches) (Array.length r.quarantined) r.fast
                  r.escalated sdf;
                exit 0))
    | None -> (
        let exec = if workers <= 0 then Campaign.In_process else Campaign.Fork workers in
        match
          Campaign.run ~dir ~identity ~n ~shards ~chunk_size:chunk ~max_retries:retries
            ~checkpoint_every:ckpt_every ?jobs ~resume ~progress ~exec ~job ()
        with
        | Error msg ->
            prerr_endline msg;
            exit 3
        | Ok o -> finish ~tables_hash:(G.tables_fingerprint g) o)
  end

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Float32 correctness table (paper Table 1)")
    Term.(const table1 $ jobs_term $ quality_term $ fresh_term $ mode_term $ funcs_term)

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Posit32 correctness table (paper Table 2)")
    Term.(const table2 $ jobs_term $ quality_term $ fresh_term $ mode_term $ funcs_term)

let table16_cmd =
  Cmd.v
    (Cmd.info "table16"
       ~doc:"Exhaustive 16-bit correctness tables (every input of bfloat16/float16/posit16)")
    Term.(const table16 $ jobs_term $ quality_term $ fresh_term $ mode_term $ funcs_term)

let prog_term =
  Arg.(value & flag
       & info [ "prog" ]
           ~doc:"Verify the progressively generated artifact: the sweep classifies through the \
                 tier the serving kernel actually selects (certified prefix, full polynomial on \
                 certificate miss).  The report is byte-identical to a non-progressive run.")

let sweep_tname =
  Arg.(value & opt string "bfloat16" & info [ "t"; "target" ] ~doc:"Target type to sweep.")

let sweep_fname = Arg.(value & opt string "log2" & info [ "f"; "function" ] ~doc:"Function name.")

let stride_term =
  Arg.(value & opt int 1
       & info [ "stride" ]
           ~doc:"Check every $(docv)-th pattern (1 = the full pattern space).  The stride is part \
                 of the job identity: a checkpoint cannot be resumed under a different stride.")

let chunk_term =
  Arg.(value & opt int 4096 & info [ "chunk" ] ~doc:"Sweep points per chunk (the retry/checkpoint unit).")

let ckpt_every_term =
  Arg.(value & opt int 32
       & info [ "checkpoint-every" ]
           ~doc:"Chunks per batch: the checkpoint is rewritten (atomic rename) after every batch, \
                 so a kill loses at most this many chunks of work.")

let retries_term =
  Arg.(value & opt int 2
       & info [ "retries" ]
           ~doc:"Retries per failing chunk before it is quarantined (reported, never silently dropped).")

let dir_term =
  Arg.(value & opt string "_sweep" & info [ "dir" ] ~doc:"Sweep state directory (checkpoint + report).")

let resume_term =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Resume the checkpoint in $(b,--dir), re-running only chunks not yet completed.  \
                 The final report is bit-identical to an uninterrupted run.")

let cache_dir_term =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ]
           ~doc:"Persistent oracle cache directory (default: RLIBM_ORACLE_CACHE, else \
                 $(b,--dir)/cache).  Repeated sweeps skip Ziv's loop on every pattern already \
                 settled there.")

let verifier_term ~default =
  Arg.(value
       & opt (enum [ ("auto", `Auto); ("fast", `Fast); ("oracle", `Oracle) ]) default
       & info [ "verifier" ]
           ~doc:"Verification strategy: $(b,oracle) runs Ziv's arbitrary-precision loop on every \
                 pattern; $(b,fast) re-evaluates the compiled polynomial and certifies against \
                 the stored rounding-interval table, escalating to the oracle only on a \
                 certificate miss (sound only for exhaustively generated functions); \
                 $(b,auto) picks fast exactly when that soundness condition holds.  The verdicts \
                 and the report are identical either way.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Resumable checkpointed full-range sweep: validate every (strided) pattern of a \
             target against the oracle, surviving kills and faulty chunks")
    Term.(const sweep $ jobs_term $ quality_term $ prog_term $ mode_term $ sweep_tname
          $ sweep_fname $ stride_term $ chunk_term $ ckpt_every_term $ retries_term $ dir_term
          $ resume_term $ cache_dir_term $ verifier_term ~default:`Oracle)

let shards_term =
  Arg.(value & opt int 4
       & info [ "shards" ]
           ~doc:"Contiguous chunk-aligned sub-ranges the pattern space is cut into.  Part of the \
                 shard state layout: resume and merge must use the same value.")

let workers_term =
  Arg.(value & opt int 2
       & info [ "workers" ]
           ~doc:"Concurrent worker processes (fork-based).  0 runs the shards sequentially in \
                 this process (no fork).")

let shard_sel_term =
  Arg.(value & opt (some int) None
       & info [ "shard" ]
           ~doc:"Run only shard $(docv) of the plan in this process, then exit — the manual \
                 worker invocation (one machine of a distributed campaign, or a smoke test's \
                 kill target).  Merge separately with $(b,--merge).")

let merge_term =
  Arg.(value & flag
       & info [ "merge" ]
           ~doc:"Run nothing: load the shard reports under $(b,--dir), refuse overlaps/gaps, and \
                 write the merged campaign report.")

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Sharded certification campaign: cut the pattern space into chunk-aligned shards, \
             sweep each in its own worker process with its own checkpoint (surviving worker \
             kills), and merge the shard reports into one campaign verdict.  The fast verifier \
             certifies most inputs without the Ziv oracle; the merged report is byte-identical \
             at any shard/worker count and under either verifier.")
    Term.(const campaign $ jobs_term $ quality_term $ prog_term $ mode_term $ sweep_tname
          $ sweep_fname $ stride_term $ chunk_term $ ckpt_every_term $ retries_term $ dir_term
          $ resume_term $ cache_dir_term $ verifier_term ~default:`Auto $ shards_term
          $ workers_term $ shard_sel_term $ merge_term)

let derived_cmd =
  Cmd.v
    (Cmd.info "derived"
       ~doc:"Exhaustive 16-bit check of bfloat16/float16 in every standard rounding mode, \
             all derived from the single float34 round-to-odd table (RLIBM-ALL)")
    Term.(const derived $ jobs_term $ quality_term $ modes_term $ funcs_term)

let () =
  let info = Cmd.info "check" ~doc:"RLIBM-32 correctness experiments (Tables 1-2)" in
  exit
    (Cmd.eval
       (Cmd.group info [ table1_cmd; table2_cmd; table16_cmd; derived_cmd; sweep_cmd; campaign_cmd ]))
