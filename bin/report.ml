(* One-shot experiment report: Tables 1, 2 and 3 from a single process
   so each function is generated exactly once (float32 at Quick quality,
   posit32 at Draft — see DESIGN.md on quality/scale).  `bin/check.exe`
   and `bin/generate.exe` remain the flexible per-table drivers. *)

module R = Fp.Representation
module G = Rlibm.Generator

let value_equal (module T : R.S) a b =
  a = b
  ||
  match (T.classify a, T.classify b) with
  | R.Finite, R.Finite -> T.to_double a = T.to_double b
  | R.Nan, R.Nan -> true
  | _ -> false

let correctness (t : Funcs.Specs.target) quality names =
  Printf.printf
    "%-7s | %9s %9s | %9s %9s %9s %9s | (wrong results; enum then fresh columns per library)\n"
    "func" "rlibm" "rlibm" "float-nat" "dbl-nat" "glibc-dbl" "crlibm";
  List.iter
    (fun name ->
      match Funcs.Libm.get ~quality t name with
      | exception Failure msg -> Printf.printf "%-7s | GENERATION FAILED: %s\n%!" name msg
      | g ->
          let module T = (val t.repr) in
          let spec = g.G.spec in
          let libs =
            [|
              G.eval_pattern g;
              Baselines.Native.eval_pattern Baselines.Native.F32 t name;
              Baselines.Native.eval_pattern Baselines.Native.F64 t name;
              Baselines.Double_libm.eval t.repr name;
              (fun pat ->
                match spec.special pat with
                | Some y -> y
                | None -> Baselines.Crlibm_analog.round_via_double t.repr spec.oracle pat);
            |]
          in
          let truth pat =
            match spec.special pat with
            | Some y -> y
            | None ->
                Oracle.Elementary.correctly_rounded ~round:T.round_rational spec.oracle
                  (T.to_rational pat)
          in
          let count patterns =
            let wrong = Array.make (Array.length libs) 0 in
            Array.iter
              (fun pat ->
                let want = truth pat in
                Array.iteri
                  (fun i f -> if not (value_equal (module T) (f pat) want) then wrong.(i) <- wrong.(i) + 1)
                  libs)
              patterns;
            wrong
          in
          let enum = count (Funcs.Libm.enumeration t quality) in
          let fresh = count (Rlibm.Enumerate.stratified32 ~seed:77 ~per_stratum:4 ()) in
          Printf.printf "%-7s | %4d %4d | %4d %4d | %4d %4d | %4d %4d | %4d %4d\n%!" name
            enum.(0) fresh.(0) enum.(1) fresh.(1) enum.(2) fresh.(2) enum.(3) fresh.(3) enum.(4)
            fresh.(4))
    names

let table3 (t : Funcs.Specs.target) quality names =
  Printf.printf "%-7s %-10s %7s %8s %7s %6s %4s %5s\n" "func" "component" "time_s" "inputs"
    "reduced" "polys" "deg" "terms";
  List.iter
    (fun name ->
      match Funcs.Libm.get ~quality t name with
      | exception Failure msg -> Printf.printf "%-7s FAILED: %s\n%!" name msg
      | g ->
          let s = g.G.stats in
          Array.iter
            (fun (c : Rlibm.Stats.component) ->
              Printf.printf "%-7s %-10s %7.1f %8d %7d %6d %4d %5d\n%!" name c.cname s.gen_seconds
                s.n_inputs c.n_constraints c.n_polynomials c.degree c.n_terms)
            s.per_component)
    names

(* `report datafile-diff BASE CURR`: render the Datafile.diff of two run
   datafiles (schema-v1 or legacy BENCH_*.json) as the markdown table
   reviewers paste into a PR.  Pure renderer — the pass/fail exit code
   belongs to bin/bench_gate; here the verdict is only embedded in the
   table so the prose survives copy-paste. *)
let datafile_diff args =
  let threshold = ref 0.25 in
  let out = ref None in
  let positional = ref [] in
  let usage () =
    prerr_endline "usage: report datafile-diff BASELINE CURRENT [--threshold T] [--out FILE]";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with Some t -> threshold := t | None -> usage ());
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | ("--threshold" | "--out") :: [] -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse args;
  let base_path, curr_path =
    match List.rev !positional with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let load path =
    match Datafile.read ~path with
    | Ok t -> t
    | Error msg ->
        Printf.eprintf "report: %s\n" msg;
        exit 2
  in
  let md = Datafile.markdown_diff ~threshold:!threshold (load base_path) (load curr_path) in
  match !out with
  | None -> print_string md
  | Some file ->
      let oc = open_out file in
      output_string oc md;
      close_out oc;
      Printf.printf "wrote %s\n" file

let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "datafile-diff" then begin
    datafile_diff (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)));
    exit 0
  end;
  (* The report goes to stdout; [--out FILE] redirects it to an explicit
     artifact path instead.  Nothing is ever dropped implicitly in the
     working tree. *)
  (match Sys.argv with
  | [| _ |] -> ()
  | [| _; "--out"; file |] ->
      let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd
  | _ ->
      prerr_endline "usage: report [--out FILE] | report datafile-diff BASELINE CURRENT";
      exit 2);
  print_endline "### Table 1 analog: float32 correctness (Quick generation; columns are";
  print_endline "### wrong-result counts on the generation enumeration / a fresh sample)";
  correctness Funcs.Specs.float32 Funcs.Libm.Quick Funcs.Specs.float_functions;
  print_endline "";
  print_endline "### Table 3 analog: generator statistics, float32 (same generation run)";
  table3 Funcs.Specs.float32 Funcs.Libm.Quick Funcs.Specs.float_functions;
  print_endline "";
  print_endline "### Table 2 analog: posit32 correctness (Draft generation)";
  correctness Funcs.Specs.posit32 Funcs.Libm.Draft Funcs.Specs.posit_functions;
  print_endline "";
  print_endline "### Table 3 analog: generator statistics, posit32 (same generation run)";
  table3 Funcs.Specs.posit32 Funcs.Libm.Draft Funcs.Specs.posit_functions
