(* Generator driver: Table 3 of the paper (generation statistics), plus
   one-off generation of any (function, target) with tunable knobs. *)

open Cmdliner

let target_of = function
  | "float32" -> Funcs.Specs.float32
  | "posit32" -> Funcs.Specs.posit32
  | "bfloat16" -> Funcs.Specs.bfloat16
  | "float16" -> Funcs.Specs.float16
  | "posit16" -> Funcs.Specs.posit16
  | "float34" -> Funcs.Specs.float34
  | "bfloat18" -> Funcs.Specs.bfloat18
  | "float18" -> Funcs.Specs.float18
  | t -> invalid_arg ("unknown target: " ^ t)

let names_for (t : Funcs.Specs.target) =
  if t.mode <> Fp.Rounding_mode.Rne then Funcs.Specs.odd_functions
  else
    match t.tname with
    | "posit32" | "posit16" -> Funcs.Specs.posit_functions
    | _ -> Funcs.Specs.float_functions

(* "float32" for the default mode, "float32@up" otherwise — the RNE
   output (what CI diffs against recorded dumps) stays byte-identical. *)
let label (t : Funcs.Specs.target) =
  if t.mode = Fp.Rounding_mode.Rne then t.tname
  else t.tname ^ "@" ^ Fp.Rounding_mode.to_string t.mode

(* Expand one named target into the requested mode variants. *)
let targets_for tname mode all_modes =
  let t = target_of tname in
  if all_modes then List.map (Funcs.Specs.with_mode t) Fp.Rounding_mode.all
  else match mode with None -> [ t ] | Some m -> [ Funcs.Specs.with_mode t m ]

(* None when every knob is at its default, so the cold path hands
   Libm.get exactly the cfg-less call it always got (byte-identical
   output).  RLIBM_PROG=1 / RLIBM_LP_WARM=1 already flow through
   Config.default, so flags only ever turn knobs on. *)
let cfg_of ~lp_warm ~prog =
  if lp_warm || prog then
    Some
      {
        Rlibm.Config.default with
        lp_warm = Rlibm.Config.default.lp_warm || lp_warm;
        progressive = Rlibm.Config.default.progressive || prog;
      }
  else None

let run_one (t : Funcs.Specs.target) quality ?cfg ~pass_stats ~emit name =
  let t0 = Unix.gettimeofday () in
  match Funcs.Libm.get ~quality ?cfg t name with
  | exception Invalid_argument msg -> Printf.printf "%-7s %-9s SKIPPED: %s\n%!" name (label t) msg
  | g ->
      let wall = Unix.gettimeofday () -. t0 in
      let s = g.Rlibm.Generator.stats in
      Array.iter
        (fun (c : Rlibm.Stats.component) ->
          Printf.printf "%-7s %-9s %-10s %6.1f %9d %7d %7d  2^%-3d %4d %4d\n%!" name (label t)
            c.cname wall s.n_inputs s.n_special c.n_constraints c.split_bits c.degree c.n_terms)
        s.per_component;
      emit name t wall g;
      if pass_stats then begin
        List.iter (Format.printf "%a" Rlibm.Stats.pp_pass) s.Rlibm.Stats.passes;
        (match s.Rlibm.Stats.oracle_cache with
        | None -> ()
        | Some c ->
            Format.printf "  oracle cache: %d hits, %d misses@." c.Rlibm.Stats.cache_hits
              c.Rlibm.Stats.cache_misses);
        (match s.Rlibm.Stats.lp with
        | None -> ()
        | Some l ->
            Format.printf
              "  lp %s: %d cold solves (%d primal pivots), %d warm solves (%d dual pivots, %d \
               fallbacks), %d refactorizations@."
              (if l.lp_warm_mode then "warm" else "cold")
              l.lp_cold_solves l.lp_primal_pivots l.lp_warm_solves l.lp_dual_pivots
              l.lp_warm_fallbacks l.lp_refactorizations);
        match s.Rlibm.Stats.prog with
        | None -> ()
        | Some p -> Format.printf "%a" Rlibm.Stats.pp_prog p
      end
  | exception Failure msg -> Printf.printf "%-7s %-9s FAILED: %s\n%!" name (label t) msg

let stats jobs pass_stats lp_warm prog targets mode all_modes quality fns datafile =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  let cfg = cfg_of ~lp_warm ~prog in
  let rows = ref [] in
  (* One "generate" row per successfully generated (function, target):
     Table 3 numbers plus the tables fingerprint, so a later run can
     prove whether a substrate change moved the generated artifact. *)
  let emit name (t : Funcs.Specs.target) wall (g : Rlibm.Generator.generated) =
    if datafile <> None then begin
      let s = g.Rlibm.Generator.stats in
      let sum f =
        Array.fold_left (fun a (c : Rlibm.Stats.component) -> a + f c) 0 s.per_component
      in
      rows :=
        {
          Datafile.kind = "generate";
          func = name;
          repr = t.tname;
          mode = Fp.Rounding_mode.to_string t.mode;
          identity = "";
          tables_hash = Rlibm.Generator.tables_fingerprint g;
          span = None;
          metrics =
            ([
               ("generate.wall_seconds", wall);
               ("generate.inputs", float_of_int s.n_inputs);
               ("generate.special", float_of_int s.n_special);
               ("generate.constraints", float_of_int (sum (fun c -> c.n_constraints)));
               ("generate.terms", float_of_int (sum (fun c -> c.n_terms)));
             ]
            @
            (* Progressive tier selection, gated under prog.* so a
               vanished tier fails the datafile diff loudly. *)
            match s.prog with
            | None -> []
            | Some p ->
                [
                  ("prog.joint_fast_pct", 100.0 *. p.Rlibm.Stats.prog_joint_coverage);
                  ( "prog.serve_k_sum",
                    float_of_int
                      (Array.fold_left
                         (fun a (c : Rlibm.Stats.prog_component) -> a + c.p_serve_k)
                         0 p.prog_components) );
                ]);
          mismatches = [||];
          quarantined = [||];
        }
        :: !rows
    end
  in
  Printf.printf "%-7s %-9s %-10s %6s %9s %7s %7s  %-5s %4s %4s\n" "func" "target" "component"
    "time_s" "inputs" "special" "reduced" "polys" "deg" "terms";
  List.iter
    (fun tname ->
      List.iter
        (fun t ->
          let names = if fns = [] then names_for t else fns in
          List.iter (run_one t quality ?cfg ~pass_stats ~emit) names)
        (targets_for tname mode all_modes))
    targets;
  match datafile with
  | None -> ()
  | Some path ->
      Datafile.write ~path
        {
          Datafile.rev = Datafile.git_rev ();
          date = Datafile.timestamp ();
          seed = None;
          config =
            Printf.sprintf "generate stats quality=%s%s%s"
              (match quality with Funcs.Libm.Quick -> "quick" | Full -> "full" | Draft -> "draft")
              (if lp_warm then " lp-warm" else "")
              (if prog then " prog" else "");
          host =
            Some
              {
                Datafile.jobs = Parallel.jobs ();
                cpus = Domain.recommended_domain_count ();
                ocaml = Sys.ocaml_version;
              };
          rows = List.rev !rows;
        };
      Printf.printf "datafile: %s (%d rows)\n" path (List.length !rows)

let jobs_term =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Worker domains for the sharded passes (default: RLIBM_JOBS or the runtime's recommendation).")

let pass_stats_term =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print per-pass shard statistics (jobs, wall/busy seconds, throughput) after each function.")

let targets_term =
  Arg.(value & opt_all string [ "float32"; "posit32" ]
       & info [ "t"; "target" ]
           ~doc:"Target representation (repeatable): float32, posit32, bfloat16, float16, \
                 posit16, or an odd extended target float34/bfloat18/float18.")

let mode_conv =
  let parse s =
    match Fp.Rounding_mode.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg ("unknown rounding mode: " ^ s ^ " (want rne/rna/up/down/zero/odd)"))
  in
  Arg.conv (parse, Fp.Rounding_mode.pp)

let mode_term =
  Arg.(value & opt (some mode_conv) None
       & info [ "mode" ]
           ~doc:"Rounding mode for the target (rne, rna, up, down, zero, odd; default: the \
                 target's own — RNE for IEEE targets, odd for the extended ones).  Non-nearest \
                 modes restrict the default function list to the odd-capable set.")

let all_modes_term =
  Arg.(value & flag
       & info [ "all-modes" ]
           ~doc:"Run the target under every rounding mode (the five IEEE-754 modes plus \
                 round-to-odd); overrides --mode.")

let quality_term =
  Arg.(value
       & opt (enum [ ("quick", Funcs.Libm.Quick); ("full", Funcs.Libm.Full) ]) Funcs.Libm.Quick
       & info [ "quality" ] ~doc:"Generation quality (quick default; full = 3x the enumeration).")

let funcs_term =
  Arg.(value & opt_all string [] & info [ "f"; "function" ] ~doc:"Generate only this function.")

let datafile_term =
  Arg.(value & opt (some string) None
       & info [ "datafile" ] ~docv:"PATH"
           ~doc:"Write the generation statistics (one row per function × target, with the \
                 tables fingerprint) as a schema-v$(b,1) datafile to $(docv).")

let prog_term =
  Arg.(value & flag
       & info [ "prog" ]
           ~doc:"Progressive polynomials: pin-refit each piece so a short coefficient prefix \
                 is correctly rounded on most reduced inputs, record per-prefix coverage \
                 certificates, and select the serving tier.  Also enabled by RLIBM_PROG=1.  \
                 Off by default — the cold generation output is byte-identical without it.")

let lp_warm_term =
  Arg.(value & flag
       & info [ "lp-warm" ]
           ~doc:"Warm-start the LP solves (dual-simplex basis reuse across counterexample \
                 rounds and sub-domain splits).  Faster; same sat/unsat answers, but \
                 coefficient vertices — and so the emitted tables — may differ from the \
                 deterministic cold default.  Also enabled by RLIBM_LP_WARM=1.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Generator statistics for all functions (paper Table 3)")
    Term.(const stats $ jobs_term $ pass_stats_term $ lp_warm_term $ prog_term $ targets_term
          $ mode_term $ all_modes_term $ quality_term $ funcs_term $ datafile_term)

(* Bit-exact dump of the generated tables: every coefficient and scheme
   word as hex bits.  Diffing two dumps proves (or refutes) that a
   change to the exact-arithmetic substrate left the generated artifact
   bit-identical — the determinism contract CI leans on. *)
let dump jobs lp_warm prog targets mode all_modes quality fns =
  (match jobs with Some j -> Parallel.set_jobs j | None -> ());
  let cfg = cfg_of ~lp_warm ~prog in
  List.iter
    (fun tname ->
      List.iter
        (fun t ->
      let names = if fns = [] then names_for t else fns in
      List.iter
        (fun name ->
          match Funcs.Libm.get ~quality ?cfg t name with
          | exception Failure msg -> Printf.printf "%s %s FAILED: %s\n%!" name (label t) msg
          | exception Invalid_argument msg ->
              Printf.printf "%s %s SKIPPED: %s\n%!" name (label t) msg
          | g ->
              Printf.printf "%s %s\n" name (label t);
              Array.iteri
                (fun pi (pw : Rlibm.Piecewise.t) ->
                  Printf.printf "piece %d terms %s\n" pi
                    (String.concat ","
                       (Array.to_list (Array.map string_of_int pw.terms)));
                  let group label = function
                    | None -> Printf.printf "%s none\n" label
                    | Some (grp : Rlibm.Piecewise.group) ->
                        let s = grp.scheme in
                        Printf.printf "%s nbits %d shift %d lo %Lx hi %Lx\n" label s.nbits
                          s.shift s.lo_bits s.hi_bits;
                        Array.iteri
                          (fun i c -> Printf.printf "  c%d %Lx\n" i (Int64.bits_of_float c))
                          grp.coeffs
                  in
                  group "neg" pw.neg;
                  group "pos" pw.pos)
                g.Rlibm.Generator.pieces)
        names)
        (targets_for tname mode all_modes))
    targets

let dump_cmd =
  Cmd.v
    (Cmd.info "dump" ~doc:"Bit-exact hex dump of the generated tables (for determinism diffs)")
    Term.(const dump $ jobs_term $ lp_warm_term $ prog_term $ targets_term $ mode_term
          $ all_modes_term $ quality_term $ funcs_term)

let () =
  let info = Cmd.info "generate" ~doc:"RLIBM-32 library generator (Table 3)" in
  exit
    (Cmd.eval
       (Cmd.group
          ~default:
            Term.(const stats $ jobs_term $ pass_stats_term $ lp_warm_term $ prog_term
                  $ targets_term $ mode_term $ all_modes_term $ quality_term $ funcs_term
                  $ datafile_term)
          info [ stats_cmd; dump_cmd ]))
